(* Command-line interface to the Radical reproduction.

     radical_cli experiments [TARGETS] [--scale F]
         regenerate the paper's tables and figures (default: all)
     radical_cli run --app APP --system SYS [--requests N] [--seed N]
         one deployment run with a latency summary
     radical_cli inspect FUNCTION
         show a handler's source, its compiled module, and the derived
         f^rw with its classification *)

open Cmdliner

(* A reporter that stamps each protocol event with the virtual clock. *)
let sim_reporter () =
  let report _src level ~over k msgf =
    msgf (fun ?header:_ ?tags:_ fmt ->
        let now = try Sim.Engine.now () with Sim.Engine.Not_running -> 0.0 in
        Format.kfprintf
          (fun f ->
            Format.pp_print_newline f ();
            over ();
            k ())
          Format.std_formatter
          ("[%8.1f ms] [%5s] " ^^ fmt)
          now
          (Logs.level_to_string (Some level)))
  in
  { Logs.report }

let setup_logs verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print protocol-event logs.")


let experiment_targets =
  [ "all"; "fig1"; "table1"; "table2"; "fig4"; "fig5"; "fig6"; "repl"; "cost"; "sensitivity"; "skew"; "throughput"; "bootstrap"; "ablation"; "phases" ]

let experiments_cmd =
  let targets =
    Arg.(value & pos_all (enum (List.map (fun t -> (t, t)) experiment_targets)) [ "all" ]
         & info [] ~docv:"TARGET")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F"
           ~doc:"Multiply request volume (5.0 reproduces the paper's 10k).")
  in
  let run targets scale =
    let eval_data = lazy (Experiments.Figures.collect_eval ~scale ()) in
    List.iter
      (fun t ->
        match t with
        | "all" -> Experiments.Figures.all ~scale ()
        | "fig1" -> ignore (Experiments.Figures.fig1 ~scale ())
        | "table1" -> ignore (Experiments.Figures.table1 ())
        | "table2" -> ignore (Experiments.Figures.table2 ())
        | "fig4" -> ignore (Experiments.Figures.fig4 (Lazy.force eval_data))
        | "fig5" -> ignore (Experiments.Figures.fig5 (Lazy.force eval_data))
        | "fig6" -> ignore (Experiments.Figures.fig6 (Lazy.force eval_data))
        | "repl" -> ignore (Experiments.Figures.replication ())
        | "sensitivity" -> ignore (Experiments.Figures.sensitivity ())
        | "skew" -> ignore (Experiments.Figures.skew ())
        | "throughput" -> ignore (Experiments.Figures.throughput ())
        | "bootstrap" -> ignore (Experiments.Figures.bootstrap ())
        | "cost" -> ignore (Experiments.Figures.cost ())
        | "ablation" -> ignore (Experiments.Figures.ablation ~scale ())
        | "phases" -> ignore (Experiments.Figures.phases ~scale ())
        | _ -> ())
      targets
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ targets $ scale)

let apps =
  [
    ("social", Experiments.Bundle.social);
    ("hotel", Experiments.Bundle.hotel);
    ("forum", Experiments.Bundle.forum);
    ("simple", Experiments.Bundle.simple);
  ]

let systems =
  [
    ("radical", Experiments.Runner.Radical);
    ("central", Experiments.Runner.Central);
    ("local", Experiments.Runner.Local);
    ("geo", Experiments.Runner.Geo Net.Location.[ va; oh; oregon ]);
    ("naive-edge", Experiments.Runner.Naive_edge);
    ("validate-per-read", Experiments.Runner.Validate_per_read);
  ]

let run_cmd =
  let app_arg =
    Arg.(required & opt (some (enum apps)) None & info [ "app" ] ~docv:"APP"
           ~doc:"Application: social, hotel, forum, or simple.")
  in
  let system_arg =
    Arg.(value & opt (enum systems) Experiments.Runner.Radical
         & info [ "system" ] ~docv:"SYS"
             ~doc:"Deployment: radical, central, local, geo, naive-edge.")
  in
  let requests =
    Arg.(value & opt int 2000 & info [ "requests" ] ~docv:"N"
           ~doc:"Total request count across all clients.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let run verbose app system requests seed =
    setup_logs verbose;
    let requests_per_client = max 1 (requests / 50) in
    let r = Experiments.Runner.run ~seed ~requests_per_client system app in
    Printf.printf "%d samples, %d errors\n"
      (List.length r.samples) r.errors;
    (match r.validation_rate with
    | Some v -> Printf.printf "validation success rate: %.1f%%\n" (v *. 100.0)
    | None -> ());
    Metrics.Table.print
      ~header:[ "scope"; "median (ms)"; "p99 (ms)" ]
      ~rows:
        ([ [ "overall";
             Metrics.Table.ms (Experiments.Runner.median_of r);
             Metrics.Table.ms (Experiments.Runner.p99_of r) ] ]
        @ List.map
            (fun (loc, s) ->
              [ "loc " ^ loc;
                Metrics.Table.ms (Metrics.Stats.median s);
                Metrics.Table.ms (Metrics.Stats.p99 s) ])
            (Experiments.Runner.by_loc r)
        @ List.map
            (fun (fn, s) ->
              [ fn;
                Metrics.Table.ms (Metrics.Stats.median s);
                Metrics.Table.ms (Metrics.Stats.p99 s) ])
            (Experiments.Runner.by_fn r));
    print_newline ();
    print_endline "latency distribution (ms):";
    Metrics.Table.print_histogram
      (Metrics.Stats.histogram (Experiments.Runner.overall r) ~buckets:12)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one deployment and print a latency summary")
    Term.(const run $ verbose_arg $ app_arg $ system_arg $ requests $ seed)

let inspect_cmd =
  let fn_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FUNCTION")
  in
  let run fn_name =
    match
      List.find_opt
        (fun (f : Fdsl.Ast.func) -> f.fn_name = fn_name)
        Apps.Catalog.all_functions
    with
    | None ->
        Printf.eprintf "unknown function %S; try one of:\n  %s\n" fn_name
          (String.concat ", "
             (List.map (fun (f : Fdsl.Ast.func) -> f.fn_name)
                Apps.Catalog.all_functions));
        exit 1
    | Some f -> (
        Format.printf "--- source ---@.%a@.@." Fdsl.Ast.pp_func f;
        let schema =
          List.concat
            [
              Apps.Social.schema; Apps.Hotel.schema; Apps.Forum.schema;
              Apps.Imageboard.schema; Apps.Projectmgmt.schema;
            ]
        in
        (match Fdsl.Typecheck.check ~schema f with
        | Ok t -> Format.printf "inferred result type: %a@.@." Fdsl.Types.pp t
        | Error e ->
            Format.printf "type error: %a@.@." Fdsl.Typecheck.pp_error e);
        let m = Fdsl.Compile.compile f in
        let entry = Wasm.Wmodule.func m 0 in
        Format.printf "--- compiled module ---@.";
        Format.printf "params: %d, locals: %d, imports: %s@.@."
          entry.n_params entry.n_locals
          (String.concat ", " m.imports);
        (match Wasm.Validate.check m with
        | Ok () -> Format.printf "determinism validation: OK@.@."
        | Error e ->
            Format.printf "determinism validation: REJECTED (%a)@.@."
              Wasm.Validate.pp_error e);
        match Analyzer.Derive.derive f with
        | Error e ->
            Format.printf "--- f^rw ---@.unanalyzable: %a@." Analyzer.Derive.pp_error e
        | Ok d ->
            Format.printf "--- derived f^rw (%a) ---@.%a@."
              Analyzer.Derive.pp_classification d.classification
              Fdsl.Ast.pp_func d.rw_func)
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show a handler, its module, and its f^rw")
    Term.(const run $ fn_name)

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Handler source file (.rdl).")
  in
  let run file =
    let source = In_channel.with_open_text file In_channel.input_all in
    match Fdsl.Parse.program source with
    | Error e ->
        Format.printf "%s: parse error: %a@." file Fdsl.Parse.pp_error e;
        exit 1
    | Ok funcs ->
        let failures = ref 0 in
        List.iter
          (fun (f : Fdsl.Ast.func) ->
            Format.printf "fn %s(%s)@." f.fn_name (String.concat ", " f.params);
            (match Fdsl.Typecheck.check f with
            | Ok t -> Format.printf "  type: ... -> %a@." Fdsl.Types.pp t
            | Error e ->
                incr failures;
                Format.printf "  TYPE ERROR: %a@." Fdsl.Typecheck.pp_error e);
            match Fdsl.Compile.compile f with
            | exception Fdsl.Compile.Unsupported m ->
                incr failures;
                Format.printf "  COMPILE ERROR: %s@." m
            | m -> (
                (match Wasm.Validate.check_all m with
                | Ok () ->
                    Format.printf "  deterministic: yes (blob %d bytes)@."
                      (Wasm.Codec.blob_size m)
                | Error e ->
                    incr failures;
                    Format.printf "  VALIDATION ERROR: %a@."
                      Wasm.Validate.pp_error e);
                match Analyzer.Derive.derive f with
                | Ok d ->
                    Format.printf "  f^rw: %a@."
                      Analyzer.Derive.pp_classification d.classification
                | Error _ ->
                    Format.printf
                      "  f^rw: unanalyzable (will run near storage)@."))
          funcs;
        Format.printf "%d function(s), %d problem(s)@." (List.length funcs)
          !failures;
        if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Parse, typecheck, compile and analyze a handler source file")
    Term.(const run $ file)

let trace_gen_cmd =
  let app_arg =
    Arg.(value & opt (enum apps) Experiments.Bundle.social
         & info [ "app" ] ~docv:"APP")
  in
  let rate = Arg.(value & opt float 100.0 & info [ "rate" ] ~docv:"REQ_PER_S") in
  let duration =
    Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"SECONDS")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let out =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE")
  in
  let run app rate duration seed out =
    let trace =
      Experiments.Trace.generate ~seed ~rate ~duration:(duration *. 1000.0) app
    in
    Experiments.Trace.save trace out;
    Printf.printf "wrote %d requests to %s\n" (List.length trace) out
  in
  Cmd.v
    (Cmd.info "trace-gen" ~doc:"Generate a request trace file")
    Term.(const run $ app_arg $ rate $ duration $ seed $ out)

let trace_replay_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE_FILE")
  in
  let app_arg =
    Arg.(value & opt (enum apps) Experiments.Bundle.social
         & info [ "app" ] ~docv:"APP")
  in
  let system_arg =
    Arg.(value & opt (enum systems) Experiments.Runner.Radical
         & info [ "system" ] ~docv:"SYS")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let run file app system seed =
    match Experiments.Trace.load file with
    | Error e ->
        Printf.eprintf "cannot load %s: %s\n" file e;
        exit 1
    | Ok trace ->
        let r = Experiments.Trace.replay ~seed system app trace in
        Printf.printf "%d requests replayed, %d errors\n"
          (List.length r.samples) r.errors;
        (match r.validation_rate with
        | Some v -> Printf.printf "validation success: %.1f%%\n" (v *. 100.0)
        | None -> ());
        Metrics.Table.print
          ~header:[ "metric"; "ms" ]
          ~rows:
            [
              [ "median"; Metrics.Table.ms (Experiments.Runner.median_of r) ];
              [ "p99"; Metrics.Table.ms (Experiments.Runner.p99_of r) ];
            ]
  in
  Cmd.v
    (Cmd.info "trace-replay"
       ~doc:"Replay a trace file against a deployment (open loop)")
    Term.(const run $ file $ app_arg $ system_arg $ seed)

let trace_cmd =
  let app_arg =
    Arg.(value & opt (enum apps) Experiments.Bundle.social
         & info [ "app" ] ~docv:"APP"
             ~doc:"Application: social, hotel, forum, or simple.")
  in
  let system_arg =
    Arg.(value & opt (enum systems) Experiments.Runner.Radical
         & info [ "system" ] ~docv:"SYS"
             ~doc:"Deployment; only radical produces request span trees.")
  in
  let requests =
    Arg.(value & opt int 500 & info [ "requests" ] ~docv:"N"
           ~doc:"Total request count across all clients.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K"
           ~doc:"Print the K slowest request traces as span trees.")
  in
  let batching_arg =
    Arg.(value & flag
         & info [ "batching" ]
             ~doc:"Deploy the Raft-replicated server with every batching \
                   knob on (group commit, lock-record flush, \
                   conflict-aware admission, followup coalescing) so the \
                   batch-size and queue-delay histograms fill up.")
  in
  let propagation_arg =
    Arg.(value & flag
         & info [ "propagation" ]
             ~doc:"Turn asynchronous cache-update propagation on so the \
                   'propagation' batch histogram and per-site \
                   'prop_lag:*' freshness-lag histograms fill up. \
                   Composes with --batching.")
  in
  let leases_arg =
    Arg.(value & flag
         & info [ "leases" ]
             ~doc:"Turn read leases on so the 'lease_grant'/'lease_revoke' \
                   batch histograms, the 'lease_wait' expiry-wait \
                   histogram and the 'lease_local'/'lease_settle' phases \
                   in the JSON breakdown fill up. Composes with \
                   --batching/--propagation/--shards.")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Deploy the LVI service hash-sharded N ways and print \
                   the per-shard load table (requests and cross-shard \
                   rate per shard); cross-shard requests additionally \
                   show up as 'shard_prepare' phases in the JSON \
                   breakdown. Composes with --batching/--propagation.")
  in
  let run verbose app system requests seed top batching propagation leases
      shards =
    setup_logs verbose;
    let tracer = Metrics.Tracer.create () in
    let requests_per_client = max 1 (requests / 50) in
    let system =
      if batching || propagation || leases || shards > 1 then
        let base = Radical.Framework.default_config in
        let server =
          {
            Radical.Server.default_config with
            mode =
              (if batching then Radical.Server.Replicated { az_rtt = 1.5 }
               else Radical.Server.default_config.mode);
            batching =
              (if batching then Radical.Server.full_batching
               else Radical.Server.default_config.batching);
            propagation =
              (if propagation then Radical.Server.default_propagation
               else Radical.Server.no_propagation);
            leases =
              (if leases then Radical.Server.default_leases
               else Radical.Server.no_leases);
          }
        in
        Experiments.Runner.Radical_with
          {
            base with
            server;
            sharding =
              (if shards > 1 then Some (Shard.Directory.Hash { shards })
               else base.sharding);
            fu_window = (if batching then 2.0 else base.fu_window);
            fu_piggyback = batching || base.fu_piggyback;
          }
      else system
    in
    let r = Experiments.Runner.run ~seed ~requests_per_client ~tracer system app in
    Printf.printf "%d samples, %d errors, %d traces\n" (List.length r.samples)
      r.errors
      (Metrics.Tracer.trace_count tracer);
    print_newline ();
    print_endline (Metrics.Tracer.phases_json tracer);
    let stat_rows stats =
      List.map
        (fun (label, s) ->
          [
            label;
            string_of_int (Metrics.Stats.count s);
            Printf.sprintf "%.2f" (Metrics.Stats.mean s);
            Printf.sprintf "%.2f" (Metrics.Stats.median s);
            Printf.sprintf "%.2f" (Metrics.Stats.p99 s);
          ])
        stats
    in
    (match stat_rows (Metrics.Tracer.batch_stats tracer) with
    | [] -> ()
    | rows ->
        print_endline "\n--- batch sizes (commands per flush) ---";
        Metrics.Table.print
          ~header:[ "label"; "batches"; "mean"; "median"; "p99" ]
          ~rows);
    (match stat_rows (Metrics.Tracer.queue_stats tracer) with
    | [] -> ()
    | rows ->
        print_endline "\n--- queueing delay (ms before flush) ---";
        Metrics.Table.print
          ~header:[ "label"; "waits"; "mean"; "median"; "p99" ]
          ~rows);
    (match Metrics.Tracer.shard_stats tracer with
    | [] -> ()
    | per_shard ->
        print_endline "\n--- per-shard load ---";
        Metrics.Table.print
          ~header:[ "shard"; "requests"; "cross-shard"; "cross %" ]
          ~rows:
            (List.map
               (fun (shard, (reqs, cross)) ->
                 [
                   string_of_int shard;
                   string_of_int reqs;
                   string_of_int cross;
                   Printf.sprintf "%.1f%%"
                     (if reqs = 0 then 0.0
                      else 100.0 *. float_of_int cross /. float_of_int reqs);
                 ])
               per_shard));
    (match Metrics.Tracer.slowest ~k:top tracer with
    | [] -> ()
    | spans ->
        Printf.printf "\n--- %d slowest request(s) ---\n" (List.length spans);
        List.iter
          (fun sp -> Format.printf "@.%a@." Metrics.Span.pp sp)
          spans)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a traced deployment: per-phase JSON breakdown, batching \
             histograms, plus the slowest request span trees")
    Term.(const run $ verbose_arg $ app_arg $ system_arg $ requests $ seed
          $ top $ batching_arg $ propagation_arg $ leases_arg $ shards_arg)

let timeline_cmd =
  let app_arg =
    Arg.(value & opt (enum apps) Experiments.Bundle.social
         & info [ "app" ] ~docv:"APP")
  in
  let from_arg =
    Arg.(value
         & opt (enum (List.map (fun l -> (l, l)) Net.Location.user_locations))
             Net.Location.jp
         & info [ "from" ] ~docv:"LOC" ~doc:"Client location.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let run (app : Experiments.Bundle.app) from seed =
    Logs.set_reporter (sim_reporter ());
    Logs.set_level (Some Logs.Debug);
    let engine = Sim.Engine.create ~seed () in
    Sim.Engine.run engine (fun () ->
        let rng = Sim.Engine.rng () in
        let net =
          Net.Transport.create ~jitter_sigma:0.0 ~rng:(Sim.Rng.split rng) ()
        in
        let data = app.seed (Sim.Rng.split rng) in
        let fw = Radical.Framework.create ~net ~funcs:app.funcs ~data () in
        let fn, args = app.new_gen () (Sim.Rng.split rng) in
        Printf.printf "--- one %s request (%s) from %s ---\n" app.name fn from;
        let o = Radical.Framework.invoke fw ~from fn args in
        Printf.printf "--- client answered in %.1f ms via the %s path ---\n"
          o.latency
          (match o.path with
          | Radical.Runtime.Speculative -> "speculative"
          | Radical.Runtime.Backup -> "backup"
          | Radical.Runtime.Fallback -> "fallback"
          | Radical.Runtime.Local -> "local");
        Sim.Engine.sleep 5000.0;
        Radical.Framework.stop fw)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Narrate one request's protocol events with virtual timestamps")
    Term.(const run $ app_arg $ from_arg $ seed)

let chaos_cmd =
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N"
           ~doc:"Seeds to sweep (per app/mode cell when no --app is given).")
  in
  let app_arg =
    Arg.(value & opt (some (enum apps)) None & info [ "app" ] ~docv:"APP"
           ~doc:"Sweep one application only (default: the full social/forum \
                 grid plus the protocol-mutation demonstration).")
  in
  let replicated =
    Arg.(value & flag & info [ "replicated" ]
           ~doc:"Raft-replicated LVI server (with --app).")
  in
  let propagation =
    Arg.(value & flag & info [ "propagation" ]
           ~doc:"Asynchronous cache-update propagation on; the \
                 propagation-chaos template then exercises the channel \
                 with lost, duplicated and delayed cache_update \
                 messages.")
  in
  let leases_arg =
    Arg.(value & flag & info [ "leases" ]
           ~doc:"Read leases on; the lease-chaos template then attacks \
                 the settle protocol with lost, duplicated and delayed \
                 lease_revoke messages, cache wipes and late cache \
                 updates.")
  in
  let template_names =
    List.map
      (fun (t : Chaos.Plan.template) -> (t.t_name, t))
      Chaos.Plan.default_templates
  in
  let template_arg =
    Arg.(value & opt (some (enum template_names)) None
         & info [ "template" ] ~docv:"NAME"
             ~doc:(Printf.sprintf "Sweep a single plan template (%s)."
                     (String.concat ", " (List.map fst template_names))))
  in
  let mutate =
    Arg.(value & flag & info [ "mutate" ]
           ~doc:"Inject the Skip_reexecution protocol mutation: the oracle \
                 must catch it and the failing plan is shrunk to a minimal \
                 reproduction.")
  in
  let shards_arg =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Hash-shard the LVI service N ways: multi-key functions \
                 then cross shards, the shard-chaos template attacks the \
                 commit protocol, and the cross-atomicity oracle judges \
                 the quiescent state.")
  in
  (* Cross-shard commit timing knobs (Server.tuning), exposed so a
     sweep can shrink or stretch the prepare/decide timeouts relative
     to the fault templates' delay distributions. Defaults are the
     production values. *)
  let dt = Radical.Server.default_tuning in
  let try_prepare_timeout =
    Arg.(value & opt float dt.try_prepare_timeout
         & info [ "try-prepare-timeout" ] ~docv:"MS"
             ~doc:"Cross-shard commit: per-shard timeout of the \
                   non-blocking first prepare round.")
  in
  let blocking_prepare_timeout =
    Arg.(value & opt float dt.blocking_prepare_timeout
         & info [ "blocking-prepare-timeout" ] ~docv:"MS"
             ~doc:"Cross-shard commit: per-attempt timeout of the \
                   blocking ascending-order prepare fallback.")
  in
  let blocking_prepare_attempts =
    Arg.(value & opt int dt.blocking_prepare_attempts
         & info [ "blocking-prepare-attempts" ] ~docv:"N"
             ~doc:"Cross-shard commit: blocking prepare attempts before \
                   the coordinator aborts the request.")
  in
  let decide_timeout =
    Arg.(value & opt float dt.decide_timeout
         & info [ "decide-timeout" ] ~docv:"MS"
             ~doc:"Cross-shard commit: per-call timeout of a decision \
                   delivery to a prepared shard.")
  in
  let decide_retry_backoff =
    Arg.(value & opt float dt.decide_retry_backoff
         & info [ "decide-retry-backoff" ] ~docv:"MS"
             ~doc:"Cross-shard commit: pause between decision-delivery \
                   retries.")
  in
  let decide_retries =
    Arg.(value & opt int dt.decide_retries
         & info [ "decide-retries" ] ~docv:"N"
             ~doc:"Cross-shard commit: decision-delivery attempts per \
                   shard before giving up (the shard's own intent timer \
                   then resolves the orphan).")
  in
  let tuning_term =
    let mk try_prepare_timeout blocking_prepare_timeout
        blocking_prepare_attempts decide_timeout decide_retry_backoff
        decide_retries =
      {
        Radical.Server.try_prepare_timeout;
        blocking_prepare_timeout;
        blocking_prepare_attempts;
        decide_timeout;
        decide_retry_backoff;
        decide_retries;
      }
    in
    Term.(const mk $ try_prepare_timeout $ blocking_prepare_timeout
          $ blocking_prepare_attempts $ decide_timeout
          $ decide_retry_backoff $ decide_retries)
  in
  let run verbose seeds app replicated propagation leases template mutate
      shards tuning =
    setup_logs verbose;
    match app with
    | None ->
        if Experiments.Chaos_exp.run ~seeds ~propagation ~leases ~shards () > 0
        then exit 2
    | Some bundle ->
        let config =
          {
            Chaos.Campaign.default_config with
            replicated;
            propagation;
            leases;
            shards;
            tuning;
            mutation =
              (if mutate then Some Radical.Server.Skip_reexecution else None);
          }
        in
        let templates =
          match template with
          | None -> Chaos.Plan.default_templates
          | Some t -> [ t ]
        in
        let capp = Experiments.Chaos_exp.of_bundle bundle in
        let summary =
          Chaos.Campaign.sweep ~config ~templates ~seeds capp
        in
        Format.printf "%a@." Chaos.Campaign.pp_summary summary;
        (match summary.failures with
        | [] -> ()
        | c :: _ ->
            let shrunk =
              Chaos.Campaign.shrink ~config ~seed:c.Chaos.Campaign.c_seed capp
                c.Chaos.Campaign.c_plan
            in
            Format.printf "minimal reproduction (seed %d):@.%a@."
              c.Chaos.Campaign.c_seed Chaos.Plan.pp shrunk;
            if not mutate then exit 2)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Sweep fault plans against live deployments and judge the \
             survivors with the invariant oracle")
    Term.(const run $ verbose_arg $ seeds $ app_arg $ replicated
          $ propagation $ leases_arg $ template_arg $ mutate $ shards_arg
          $ tuning_term)

let analyze_cmd =
  let run () = print_string (Apps.Report.render ()) in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Print the whole-catalog key-shape report: per-function \
             classifications (raw vs. residual-optimized), conflict \
             matrices, lock-order hazards, and manual f^rw checks")
    Term.(const run $ const ())

let certify_cmd =
  let run () =
    let report, all_ok = Apps.Report.render_certify () in
    print_string report;
    if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Certify every catalog function's f^rw against its compiled \
             bytecode: re-derive read/write key shapes from the WASM \
             instruction stream and prove them subsumed by the registered \
             prediction. Exits non-zero if any function is rejected")
    Term.(const run $ const ())

let () =
  let doc = "Radical (SOSP '25) reproduction: run experiments and deployments" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "radical_cli" ~doc)
          [
            experiments_cmd; run_cmd; inspect_cmd; check_cmd; analyze_cmd;
            certify_cmd; timeline_cmd; trace_cmd; trace_gen_cmd;
            trace_replay_cmd; chaos_cmd;
          ]))
