(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index), plus Bechamel
   microbenchmarks of the core primitives.

     dune exec bench/main.exe                 # everything at paper volume
     dune exec bench/main.exe -- fig4         # one experiment
     dune exec bench/main.exe -- --scale 1 fig4   # quick 2k-request run *)

let micro () =
  print_newline ();
  print_endline "================================================================";
  print_endline "Microbenchmarks (Bechamel) — core primitive costs";
  print_endline "================================================================";
  let open Bechamel in
  let open Toolkit in
  (* A VM workload: sum 1..1000 through the interpreter. *)
  let sum_module =
    let open Wasm.Instr in
    Wasm.Wmodule.create
      ~funcs:
        [
          {
            Wasm.Wmodule.fn_name = "sum";
            n_params = 0;
            n_locals = 2;
            body =
              [
                Loop
                  [
                    Local_get 0; I64_const 1L; I64_binop Add; Local_set 0;
                    Local_get 1; Local_get 0; I64_binop Add; Local_set 1;
                    Local_get 0; I64_const 1000L; I64_binop Lt_s; Br_if 0;
                  ];
                Local_get 1;
              ];
          };
        ]
      ~imports:[]
  in
  let pure_host = Wasm.Host.pure () in
  let timeline_fn =
    List.find
      (fun (f : Fdsl.Ast.func) -> f.fn_name = "social-timeline")
      Apps.Catalog.all_functions
  in
  let derived =
    match Analyzer.Derive.derive timeline_fn with
    | Ok d -> d
    | Error _ -> assert false
  in
  let zipf = Workload.Zipf.create ~n:10000 ~theta:0.99 in
  let rng = Sim.Rng.create 1 in
  let lin_history =
    List.init 8 (fun i ->
        {
          Lincheck.op_id = string_of_int i;
          start = float_of_int i;
          finish = float_of_int i +. 0.5;
          reads = [ ("x", if i = 0 then Dval.Unit else Dval.int i) ];
          writes = [ ("x", Dval.int (i + 1)) ];
        })
  in
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s/%s"
      [
        Test.make ~name:"vm-interp-sum1000"
          (Staged.stage (fun () ->
               ignore (Wasm.Interp.run sum_module ~host:pure_host ~entry:"sum" [])));
        (* The same workload wrapped in disabled-tracer spans, exactly as
           Runtime.invoke instruments it. Comparing against the plain run
           above checks that tracing off costs nothing (≤2% target). *)
        Test.make ~name:"vm-interp-sum1000-noop-trace"
          (Staged.stage (fun () ->
               let tracer = Metrics.Tracer.noop in
               let root = Metrics.Tracer.root tracer "sum" in
               let r =
                 Metrics.Tracer.with_phase tracer ~parent:root "exec" (fun () ->
                     Wasm.Interp.run sum_module ~host:pure_host ~entry:"sum" [])
               in
               Metrics.Tracer.stop root;
               ignore r));
        Test.make ~name:"fdsl-compile-timeline"
          (Staged.stage (fun () -> ignore (Fdsl.Compile.compile timeline_fn)));
        Test.make ~name:"analyzer-derive-timeline"
          (Staged.stage (fun () -> ignore (Analyzer.Derive.derive timeline_fn)));
        Test.make ~name:"analyzer-predict-timeline"
          (Staged.stage (fun () ->
               ignore
                 (Analyzer.Derive.predict derived
                    ~read:(fun _ -> Dval.List [ Dval.Str "a" ])
                    [ Dval.Str "u1" ])));
        Test.make ~name:"zipf-sample"
          (Staged.stage (fun () -> ignore (Workload.Zipf.sample zipf rng)));
        Test.make ~name:"rng-bits64"
          (Staged.stage (fun () -> ignore (Sim.Rng.bits64 rng)));
        Test.make ~name:"lincheck-8ops"
          (Staged.stage (fun () -> ignore (Lincheck.check lin_history)));
        Test.make ~name:"pqueue-push-pop-64"
          (Staged.stage (fun () ->
               let q = Sim.Pqueue.create ~cmp:Int.compare in
               for i = 0 to 63 do
                 Sim.Pqueue.push q (i * 7919 mod 64)
               done;
               while not (Sim.Pqueue.is_empty q) do
                 ignore (Sim.Pqueue.pop q)
               done));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> Printf.sprintf "%.0f ns" t
            | _ -> "n/a"
          in
          rows := [ name; time_ns ] :: !rows)
        tbl;
      Metrics.Table.print ~header:[ "benchmark"; "time/run" ]
        ~rows:(List.sort compare !rows))
    results

let usage () =
  print_endline
    "usage: main.exe [--scale F] [--seeds N] \
     [--shards N] [--json] \
     [all|fig1|table1|table2|fig4|fig5|fig6|repl|cost|sensitivity|skew|throughput|bootstrap|ablation|analyze|phases|batch|propagate|lease|shard|chaos|micro]";
  print_endline
    "  batch: batching load sweep — open-loop Poisson load against the";
  print_endline
    "    replicated LVI server with group commit / lock-record flush /";
  print_endline
    "    admission / followup coalescing toggled per variant; prints";
  print_endline
    "    median+p99+achieved throughput per offered rate and the";
  print_endline "    batched-vs-unbatched acceptance verdict.";
  print_endline
    "  lease: read-lease experiment — read-heavy zipf mix; read-only";
  print_endline
    "    median latency with leases off / on (revocation) / on";
  print_endline
    "    (expiry-wait only), lease-local and settle counters, plus the";
  print_endline "    >=40% read-only median reduction acceptance verdict.";
  print_endline
    "  propagate: cache-update propagation experiment — multi-site";
  print_endline
    "    shared-key workload; speculation-success rate and latency with";
  print_endline
    "    propagation off / Nagle window sweep / invalidate-only, plus";
  print_endline "    the on-vs-off acceptance verdict.";
  print_endline
    "  shard: shard scaling sweep — prefix-disjoint key families over";
  print_endline
    "    1/2/4 LVI shards (one replicated lock cluster each), peak";
  print_endline
    "    sustainable throughput per shard count, a cross-shard transfer";
  print_endline
    "    mix at 4 shards, and the one-round-trip / >=3x scaling";
  print_endline "    acceptance verdicts.";
  print_endline
    "  analyze: f^rw predict cost raw vs. residual-optimized, and the";
  print_endline
    "    read-only LVI fast-path latency ablation (on/off, singleton and";
  print_endline "    replicated).";
  print_endline
    "  chaos: fault-plan campaign over {social,forum} x \
     {singleton,replicated};";
  print_endline
    "    --seeds N   seeds per grid cell (default 50 = 200 sweeps total;";
  print_endline
    "                'make check' smoke-tests with --seeds 20); each seed";
  print_endline
    "    runs every default template (followup-storm, message-chaos,";
  print_endline
    "    cache-loss, server-restart, partition-heal, raft-churn,";
  print_endline
    "    everything), then a protocol mutation is injected to prove the";
  print_endline "    invariant oracle catches and shrinks real bugs.";
  print_endline
    "    --batching  run every cell with all batching knobs on (group";
  print_endline
    "                commit, lock flush, admission, followup coalescing).";
  print_endline
    "    --propagation  run every cell with asynchronous cache-update";
  print_endline
    "                propagation on; the propagation-chaos template then";
  print_endline
    "                stresses the channel with lost/duplicated/delayed";
  print_endline "                cache_update messages.";
  print_endline
    "    --shards N  run every cell with the LVI service hash-sharded N";
  print_endline
    "                ways; the shard-chaos template then attacks the";
  print_endline
    "                cross-shard commit (delayed prepares, dropped";
  print_endline
    "                decisions, shard restarts, leader crashes) under";
  print_endline "                the cross-atomicity oracle.";
  print_endline
    "    --leases    run every cell with read leases on; the lease-chaos";
  print_endline
    "                template then attacks the settle protocol (lost/";
  print_endline
    "                duplicated/delayed revocations, cache wipes, late";
  print_endline "                cache updates).";
  print_endline
    "  --json: additionally write each measurement-returning experiment's";
  print_endline
    "    results as BENCH_<experiment>.json (medians, p99, throughput,";
  print_endline "    acceptance flags, run config).";
  exit 1

let () =
  (* Default 5.0 reproduces the paper's 10,000 requests per deployment. *)
  let scale = ref 5.0 in
  let seeds = ref 50 in
  let batching = ref false in
  let propagation = ref false in
  let leases = ref false in
  let json = ref false in
  let shards = ref 1 in
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--batching" :: rest ->
        batching := true;
        parse rest
    | "--propagation" :: rest ->
        propagation := true;
        parse rest
    | "--leases" :: rest ->
        leases := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> scale := f
        | _ -> usage ());
        parse rest
    | "--seeds" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> seeds := n
        | _ -> usage ());
        parse rest
    | "--shards" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> shards := n
        | _ -> usage ());
        parse rest
    | arg :: rest ->
        targets := arg :: !targets;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let targets = if !targets = [] then [ "all" ] else List.rev !targets in
  let scale = !scale in
  let emit experiment measurements =
    if !json then begin
      let config =
        [
          ("scale", Printf.sprintf "%g" scale);
          ("seeds", string_of_int !seeds);
          ("shards", string_of_int !shards);
        ]
      in
      let path = Experiments.Runner.write_json ~experiment ~config measurements in
      Printf.printf "wrote %s\n" path
    end
  in
  let eval_data = lazy (Experiments.Figures.collect_eval ~scale ()) in
  List.iter
    (fun target ->
      match target with
      | "all" ->
          Experiments.Figures.all ~scale ();
          micro ()
      | "fig1" -> emit "fig1" (Experiments.Figures.fig1 ~scale ())
      | "table1" -> emit "table1" (Experiments.Figures.table1 ())
      | "table2" -> ignore (Experiments.Figures.table2 ())
      | "fig4" -> ignore (Experiments.Figures.fig4 (Lazy.force eval_data))
      | "fig5" -> ignore (Experiments.Figures.fig5 (Lazy.force eval_data))
      | "fig6" -> ignore (Experiments.Figures.fig6 (Lazy.force eval_data))
      | "repl" -> ignore (Experiments.Figures.replication ())
      | "sensitivity" -> ignore (Experiments.Figures.sensitivity ())
      | "skew" -> ignore (Experiments.Figures.skew ())
      | "throughput" -> ignore (Experiments.Figures.throughput ())
      | "bootstrap" -> ignore (Experiments.Figures.bootstrap ())
      | "cost" -> ignore (Experiments.Figures.cost ())
      | "ablation" -> ignore (Experiments.Figures.ablation ~scale ())
      | "analyze" -> Experiments.Analyze_exp.run ~scale ()
      | "phases" -> ignore (Experiments.Figures.phases ~scale ())
      | "batch" -> emit "batch" (Experiments.Batch_exp.run ~scale ())
      | "propagate" -> emit "propagate" (Experiments.Propagate_exp.run ~scale ())
      | "lease" -> emit "lease" (Experiments.Lease_exp.run ~scale ())
      | "shard" -> emit "shard" (Experiments.Shard_exp.run ~scale ())
      | "chaos" ->
          let violations =
            Experiments.Chaos_exp.run ~seeds:!seeds ~batching:!batching
              ~propagation:!propagation ~leases:!leases ~shards:!shards ()
          in
          if violations > 0 then exit 2
      | "micro" -> micro ()
      | _ -> usage ())
    targets
