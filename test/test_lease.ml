(* Tests for the read-lease subsystem (DESIGN.md §14): the server-side
   lease table and site-side lease cache units, the lease-local serve
   path (zero LVI round trips), the writer-blocked-until-revocation
   regression, the expiry-wait fallback, leases-off seed identity, and
   a 20-seed lease-chaos campaign under the invariant oracles. *)

open Sim
open Fdsl.Ast
module Transport = Net.Transport
module Location = Net.Location
module Framework = Radical.Framework
module Runtime = Radical.Runtime
module Server = Radical.Server
module Lease = Radical.Lease

(* --- Test functions ------------------------------------------------- *)

let get_fn =
  { fn_name = "get"; params = [ "k" ]; body = Compute (10.0, Read (Input "k")) }

let get2_fn =
  {
    fn_name = "get2";
    params = [ "a"; "b" ];
    body =
      Compute
        ( 10.0,
          Let
            ( "x",
              Read (Input "a"),
              Let
                ( "y",
                  Read (Input "b"),
                  Record_lit [ ("a", Var "x"); ("b", Var "y") ] ) ) );
  }

let put_fn =
  {
    fn_name = "put";
    params = [ "k"; "v" ];
    body = Compute (5.0, Seq [ Write (Input "k", Input "v"); Input "v" ]);
  }

let funcs = [ get_fn; get2_fn; put_fn ]

let data = [ ("x", Dval.Str "v1"); ("y", Dval.Str "w1") ]

let lease_config leases =
  {
    Framework.default_config with
    server = { Server.default_config with leases };
  }

let with_radical ?(seed = 11) ?config ?(funcs = funcs) ?(data = data) f =
  let e = Engine.create ~seed () in
  Engine.run e (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw = Framework.create ?config ~net ~funcs ~data () in
      f net fw;
      Framework.stop fw)

let ok_value (o : Runtime.outcome) =
  match o.value with
  | Ok v -> v
  | Error e -> Alcotest.fail ("execution failed: " ^ e)

let path_name = function
  | Runtime.Speculative -> "speculative"
  | Runtime.Backup -> "backup"
  | Runtime.Fallback -> "fallback"
  | Runtime.Local -> "local"

let check_path msg expected (o : Runtime.outcome) =
  Alcotest.(check string) msg (path_name expected) (path_name o.path)

let check_dval msg expected got =
  Alcotest.(check string) msg (Dval.to_string expected) (Dval.to_string got)

(* --- Server-side lease table (Lease) ---------------------------------- *)

let test_lease_grant_holders_expiry () =
  let t = Lease.create () in
  Lease.grant t ~key:"x" ~site:"CA" ~until:100.0;
  Alcotest.(check (list (pair string (float 1e-9))))
    "held before expiry"
    [ ("CA", 100.0) ]
    (Lease.holders t ~now:50.0 [ "x" ]);
  (* Expiry is strict: a grant is dead at exactly [until]. *)
  Alcotest.(check int) "dead at until" 0
    (List.length (Lease.holders t ~now:100.0 [ "x" ]));
  (* Re-grant replaces, never moves the expiry backwards. *)
  Lease.grant t ~key:"x" ~site:"CA" ~until:200.0;
  Lease.grant t ~key:"x" ~site:"CA" ~until:150.0;
  Alcotest.(check (list (pair string (float 1e-9))))
    "per-site expiry keeps the max"
    [ ("CA", 200.0) ]
    (Lease.holders t ~now:50.0 [ "x" ]);
  (* A site holding grants on several queried keys reports once, with
     the latest expiry among them. *)
  Lease.grant t ~key:"y" ~site:"CA" ~until:300.0;
  Lease.grant t ~key:"y" ~site:"DE" ~until:250.0;
  let hs =
    List.sort compare (Lease.holders t ~now:50.0 [ "x"; "y" ])
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "max per site across keys"
    [ ("CA", 300.0); ("DE", 250.0) ]
    hs;
  Alcotest.(check int) "live counts unexpired" 3 (Lease.live t ~now:50.0);
  Alcotest.(check int) "granted is cumulative" 5 (Lease.granted t)

(* The settle/forget race guard: forgetting with [until_leq] of the
   settle's snapshot must spare a fresh grant issued after it. *)
let test_lease_forget_until_leq_guard () =
  let t = Lease.create () in
  Lease.grant t ~key:"x" ~site:"CA" ~until:100.0;
  (* A settle snapshots [("CA", 100.0)], then — while it is out
     revoking — a new validated read earns DE a fresh, later grant. *)
  Lease.grant t ~key:"x" ~site:"DE" ~until:200.0;
  Lease.forget t ~until_leq:100.0 [ "x" ];
  Alcotest.(check (list (pair string (float 1e-9))))
    "fresh grant survives the settle's forget"
    [ ("DE", 200.0) ]
    (Lease.holders t ~now:50.0 [ "x" ]);
  Lease.forget t ~until_leq:200.0 [ "x" ];
  Alcotest.(check int) "observed grants are gone" 0
    (List.length (Lease.holders t ~now:50.0 [ "x" ]))

(* --- Site-side lease cache (Cache.Leases) ----------------------------- *)

let test_site_install_valid_covered () =
  let t = Cache.Leases.create () in
  Alcotest.(check bool) "install accepted" true
    (Cache.Leases.install t ~key:"x" ~version:3 ~issued:10.0 ~until:100.0);
  Alcotest.(check bool) "valid at matching version" true
    (Cache.Leases.valid t ~now:50.0 ~key:"x" ~version:3);
  Alcotest.(check bool) "wrong version is not certified" false
    (Cache.Leases.valid t ~now:50.0 ~key:"x" ~version:2);
  Alcotest.(check bool) "dead at until" false
    (Cache.Leases.valid t ~now:100.0 ~key:"x" ~version:3);
  Alcotest.(check bool) "empty read set is never covered" false
    (Cache.Leases.covered t ~now:50.0 []);
  Alcotest.(check bool) "partial coverage is no coverage" false
    (Cache.Leases.covered t ~now:50.0 [ ("x", 3); ("y", 1) ]);
  ignore (Cache.Leases.install t ~key:"y" ~version:1 ~issued:10.0 ~until:100.0);
  Alcotest.(check bool) "full coverage" true
    (Cache.Leases.covered t ~now:50.0 [ ("x", 3); ("y", 1) ]);
  (* A shorter-lived duplicate never replaces a longer-lived grant. *)
  Alcotest.(check bool) "superseded install refused" false
    (Cache.Leases.install t ~key:"x" ~version:3 ~issued:20.0 ~until:90.0)

(* Revocation fences the key: a grant issued at or before the fence —
   in flight while the writer settled — must be refused on arrival. *)
let test_site_drop_fences_inflight_grants () =
  let t = Cache.Leases.create () in
  ignore (Cache.Leases.install t ~key:"x" ~version:1 ~issued:10.0 ~until:500.0);
  Cache.Leases.drop t ~now:60.0 [ "x" ];
  Alcotest.(check bool) "dropped" false
    (Cache.Leases.valid t ~now:61.0 ~key:"x" ~version:1);
  Alcotest.(check bool) "in-flight grant from before the fence refused"
    false
    (Cache.Leases.install t ~key:"x" ~version:1 ~issued:50.0 ~until:600.0);
  Alcotest.(check bool) "grant issued after the fence accepted" true
    (Cache.Leases.install t ~key:"x" ~version:2 ~issued:61.0 ~until:600.0);
  (* Duplicated revocations are idempotent. *)
  Cache.Leases.drop t ~now:70.0 [ "x" ];
  Cache.Leases.drop t ~now:70.0 [ "x" ];
  Alcotest.(check int) "installed counts accepts" 2 (Cache.Leases.installed t);
  Alcotest.(check int) "refused counts fenced + superseded" 1
    (Cache.Leases.refused t);
  Alcotest.(check int) "revoked counts held drops" 2 (Cache.Leases.revoked t);
  Alcotest.(check int) "nothing live" 0 (Cache.Leases.live t ~now:80.0)

(* --- Local serve ------------------------------------------------------- *)

(* The tentpole behaviour: after one validated read earns the lease, the
   next read of the same key never leaves the site. *)
let test_local_serve_zero_round_trips () =
  let config = lease_config Server.default_leases in
  with_radical ~config (fun _ fw ->
      let o1 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "first read pays the LVI trip" Runtime.Speculative o1;
      let srv = Framework.server fw in
      Alcotest.(check bool) "grant recorded at the server" true
        (Server.outstanding_leases srv > 0);
      let before = (Server.stats srv).requests in
      let o2 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "second read is lease-local" Runtime.Local o2;
      check_dval "served value is current" (Dval.Str "v1") (ok_value o2);
      Alcotest.(check int) "zero LVI round trips" before
        (Server.stats srv).requests;
      Alcotest.(check bool) "local is cheaper than the round trip" true
        (o2.latency < o1.latency);
      let st = Runtime.stats (Framework.runtime fw Location.ca) in
      Alcotest.(check int) "lease_local counted" 1 st.lease_local;
      Alcotest.(check bool) "grants installed" true (st.lease_installed > 0);
      (* Multi-key coverage: get2 reads x and y — x is leased, y is
         not, so it still pays the trip; once both are leased it is
         local too. *)
      let o3 =
        Framework.invoke fw ~from:Location.ca "get2"
          [ Dval.Str "x"; Dval.Str "y" ]
      in
      check_path "partial coverage pays the trip" Runtime.Speculative o3;
      let o4 =
        Framework.invoke fw ~from:Location.ca "get2"
          [ Dval.Str "x"; Dval.Str "y" ]
      in
      check_path "full coverage is local" Runtime.Local o4)

(* Leases expire: past the term the site falls back to the LVI trip
   (and earns a fresh grant doing so). *)
let test_lease_expires () =
  let leases = { Server.default_leases with duration = 300.0 } in
  with_radical ~config:(lease_config leases) (fun _ fw ->
      let _ = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      let o2 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "within the term: local" Runtime.Local o2;
      Engine.sleep 400.0;
      let o3 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "after expiry: back to the LVI path" Runtime.Speculative o3;
      let o4 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "re-leased" Runtime.Local o4)

(* Off is the seed pipeline: no grants, no table, no local path. *)
let test_leases_off_is_seed_behaviour () =
  with_radical (fun _ fw ->
      let o1 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      let o2 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "first read speculative" Runtime.Speculative o1;
      check_path "repeat read still pays the trip" Runtime.Speculative o2;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "no grants" 0 st.lease_grants;
      Alcotest.(check int) "no revokes" 0 st.lease_revokes;
      Alcotest.(check int) "no table entries" 0
        (Server.outstanding_leases (Framework.server fw));
      let rt = Runtime.stats (Framework.runtime fw Location.ca) in
      Alcotest.(check int) "no local serves" 0 rt.lease_local;
      Alcotest.(check int) "no installs" 0 rt.lease_installed)

(* --- Write-path settling ----------------------------------------------- *)

(* Regression: a write to a leased key must settle the grant (revoke and
   wait for the ack) before it validates — and the reader must never
   serve the stale value locally afterwards. *)
let test_writer_blocked_until_revocation () =
  let config = lease_config Server.default_leases in
  with_radical ~config (fun _ fw ->
      let _ = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      let o_local =
        Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ]
      in
      check_path "CA reads locally under the lease" Runtime.Local o_local;
      let ow =
        Framework.invoke fw ~from:Location.de "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      Alcotest.(check bool) "write succeeded" true (Result.is_ok ow.value);
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check bool) "write found outstanding grants" true
        (st.lease_blocked_writes >= 1);
      Alcotest.(check bool) "revocation fired" true (st.lease_revokes >= 1);
      let ca = Runtime.stats (Framework.runtime fw Location.ca) in
      Alcotest.(check bool) "CA's grant was revoked" true
        (ca.lease_revoked >= 1);
      (* The revoked reader: never a stale local serve. The cache is
         stale so this read mismatches and repairs — but it must leave
         the site (not Local) and return the new value. *)
      let o = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      Alcotest.(check bool) "post-write read leaves the site" true
        (o.path <> Runtime.Local);
      check_dval "post-write read is fresh" (Dval.Str "v2") (ok_value o);
      (* And locality comes back once the repaired read re-leases. *)
      let _ = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      let o' = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "re-leased after repair" Runtime.Local o';
      check_dval "local serve of the new value" (Dval.Str "v2") (ok_value o'))

(* Revocation off: the writer waits out the full lease term plus ε
   before its write validates — slower, never unsafe. *)
let test_writer_waits_out_expiry () =
  let leases =
    { Server.default_leases with duration = 800.0; revoke = false }
  in
  with_radical ~config:(lease_config leases) (fun _ fw ->
      let _ = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      let ow =
        Framework.invoke fw ~from:Location.de "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      Alcotest.(check bool) "write succeeded" true (Result.is_ok ow.value);
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check bool) "write waited out the expiry" true
        (st.lease_expiry_waits >= 1);
      Alcotest.(check int) "no revocation traffic" 0 st.lease_revokes;
      Alcotest.(check bool)
        (Printf.sprintf "write paid the lease term (%.0f ms)" ow.latency)
        true (ow.latency > 300.0);
      let o = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      Alcotest.(check bool) "post-write read leaves the site" true
        (o.path <> Runtime.Local);
      check_dval "post-write read is fresh" (Dval.Str "v2") (ok_value o))

(* Lost revocations degrade to the expiry wait — bounded, never wedged,
   never stale. *)
let test_lost_revocation_degrades_to_expiry_wait () =
  let leases =
    {
      Server.default_leases with
      duration = 600.0;
      revoke_timeout = 100.0;
    }
  in
  with_radical ~config:(lease_config leases) (fun net fw ->
      let _ = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if String.equal label "lease_revoke" then Transport.Drop
          else Transport.Deliver);
      let ow =
        Framework.invoke fw ~from:Location.de "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      Alcotest.(check bool) "write still succeeded" true (Result.is_ok ow.value);
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check bool) "revocation was attempted" true
        (st.lease_revokes >= 1);
      Alcotest.(check bool) "fell back to the expiry wait" true
        (st.lease_expiry_waits >= 1);
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label:_ -> Transport.Deliver);
      let o = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_dval "reader is fresh after the wait" (Dval.Str "v2") (ok_value o))

(* --- Chaos ------------------------------------------------------------- *)

(* 20 seeds of the lease-chaos template (lost, duplicated and delayed
   lease_revoke messages, cache wipes, late cache updates) against a
   lease-enabled deployment: zero violations, deterministic replays. *)
let test_lease_chaos_smoke () =
  let template =
    match Chaos.Plan.find_template "lease-chaos" with
    | Some t -> t
    | None -> Alcotest.fail "lease-chaos template missing"
  in
  let config = { Chaos.Campaign.default_config with leases = true } in
  let app = Experiments.Chaos_exp.of_bundle Experiments.Bundle.social in
  let summary =
    Chaos.Campaign.sweep ~config ~templates:[ template ] ~replay_every:10
      ~seeds:20 app
  in
  Alcotest.(check int) "20 runs" 20 summary.runs;
  Alcotest.(check int) "zero violations" 0 (List.length summary.failures);
  Alcotest.(check int) "deterministic replays" 0
    (List.length summary.replay_mismatches);
  Alcotest.(check bool) "faults actually applied" true
    (summary.total_faults_applied > 0)

let () =
  Alcotest.run "lease"
    [
      ( "table",
        [
          Alcotest.test_case "grant / holders / expiry" `Quick
            test_lease_grant_holders_expiry;
          Alcotest.test_case "forget until_leq guard" `Quick
            test_lease_forget_until_leq_guard;
        ] );
      ( "site",
        [
          Alcotest.test_case "install / valid / covered" `Quick
            test_site_install_valid_covered;
          Alcotest.test_case "drop fences in-flight grants" `Quick
            test_site_drop_fences_inflight_grants;
        ] );
      ( "local-serve",
        [
          Alcotest.test_case "zero round trips under the lease" `Quick
            test_local_serve_zero_round_trips;
          Alcotest.test_case "lease expires" `Quick test_lease_expires;
          Alcotest.test_case "off is seed behaviour" `Quick
            test_leases_off_is_seed_behaviour;
        ] );
      ( "settle",
        [
          Alcotest.test_case "writer blocked until revocation" `Quick
            test_writer_blocked_until_revocation;
          Alcotest.test_case "writer waits out expiry" `Quick
            test_writer_waits_out_expiry;
          Alcotest.test_case "lost revocation degrades to expiry wait" `Quick
            test_lost_revocation_degrades_to_expiry_wait;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "lease-chaos 20-seed smoke" `Slow
            test_lease_chaos_smoke;
        ] );
    ]
