(* Tests for asynchronous cache-update propagation (DESIGN.md §11):
   cross-site freshness, version-guarded installs under duplication and
   reordering, invalidate-only mode, duplicate-delivery dedup at the
   LVI server, the write-set accounting regression, and a chaos smoke
   sweep of the propagation-chaos template. *)

open Sim
open Fdsl.Ast
module Transport = Net.Transport
module Location = Net.Location
module Framework = Radical.Framework
module Runtime = Radical.Runtime
module Server = Radical.Server
module Kv = Store.Kv

(* --- Test functions ------------------------------------------------- *)

let get_fn =
  { fn_name = "get"; params = [ "k" ]; body = Compute (10.0, Read (Input "k")) }

let put_fn =
  {
    fn_name = "put";
    params = [ "k"; "v" ];
    body = Compute (5.0, Seq [ Write (Input "k", Input "v"); Input "v" ]);
  }

let funcs = [ get_fn; put_fn ]

let data = [ ("x", Dval.Str "v1"); ("y", Dval.Str "w1") ]

let prop_config prop =
  {
    Framework.default_config with
    server = { Server.default_config with propagation = prop };
  }

let with_radical ?(seed = 11) ?config ?manual ?(funcs = funcs) ?(data = data) f =
  let e = Engine.create ~seed () in
  Engine.run e (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw = Framework.create ?config ?manual ~net ~funcs ~data () in
      f net fw;
      Framework.stop fw)

let ok_value (o : Runtime.outcome) =
  match o.value with
  | Ok v -> v
  | Error e -> Alcotest.fail ("execution failed: " ^ e)

let check_path msg expected (o : Runtime.outcome) =
  let name = function
    | Runtime.Speculative -> "speculative"
    | Runtime.Backup -> "backup"
    | Runtime.Fallback -> "fallback"
    | Runtime.Local -> "local"
  in
  Alcotest.(check string) msg (name expected) (name o.path)

let check_dval msg expected got =
  Alcotest.(check string) msg (Dval.to_string expected) (Dval.to_string got)

(* --- Cross-site freshness --------------------------------------------- *)

(* The tentpole behaviour: a write committed from one site reaches every
   other site's cache asynchronously, so the next read there validates
   speculatively instead of paying the mismatch/backup path (contrast
   test_radical's cross-site read-after-write, which documents the seed
   behaviour with propagation off). *)
let test_remote_read_validates_after_propagation () =
  let config = prop_config Server.default_propagation in
  with_radical ~config (fun _ fw ->
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "new" ]
      in
      (* Followup commit + 2 ms Nagle window + one-way fan-out. *)
      Engine.sleep 400.0;
      let o = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "remote cache already fresh" Runtime.Speculative o;
      check_dval "fresh value" (Dval.Str "new") (ok_value o);
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check bool) "records published" true (st.prop_records > 0);
      Alcotest.(check bool) "batches flushed" true (st.prop_batches > 0);
      let rt = Framework.runtime fw Location.de in
      Alcotest.(check bool) "DE installed at least x" true
        ((Runtime.stats rt).prop_installed >= 1))

(* Propagation off must be byte-for-byte the seed behaviour: no
   subscriber machinery, no cache_update traffic, and the remote read
   still pays the backup path. *)
let test_propagation_off_is_seed_behaviour () =
  with_radical (fun _ fw ->
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "new" ]
      in
      Engine.sleep 400.0;
      let o = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "stale remote read still mismatches" Runtime.Backup o;
      check_dval "fresh value via backup" (Dval.Str "new") (ok_value o);
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "no records" 0 st.prop_records;
      Alcotest.(check int) "no batches" 0 st.prop_batches;
      let installed =
        List.fold_left
          (fun acc loc ->
            acc + (Runtime.stats (Framework.runtime fw loc)).prop_installed)
          0 (Framework.locations fw)
      in
      Alcotest.(check int) "no installs anywhere" 0 installed)

(* The origin site already installed its own writes optimistically; the
   propagated copy must not double-install (version guard). *)
let test_origin_not_reinstalled () =
  let config = prop_config Server.default_propagation in
  with_radical ~config (fun _ fw ->
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "new" ]
      in
      Engine.sleep 400.0;
      let rt = Framework.runtime fw Location.ca in
      Alcotest.(check int) "origin cache untouched by propagation" 0
        (Runtime.stats rt).prop_installed)

(* --- Version monotonicity under duplication and reordering ------------ *)

let test_monotonic_under_duplication_and_reorder () =
  let config =
    prop_config
      { Server.enabled = true; prop_window = 0.0; invalidate_only = false }
  in
  with_radical ~config (fun net fw ->
      (* Every cache_update message is either duplicated or delayed by a
         random amount — deliveries arrive out of order and more than
         once. Version-guarded installs must still converge every site
         to the newest version and never regress. *)
      let frng = Transport.fault_rng net in
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if String.equal label "cache_update" then
            if Rng.int frng 2 = 0 then Transport.Duplicate
            else Transport.Delay (Rng.float frng 200.0)
          else Transport.Deliver);
      for i = 1 to 6 do
        let _ =
          Framework.invoke fw ~from:Location.ca "put"
            [ Dval.Str "x"; Dval.Str (Printf.sprintf "v%d" i) ]
        in
        Engine.sleep 30.0
      done;
      Engine.sleep 2000.0;
      let primary =
        match Kv.peek (Framework.primary fw) "x" with
        | Some e -> e
        | None -> Alcotest.fail "x missing at primary"
      in
      check_dval "primary holds the last write" (Dval.Str "v6") primary.value;
      List.iter
        (fun loc ->
          let cache = Runtime.cache (Framework.runtime fw loc) in
          match Cache.peek cache "x" with
          | Some { value; version } ->
              Alcotest.(check int)
                (loc ^ " converged to the primary version")
                primary.version version;
              check_dval (loc ^ " holds the newest value") primary.value value
          | None -> Alcotest.fail (loc ^ " lost x"))
        (Framework.locations fw);
      (* And a read anywhere validates without repair. *)
      let o = Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ] in
      check_path "remote read validates" Runtime.Speculative o)

(* Lost cache_update messages are harmless: the site just stays stale
   until its own next mismatch, exactly like propagation off. *)
let test_lost_updates_degrade_to_seed_behaviour () =
  let config = prop_config Server.default_propagation in
  with_radical ~config (fun net fw ->
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if String.equal label "cache_update" then Transport.Drop
          else Transport.Deliver);
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "new" ]
      in
      Engine.sleep 400.0;
      let o = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "falls back to mismatch repair" Runtime.Backup o;
      check_dval "still correct" (Dval.Str "new") (ok_value o);
      let o2 = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "repaired" Runtime.Speculative o2)

(* --- Invalidate-only mode --------------------------------------------- *)

let test_invalidate_only_evicts_stale_entries () =
  let config =
    prop_config
      { Server.enabled = true; prop_window = 2.0; invalidate_only = true }
  in
  with_radical ~config (fun _ fw ->
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "new" ]
      in
      Engine.sleep 400.0;
      let cache = Runtime.cache (Framework.runtime fw Location.de) in
      Alcotest.(check bool) "stale entry evicted, not replaced" true
        (Cache.peek cache "x" = None);
      (* Unrelated keys survive. *)
      Alcotest.(check bool) "y untouched" true (Cache.peek cache "y" <> None);
      (* The next read is a miss — no speculation against a stale value,
         the backup path returns the fresh one and re-seeds the cache. *)
      let o = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "miss takes backup" Runtime.Backup o;
      check_dval "fresh value" (Dval.Str "new") (ok_value o);
      let o2 = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "re-seeded" Runtime.Speculative o2)

(* --- Duplicate LVI delivery ------------------------------------------- *)

(* The transport's Duplicate fault delivers the same LVI request twice.
   The server's reply cache must hand both deliveries one response and
   process the side effects (locks, intent, version bumps) once. *)
let test_duplicate_lvi_delivery_processed_once () =
  with_radical (fun net fw ->
      let first = ref true in
      Transport.set_fault net (fun ~src ~dst:_ ~label ->
          if String.equal label "lvi" && src = Location.ca && !first then begin
            first := false;
            Transport.Duplicate
          end
          else Transport.Deliver);
      let o =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      check_path "client unaffected" Runtime.Speculative o;
      Engine.sleep 500.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "duplicate detected" 1 st.dup_deliveries;
      Alcotest.(check int) "validated once" 1 st.validated;
      Alcotest.(check int) "followup applied once" 1 st.followups_applied;
      (match Kv.peek (Framework.primary fw) "x" with
      | Some { value; version } ->
          check_dval "value committed" (Dval.Str "v2") value;
          Alcotest.(check int) "version bumped exactly once" 2 version
      | None -> Alcotest.fail "x missing");
      Alcotest.(check int) "locks drained" 0
        (Server.locks_held (Framework.server fw));
      Alcotest.(check int) "no orphaned intent" 0
        (Server.pending_intents (Framework.server fw)))

(* --- Write-set accounting regression ---------------------------------- *)

(* Regression for the version-accounting bug: a write outside the
   validated write set used to be silently committed with a fabricated
   base version (Option.value ~default:0). The only way to produce one
   is an unsound manual f^rw that under-predicts the write set; the
   runtime must now refuse loudly instead of corrupting versions. *)
let sneaky_fn =
  {
    fn_name = "sneaky";
    params = [ "u" ];
    body =
      Compute
        ( 5.0,
          Seq
            [
              Write (Opaque (Concat [ Str "sneak:a:"; Input "u" ]), Input "u");
              Write (Opaque (Concat [ Str "sneak:b:"; Input "u" ]), Input "u");
              Input "u";
            ] );
  }

(* Under-predicts: declares only the first write. *)
let sneaky_rw =
  {
    fn_name = "sneaky^rw";
    params = [ "u" ];
    body = Declare (Decl_write, Concat [ Str "sneak:a:"; Input "u" ]);
  }

let test_write_outside_validated_set_raises () =
  (* The registration-time effect certifier rejects this very lie
     (bytecode write not covered by the declared f^rw); disable the
     gate so the *runtime* accounting check is the one under test. *)
  Radical.Registry.set_certification false;
  Fun.protect ~finally:(fun () -> Radical.Registry.set_certification true)
  @@ fun () ->
  with_radical ~funcs:(sneaky_fn :: funcs)
    ~manual:[ (sneaky_fn, sneaky_rw) ]
    (fun _ fw ->
      match Framework.invoke fw ~from:Location.ca "sneaky" [ Dval.Str "u1" ] with
      | exception Invalid_argument msg ->
          let contains s sub =
            let n = String.length s and m = String.length sub in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            m = 0 || go 0
          in
          Alcotest.(check bool) "names the unvalidated key" true
            (contains msg "sneak:b:")
      | o ->
          Alcotest.fail
            ("expected Invalid_argument, got a "
            ^ (match o.path with
              | Runtime.Speculative -> "speculative"
              | Runtime.Backup -> "backup"
              | Runtime.Fallback -> "fallback"
              | Runtime.Local -> "local")
            ^ " outcome"))

(* --- Chaos smoke ------------------------------------------------------- *)

(* 20 seeds of the propagation-chaos template (lost, duplicated and
   delayed cache_update messages, plus a low-probability duplicate
   window over every protocol message) against a propagation-enabled
   deployment: zero violations, deterministic replays. *)
let test_propagation_chaos_smoke () =
  let template =
    match Chaos.Plan.find_template "propagation-chaos" with
    | Some t -> t
    | None -> Alcotest.fail "propagation-chaos template missing"
  in
  let config = { Chaos.Campaign.default_config with propagation = true } in
  let app = Experiments.Chaos_exp.of_bundle Experiments.Bundle.social in
  let summary =
    Chaos.Campaign.sweep ~config ~templates:[ template ] ~replay_every:10
      ~seeds:20 app
  in
  Alcotest.(check int) "20 runs" 20 summary.runs;
  Alcotest.(check int) "zero violations" 0 (List.length summary.failures);
  Alcotest.(check int) "deterministic replays" 0
    (List.length summary.replay_mismatches);
  Alcotest.(check bool) "faults actually applied" true
    (summary.total_faults_applied > 0)

let () =
  Alcotest.run "propagation"
    [
      ( "freshness",
        [
          Alcotest.test_case "remote read validates after propagation" `Quick
            test_remote_read_validates_after_propagation;
          Alcotest.test_case "off is seed behaviour" `Quick
            test_propagation_off_is_seed_behaviour;
          Alcotest.test_case "origin not reinstalled" `Quick
            test_origin_not_reinstalled;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "monotonic under duplication and reorder" `Quick
            test_monotonic_under_duplication_and_reorder;
          Alcotest.test_case "lost updates degrade to seed behaviour" `Quick
            test_lost_updates_degrade_to_seed_behaviour;
          Alcotest.test_case "invalidate-only evicts stale entries" `Quick
            test_invalidate_only_evicts_stale_entries;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "duplicate lvi delivery processed once" `Quick
            test_duplicate_lvi_delivery_processed_once;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "write outside validated set raises" `Quick
            test_write_outside_validated_set_raises;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "propagation-chaos 20-seed smoke" `Slow
            test_propagation_chaos_smoke;
        ] );
    ]
