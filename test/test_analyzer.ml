(* Tests for the static analyzer: classification, residual f^rw
   behaviour, and exactness of the predicted read/write set against the
   accesses the real execution performs. *)

open Fdsl
open Ast
module Derive = Analyzer.Derive
module Rwset = Analyzer.Rwset

let derive_ok f =
  match Derive.derive f with
  | Ok d -> d
  | Error e -> Alcotest.fail (Format.asprintf "%a" Derive.pp_error e)

let classification d = d.Derive.classification

let store_read store k =
  Option.value ~default:Dval.Unit (List.assoc_opt k store)

let rwset =
  Alcotest.testable Rwset.pp Rwset.equal

(* ------------------------------------------------------------------ *)
(* Rwset                                                               *)

let test_rwset_normalization () =
  let s = Rwset.make ~reads:[ "b"; "a"; "b"; "c" ] ~writes:[ "c"; "c" ] in
  Alcotest.(check (list string)) "reads sorted, deduped (written keys kept)"
    [ "a"; "b"; "c" ] s.Rwset.reads;
  Alcotest.(check (list string)) "writes" [ "c" ] s.Rwset.writes;
  Alcotest.(check (list string)) "all keys" [ "a"; "b"; "c" ] (Rwset.all_keys s);
  Alcotest.(check bool) "has writes" true (Rwset.has_writes s);
  Alcotest.(check int) "cardinal" 4 (Rwset.cardinal s);
  (* Write locks dominate for read+written keys. *)
  Alcotest.(check (list (pair string bool)))
    "lock modes"
    [ ("a", false); ("b", false); ("c", true) ]
    (List.map (fun (k, m) -> (k, m = `W)) (Rwset.lock_modes s))

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let profile_fn =
  {
    fn_name = "profile";
    params = [ "user" ];
    body =
      Compute
        ( 100.0,
          Record_lit
            [
              ("user", Read (Concat [ Str "user:"; Input "user" ]));
              ("posts", Read (Concat [ Str "posts:"; Input "user" ]));
            ] );
  }

let test_static_classification () =
  let d = derive_ok profile_fn in
  (match classification d with
  | Derive.Static -> ()
  | c -> Alcotest.fail (Format.asprintf "expected static, got %a" Derive.pp_classification c))

let timeline_fn =
  (* Key of the inner reads depends on the follows list: dependent. *)
  {
    fn_name = "timeline";
    params = [ "user" ];
    body =
      Let
        ( "ids",
          Read (Concat [ Str "follows:"; Input "user" ]),
          Foreach
            ( "id",
              Var "ids",
              Compute (5.0, Read (Concat [ Str "posts:"; Var "id" ])) ) );
  }

let test_dependent_classification () =
  let d = derive_ok timeline_fn in
  match classification d with
  | Derive.Dependent 1 -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "expected dependent(1), got %a" Derive.pp_classification c)

let test_expensive_classification () =
  let f =
    {
      fn_name = "mine";
      params = [ "seed" ];
      body = Read (Concat [ Str "k:"; Str_of_int (Compute (200.0, Input "seed")) ]);
    }
  in
  let d = derive_ok f in
  match classification d with
  | Derive.Expensive -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "expected expensive, got %a" Derive.pp_classification c)

let test_opaque_key_unanalyzable () =
  let f =
    {
      fn_name = "shady";
      params = [];
      body = Read (Opaque (Str "k"));
    }
  in
  match Derive.derive f with
  | Error e -> Alcotest.(check string) "names the function" "shady" e.fn_name
  | Ok _ -> Alcotest.fail "expected unanalyzable"

let test_opaque_branch_unanalyzable () =
  let f =
    {
      fn_name = "shady-branch";
      params = [];
      body = If (Opaque (Bool true), Read (Str "a"), Read (Str "b"));
    }
  in
  match Derive.derive f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unanalyzable"

let test_opaque_result_is_fine () =
  (* Opaqueness only in the result value doesn't block key prediction. *)
  let f =
    {
      fn_name = "opaque-result";
      params = [];
      body = Seq [ Write (Str "k", Unit); Opaque (Str "mystery") ];
    }
  in
  let d = derive_ok f in
  match classification d with
  | Derive.Static -> ()
  | _ -> Alcotest.fail "expected static"

let test_nondeterministic_key_unanalyzable () =
  let f =
    { fn_name = "rand-key"; params = []; body = Read (Str_of_int (Random_int 5)) }
  in
  match Derive.derive f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unanalyzable"

(* ------------------------------------------------------------------ *)
(* Prediction                                                          *)

let predict ?(cache = []) ?compute d args =
  Derive.predict d ~read:(store_read cache) ?compute args

let actual_accesses f store args =
  let reads = ref [] and writes = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) store;
  let host =
    Eval.host
      ~read:(fun k ->
        reads := k :: !reads;
        Option.value ~default:Dval.Unit (Hashtbl.find_opt tbl k))
      ~write:(fun k v ->
        writes := k :: !writes;
        Hashtbl.replace tbl k v)
      ()
  in
  let _ = Eval.eval host f args in
  Rwset.make ~reads:!reads ~writes:!writes

let test_static_prediction_exact () =
  let d = derive_ok profile_fn in
  let args = [ Dval.Str "u9" ] in
  Alcotest.check rwset "prediction matches execution"
    (actual_accesses profile_fn [] args)
    (predict d args)

let test_static_prediction_no_cache_fetch () =
  let d = derive_ok profile_fn in
  let fetches = ref 0 in
  let _ =
    Derive.predict d
      ~read:(fun _ ->
        incr fetches;
        Dval.Unit)
      [ Dval.Str "u9" ]
  in
  Alcotest.(check int) "static f^rw reads nothing" 0 !fetches

let test_static_prediction_strips_compute () =
  let d = derive_ok profile_fn in
  let charged = ref 0.0 in
  let _ = predict d ~compute:(fun ms -> charged := !charged +. ms) [ Dval.Str "u" ] in
  Alcotest.(check (float 1e-9)) "no compute in static f^rw" 0.0 !charged

let follows_cache =
  [
    ("follows:u1", Dval.List [ Dval.Str "a"; Dval.Str "b"; Dval.Str "c" ]);
    ("posts:a", Dval.Str "pa");
    ("posts:b", Dval.Str "pb");
    ("posts:c", Dval.Str "pc");
  ]

let test_dependent_prediction_exact () =
  let d = derive_ok timeline_fn in
  let args = [ Dval.Str "u1" ] in
  Alcotest.check rwset "prediction from coherent cache is exact"
    (actual_accesses timeline_fn follows_cache args)
    (predict ~cache:follows_cache d args)

let test_dependent_prediction_uses_cache () =
  let d = derive_ok timeline_fn in
  (* A stale cache (shorter follows list) predicts a smaller read set —
     which validation would catch via the follows key's version. *)
  let stale = [ ("follows:u1", Dval.List [ Dval.Str "a" ]) ] in
  let s = predict ~cache:stale d [ Dval.Str "u1" ] in
  Alcotest.(check (list string)) "keys from stale cache"
    [ "follows:u1"; "posts:a" ] s.Rwset.reads

let test_dependent_fetches_only_influencing () =
  (* The per-post reads feed no key, so f^rw must declare them without
     touching the cache — only the follows list is fetched. *)
  let d = derive_ok timeline_fn in
  let fetches = ref 0 in
  let s =
    Derive.predict d
      ~read:(fun k ->
        incr fetches;
        store_read follows_cache k)
      [ Dval.Str "u1" ]
  in
  Alcotest.(check int) "single cache fetch" 1 !fetches;
  Alcotest.(check int) "all four reads predicted" 4
    (List.length s.Rwset.reads)

let test_dependent_prediction_strips_inner_compute () =
  let d = derive_ok timeline_fn in
  let charged = ref 0.0 in
  let _ =
    predict ~cache:follows_cache d
      ~compute:(fun ms -> charged := !charged +. ms)
      [ Dval.Str "u1" ]
  in
  Alcotest.(check (float 1e-9)) "per-post compute stripped" 0.0 !charged

let test_expensive_prediction_charges_compute () =
  let f =
    {
      fn_name = "mine";
      params = [ "seed" ];
      body = Read (Concat [ Str "k:"; Str_of_int (Compute (200.0, Input "seed")) ]);
    }
  in
  let d = derive_ok f in
  let charged = ref 0.0 in
  let s = predict d ~compute:(fun ms -> charged := !charged +. ms) [ Dval.Int 3L ] in
  Alcotest.(check (float 1e-9)) "compute kept" 200.0 !charged;
  Alcotest.(check (list string)) "key correct" [ "k:3" ] s.Rwset.reads

let test_branchy_prediction_follows_control () =
  let f =
    {
      fn_name = "branchy";
      params = [ "n" ];
      body =
        If
          ( Binop (Gt, Input "n", Int 10L),
            Write (Str "big", Compute (50.0, Input "n")),
            Write (Str "small", Input "n") );
    }
  in
  let d = derive_ok f in
  let s_hi = predict d [ Dval.Int 50L ] in
  let s_lo = predict d [ Dval.Int 5L ] in
  Alcotest.(check (list string)) "big branch" [ "big" ] s_hi.Rwset.writes;
  Alcotest.(check (list string)) "small branch" [ "small" ] s_lo.Rwset.writes

let test_write_value_reads_are_logged () =
  (* write(k, read(k2)): k2's value is never key-relevant, yet the real
     execution reads it, so f^rw must still declare it. *)
  let f =
    {
      fn_name = "copy";
      params = [];
      body = Write (Str "dst", Read (Str "src"));
    }
  in
  let d = derive_ok f in
  let fetches = ref 0 in
  let s =
    Derive.predict d
      ~read:(fun _ ->
        incr fetches;
        Dval.Unit)
      []
  in
  Alcotest.(check (list string)) "src logged" [ "src" ] s.Rwset.reads;
  Alcotest.(check (list string)) "dst logged" [ "dst" ] s.Rwset.writes;
  Alcotest.(check int) "but not fetched" 0 !fetches

let test_fanout_writes_predicted () =
  (* The social-media "post" shape: read followers, write each timeline. *)
  let f =
    {
      fn_name = "post";
      params = [ "user"; "text" ];
      body =
        Let
          ( "fs",
            Read (Concat [ Str "followers:"; Input "user" ]),
            Seq
              [
                Write (Concat [ Str "posts:"; Input "user" ], Input "text");
                Foreach
                  ( "fid",
                    Var "fs",
                    Write (Concat [ Str "timeline:"; Var "fid" ], Input "text")
                  );
              ] );
    }
  in
  let d = derive_ok f in
  (match classification d with
  | Derive.Dependent 1 -> ()
  | c -> Alcotest.fail (Format.asprintf "got %a" Derive.pp_classification c));
  let cache = [ ("followers:u", Dval.List [ Dval.Str "f1"; Dval.Str "f2" ]) ] in
  let s = predict ~cache d [ Dval.Str "u"; Dval.Str "hi" ] in
  Alcotest.(check (list string)) "write fan-out"
    [ "posts:u"; "timeline:f1"; "timeline:f2" ]
    s.Rwset.writes;
  Alcotest.(check (list string)) "followers read" [ "followers:u" ] s.Rwset.reads

(* ------------------------------------------------------------------ *)
(* Key shapes (Absint)                                                 *)

module Absint = Analyzer.Absint

let shape_str sm = List.map Absint.shape_to_string sm

let test_summarize_shapes () =
  let sm = Absint.summarize profile_fn in
  Alcotest.(check (list string)) "profile read shapes"
    [ {|"posts:" ^ <user>|}; {|"user:" ^ <user>|} ]
    (shape_str sm.Absint.sm_reads);
  Alcotest.(check (list string)) "no writes" [] (shape_str sm.Absint.sm_writes);
  Alcotest.(check bool) "not top" false sm.Absint.sm_top;
  let tm = Absint.summarize timeline_fn in
  (* The per-post read runs under Foreach: one invocation may lock many
     posts:* keys. *)
  Alcotest.(check bool) "timeline posts shape is multi" true
    (List.exists
       (fun s -> Absint.shape_to_string s = {|"posts:" ^ <id>|})
       tm.Absint.sm_multi)

let test_shape_join_sound () =
  (* The "aa" vs "aaa" trap: stripping a common prefix AND suffix from
     overlapping occurrences would yield "aa" ^ hole ^ "a", which fails
     to match "aa". The join must still cover both inputs. *)
  let a = [ Absint.Lit "aa" ] and b = [ Absint.Lit "aaa" ] in
  let j = Absint.join a b in
  Alcotest.(check bool) "join covers aa" true (Absint.matches j "aa");
  Alcotest.(check bool) "join covers aaa" true (Absint.matches j "aaa")

let test_shape_overlap_and_order () =
  let hole label = Absint.Hole { src = Absint.Input_only; label } in
  let timeline l = [ Absint.Lit "timeline:"; hole l ] in
  let posts = [ Absint.Lit "posts:"; hole "a" ] in
  Alcotest.(check bool) "same prefix overlaps" true
    (Absint.overlap (timeline "a") (timeline "b"));
  Alcotest.(check bool) "distinct prefixes disjoint" false
    (Absint.overlap posts (timeline "a"));
  Alcotest.(check bool) "top overlaps everything" true
    (Absint.overlap Absint.top posts);
  (* Lock order (lexicographic keys, §3.6). *)
  Alcotest.(check bool) "posts:* sorts before timeline:*" true
    (Absint.ordered_before posts (timeline "a") = Some true);
  Alcotest.(check bool) "same-prefix order undecided" true
    (Absint.ordered_before (timeline "a") (timeline "b") = None)

(* ------------------------------------------------------------------ *)
(* Conflict analysis                                                   *)

module Conflict = Analyzer.Conflict

let mk_fn name body = { fn_name = name; params = [ "x" ]; body }

let conflict_corpus =
  [
    mk_fn "reader" (Read (Str "home"));
    mk_fn "other-reader" (Read (Str "home"));
    mk_fn "writer" (Write (Str "home", Input "x"));
    mk_fn "elsewhere" (Write (Concat [ Str "log:"; Input "x" ], Int 1L));
    mk_fn "bumper"
      (Write (Str "counter", Binop (Add, Read (Str "counter"), Int 1L)));
  ]

let conflict_report =
  lazy (Conflict.build (List.map Absint.summarize conflict_corpus))

let test_conflict_verdicts () =
  let r = Lazy.force conflict_report in
  let check_pair a b v =
    Alcotest.(check bool)
      (Printf.sprintf "%s vs %s" a b)
      true
      (Conflict.find_pair r a b = Some v)
  in
  check_pair "reader" "other-reader" Conflict.Read_share;
  check_pair "reader" "writer" Conflict.May_conflict;
  check_pair "reader" "elsewhere" Conflict.Disjoint;
  check_pair "writer" "elsewhere" Conflict.Disjoint;
  Alcotest.(check bool) "bumper is rmw" true
    (List.mem_assoc "bumper" r.Conflict.r_rmw);
  Alcotest.(check bool) "plain writer is not rmw" false
    (List.mem_assoc "writer" r.Conflict.r_rmw);
  Alcotest.(check int) "reader degree" 1 (Conflict.degree r "reader");
  Alcotest.(check int) "elsewhere degree" 0 (Conflict.degree r "elsewhere")

let test_conflict_order_hazards () =
  (* Two functions that each write several timeline:* keys under a
     Foreach: without sorted acquisition they could deadlock, so the
     hazard must be reported. A single-key writer must not trigger it. *)
  let fanout name =
    mk_fn name
      (Foreach
         ( "f",
           Read (Concat [ Str "followers:"; Input "x" ]),
           Write (Concat [ Str "timeline:"; Var "f" ], Int 1L) ))
  in
  let r =
    Conflict.build
      (List.map Absint.summarize [ fanout "post-a"; fanout "post-b" ])
  in
  Alcotest.(check bool) "fan-out pair has order hazard" true
    (r.Conflict.r_order_hazards <> []);
  let single =
    Conflict.build
      (List.map Absint.summarize
         [
           mk_fn "w1" (Write (Concat [ Str "t:"; Input "x" ], Int 1L));
           mk_fn "w2" (Write (Concat [ Str "t:"; Input "x" ], Int 2L));
         ])
  in
  Alcotest.(check (list string)) "single-key writers: no hazard" []
    (List.map
       (fun (a, b, _, _) -> a ^ "/" ^ b)
       single.Conflict.r_order_hazards)

(* ------------------------------------------------------------------ *)
(* Residual optimizer                                                  *)

module Optimize = Analyzer.Optimize

let test_simplify_folds_constants () =
  let e =
    If
      ( Binop (Eq, Int 1L, Int 1L),
        Concat [ Str "a:"; Input "x" ],
        Read (Str "never") )
  in
  (match Optimize.simplify e with
  | Concat [ Str "a:"; Input "x" ] -> ()
  | e' -> Alcotest.fail (Format.asprintf "unexpected residual %a" Ast.pp e'));
  (* Short-circuit folding must preserve the conditional evaluation the
     interpreter performs: a truthy Or left arm decides the value. *)
  match Optimize.simplify (Binop (Or, Bool true, Read (Str "x"))) with
  | Bool true -> ()
  | e' -> Alcotest.fail (Format.asprintf "or not folded: %a" Ast.pp e')

let test_optimize_collapses_equivalent_arms () =
  (* forum-digest in miniature: both arms of a config-dependent branch
     touch the same keys, so the residual branch collapses and the
     config read stops being control-relevant -> Static upgrade. *)
  let f =
    mk_fn "digestish"
      (Let
         ( "cfg",
           Read (Str "cfg"),
           If
             ( Var "cfg",
               Record_lit
                 [
                   ("layout", Str "classic");
                   ("home", Read (Str "home"));
                   ("me", Read (Concat [ Str "user:"; Input "x" ]));
                 ],
               Record_lit
                 [
                   ("layout", Str "cards");
                   ("home", Read (Str "home"));
                   ("me", Read (Concat [ Str "user:"; Input "x" ]));
                 ] ) ))
  in
  let d = derive_ok f in
  (match classification d with
  | Derive.Dependent 1 -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "raw should be dependent(1), got %a"
           Derive.pp_classification c));
  let d' = Optimize.optimize d in
  (match classification d' with
  | Derive.Static -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "optimized should be static, got %a"
           Derive.pp_classification c));
  Alcotest.(check bool) "counts as upgrade" true
    (Optimize.upgraded ~before:d ~after:d');
  (* The optimized residual needs no cache and still predicts the exact
     access set of the real execution, whatever the config value. *)
  List.iter
    (fun cfg ->
      let store =
        [ ("cfg", cfg); ("home", Dval.Str "h"); ("user:u", Dval.Str "u") ]
      in
      let args = [ Dval.Str "u" ] in
      let fetches = ref 0 in
      let s =
        Derive.predict d'
          ~read:(fun k ->
            incr fetches;
            store_read store k)
          args
      in
      Alcotest.(check int) "no cache fetches" 0 !fetches;
      Alcotest.check rwset "exact prediction" (actual_accesses f store args) s)
    [ Dval.Bool true; Dval.Bool false ]

let test_optimize_demotes_dead_dependent_read () =
  (* After the statically-false branch is pruned, the cfg read no longer
     feeds any key: it must be demoted to a declared (validated but not
     cache-fetched) read, upgrading Dependent -> Static. *)
  let f =
    mk_fn "deadcfg"
      (Let
         ( "v",
           Read (Str "cfg"),
           If
             ( Binop (Eq, Int 1L, Int 2L),
               Read (Concat [ Str "k:"; Var "v" ]),
               Read (Str "fixed") ) ))
  in
  let d = derive_ok f in
  (match classification d with
  | Derive.Dependent 1 -> ()
  | c -> Alcotest.fail (Format.asprintf "%a" Derive.pp_classification c));
  let d' = Optimize.optimize d in
  (match classification d' with
  | Derive.Static -> ()
  | c -> Alcotest.fail (Format.asprintf "%a" Derive.pp_classification c));
  let store = [ ("cfg", Dval.Str "c"); ("fixed", Dval.Int 7L) ] in
  let args = [ Dval.Str "u" ] in
  let fetches = ref 0 in
  let s =
    Derive.predict d'
      ~read:(fun k ->
        incr fetches;
        store_read store k)
      args
  in
  Alcotest.(check int) "no cache fetches" 0 !fetches;
  Alcotest.check rwset "cfg still validated" (actual_accesses f store args) s

let test_optimize_never_downgrades () =
  (* A genuinely dependent function must come through unchanged in
     class, and the optimized residual must agree with the raw one. *)
  let d = derive_ok timeline_fn in
  let d' = Optimize.optimize d in
  (match classification d' with
  | Derive.Dependent 1 -> ()
  | c -> Alcotest.fail (Format.asprintf "%a" Derive.pp_classification c));
  Alcotest.(check bool) "not an upgrade" false
    (Optimize.upgraded ~before:d ~after:d');
  let args = [ Dval.Str "u1" ] in
  Alcotest.check rwset "optimized == raw on coherent cache"
    (predict ~cache:follows_cache d args)
    (predict ~cache:follows_cache d' args)

let test_optimize_foreach_over_read_list () =
  (* Foreach over a store-read list: the optimizer must keep the list
     read as the single cache fetch and keep per-element reads aligned
     with iteration. *)
  let d = Optimize.optimize (derive_ok timeline_fn) in
  let fetches = ref 0 in
  let s =
    Derive.predict d
      ~read:(fun k ->
        incr fetches;
        store_read follows_cache k)
      [ Dval.Str "u1" ]
  in
  Alcotest.(check int) "single cache fetch" 1 !fetches;
  Alcotest.(check (list string)) "all reads, iteration order preserved"
    [ "follows:u1"; "posts:a"; "posts:b"; "posts:c" ]
    s.Rwset.reads

let test_optimize_nested_if_read_alignment () =
  (* Regression: [Optimize.demote] re-runs the relevance analysis on the
     SIMPLIFIED body. If Read ids were taken from the original body, the
     pruned outer branch would shift every id and the cfg read (still
     control-relevant for the inner If) could be demoted by mistake. *)
  let f =
    mk_fn "nested"
      (If
         ( Binop (Eq, Int 1L, Int 1L),
           Let
             ( "c",
               Read (Str "cfg"),
               If
                 ( Var "c",
                   Read (Concat [ Str "a:"; Input "x" ]),
                   Read (Str "b") ) ),
           Read (Str "dead") ))
  in
  let d = Optimize.optimize (derive_ok f) in
  (match classification d with
  | Derive.Dependent 1 -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "cfg must stay a fetched read, got %a"
           Derive.pp_classification c));
  List.iter
    (fun (cfg, expected_reads) ->
      let store =
        [ ("cfg", cfg); ("a:u", Dval.Int 1L); ("b", Dval.Int 2L) ]
      in
      let s = predict ~cache:store d [ Dval.Str "u" ] in
      Alcotest.(check (list string)) "reads follow the inner branch"
        expected_reads s.Rwset.reads;
      Alcotest.check rwset "exact vs execution"
        (actual_accesses f store [ Dval.Str "u" ])
        s)
    [
      (Dval.Bool true, [ "a:u"; "cfg" ]);
      (Dval.Bool false, [ "b"; "cfg" ]);
    ]

let test_specialize_binds_inputs () =
  let f =
    mk_fn "branchy"
      (If
         ( Binop (Gt, Input "x", Int 10L),
           Read (Str "big"),
           Read (Str "small") ))
  in
  let g = Optimize.specialize f [ ("x", Dval.Int 20L) ] in
  match g.body with
  | Read (Str "big") -> ()
  | e -> Alcotest.fail (Format.asprintf "not specialized: %a" Ast.pp e)

(* The soundness property: on a coherent cache, prediction equals the
   accesses of the real execution, for randomized inputs over a fixed
   corpus of analyzable functions. *)
let corpus = [ profile_fn; timeline_fn ]

let prop_prediction_sound =
  QCheck.Test.make ~name:"predicted rwset = actual accesses (coherent cache)"
    ~count:200
    QCheck.(pair (int_range 0 1) (int_range 0 9))
    (fun (which, user_n) ->
      let f = List.nth corpus which in
      let user = Printf.sprintf "u%d" user_n in
      let store =
        ("follows:" ^ user, Dval.List [ Dval.Str "x"; Dval.Str "y" ])
        :: ("posts:x", Dval.Str "px")
        :: ("posts:y", Dval.Str "py")
        :: [ ("user:" ^ user, Dval.Str user); ("posts:" ^ user, Dval.Str "") ]
      in
      let d = derive_ok f in
      let args = [ Dval.Str user ] in
      Rwset.equal
        (actual_accesses f store args)
        (Derive.predict d ~read:(store_read store) args))

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "analyzer"
    [
      ("rwset", [ Alcotest.test_case "normalization" `Quick test_rwset_normalization ]);
      ( "classification",
        [
          Alcotest.test_case "static" `Quick test_static_classification;
          Alcotest.test_case "dependent" `Quick test_dependent_classification;
          Alcotest.test_case "expensive" `Quick test_expensive_classification;
          Alcotest.test_case "opaque key unanalyzable" `Quick
            test_opaque_key_unanalyzable;
          Alcotest.test_case "opaque branch unanalyzable" `Quick
            test_opaque_branch_unanalyzable;
          Alcotest.test_case "opaque result ok" `Quick test_opaque_result_is_fine;
          Alcotest.test_case "nondeterministic key unanalyzable" `Quick
            test_nondeterministic_key_unanalyzable;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "static exact" `Quick test_static_prediction_exact;
          Alcotest.test_case "static: no cache fetch" `Quick
            test_static_prediction_no_cache_fetch;
          Alcotest.test_case "static: compute stripped" `Quick
            test_static_prediction_strips_compute;
          Alcotest.test_case "dependent exact" `Quick
            test_dependent_prediction_exact;
          Alcotest.test_case "dependent uses cache" `Quick
            test_dependent_prediction_uses_cache;
          Alcotest.test_case "dependent fetches only influencing" `Quick
            test_dependent_fetches_only_influencing;
          Alcotest.test_case "dependent: inner compute stripped" `Quick
            test_dependent_prediction_strips_inner_compute;
          Alcotest.test_case "expensive charges compute" `Quick
            test_expensive_prediction_charges_compute;
          Alcotest.test_case "branches follow control" `Quick
            test_branchy_prediction_follows_control;
          Alcotest.test_case "write-value reads logged" `Quick
            test_write_value_reads_are_logged;
          Alcotest.test_case "fan-out writes predicted" `Quick
            test_fanout_writes_predicted;
        ]
        @ qsuite [ prop_prediction_sound ] );
      ( "shapes",
        [
          Alcotest.test_case "summarize" `Quick test_summarize_shapes;
          Alcotest.test_case "join is sound" `Quick test_shape_join_sound;
          Alcotest.test_case "overlap and order" `Quick
            test_shape_overlap_and_order;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "pairwise verdicts" `Quick test_conflict_verdicts;
          Alcotest.test_case "order hazards" `Quick test_conflict_order_hazards;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "constant folding" `Quick
            test_simplify_folds_constants;
          Alcotest.test_case "equivalent arms collapse" `Quick
            test_optimize_collapses_equivalent_arms;
          Alcotest.test_case "dead dependent read demoted" `Quick
            test_optimize_demotes_dead_dependent_read;
          Alcotest.test_case "never downgrades" `Quick
            test_optimize_never_downgrades;
          Alcotest.test_case "foreach over read list" `Quick
            test_optimize_foreach_over_read_list;
          Alcotest.test_case "nested-if read alignment" `Quick
            test_optimize_nested_if_read_alignment;
          Alcotest.test_case "specialize" `Quick test_specialize_binds_inputs;
        ] );
    ]
