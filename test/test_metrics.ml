(* Tests for the metrics library: percentile interpolation in Stats and
   the request-scoped tracer (noop behavior, span trees, end-to-end
   phase attribution across the Speculative and Backup paths). *)

open Sim
open Fdsl.Ast
module Stats = Metrics.Stats
module Tracer = Metrics.Tracer
module Span = Metrics.Span
module Transport = Net.Transport
module Location = Net.Location
module Framework = Radical.Framework
module Runtime = Radical.Runtime

let checkf = Alcotest.(check (float 1e-9))

let run_sim ?(seed = 3) f =
  let e = Engine.create ~seed () in
  Engine.run e f

(* ------------------------------------------------------------------ *)
(* Stats.percentile — type-7 linear interpolation                      *)

let test_percentile_interpolation () =
  let s = Stats.of_list (List.init 100 (fun i -> float_of_int (i + 1))) in
  checkf "median" 50.5 (Stats.median s);
  checkf "p99" 99.01 (Stats.p99 s);
  checkf "p90" 90.1 (Stats.percentile s 0.9);
  checkf "p0 = min" (Stats.min s) (Stats.percentile s 0.0);
  checkf "p100 = max" (Stats.max s) (Stats.percentile s 1.0)

let test_percentile_small_sets () =
  let one = Stats.of_list [ 42.0 ] in
  checkf "single-sample median" 42.0 (Stats.median one);
  checkf "single-sample p99" 42.0 (Stats.p99 one);
  let two = Stats.of_list [ 0.0; 1.0 ] in
  checkf "two-sample median interpolates" 0.5 (Stats.median two);
  let five = Stats.of_list [ 50.0; 10.0; 40.0; 20.0; 30.0 ] in
  checkf "five-sample median" 30.0 (Stats.median five);
  checkf "five-sample p25 on order statistic" 20.0 (Stats.percentile five 0.25);
  checkf "five-sample p90 between order statistics" 46.0
    (Stats.percentile five 0.9)

let test_percentile_rejects_bad_rank () =
  let s = Stats.of_list [ 1.0 ] in
  Alcotest.check_raises "rank above 1"
    (Invalid_argument "Stats.percentile: rank out of range") (fun () ->
      ignore (Stats.percentile s 1.5));
  Alcotest.check_raises "negative rank"
    (Invalid_argument "Stats.percentile: rank out of range") (fun () ->
      ignore (Stats.percentile s (-0.1)))

(* ------------------------------------------------------------------ *)
(* Tracer: disabled                                                    *)

(* Runs outside any engine on purpose: the noop tracer must never touch
   the virtual clock, or instrumented code would raise Not_running. *)
let test_noop_tracer () =
  let t = Tracer.noop in
  Alcotest.(check bool) "disabled" false (Tracer.enabled t);
  let root = Tracer.root t "fn" in
  Alcotest.(check bool) "no root span" true (root = None);
  let child = Tracer.child t ~parent:root "phase" in
  Alcotest.(check bool) "no child span" true (child = None);
  Tracer.annotate root "k" "v";
  Tracer.stop child;
  Alcotest.(check int) "with_phase runs the thunk" 7
    (Tracer.with_phase t ~parent:root "p" (fun () -> 7));
  Tracer.register_exec t ~exec_id:"e1" root;
  Alcotest.(check bool) "no exec span" true
    (Tracer.exec_span t ~exec_id:"e1" = None);
  Tracer.finalize t ~fn:"fn" ~path:"Speculative" root;
  Alcotest.(check int) "no traces" 0 (Tracer.trace_count t);
  Alcotest.(check string) "empty json" "{}" (Tracer.phases_json t)

(* ------------------------------------------------------------------ *)
(* Tracer: span trees                                                  *)

let test_span_tree_phases () =
  run_sim (fun () ->
      let t = Tracer.create () in
      let root = Tracer.root t "fn" in
      Tracer.with_phase t ~parent:root "a" (fun () -> Engine.sleep 5.0);
      let b = Tracer.child t ~parent:root "b" in
      Engine.sleep 7.0;
      Tracer.stop b;
      Tracer.finalize t ~fn:"fn" ~path:"Speculative" root;
      Alcotest.(check int) "one trace" 1 (Tracer.trace_count t);
      let get phase =
        List.assoc ("fn", phase, "Speculative") (Tracer.phase_stats t)
      in
      checkf "phase a duration" 5.0 (Stats.mean (get "a"));
      checkf "phase b duration" 7.0 (Stats.mean (get "b"));
      checkf "root recorded as total" 12.0 (Stats.mean (get "total")))

let test_open_span_not_aggregated () =
  run_sim (fun () ->
      let t = Tracer.create () in
      let root = Tracer.root t "fn" in
      let abandoned = Tracer.child t ~parent:root "speculate" in
      Engine.sleep 3.0;
      Tracer.finalize t ~fn:"fn" ~path:"Backup" root;
      ignore abandoned;
      Alcotest.(check bool) "open phase missing from histograms" true
        (not
           (List.mem_assoc ("fn", "speculate", "Backup") (Tracer.phase_stats t)));
      (* ... but still hangs in the retained tree. *)
      match Tracer.slowest ~k:1 t with
      | [ sp ] ->
          Alcotest.(check (list string)) "child kept" [ "speculate" ]
            (List.map (fun (c : Span.t) -> c.label) (Span.children sp))
      | _ -> Alcotest.fail "expected one retained trace")

let test_slowest_ordering () =
  run_sim (fun () ->
      let t = Tracer.create () in
      List.iter
        (fun d ->
          let root = Tracer.root t (Printf.sprintf "fn%.0f" d) in
          Engine.sleep d;
          Tracer.finalize t ~fn:"fn" ~path:"Speculative" root)
        [ 10.0; 30.0; 20.0 ];
      match Tracer.slowest ~k:2 t with
      | [ a; b ] ->
          Alcotest.(check string) "slowest first" "fn30" a.Span.label;
          Alcotest.(check string) "then next" "fn20" b.Span.label
      | l -> Alcotest.fail (Printf.sprintf "expected 2, got %d" (List.length l)))

(* ------------------------------------------------------------------ *)
(* Tracer: end-to-end through the framework                            *)

let get_fn =
  { fn_name = "get"; params = [ "k" ]; body = Compute (100.0, Read (Input "k")) }

let put_fn =
  {
    fn_name = "put";
    params = [ "k"; "v" ];
    body = Compute (20.0, Seq [ Write (Input "k", Input "v"); Input "v" ]);
  }

(* Dependent read (pointer chase): a stale cache can mispredict the
   read set, forcing the backup path to re-predict and re-lock — the
   server-side spans that must nest under backup_exec. *)
let deref_fn =
  { fn_name = "deref"; params = [ "k" ]; body = Read (Read (Input "k")) }

(* One Speculative and one Backup request: the runtime's phases and the
   server's phases must land in the same per-path histograms, and the
   retained span trees must nest the phases under each request root. *)
let test_trace_end_to_end () =
  let tracer = Tracer.create () in
  run_sim ~seed:11 (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~tracer
          ~rng:(Rng.split (Engine.rng ()))
          ()
      in
      let fw =
        Framework.create ~tracer ~net
          ~funcs:[ get_fn; put_fn; deref_fn ]
          ~data:[ ("x", Dval.Str "v1"); ("ptr", Dval.Str "x") ]
          ()
      in
      let o1 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      Alcotest.(check bool) "warm read is speculative" true
        (o1.path = Runtime.Speculative);
      ignore
        (Framework.invoke fw ~from:Location.ca "put"
           [ Dval.Str "x"; Dval.Str "v2" ]);
      Engine.sleep 300.0;
      (* DE's cache is now stale: validation fails, backup path. *)
      let o2 = Framework.invoke fw ~from:Location.de "deref" [ Dval.Str "ptr" ] in
      Alcotest.(check bool) "stale read is backup" true
        (o2.path = Runtime.Backup);
      Engine.sleep 500.0;
      Framework.stop fw);
  Alcotest.(check int) "three traces" 3 (Tracer.trace_count tracer);
  let stats = Tracer.phase_stats tracer in
  let has key = List.mem_assoc key stats in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (let f, p, pa = key in
         Printf.sprintf "histogram (%s, %s, %s) present" f p pa)
        true (has key))
    [
      ("get", "invoke_overhead", "Speculative");
      ("get", "frw_predict", "Speculative");
      ("get", "speculate", "Speculative");
      ("get", "lvi_rtt", "Speculative");
      (* Read-only function: the server answers on the validate-only
         fast path, so there is no lock_wait phase. *)
      ("get", "ro_validate", "Speculative");
      ("get", "total", "Speculative");
      (* The writing put takes the full locked path. *)
      ("put", "lock_wait", "Speculative");
      ("put", "validate", "Speculative");
      ("put", "total", "Speculative");
      ("deref", "backup_exec", "Backup");
      ("deref", "cache_repair", "Backup");
      ("deref", "total", "Backup");
    ];
  (* The speculative get: 6 ms cache access + 100 ms compute. *)
  checkf "speculate phase duration" 106.0
    (Stats.mean (List.assoc ("get", "speculate", "Speculative") stats));
  (* Span trees nest: every retained root has its phases as children. *)
  let trees = Tracer.slowest ~k:3 tracer in
  Alcotest.(check int) "three retained trees" 3 (List.length trees);
  List.iter
    (fun (root : Span.t) ->
      Alcotest.(check bool) "root has no parent" true (root.parent = None);
      let labels = List.map (fun (c : Span.t) -> c.Span.label) (Span.children root) in
      Alcotest.(check bool) "phases nested under root" true
        (List.mem "invoke_overhead" labels && List.mem "lvi_rtt" labels);
      Span.iter
        (fun sp ->
          Alcotest.(check bool)
            (sp.Span.label ^ " closed within root")
            true
            (Span.closed sp
            && Span.duration sp >= 0.0
            && sp.Span.start >= root.Span.start))
        root)
    trees;
  let backup_root =
    List.find (fun r -> Span.note r "path" = Some "Backup") trees
  in
  let backup_labels =
    List.map (fun (c : Span.t) -> c.Span.label) (Span.children backup_root)
  in
  Alcotest.(check bool) "backup tree has backup_exec under root" true
    (List.mem "backup_exec" backup_labels);
  (* The server-side lock_wait of the backup re-lock nests under the
     backup_exec span, not the root. *)
  let backup_exec =
    List.find
      (fun (c : Span.t) -> c.Span.label = "backup_exec")
      (Span.children backup_root)
  in
  Alcotest.(check bool) "re-lock nests under backup_exec" true
    (List.exists
       (fun (c : Span.t) -> c.Span.label = "lock_wait")
       (Span.children backup_exec));
  (* JSON smoke: document present with all three traces and wire times. *)
  let json = Tracer.phases_json tracer in
  let contains_plain needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json counts traces" true
    (contains_plain "\"traces\": 3");
  Alcotest.(check bool) "json has Backup path" true
    (contains_plain "\"Backup\"");
  Alcotest.(check bool) "json has wire stats" true (contains_plain "\"lvi\"")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "metrics"
    [
      ( "percentile",
        [
          Alcotest.test_case "linear interpolation" `Quick
            test_percentile_interpolation;
          Alcotest.test_case "small sample sets" `Quick
            test_percentile_small_sets;
          Alcotest.test_case "bad rank rejected" `Quick
            test_percentile_rejects_bad_rank;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "noop is inert" `Quick test_noop_tracer;
          Alcotest.test_case "span tree phases" `Quick test_span_tree_phases;
          Alcotest.test_case "open span not aggregated" `Quick
            test_open_span_not_aggregated;
          Alcotest.test_case "slowest ordering" `Quick test_slowest_ordering;
          Alcotest.test_case "end-to-end trace" `Quick test_trace_end_to_end;
        ] );
    ]
