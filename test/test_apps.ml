(* Tests for the five benchmark applications, the workload generators,
   the metrics library and the §5.7 cost model. *)

module Derive = Analyzer.Derive
module Rwset = Analyzer.Rwset

let rng () = Sim.Rng.create 77

let store_tbl data =
  let tbl = Hashtbl.create 4096 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) data;
  tbl

let eval_against tbl (f : Fdsl.Ast.func) args =
  let reads = ref [] and writes = ref [] in
  let host =
    Fdsl.Eval.host
      ~read:(fun k ->
        reads := k :: !reads;
        Option.value ~default:Dval.Unit (Hashtbl.find_opt tbl k))
      ~write:(fun k v ->
        writes := k :: !writes;
        Hashtbl.replace tbl k v)
      ()
  in
  let result = Fdsl.Eval.eval host f args in
  (result, Rwset.make ~reads:!reads ~writes:!writes)

let find_fn name =
  List.find (fun (f : Fdsl.Ast.func) -> f.fn_name = name) Apps.Catalog.all_functions

let check_dval msg expected got =
  Alcotest.(check string) msg (Dval.to_string expected) (Dval.to_string got)

let rwset_testable = Alcotest.testable Rwset.pp Rwset.equal

(* ------------------------------------------------------------------ *)
(* Registration and classification                                     *)

let test_all_29_register () =
  let reg = Radical.Registry.create () in
  List.iter
    (fun f ->
      match Radical.Registry.register reg f with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    Apps.Catalog.all_functions;
  Alcotest.(check int) "29 functions" 29
    (List.length (Radical.Registry.names reg));
  (* ib-flag branches on an Opaque policy, so automatic derivation is
     expected to fail for it; it is the manual-f^rw example (§7). *)
  Alcotest.(check int) "all but ib-flag analyzable" 28
    (Radical.Registry.analyzable_count reg)

let classification_of name =
  match Derive.derive (find_fn name) with
  | Ok d -> d.classification
  | Error e -> Alcotest.fail (Format.asprintf "%a" Derive.pp_error e)

let test_dependent_functions_match_table1 () =
  (* Asterisked in Table 1: social-post and hotel-search. Our extra two
     apps contribute ib-search and pm-view-task, giving the paper's
     "three of which required the optimization" plus one. *)
  List.iter
    (fun name ->
      match classification_of name with
      | Derive.Dependent _ -> ()
      | c ->
          Alcotest.fail
            (Format.asprintf "%s should be dependent, got %a" name
               Derive.pp_classification c))
    [ "social-post"; "hotel-search"; "ib-search"; "pm-view-task" ];
  List.iter
    (fun (info : Apps.Catalog.info) ->
      if not info.dependent then
        match classification_of info.fn_name with
        | Derive.Static -> ()
        | c ->
            Alcotest.fail
              (Format.asprintf "%s should be static, got %a" info.fn_name
                 Derive.pp_classification c))
    Apps.Catalog.table1

(* ------------------------------------------------------------------ *)
(* Residual optimizer and manual overrides over the real catalog       *)

let test_forum_digest_upgraded () =
  (* Pin the optimizer's showcase: forum-digest branches on a config
     read, but both layouts touch the same keys, so the residual
     optimizer collapses the branch and demotes the config read.
     Dependent(1) -> Static must not regress. *)
  let d =
    match Derive.derive Apps.Forum.digest_fn with
    | Ok d -> d
    | Error e -> Alcotest.fail (Format.asprintf "%a" Derive.pp_error e)
  in
  (match d.classification with
  | Derive.Dependent 1 -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "raw digest should be dependent(1), got %a"
           Derive.pp_classification c));
  let d' = Analyzer.Optimize.optimize d in
  (match d'.classification with
  | Derive.Static -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "optimized digest should be static, got %a"
           Derive.pp_classification c));
  Alcotest.(check bool) "counts as an upgrade" true
    (Analyzer.Optimize.upgraded ~before:d ~after:d');
  (* And the registry serves the optimized classification: the function
     becomes eligible for the read-only fast path with zero fetches. *)
  let reg = Radical.Registry.create () in
  (match Radical.Registry.register reg Apps.Forum.digest_fn with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Radical.Registry.find reg "forum-digest" with
  | Some entry ->
      Alcotest.(check bool) "read-only" true entry.read_only;
      (match entry.derived with
      | Some d -> (
          match d.Derive.classification with
          | Derive.Static -> ()
          | c ->
              Alcotest.fail
                (Format.asprintf "registry serves %a" Derive.pp_classification
                   c))
      | None -> Alcotest.fail "no derived entry")
  | None -> Alcotest.fail "not registered"

let test_manual_overrides_check_out () =
  (* The differential check of every developer-written f^rw, against
     representative seed data. *)
  let tbl = store_tbl (Apps.Imageboard.seed (rng ())) in
  let read k = Option.value ~default:Dval.Unit (Hashtbl.find_opt tbl k) in
  List.iter
    (fun (name, result) ->
      match result with
      | Ok () -> ()
      | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" name m))
    (Apps.Catalog.check_manuals ~read ())

let test_check_manual_catches_wrong_residual () =
  (* A residual that forgets the write must be rejected. *)
  let open Fdsl.Ast in
  let wrong =
    {
      fn_name = "ib-flag";
      params = [ "u"; "i" ];
      body = Declare (Decl_read, Concat [ Str "iflags:"; Input "i" ]);
    }
  in
  let d = Derive.manual ~source:Apps.Imageboard.flag_fn ~rw_func:wrong in
  match
    Derive.check_manual d
      ~read:(fun _ -> Dval.Unit)
      ~samples:[ [ Dval.Str "u"; Dval.Str "i0" ] ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing write went undetected"

(* The central differential property of the residual optimizer: for
   EVERY catalog function, on ~200 seeded random inputs each, the
   optimized residual predicts exactly what the raw residual predicts,
   and both are exactly the real execution's accesses. Inputs come from
   the app workload generators (drawing until each function's quota is
   met); forum-digest and ib-flag are not in any generator mix, so their
   inputs are synthesized. *)
let test_optimized_residuals_differential () =
  let per_fn = 200 in
  let residual_cache = Hashtbl.create 32 in
  let residuals_of fn_name =
    match Hashtbl.find_opt residual_cache fn_name with
    | Some r -> r
    | None ->
        let r =
          match Apps.Catalog.manual_rw_of fn_name with
          | Some rw -> (
              match Derive.manual ~source:(find_fn fn_name) ~rw_func:rw with
              | d -> (d, d))
          | None -> (
              match Derive.derive (find_fn fn_name) with
              | Error e ->
                  Alcotest.fail (Format.asprintf "%a" Derive.pp_error e)
              | Ok d -> (d, Analyzer.Optimize.optimize d))
        in
        Hashtbl.add residual_cache fn_name r;
        r
  in
  let r = Sim.Rng.create 2025 in
  let streams =
    [
      ( "social",
        Apps.Social.seed ~n_users:50 r,
        Apps.Social.next (Apps.Social.gen ~n_users:50 ()),
        [] );
      ("hotel", Apps.Hotel.seed r, Apps.Hotel.next (Apps.Hotel.gen ()), []);
      ( "forum",
        Apps.Forum.seed r,
        Apps.Forum.next (Apps.Forum.gen ()),
        [
          (fun rng ->
            ( "forum-digest",
              [ Dval.Str (Printf.sprintf "f%d" (Sim.Rng.int rng 200)) ] ));
        ] );
      ( "imageboard",
        Apps.Imageboard.seed r,
        Apps.Imageboard.next (Apps.Imageboard.gen ()),
        [
          (fun rng ->
            ( "ib-flag",
              [
                Dval.Str (Printf.sprintf "b%d" (Sim.Rng.int rng 300));
                Dval.Str (Printf.sprintf "i%d" (Sim.Rng.int rng 400));
              ] ));
        ] );
      ( "projectmgmt",
        Apps.Projectmgmt.seed r,
        Apps.Projectmgmt.next (Apps.Projectmgmt.gen ()),
        [] );
    ]
  in
  List.iter
    (fun (app, seed_data, draw, extras) ->
      let master = store_tbl seed_data in
      let counts = Hashtbl.create 16 in
      let check_one (fn_name, args) =
        let seen = Option.value ~default:0 (Hashtbl.find_opt counts fn_name) in
        if seen < per_fn then begin
          Hashtbl.replace counts fn_name (seen + 1);
          let d_raw, d_opt = residuals_of fn_name in
          (* Executions mutate a copy; predictions read the untouched
             pre-execution snapshot, like the near-user cache would. *)
          let _, actual = eval_against (Hashtbl.copy master) (find_fn fn_name) args in
          let read k =
            Option.value ~default:Dval.Unit (Hashtbl.find_opt master k)
          in
          let p_raw = Derive.predict d_raw ~read args in
          let p_opt = Derive.predict d_opt ~read args in
          let label msg = Printf.sprintf "%s/%s: %s" app fn_name msg in
          Alcotest.check rwset_testable (label "raw == actual") actual p_raw;
          Alcotest.check rwset_testable (label "optimized == raw") p_raw p_opt
        end
      in
      for _ = 1 to 60_000 do
        check_one (draw r)
      done;
      List.iter
        (fun mk -> for _ = 1 to per_fn do check_one (mk r) done)
        extras;
      (* Every handler of the app must have been exercised. *)
      List.iter
        (fun (f : Fdsl.Ast.func) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s exercised" app f.fn_name)
            true
            (Hashtbl.mem counts f.fn_name))
        (List.assoc app Apps.Catalog.all_apps))
    streams

(* ------------------------------------------------------------------ *)
(* Application behaviour                                               *)

let test_social_login () =
  let tbl = store_tbl (Apps.Social.seed ~n_users:20 (rng ())) in
  let f = find_fn "social-login" in
  let ok, _ = eval_against tbl f [ Dval.Str "u3"; Dval.Str "hash-u3" ] in
  check_dval "right password" (Dval.Bool true) ok;
  let bad, _ = eval_against tbl f [ Dval.Str "u3"; Dval.Str "wrong" ] in
  check_dval "wrong password" (Dval.Bool false) bad

let test_social_post_fans_out () =
  let tbl = store_tbl (Apps.Social.seed ~n_users:20 (rng ())) in
  let followers =
    match Hashtbl.find_opt tbl "followers:u0" with
    | Some (Dval.List fs) -> List.map Dval.to_str fs
    | _ -> []
  in
  let _, accesses =
    eval_against tbl (find_fn "social-post") [ Dval.Str "u0"; Dval.Str "hi" ]
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "timeline:%s written" f)
        true
        (Rwset.mem_write accesses ("timeline:" ^ f));
      match Hashtbl.find_opt tbl ("timeline:" ^ f) with
      | Some (Dval.List (newest :: _)) ->
          check_dval "newest entry is the post"
            (Dval.Str "u0") (Dval.field newest "author")
      | _ -> Alcotest.fail "timeline missing")
    followers;
  Alcotest.(check bool) "posts list written" true
    (Rwset.mem_write accesses "posts:u0")

let test_social_follow_updates_both_edges () =
  let tbl = store_tbl (Apps.Social.seed ~n_users:20 (rng ())) in
  let _ =
    eval_against tbl (find_fn "social-follow") [ Dval.Str "u1"; Dval.Str "u2" ]
  in
  let contains key v =
    match Hashtbl.find_opt tbl key with
    | Some (Dval.List xs) -> List.exists (Dval.equal (Dval.Str v)) xs
    | _ -> false
  in
  Alcotest.(check bool) "u1 follows u2" true (contains "follows:u1" "u2");
  Alcotest.(check bool) "u2 followed by u1" true (contains "followers:u2" "u1")

let test_social_timeline_truncates () =
  let tbl = store_tbl (Apps.Social.seed ~n_users:20 (rng ())) in
  let result, _ = eval_against tbl (find_fn "social-timeline") [ Dval.Str "u5" ] in
  match result with
  | Dval.List posts ->
      Alcotest.(check bool) "at most 20" true (List.length posts <= 20)
  | v -> Alcotest.fail ("expected list, got " ^ Dval.to_string v)

let test_hotel_search_reads_geo_cell () =
  let tbl = store_tbl (Apps.Hotel.seed (rng ())) in
  let result, accesses =
    eval_against tbl (find_fn "hotel-search") [ Dval.Str "c2"; Dval.Str "d1" ]
  in
  Alcotest.(check bool) "geo index read" true (Rwset.mem_read accesses "geo:c2");
  (match result with
  | Dval.List entries ->
      Alcotest.(check int) "all cell hotels listed" 10 (List.length entries)
  | v -> Alcotest.fail (Dval.to_string v));
  Alcotest.(check int) "one avail read per hotel + geo" 11
    (List.length accesses.Rwset.reads)

let test_hotel_book_decrements () =
  let tbl = store_tbl (Apps.Hotel.seed (rng ())) in
  let before =
    Dval.to_int_exn (Hashtbl.find tbl "avail:h2-3:d4")
  in
  let result, _ =
    eval_against tbl (find_fn "hotel-book")
      [ Dval.Str "g1"; Dval.Str "h2-3"; Dval.Str "d4" ]
  in
  check_dval "confirmed" (Dval.Str "confirmed") result;
  Alcotest.(check int) "one room fewer" (before - 1)
    (Dval.to_int_exn (Hashtbl.find tbl "avail:h2-3:d4"));
  check_dval "booking recorded" (Dval.Str "confirmed")
    (Dval.field (Hashtbl.find tbl "booking:g1:h2-3:d4") "status")

let test_hotel_book_sold_out () =
  let tbl = store_tbl (Apps.Hotel.seed (rng ())) in
  Hashtbl.replace tbl "avail:h0-0:d0" (Dval.int 0);
  let result, _ =
    eval_against tbl (find_fn "hotel-book")
      [ Dval.Str "g1"; Dval.Str "h0-0"; Dval.Str "d0" ]
  in
  check_dval "rejected" (Dval.Str "sold-out") result;
  Alcotest.(check int) "no negative rooms" 0
    (Dval.to_int_exn (Hashtbl.find tbl "avail:h0-0:d0"))

let test_forum_interact_bumps_score () =
  let tbl = store_tbl (Apps.Forum.seed (rng ())) in
  let before = Dval.to_int_exn (Dval.field (Hashtbl.find tbl "fpost:p7") "score") in
  let _ =
    eval_against tbl (find_fn "forum-interact") [ Dval.Str "f1"; Dval.Str "p7" ]
  in
  Alcotest.(check int) "score +1" (before + 1)
    (Dval.to_int_exn (Dval.field (Hashtbl.find tbl "fpost:p7") "score"))

let test_forum_post_updates_front_page () =
  let tbl = store_tbl (Apps.Forum.seed (rng ())) in
  let _ =
    eval_against tbl (find_fn "forum-post")
      [ Dval.Str "f1"; Dval.Str "p9999"; Dval.Str "fresh"; Dval.Str "body" ]
  in
  match Hashtbl.find tbl "fhome" with
  | Dval.List (newest :: _ as all) ->
      check_dval "front page leads with new post" (Dval.Str "p9999")
        (Dval.field newest "pid");
      Alcotest.(check bool) "front page bounded" true (List.length all <= 30)
  | _ -> Alcotest.fail "fhome missing"

let test_imageboard_favorite () =
  let tbl = store_tbl (Apps.Imageboard.seed (rng ())) in
  let before = Dval.to_int_exn (Hashtbl.find tbl "ifavs:i3") in
  let _ =
    eval_against tbl (find_fn "ib-favorite") [ Dval.Str "b2"; Dval.Str "i3" ]
  in
  Alcotest.(check int) "favorite count +1" (before + 1)
    (Dval.to_int_exn (Hashtbl.find tbl "ifavs:i3"));
  match Hashtbl.find tbl "ufavs:b2" with
  | Dval.List (Dval.Str "i3" :: _) -> ()
  | v -> Alcotest.fail ("user favorites not updated: " ^ Dval.to_string v)

let test_projectmgmt_task_lifecycle () =
  let tbl = store_tbl (Apps.Projectmgmt.seed (rng ())) in
  let _ =
    eval_against tbl (find_fn "pm-create")
      [ Dval.Str "m1"; Dval.Str "pr2"; Dval.Str "pr2-t99"; Dval.Str "ship it" ]
  in
  check_dval "task open" (Dval.Str "open")
    (Dval.field (Hashtbl.find tbl "task:pr2-t99") "status");
  let _ =
    eval_against tbl (find_fn "pm-complete") [ Dval.Str "m1"; Dval.Str "pr2-t99" ]
  in
  check_dval "task done" (Dval.Str "done")
    (Dval.field (Hashtbl.find tbl "task:pr2-t99") "status")

let test_pm_view_task_reads_assignee () =
  let tbl = store_tbl (Apps.Projectmgmt.seed (rng ())) in
  let assignee = Dval.to_str (Dval.field (Hashtbl.find tbl "task:pr0-t0") "assignee") in
  let _, accesses =
    eval_against tbl (find_fn "pm-view-task") [ Dval.Str "pr0-t0" ]
  in
  Alcotest.(check bool) "assignee account read" true
    (Rwset.mem_read accesses ("puser:" ^ assignee))

(* The soundness property over the real applications: for every
   generated request, f^rw's prediction equals the accesses of the real
   execution when the cache is coherent. *)
let app_cases =
  let r = rng () in
  [
    ("social", Apps.Social.seed ~n_users:50 r, (fun rng ->
         Apps.Social.next (Apps.Social.gen ~n_users:50 ()) rng));
    ("hotel", Apps.Hotel.seed r, (fun rng -> Apps.Hotel.next (Apps.Hotel.gen ()) rng));
    ("forum", Apps.Forum.seed r, (fun rng -> Apps.Forum.next (Apps.Forum.gen ()) rng));
    ("imageboard", Apps.Imageboard.seed r, (fun rng ->
         Apps.Imageboard.next (Apps.Imageboard.gen ()) rng));
    ("projectmgmt", Apps.Projectmgmt.seed r, (fun rng ->
         Apps.Projectmgmt.next (Apps.Projectmgmt.gen ()) rng));
  ]

let prop_app_predictions_sound =
  QCheck.Test.make ~name:"f^rw predictions are exact on all app requests"
    ~count:250
    QCheck.(pair (int_range 0 4) small_int)
    (fun (app_idx, seed) ->
      let _, seed_data, next = List.nth app_cases app_idx in
      let rng = Sim.Rng.create (seed + 1) in
      let fn_name, args = next rng in
      let f = find_fn fn_name in
      let actual_tbl = store_tbl seed_data in
      let _, actual = eval_against actual_tbl f args in
      let predict_tbl = store_tbl seed_data in
      match Derive.derive f with
      | Error _ -> false
      | Ok d ->
          let predicted =
            Derive.predict d
              ~read:(fun k ->
                Option.value ~default:Dval.Unit (Hashtbl.find_opt predict_tbl k))
              args
          in
          Rwset.equal predicted actual)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let test_zipf_skew () =
  let z = Workload.Zipf.create ~n:100 ~theta:0.99 in
  let r = rng () in
  let hits = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let i = Workload.Zipf.sample z r in
    hits.(i) <- hits.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 is hot" true (hits.(0) > 1000);
  Alcotest.(check bool) "rank 0 >> rank 50" true (hits.(0) > 10 * max 1 hits.(50))

let test_zipf_uniform_degenerate () =
  let z = Workload.Zipf.create ~n:10 ~theta:0.0 in
  let r = rng () in
  let hits = Array.make 10 0 in
  for _ = 1 to 10_000 do
    hits.(Workload.Zipf.sample z r) <- hits.(Workload.Zipf.sample z r) + 0 + 1
  done;
  Array.iter
    (fun h -> Alcotest.(check bool) "roughly uniform" true (h > 700 && h < 1300))
    hits

let test_mix_weights () =
  let m = Workload.Mix.create [ ("a", 80.0); ("b", 20.0) ] in
  let r = rng () in
  let a = ref 0 in
  for _ = 1 to 10_000 do
    if Workload.Mix.sample m r = "a" then incr a
  done;
  Alcotest.(check bool) "a near 80%" true (!a > 7700 && !a < 8300)

let test_generators_produce_valid_requests () =
  let r = rng () in
  List.iter
    (fun (app, _, next) ->
      for _ = 1 to 200 do
        let fn_name, args = next r in
        let f = find_fn fn_name in
        if List.length f.params <> List.length args then
          Alcotest.fail
            (Printf.sprintf "%s: %s arity mismatch" app fn_name)
      done)
    app_cases

let test_mix_matches_table1 () =
  let g = Apps.Social.gen () in
  let r = rng () in
  let timeline = ref 0 in
  let total = 20_000 in
  for _ = 1 to total do
    if fst (Apps.Social.next g r) = "social-timeline" then incr timeline
  done;
  let share = float_of_int !timeline /. float_of_int total in
  Alcotest.(check bool) "timeline ~80%" true (share > 0.77 && share < 0.83)

let test_driver_runs_all_clients () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  Sim.Engine.run e (fun () ->
      Workload.Driver.run_clients ~n:10 ~iterations:7 (fun ~client:_ ~iter:_ ->
          Sim.Engine.sleep 1.0;
          incr count));
  Alcotest.(check int) "all iterations" 70 !count

let test_open_loop_driver () =
  let e = Sim.Engine.create ~seed:3 () in
  let completed = ref 0 in
  let arrivals = ref 0 in
  Sim.Engine.run e (fun () ->
      arrivals :=
        Workload.Driver.run_open ~rate:100.0 ~duration:10_000.0
          ~rng:(Sim.Rng.split (Sim.Engine.rng ()))
          (fun ~arrival:_ ->
            Sim.Engine.sleep 25.0;
            incr completed));
  (* ~100 req/s for 10 s: expect roughly 1000 arrivals. *)
  Alcotest.(check bool) "poisson arrival count plausible" true
    (!arrivals > 800 && !arrivals < 1200);
  Alcotest.(check int) "every arrival completed" !arrivals !completed

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_stats_percentiles () =
  let s = Metrics.Stats.of_list (List.init 100 (fun i -> float_of_int (i + 1))) in
  (* Type-7 linear interpolation: rank p*(n-1) between order statistics. *)
  Alcotest.(check (float 1e-9)) "median" 50.5 (Metrics.Stats.median s);
  Alcotest.(check (float 1e-9)) "p99" 99.01 (Metrics.Stats.p99 s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Metrics.Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.Stats.max s);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Metrics.Stats.mean s)

let test_stats_merge_and_empty () =
  let a = Metrics.Stats.of_list [ 1.0; 2.0 ] in
  let b = Metrics.Stats.of_list [ 3.0 ] in
  Alcotest.(check int) "merge count" 3 (Metrics.Stats.count (Metrics.Stats.merge a b));
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Metrics.Stats.median (Metrics.Stats.create ())))

let test_histogram () =
  let s = Metrics.Stats.of_list (List.init 100 (fun i -> float_of_int i)) in
  let buckets = Metrics.Stats.histogram s ~buckets:10 in
  Alcotest.(check int) "bucket count" 10 (List.length buckets);
  Alcotest.(check int) "all samples counted" 100
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 buckets);
  List.iter
    (fun (_, _, n) -> Alcotest.(check int) "uniform fill" 10 n)
    buckets;
  (* A constant sample set lands in one bucket. *)
  let flat = Metrics.Stats.of_list [ 5.0; 5.0; 5.0 ] in
  let b = Metrics.Stats.histogram flat ~buckets:4 in
  Alcotest.(check int) "constant data in one bucket" 3
    (match b with (_, _, n) :: _ -> n | [] -> -1)

let test_table_render () =
  let s =
    Metrics.Table.render ~header:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has rule" true (String.contains s '-');
  Alcotest.(check bool) "multiline" true (List.length (String.split_on_char '\n' s) = 4)

(* ------------------------------------------------------------------ *)
(* Cost model (§5.7)                                                   *)

let test_cost_infrastructure () =
  let p = Cost.defaults in
  Alcotest.(check (float 0.01)) "baseline infra" 1077.36
    (Cost.infrastructure_baseline p);
  Alcotest.(check (float 0.01)) "radical infra" 1413.36
    (Cost.infrastructure_radical p);
  Alcotest.(check (float 0.005)) "31% increase" 1.31
    (Cost.infrastructure_radical p /. Cost.infrastructure_baseline p)

let test_cost_at_scale_matches_paper () =
  let p = Cost.defaults in
  let check_case invocations base rad =
    let b = Cost.at_scale p ~invocations_per_month:invocations in
    Alcotest.(check (float 0.02)) "baseline" base b.baseline_total;
    Alcotest.(check (float 0.02)) "radical" rad b.radical_total
  in
  check_case 1e6 1080.23 1416.37;
  check_case 1e7 1106.06 1443.50;
  check_case 1e8 1364.36 1714.71

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "apps"
    [
      ( "registration",
        [
          Alcotest.test_case "all 29 register" `Quick test_all_29_register;
          Alcotest.test_case "classification matches Table 1" `Quick
            test_dependent_functions_match_table1;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "forum-digest upgraded to static" `Quick
            test_forum_digest_upgraded;
          Alcotest.test_case "manual overrides check out" `Quick
            test_manual_overrides_check_out;
          Alcotest.test_case "wrong manual residual rejected" `Quick
            test_check_manual_catches_wrong_residual;
          Alcotest.test_case "optimized == raw == actual (200/fn)" `Slow
            test_optimized_residuals_differential;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "social login" `Quick test_social_login;
          Alcotest.test_case "social post fan-out" `Quick test_social_post_fans_out;
          Alcotest.test_case "social follow edges" `Quick
            test_social_follow_updates_both_edges;
          Alcotest.test_case "social timeline truncates" `Quick
            test_social_timeline_truncates;
          Alcotest.test_case "hotel search" `Quick test_hotel_search_reads_geo_cell;
          Alcotest.test_case "hotel book decrements" `Quick test_hotel_book_decrements;
          Alcotest.test_case "hotel book sold out" `Quick test_hotel_book_sold_out;
          Alcotest.test_case "forum interact bumps score" `Quick
            test_forum_interact_bumps_score;
          Alcotest.test_case "forum post front page" `Quick
            test_forum_post_updates_front_page;
          Alcotest.test_case "imageboard favorite" `Quick test_imageboard_favorite;
          Alcotest.test_case "projectmgmt lifecycle" `Quick
            test_projectmgmt_task_lifecycle;
          Alcotest.test_case "pm view-task dependent read" `Quick
            test_pm_view_task_reads_assignee;
        ]
        @ qsuite [ prop_app_predictions_sound ] );
      ( "workload",
        [
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf uniform degenerate" `Quick
            test_zipf_uniform_degenerate;
          Alcotest.test_case "mix weights" `Quick test_mix_weights;
          Alcotest.test_case "generators valid" `Quick
            test_generators_produce_valid_requests;
          Alcotest.test_case "mix matches Table 1" `Quick test_mix_matches_table1;
          Alcotest.test_case "driver runs all clients" `Quick
            test_driver_runs_all_clients;
          Alcotest.test_case "open-loop driver" `Quick test_open_loop_driver;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "merge and empty" `Quick test_stats_merge_and_empty;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "table render" `Quick test_table_render;
        ] );
      ( "cost",
        [
          Alcotest.test_case "infrastructure" `Quick test_cost_infrastructure;
          Alcotest.test_case "at scale matches paper" `Quick
            test_cost_at_scale_matches_paper;
        ] );
    ]
