(* Isolation tests for the extracted server-engine layers: each test
   builds a bare [Server_state.t] — no transport services wired, no
   framework, no clients — and drives one layer directly. The full-stack
   behaviour of the same code paths is covered by test_radical,
   test_lease and the seed-identity golden; these tests pin the layer
   contracts (grant refusal rules, the settle barrier's two modes,
   propagation's origin-site exclusion, pipeline stage order). *)

open Sim
module Transport = Net.Transport
module Location = Net.Location
module Kv = Store.Kv
module Server_config = Radical.Server_config
module Server_state = Radical.Server_state
module Lease_authority = Radical.Server_lease_authority
module Propagator = Radical.Server_propagator
module Pipeline = Radical.Server_pipeline
module Lease = Radical.Lease
module Proto = Radical.Proto

let run_sim ?(seed = 7) f =
  let e = Engine.create ~seed () in
  Engine.run e f

(* A bare engine state at the near-storage location, loaded with [data],
   plus the transport to hang peer services off. *)
let bare_state ?(config = Server_config.default_config) ?(data = []) () =
  let net =
    Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
  in
  let kv = Kv.create () in
  Kv.load kv data;
  let t =
    Server_state.create ~net ~registry:(Radical.Registry.create ()) ~kv
      ~extsvc:(Radical.Extsvc.create ())
      config
  in
  (net, t)

let revoke_sink net ~loc received =
  Transport.serve net ~loc ~name:"lease_revoke"
    (fun (lr : Proto.lease_revoke) -> received := lr.lr_keys :: !received)

(* --- Lease_authority: grant refusal rules ---------------------------- *)

let leases_on revoke =
  {
    Server_config.default_config with
    leases = { Server_config.default_leases with duration = 100.0; revoke };
  }

let test_grant_rules () =
  run_sim (fun () ->
      let net, t =
        bare_state ~config:(leases_on true)
          ~data:[ ("x", Dval.Str "v1"); ("y", Dval.Str "w1") ]
          ()
      in
      let received = ref [] in
      t.lease_peers <-
        [ (Location.ca, revoke_sink net ~loc:Location.ca received) ];
      let vx = Kv.version_of t.kv "x" and vy = Kv.version_of t.kv "y" in
      (* Own site and unregistered sites get nothing. *)
      Alcotest.(check int) "own site refused" 0
        (List.length
           (Lease_authority.grant_leases t ~site:Location.va [ ("x", vx) ]));
      Alcotest.(check int) "unregistered site refused" 0
        (List.length
           (Lease_authority.grant_leases t ~site:Location.ie [ ("x", vx) ]));
      (* A registered site gets a grant only for keys whose version is
         still primary's and that no writer holds. *)
      Store.Locks.acquire t.locks ~owner:"w" [ ("y", Store.Locks.Write) ];
      let now = Engine.now () in
      (match
         Lease_authority.grant_leases t ~site:Location.ca
           [ ("x", vx); ("y", vy); ("x", vx + 7) ]
       with
      | [ g ] ->
          Alcotest.(check string) "granted key" "x" g.Proto.lg_key;
          Alcotest.(check int) "granted version" vx g.Proto.lg_version;
          Alcotest.(check (float 0.0)) "issued now" now g.Proto.lg_issued;
          Alcotest.(check (float 0.0)) "expiry = now + duration"
            (now +. 100.0) g.Proto.lg_until
      | gs ->
          Alcotest.failf "expected exactly one grant, got %d" (List.length gs));
      Alcotest.(check int) "grant counter" 1 t.s_lease_grants;
      Alcotest.(check int) "one live lease" 1
        (Lease.live t.lease_tbl ~now:(Engine.now ())))

let test_grant_disabled () =
  run_sim (fun () ->
      let net, t = bare_state ~data:[ ("x", Dval.Str "v1") ] () in
      let received = ref [] in
      t.lease_peers <-
        [ (Location.ca, revoke_sink net ~loc:Location.ca received) ];
      Alcotest.(check int) "leases off: no grants" 0
        (List.length
           (Lease_authority.grant_leases t ~site:Location.ca
              [ ("x", Kv.version_of t.kv "x") ])))

(* --- Lease_authority: the settle barrier's two modes ------------------ *)

let test_settle_by_revocation () =
  run_sim (fun () ->
      let net, t =
        bare_state ~config:(leases_on true) ~data:[ ("x", Dval.Str "v1") ] ()
      in
      let received = ref [] in
      t.lease_peers <-
        [ (Location.ca, revoke_sink net ~loc:Location.ca received) ];
      let grants =
        Lease_authority.grant_leases t ~site:Location.ca
          [ ("x", Kv.version_of t.kv "x") ]
      in
      Alcotest.(check int) "one grant out" 1 (List.length grants);
      Lease_authority.settle_write_leases t [ "x" ];
      Alcotest.(check int) "write found the grant" 1 t.s_lease_blocked;
      Alcotest.(check int) "one revocation RPC" 1 t.s_lease_revokes;
      Alcotest.(check int) "no expiry wait" 0 t.s_lease_waits;
      Alcotest.(check (list (list string)))
        "holder saw the write set" [ [ "x" ] ] !received;
      Alcotest.(check int) "lease dead" 0
        (Lease.live t.lease_tbl ~now:(Engine.now ())))

let test_settle_by_expiry_wait () =
  run_sim (fun () ->
      (* Revocation off: the writer must wait out the grant's expiry
         plus the clock-skew bound. *)
      let net, t =
        bare_state ~config:(leases_on false) ~data:[ ("x", Dval.Str "v1") ] ()
      in
      let received = ref [] in
      t.lease_peers <-
        [ (Location.ca, revoke_sink net ~loc:Location.ca received) ];
      let grant =
        match
          Lease_authority.grant_leases t ~site:Location.ca
            [ ("x", Kv.version_of t.kv "x") ]
        with
        | [ g ] -> g
        | gs -> Alcotest.failf "expected one grant, got %d" (List.length gs)
      in
      Lease_authority.settle_write_leases t [ "x" ];
      Alcotest.(check int) "expiry wait taken" 1 t.s_lease_waits;
      Alcotest.(check int) "no revocation RPC" 0 t.s_lease_revokes;
      Alcotest.(check (list (list string))) "holder never contacted" []
        !received;
      Alcotest.(check (float 1e-6)) "slept to expiry + skew"
        (grant.Proto.lg_until +. Server_config.default_leases.skew)
        (Engine.now ());
      Alcotest.(check int) "lease dead" 0
        (Lease.live t.lease_tbl ~now:(Engine.now ())))

let test_settle_no_holders () =
  run_sim (fun () ->
      let _net, t =
        bare_state ~config:(leases_on true) ~data:[ ("x", Dval.Str "v1") ] ()
      in
      let t0 = Engine.now () in
      Lease_authority.settle_write_leases t [ "x" ];
      Alcotest.(check int) "nothing blocked" 0 t.s_lease_blocked;
      Alcotest.(check (float 0.0)) "latency-free" t0 (Engine.now ()))

(* --- Propagator: origin-site exclusion -------------------------------- *)

let prop_config =
  {
    Server_config.default_config with
    propagation =
      { enabled = true; prop_window = 2.0; invalidate_only = false };
  }

let cache_update_sink net ~loc received =
  Transport.serve net ~loc ~name:"cache_update"
    (fun (cu : Proto.cache_update) -> received := cu :: !received)

let test_publish_excludes_origin () =
  run_sim (fun () ->
      let net, t =
        bare_state ~config:prop_config ~data:[ ("x", Dval.Str "v1") ] ()
      in
      let at_ca = ref [] and at_ie = ref [] in
      Propagator.subscribe t (cache_update_sink net ~loc:Location.ca at_ca);
      Propagator.subscribe t (cache_update_sink net ~loc:Location.ie at_ie);
      let records = Propagator.apply_updates t [ ("x", Dval.Str "v2") ] in
      let version = Kv.version_of t.kv "x" in
      Propagator.publish t ~exclude:Location.ca records;
      (* Ride out the Nagle window and the one-way delivery delays. *)
      Engine.sleep 500.0;
      Alcotest.(check int) "origin site got nothing" 0 (List.length !at_ca);
      (match !at_ie with
      | [ cu ] ->
          Alcotest.(check bool) "update mode" false cu.Proto.cu_invalidate;
          Alcotest.(check (list (pair string int)))
            "committed record"
            [ ("x", version) ]
            (List.map
               (fun (u, _) -> (u.Proto.up_key, u.Proto.up_version))
               cu.Proto.cu_updates)
      | cus ->
          Alcotest.failf "expected one cache_update, got %d" (List.length cus));
      Alcotest.(check int) "records counted per non-excluded destination" 1
        t.s_prop_records)

let test_publish_propagation_off () =
  run_sim (fun () ->
      let net, t = bare_state ~data:[ ("x", Dval.Str "v1") ] () in
      let at_ca = ref [] in
      Propagator.subscribe t (cache_update_sink net ~loc:Location.ca at_ca);
      Alcotest.(check int) "subscribe is a no-op" 0 (List.length t.subscribers);
      Propagator.publish t (Propagator.apply_updates t [ ("x", Dval.Str "v2") ]);
      Engine.sleep 500.0;
      Alcotest.(check int) "nothing delivered" 0 (List.length !at_ca);
      Alcotest.(check int) "nothing counted" 0 t.s_prop_records)

(* --- Pipeline: stage order and short-circuit -------------------------- *)

let probe trace name step =
  Pipeline.stage name (fun _ctx ->
      trace := name :: !trace;
      step)

let test_pipeline_order () =
  let trace = ref [] and hooks = ref [] in
  let reply =
    Pipeline.run
      ~on_stage:(fun n -> hooks := n :: !hooks)
      [
        probe trace "admit" Pipeline.Continue;
        probe trace "lock" Pipeline.Continue;
        probe trace "validate" Pipeline.Continue;
      ]
      41
      ~finish:(fun ctx -> ctx + 1)
  in
  Alcotest.(check int) "finish produced the reply" 42 reply;
  Alcotest.(check (list string))
    "stages ran in order"
    [ "admit"; "lock"; "validate" ]
    (List.rev !trace);
  Alcotest.(check (list string))
    "hook fired before each stage"
    [ "admit"; "lock"; "validate" ]
    (List.rev !hooks)

let test_pipeline_done_short_circuits () =
  let trace = ref [] and hooks = ref [] in
  let reply =
    Pipeline.run
      ~on_stage:(fun n -> hooks := n :: !hooks)
      [
        probe trace "admit" Pipeline.Continue;
        probe trace "reply_now" (Pipeline.Done 99);
        probe trace "never" Pipeline.Continue;
      ]
      0
      ~finish:(fun _ -> Alcotest.fail "finish must not run after Done")
  in
  Alcotest.(check int) "Done's reply wins" 99 reply;
  Alcotest.(check (list string))
    "later stages skipped" [ "admit"; "reply_now" ] (List.rev !trace);
  Alcotest.(check (list string))
    "hook stopped with the pipeline" [ "admit"; "reply_now" ] (List.rev !hooks)

let () =
  Alcotest.run "server_units"
    [
      ( "lease_authority",
        [
          Alcotest.test_case "grant refusal rules" `Quick test_grant_rules;
          Alcotest.test_case "grants off by default" `Quick test_grant_disabled;
          Alcotest.test_case "settle by revocation" `Quick
            test_settle_by_revocation;
          Alcotest.test_case "settle by expiry wait" `Quick
            test_settle_by_expiry_wait;
          Alcotest.test_case "settle without holders" `Quick
            test_settle_no_holders;
        ] );
      ( "propagator",
        [
          Alcotest.test_case "publish excludes the origin site" `Quick
            test_publish_excludes_origin;
          Alcotest.test_case "propagation off is inert" `Quick
            test_publish_propagation_off;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "stage order" `Quick test_pipeline_order;
          Alcotest.test_case "Done short-circuits" `Quick
            test_pipeline_done_short_circuits;
        ] );
    ]
