(* Seed-identity trace: a canonical, fully deterministic transcript of
   the simulator's observable behaviour, diffed byte-for-byte against
   test/golden_seed_identity.expected on every `dune runtest`.

   Purpose: refactors that claim to be behaviour-preserving (the
   request-pipeline decomposition, and whatever comes after it) are
   verified mechanically instead of by eyeball. The transcript hashes
   - the fig1 / table1 measurement lists at full float precision,
   - per-sample digests of three full-stack Radical runs (seed
     singleton; every feature on over 2 shards; Raft-replicated), and
   - the history fingerprints of a 5-seed x all-templates chaos replay
     plus a 20-seed "everything"-template campaign replay.
   Any change to protocol timing, message contents, lock or Raft
   scheduling, or workload generation shows up as a diff here.

   Regenerate (ONLY when a behaviour change is intended and understood):
     dune build @seed-identity --auto-promote *)

module Figures = Experiments.Figures
module Runner = Experiments.Runner
module Bundle = Experiments.Bundle
module Campaign = Chaos.Campaign
module Plan = Chaos.Plan

let pr fmt = Printf.printf fmt

let measurements label ms =
  pr "== %s measurements ==\n" label;
  List.iter (fun (k, v) -> pr "%s %.17g\n" k v) ms

(* One line per run: sample count, error count, rates and a digest of
   every (loc, fn, latency) sample in arrival order. *)
let radical_run label system =
  let r = Runner.run ~seed:42 ~clients_per_loc:2 ~requests_per_client:5 system
      Bundle.social
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun { Runner.s_loc; s_fn; s_latency } ->
      Buffer.add_string buf (Printf.sprintf "%s|%s|%.17g;" s_loc s_fn s_latency))
    r.samples;
  let rate = function None -> "-" | Some f -> Printf.sprintf "%.17g" f in
  pr "radical.%s samples=%d errors=%d validation=%s spec=%s digest=%s\n" label
    (List.length r.samples) r.errors
    (rate r.validation_rate) (rate r.spec_rate)
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

let featureful =
  {
    Radical.Framework.default_config with
    server =
      {
        Radical.Server.default_config with
        batching = Radical.Server.full_batching;
        propagation = Radical.Server.default_propagation;
        leases = Radical.Server.default_leases;
      };
    sharding = Some (Shard.Directory.Hash { shards = 2 });
    fu_window = 3.0;
    fu_piggyback = true;
  }

let replicated =
  {
    Radical.Framework.default_config with
    server =
      {
        Radical.Server.default_config with
        mode = Radical.Server.Replicated { az_rtt = 2.3 };
      };
  }

(* Chaos replays: instantiate each template deterministically (the rng
   seed is a function of the sweep seed and the template index, like the
   campaign runner's) and print the history fingerprint of every run. *)
let chaos_block label ~seeds ~config templates =
  pr "== chaos %s ==\n" label;
  let app =
    {
      Campaign.ca_name = Bundle.social.name;
      ca_funcs = Bundle.social.funcs;
      ca_seed = Bundle.social.seed;
      ca_gen = Bundle.social.new_gen;
    }
  in
  for seed = 1 to seeds do
    List.iteri
      (fun i (t : Plan.template) ->
        if config.Campaign.replicated || not t.t_replicated_only then begin
          let rng = Sim.Rng.create ((seed * 1009) + i) in
          let plan =
            t.t_gen ~rng ~horizon:config.Campaign.horizon
              ~locations:config.Campaign.locations
          in
          let o = Campaign.run_one ~config ~seed app plan in
          pr "chaos.%s seed=%d template=%s fingerprint=%s violations=%d\n"
            label seed t.t_name o.Campaign.fingerprint
            (List.length o.Campaign.violations)
        end)
      templates
  done

let () =
  measurements "fig1" (Figures.fig1 ~scale:0.25 ~seed:42 ());
  measurements "table1" (Figures.table1 ~seed:42 ());
  pr "== radical full-stack ==\n";
  radical_run "seed" Runner.Radical;
  radical_run "featureful" (Runner.Radical_with featureful);
  radical_run "replicated" (Runner.Radical_with replicated);
  chaos_block "all-templates"
    ~seeds:5
    ~config:
      {
        Campaign.default_config with
        batching = true;
        propagation = true;
        leases = true;
        shards = 4;
      }
    Plan.default_templates;
  (match Plan.find_template "everything" with
  | Some t ->
      chaos_block "everything-20seed" ~seeds:20
        ~config:
          {
            Campaign.default_config with
            batching = true;
            propagation = true;
            leases = true;
            shards = 2;
          }
        [ t ]
  | None -> failwith "everything template missing")
