(* Tests for the workload generators: Zipfian rank sampling, weighted
   mixes, and the open-loop Poisson driver's arrival process on the
   virtual clock. *)

open Sim

let run_sim ?(seed = 1) f =
  let e = Engine.create ~seed () in
  Engine.run e f

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)

let counts_of ~n ~theta ~draws ~seed =
  let z = Workload.Zipf.create ~n ~theta in
  let rng = Rng.create seed in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Workload.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  counts

(* Sanity: with theta = 0.99 (the paper's social/forum skew) empirical
   frequencies must be monotone non-increasing in rank for the hot head,
   and rank 0 must dominate the tail by a wide margin. *)
let test_zipf_frequency_ordering () =
  let n = 50 and draws = 20_000 in
  let counts = counts_of ~n ~theta:0.99 ~draws ~seed:7 in
  for r = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "rank %d at least as hot as rank %d" r (r + 1))
      true
      (counts.(r) >= counts.(r + 1))
  done;
  Alcotest.(check bool) "head dominates mid-tail 5x" true
    (counts.(0) > 5 * counts.(n / 2));
  Alcotest.(check int) "every draw accounted" draws
    (Array.fold_left ( + ) 0 counts)

(* The head's share must grow monotonically with theta: uniform (0.0)
   gives rank 0 ~ 1/n of the draws, and each increase in skew
   concentrates more mass on it. *)
let test_zipf_skew_monotone_in_theta () =
  let n = 100 and draws = 30_000 in
  let head_share theta =
    let counts = counts_of ~n ~theta ~draws ~seed:11 in
    float_of_int counts.(0) /. float_of_int draws
  in
  let shares = List.map head_share [ 0.0; 0.5; 0.9; 0.99; 1.2 ] in
  let rec check_increasing = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "share %.3f < %.3f" a b)
          true (a < b);
        check_increasing rest
    | [ _ ] | [] -> ()
  in
  check_increasing shares;
  (match shares with
  | uniform :: _ ->
      Alcotest.(check bool) "theta=0 is near-uniform" true
        (uniform < 2.5 /. float_of_int n)
  | [] -> Alcotest.fail "no shares");
  Alcotest.(check int) "n accessor" n
    (Workload.Zipf.n (Workload.Zipf.create ~n ~theta:0.99))

(* ------------------------------------------------------------------ *)
(* Mix                                                                 *)

let test_mix_proportions () =
  let mix = Workload.Mix.create [ ("a", 3.0); ("b", 1.0) ] in
  let rng = Rng.create 5 in
  let a = ref 0 and total = 10_000 in
  for _ = 1 to total do
    if Workload.Mix.sample mix rng = "a" then incr a
  done;
  let share = float_of_int !a /. float_of_int total in
  Alcotest.(check bool) "3:1 mix lands near 0.75" true
    (share > 0.70 && share < 0.80)

(* read_heavy: the empirical read-class share must track [read_share]
   and spread uniformly within each class, for any class sizes. *)
let test_read_heavy_proportions =
  QCheck.Test.make ~name:"read_heavy proportions" ~count:50
    QCheck.(
      quad (int_range 1 5) (int_range 1 5) (int_range 5 95) (int_range 0 10_000))
    (fun (n_reads, n_writes, share_pct, seed) ->
      let share = float_of_int share_pct /. 100.0 in
      let reads = List.init n_reads (fun i -> `Read i) in
      let writes = List.init n_writes (fun i -> `Write i) in
      let mix = Workload.Mix.read_heavy ~read_share:share ~reads ~writes () in
      let rng = Rng.create (seed + 1) in
      let draws = 4_000 in
      let read_counts = Array.make n_reads 0 in
      let read_total = ref 0 in
      for _ = 1 to draws do
        match Workload.Mix.sample mix rng with
        | `Read i ->
            incr read_total;
            read_counts.(i) <- read_counts.(i) + 1
        | `Write _ -> ()
      done;
      let got = float_of_int !read_total /. float_of_int draws in
      (* Class share within sampling noise of the requested share. *)
      abs_float (got -. share) < 0.05
      (* ... and uniform within the read class: every item near 1/n of
         the class draws. *)
      && Array.for_all
           (fun c ->
             abs_float
               ((float_of_int c /. float_of_int (Stdlib.max 1 !read_total))
               -. (1.0 /. float_of_int n_reads))
             < 0.08)
           read_counts)

let test_read_heavy_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty reads rejected" true
    (raises (fun () -> Workload.Mix.read_heavy ~reads:[] ~writes:[ `W ] ()));
  Alcotest.(check bool) "empty writes rejected" true
    (raises (fun () -> Workload.Mix.read_heavy ~reads:[ `R ] ~writes:[] ()));
  Alcotest.(check bool) "share 0 rejected" true
    (raises (fun () ->
         Workload.Mix.read_heavy ~read_share:0.0 ~reads:[ `R ] ~writes:[ `W ] ()));
  Alcotest.(check bool) "share 1 rejected" true
    (raises (fun () ->
         Workload.Mix.read_heavy ~read_share:1.0 ~reads:[ `R ] ~writes:[ `W ] ()))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

(* Open-loop arrivals on the virtual clock: the driver must space
   arrivals like a Poisson process at [rate] — mean gap ~ 1000/rate ms,
   independent of how long each handler runs (that is what makes it
   open-loop) — and return only after every spawned handler finished. *)
let test_driver_open_loop_spacing () =
  run_sim (fun () ->
      let rate = 100.0 (* req/s -> 10 ms mean gap *) in
      let duration = 20_000.0 in
      let stamps = ref [] in
      let completed = ref 0 in
      let n =
        Workload.Driver.run_open ~rate ~duration ~rng:(Rng.create 42)
          (fun ~arrival:_ ->
            stamps := Engine.now () :: !stamps;
            (* Handlers run far longer than the inter-arrival gap; an
               accidentally closed loop would collapse the rate. *)
            Engine.sleep 500.0;
            incr completed)
      in
      Alcotest.(check int) "returns after all handlers" n !completed;
      let stamps = List.rev !stamps in
      Alcotest.(check int) "one stamp per arrival" n (List.length stamps);
      (* ~rate * duration arrivals, within generous Poisson tolerance. *)
      let expected = rate *. duration /. 1000.0 in
      Alcotest.(check bool)
        (Printf.sprintf "arrival count %d near %.0f" n expected)
        true
        (float_of_int n > 0.8 *. expected && float_of_int n < 1.2 *. expected);
      let rec gaps = function
        | a :: (b :: _ as rest) -> (b -. a) :: gaps rest
        | [ _ ] | [] -> []
      in
      let gs = gaps stamps in
      List.iter
        (fun g -> Alcotest.(check bool) "gaps non-negative" true (g >= 0.0))
        gs;
      let mean = List.fold_left ( +. ) 0.0 gs /. float_of_int (List.length gs) in
      Alcotest.(check bool)
        (Printf.sprintf "mean gap %.2f ms near 10 ms" mean)
        true
        (mean > 8.0 && mean < 12.0);
      (* Exponential gaps: the spread is comparable to the mean —
         distinguishes Poisson arrivals from a fixed-interval ticker. *)
      let var =
        List.fold_left (fun acc g -> acc +. ((g -. mean) ** 2.0)) 0.0 gs
        /. float_of_int (List.length gs)
      in
      let cv = sqrt var /. mean in
      Alcotest.(check bool)
        (Printf.sprintf "coefficient of variation %.2f near 1" cv)
        true (cv > 0.7 && cv < 1.3);
      List.iter
        (fun t ->
          Alcotest.(check bool) "arrivals within duration" true
            (t <= duration +. 1.0))
        stamps)

(* Determinism: the same seed must yield the identical arrival train —
   the property the chaos campaign and benchmarks rely on. *)
let test_driver_open_loop_deterministic () =
  let trace seed =
    let stamps = ref [] in
    run_sim (fun () ->
        ignore
          (Workload.Driver.run_open ~rate:50.0 ~duration:2_000.0
             ~rng:(Rng.create seed) (fun ~arrival:_ ->
               stamps := Engine.now () :: !stamps)));
    List.rev !stamps
  in
  Alcotest.(check (list (float 1e-9))) "same seed, same arrivals" (trace 3)
    (trace 3);
  Alcotest.(check bool) "different seed differs" true (trace 3 <> trace 4)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "frequency ordering" `Quick
            test_zipf_frequency_ordering;
          Alcotest.test_case "skew monotone in theta" `Quick
            test_zipf_skew_monotone_in_theta;
        ] );
      ( "mix",
        [
          Alcotest.test_case "proportions" `Quick test_mix_proportions;
          QCheck_alcotest.to_alcotest test_read_heavy_proportions;
          Alcotest.test_case "read_heavy validation" `Quick
            test_read_heavy_validation;
        ] );
      ( "driver",
        [
          Alcotest.test_case "open-loop spacing" `Quick
            test_driver_open_loop_spacing;
          Alcotest.test_case "open-loop deterministic" `Quick
            test_driver_open_loop_deterministic;
        ] );
    ]
