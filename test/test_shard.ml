(* Sharded LVI service: directory/router units, the single-shard fast
   path (unchanged one-round-trip protocol), cross-shard atomic commit
   (commit, stale-abort-backup, concurrent opposite-order transfers),
   N=1 bit-identity with the unsharded seed deployment, workload-stream
   determinism across shard counts, and the restart reply-cache
   regression. *)

open Sim
open Fdsl.Ast
module Transport = Net.Transport
module Location = Net.Location
module Framework = Radical.Framework
module Runtime = Radical.Runtime
module Server = Radical.Server
module Directory = Shard.Directory
module Router = Shard.Router
module Kv = Store.Kv

(* --- Test functions: two prefix families ----------------------------- *)

let key p input = Concat [ Str p; Input input ]

(* Read-modify-write inside family "a:" — statically pinned to the
   shard owning that prefix. *)
let incr_a =
  {
    fn_name = "incr_a";
    params = [ "k" ];
    body =
      Let
        ( "cur",
          Read (key "a:" "k"),
          Let
            ( "next",
              Binop (Add, If (Var "cur", Var "cur", Int 0L), Int 1L),
              Seq [ Write (key "a:" "k", Var "next"); Var "next" ] ) );
  }

let get_a =
  { fn_name = "get_a"; params = [ "k" ]; body = Read (key "a:" "k") }

(* Moves one unit from a:src to b:dst — spans both families, so at two
   shards it always takes the cross-shard prepare/commit path. *)
let xfer =
  {
    fn_name = "xfer";
    params = [ "src"; "dst" ];
    body =
      Let
        ( "s",
          Read (key "a:" "src"),
          Let
            ( "d",
              Read (key "b:" "dst"),
              Seq
                [
                  Write (key "a:" "src", Binop (Sub, Var "s", Int 1L));
                  Write (key "b:" "dst", Binop (Add, Var "d", Int 1L));
                  Binop (Add, Var "d", Int 1L);
                ] ) );
  }

(* Reverse direction: b:src -> a:dst, for opposite-order concurrency. *)
let refund =
  {
    fn_name = "refund";
    params = [ "src"; "dst" ];
    body =
      Let
        ( "s",
          Read (key "b:" "src"),
          Let
            ( "d",
              Read (key "a:" "dst"),
              Seq
                [
                  Write (key "b:" "src", Binop (Sub, Var "s", Int 1L));
                  Write (key "a:" "dst", Binop (Add, Var "d", Int 1L));
                  Binop (Add, Var "d", Int 1L);
                ] ) );
  }

let funcs = [ incr_a; get_a; xfer; refund ]

let data =
  [
    ("a:x", Dval.int 10);
    ("a:y", Dval.int 5);
    ("b:x", Dval.int 100);
    ("b:y", Dval.int 50);
  ]

let two_shards =
  Directory.Prefix
    { shards = 2; rules = [ ("a:", 0); ("b:", 1) ]; default = 0 }

let sharded_config =
  { Framework.default_config with sharding = Some two_shards }

(* --- Harness --------------------------------------------------------- *)

let with_sharded ?(seed = 11) ?(config = sharded_config) ?tracer f =
  let e = Engine.create ~seed () in
  Engine.run e (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw = Framework.create ~config ?tracer ~net ~funcs ~data () in
      f net fw;
      Framework.stop fw)

let ok_value (o : Runtime.outcome) =
  match o.value with
  | Ok v -> v
  | Error e -> Alcotest.fail ("execution failed: " ^ e)

let int_value o =
  match ok_value o with
  | Dval.Int i -> Int64.to_int i
  | v -> Alcotest.fail ("expected int, got " ^ Dval.to_string v)

let primary_int fw k =
  match Kv.peek (Framework.primary fw) k with
  | Some { Kv.value = Dval.Int i; _ } -> Int64.to_int i
  | Some { Kv.value = v; _ } ->
      Alcotest.fail ("expected int at " ^ k ^ ", got " ^ Dval.to_string v)
  | None -> Alcotest.fail ("missing key " ^ k)

let check_clean fw =
  Alcotest.(check (list string))
    "drained" []
    (List.map
       (fun (v : Chaos.Oracle.violation) -> v.detail)
       (Chaos.Oracle.drained fw));
  Alcotest.(check (list string))
    "cross-atomic" []
    (List.map
       (fun (v : Chaos.Oracle.violation) -> v.detail)
       (Chaos.Oracle.cross_atomic fw))

(* --- Directory units -------------------------------------------------- *)

let test_hash_in_range () =
  (* Would have caught the Int64->int sign-wrap: roughly half of all
     64-bit FNV values used to map to a negative shard. *)
  List.iter
    (fun shards ->
      let dir = Directory.hash ~shards in
      for i = 0 to 999 do
        let k = Printf.sprintf "user:%d:feed-%d" i (i * i) in
        let s = Directory.shard_of_key dir k in
        if s < 0 || s >= shards then
          Alcotest.failf "key %S -> shard %d out of [0,%d)" k s shards;
        Alcotest.(check int)
          "deterministic" s
          (Directory.shard_of_key dir k)
      done)
    [ 2; 3; 4; 7 ]

let test_hash_spreads () =
  let dir = Directory.hash ~shards:4 in
  let counts = Array.make 4 0 in
  for i = 0 to 999 do
    let s = Directory.shard_of_key dir (Printf.sprintf "k%d" i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      if c < 150 then Alcotest.failf "shard %d got only %d/1000 keys" s c)
    counts

let test_prefix_longest_match () =
  let dir =
    Directory.prefix ~shards:3 ~default:2
      [ ("user:", 0); ("user:hot:", 1) ]
  in
  Alcotest.(check int) "longest rule wins" 1
    (Directory.shard_of_key dir "user:hot:42");
  Alcotest.(check int) "shorter rule" 0
    (Directory.shard_of_key dir "user:cold:42");
  Alcotest.(check int) "default" 2 (Directory.shard_of_key dir "other:1")

let test_shape_pinning () =
  let dir =
    Directory.prefix ~shards:3 ~default:2
      [ ("user:", 0); ("user:hot:", 1) ]
  in
  let shape_of fn =
    match (Analyzer.Absint.summarize fn).sm_reads with
    | sh :: _ -> sh
    | [] -> Alcotest.fail "no read shape"
  in
  let reads_prefix name p =
    { fn_name = name; params = [ "k" ]; body = Read (key p "k") }
  in
  (* "user:" ^ ⟨k⟩ is NOT pinned: for some hole contents the longer
     "user:hot:" rule overrides the baseline. *)
  Alcotest.(check bool) "ambiguous prefix unpinned" true
    (Directory.shard_of_shape dir (shape_of (reads_prefix "f" "user:")) = None);
  (* "user:hot:" ^ ⟨k⟩ is pinned: no longer rule can override. *)
  Alcotest.(check bool) "extended prefix pinned" true
    (Directory.shard_of_shape dir (shape_of (reads_prefix "g" "user:hot:"))
    = Some 1);
  (* Hash strategies cannot pin a holed shape at all. *)
  Alcotest.(check bool) "hash cannot pin holes" true
    (Directory.shard_of_shape (Directory.hash ~shards:3)
       (shape_of (reads_prefix "h" "user:"))
    = None)

let test_reconfigure_invalidates_router () =
  let dir = Directory.create two_shards in
  let router = Router.create dir in
  let sm = Analyzer.Absint.summarize incr_a in
  Alcotest.(check string) "pinned to shard 0" "single-shard(0)"
    (Format.asprintf "%a" Router.pp_placement (Router.classify router sm));
  let gen = Directory.generation dir in
  Directory.reconfigure dir
    (Directory.Prefix
       { shards = 2; rules = [ ("a:", 1); ("b:", 0) ]; default = 0 });
  Alcotest.(check bool) "generation bumped" true
    (Directory.generation dir > gen);
  Alcotest.(check string) "memo invalidated, reclassified" "single-shard(1)"
    (Format.asprintf "%a" Router.pp_placement (Router.classify router sm))

let test_router_classification () =
  let router = Router.create (Directory.create two_shards) in
  let place fn =
    Format.asprintf "%a" Router.pp_placement
      (Router.classify router (Analyzer.Absint.summarize fn))
  in
  Alcotest.(check string) "family-a RMW is single-shard" "single-shard(0)"
    (place incr_a);
  Alcotest.(check string) "transfer spans both" "cross-shard" (place xfer);
  let stats = Router.stats router in
  Alcotest.(check int) "memoized" 2 stats.classified

(* --- Single-shard fast path ------------------------------------------ *)

let test_single_shard_one_round_trip () =
  let tracer = Metrics.Tracer.create () in
  with_sharded ~tracer (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.ca "incr_a" [ Dval.Str "x" ] in
      Alcotest.(check int) "incremented" 11 (int_value o);
      Engine.sleep 2000.0;
      (* No coordination anywhere: the request ran the unchanged
         one-round-trip protocol at the shard owning family "a:". *)
      List.iter
        (fun s ->
          let st = Server.stats s in
          Alcotest.(check int) "no cross-shard requests" 0 st.cross_requests;
          Alcotest.(check int) "no participant prepares" 0 st.shard_prepares)
        (Framework.servers fw);
      let prepare_phases =
        List.filter
          (fun ((_, phase, _), _) -> phase = "shard_prepare")
          (Metrics.Tracer.phase_stats tracer)
      in
      Alcotest.(check int) "no shard_prepare phase in any trace" 0
        (List.length prepare_phases);
      check_clean fw)

(* --- Cross-shard atomic commit --------------------------------------- *)

let test_cross_shard_commit () =
  with_sharded (fun _ fw ->
      let o =
        Framework.invoke fw ~from:Location.de "xfer"
          [ Dval.Str "x"; Dval.Str "y" ]
      in
      Alcotest.(check int) "destination balance returned" 51 (int_value o);
      Engine.sleep 2000.0;
      Alcotest.(check int) "source debited" 9 (primary_int fw "a:x");
      Alcotest.(check int) "destination credited" 51 (primary_int fw "b:y");
      let coordinated =
        List.fold_left
          (fun acc s -> acc + (Server.stats s).cross_requests)
          0 (Framework.servers fw)
      in
      Alcotest.(check int) "one coordinated request" 1 coordinated;
      (* Both shards held a slice and agree the exec committed. *)
      let states = List.concat_map Server.cross_states (Framework.servers fw) in
      Alcotest.(check int) "both shards recorded the exec" 2
        (List.length states);
      List.iter
        (fun (_, st) ->
          Alcotest.(check bool) "committed" true (st = `Committed))
        states;
      check_clean fw)

let test_cross_shard_stale_backup () =
  with_sharded (fun _ fw ->
      (* Out-of-band primary write: every site's cached b:y (v1) is now
         stale, so shard 1's slice votes Stale and the coordinator runs
         the backup under the held locks. *)
      ignore (Kv.put (Framework.primary fw) "b:y" (Dval.int 80) : int);
      let o =
        Framework.invoke fw ~from:Location.de "xfer"
          [ Dval.Str "x"; Dval.Str "y" ]
      in
      Alcotest.(check int) "backup saw the fresh value" 81 (int_value o);
      Engine.sleep 2000.0;
      Alcotest.(check int) "source debited once" 9 (primary_int fw "a:x");
      Alcotest.(check int) "destination credited once" 81
        (primary_int fw "b:y");
      check_clean fw)

let test_concurrent_opposite_transfers () =
  with_sharded (fun _ fw ->
      (* xfer locks (a:x then b:x) at shards (0,1); refund locks (b:x
         then a:x) at shards (1,0). Both fire together from different
         sites: the non-blocking first round plus the ascending-shard
         blocking fallback must commit both without deadlock. *)
      let r1 = ref None and r2 = ref None in
      Engine.spawn (fun () ->
          r1 :=
            Some
              (Framework.invoke fw ~from:Location.ca "xfer"
                 [ Dval.Str "x"; Dval.Str "x" ]));
      Engine.spawn (fun () ->
          r2 :=
            Some
              (Framework.invoke fw ~from:Location.jp "refund"
                 [ Dval.Str "x"; Dval.Str "x" ]));
      Engine.sleep 8000.0;
      (match (!r1, !r2) with
      | Some o1, Some o2 ->
          ignore (ok_value o1);
          ignore (ok_value o2)
      | _ -> Alcotest.fail "a transfer never completed");
      (* One unit a->b and one unit b->a: balances are back where they
         started, through two atomic cross-shard commits. *)
      Alcotest.(check int) "a:x net zero" 10 (primary_int fw "a:x");
      Alcotest.(check int) "b:x net zero" 100 (primary_int fw "b:x");
      check_clean fw)

(* --- N=1 bit-identity with the seed deployment ----------------------- *)

let run_scripted sharding =
  let e = Engine.create ~seed:33 () in
  let out = ref [] in
  Engine.run e (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.05 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let config = { Framework.default_config with sharding } in
      let fw = Framework.create ~config ~net ~funcs ~data () in
      List.iter
        (fun (from, fn, args) ->
          let o = Framework.invoke fw ~from fn args in
          let v =
            match o.Runtime.value with Ok v -> Dval.to_string v | Error e -> e
          in
          out := Printf.sprintf "%s %s -> %s @ %.6f" from fn v o.latency :: !out)
        [
          (Location.ca, "incr_a", [ Dval.Str "x" ]);
          (Location.jp, "xfer", [ Dval.Str "x"; Dval.Str "y" ]);
          (Location.de, "get_a", [ Dval.Str "x" ]);
          (Location.ie, "refund", [ Dval.Str "y"; Dval.Str "y" ]);
          (Location.va, "incr_a", [ Dval.Str "y" ]);
        ];
      Engine.sleep 3000.0;
      Framework.stop fw);
  List.rev !out

let test_one_shard_bit_identical () =
  (* A 1-shard directory must construct a deployment that behaves
     bit-identically to the unsharded seed path: same results, same
     latencies to the microsecond, with transport jitter on (any extra
     message or RNG draw would shift every subsequent sample). *)
  Alcotest.(check (list string))
    "same results and latencies"
    (run_scripted None)
    (run_scripted (Some (Directory.Hash { shards = 1 })))

(* --- Workload-stream determinism across shard counts ------------------ *)

let test_workload_stream_determinism () =
  (* The campaign derives its generator RNG from the engine stream after
     deployment construction; topology must not perturb it. *)
  let stream sharding =
    let e = Engine.create ~seed:5 () in
    let out = ref [] in
    Engine.run e (fun () ->
        let rng = Engine.rng () in
        let net = Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split rng) () in
        let bundle = Experiments.Bundle.social in
        let config = { Framework.default_config with sharding } in
        let fw =
          Framework.create ~config ~net ~funcs:bundle.funcs
            ~data:(bundle.seed (Rng.split rng))
            ()
        in
        let gen = bundle.new_gen () in
        let grng = Rng.split rng in
        for i = 0 to 39 do
          let fn, args = gen grng in
          out :=
            Printf.sprintf "%s(%s)" fn
              (String.concat "," (List.map Dval.to_string args))
            :: !out;
          let from =
            List.nth (Framework.locations fw)
              (i mod List.length (Framework.locations fw))
          in
          ignore (Framework.invoke fw ~from fn args : Runtime.outcome)
        done;
        Framework.stop fw);
    List.rev !out
  in
  let unsharded = stream None in
  Alcotest.(check (list string))
    "same request stream at 4 shards" unsharded
    (stream (Some (Directory.Hash { shards = 4 })));
  Alcotest.(check (list string))
    "same request stream at 2 shards" unsharded
    (stream (Some (Directory.Hash { shards = 2 })))

(* --- Restart repopulates the reply cache (regression) ----------------- *)

let test_restart_duplicate_lvi_dedup () =
  with_sharded ~config:Framework.default_config (fun net fw ->
      let server = Framework.server fw in
      let req =
        {
          Radical.Proto.exec_id = "dup-1";
          fn_name = "incr_a";
          args = [ Dval.Str "x" ];
          reads = [ ("a:x", 1) ];
          writes = [ "a:x" ];
          ro_hint = false;
          from_loc = Location.va;
          piggyback = [];
        }
      in
      let svc = Server.lvi_service server in
      (* Original delivery: validates and installs the intent; the
         followup never arrives (we are the client and send none). *)
      let r1 = Transport.call net ~from:Location.va svc req in
      (match r1 with
      | Radical.Proto.Validated { write_versions; _ } ->
          Alcotest.(check (list (pair string int)))
            "validated at v1"
            [ ("a:x", 1) ]
            write_versions
      | Radical.Proto.Mismatch _ -> Alcotest.fail "unexpected mismatch");
      Alcotest.(check int) "intent pending" 1 (Server.pending_intents server);
      (* Restart: recovery must rebuild the reply-cache entry from the
         durable intent BEFORE re-executing it. *)
      Server.restart_recover server;
      Alcotest.(check int) "recovery re-executed" 1
        (Server.stats server).reexecutions;
      Alcotest.(check int) "write applied by re-execution" 11
        (primary_int fw "a:x");
      (* Duplicate delivery after the restart: without the rebuilt entry
         it would re-run the whole protocol — re-acquire the released
         locks, find its read stale (the re-execution bumped a:x to v2)
         and run the backup a second time. *)
      let r2 = Transport.call net ~from:Location.va svc req in
      (match r2 with
      | Radical.Proto.Validated { write_versions; _ } ->
          Alcotest.(check (list (pair string int)))
            "duplicate served from the rebuilt reply cache"
            [ ("a:x", 1) ]
            write_versions
      | Radical.Proto.Mismatch _ ->
          Alcotest.fail "duplicate re-entered the protocol as a mismatch");
      Engine.sleep 3000.0;
      Alcotest.(check int) "applied exactly once" 11 (primary_int fw "a:x");
      Alcotest.(check int) "no second re-execution" 1
        (Server.stats server).reexecutions;
      Alcotest.(check int) "no mismatch backup run" 0 (Server.stats server).mismatched;
      Alcotest.(check int) "drained" 0
        (Server.pending_intents server + Server.locks_held server))

let () =
  Alcotest.run "shard"
    [
      ( "directory",
        [
          Alcotest.test_case "hash in range" `Quick test_hash_in_range;
          Alcotest.test_case "hash spreads" `Quick test_hash_spreads;
          Alcotest.test_case "prefix longest match" `Quick
            test_prefix_longest_match;
          Alcotest.test_case "shape pinning" `Quick test_shape_pinning;
          Alcotest.test_case "reconfigure invalidates router" `Quick
            test_reconfigure_invalidates_router;
        ] );
      ( "router",
        [
          Alcotest.test_case "classification" `Quick
            test_router_classification;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "single-shard one round trip" `Quick
            test_single_shard_one_round_trip;
          Alcotest.test_case "cross-shard commit" `Quick
            test_cross_shard_commit;
          Alcotest.test_case "cross-shard stale backup" `Quick
            test_cross_shard_stale_backup;
          Alcotest.test_case "concurrent opposite transfers" `Quick
            test_concurrent_opposite_transfers;
        ] );
      ( "identity",
        [
          Alcotest.test_case "1 shard bit-identical to seed" `Quick
            test_one_shard_bit_identical;
          Alcotest.test_case "workload stream determinism" `Quick
            test_workload_stream_determinism;
        ] );
      ( "restart",
        [
          Alcotest.test_case "duplicate LVI after restart dedups" `Quick
            test_restart_duplicate_lvi_dedup;
        ] );
    ]
