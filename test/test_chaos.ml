(* Tests for lib/chaos: the fault-plan DSL, the nemesis driver, the
   invariant oracle, and the campaign runner with shrinking — plus the
   promoted failure-drill scenarios and non-quiescent
   [Server.restart_recover] coverage. *)

open Sim
open Fdsl.Ast
module Transport = Net.Transport
module Location = Net.Location
module Framework = Radical.Framework
module Runtime = Radical.Runtime
module Server = Radical.Server
module Kv = Store.Kv
module Plan = Chaos.Plan
module Nemesis = Chaos.Nemesis
module Oracle = Chaos.Oracle
module Campaign = Chaos.Campaign

(* --- Test functions and harness -------------------------------------- *)

let get_fn =
  { fn_name = "get"; params = [ "k" ]; body = Compute (100.0, Read (Input "k")) }

let put_fn =
  {
    fn_name = "put";
    params = [ "k"; "v" ];
    body = Compute (20.0, Seq [ Write (Input "k", Input "v"); Input "v" ]);
  }

let funcs = [ get_fn; put_fn ]

let data = [ ("x", Dval.Str "v1"); ("y", Dval.int 0) ]

let with_radical ?(seed = 11) ?config ?(funcs = funcs) ?(data = data) f =
  let e = Engine.create ~seed () in
  Engine.run e (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw = Framework.create ?config ~net ~funcs ~data () in
      f net fw;
      Framework.stop fw)

let short_timer_config =
  {
    Framework.default_config with
    server = { Server.default_config with intent_timeout = 800.0 };
  }

let ok_value (o : Runtime.outcome) =
  match o.value with
  | Ok v -> v
  | Error e -> Alcotest.fail ("execution failed: " ^ e)

let version_of fw k =
  match Kv.peek (Framework.primary fw) k with
  | Some { Kv.version; _ } -> version
  | None -> 0

(* A tiny key-value campaign app over a handful of contended keys. *)
let kv_app =
  {
    Campaign.ca_name = "kv";
    ca_funcs = funcs;
    ca_seed =
      (fun _ -> List.init 10 (fun i -> (Printf.sprintf "k%d" i, Dval.int 0)));
    ca_gen =
      (fun () rng ->
        let k = Printf.sprintf "k%d" (Rng.int rng 10) in
        if Rng.bool rng then
          ("put", [ Dval.Str k; Dval.int (Rng.int rng 100) ])
        else ("get", [ Dval.Str k ]));
  }

(* --- Plan DSL --------------------------------------------------------- *)

let test_plan_horizon () =
  let plan =
    [
      Plan.event ~at:100.0
        (Plan.Drop_messages
           { filter = Plan.followups (); prob = 1.0; duration = 500.0 });
      Plan.event ~at:400.0 (Plan.Wipe_cache Location.jp);
      Plan.event ~at:200.0
        (Plan.Crash_raft_node { victim = `Leader; downtime = 900.0 });
    ]
  in
  Alcotest.(check (float 1e-9)) "horizon = max(at + duration)" 1100.0
    (Plan.horizon_of plan);
  Alcotest.(check (float 1e-9)) "empty plan horizon" 0.0 (Plan.horizon_of [])

let test_templates_respect_horizon () =
  let horizon = 5000.0 in
  List.iter
    (fun (t : Plan.template) ->
      for seed = 1 to 20 do
        let rng = Rng.create (seed * 7919) in
        let plan =
          t.t_gen ~rng ~horizon ~locations:Location.user_locations
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d nonempty" t.t_name seed)
          true (plan <> []);
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d within horizon" t.t_name seed)
          true
          (Plan.horizon_of plan <= horizon);
        List.iter
          (fun (e : Plan.event) ->
            Alcotest.(check bool) "event not before t=0" true (e.at >= 0.0))
          plan
      done)
    Plan.default_templates

let test_find_template () =
  Alcotest.(check bool) "raft-churn exists" true
    (Option.is_some (Plan.find_template "raft-churn"));
  Alcotest.(check bool) "unknown template" true
    (Option.is_none (Plan.find_template "meteor-strike"))

(* --- Drill scenarios as plans (promoted from examples/failure_drill) --- *)

let test_lost_followup_reexecutes () =
  with_radical ~config:short_timer_config (fun net fw ->
      let env = { Nemesis.net; fw } in
      ignore
        (Nemesis.launch env
           [
             Plan.event ~at:0.0
               (Plan.Drop_messages
                  {
                    filter = Plan.followups ~src:Location.de ();
                    prob = 1.0;
                    duration = 600.0;
                  });
           ]);
      let o =
        Framework.invoke fw ~from:Location.de "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      ignore (ok_value o);
      Engine.sleep 2000.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "one deterministic re-execution" 1 st.reexecutions;
      Alcotest.(check int) "write applied exactly once" 2 (version_of fw "x");
      Alcotest.(check (list string)) "drained" []
        (List.map
           (fun (v : Oracle.violation) -> v.detail)
           (Oracle.drained fw)))

let test_late_followup_discarded () =
  with_radical ~config:short_timer_config (fun net fw ->
      let env = { Nemesis.net; fw } in
      ignore
        (Nemesis.launch env
           [
             Plan.event ~at:0.0
               (Plan.Delay_messages
                  {
                    filter = Plan.followups ~src:Location.de ();
                    extra = 3000.0;
                    prob = 1.0;
                    duration = 600.0;
                  });
           ]);
      let o =
        Framework.invoke fw ~from:Location.de "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      ignore (ok_value o);
      Engine.sleep 5000.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "timer re-executed" 1 st.reexecutions;
      Alcotest.(check int) "late followup discarded" 1 st.followups_discarded;
      Alcotest.(check int) "no double apply" 2 (version_of fw "x"))

let test_cache_wipe_self_repairs () =
  with_radical (fun net fw ->
      let env = { Nemesis.net; fw } in
      let o1 = Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ] in
      Alcotest.(check string) "warm read speculative" "speculative"
        (match o1.path with Runtime.Speculative -> "speculative" | _ -> "other");
      ignore
        (Nemesis.launch env
           [ Plan.event ~at:0.0 (Plan.Wipe_cache Location.jp) ]);
      Engine.sleep 1.0;
      Alcotest.(check int) "cache empty" 0
        (Cache.size (Runtime.cache (Framework.runtime fw Location.jp)));
      let o2 = Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ] in
      Alcotest.(check string) "cold read backup" "backup"
        (match o2.path with Runtime.Backup -> "backup" | _ -> "other");
      let o3 = Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ] in
      Alcotest.(check string) "repaired read speculative" "speculative"
        (match o3.path with Runtime.Speculative -> "speculative" | _ -> "other");
      Alcotest.(check (list string)) "caches coherent after repair" []
        (List.map
           (fun (v : Oracle.violation) -> v.detail)
           (Oracle.caches_coherent fw)))

(* --- Non-quiescent restart_recover (satellite: restart coverage) ------ *)

let test_restart_with_pending_intent_and_inflight_followup () =
  with_radical ~config:short_timer_config (fun net fw ->
      (* Slow every followup down; the restart happens while the intent
         is pending and its followup is still in flight. *)
      let h =
        Transport.add_fault net (fun ~src:_ ~dst:_ ~label ->
            if String.equal label "followup" then Transport.Delay 5000.0
            else Transport.Deliver)
      in
      let o =
        Framework.invoke fw ~from:Location.de "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      ignore (ok_value o);
      let server = Framework.server fw in
      Alcotest.(check int) "intent pending at restart" 1
        (Server.pending_intents server);
      Server.restart_recover server;
      Alcotest.(check int) "recovery re-executed the intent" 1
        (Server.stats server).reexecutions;
      Alcotest.(check int) "write applied by re-execution" 2
        (version_of fw "x");
      Alcotest.(check int) "no pending intent after recovery" 0
        (Server.pending_intents server);
      Alcotest.(check int) "locks released" 0 (Server.locks_held server);
      (* The delayed followup lands long after recovery: discarded, not
         applied a second time. *)
      Engine.sleep 6000.0;
      Alcotest.(check int) "in-flight followup discarded" 1
        (Server.stats server).followups_discarded;
      Alcotest.(check int) "still applied exactly once" 2 (version_of fw "x");
      Transport.remove_fault net h)

let test_restart_with_request_in_flight () =
  with_radical ~config:short_timer_config (fun _net fw ->
      (* Restart while the LVI request is still on the wire (~70 ms one
         way from JP, restart at 40 ms): the server has no intent yet,
         the handler fiber proceeds normally after the restart. *)
      let result = ref None in
      Engine.spawn (fun () ->
          result :=
            Some
              (Framework.invoke fw ~from:Location.jp "put"
                 [ Dval.Str "y"; Dval.int 9 ]));
      Engine.sleep 40.0;
      Server.restart_recover (Framework.server fw);
      Alcotest.(check int) "nothing to re-execute" 0
        (Server.stats (Framework.server fw)).reexecutions;
      Engine.sleep 4000.0;
      (match !result with
      | Some o -> ignore (ok_value o)
      | None -> Alcotest.fail "in-flight request never completed");
      Alcotest.(check int) "write applied exactly once" 2 (version_of fw "y");
      Alcotest.(check int) "drained" 0
        (Server.pending_intents (Framework.server fw) +
         Server.locks_held (Framework.server fw)))

(* A cache wipe landing mid-speculation must not leak unvalidated
   state into the result: [get] computes for 100 ms before its read,
   so wiping 60 ms in hits the window between the LVI version snapshot
   and the speculative cache read. The speculation must serve the read
   from the validated snapshot, return the real value, and leave a
   linearizable history. *)
let test_wipe_mid_speculation_stays_consistent () =
  with_radical (fun _net fw ->
      Framework.record_history fw;
      let outcome = ref None in
      Engine.spawn (fun () ->
          outcome := Some (Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ]));
      Engine.sleep 60.0;
      Cache.wipe (Runtime.cache (Framework.runtime fw Location.jp));
      Engine.sleep 3000.0;
      (match !outcome with
      | Some o ->
          Alcotest.(check bool) "speculative path" true (o.path = Runtime.Speculative);
          Alcotest.(check string) "validated snapshot value" "v1"
            (match ok_value o with Dval.Str s -> s | _ -> "?")
      | None -> Alcotest.fail "invocation did not complete");
      Alcotest.(check int) "history linearizable" 0
        (List.length (Oracle.check ~init:data fw)))

(* --- Oracle ----------------------------------------------------------- *)

let test_oracle_clean_deployment () =
  with_radical (fun _net fw ->
      Framework.record_history fw;
      ignore (Framework.invoke fw ~from:Location.ca "put" [ Dval.Str "x"; Dval.Str "v2" ]);
      ignore (Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ]);
      Engine.sleep 3000.0;
      Alcotest.(check int) "no violations" 0
        (List.length (Oracle.check ~init:data fw)))

let test_oracle_flags_poisoned_cache () =
  with_radical (fun _net fw ->
      let cache = Runtime.cache (Framework.runtime fw Location.ca) in
      (* Same version as the primary but a different value: the state a
         repaired cache can never legitimately reach. *)
      Cache.wipe cache;
      Cache.update cache "x" (Dval.Str "poison") ~version:(version_of fw "x");
      (match Oracle.caches_coherent fw with
      | [ v ] ->
          Alcotest.(check bool) "names the poisoned key" true
            (String.length v.detail > 0 && v.inv = "cache-coherent")
      | vs ->
          Alcotest.failf "expected exactly one violation, got %d"
            (List.length vs));
      (* A cache entry versioned ahead of the primary is equally bad. *)
      Cache.update cache "x" (Dval.Str "future") ~version:(version_of fw "x" + 5);
      Alcotest.(check bool) "version-ahead flagged" true
        (Oracle.caches_coherent fw <> []))

let test_oracle_flags_effect_miscounts () =
  with_radical (fun _net fw ->
      Framework.register_external fw ~name:"pay" (fun v -> v);
      let ext = Framework.external_services fw in
      (* Two distinct idempotency keys -> two handler runs; a duplicate
         key -> deduplicated. *)
      ignore (Radical.Extsvc.call ext ~service:"pay" ~key:"a" Dval.Unit);
      ignore (Radical.Extsvc.call ext ~service:"pay" ~key:"a" Dval.Unit);
      ignore (Radical.Extsvc.call ext ~service:"pay" ~key:"b" Dval.Unit);
      let spec i c =
        { Oracle.e_service = "pay"; e_issued = i; e_completed = c }
      in
      Alcotest.(check int) "2 runs within 3 issued: ok" 0
        (List.length (Oracle.effects_exactly_once fw [ spec 3 2 ]));
      Alcotest.(check int) "more runs than issued: flagged" 1
        (List.length (Oracle.effects_exactly_once fw [ spec 1 1 ]));
      Alcotest.(check int) "more completions than runs: flagged" 1
        (List.length (Oracle.effects_exactly_once fw [ spec 5 3 ])))

(* --- Campaign: sweeps, determinism, teeth ----------------------------- *)

let test_small_sweep_no_violations () =
  let summary =
    Campaign.sweep ~replay_every:5 ~seeds:2
      (let open Campaign in
       {
         ca_name = "kv";
         ca_funcs = kv_app.ca_funcs;
         ca_seed = kv_app.ca_seed;
         ca_gen = kv_app.ca_gen;
       })
  in
  Alcotest.(check bool) "ran the full grid" true (summary.Campaign.runs >= 12);
  Alcotest.(check int) "zero violations" 0
    (List.length summary.Campaign.failures);
  Alcotest.(check bool) "replays checked" true
    (summary.Campaign.replay_checks > 0);
  Alcotest.(check int) "replays deterministic" 0
    (List.length summary.Campaign.replay_mismatches)

let test_run_one_deterministic () =
  let plan =
    [
      Plan.event ~seed:5 ~at:300.0
        (Plan.Drop_messages
           { filter = Plan.followups (); prob = 0.6; duration = 2000.0 });
      Plan.event ~at:800.0 (Plan.Wipe_cache Location.ie);
    ]
  in
  let o1 = Campaign.run_one ~seed:42 kv_app plan in
  let o2 = Campaign.run_one ~seed:42 kv_app plan in
  Alcotest.(check string) "identical history fingerprints" o1.Campaign.fingerprint
    o2.Campaign.fingerprint;
  Alcotest.(check int) "no violations" 0 (List.length o1.Campaign.violations);
  let o3 = Campaign.run_one ~seed:43 kv_app plan in
  Alcotest.(check bool) "different seed, different history" true
    (not (String.equal o1.Campaign.fingerprint o3.Campaign.fingerprint))

(* The acceptance demonstration: a deliberately broken protocol (skipped
   intent re-execution) is invisible on a clean network, caught by the
   oracle under a followup blackout, and the failing plan shrinks to
   exactly that one event. *)
let test_mutation_caught_and_shrunk () =
  let mutated =
    {
      Campaign.default_config with
      mutation = Some Server.Skip_reexecution;
      horizon = 9500.0;
    }
  in
  let noisy =
    [
      Plan.event ~at:50.0
        (Plan.Delay_messages
           {
             filter = Plan.any_message;
             extra = 100.0;
             prob = 1.0;
             duration = 2000.0;
           });
      Plan.event ~at:200.0 (Plan.Wipe_cache Location.ie);
      Plan.event ~at:300.0
        (Plan.Drop_messages
           { filter = Plan.followups (); prob = 1.0; duration = 9000.0 });
      Plan.event ~at:900.0
        (Plan.Pause_site { loc = Location.jp; duration = 400.0 });
    ]
  in
  (* The mutation alone is harmless: without a lost followup there is
     never an orphaned intent to skip. *)
  let calm = Campaign.run_one ~config:mutated ~seed:7 kv_app [] in
  Alcotest.(check int) "mutation invisible on a clean network" 0
    (List.length calm.Campaign.violations);
  (* Under the noisy plan the oracle catches it... *)
  let o = Campaign.run_one ~config:mutated ~seed:7 kv_app noisy in
  Alcotest.(check bool) "violations caught" true
    (o.Campaign.violations <> []);
  (* ...and shrinking isolates the one event that matters. *)
  let shrunk = Campaign.shrink ~config:mutated ~seed:7 kv_app noisy in
  Alcotest.(check int) "shrunk to a single event" 1 (List.length shrunk);
  (match shrunk with
  | [ { Plan.action = Plan.Drop_messages { prob; _ }; _ } ] ->
      Alcotest.(check (float 1e-9)) "the followup blackout" 1.0 prob
  | _ -> Alcotest.fail "shrunk plan kept the wrong event");
  (* The same plan on the unmutated protocol is survivable — the bug,
     not the faults, caused the violations. *)
  let healthy = Campaign.run_one ~seed:7 kv_app shrunk in
  Alcotest.(check int) "correct protocol survives the shrunk plan" 0
    (List.length healthy.Campaign.violations)

let test_replicated_raft_churn () =
  let config = { Campaign.default_config with replicated = true } in
  let plan =
    [
      Plan.event ~at:400.0
        (Plan.Crash_raft_node { victim = `Leader; downtime = 800.0 });
      Plan.event ~at:2000.0
        (Plan.Crash_raft_node { victim = `Node 1; downtime = 600.0 });
    ]
  in
  let o = Campaign.run_one ~config ~seed:3 kv_app plan in
  Alcotest.(check int) "both crashes applied" 2 o.Campaign.faults_applied;
  Alcotest.(check int) "no violations under raft churn" 0
    (List.length o.Campaign.violations)

let test_raft_crash_skipped_on_singleton () =
  let plan =
    [
      Plan.event ~at:100.0
        (Plan.Crash_raft_node { victim = `Leader; downtime = 500.0 });
    ]
  in
  let o = Campaign.run_one ~seed:3 kv_app plan in
  Alcotest.(check int) "crash skipped" 1 o.Campaign.faults_skipped;
  Alcotest.(check int) "no violations" 0 (List.length o.Campaign.violations)

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "horizon" `Quick test_plan_horizon;
          Alcotest.test_case "templates respect horizon" `Quick
            test_templates_respect_horizon;
          Alcotest.test_case "find_template" `Quick test_find_template;
        ] );
      ( "drill",
        [
          Alcotest.test_case "lost followup re-executes" `Quick
            test_lost_followup_reexecutes;
          Alcotest.test_case "late followup discarded" `Quick
            test_late_followup_discarded;
          Alcotest.test_case "cache wipe self-repairs" `Quick
            test_cache_wipe_self_repairs;
        ] );
      ( "restart",
        [
          Alcotest.test_case "pending intent + in-flight followup" `Quick
            test_restart_with_pending_intent_and_inflight_followup;
          Alcotest.test_case "request in flight" `Quick
            test_restart_with_request_in_flight;
          Alcotest.test_case "wipe mid-speculation stays consistent" `Quick
            test_wipe_mid_speculation_stays_consistent;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean deployment" `Quick
            test_oracle_clean_deployment;
          Alcotest.test_case "poisoned cache flagged" `Quick
            test_oracle_flags_poisoned_cache;
          Alcotest.test_case "effect miscounts flagged" `Quick
            test_oracle_flags_effect_miscounts;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "small sweep, no violations" `Slow
            test_small_sweep_no_violations;
          Alcotest.test_case "deterministic replay" `Quick
            test_run_one_deterministic;
          Alcotest.test_case "mutation caught and shrunk" `Slow
            test_mutation_caught_and_shrunk;
          Alcotest.test_case "replicated raft churn" `Quick
            test_replicated_raft_churn;
          Alcotest.test_case "raft crash skipped on singleton" `Quick
            test_raft_crash_skipped_on_singleton;
        ] );
    ]
