(* Bytecode effect certification (Analyzer.Certify / Wasm.Effect).

   Three layers of coverage:
   - whole-catalog differential property: the shapes the bytecode
     interpreter derives are subsumed by the source-level Absint
     summary for every handler, and are label-insensitively *equal*
     for every Static-classified handler;
   - mutation rejections: hand-mutated compiled modules (extra write,
     swapped key prefix, store-dependent key under a Static
     classification, injected external call) must each be rejected
     with an instruction-path diagnostic that resolves to the
     offending instruction;
   - the registration gate end to end: an under-predicting manual
     f^rw is refused by [Registry.register_manual] unless the
     certification escape hatch is off. *)

open Fdsl.Ast
module Absint = Analyzer.Absint
module Derive = Analyzer.Derive
module Certify = Analyzer.Certify
module Effect = Wasm.Effect
module Instr = Wasm.Instr
module Wmodule = Wasm.Wmodule

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let catalog_fn name =
  List.find (fun (f : func) -> f.fn_name = name) Apps.Catalog.all_functions

(* Raw derivation exactly as registration sees it (manual pairing for
   the catalog's manual overrides). *)
let raw_derived (f : func) =
  match Apps.Catalog.manual_rw_of f.fn_name with
  | Some rw -> Some (Derive.manual ~source:f ~rw_func:rw)
  | None -> ( match Derive.derive f with Ok d -> Some d | Error _ -> None)

let effect_of (f : func) =
  let m = Fdsl.Compile.compile f in
  match Effect.analyze ~params:f.params m ~entry:f.fn_name with
  | Ok s -> s
  | Error e -> Alcotest.failf "%s: bytecode analysis failed: %s" f.fn_name e

let certify ?modul (f : func) =
  let modul =
    match modul with Some m -> m | None -> Fdsl.Compile.compile f
  in
  Certify.check ~source:f ~modul ?derived:(raw_derived f) ()

(* --- Differential property over the whole catalog -------------------- *)

let covered declared s =
  List.exists (fun d -> Absint.subsumes d s) declared

let test_catalog_subsumption () =
  List.iter
    (fun (f : func) ->
      let sm = Absint.summarize f in
      let eff = effect_of f in
      List.iter
        (fun s ->
          if not (covered sm.Absint.sm_reads s) then
            Alcotest.failf "%s: bytecode read %s not subsumed by source %s"
              f.fn_name
              (Absint.shape_to_string s)
              (String.concat " "
                 (List.map Absint.shape_to_string sm.Absint.sm_reads)))
        (Effect.reads eff);
      List.iter
        (fun s ->
          if not (covered sm.Absint.sm_writes s) then
            Alcotest.failf "%s: bytecode write %s not subsumed by source %s"
              f.fn_name
              (Absint.shape_to_string s)
              (String.concat " "
                 (List.map Absint.shape_to_string sm.Absint.sm_writes)))
        (Effect.writes eff))
    Apps.Catalog.all_functions

(* For Static functions the two analyses must agree exactly (up to hole
   labels): the bytecode view is not just sound but precise. *)
let test_static_exactness () =
  let set_equal a b =
    List.for_all (fun s -> List.exists (Absint.same_shape s) b) a
    && List.for_all (fun s -> List.exists (Absint.same_shape s) a) b
  in
  let checked = ref 0 in
  List.iter
    (fun (f : func) ->
      match Derive.derive f with
      | Ok { Derive.classification = Derive.Static; _ } ->
          incr checked;
          let sm = Absint.summarize f in
          let eff = effect_of f in
          if not (set_equal (Effect.reads eff) sm.Absint.sm_reads) then
            Alcotest.failf "%s: static reads differ (bytecode: %s)" f.fn_name
              (String.concat " "
                 (List.map Absint.shape_to_string (Effect.reads eff)));
          if not (set_equal (Effect.writes eff) sm.Absint.sm_writes) then
            Alcotest.failf "%s: static writes differ (bytecode: %s)" f.fn_name
              (String.concat " "
                 (List.map Absint.shape_to_string (Effect.writes eff)))
      | _ -> ())
    Apps.Catalog.all_functions;
  Alcotest.(check bool) "catalog has static functions" true (!checked > 0)

let test_catalog_all_certified () =
  List.iter
    (fun (f : func) ->
      let r = certify f in
      if not (Certify.certified r) then
        Alcotest.failf "%s: %s" f.fn_name
          (Format.asprintf "%a" Certify.pp_failure r))
    Apps.Catalog.all_functions

(* --- Mutation rejections --------------------------------------------- *)

(* Rebuild a compiled module with the entry function's body mutated
   (and any extra host imports the mutation needs). *)
let mutate (f : func) ?(extra_imports = []) g =
  let m = Fdsl.Compile.compile f in
  let idx =
    match Wmodule.find m f.fn_name with
    | Some i -> i
    | None -> Alcotest.failf "%s: entry missing from module" f.fn_name
  in
  let funcs =
    Array.mapi
      (fun i (fn : Wmodule.func) ->
        if i = idx then { fn with Wmodule.body = g fn.Wmodule.body } else fn)
      m.Wmodule.funcs
  in
  let imports =
    List.sort_uniq compare (extra_imports @ m.Wmodule.imports)
  in
  { Wmodule.funcs; imports }

let mutated_body m (f : func) =
  match Wmodule.find m f.fn_name with
  | Some i -> (Wmodule.func m i).Wmodule.body
  | None -> Alcotest.failf "%s: entry missing from module" f.fn_name

let issue_access (i : Certify.issue) =
  match i.Certify.i_access with
  | Some a -> a
  | None -> Alcotest.fail "issue carries no access"

(* A compiler bug (or hostile registrant) that sneaks in an extra
   write: appended after the result, outside every declared shape. *)
let test_mutation_extra_write () =
  let f = catalog_fn "social-login" in
  let m =
    mutate f ~extra_imports:[ "storage.write" ] (fun body ->
        body
        @ [
            Instr.Drop;
            Instr.Ref_const (Dval.Str "sneaky:k");
            Instr.Ref_const Dval.Unit;
            Instr.Call_host "storage.write";
          ])
  in
  let r = certify ~modul:m f in
  Alcotest.(check bool) "rejected" false (Certify.certified r);
  let bad =
    List.find
      (fun (i : Certify.issue) ->
        match i.Certify.i_problem with
        | Certify.Uncovered _ -> (issue_access i).Effect.a_kind = Effect.Write
        | _ -> false)
      r.Certify.c_issues
  in
  let path = (issue_access bad).Effect.a_path in
  Alcotest.(check bool) "path nonempty" true (path <> []);
  (* the diagnostic points at the injected storage.write *)
  match Instr.at_path (mutated_body m f) path with
  | Some (Instr.Call_host "storage.write") -> ()
  | other ->
      Alcotest.failf "path %s resolves to %s" (Instr.path_to_string path)
        (match other with
        | Some i -> Format.asprintf "%a" Instr.pp i
        | None -> "nothing")

(* Key prefix swapped inside the compiled stream: the bytecode now
   reads hijack:<u> while f^rw still declares timeline:<u>. *)
let test_mutation_swapped_prefix () =
  let f = catalog_fn "social-timeline" in
  let rec subst = function
    | Instr.Ref_const (Dval.Str "timeline:") ->
        Instr.Ref_const (Dval.Str "hijack:")
    | Instr.Block b -> Instr.Block (List.map subst b)
    | Instr.Loop b -> Instr.Loop (List.map subst b)
    | Instr.If (t, e) -> Instr.If (List.map subst t, List.map subst e)
    | i -> i
  in
  let m = mutate f (List.map subst) in
  let r = certify ~modul:m f in
  Alcotest.(check bool) "rejected" false (Certify.certified r);
  let bad =
    List.find
      (fun (i : Certify.issue) ->
        match i.Certify.i_problem with
        | Certify.Uncovered _ -> (issue_access i).Effect.a_kind = Effect.Read
        | _ -> false)
      r.Certify.c_issues
  in
  let a = issue_access bad in
  Alcotest.(check bool) "path nonempty" true (a.Effect.a_path <> []);
  Alcotest.(check bool) "shape names the hijacked prefix" true
    (contains (Absint.shape_to_string a.Effect.a_shape) "hijack:")

(* An input-determined key demoted to store-dependent: the first use of
   parameter [u] is replaced by a storage read, so the user: key's
   origin strengthens past what the Static classification admits. *)
let test_mutation_demoted_origin () =
  let f = catalog_fn "social-login" in
  let replaced = ref false in
  let rec subst_list body =
    List.concat_map
      (fun i ->
        match i with
        | Instr.Local_get 0 when not !replaced ->
            replaced := true;
            [ Instr.Ref_const (Dval.Str "cfg"); Instr.Call_host "storage.read" ]
        | Instr.Block b -> [ Instr.Block (subst_list b) ]
        | Instr.Loop b -> [ Instr.Loop (subst_list b) ]
        | Instr.If (t, e) -> [ Instr.If (subst_list t, subst_list e) ]
        | i -> [ i ])
      body
  in
  let m = mutate f subst_list in
  Alcotest.(check bool) "mutation applied" true !replaced;
  let r = certify ~modul:m f in
  Alcotest.(check bool) "rejected" false (Certify.certified r);
  let static_violation =
    List.find_opt
      (fun (i : Certify.issue) ->
        match i.Certify.i_problem with
        | Certify.Static_violation _ -> true
        | _ -> false)
      r.Certify.c_issues
  in
  let weak_origin =
    List.find_opt
      (fun (i : Certify.issue) ->
        match i.Certify.i_problem with
        | Certify.Weak_origin _ -> true
        | _ -> false)
      r.Certify.c_issues
  in
  (match static_violation with
  | Some i ->
      Alcotest.(check bool) "static-violation path nonempty" true
        ((issue_access i).Effect.a_path <> [])
  | None -> Alcotest.fail "no Static_violation issue");
  match weak_origin with
  | Some i ->
      Alcotest.(check bool) "weak-origin path nonempty" true
        ((issue_access i).Effect.a_path <> [])
  | None -> Alcotest.fail "no Weak_origin issue"

(* An external.call injected into a function whose source declares no
   external service. *)
let test_mutation_injected_external () =
  let f = catalog_fn "social-follow" in
  let m =
    mutate f ~extra_imports:[ "external.call" ] (fun body ->
        body
        @ [
            Instr.Drop;
            Instr.Ref_const (Dval.Str "mailer");
            Instr.Ref_const Dval.Unit;
            Instr.Call_host "external.call";
          ])
  in
  let r = certify ~modul:m f in
  Alcotest.(check bool) "rejected" false (Certify.certified r);
  let bad =
    List.find_opt
      (fun (i : Certify.issue) ->
        match i.Certify.i_problem with
        | Certify.Undeclared_external s -> s = "mailer"
        | _ -> false)
      r.Certify.c_issues
  in
  Alcotest.(check bool) "undeclared-external issue present" true
    (bad <> None);
  (* and the analysis recorded the call site's instruction path *)
  let eff =
    match r.Certify.c_effect with
    | Some e -> e
    | None -> Alcotest.fail "no effect summary"
  in
  Alcotest.(check bool) "external site has a path" true
    (List.exists
       (fun (p, s) -> s = "mailer" && p <> [])
       eff.Effect.ef_externals)

(* --- Effect interpreter corners -------------------------------------- *)

(* A known condition only explores the taken arm, mirroring Absint. *)
let test_known_cond_skips_arm () =
  let f =
    {
      fn_name = "condskip";
      params = [ "u" ];
      body =
        If
          ( Bool true,
            Read (Concat [ Str "a:"; Input "u" ]),
            Read (Concat [ Str "b:"; Input "u" ]) );
    }
  in
  let eff = effect_of f in
  let reads = List.map Absint.shape_to_string (Effect.reads eff) in
  Alcotest.(check int) "one read" 1 (List.length reads);
  Alcotest.(check bool) "then-arm only" true (contains (List.hd reads) "a:")

(* Loop accesses are flagged multi, and the compiled Foreach widens to
   a single shape instead of unrolling. *)
let test_loop_accesses_flagged () =
  let eff = effect_of (catalog_fn "social-post") in
  Alcotest.(check bool) "multi shapes nonempty" true (Effect.multi eff <> []);
  Alcotest.(check bool) "some access in a loop" true
    (List.exists (fun a -> a.Effect.a_loop) eff.Effect.ef_accesses)

(* Widening forces termination on a hand-written counting loop the
   fixpoint could otherwise chase for 1000 iterations. *)
let test_loop_widening_terminates () =
  let m =
    Wmodule.create
      ~funcs:
        [
          {
            Wmodule.fn_name = "spin";
            n_params = 0;
            n_locals = 1;
            body =
              [
                Instr.Block
                  [
                    Instr.Loop
                      [
                        Instr.Local_get 0;
                        Instr.I64_const 1L;
                        Instr.I64_binop Instr.Add;
                        Instr.Local_set 0;
                        Instr.Local_get 0;
                        Instr.I64_const 1000L;
                        Instr.I64_binop Instr.Lt_s;
                        Instr.Br_if 0;
                      ];
                  ];
                Instr.I64_const 0L;
              ];
          };
        ]
      ~imports:[]
  in
  match Effect.analyze m ~entry:"spin" with
  | Ok s ->
      Alcotest.(check int) "no accesses" 0 (List.length s.Effect.ef_accesses)
  | Error e -> Alcotest.failf "analysis failed: %s" e

(* --- Registration gate ----------------------------------------------- *)

(* Same lie as the propagation regression: the manual f^rw declares
   only the first of two writes. With the gate on, registration must
   refuse; with the escape hatch, the seed pipeline is back. *)
let lying_fn =
  {
    fn_name = "liar";
    params = [ "u" ];
    body =
      Seq
        [
          Write (Concat [ Str "lie:a:"; Input "u" ], Input "u");
          Write (Concat [ Str "lie:b:"; Input "u" ], Input "u");
          Input "u";
        ];
  }

let lying_rw =
  {
    fn_name = "liar^rw";
    params = [ "u" ];
    body = Declare (Decl_write, Concat [ Str "lie:a:"; Input "u" ]);
  }

let test_gate_rejects_lying_manual () =
  let reg = Radical.Registry.create () in
  match Radical.Registry.register_manual reg lying_fn ~rw_func:lying_rw with
  | Ok _ -> Alcotest.fail "under-predicting manual f^rw was accepted"
  | Error msg ->
      Alcotest.(check bool) "names the certifier" true
        (contains msg "effect certification failed");
      Alcotest.(check bool) "names the lie" true (contains msg "lie:b:")

let test_gate_escape_hatch () =
  Radical.Registry.set_certification false;
  Fun.protect
    ~finally:(fun () -> Radical.Registry.set_certification true)
  @@ fun () ->
  let reg = Radical.Registry.create () in
  match Radical.Registry.register_manual reg lying_fn ~rw_func:lying_rw with
  | Error msg -> Alcotest.failf "gate off, yet rejected: %s" msg
  | Ok e ->
      Alcotest.(check bool) "no certificate stored" true
        (e.Radical.Registry.certificate = None)

let test_honest_registration_carries_certificate () =
  let reg = Radical.Registry.create () in
  match Radical.Registry.register reg (catalog_fn "social-login") with
  | Error msg -> Alcotest.failf "registration failed: %s" msg
  | Ok e -> (
      match e.Radical.Registry.certificate with
      | Some r -> Alcotest.(check bool) "certified" true (Certify.certified r)
      | None -> Alcotest.fail "no certificate on a gated registration")

let () =
  Alcotest.run "certify"
    [
      ( "differential",
        [
          Alcotest.test_case "bytecode shapes subsumed by source summary"
            `Quick test_catalog_subsumption;
          Alcotest.test_case "static functions match exactly" `Quick
            test_static_exactness;
          Alcotest.test_case "whole catalog certifies" `Quick
            test_catalog_all_certified;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "extra write rejected" `Quick
            test_mutation_extra_write;
          Alcotest.test_case "swapped key prefix rejected" `Quick
            test_mutation_swapped_prefix;
          Alcotest.test_case "demoted key origin rejected" `Quick
            test_mutation_demoted_origin;
          Alcotest.test_case "injected external rejected" `Quick
            test_mutation_injected_external;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "known condition skips untaken arm" `Quick
            test_known_cond_skips_arm;
          Alcotest.test_case "loop accesses flagged multi" `Quick
            test_loop_accesses_flagged;
          Alcotest.test_case "loop widening terminates" `Quick
            test_loop_widening_terminates;
        ] );
      ( "gate",
        [
          Alcotest.test_case "lying manual f^rw refused" `Quick
            test_gate_rejects_lying_manual;
          Alcotest.test_case "escape hatch restores seed pipeline" `Quick
            test_gate_escape_hatch;
          Alcotest.test_case "honest registration carries certificate" `Quick
            test_honest_registration_carries_certificate;
        ] );
    ]
