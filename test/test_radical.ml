(* End-to-end tests of the Radical framework and the LVI protocol:
   speculation, validation, write intents, deterministic re-execution,
   failure injection, and linearizability of whole histories. *)

open Sim
open Fdsl.Ast
module Transport = Net.Transport
module Location = Net.Location
module Framework = Radical.Framework
module Runtime = Radical.Runtime
module Server = Radical.Server
module Kv = Store.Kv

(* --- Test functions ------------------------------------------------- *)

let get_fn =
  { fn_name = "get"; params = [ "k" ]; body = Compute (100.0, Read (Input "k")) }

let put_fn =
  {
    fn_name = "put";
    params = [ "k"; "v" ];
    body = Compute (20.0, Seq [ Write (Input "k", Input "v"); Input "v" ]);
  }

(* Read-modify-write: the LVI request must validate the read even though
   the key takes a write lock. *)
let incr_fn =
  {
    fn_name = "incr";
    params = [ "k" ];
    body =
      Let
        ( "cur",
          Read (Input "k"),
          Let
            ( "next",
              Binop (Add, If (Var "cur", Var "cur", Int 0L), Int 1L),
              Seq [ Write (Input "k", Var "next"); Var "next" ] ) );
  }

let opaque_fn =
  { fn_name = "mystery"; params = []; body = Compute (30.0, Read (Opaque (Str "x"))) }

let funcs = [ get_fn; put_fn; incr_fn; opaque_fn ]

let data = [ ("x", Dval.Str "v1"); ("ctr", Dval.int 0) ]

(* --- Harness --------------------------------------------------------- *)

let with_radical ?(seed = 11) ?config ?(funcs = funcs) ?(data = data) f =
  let e = Engine.create ~seed () in
  Engine.run e (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw = Framework.create ?config ~net ~funcs ~data () in
      f net fw;
      Framework.stop fw)

let ok_value (o : Runtime.outcome) =
  match o.value with
  | Ok v -> v
  | Error e -> Alcotest.fail ("execution failed: " ^ e)

let check_path msg expected (o : Runtime.outcome) =
  let name = function
    | Runtime.Speculative -> "speculative"
    | Runtime.Backup -> "backup"
    | Runtime.Fallback -> "fallback"
    | Runtime.Local -> "local"
  in
  Alcotest.(check string) msg (name expected) (name o.path)

let check_dval msg expected got =
  Alcotest.(check string) msg (Dval.to_string expected) (Dval.to_string got)

(* --- Registration ---------------------------------------------------- *)

let test_registration_rejects_nondeterminism () =
  let bad = { fn_name = "clock"; params = []; body = Time_now } in
  with_radical (fun net _ ->
      match Framework.create ~net ~funcs:[ bad ] ~data:[] () with
      | exception Invalid_argument msg ->
          Alcotest.(check bool) "mentions validation" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "expected registration failure")

let test_unanalyzable_registers_with_fallback () =
  with_radical (fun _ fw ->
      match Radical.Registry.find (Framework.registry fw) "mystery" with
      | Some entry ->
          Alcotest.(check bool) "no derived f^rw" true (entry.derived = None)
      | None -> Alcotest.fail "mystery not registered")

(* --- Happy paths ------------------------------------------------------ *)

let test_speculative_read () =
  with_radical (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "validated speculation" Runtime.Speculative o;
      check_dval "cache value returned" (Dval.Str "v1") (ok_value o);
      (* invoke 12 + f^rw 1 + max(speculation = 6 cache + 100 compute,
         LVI = 68 rtt + 6 version check) = 119 *)
      Alcotest.(check (float 0.2)) "deterministic latency" 119.0 o.latency;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "validated" 1 st.validated;
      Alcotest.(check int) "no locks held after read-only" 0
        (Server.locks_held (Framework.server fw)))

(* --- Read-only LVI fast path ----------------------------------------- *)

let test_ro_fast_path_taken () =
  with_radical (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "validated speculation" Runtime.Speculative o;
      (* Same latency as the locked path: versions are checked at the
         same storage instant either way (test_speculative_read pins
         119.0); the fast path saves lock state, not simulated time. *)
      Alcotest.(check (float 0.2)) "latency unchanged" 119.0 o.latency;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "read-only fast path taken" 1 st.ro_fast;
      Alcotest.(check int) "still counts as validated" 1 st.validated;
      let rt = Framework.runtime fw Location.ca in
      Alcotest.(check int) "runtime sent the hint" 1
        (Runtime.stats rt).ro_hints;
      (* A write must never take it, hint or not. *)
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      Engine.sleep 200.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "write stayed on the locked path" 1 st.ro_fast;
      (* And a read-modify-write neither. *)
      let _ = Framework.invoke fw ~from:Location.ca "incr" [ Dval.Str "ctr" ] in
      Engine.sleep 200.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "rmw stayed on the locked path" 1 st.ro_fast)

let test_ro_fast_disabled_ablation () =
  let config = { Framework.default_config with ro_fast = false } in
  with_radical ~config (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "still speculative" Runtime.Speculative o;
      Alcotest.(check (float 0.2)) "same latency on the locked path" 119.0
        o.latency;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "fast path never taken" 0 st.ro_fast;
      Alcotest.(check int) "validated the locked way" 1 st.validated;
      let rt = Framework.runtime fw Location.ca in
      Alcotest.(check int) "no hints sent" 0 (Runtime.stats rt).ro_hints)

let test_ro_fast_stale_cache_falls_through () =
  with_radical (fun _ fw ->
      (* Write from one site, then read from a site whose cache is still
         stale: the fast path's version check must fail and the locked
         path must repair the cache, exactly like the slow path does. *)
      let _ =
        Framework.invoke fw ~from:Location.va "put"
          [ Dval.Str "x"; Dval.Str "new" ]
      in
      Engine.sleep 200.0;
      let o = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "stale read takes backup" Runtime.Backup o;
      check_dval "fresh value" (Dval.Str "new") (ok_value o);
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "fast path refused the stale read" 0 st.ro_fast;
      (* Cache repaired: the next read takes the fast path. *)
      let o2 = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "repaired cache validates" Runtime.Speculative o2;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "now fast-pathed" 1 st.ro_fast)

let test_speculative_write_and_followup () =
  with_radical (fun _ fw ->
      let o =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "v2" ]
      in
      check_path "validated write" Runtime.Speculative o;
      (* Blind write: LVI dominates (68 rtt + 6 versions + 6 intent). *)
      Alcotest.(check (float 0.2)) "write latency" 93.0 o.latency;
      Engine.sleep 200.0;
      (match Kv.peek (Framework.primary fw) "x" with
      | Some { value; version } ->
          check_dval "followup applied" (Dval.Str "v2") value;
          Alcotest.(check int) "version bumped once" 2 version
      | None -> Alcotest.fail "x missing");
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "followup applied" 1 st.followups_applied;
      Alcotest.(check int) "no re-execution" 0 st.reexecutions;
      Alcotest.(check int) "locks released" 0
        (Server.locks_held (Framework.server fw));
      Alcotest.(check int) "no pending intents" 0
        (Server.pending_intents (Framework.server fw)))

let test_cross_site_read_after_write () =
  with_radical (fun _ fw ->
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "new" ]
      in
      Engine.sleep 300.0;
      (* DE's cache still has version 1: validation must fail and return
         the fresh value. *)
      let o1 = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "stale cache detected" Runtime.Backup o1;
      check_dval "fresh value" (Dval.Str "new") (ok_value o1);
      (* The mismatch response repaired DE's cache. *)
      let o2 = Framework.invoke fw ~from:Location.de "get" [ Dval.Str "x" ] in
      check_path "repaired cache validates" Runtime.Speculative o2;
      check_dval "still fresh" (Dval.Str "new") (ok_value o2))

let test_cache_miss_suppresses_speculation () =
  with_radical (fun _ fw ->
      let o1 = Framework.invoke fw ~from:Location.ie "get" [ Dval.Str "nope" ] in
      check_path "miss forces backup" Runtime.Backup o1;
      check_dval "absent key reads unit" Dval.Unit (ok_value o1);
      let rt = Framework.runtime fw Location.ie in
      Alcotest.(check int) "speculation skipped" 1
        (Runtime.stats rt).skipped_speculations;
      (* The miss response cached (Unit, version 0): next time validates. *)
      let o2 = Framework.invoke fw ~from:Location.ie "get" [ Dval.Str "nope" ] in
      check_path "absent key now validates" Runtime.Speculative o2)

let test_cold_cache_bootstrap () =
  let config = { Framework.default_config with warm_caches = false } in
  with_radical ~config (fun _ fw ->
      let o1 = Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ] in
      check_path "cold cache backup" Runtime.Backup o1;
      let o2 = Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ] in
      check_path "bootstrapped" Runtime.Speculative o2)

let test_cache_wipe_recovers () =
  with_radical (fun _ fw ->
      let rt = Framework.runtime fw Location.ca in
      let o1 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "warm" Runtime.Speculative o1;
      Cache.wipe (Runtime.cache rt);
      let o2 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "wiped cache misses" Runtime.Backup o2;
      let o3 = Framework.invoke fw ~from:Location.ca "get" [ Dval.Str "x" ] in
      check_path "recovered" Runtime.Speculative o3)

let test_fallback_for_unanalyzable () =
  with_radical (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.de "mystery" [] in
      check_path "fallback" Runtime.Fallback o;
      check_dval "reads x near storage" (Dval.Str "v1") (ok_value o);
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "direct execution" 1 st.direct_executions)

let test_expensive_runs_near_storage () =
  (* A key derived from heavy computation: f^rw would cost as much as f,
     so the framework always executes near storage (§3.3). *)
  let mine =
    {
      fn_name = "mine";
      params = [ "seed" ];
      body =
        Read (Concat [ Str "k:"; Str_of_int (Compute (200.0, Input "seed")) ]);
    }
  in
  with_radical ~funcs:(mine :: funcs) (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.ca "mine" [ Dval.int 3 ] in
      check_path "expensive goes near storage" Runtime.Fallback o)

let test_unknown_function_raises () =
  with_radical (fun _ fw ->
      match Framework.invoke fw ~from:Location.ca "nope" [] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

let test_pure_compute_function () =
  (* No storage accesses at all: the LVI request carries an empty set,
     validation is trivially true, no locks, no intent. *)
  let pure =
    {
      fn_name = "pure";
      params = [ "n" ];
      body = Compute (80.0, Binop (Mul, Input "n", Int 2L));
    }
  in
  with_radical ~funcs:(pure :: funcs) (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.de "pure" [ Dval.int 21 ] in
      check_path "speculative" Runtime.Speculative o;
      check_dval "result" (Dval.int 42) (ok_value o);
      Alcotest.(check int) "no locks" 0 (Server.locks_held (Framework.server fw));
      Alcotest.(check int) "no intents" 0
        (Server.pending_intents (Framework.server fw)))

let test_wide_write_set () =
  (* A fan-out of 40 writes: sorted multi-lock acquisition, one intent,
     one followup carrying all of them. *)
  let fanout =
    {
      fn_name = "fanout";
      params = [ "tag" ];
      body =
        Compute
          ( 30.0,
            Seq
              (List.init 40 (fun i ->
                   Write
                     ( Concat
                         [ Str (Printf.sprintf "wide:%02d:" i); Input "tag" ],
                       Input "tag" ))) );
    }
  in
  with_radical ~funcs:(fanout :: funcs) (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.ie "fanout" [ Dval.Str "t" ] in
      check_path "speculative" Runtime.Speculative o;
      Engine.sleep 1000.0;
      let kv = Framework.primary fw in
      for i = 0 to 39 do
        match Kv.peek kv (Printf.sprintf "wide:%02d:t" i) with
        | Some _ -> ()
        | None -> Alcotest.fail (Printf.sprintf "write %d missing" i)
      done;
      Alcotest.(check int) "locks released" 0
        (Server.locks_held (Framework.server fw)))

(* --- Failure injection ------------------------------------------------ *)

let drop_nth_followup net n =
  let count = ref 0 in
  Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
      if String.equal label "followup" then begin
        incr count;
        if !count = n then Transport.Drop else Transport.Deliver
      end
      else Transport.Deliver)

let test_dropped_followup_triggers_reexecution () =
  with_radical (fun net fw ->
      drop_nth_followup net 1;
      let o =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "vlost" ]
      in
      check_path "client already answered" Runtime.Speculative o;
      (* Wait out the intent timer. *)
      Engine.sleep 2500.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "re-execution ran" 1 st.reexecutions;
      Alcotest.(check int) "no followup applied" 0 st.followups_applied;
      (match Kv.peek (Framework.primary fw) "x" with
      | Some { value; version } ->
          check_dval "write recovered" (Dval.Str "vlost") value;
          Alcotest.(check int) "applied exactly once" 2 version
      | None -> Alcotest.fail "x missing");
      Alcotest.(check int) "locks released" 0
        (Server.locks_held (Framework.server fw));
      Alcotest.(check int) "intent resolved" 0
        (Server.pending_intents (Framework.server fw)))

let test_late_followup_discarded () =
  with_radical (fun net fw ->
      let count = ref 0 in
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if String.equal label "followup" then begin
            incr count;
            if !count = 1 then Transport.Delay 3000.0 else Transport.Deliver
          end
          else Transport.Deliver);
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "vlate" ]
      in
      Engine.sleep 6000.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "re-execution won" 1 st.reexecutions;
      Alcotest.(check int) "late followup discarded" 1 st.followups_discarded;
      match Kv.peek (Framework.primary fw) "x" with
      | Some { version; _ } ->
          (* Re-execution applied once; the late followup must not bump
             the version a second time. *)
          Alcotest.(check int) "applied exactly once" 2 version
      | None -> Alcotest.fail "x missing")

let test_write_lock_blocks_until_followup () =
  with_radical (fun _ fw ->
      Framework.record_history fw;
      (* Two increments racing from different sites must serialize. *)
      let done1 = Ivar.create () and done2 = Ivar.create () in
      Engine.spawn (fun () ->
          Ivar.fill done1 (Framework.invoke fw ~from:Location.ca "incr" [ Dval.Str "ctr" ]));
      Engine.spawn (fun () ->
          Ivar.fill done2 (Framework.invoke fw ~from:Location.de "incr" [ Dval.Str "ctr" ]));
      let o1 = Ivar.read done1 and o2 = Ivar.read done2 in
      Engine.sleep 2000.0;
      let final =
        match Kv.peek (Framework.primary fw) "ctr" with
        | Some { value; _ } -> value
        | None -> Dval.Unit
      in
      check_dval "both increments survive" (Dval.int 2) final;
      let returned = List.sort compare [ ok_value o1; ok_value o2 ] in
      Alcotest.(check (list string)) "clients saw 1 and 2"
        [ "1"; "2" ]
        (List.map Dval.to_string returned);
      Alcotest.(check bool) "history is linearizable" true
        (Lincheck.check ~init:data (Framework.history fw)))

(* --- Linearizability under churn -------------------------------------- *)

let prop_linearizable_history =
  QCheck.Test.make ~name:"random concurrent workloads are linearizable"
    ~count:15
    QCheck.(pair small_int (list_of_size Gen.(5 -- 12) (int_range 0 99)))
    (fun (seed, choices) ->
      let ok = ref true in
      let e = Engine.create ~seed:(seed + 100) () in
      Engine.run e (fun () ->
          let net =
            Transport.create ~jitter_sigma:0.05
              ~rng:(Rng.split (Engine.rng ()))
              ()
          in
          let fw = Framework.create ~net ~funcs ~data () in
          Framework.record_history fw;
          let rng = Rng.split (Engine.rng ()) in
          (* Adversarial network: ~25% of followups drop (forcing
             re-execution), and any other protocol message may be
             delayed up to 400 ms, reordering the schedule. *)
          Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
              if String.equal label "followup" && Rng.int rng 4 = 0 then
                Transport.Drop
              else if Rng.int rng 5 = 0 then
                Transport.Delay (Rng.float rng 400.0)
              else Transport.Deliver);
          let sites = [ Location.ca; Location.de; Location.jp; Location.va ] in
          let pending = ref 0 in
          List.iteri
            (fun i c ->
              incr pending;
              Engine.spawn (fun () ->
                  Engine.sleep (float_of_int i *. Rng.float rng 40.0);
                  let from = List.nth sites (c mod List.length sites) in
                  let key = if c mod 3 = 0 then "x" else "ctr" in
                  let _ =
                    match c mod 3 with
                    | 0 ->
                        Framework.invoke fw ~from "put"
                          [ Dval.Str key; Dval.Str (Printf.sprintf "v%d" c) ]
                    | 1 -> Framework.invoke fw ~from "incr" [ Dval.Str key ]
                    | _ -> Framework.invoke fw ~from "get" [ Dval.Str key ]
                  in
                  decr pending))
            choices;
          (* Let every invocation, followup and intent timer resolve. *)
          Engine.sleep 20000.0;
          if !pending <> 0 then ok := false;
          if not (Lincheck.check ~init:data (Framework.history fw)) then
            ok := false;
          if Server.locks_held (Framework.server fw) <> 0 then ok := false;
          if Server.pending_intents (Framework.server fw) <> 0 then ok := false;
          Framework.stop fw);
      !ok)

(* --- Replicated server (§5.6) ----------------------------------------- *)

let test_replicated_server () =
  let config =
    {
      Framework.default_config with
      server =
        { Server.default_config with mode = Server.Replicated { az_rtt = 1.5 } };
    }
  in
  with_radical ~config (fun net fw ->
      (* Let the Raft cluster elect a leader. *)
      Engine.sleep 500.0;
      let o =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "r1" ]
      in
      check_path "works through raft-backed locks" Runtime.Speculative o;
      Engine.sleep 500.0;
      (match Kv.peek (Framework.primary fw) "x" with
      | Some { value; _ } -> check_dval "applied" (Dval.Str "r1") value
      | None -> Alcotest.fail "x missing");
      (* At-most-once near storage under a dropped followup. *)
      drop_nth_followup net 1;
      let _ =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "r2" ]
      in
      Engine.sleep 4000.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "one re-execution" 1 st.reexecutions;
      match Kv.peek (Framework.primary fw) "x" with
      | Some { value; version } ->
          check_dval "recovered" (Dval.Str "r2") value;
          Alcotest.(check int) "exactly once" 3 version
      | None -> Alcotest.fail "x missing")

(* Regression: a key that is both read and written (incr reads "ctr"
   and writes it back) was passed twice to [persist_unlocks] — once from
   the writes, once from the reads — appending a redundant [Del] to the
   replicated lock log on every release. Both release sites (followup
   and orphaned-intent re-execution) must emit exactly one [Del] per
   persisted [Set]. *)
let test_replicated_unlock_dedupe () =
  let config =
    {
      Framework.default_config with
      server =
        { Server.default_config with mode = Server.Replicated { az_rtt = 1.5 } };
    }
  in
  with_radical ~config (fun net fw ->
      Engine.sleep 500.0 (* leader election *);
      (* Release via the followup path. *)
      let o = Framework.invoke fw ~from:Location.ca "incr" [ Dval.Str "ctr" ] in
      check_path "raft-backed incr" Runtime.Speculative o;
      Engine.sleep 1000.0;
      (* Release via the orphaned-intent path: drop the followup and let
         the intent timer trigger deterministic re-execution. *)
      drop_nth_followup net 1;
      let _ = Framework.invoke fw ~from:Location.ca "incr" [ Dval.Str "ctr" ] in
      Engine.sleep 4000.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "re-execution ran" 1 st.reexecutions;
      let cluster = Option.get (Server.raft_cluster (Framework.server fw)) in
      let node = Option.get (Radical.Raft_locks.leader cluster) in
      let sets, dels =
        List.fold_left
          (fun (s, d) cmd ->
            match cmd with
            | Raft.Kvsm.Set (k, _) when k = "lock:ctr" -> (s + 1, d)
            | Raft.Kvsm.Del k when k = "lock:ctr" -> (s, d + 1)
            | _ -> (s, d))
          (0, 0)
          (Radical.Raft_locks.applied cluster node)
      in
      Alcotest.(check bool) "both acquisitions persisted" true (sets >= 2);
      Alcotest.(check int) "exactly one Del per Set" sets dels)

(* --- Batching (group commit, admission, followup coalescing) --------- *)

(* Every batching knob on at once against a replicated server: group
   commit on the lock log, windowed lock persistence, conflict-aware
   admission, followup window + piggyback. The protocol must stay
   correct (linearizable, locks drained) and the batching machinery must
   actually engage. *)
let test_batching_full_stack () =
  let config =
    {
      Framework.default_config with
      server =
        {
          Server.default_config with
          mode = Server.Replicated { az_rtt = 1.5 };
          batching = Server.full_batching;
        };
      fu_window = 2.0;
      fu_piggyback = true;
    }
  in
  with_radical ~config (fun _ fw ->
      Engine.sleep 800.0 (* leader election *);
      Framework.record_history fw;
      let sites = [ Location.ca; Location.de; Location.jp ] in
      let pending = ref 0 in
      List.iteri
        (fun i from ->
          incr pending;
          Engine.spawn (fun () ->
              let _ =
                Framework.invoke fw ~from "put"
                  [ Dval.Str (Printf.sprintf "site%d" i); Dval.Str "v" ]
              in
              let _ = Framework.invoke fw ~from "incr" [ Dval.Str "ctr" ] in
              let _ = Framework.invoke fw ~from "get" [ Dval.Str "x" ] in
              decr pending))
        sites;
      Engine.sleep 20_000.0;
      Alcotest.(check int) "all invocations completed" 0 !pending;
      (match Kv.peek (Framework.primary fw) "ctr" with
      | Some { value; _ } -> check_dval "all increments survive" (Dval.int 3) value
      | None -> Alcotest.fail "ctr missing");
      List.iteri
        (fun i _ ->
          match Kv.peek (Framework.primary fw) (Printf.sprintf "site%d" i) with
          | Some _ -> ()
          | None -> Alcotest.fail (Printf.sprintf "site%d write lost" i))
        sites;
      Alcotest.(check bool) "history is linearizable" true
        (Lincheck.check ~init:data (Framework.history fw));
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "locks drained" 0
        (Server.locks_held (Framework.server fw));
      Alcotest.(check int) "no orphaned intents" 0
        (Server.pending_intents (Framework.server fw));
      Alcotest.(check bool) "windowed persistence engaged" true
        (st.persist_flushes > 0);
      let rt_piggy =
        List.fold_left
          (fun acc loc -> acc + (Runtime.stats (Framework.runtime fw loc)).fu_piggybacked)
          0 sites
      in
      let rt_batches =
        List.fold_left
          (fun acc loc -> acc + (Runtime.stats (Framework.runtime fw loc)).fu_batches)
          0 sites
      in
      Alcotest.(check bool) "followups coalesced or piggybacked" true
        (rt_piggy + rt_batches > 0))

(* Conflict-aware admission alone (singleton server): concurrent
   same-key increments must wait on each other (and stay correct), while
   writes to disjoint keys pass the dynamic overlap check without
   queueing behind them. *)
let test_admission_gates_conflicts () =
  let config =
    {
      Framework.default_config with
      server =
        {
          Server.default_config with
          batching = { Server.no_batching with admission = true };
        };
    }
  in
  with_radical ~config (fun _ fw ->
      Framework.record_history fw;
      let outs = ref [] in
      let spawn_invoke from fn args =
        Engine.spawn (fun () ->
            let o = Framework.invoke fw ~from fn args in
            outs := o :: !outs)
      in
      (* Three same-key increments: the second blocks on the lock table
         while still inside admission, so the third — arriving during
         that window — must wait in the admission queue (the first
         enters and leaves admission before the others even arrive).
         The disjoint put passes the dynamic overlap check. *)
      spawn_invoke Location.ca "incr" [ Dval.Str "ctr" ];
      spawn_invoke Location.de "incr" [ Dval.Str "ctr" ];
      spawn_invoke Location.jp "incr" [ Dval.Str "ctr" ];
      spawn_invoke Location.va "put" [ Dval.Str "w"; Dval.Str "2" ];
      Engine.sleep 5000.0;
      Alcotest.(check int) "all four done" 4 (List.length !outs);
      List.iter (fun o -> ignore (ok_value o)) !outs;
      (match Kv.peek (Framework.primary fw) "ctr" with
      | Some { value; _ } -> check_dval "increments serialized" (Dval.int 3) value
      | None -> Alcotest.fail "ctr missing");
      Alcotest.(check bool) "history is linearizable" true
        (Lincheck.check ~init:data (Framework.history fw));
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check bool) "conflicting incr waited" true
        (st.admission_waits >= 1);
      Alcotest.(check bool) "disjoint writes did not all wait" true
        (st.admission_waits < 4);
      Alcotest.(check int) "admission queue drained" 0
        (Server.locks_held (Framework.server fw)))

(* The followup Nagle window: two speculative writes completing within
   one window leave the site as a single coalesced followup message, and
   the buffered writes still reach the primary. *)
let test_followup_window_coalesces () =
  let config = { Framework.default_config with fu_window = 5.0 } in
  with_radical ~config (fun _ fw ->
      let pending = ref 2 in
      Engine.spawn (fun () ->
          let _ =
            Framework.invoke fw ~from:Location.ca "put"
              [ Dval.Str "x"; Dval.Str "a" ]
          in
          decr pending);
      Engine.spawn (fun () ->
          let _ =
            Framework.invoke fw ~from:Location.ca "put"
              [ Dval.Str "y"; Dval.Str "b" ]
          in
          decr pending);
      Engine.sleep 2000.0;
      Alcotest.(check int) "both done" 0 !pending;
      let st = Runtime.stats (Framework.runtime fw Location.ca) in
      Alcotest.(check int) "one coalesced followup message" 1 st.fu_batches;
      (match Kv.peek (Framework.primary fw) "x" with
      | Some { value; _ } -> check_dval "x landed" (Dval.Str "a") value
      | None -> Alcotest.fail "x missing");
      match Kv.peek (Framework.primary fw) "y" with
      | Some { value; _ } -> check_dval "y landed" (Dval.Str "b") value
      | None -> Alcotest.fail "y missing")

(* Piggybacking: with a window far wider than the inter-request gap, a
   buffered followup rides the next outgoing LVI request instead of
   waiting for the timer — the primary sees the write well before the
   window expires, carried for free. *)
let test_followup_piggyback () =
  let config =
    { Framework.default_config with fu_window = 5000.0; fu_piggyback = true }
  in
  with_radical ~config (fun _ fw ->
      let t0 = Engine.now () in
      let o =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "rode" ]
      in
      check_path "speculative put" Runtime.Speculative o;
      (* The followup is buffered; this next request carries it. *)
      let _ = Framework.invoke fw ~from:Location.ca "incr" [ Dval.Str "ctr" ] in
      Alcotest.(check bool) "well before the window timer" true
        (Engine.now () -. t0 < 1000.0);
      let st = Runtime.stats (Framework.runtime fw Location.ca) in
      Alcotest.(check int) "followup piggybacked" 1 st.fu_piggybacked;
      match Kv.peek (Framework.primary fw) "x" with
      | Some { value; _ } ->
          check_dval "carried write applied first" (Dval.Str "rode") value
      | None -> Alcotest.fail "x missing")

let test_prediction_failure_falls_back () =
  let broken =
    {
      fn_name = "broken-key";
      params = [];
      body = Read (Nth (List_lit [], Int 0L));
    }
  in
  with_radical ~funcs:(broken :: funcs) (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.ca "broken-key" [] in
      check_path "fallback on f^rw fault" Runtime.Fallback o;
      match o.value with
      | Error _ -> () (* the function itself faults near storage too *)
      | Ok v -> Alcotest.fail ("expected error, got " ^ Dval.to_string v))

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "radical"
    [
      ( "registration",
        [
          Alcotest.test_case "rejects nondeterminism" `Quick
            test_registration_rejects_nondeterminism;
          Alcotest.test_case "unanalyzable falls back" `Quick
            test_unanalyzable_registers_with_fallback;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "speculative read" `Quick test_speculative_read;
          Alcotest.test_case "read-only fast path taken" `Quick
            test_ro_fast_path_taken;
          Alcotest.test_case "read-only fast path ablation" `Quick
            test_ro_fast_disabled_ablation;
          Alcotest.test_case "fast path refuses stale cache" `Quick
            test_ro_fast_stale_cache_falls_through;
          Alcotest.test_case "speculative write + followup" `Quick
            test_speculative_write_and_followup;
          Alcotest.test_case "cross-site read-after-write" `Quick
            test_cross_site_read_after_write;
          Alcotest.test_case "cache miss suppresses speculation" `Quick
            test_cache_miss_suppresses_speculation;
          Alcotest.test_case "cold cache bootstrap" `Quick
            test_cold_cache_bootstrap;
          Alcotest.test_case "cache wipe recovers" `Quick test_cache_wipe_recovers;
          Alcotest.test_case "unanalyzable fallback" `Quick
            test_fallback_for_unanalyzable;
          Alcotest.test_case "prediction failure falls back" `Quick
            test_prediction_failure_falls_back;
          Alcotest.test_case "expensive f^rw runs near storage" `Quick
            test_expensive_runs_near_storage;
          Alcotest.test_case "unknown function raises" `Quick
            test_unknown_function_raises;
          Alcotest.test_case "pure compute function" `Quick
            test_pure_compute_function;
          Alcotest.test_case "wide write set" `Quick test_wide_write_set;
        ] );
      ( "failures",
        [
          Alcotest.test_case "dropped followup re-executes" `Quick
            test_dropped_followup_triggers_reexecution;
          Alcotest.test_case "late followup discarded" `Quick
            test_late_followup_discarded;
          Alcotest.test_case "concurrent increments serialize" `Quick
            test_write_lock_blocks_until_followup;
        ]
        @ qsuite [ prop_linearizable_history ] );
      ( "replication",
        [
          Alcotest.test_case "raft-backed server" `Quick test_replicated_server;
          Alcotest.test_case "unlock persistence deduped" `Quick
            test_replicated_unlock_dedupe;
        ] );
      ( "batching",
        [
          Alcotest.test_case "full stack replicated" `Quick
            test_batching_full_stack;
          Alcotest.test_case "admission gates conflicts" `Quick
            test_admission_gates_conflicts;
          Alcotest.test_case "followup window coalesces" `Quick
            test_followup_window_coalesces;
          Alcotest.test_case "followup piggyback" `Quick
            test_followup_piggyback;
        ] );
    ]
