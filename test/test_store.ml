(* Tests for the versioned KV store, lock table, write intents and
   idempotency keys. *)

open Sim

let run_sim ?(seed = 1) f =
  let e = Engine.create ~seed () in
  Engine.run e f

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Kv                                                                  *)

let v s = Dval.Str s

let test_kv_get_absent () =
  run_sim (fun () ->
      let kv = Store.Kv.create () in
      Alcotest.(check bool) "absent" true (Store.Kv.get kv "x" = None);
      Alcotest.(check int) "version 0" 0 (Store.Kv.version_of kv "x"))

let test_kv_versions_increment () =
  run_sim (fun () ->
      let kv = Store.Kv.create () in
      Alcotest.(check int) "v1" 1 (Store.Kv.put kv "x" (v "a"));
      Alcotest.(check int) "v2" 2 (Store.Kv.put kv "x" (v "b"));
      Alcotest.(check int) "v3" 3 (Store.Kv.put kv "x" (v "c"));
      match Store.Kv.get kv "x" with
      | Some { value; version } ->
          Alcotest.(check bool) "latest value" true (Dval.equal value (v "c"));
          Alcotest.(check int) "latest version" 3 version
      | None -> Alcotest.fail "expected value")

let test_kv_access_latency () =
  run_sim (fun () ->
      let kv = Store.Kv.create ~access_latency:6.0 () in
      let t0 = Engine.now () in
      ignore (Store.Kv.get kv "x");
      check_float "get pays latency" 6.0 (Engine.now () -. t0);
      let t1 = Engine.now () in
      ignore (Store.Kv.get_many kv [ "a"; "b"; "c" ]);
      check_float "batch pays once" 6.0 (Engine.now () -. t1))

let test_kv_put_if_version () =
  run_sim (fun () ->
      let kv = Store.Kv.create () in
      Alcotest.(check bool) "cond create ok" true
        (Store.Kv.put_if_version kv "x" (v "a") ~expected:0);
      Alcotest.(check bool) "stale expected fails" false
        (Store.Kv.put_if_version kv "x" (v "b") ~expected:0);
      Alcotest.(check bool) "correct expected ok" true
        (Store.Kv.put_if_version kv "x" (v "b") ~expected:1);
      Alcotest.(check int) "version advanced" 2 (Store.Kv.version_of kv "x"))

let test_kv_load_and_counters () =
  run_sim (fun () ->
      let kv = Store.Kv.create () in
      let t0 = Engine.now () in
      Store.Kv.load kv [ ("a", v "1"); ("b", v "2") ];
      check_float "load free" t0 (Engine.now ());
      Alcotest.(check int) "size" 2 (Store.Kv.size kv);
      ignore (Store.Kv.get kv "a");
      ignore (Store.Kv.get_many kv [ "a"; "b" ]);
      ignore (Store.Kv.put kv "c" (v "3"));
      Alcotest.(check int) "reads" 3 (Store.Kv.reads kv);
      Alcotest.(check int) "writes" 1 (Store.Kv.writes kv))

let test_kv_versions_of () =
  run_sim (fun () ->
      let kv = Store.Kv.create () in
      Store.Kv.load kv [ ("a", v "1") ];
      Alcotest.(check (list (pair string int))) "batch versions"
        [ ("a", 1); ("zz", 0) ]
        (Store.Kv.versions_of kv [ "a"; "zz" ]))

(* Version monotonicity: under any interleaving of put / put_if_version /
   load, each key's observable version never decreases, and every
   successful write strictly increases it. *)
let prop_kv_versions_monotonic =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun k v -> `Put (k, v)) (int_range 0 4) small_nat;
          map3
            (fun k v e -> `Put_if (k, v, e))
            (int_range 0 4) small_nat (int_range 0 6);
          map2 (fun k v -> `Load (k, v)) (int_range 0 4) small_nat;
        ])
  in
  QCheck.Test.make ~name:"kv versions are monotonic" ~count:100
    QCheck.(make Gen.(list_size (1 -- 40) op_gen))
    (fun ops ->
      let e = Engine.create ~seed:7 () in
      let ok = ref true in
      Engine.run e (fun () ->
          let kv = Store.Kv.create ~access_latency:0.0 () in
          let key i = Printf.sprintf "k%d" i in
          let last = Hashtbl.create 8 in
          let seen k = try Hashtbl.find last k with Not_found -> 0 in
          let observe k v' ~wrote =
            if wrote then ok := !ok && v' > seen k
            else ok := !ok && v' >= seen k;
            Hashtbl.replace last k (max v' (seen k))
          in
          List.iter
            (fun op ->
              match op with
              | `Put (k, v) ->
                  let k = key k in
                  observe k (Store.Kv.put kv k (Dval.int v)) ~wrote:true
              | `Put_if (k, v, expected) ->
                  let k = key k in
                  let wrote =
                    Store.Kv.put_if_version kv k (Dval.int v) ~expected
                  in
                  observe k (Store.Kv.version_of kv k) ~wrote
              | `Load (k, v) ->
                  let k = key k in
                  Store.Kv.load kv [ (k, Dval.int v) ];
                  observe k (Store.Kv.version_of kv k) ~wrote:true)
            ops;
          (* Final cross-check: versions_of agrees with the tracked maxima. *)
          Hashtbl.iter
            (fun k v ->
              ok := !ok && Store.Kv.version_of kv k = v;
              ok :=
                !ok
                && match Store.Kv.peek kv k with
                   | Some { version; _ } -> version = v
                   | None -> v = 0)
            last);
      !ok)

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)

let test_locks_read_shared () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Store.Locks.acquire lt ~owner:"a" [ ("k", Store.Locks.Read) ];
      Store.Locks.acquire lt ~owner:"b" [ ("k", Store.Locks.Read) ];
      (match Store.Locks.holders lt "k" with
      | Some (Store.Locks.Read, owners) ->
          Alcotest.(check (list string)) "both readers" [ "a"; "b" ] owners
      | _ -> Alcotest.fail "expected shared read");
      Store.Locks.release lt ~owner:"a";
      Store.Locks.release lt ~owner:"b";
      Alcotest.(check bool) "free" true (Store.Locks.holders lt "k" = None))

let test_locks_write_exclusive () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      let order = ref [] in
      Store.Locks.acquire lt ~owner:"w1" [ ("k", Store.Locks.Write) ];
      Engine.spawn (fun () ->
          Store.Locks.acquire lt ~owner:"w2" [ ("k", Store.Locks.Write) ];
          order := "w2" :: !order);
      Engine.sleep 1.0;
      Alcotest.(check (list string)) "w2 still waiting" [] !order;
      Alcotest.(check int) "one waiter" 1 (Store.Locks.waiting lt "k");
      Store.Locks.release lt ~owner:"w1";
      Engine.sleep 1.0;
      Alcotest.(check (list string)) "w2 granted" [ "w2" ] !order)

let test_locks_fifo_no_overtake () =
  (* Reader R2 arriving after writer W must queue behind W even though the
     lock is currently held only by reader R1. *)
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      let order = ref [] in
      Store.Locks.acquire lt ~owner:"r1" [ ("k", Store.Locks.Read) ];
      Engine.spawn (fun () ->
          Store.Locks.acquire lt ~owner:"w" [ ("k", Store.Locks.Write) ];
          order := "w" :: !order);
      Engine.sleep 1.0;
      Engine.spawn (fun () ->
          Store.Locks.acquire lt ~owner:"r2" [ ("k", Store.Locks.Read) ];
          order := "r2" :: !order);
      Engine.sleep 1.0;
      Alcotest.(check (list string)) "both blocked" [] !order;
      Store.Locks.release lt ~owner:"r1";
      Engine.sleep 1.0;
      Alcotest.(check (list string)) "writer first" [ "w" ] !order;
      Store.Locks.release lt ~owner:"w";
      Engine.sleep 1.0;
      Alcotest.(check (list string)) "then reader" [ "w"; "r2" ]
        (List.rev !order))

let test_locks_batch_sorted () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Store.Locks.acquire lt ~owner:"o"
        [ ("z", Store.Locks.Write); ("a", Store.Locks.Read) ];
      Alcotest.(check (list (pair string bool))) "acquired in sorted order"
        [ ("a", false); ("z", true) ]
        (List.map
           (fun (k, m) -> (k, m = Store.Locks.Write))
           (Store.Locks.held_by lt ~owner:"o")))

(* Regression for the O(1) holder bookkeeping (grant/record_held build
   their lists newest-first and reverse on read-out): observable order
   must stay arrival order for readers and sorted-acquisition order for
   a batch, including after releases from the middle. *)
let test_locks_holder_order_many () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      let owners = List.init 6 (fun i -> Printf.sprintf "r%d" i) in
      List.iter
        (fun o -> Store.Locks.acquire lt ~owner:o [ ("k", Store.Locks.Read) ])
        owners;
      (match Store.Locks.holders lt "k" with
      | Some (Store.Locks.Read, got) ->
          Alcotest.(check (list string)) "arrival order preserved" owners got
      | _ -> Alcotest.fail "expected shared read");
      Store.Locks.release lt ~owner:"r2";
      (match Store.Locks.holders lt "k" with
      | Some (Store.Locks.Read, got) ->
          Alcotest.(check (list string)) "order kept after mid release"
            [ "r0"; "r1"; "r3"; "r4"; "r5" ] got
      | _ -> Alcotest.fail "expected shared read");
      List.iter
        (fun o -> Store.Locks.release lt ~owner:o)
        [ "r0"; "r1"; "r3"; "r4"; "r5" ];
      Alcotest.(check bool) "free" true (Store.Locks.holders lt "k" = None);
      let keys =
        List.init 8 (fun i -> (Printf.sprintf "b%d" (7 - i), Store.Locks.Read))
      in
      Store.Locks.acquire lt ~owner:"batch" keys;
      Alcotest.(check (list string)) "held_by in sorted order"
        (List.init 8 (fun i -> Printf.sprintf "b%d" i))
        (List.map fst (Store.Locks.held_by lt ~owner:"batch")))

let test_locks_duplicate_key_raises () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Alcotest.check_raises "duplicate"
        (Invalid_argument "Locks.acquire: duplicate key k") (fun () ->
          Store.Locks.acquire lt ~owner:"o"
            [ ("k", Store.Locks.Read); ("k", Store.Locks.Write) ]))

let test_locks_double_acquire_raises () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Store.Locks.acquire lt ~owner:"o" [ ("k", Store.Locks.Read) ];
      Alcotest.check_raises "double acquire"
        (Invalid_argument "Locks.acquire: o already holds locks") (fun () ->
          Store.Locks.acquire lt ~owner:"o" [ ("j", Store.Locks.Read) ]))

(* Regression for [release_one]'s Read branch: a release must undo
   exactly one grant. Releasing one of several readers leaves the others
   holding, a second release by the same owner is a no-op (its held
   record is gone), and a writer queued behind the readers wakes only
   once the *last* reader leaves. *)
let test_locks_release_one_reader_keeps_others () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Store.Locks.acquire lt ~owner:"a" [ ("k", Store.Locks.Read) ];
      Store.Locks.acquire lt ~owner:"b" [ ("k", Store.Locks.Read) ];
      let writer_in = ref false in
      Engine.spawn (fun () ->
          Store.Locks.acquire lt ~owner:"w" [ ("k", Store.Locks.Write) ];
          writer_in := true);
      Engine.sleep 1.0;
      Store.Locks.release lt ~owner:"a";
      (match Store.Locks.holders lt "k" with
      | Some (Store.Locks.Read, got) ->
          Alcotest.(check (list string)) "b still holds" [ "b" ] got
      | _ -> Alcotest.fail "expected b to keep the read lock");
      (* Double release by the same owner must not disturb b's grant. *)
      Store.Locks.release lt ~owner:"a";
      (match Store.Locks.holders lt "k" with
      | Some (Store.Locks.Read, got) ->
          Alcotest.(check (list string)) "unaffected by re-release" [ "b" ] got
      | _ -> Alcotest.fail "expected b to keep the read lock");
      Engine.sleep 1.0;
      Alcotest.(check bool) "writer still queued" false !writer_in;
      Store.Locks.release lt ~owner:"b";
      Engine.sleep 1.0;
      Alcotest.(check bool) "writer admitted after last reader" true !writer_in;
      Store.Locks.release lt ~owner:"w";
      Alcotest.(check bool) "free" true (Store.Locks.holders lt "k" = None))

let test_locks_contention_counter () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Store.Locks.acquire lt ~owner:"a" [ ("k", Store.Locks.Write) ];
      Engine.spawn (fun () ->
          Store.Locks.acquire lt ~owner:"b" [ ("k", Store.Locks.Write) ]);
      Engine.sleep 1.0;
      Store.Locks.release lt ~owner:"a";
      Engine.sleep 1.0;
      Alcotest.(check int) "grants" 2 (Store.Locks.acquisitions lt);
      Alcotest.(check int) "contended" 1 (Store.Locks.contended_acquisitions lt))

let test_locks_try_acquire_free () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Alcotest.(check bool) "grants when free" true
        (Store.Locks.try_acquire lt ~owner:"o"
           [ ("a", Store.Locks.Read); ("b", Store.Locks.Write) ]);
      Alcotest.(check (list (pair string bool))) "holds both"
        [ ("a", false); ("b", true) ]
        (List.map
           (fun (k, m) -> (k, m = Store.Locks.Write))
           (Store.Locks.held_by lt ~owner:"o"));
      Store.Locks.release lt ~owner:"o";
      Alcotest.(check bool) "free again" true (Store.Locks.holders lt "b" = None))

let test_locks_try_acquire_shared_read () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Store.Locks.acquire lt ~owner:"r1" [ ("k", Store.Locks.Read) ];
      Alcotest.(check bool) "read joins read" true
        (Store.Locks.try_acquire lt ~owner:"r2" [ ("k", Store.Locks.Read) ]);
      match Store.Locks.holders lt "k" with
      | Some (Store.Locks.Read, owners) ->
          Alcotest.(check (list string)) "both hold" [ "r1"; "r2" ] owners
      | _ -> Alcotest.fail "expected shared read")

(* The all-or-nothing contract: a conflict on ANY key must leave NO lock
   granted and NO queue entry behind — a partial grant or a parked waiter
   would create the wait-for edges the cross-shard parallel prepare round
   must never create. *)
let test_locks_try_acquire_conflict_leaves_nothing () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Store.Locks.acquire lt ~owner:"w" [ ("b", Store.Locks.Write) ];
      Alcotest.(check bool) "refused" false
        (Store.Locks.try_acquire lt ~owner:"o"
           [ ("a", Store.Locks.Read); ("b", Store.Locks.Read) ]);
      Alcotest.(check (list (pair string bool))) "o holds nothing" []
        (List.map
           (fun (k, m) -> (k, m = Store.Locks.Write))
           (Store.Locks.held_by lt ~owner:"o"));
      Alcotest.(check bool) "a untouched" true (Store.Locks.holders lt "a" = None);
      Alcotest.(check int) "no waiter parked on a" 0 (Store.Locks.waiting lt "a");
      Alcotest.(check int) "no waiter parked on b" 0 (Store.Locks.waiting lt "b");
      (* After the refusal the owner must still be able to block-acquire. *)
      Store.Locks.release lt ~owner:"w";
      Store.Locks.acquire lt ~owner:"o"
        [ ("a", Store.Locks.Read); ("b", Store.Locks.Read) ];
      Alcotest.(check int) "o then acquires both" 2
        (List.length (Store.Locks.held_by lt ~owner:"o")))

(* No queue-jumping: even if the current holder set is compatible (reader
   joining readers), a non-empty FIFO wait queue makes try_acquire refuse
   rather than overtake the parked writer. *)
let test_locks_try_acquire_no_overtake () =
  run_sim (fun () ->
      let lt = Store.Locks.create () in
      Store.Locks.acquire lt ~owner:"r1" [ ("k", Store.Locks.Read) ];
      Engine.spawn (fun () ->
          Store.Locks.acquire lt ~owner:"w" [ ("k", Store.Locks.Write) ]);
      Engine.sleep 1.0;
      Alcotest.(check int) "writer queued" 1 (Store.Locks.waiting lt "k");
      Alcotest.(check bool) "reader refused past queued writer" false
        (Store.Locks.try_acquire lt ~owner:"r2" [ ("k", Store.Locks.Read) ]);
      Alcotest.(check int) "queue undisturbed" 1 (Store.Locks.waiting lt "k");
      Store.Locks.release lt ~owner:"r1";
      Engine.sleep 1.0;
      Store.Locks.release lt ~owner:"w")

(* Deadlock freedom: many fibers acquiring random overlapping lock sets in
   sorted order all complete. *)
let prop_locks_no_deadlock =
  QCheck.Test.make ~name:"sorted acquisition is deadlock-free" ~count:30
    QCheck.(pair small_int (list_of_size Gen.(1 -- 8) (int_range 0 5)))
    (fun (seed, _shape) ->
      let e = Engine.create ~seed () in
      let completed = ref 0 in
      let n_fibers = 12 in
      Engine.run e (fun () ->
          let lt = Store.Locks.create () in
          let rng = Engine.rng () in
          for i = 1 to n_fibers do
            Engine.spawn (fun () ->
                let n_keys = 1 + Rng.int rng 4 in
                let keys =
                  List.sort_uniq String.compare
                    (List.init n_keys (fun _ ->
                         Printf.sprintf "k%d" (Rng.int rng 6)))
                in
                let locks =
                  List.map
                    (fun k ->
                      ( k,
                        if Rng.bool rng then Store.Locks.Write
                        else Store.Locks.Read ))
                    keys
                in
                Store.Locks.acquire lt ~owner:(Printf.sprintf "f%d" i) locks;
                Engine.sleep (Rng.float rng 5.0);
                Store.Locks.release lt ~owner:(Printf.sprintf "f%d" i);
                incr completed)
          done);
      !completed = n_fibers && Engine.live_fibers e = 0)

(* ------------------------------------------------------------------ *)
(* Intents                                                             *)

let test_intents_lifecycle () =
  run_sim (fun () ->
      let it = Store.Intents.create () in
      Alcotest.(check bool) "created" true (Store.Intents.put it ~exec_id:"e1");
      Alcotest.(check bool) "pending" true
        (Store.Intents.status it ~exec_id:"e1" = Some Store.Intents.Pending);
      Alcotest.(check int) "pending count" 1 (Store.Intents.pending_count it);
      Alcotest.(check bool) "first completion wins" true
        (Store.Intents.try_complete it ~exec_id:"e1");
      Alcotest.(check bool) "second completion loses" false
        (Store.Intents.try_complete it ~exec_id:"e1");
      Store.Intents.remove it ~exec_id:"e1";
      Alcotest.(check bool) "removed" true
        (Store.Intents.status it ~exec_id:"e1" = None))

(* [put] is a conditional put-if-absent: a duplicated LVI delivery must
   find the first delivery's intent rather than crash the server, in
   either status. *)
let test_intents_duplicate_dedupes () =
  run_sim (fun () ->
      let it = Store.Intents.create () in
      Alcotest.(check bool) "created" true (Store.Intents.put it ~exec_id:"e1");
      Alcotest.(check bool) "duplicate while pending" false
        (Store.Intents.put it ~exec_id:"e1");
      Alcotest.(check bool) "still pending" true
        (Store.Intents.peek it ~exec_id:"e1" = Some Store.Intents.Pending);
      Alcotest.(check int) "one intent" 1 (Store.Intents.pending_count it);
      ignore (Store.Intents.try_complete it ~exec_id:"e1");
      Alcotest.(check bool) "duplicate after completion" false
        (Store.Intents.put it ~exec_id:"e1");
      Alcotest.(check bool) "completion not clobbered" true
        (Store.Intents.peek it ~exec_id:"e1" = Some Store.Intents.Completed))

let test_intents_unknown_complete () =
  run_sim (fun () ->
      let it = Store.Intents.create () in
      Alcotest.(check bool) "unknown id" false
        (Store.Intents.try_complete it ~exec_id:"nope"))

(* ------------------------------------------------------------------ *)
(* lock_list / merged_keys — the shared lock-shape helper              *)

let modes =
  Alcotest.(list (pair string bool))

let flat ll = List.map (fun (k, m) -> (k, m = Store.Locks.Write)) ll

let test_lock_list_writes_first () =
  (* The contractual shape fed to both the local lock table and the
     replicated lock log: every write key first (Write mode, original
     order), then the reads not also written (Read mode, original
     order). A key in both sets appears once, as a write. *)
  Alcotest.check modes "writes lead, written read collapsed"
    [ ("c", true); ("d", true); ("a", false); ("b", false) ]
    (flat (Store.Locks.lock_list ~reads:[ "a"; "b"; "c" ] ~writes:[ "c"; "d" ]))

let test_lock_list_degenerate () =
  Alcotest.check modes "empty" []
    (flat (Store.Locks.lock_list ~reads:[] ~writes:[]));
  Alcotest.check modes "reads only"
    [ ("b", false); ("a", false) ]
    (flat (Store.Locks.lock_list ~reads:[ "b"; "a" ] ~writes:[]));
  Alcotest.check modes "writes only"
    [ ("z", true); ("y", true) ]
    (flat (Store.Locks.lock_list ~reads:[] ~writes:[ "z"; "y" ]));
  Alcotest.check modes "all reads written"
    [ ("a", true); ("b", true) ]
    (flat (Store.Locks.lock_list ~reads:[ "b"; "a" ] ~writes:[ "a"; "b" ]))

let test_merged_keys_matches_lock_list () =
  let reads = [ "a"; "b"; "c" ] and writes = [ "c"; "d" ] in
  Alcotest.(check (list string))
    "merged_keys = keys of lock_list"
    (List.map fst (Store.Locks.lock_list ~reads ~writes))
    (Store.Locks.merged_keys ~reads ~writes)

(* ------------------------------------------------------------------ *)
(* Idempotency                                                         *)

let test_idempotency () =
  run_sim (fun () ->
      let t = Store.Idempotency.create () in
      let t0 = Engine.now () in
      Alcotest.(check bool) "first claim" true
        (Store.Idempotency.register t ~exec_id:"e1");
      check_float "3 ms write" 3.0 (Engine.now () -. t0);
      Alcotest.(check bool) "second claim rejected" false
        (Store.Idempotency.register t ~exec_id:"e1");
      Alcotest.(check bool) "seen" true (Store.Idempotency.seen t ~exec_id:"e1");
      Alcotest.(check int) "count" 1 (Store.Idempotency.count t))

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "store"
    [
      ( "kv",
        [
          Alcotest.test_case "get absent" `Quick test_kv_get_absent;
          Alcotest.test_case "versions increment" `Quick
            test_kv_versions_increment;
          Alcotest.test_case "access latency" `Quick test_kv_access_latency;
          Alcotest.test_case "put_if_version" `Quick test_kv_put_if_version;
          Alcotest.test_case "load and counters" `Quick test_kv_load_and_counters;
          Alcotest.test_case "versions_of" `Quick test_kv_versions_of;
        ]
        @ qsuite [ prop_kv_versions_monotonic ] );
      ( "locks",
        [
          Alcotest.test_case "read shared" `Quick test_locks_read_shared;
          Alcotest.test_case "write exclusive" `Quick test_locks_write_exclusive;
          Alcotest.test_case "FIFO no overtake" `Quick test_locks_fifo_no_overtake;
          Alcotest.test_case "batch sorted" `Quick test_locks_batch_sorted;
          Alcotest.test_case "holder order many" `Quick
            test_locks_holder_order_many;
          Alcotest.test_case "duplicate key raises" `Quick
            test_locks_duplicate_key_raises;
          Alcotest.test_case "double acquire raises" `Quick
            test_locks_double_acquire_raises;
          Alcotest.test_case "release one reader keeps others" `Quick
            test_locks_release_one_reader_keeps_others;
          Alcotest.test_case "contention counter" `Quick
            test_locks_contention_counter;
          Alcotest.test_case "try_acquire free" `Quick
            test_locks_try_acquire_free;
          Alcotest.test_case "try_acquire shared read" `Quick
            test_locks_try_acquire_shared_read;
          Alcotest.test_case "try_acquire conflict leaves nothing" `Quick
            test_locks_try_acquire_conflict_leaves_nothing;
          Alcotest.test_case "try_acquire no overtake" `Quick
            test_locks_try_acquire_no_overtake;
        ]
        @ qsuite [ prop_locks_no_deadlock ] );
      ( "lock_list",
        [
          Alcotest.test_case "writes first" `Quick test_lock_list_writes_first;
          Alcotest.test_case "degenerate shapes" `Quick
            test_lock_list_degenerate;
          Alcotest.test_case "merged_keys agrees" `Quick
            test_merged_keys_matches_lock_list;
        ] );
      ( "intents",
        [
          Alcotest.test_case "lifecycle" `Quick test_intents_lifecycle;
          Alcotest.test_case "duplicate dedupes" `Quick
            test_intents_duplicate_dedupes;
          Alcotest.test_case "unknown complete" `Quick
            test_intents_unknown_complete;
        ] );
      ("idempotency", [ Alcotest.test_case "at-most-once" `Quick test_idempotency ]);
    ]
