(* Tests for the deterministic VM: interpreter semantics, traps, the
   determinism validator, and compiled-vs-expected equivalence on random
   arithmetic programs. *)

open Wasm

let all_imports = Host.storage_imports @ Host.pure_imports

let mk_module ?(imports = all_imports) ?(n_params = 0) ?(n_locals = 0) body =
  Wmodule.create
    ~funcs:[ { Wmodule.fn_name = "main"; n_params; n_locals; body } ]
    ~imports

let run_main ?host ?fuel ?(args = []) m =
  let host = Option.value ~default:(Host.pure ()) host in
  Interp.run m ~host ?fuel ~entry:"main" args

let check_ok msg expected result =
  match result with
  | Ok v ->
      Alcotest.(check string) msg (Dval.to_string expected) (Dval.to_string v)
  | Error e -> Alcotest.fail (msg ^ ": unexpected error " ^ e)

let check_trap msg substring result =
  match result with
  | Ok v -> Alcotest.fail (msg ^ ": expected trap, got " ^ Dval.to_string v)
  | Error e ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        n = 0 || go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" msg e substring)
        true (contains e substring)

open Instr

(* ------------------------------------------------------------------ *)
(* Arithmetic and locals                                               *)

let test_arith () =
  let m = mk_module [ I64_const 3L; I64_const 4L; I64_binop Add; I64_const 2L; I64_binop Mul ] in
  check_ok "(3+4)*2" (Dval.Int 14L) (run_main m)

let test_comparisons () =
  let check op a b expect =
    let m = mk_module [ I64_const a; I64_const b; I64_binop op ] in
    check_ok "cmp" (Dval.Int expect) (run_main m)
  in
  check Lt_s 1L 2L 1L;
  check Lt_s 2L 1L 0L;
  check Ge_s 2L 2L 1L;
  check Eq 5L 5L 1L;
  check Ne 5L 5L 0L

let test_div_by_zero_traps () =
  let m = mk_module [ I64_const 1L; I64_const 0L; I64_binop Div_s ] in
  check_trap "div" "division by zero" (run_main m)

let test_locals () =
  let m =
    mk_module ~n_locals:2
      [
        I64_const 10L;
        Local_set 0;
        I64_const 32L;
        Local_tee 1;
        Local_get 0;
        I64_binop Add;
      ]
  in
  check_ok "locals" (Dval.Int 42L) (run_main m)

let test_params () =
  let m =
    mk_module ~n_params:2
      [
        Local_get 0;
        Call_host "dval.to_i64";
        Local_get 1;
        Call_host "dval.to_i64";
        I64_binop Sub;
      ]
  in
  check_ok "params" (Dval.Int 7L)
    (run_main ~args:[ Dval.Int 10L; Dval.Int 3L ] m)

(* ------------------------------------------------------------------ *)
(* Control flow                                                        *)

let test_if_else () =
  let branchy cond =
    mk_module [ I64_const cond; If ([ I64_const 1L ], [ I64_const 2L ]) ]
  in
  check_ok "then" (Dval.Int 1L) (run_main (branchy 5L));
  check_ok "else" (Dval.Int 2L) (run_main (branchy 0L))

let test_loop_sum () =
  (* sum = 0; i = 0; loop { i += 1; sum += i; br_if (i < 10) } *)
  let m =
    mk_module ~n_locals:2
      [
        Loop
          [
            Local_get 0;
            I64_const 1L;
            I64_binop Add;
            Local_set 0;
            Local_get 1;
            Local_get 0;
            I64_binop Add;
            Local_set 1;
            Local_get 0;
            I64_const 10L;
            I64_binop Lt_s;
            Br_if 0;
          ];
        Local_get 1;
      ]
  in
  check_ok "sum 1..10" (Dval.Int 55L) (run_main m)

let test_nested_br () =
  (* A br 1 from inside two blocks skips both; the trailing const runs. *)
  let m =
    mk_module
      [
        Block [ Block [ Br 1; Unreachable ]; Unreachable ];
        I64_const 9L;
      ]
  in
  check_ok "br 1 exits both blocks" (Dval.Int 9L) (run_main m)

let test_loop_exit_by_fallthrough () =
  (* A loop body that does not branch runs exactly once. *)
  let m = mk_module ~n_locals:1
      [ Loop [ Local_get 0; I64_const 1L; I64_binop Add; Local_set 0 ]; Local_get 0 ]
  in
  check_ok "single iteration" (Dval.Int 1L) (run_main m)

let test_return_early () =
  let m = mk_module [ I64_const 5L; Return; Unreachable ] in
  check_ok "return skips the rest" (Dval.Int 5L) (run_main m)

let test_unreachable_traps () =
  check_trap "unreachable" "unreachable" (run_main (mk_module [ Unreachable ]))

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)

let test_call_helper () =
  let double =
    { Wmodule.fn_name = "double"; n_params = 1; n_locals = 0;
      body = [ Local_get 0; I64_const 2L; I64_binop Mul ] }
  in
  let main =
    { Wmodule.fn_name = "main"; n_params = 0; n_locals = 0;
      body = [ I64_const 21L; Call 1 ] }
  in
  let m = Wmodule.create ~funcs:[ main; double ] ~imports:[] in
  check_ok "call helper" (Dval.Int 42L) (Interp.run m ~host:(Host.pure ()) ~entry:"main" [])

let test_recursion () =
  (* fact(n) = if n <= 1 then 1 else n * fact(n-1) *)
  let fact =
    { Wmodule.fn_name = "fact"; n_params = 1; n_locals = 0;
      body =
        [
          Local_get 0;
          I64_const 1L;
          I64_binop Le_s;
          If
            ( [ I64_const 1L ],
              [
                Local_get 0;
                Local_get 0;
                I64_const 1L;
                I64_binop Sub;
                Call 1;
                I64_binop Mul;
              ] );
        ] }
  in
  (* Entry arguments arrive as refs, so a wrapper unboxes before the
     i64-recursive helper takes over. *)
  let main =
    { Wmodule.fn_name = "main"; n_params = 1; n_locals = 0;
      body = [ Local_get 0; Call_host "dval.to_i64"; Call 1 ] }
  in
  let m = Wmodule.create ~funcs:[ main; fact ] ~imports:[ "dval.to_i64" ] in
  match Interp.run m ~host:(Host.pure ()) ~entry:"main" [ Dval.Int 10L ] with
  | Ok v -> Alcotest.(check string) "10!" "3628800" (Dval.to_string v)
  | Error e -> Alcotest.fail e

let test_arity_mismatch () =
  let m = mk_module ~n_params:2 [ I64_const 0L ] in
  check_trap "arity" "expects 2 arguments" (run_main ~args:[ Dval.Int 1L ] m)

let test_missing_entry () =
  let m = mk_module [ I64_const 0L ] in
  match Interp.run m ~host:(Host.pure ()) ~entry:"nope" [] with
  | Error e -> Alcotest.(check bool) "missing entry" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Host builtins                                                       *)

let test_string_builtins () =
  let m =
    mk_module
      [
        Ref_const (Dval.Str "user:");
        I64_const 42L;
        Call_host "str.of_i64";
        Call_host "str.concat";
      ]
  in
  check_ok "str concat" (Dval.Str "user:42") (run_main m)

let test_record_builtins () =
  let m =
    mk_module
      [
        Call_host "record.new";
        Ref_const (Dval.Str "name");
        Ref_const (Dval.Str "ada");
        Call_host "record.set";
        Ref_const (Dval.Str "name");
        Call_host "record.get";
      ]
  in
  check_ok "record roundtrip" (Dval.Str "ada") (run_main m)

let test_list_builtins () =
  let m =
    mk_module
      [
        Call_host "list.empty";
        Ref_const (Dval.Str "a");
        Call_host "list.append";
        Ref_const (Dval.Str "b");
        Call_host "list.append";
        Call_host "list.len";
      ]
  in
  check_ok "list len" (Dval.Int 2L) (run_main m)

let test_list_get_bounds () =
  let m =
    mk_module [ Call_host "list.empty"; I64_const 0L; Call_host "list.get" ]
  in
  check_trap "list.get" "out of bounds" (run_main m)

let test_storage_host () =
  let host, writes = Host.recording ~store:[ ("k", Dval.Str "v0") ] () in
  (* write k2 := read(k) ^ "!" *)
  let m =
    mk_module
      [
        Ref_const (Dval.Str "k2");
        Ref_const (Dval.Str "k");
        Call_host "storage.read";
        Ref_const (Dval.Str "!");
        Call_host "str.concat";
        Call_host "storage.write";
      ]
  in
  check_ok "write returns unit" Dval.Unit (run_main ~host m);
  Alcotest.(check (list (pair string string)))
    "write recorded"
    [ ("k2", "v0!") ]
    (List.map (fun (k, v) -> (k, Dval.to_str v)) (writes ()))

let test_type_confusion_traps () =
  let m = mk_module [ I64_const 1L; Call_host "str.of_i64"; I64_const 2L; I64_binop Add ] in
  check_trap "ref as i64" "expected an i64" (run_main m)

let test_stack_underflow_traps () =
  check_trap "underflow" "underflow" (run_main (mk_module [ Drop ]))

let test_fuel_exhaustion () =
  let m = mk_module [ Loop [ Br 0 ] ] in
  check_trap "fuel" "fuel exhausted" (run_main ~fuel:1000 m)

(* ------------------------------------------------------------------ *)
(* Validator                                                           *)

let test_validate_accepts_good () =
  let m = mk_module [ I64_const 1L; Call_host "dval.of_i64" ] in
  match Validate.check m with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Validate.pp_error e)

let test_validate_rejects_nondeterministic_import () =
  let m =
    mk_module ~imports:("wasi.random_get" :: all_imports) [ I64_const 1L ]
  in
  (match Validate.check m with
  | Error e ->
      Alcotest.(check string) "culprit" "(imports)" e.in_func
  | Ok () -> Alcotest.fail "expected rejection");
  Alcotest.(check bool) "deterministic is false" false (Validate.deterministic m)

let test_validate_rejects_undeclared_host_call () =
  let m = mk_module ~imports:[] [ Nop; Call_host "storage.read" ] in
  match Validate.check m with
  | Error e ->
      Alcotest.(check string) "in main" "main" e.in_func;
      Alcotest.(check (list int)) "path of the call" [ 1 ] e.path
  | Ok () -> Alcotest.fail "expected rejection"

let test_validate_rejects_bad_local () =
  let m = mk_module ~n_locals:1 [ Local_get 5 ] in
  match Validate.check m with
  | Error e -> Alcotest.(check (list int)) "path" [ 0 ] e.path
  | Ok () -> Alcotest.fail "expected rejection"

let test_validate_rejects_bad_branch_depth () =
  let m = mk_module [ Block [ Br 3 ] ] in
  match Validate.check m with
  | Error e ->
      (* The br sits inside the block: nested path, printable, and
         resolvable back to the offending instruction. *)
      Alcotest.(check (list int)) "nested path" [ 0; 0 ] e.path;
      Alcotest.(check string) "pp_path" "0.0" (Instr.path_to_string e.path);
      (match Instr.at_path [ Block [ Br 3 ] ] e.path with
      | Some (Br 3) -> ()
      | _ -> Alcotest.fail "at_path did not resolve to the br")
  | Ok () -> Alcotest.fail "expected rejection"

let test_validate_rejects_bad_call_index () =
  let m = mk_module [ Call 7 ] in
  match Validate.check m with
  | Error e -> Alcotest.(check (list int)) "path" [ 0 ] e.path
  | Ok () -> Alcotest.fail "expected rejection"

let test_validate_error_paths_in_if_arms () =
  (* Errors inside If arms carry the arm selector (0 = then, 1 = else). *)
  let m =
    mk_module
      [ I64_const 1L; If ([ Nop; I64_const 0L ], [ Nop; Nop; Br 9 ]) ]
  in
  match Validate.check m with
  | Error e ->
      Alcotest.(check (list int)) "else-arm path" [ 1; 1; 2 ] e.path;
      Alcotest.(check string) "pp_path" "1.1.2" (Instr.path_to_string e.path)
  | Ok () -> Alcotest.fail "expected rejection"

let test_interp_refuses_forbidden_at_runtime () =
  (* Even if validation is skipped, the interpreter traps. *)
  let m = mk_module ~imports:[ "wasi.random_get" ] [ Call_host "wasi.random_get" ] in
  check_trap "runtime refusal" "nondeterministic import" (run_main m)

(* ------------------------------------------------------------------ *)
(* Binary codec                                                        *)

let roundtrip m =
  match Codec.decode (Codec.encode m) with
  | Ok m' -> m'
  | Error e -> Alcotest.fail ("decode failed: " ^ e)

let test_codec_roundtrip_samples () =
  let samples =
    [
      mk_module [ I64_const 42L ];
      mk_module ~n_params:2 ~n_locals:3
        [
          Ref_const
            (Dval.Record
               [ ("k", Dval.List [ Dval.Bool true; Dval.Str "s"; Dval.Unit ]) ]);
          Block [ Loop [ Br_if 1 ]; If ([ Nop ], [ Unreachable ]) ];
          Call_host "storage.read";
          Local_tee 4;
          Return;
        ];
      mk_module [ I64_const Int64.min_int; I64_const Int64.max_int; I64_binop Xor ];
    ]
  in
  List.iter (fun m -> Alcotest.(check bool) "roundtrip" true (roundtrip m = m)) samples

let test_codec_roundtrips_all_app_modules () =
  List.iter
    (fun f ->
      let m = Fdsl.Compile.compile f in
      Alcotest.(check bool) (f.Fdsl.Ast.fn_name ^ " roundtrips") true
        (roundtrip m = m);
      Alcotest.(check bool) "blob nonempty" true (Codec.blob_size m > 8))
    Apps.Catalog.all_functions

let test_codec_rejects_garbage () =
  let reject msg data =
    match Codec.decode data with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (msg ^ ": expected decode failure")
  in
  reject "empty" "";
  reject "bad magic" "NOPE\x01\x00\x00";
  let good = Codec.encode (mk_module [ I64_const 1L ]) in
  reject "truncated" (String.sub good 0 (String.length good - 2));
  reject "trailing" (good ^ "x");
  (* Corrupt the opcode of the single instruction. *)
  let corrupt = Bytes.of_string good in
  Bytes.set corrupt (String.length good - 9) '\xee';
  reject "bad opcode" (Bytes.to_string corrupt)

let test_codec_decoded_module_runs () =
  let m =
    mk_module ~n_locals:2
      [
        Loop
          [
            Local_get 0; I64_const 1L; I64_binop Add; Local_set 0;
            Local_get 1; Local_get 0; I64_binop Add; Local_set 1;
            Local_get 0; I64_const 100L; I64_binop Lt_s; Br_if 0;
          ];
        Local_get 1;
      ]
  in
  check_ok "decoded blob executes identically" (Dval.Int 5050L)
    (run_main (roundtrip m))

(* ------------------------------------------------------------------ *)
(* Stack-discipline validation                                         *)

let expect_stack_ok m =
  match Validate.check_stack m with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Validate.pp_error e)

let expect_stack_bad ?path msg m =
  match Validate.check_stack m with
  | Error e -> (
      match path with
      | Some p -> Alcotest.(check (list int)) (msg ^ ": error path") p e.path
      | None -> ())
  | Ok () -> Alcotest.fail (msg ^ ": expected stack-validation failure")

let test_stack_accepts_wellformed () =
  expect_stack_ok (mk_module [ I64_const 3L; I64_const 4L; I64_binop Add ]);
  expect_stack_ok
    (mk_module ~n_locals:2
       [
         Loop
           [
             Local_get 0; I64_const 1L; I64_binop Add; Local_set 0;
             Local_get 0; I64_const 10L; I64_binop Lt_s; Br_if 0;
           ];
         Local_get 1;
       ]);
  expect_stack_ok
    (mk_module [ Block [ Block [ Br 1; Unreachable ]; Unreachable ]; I64_const 9L ]);
  expect_stack_ok
    (mk_module [ I64_const 1L; If ([ I64_const 2L ], [ I64_const 3L ]) ])

let test_stack_rejects_underflow () =
  expect_stack_bad ~path:[ 0 ] "drop on empty"
    (mk_module [ Drop; I64_const 1L ]);
  expect_stack_bad ~path:[ 1 ] "binop with one operand"
    (mk_module [ I64_const 1L; I64_binop Add ])

let test_stack_rejects_bad_frame_shapes () =
  expect_stack_bad ~path:[ 0 ] "non-neutral block"
    (mk_module [ Block [ I64_const 1L ]; I64_const 2L; I64_binop Add ]);
  expect_stack_bad ~path:[ 1 ] "if arm yields nothing"
    (mk_module [ I64_const 1L; If ([ Nop ], [ I64_const 2L ]) ]);
  expect_stack_bad ~path:[] "body ends with two values"
    (mk_module [ I64_const 1L; I64_const 2L ]);
  expect_stack_bad ~path:[] "body ends empty"
    (mk_module [ I64_const 1L; Drop ]);
  expect_stack_bad ~path:[ 0 ] "return without a value" (mk_module [ Return ]);
  expect_stack_bad ~path:[ 1; 0 ] "frame cannot cross block for underflow"
    (mk_module [ I64_const 1L; Block [ Drop ]; I64_const 2L ])

let test_stack_host_arities () =
  expect_stack_ok
    (mk_module
       [ Ref_const (Dval.Str "k"); Call_host "storage.read" ]);
  expect_stack_bad "record.set needs three"
    (mk_module [ Call_host "record.new"; Call_host "record.set" ])

(* ------------------------------------------------------------------ *)
(* Random-program equivalence and determinism                          *)

type arith = Const of int64 | Bin of Instr.binop * arith * arith

let arith_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then map (fun i -> Const (Int64.of_int i)) (int_range (-100) 100)
          else
            frequency
              [
                (1, map (fun i -> Const (Int64.of_int i)) (int_range (-100) 100));
                ( 3,
                  map3
                    (fun op a b -> Bin (op, a, b))
                    (oneofl [ Add; Sub; Mul; And; Or; Xor ])
                    (self (n / 2)) (self (n / 2)) );
              ])
        (min n 20))

let rec eval_arith = function
  | Const i -> i
  | Bin (op, a, b) ->
      let x = eval_arith a and y = eval_arith b in
      let open Int64 in
      (match op with
      | Add -> add x y
      | Sub -> sub x y
      | Mul -> mul x y
      | And -> logand x y
      | Or -> logor x y
      | Xor -> logxor x y
      | Div_s | Rem_s | Eq | Ne | Lt_s | Gt_s | Le_s | Ge_s -> assert false)

let rec compile_arith = function
  | Const i -> [ I64_const i ]
  | Bin (op, a, b) -> compile_arith a @ compile_arith b @ [ I64_binop op ]

let prop_compiled_programs_pass_full_validation =
  QCheck.Test.make ~name:"compiled programs pass structural+stack validation"
    ~count:300
    (QCheck.make arith_gen) (fun prog ->
      let m = mk_module (compile_arith prog) in
      Validate.check_all m = Ok ())

(* Deterministic re-execution (§3.4's foundation): running the same
   module against identical stores yields identical results, observed
   reads, and writes — checked through the full Execute harness in
   test_features; here at VM level with randomized programs. *)
let prop_codec_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrips compiled programs"
    ~count:300 (QCheck.make arith_gen) (fun prog ->
      let m = mk_module (compile_arith prog) in
      Codec.decode (Codec.encode m) = Ok m)

let prop_decode_never_raises =
  QCheck.Test.make ~name:"decoder is total on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun junk ->
      match Codec.decode junk with Ok _ | Error _ -> true)

let prop_decode_rejects_corruption =
  QCheck.Test.make ~name:"flipping a byte is detected or decodes a module"
    ~count:200
    (QCheck.pair (QCheck.make arith_gen) QCheck.small_int)
    (fun (prog, flip_at) ->
      let good = Codec.encode (mk_module (compile_arith prog)) in
      let i = 5 + (flip_at mod max 1 (String.length good - 5)) in
      let corrupt = Bytes.of_string good in
      Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0x55));
      match Codec.decode (Bytes.to_string corrupt) with
      | Ok _ | Error _ -> true (* must not raise *))

let prop_replay_identity =
  QCheck.Test.make ~name:"replay on an identical store is identical"
    ~count:100 (QCheck.make arith_gen) (fun prog ->
      let body =
        compile_arith prog
        @ [
            Call_host "dval.of_i64";
            Local_set 0;
            Ref_const (Dval.Str "a");
            Ref_const (Dval.Str "seed");
            Call_host "storage.read";
            Call_host "storage.write";
            Drop;
            Local_get 0;
          ]
      in
      let m = mk_module ~n_locals:1 body in
      let run () =
        let host, writes = Host.recording ~store:[ ("seed", Dval.Int 7L) ] () in
        (Interp.run m ~host ~entry:"main" [], writes ())
      in
      let r1 = run () and r2 = run () in
      r1 = r2)


let prop_vm_matches_reference =
  QCheck.Test.make ~name:"VM agrees with reference evaluator" ~count:300
    (QCheck.make arith_gen) (fun prog ->
      let m = mk_module (compile_arith prog) in
      match run_main m with
      | Ok (Dval.Int got) -> Int64.equal got (eval_arith prog)
      | _ -> false)

let prop_vm_deterministic =
  QCheck.Test.make ~name:"same module, same host state => same outcome"
    ~count:100 (QCheck.make arith_gen) (fun prog ->
      let body =
        compile_arith prog
        @ [
            Call_host "dval.of_i64";
            Local_set 0;
            Ref_const (Dval.Str "out");
            Local_get 0;
            Call_host "storage.write";
            Local_get 0;
          ]
      in
      let m = mk_module ~n_locals:1 body in
      let run () =
        let host, writes = Host.recording ~store:[ ("seed", Dval.Int 1L) ] () in
        (run_main ~host m, writes ())
      in
      run () = run ())

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "wasm"
    [
      ( "interp",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "div by zero traps" `Quick test_div_by_zero_traps;
          Alcotest.test_case "locals" `Quick test_locals;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "nested br" `Quick test_nested_br;
          Alcotest.test_case "loop fallthrough" `Quick
            test_loop_exit_by_fallthrough;
          Alcotest.test_case "early return" `Quick test_return_early;
          Alcotest.test_case "unreachable traps" `Quick test_unreachable_traps;
          Alcotest.test_case "call helper" `Quick test_call_helper;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "missing entry" `Quick test_missing_entry;
        ] );
      ( "host",
        [
          Alcotest.test_case "string builtins" `Quick test_string_builtins;
          Alcotest.test_case "record builtins" `Quick test_record_builtins;
          Alcotest.test_case "list builtins" `Quick test_list_builtins;
          Alcotest.test_case "list.get bounds" `Quick test_list_get_bounds;
          Alcotest.test_case "storage read/write" `Quick test_storage_host;
          Alcotest.test_case "type confusion traps" `Quick
            test_type_confusion_traps;
          Alcotest.test_case "stack underflow traps" `Quick
            test_stack_underflow_traps;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts good module" `Quick test_validate_accepts_good;
          Alcotest.test_case "rejects nondeterministic import" `Quick
            test_validate_rejects_nondeterministic_import;
          Alcotest.test_case "rejects undeclared host call" `Quick
            test_validate_rejects_undeclared_host_call;
          Alcotest.test_case "rejects bad local" `Quick test_validate_rejects_bad_local;
          Alcotest.test_case "rejects bad branch depth" `Quick
            test_validate_rejects_bad_branch_depth;
          Alcotest.test_case "rejects bad call index" `Quick
            test_validate_rejects_bad_call_index;
          Alcotest.test_case "error paths in if arms" `Quick
            test_validate_error_paths_in_if_arms;
          Alcotest.test_case "runtime refusal of forbidden import" `Quick
            test_interp_refuses_forbidden_at_runtime;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip samples" `Quick test_codec_roundtrip_samples;
          Alcotest.test_case "roundtrips all app modules" `Quick
            test_codec_roundtrips_all_app_modules;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "decoded module runs" `Quick
            test_codec_decoded_module_runs;
        ] );
      ( "stack-validation",
        [
          Alcotest.test_case "accepts well-formed" `Quick
            test_stack_accepts_wellformed;
          Alcotest.test_case "rejects underflow" `Quick
            test_stack_rejects_underflow;
          Alcotest.test_case "rejects bad frame shapes" `Quick
            test_stack_rejects_bad_frame_shapes;
          Alcotest.test_case "host arities" `Quick test_stack_host_arities;
        ] );
      ( "properties",
        qsuite
          [
            prop_vm_matches_reference;
            prop_vm_deterministic;
            prop_compiled_programs_pass_full_validation;
            prop_codec_roundtrip;
            prop_decode_never_raises;
            prop_decode_rejects_corruption;
            prop_replay_identity;
          ] );
    ]
