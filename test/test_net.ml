(* Tests for locations, the latency matrix, and the simulated transport. *)

open Sim
module Location = Net.Location
module Transport = Net.Transport

let run_sim ?(seed = 1) f =
  let e = Engine.create ~seed () in
  Engine.run e f

let check_float = Alcotest.(check (float 1e-6))

let mknet ?(jitter_sigma = 0.0) () =
  Transport.create ~jitter_sigma ~rng:(Rng.create 99) ()

(* ------------------------------------------------------------------ *)
(* Location                                                            *)

let test_rtt_symmetric () =
  let locs = Location.(user_locations @ [ oh; oregon ]) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_float
            (Printf.sprintf "rtt %s-%s symmetric" a b)
            (Location.rtt a b) (Location.rtt b a))
        locs)
    locs

let test_rtt_table2 () =
  (* Table 2 = network RTT + 6 ms storage service time. *)
  let expected = [ ("VA", 7.0); ("CA", 74.0); ("IE", 70.0); ("DE", 93.0); ("JP", 146.0) ] in
  List.iter
    (fun (l, ms) ->
      check_float ("table2 " ^ l) ms (Location.rtt l Location.va +. 6.0))
    expected

let test_rtt_unknown () =
  Alcotest.check_raises "unknown location"
    (Invalid_argument "Location.rtt: unknown location XX/VA") (fun () ->
      ignore (Location.rtt "XX" Location.va))

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)

let test_one_way_no_jitter () =
  let net = mknet () in
  check_float "half rtt" (Location.rtt Location.ca Location.va /. 2.0)
    (Transport.one_way net Location.ca Location.va)

let test_jitter_tail () =
  let net = mknet ~jitter_sigma:0.1 () in
  let samples =
    List.init 2000 (fun _ -> Transport.one_way net Location.jp Location.va)
  in
  let sorted = List.sort Float.compare samples in
  let nth p = List.nth sorted (int_of_float (p *. 2000.0)) in
  let median = nth 0.5 and p99 = nth 0.99 in
  let base = Location.rtt Location.jp Location.va /. 2.0 in
  Alcotest.(check bool) "median near base" true (Float.abs (median -. base) < 0.05 *. base);
  Alcotest.(check bool) "p99 above median" true (p99 > median *. 1.1)

let test_call_roundtrip_latency () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" (fun x -> x * 2) in
      let t0 = Engine.now () in
      let r = Transport.call net ~from:Location.ca svc 21 in
      Alcotest.(check int) "result" 42 r;
      check_float "latency = rtt" (Location.rtt Location.ca Location.va)
        (Engine.now () -. t0))

let test_call_includes_handler_time () =
  run_sim (fun () ->
      let net = mknet () in
      let svc =
        Transport.serve net ~loc:Location.va ~name:"slow" (fun () -> Engine.sleep 50.0)
      in
      let t0 = Engine.now () in
      Transport.call net ~from:Location.ca svc ();
      check_float "rtt + handler"
        (Location.rtt Location.ca Location.va +. 50.0)
        (Engine.now () -. t0))

let test_concurrent_handlers () =
  (* Two simultaneous calls to a 50 ms handler must overlap, not serialize. *)
  run_sim (fun () ->
      let net = mknet () in
      let svc =
        Transport.serve net ~loc:Location.va ~name:"slow" (fun () -> Engine.sleep 50.0)
      in
      let done1 = Ivar.create () and done2 = Ivar.create () in
      Engine.spawn (fun () ->
          Transport.call net ~from:Location.ca svc ();
          Ivar.fill done1 (Engine.now ()));
      Engine.spawn (fun () ->
          Transport.call net ~from:Location.ca svc ();
          Ivar.fill done2 (Engine.now ()));
      let t1 = Ivar.read done1 and t2 = Ivar.read done2 in
      check_float "both finish together" t1 t2;
      check_float "single rtt+handler" (68.0 +. 50.0) t1)

let test_call_timeout_success () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      let r = Transport.call_timeout net ~from:Location.ca ~timeout:1000.0 svc 7 in
      Alcotest.(check (option int)) "delivered" (Some 7) r)

let test_call_timeout_drop () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      Transport.set_fault net (fun ~src ~dst:_ ~label:_ -> if src = Location.ca then Transport.Drop else Transport.Deliver);
      let t0 = Engine.now () in
      let r = Transport.call_timeout net ~from:Location.ca ~timeout:200.0 svc 7 in
      Alcotest.(check (option int)) "timed out" None r;
      check_float "waited full timeout" 200.0 (Engine.now () -. t0);
      Alcotest.(check int) "one drop recorded" 1 (Transport.messages_dropped net))

let test_call_timeout_cancels_timer () =
  (* A reply must cancel the pending timer: advancing the clock past the
     timeout after a successful call records no spurious timeout. *)
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      let r = Transport.call_timeout net ~from:Location.ca ~timeout:1000.0 svc 7 in
      Alcotest.(check (option int)) "delivered" (Some 7) r;
      Engine.sleep 2000.0;
      Alcotest.(check int) "no timeout recorded" 0 (Transport.calls_timed_out net);
      Alcotest.(check int) "no late replies" 0 (Transport.late_replies net))

let test_call_timeout_stats () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      Transport.set_fault net (fun ~src ~dst:_ ~label:_ ->
          if src = Location.ca then Transport.Drop else Transport.Deliver);
      ignore (Transport.call_timeout net ~from:Location.ca ~timeout:200.0 svc 7);
      ignore (Transport.call_timeout net ~from:Location.ca ~timeout:200.0 svc 8);
      Alcotest.(check int) "two timeouts" 2 (Transport.calls_timed_out net))

let test_call_timeout_late_reply () =
  run_sim (fun () ->
      let net = mknet () in
      let tracer = Metrics.Tracer.create () in
      Transport.set_tracer net tracer;
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      (* 300 ms extra per leg pushes the reply far past the 200 ms
         timeout: the caller gets None, and when the reply eventually
         lands it is counted as late instead of re-filling the ivar. *)
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label:_ -> Transport.Delay 300.0);
      let r = Transport.call_timeout net ~from:Location.ca ~timeout:200.0 svc 7 in
      Alcotest.(check (option int)) "timed out" None r;
      Alcotest.(check int) "timeout counted" 1 (Transport.calls_timed_out net);
      Alcotest.(check int) "reply not yet late" 0 (Transport.late_replies net);
      Engine.sleep 1000.0;
      Alcotest.(check int) "late reply counted" 1 (Transport.late_replies net);
      Alcotest.(check bool) "late reply in tracer" true
        (List.mem_assoc ("echo", "late_reply") (Metrics.Tracer.fault_counts tracer)))

(* The fault-prone call sites (LVI request, direct execution, Raft
   client submit) all go through [call_timeout]; under a chaos-style
   probabilistic drop hook — same shape the nemesis installs, drawing
   from the transport's dedicated fault stream — every caller must come
   back with Some or None within its timeout, never hang, and the
   successes + timeouts must account for every call. *)
let test_call_timeout_under_chaos_hook () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      let frng = Transport.fault_rng net in
      let handle =
        Transport.add_fault net (fun ~src:_ ~dst:_ ~label ->
            if label = "echo" && Rng.float frng 1.0 < 0.5 then Transport.Drop
            else Transport.Deliver)
      in
      let n = 40 in
      let ok = ref 0 and timed_out = ref 0 and finished = ref 0 in
      for i = 1 to n do
        Engine.spawn (fun () ->
            (match
               Transport.call_timeout net ~from:Location.ca ~timeout:200.0 svc i
             with
            | Some v ->
                Alcotest.(check int) "echoed its own argument" i v;
                incr ok
            | None -> incr timed_out);
            incr finished)
      done;
      Engine.sleep 1000.0;
      Alcotest.(check int) "every caller returned" n !finished;
      Alcotest.(check int) "successes + timeouts cover all" n (!ok + !timed_out);
      Alcotest.(check bool) "chaos actually dropped some" true (!timed_out > 0);
      Alcotest.(check bool) "and delivered some" true (!ok > 0);
      Alcotest.(check int) "timeouts counted by transport" !timed_out
        (Transport.calls_timed_out net);
      Transport.remove_fault net handle;
      (* Healed: calls succeed again and the hook stack is clean. *)
      Alcotest.(check (option int)) "healed" (Some 7)
        (Transport.call_timeout net ~from:Location.ca ~timeout:200.0 svc 7))

let test_response_drop () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      (* Drop only the response leg. *)
      Transport.set_fault net (fun ~src ~dst:_ ~label:_ ->
          if src = Location.va then Transport.Drop else Transport.Deliver);
      let r = Transport.call_timeout net ~from:Location.ca ~timeout:200.0 svc 7 in
      Alcotest.(check (option int)) "response lost" None r)

let test_duplicate_fault () =
  run_sim (fun () ->
      let net = mknet () in
      let hits = ref 0 in
      let svc =
        Transport.serve net ~loc:Location.va ~name:"sink" (fun () -> incr hits)
      in
      (* Duplicate only the request leg of the first post. *)
      let first = ref true in
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label:_ ->
          if !first then begin
            first := false;
            Transport.Duplicate
          end
          else Transport.Deliver);
      Transport.post net ~from:Location.ca svc ();
      Engine.sleep 500.0;
      Alcotest.(check int) "handler ran twice" 2 !hits;
      Alcotest.(check int) "one duplication recorded" 1
        (Transport.messages_duplicated net);
      Alcotest.(check int) "nothing dropped" 0 (Transport.messages_dropped net);
      Transport.clear_fault net;
      Transport.post net ~from:Location.ca svc ();
      Engine.sleep 500.0;
      Alcotest.(check int) "healed: delivered once" 3 !hits)

let test_delay_fault () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label:_ -> Transport.Delay 100.0);
      let t0 = Engine.now () in
      ignore (Transport.call net ~from:Location.ca svc 1);
      check_float "rtt + 2 delays" (68.0 +. 200.0) (Engine.now () -. t0);
      Transport.clear_fault net;
      let t1 = Engine.now () in
      ignore (Transport.call net ~from:Location.ca svc 1);
      check_float "back to rtt" 68.0 (Engine.now () -. t1))

(* --- Composable fault hooks ---------------------------------------- *)

let test_fault_hooks_compose () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      (* Two stacked hooks: the first non-Deliver verdict wins, in
         registration order. *)
      let h1 =
        Transport.add_fault net (fun ~src:_ ~dst:_ ~label:_ ->
            Transport.Delay 100.0)
      in
      let h2 =
        Transport.add_fault net (fun ~src ~dst:_ ~label:_ ->
            if src = Location.ca then Transport.Drop else Transport.Deliver)
      in
      Alcotest.(check int) "two active hooks" 2 (Transport.active_faults net);
      let t0 = Engine.now () in
      ignore (Transport.call net ~from:Location.ca svc 1);
      (* h1's delay wins on both legs even though h2 would drop. *)
      check_float "delays, not drops" (68.0 +. 200.0) (Engine.now () -. t0);
      Transport.remove_fault net h1;
      let r = Transport.call_timeout net ~from:Location.ca ~timeout:200.0 svc 2 in
      Alcotest.(check (option int)) "h2 now drops" None r;
      Transport.remove_fault net h2;
      Alcotest.(check int) "no active hooks" 0 (Transport.active_faults net);
      let t1 = Engine.now () in
      ignore (Transport.call net ~from:Location.ca svc 3);
      check_float "clean again" 68.0 (Engine.now () -. t1))

let test_set_fault_slot_and_stack_independent () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      let h =
        Transport.add_fault net (fun ~src:_ ~dst:_ ~label:_ ->
            Transport.Delay 50.0)
      in
      (* The legacy slot is consulted before the stack and replaces only
         itself; clearing it leaves the stacked hook in place. *)
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label:_ -> Transport.Delay 10.0);
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label:_ -> Transport.Delay 20.0);
      Alcotest.(check int) "slot + stacked hook" 2 (Transport.active_faults net);
      let t0 = Engine.now () in
      ignore (Transport.call net ~from:Location.ca svc 1);
      check_float "replacement slot wins over stack" (68.0 +. 40.0)
        (Engine.now () -. t0);
      Transport.clear_fault net;
      Alcotest.(check int) "stacked hook survives clear_fault" 1
        (Transport.active_faults net);
      let t1 = Engine.now () in
      ignore (Transport.call net ~from:Location.ca svc 2);
      check_float "stacked delay applies" (68.0 +. 100.0) (Engine.now () -. t1);
      Transport.remove_fault net h)

let test_partition_and_heal () =
  run_sim (fun () ->
      let net = mknet () in
      let echo_va = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      let echo_jp = Transport.serve net ~loc:Location.jp ~name:"echo-jp" Fun.id in
      let h = Transport.partition net [ Location.ca; Location.jp ] in
      let r = Transport.call_timeout net ~from:Location.ca ~timeout:300.0 echo_va 1 in
      Alcotest.(check (option int)) "cross-partition dropped" None r;
      let r2 = Transport.call_timeout net ~from:Location.ca ~timeout:300.0 echo_jp 2 in
      Alcotest.(check (option int)) "same-side delivered" (Some 2) r2;
      Transport.remove_fault net h;
      let r3 = Transport.call_timeout net ~from:Location.ca ~timeout:300.0 echo_va 3 in
      Alcotest.(check (option int)) "healed" (Some 3) r3)

let test_fault_rng_independent_of_jitter () =
  (* Fault decisions draw from a dedicated stream: consuming it must not
     shift the jitter samples of an identically-seeded transport. *)
  let samples net =
    List.init 50 (fun _ -> Transport.one_way net Location.jp Location.va)
  in
  let net1 = Transport.create ~jitter_sigma:0.1 ~rng:(Rng.create 7) () in
  let net2 = Transport.create ~jitter_sigma:0.1 ~rng:(Rng.create 7) () in
  for _ = 1 to 100 do
    ignore (Rng.float (Transport.fault_rng net2) 1.0)
  done;
  List.iter2 (check_float "jitter stream unperturbed") (samples net1)
    (samples net2)

let test_post_delivers () =
  run_sim (fun () ->
      let net = mknet () in
      let got = ref [] in
      let svc =
        Transport.serve net ~loc:Location.va ~name:"sink" (fun x -> got := x :: !got)
      in
      let t0 = Engine.now () in
      Transport.post net ~from:Location.ca svc 1;
      check_float "post returns immediately" t0 (Engine.now ());
      Engine.sleep 100.0;
      Alcotest.(check (list int)) "delivered" [ 1 ] !got)

let test_message_counts () =
  run_sim (fun () ->
      let net = mknet () in
      let svc = Transport.serve net ~loc:Location.va ~name:"echo" Fun.id in
      ignore (Transport.call net ~from:Location.ca svc 1);
      Transport.post net ~from:Location.ca svc 2;
      Engine.sleep 500.0;
      (* call = request + response; post = request + discarded response. *)
      Alcotest.(check int) "sent" 4 (Transport.messages_sent net))

let () =
  Alcotest.run "net"
    [
      ( "location",
        [
          Alcotest.test_case "rtt symmetric" `Quick test_rtt_symmetric;
          Alcotest.test_case "table2 values" `Quick test_rtt_table2;
          Alcotest.test_case "unknown raises" `Quick test_rtt_unknown;
        ] );
      ( "transport",
        [
          Alcotest.test_case "one_way no jitter" `Quick test_one_way_no_jitter;
          Alcotest.test_case "jitter tail" `Quick test_jitter_tail;
          Alcotest.test_case "call roundtrip latency" `Quick
            test_call_roundtrip_latency;
          Alcotest.test_case "call includes handler time" `Quick
            test_call_includes_handler_time;
          Alcotest.test_case "handlers run concurrently" `Quick
            test_concurrent_handlers;
          Alcotest.test_case "call_timeout success" `Quick
            test_call_timeout_success;
          Alcotest.test_case "call_timeout drop" `Quick test_call_timeout_drop;
          Alcotest.test_case "call_timeout cancels timer" `Quick
            test_call_timeout_cancels_timer;
          Alcotest.test_case "call_timeout stats" `Quick test_call_timeout_stats;
          Alcotest.test_case "call_timeout late reply" `Quick
            test_call_timeout_late_reply;
          Alcotest.test_case "call_timeout under chaos hook" `Quick
            test_call_timeout_under_chaos_hook;
          Alcotest.test_case "response drop" `Quick test_response_drop;
          Alcotest.test_case "duplicate fault" `Quick test_duplicate_fault;
          Alcotest.test_case "delay fault" `Quick test_delay_fault;
          Alcotest.test_case "fault hooks compose" `Quick
            test_fault_hooks_compose;
          Alcotest.test_case "set_fault slot vs stack" `Quick
            test_set_fault_slot_and_stack_independent;
          Alcotest.test_case "partition and heal" `Quick
            test_partition_and_heal;
          Alcotest.test_case "fault rng independent of jitter" `Quick
            test_fault_rng_independent_of_jitter;
          Alcotest.test_case "post delivers" `Quick test_post_delivers;
          Alcotest.test_case "message counts" `Quick test_message_counts;
        ] );
    ]
