(* Tests for the Raft consensus substrate: elections, replication, safety
   under crashes, and recovery by log replay. *)

open Sim
module Transport = Net.Transport
module R = Raft.Consensus.Make (Raft.Kvsm)

let az_rtt a b = if String.equal a b then 0.5 else 2.0

let azs = [ "AZ1"; "AZ2"; "AZ3" ]

let with_cluster_net ?(seed = 7) ?(locs = azs) f =
  let e = Engine.create ~seed () in
  Engine.run e (fun () ->
      let net = Transport.create ~rtt:az_rtt ~jitter_sigma:0.02 ~rng:(Rng.split (Engine.rng ())) () in
      let c = R.create ~net ~locs ~sm:Raft.Kvsm.create () in
      f net c;
      R.stop c)

let with_cluster ?seed ?locs f = with_cluster_net ?seed ?locs (fun _ c -> f c)

let is_node_traffic label =
  String.length label >= 5
  && String.sub label 0 5 = "raft-"
  && not (String.length label >= 11 && String.sub label 0 11 = "raft-client")

(* Cut one AZ's raft links (node-to-node traffic only, so test clients
   can still reach the majority side). *)
let isolate net az =
  Transport.set_fault net (fun ~src ~dst ~label ->
      if is_node_traffic label && String.equal src az <> String.equal dst az
      then Transport.Drop
      else Transport.Deliver)

let heal net = Transport.clear_fault net

let await_leader ?(max_wait = 5000.0) c =
  let deadline = Engine.now () +. max_wait in
  let rec loop () =
    match R.leader c with
    | Some id -> id
    | None ->
        if Engine.now () >= deadline then Alcotest.fail "no leader elected"
        else begin
          Engine.sleep 50.0;
          loop ()
        end
  in
  loop ()

let set c k v =
  match R.submit c (Raft.Kvsm.Set (k, v)) with
  | Some Raft.Kvsm.Done -> ()
  | Some (Raft.Kvsm.Value _) -> Alcotest.fail "unexpected reply"
  | None -> Alcotest.fail ("submit timed out for " ^ k)

let get c k =
  match R.submit c (Raft.Kvsm.Get k) with
  | Some (Raft.Kvsm.Value v) -> v
  | _ -> Alcotest.fail "get failed"

(* ------------------------------------------------------------------ *)

let test_elects_single_leader () =
  with_cluster (fun c ->
      let id = await_leader c in
      Engine.sleep 500.0;
      (* Stable: still the same single leader. *)
      Alcotest.(check (option int)) "stable leader" (Some id) (R.leader c);
      let max_term = R.current_term c id in
      for t = 1 to max_term do
        Alcotest.(check bool)
          (Printf.sprintf "at most one leader at term %d" t)
          true
          (List.length (R.leaders_at_term c t) <= 1)
      done)

let test_submit_applies_everywhere () =
  with_cluster (fun c ->
      let _ = await_leader c in
      set c "x" "1";
      set c "y" "2";
      Alcotest.(check (option string)) "read back" (Some "1") (get c "x");
      (* Wait for heartbeats to carry the commit index to followers. *)
      Engine.sleep 300.0;
      for id = 0 to R.size c - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "node %d applied all" id)
          true
          (R.commit_index c id >= 2)
      done)

let test_leader_crash_failover () =
  with_cluster (fun c ->
      let l1 = await_leader c in
      set c "x" "1";
      R.crash c l1;
      Engine.sleep 1000.0;
      let l2 = await_leader c in
      Alcotest.(check bool) "new leader differs" true (l1 <> l2);
      Alcotest.(check (option string)) "state preserved" (Some "1") (get c "x");
      set c "x" "2";
      Alcotest.(check (option string)) "new writes work" (Some "2") (get c "x"))

let test_follower_crash_still_commits () =
  with_cluster (fun c ->
      let l = await_leader c in
      let follower = if l = 0 then 1 else 0 in
      R.crash c follower;
      set c "x" "1";
      Alcotest.(check (option string)) "majority commits" (Some "1") (get c "x"))

let test_no_quorum_blocks () =
  with_cluster (fun c ->
      let l = await_leader c in
      let others = List.filter (fun i -> i <> l) [ 0; 1; 2 ] in
      List.iter (R.crash c) others;
      let r = R.submit ~timeout:800.0 c (Raft.Kvsm.Set ("x", "1")) in
      Alcotest.(check bool) "submit times out without quorum" true (r = None))

let test_restart_catches_up () =
  with_cluster (fun c ->
      let l = await_leader c in
      let follower = if l = 0 then 1 else 0 in
      R.crash c follower;
      set c "a" "1";
      set c "b" "2";
      R.restart c follower;
      Engine.sleep 1000.0;
      Alcotest.(check bool)
        "restarted node caught up" true
        (R.commit_index c follower >= 2);
      (* The state machine was rebuilt by replaying the log. *)
      let applied = R.applied c follower in
      Alcotest.(check bool) "replayed both sets" true (List.length applied >= 2))

let test_leader_restart_rejoins () =
  with_cluster (fun c ->
      let l1 = await_leader c in
      set c "x" "1";
      R.crash c l1;
      Engine.sleep 1000.0;
      let _ = await_leader c in
      set c "x" "2";
      R.restart c l1;
      Engine.sleep 1500.0;
      Alcotest.(check bool)
        "old leader rejoined and caught up" true
        (R.commit_index c l1 >= 2);
      Alcotest.(check (option string)) "value is newest" (Some "2") (get c "x"))

let test_single_node_cluster () =
  with_cluster ~locs:[ "AZ1" ] (fun c ->
      let _ = await_leader c in
      let t0 = Engine.now () in
      set c "x" "1";
      Alcotest.(check bool) "fast single-node commit" true
        (Engine.now () -. t0 < 10.0);
      Alcotest.(check (option string)) "read" (Some "1") (get c "x"))

let test_five_node_cluster () =
  with_cluster ~locs:[ "AZ1"; "AZ2"; "AZ3"; "AZ1"; "AZ2" ] (fun c ->
      let l = await_leader c in
      (* Two crashes still leave a quorum of 3/5. *)
      let dead =
        List.filteri (fun i _ -> i < 2)
          (List.filter (fun i -> i <> l) [ 0; 1; 2; 3; 4 ])
      in
      List.iter (R.crash c) dead;
      set c "x" "1";
      Alcotest.(check (option string)) "3/5 quorum commits" (Some "1") (get c "x"))

let test_leader_partition_failover () =
  with_cluster_net (fun net c ->
      let l1 = await_leader c in
      set c "x" "1";
      (* Cut the leader off: the majority side elects a replacement and
         keeps committing; the old leader cannot. Node i lives in AZ i. *)
      isolate net (List.nth azs l1);
      Engine.sleep 1500.0;
      (match R.leader c with
      | Some l2 -> Alcotest.(check bool) "replacement leader" true (l2 <> l1)
      | None -> Alcotest.fail "no replacement leader");
      set c "x" "2";
      (* Heal: the deposed leader hears a higher term and steps down;
         logs converge. *)
      heal net;
      Engine.sleep 2000.0;
      Alcotest.(check (option string)) "post-heal read" (Some "2") (get c "x");
      Alcotest.(check bool) "old leader caught up" true
        (R.commit_index c l1 >= 2);
      let max_term =
        List.fold_left (fun acc i -> max acc (R.current_term c i)) 0 [ 0; 1; 2 ]
      in
      for t = 1 to max_term do
        Alcotest.(check bool)
          (Printf.sprintf "election safety at term %d" t)
          true
          (List.length (R.leaders_at_term c t) <= 1)
      done)

let test_follower_partition_harmless () =
  with_cluster_net (fun net c ->
      let l = await_leader c in
      let follower = if l = 0 then 1 else 0 in
      isolate net (List.nth azs follower);
      set c "a" "1";
      set c "b" "2";
      Alcotest.(check (option string)) "majority commits through partition"
        (Some "2") (get c "b");
      heal net;
      Engine.sleep 2000.0;
      Alcotest.(check bool) "partitioned follower converged" true
        (R.commit_index c follower >= 2))

let test_full_partition_blocks () =
  with_cluster_net (fun net c ->
      let _ = await_leader c in
      (* Every AZ's raft links cut: no quorum anywhere. *)
      Transport.set_fault net (fun ~src ~dst ~label ->
          if is_node_traffic label && not (String.equal src dst) then
            Transport.Drop
          else Transport.Deliver);
      Engine.sleep 500.0;
      let r = R.submit ~timeout:1500.0 c (Raft.Kvsm.Set ("x", "1")) in
      Alcotest.(check bool) "no quorum, no commit" true (r = None);
      heal net;
      Engine.sleep 2000.0;
      set c "x" "2";
      Alcotest.(check (option string)) "recovers after heal" (Some "2") (get c "x"))

(* --- Log compaction / snapshots ------------------------------------ *)

let with_compacting_cluster ?(threshold = 10) f =
  let e = Engine.create ~seed:7 () in
  Engine.run e (fun () ->
      let net =
        Transport.create ~rtt:az_rtt ~jitter_sigma:0.02
          ~rng:(Rng.split (Engine.rng ())) ()
      in
      let c =
        R.create ~net ~locs:azs ~sm:Raft.Kvsm.create
          ~compaction_threshold:threshold ()
      in
      f net c;
      R.stop c)

let test_compaction_bounds_log () =
  with_compacting_cluster (fun _ c ->
      let l = await_leader c in
      for i = 1 to 35 do
        set c (Printf.sprintf "k%d" (i mod 5)) (string_of_int i)
      done;
      Alcotest.(check bool) "leader compacted" true (R.snapshot_index c l > 0);
      Alcotest.(check bool) "stored entries bounded" true
        (R.stored_entries c l < 20);
      Alcotest.(check bool) "logical length preserved" true
        (R.log_length c l >= 35);
      (* State machine unaffected by compaction. *)
      Alcotest.(check (option string)) "reads still correct" (Some "35")
        (get c "k0"))

let test_snapshot_catches_up_lagging_follower () =
  with_compacting_cluster (fun _ c ->
      let l = await_leader c in
      let follower = if l = 0 then 1 else 0 in
      R.crash c follower;
      (* Push far past the compaction threshold while it is down, so the
         entries it needs are gone from the leader's log. *)
      for i = 1 to 30 do
        set c "x" (string_of_int i)
      done;
      Alcotest.(check bool) "leader discarded the prefix" true
        (R.snapshot_index c l > 0);
      R.restart c follower;
      Engine.sleep 2000.0;
      Alcotest.(check bool) "follower caught up via snapshot" true
        (R.commit_index c follower >= 30);
      Alcotest.(check bool) "follower received the snapshot" true
        (R.snapshot_index c follower > 0);
      set c "x" "31";
      Alcotest.(check (option string)) "cluster still serves" (Some "31")
        (get c "x"))

let test_restart_recovers_from_snapshot () =
  with_compacting_cluster (fun _ c ->
      let l = await_leader c in
      for i = 1 to 25 do
        set c "x" (string_of_int i)
      done;
      Engine.sleep 500.0;
      let follower = if l = 0 then 1 else 0 in
      Alcotest.(check bool) "follower compacted too" true
        (R.snapshot_index c follower > 0);
      R.crash c follower;
      R.restart c follower;
      Engine.sleep 1500.0;
      (* The SM was rebuilt from its snapshot plus the log suffix, not a
         full replay. *)
      Alcotest.(check bool) "recovered beyond the snapshot" true
        (R.commit_index c follower >= 25))

(* Log-matching safety under random minority crashes: all live nodes end
   with the same committed data. *)
(* --- Group commit and batched submission --------------------------- *)

let with_gc_cluster ?(seed = 7) ?(locs = azs) ?(jitter_sigma = 0.02) ?on_batch f =
  let e = Engine.create ~seed () in
  Engine.run e (fun () ->
      let net =
        Transport.create ~rtt:az_rtt ~jitter_sigma
          ~rng:(Rng.split (Engine.rng ())) ()
      in
      let c =
        R.create ~net ~locs ~sm:Raft.Kvsm.create ~group_commit:true ?on_batch ()
      in
      f c;
      R.stop c)

(* submit_batch lands the whole list in ONE log entry, applies the
   commands back to back, and returns the outputs in submission order. *)
let test_submit_batch_atomic () =
  with_cluster (fun c ->
      let _ = await_leader c in
      let len0 = R.log_length c 0 in
      (match
         R.submit_batch c
           [
             Raft.Kvsm.Set ("a", "1");
             Raft.Kvsm.Set ("b", "2");
             Raft.Kvsm.Get "a";
           ]
       with
      | Some [ Raft.Kvsm.Done; Raft.Kvsm.Done; Raft.Kvsm.Value v ] ->
          Alcotest.(check (option string)) "batch reads its own write"
            (Some "1") v
      | Some _ -> Alcotest.fail "wrong output shape"
      | None -> Alcotest.fail "batch timed out");
      Alcotest.(check int) "one entry for three commands" (len0 + 1)
        (R.log_length c 0);
      Alcotest.(check (option string)) "b visible" (Some "2") (get c "b");
      Alcotest.(check (option int)) "empty batch is a no-op" (Some 0)
        (Option.map List.length (R.submit_batch c [])))

(* With group commit on, submissions issued at the same instant coalesce
   into a single log entry (the proposer drains the whole queue), every
   submitter still gets its own output, and the on_batch hook reports
   the coalesced size. *)
let test_group_commit_coalesces () =
  let sizes = ref [] in
  let on_batch ~size ~queue_delay =
    Alcotest.(check bool) "queue delay non-negative" true (queue_delay >= 0.0);
    sizes := size :: !sizes
  in
  (* Jitter-free net: all eight requests reach the node at the same
     virtual instant, so they all enqueue before the proposer fiber
     drains the queue — the purest coalescing case. *)
  with_gc_cluster ~locs:[ "AZ1" ] ~jitter_sigma:0.0 ~on_batch (fun c ->
      let _ = await_leader c in
      let len0 = R.log_length c 0 in
      let n = 8 in
      let done_ = ref 0 in
      for i = 1 to n do
        Engine.spawn (fun () ->
            match R.submit c (Raft.Kvsm.Set (Printf.sprintf "k%d" i, "v")) with
            | Some Raft.Kvsm.Done -> incr done_
            | _ -> Alcotest.fail "submit failed")
      done;
      Engine.sleep 500.0;
      Alcotest.(check int) "all submitters replied" n !done_;
      Alcotest.(check int) "one coalesced entry" (len0 + 1) (R.log_length c 0);
      Alcotest.(check int) "hook saw the whole batch" n
        (List.fold_left ( + ) 0 !sizes);
      Alcotest.(check bool) "coalescing actually happened" true
        (List.exists (fun s -> s >= 2) !sizes);
      for i = 1 to n do
        Alcotest.(check (option string))
          (Printf.sprintf "k%d applied" i)
          (Some "v")
          (get c (Printf.sprintf "k%d" i))
      done)

(* Group commit on a replicated cluster preserves per-replica apply
   order: staggered concurrent submitters coalesce into fewer entries
   than submissions, and every node applies the identical command
   sequence. *)
let test_group_commit_replicated_order () =
  with_gc_cluster (fun c ->
      let _ = await_leader c in
      let len0 = R.log_length c 0 in
      let n = 12 in
      let done_ = ref 0 in
      for i = 1 to n do
        Engine.spawn (fun () ->
            (* Stagger inside one replication round-trip (~4 ms AZ RTT)
               so later submits queue behind the in-flight append. *)
            Engine.sleep (0.3 *. float_of_int i);
            match
              R.submit c (Raft.Kvsm.Set ("k", Printf.sprintf "%d" i))
            with
            | Some Raft.Kvsm.Done -> incr done_
            | _ -> Alcotest.fail "submit failed")
      done;
      Engine.sleep 2000.0;
      Alcotest.(check int) "all submitters replied" n !done_;
      let entries = R.log_length c 0 - len0 in
      Alcotest.(check bool)
        (Printf.sprintf "%d submissions in %d entries" n entries)
        true
        (entries >= 1 && entries < n);
      let reference = R.applied c 0 in
      Alcotest.(check bool) "every command applied" true
        (List.length reference >= n);
      for id = 1 to 2 do
        Alcotest.(check bool)
          (Printf.sprintf "node %d applied identical sequence" id)
          true
          (R.applied c id = reference)
      done)

(* With a modeled durable-append cost, unbatched same-instant submits
   serialize on the append device (k entries -> k appends) while group
   commit pays it once for the whole batch — the amortization the load
   sweep measures. *)
let test_append_cost_amortized () =
  let run_mode group_commit =
    let e = Engine.create ~seed:7 () in
    let finish = ref 0.0 in
    Engine.run e (fun () ->
        let net =
          Transport.create ~rtt:az_rtt ~jitter_sigma:0.0
            ~rng:(Rng.split (Engine.rng ())) ()
        in
        let c =
          R.create ~net ~locs:[ "AZ1" ] ~sm:Raft.Kvsm.create ~group_commit
            ~append_latency:1.0 ()
        in
        let _ = await_leader c in
        let t0 = Engine.now () in
        let done_ = ref 0 in
        for i = 1 to 8 do
          Engine.spawn (fun () ->
              match R.submit c (Raft.Kvsm.Set (Printf.sprintf "k%d" i, "v")) with
              | Some Raft.Kvsm.Done ->
                  incr done_;
                  if !done_ = 8 then finish := Engine.now () -. t0
              | _ -> Alcotest.fail "submit failed")
        done;
        Engine.sleep 500.0;
        Alcotest.(check int) "all committed" 8 !done_;
        R.stop c);
    !finish
  in
  let unbatched = run_mode false in
  let batched = run_mode true in
  Alcotest.(check bool)
    (Printf.sprintf "unbatched pays 8 serialized appends (%.1f ms)" unbatched)
    true (unbatched >= 8.0);
  Alcotest.(check bool)
    (Printf.sprintf "group commit amortizes to ~1 (%.1f ms)" batched)
    true
    (batched < unbatched /. 2.0)

(* A leader crash with proposals queued must fail them cleanly: the
   submit retry loop re-routes to the new leader and every caller still
   gets an answer. *)
let test_group_commit_failover_retries () =
  with_gc_cluster (fun c ->
      let l = await_leader c in
      let n = 6 in
      let done_ = ref 0 in
      for i = 1 to n do
        Engine.spawn (fun () ->
            Engine.sleep (0.2 *. float_of_int i);
            match
              R.submit ~timeout:8000.0 c
                (Raft.Kvsm.Set (Printf.sprintf "f%d" i, "v"))
            with
            | Some Raft.Kvsm.Done -> incr done_
            | _ -> ())
      done;
      (* Crash the leader mid-stream. *)
      Engine.sleep 1.0;
      R.crash c l;
      Engine.sleep 10_000.0;
      R.restart c l;
      Engine.sleep 3000.0;
      Alcotest.(check int) "every submitter eventually answered" n !done_;
      let applied = R.applied c l in
      for i = 1 to n do
        Alcotest.(check bool)
          (Printf.sprintf "f%d committed" i)
          true
          (List.mem (Raft.Kvsm.Set (Printf.sprintf "f%d" i, "v")) applied)
      done)

let prop_log_convergence =
  QCheck.Test.make ~name:"logs converge under minority crash/restart churn"
    ~count:10
    QCheck.(pair small_int (list_of_size Gen.(5 -- 15) (int_range 0 99)))
    (fun (seed, values) ->
      let result = ref true in
      let e = Engine.create ~seed:(seed + 1) () in
      Engine.run e (fun () ->
          let net =
            Transport.create ~rtt:az_rtt ~jitter_sigma:0.02
              ~rng:(Rng.split (Engine.rng ())) ()
          in
          let c = R.create ~net ~locs:azs ~sm:Raft.Kvsm.create () in
          let rng = Rng.split (Engine.rng ()) in
          let _ = await_leader c in
          List.iteri
            (fun i v ->
              (* Randomly crash one node, write, then restart it. *)
              let victim = Rng.int rng 3 in
              let crash_now = Rng.bool rng in
              if crash_now then R.crash c victim;
              (match
                 R.submit ~timeout:4000.0 c
                   (Raft.Kvsm.Set (Printf.sprintf "k%d" (i mod 3), string_of_int v))
               with
              | Some _ -> ()
              | None -> result := false);
              if crash_now then R.restart c victim;
              Engine.sleep (Rng.float rng 200.0))
            values;
          Engine.sleep 3000.0;
          (* All live nodes agree on every key. *)
          let reference = R.applied c 0 in
          for id = 1 to 2 do
            let other = R.applied c id in
            let common = min (List.length reference) (List.length other) in
            let prefix l = List.filteri (fun i _ -> i < common) l in
            if prefix reference <> prefix other then result := false
          done;
          R.stop c);
      !result)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "raft"
    [
      ( "consensus",
        [
          Alcotest.test_case "elects a single leader" `Quick
            test_elects_single_leader;
          Alcotest.test_case "submit applies everywhere" `Quick
            test_submit_applies_everywhere;
          Alcotest.test_case "leader crash failover" `Quick
            test_leader_crash_failover;
          Alcotest.test_case "follower crash still commits" `Quick
            test_follower_crash_still_commits;
          Alcotest.test_case "no quorum blocks" `Quick test_no_quorum_blocks;
          Alcotest.test_case "restart catches up" `Quick test_restart_catches_up;
          Alcotest.test_case "leader restart rejoins" `Quick
            test_leader_restart_rejoins;
          Alcotest.test_case "single-node cluster" `Quick test_single_node_cluster;
          Alcotest.test_case "five-node cluster" `Quick test_five_node_cluster;
          Alcotest.test_case "leader partition failover" `Quick
            test_leader_partition_failover;
          Alcotest.test_case "follower partition harmless" `Quick
            test_follower_partition_harmless;
          Alcotest.test_case "full partition blocks" `Quick
            test_full_partition_blocks;
          Alcotest.test_case "compaction bounds the log" `Quick
            test_compaction_bounds_log;
          Alcotest.test_case "snapshot catches up lagging follower" `Quick
            test_snapshot_catches_up_lagging_follower;
          Alcotest.test_case "restart recovers from snapshot" `Quick
            test_restart_recovers_from_snapshot;
        ]
        @ qsuite [ prop_log_convergence ] );
      ( "group commit",
        [
          Alcotest.test_case "submit_batch is atomic" `Quick
            test_submit_batch_atomic;
          Alcotest.test_case "same-instant submits coalesce" `Quick
            test_group_commit_coalesces;
          Alcotest.test_case "replicated order preserved" `Quick
            test_group_commit_replicated_order;
          Alcotest.test_case "append cost amortized" `Quick
            test_append_cost_amortized;
          Alcotest.test_case "failover retries queued proposals" `Quick
            test_group_commit_failover_retries;
        ] );
    ]
