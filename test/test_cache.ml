(* Tests for the near-user eventually consistent cache. *)

open Sim

let run_sim f =
  let e = Engine.create () in
  Engine.run e f

let test_miss_marker () =
  run_sim (fun () ->
      let c = Cache.create () in
      Alcotest.(check int) "miss is -1" (-1) (Cache.version_of c "x");
      Alcotest.(check bool) "get misses" true (Cache.get c "x" = None);
      Alcotest.(check int) "miss counted" 1 (Cache.misses c))

let test_update_and_get () =
  run_sim (fun () ->
      let c = Cache.create () in
      Cache.update c "x" (Dval.Str "a") ~version:3;
      (match Cache.get c "x" with
      | Some { value; version } ->
          Alcotest.(check string) "value" "\"a\"" (Dval.to_string value);
          Alcotest.(check int) "version" 3 version
      | None -> Alcotest.fail "expected hit");
      Alcotest.(check int) "hit counted" 1 (Cache.hits c))

let test_stale_update_ignored () =
  run_sim (fun () ->
      let c = Cache.create () in
      Cache.update c "x" (Dval.Str "new") ~version:5;
      Cache.update c "x" (Dval.Str "old") ~version:2;
      Alcotest.(check int) "keeps newer" 5 (Cache.version_of c "x"))

let test_get_latency () =
  run_sim (fun () ->
      let c = Cache.create ~access_latency:0.5 () in
      let t0 = Engine.now () in
      ignore (Cache.get c "x");
      Alcotest.(check (float 1e-9)) "pays latency" 0.5 (Engine.now () -. t0);
      let t1 = Engine.now () in
      ignore (Cache.get_many c [ "a"; "b"; "c" ]);
      Alcotest.(check (float 1e-9)) "batch pays once" 0.5 (Engine.now () -. t1))

let test_lru_eviction () =
  run_sim (fun () ->
      let c = Cache.create ~capacity:3 () in
      Cache.update c "a" Dval.Unit ~version:1;
      Cache.update c "b" Dval.Unit ~version:1;
      Cache.update c "c" Dval.Unit ~version:1;
      (* Touch a and c so b is the least recently used. *)
      ignore (Cache.get c "a");
      ignore (Cache.get c "c");
      Cache.update c "d" Dval.Unit ~version:1;
      Alcotest.(check int) "capacity respected" 3 (Cache.size c);
      Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
      Alcotest.(check int) "b evicted" (-1) (Cache.version_of c "b");
      Alcotest.(check bool) "a survived" true (Cache.version_of c "a" = 1);
      Alcotest.(check bool) "d present" true (Cache.version_of c "d" = 1))

let test_lru_update_existing_never_evicts () =
  run_sim (fun () ->
      let c = Cache.create ~capacity:2 () in
      Cache.update c "a" Dval.Unit ~version:1;
      Cache.update c "b" Dval.Unit ~version:1;
      Cache.update c "a" Dval.Unit ~version:2;
      Alcotest.(check int) "no eviction on in-place update" 0 (Cache.evictions c);
      Alcotest.(check int) "both present" 2 (Cache.size c))

(* Regression: a rejected stale update used to refresh the key's LRU
   stamp anyway, so a replayed (old) delivery could promote a cold
   entry over fresh ones and get the wrong key evicted. Here "a" is
   the LRU victim; the stale update on it must not save it. *)
let test_stale_update_does_not_touch_lru () =
  run_sim (fun () ->
      let c = Cache.create ~capacity:2 () in
      Cache.update c "a" Dval.Unit ~version:5;
      Cache.update c "b" Dval.Unit ~version:1;
      (* Stale replay of "a": rejected, and must leave "a" least
         recently used. *)
      Cache.update c "a" Dval.Unit ~version:2;
      Cache.update c "cnew" Dval.Unit ~version:1;
      Alcotest.(check int) "a evicted, not b" (-1) (Cache.version_of c "a");
      Alcotest.(check bool) "b survived" true (Cache.version_of c "b" = 1))

let test_invalidate () =
  run_sim (fun () ->
      let c = Cache.create () in
      Cache.update c "x" (Dval.Str "old") ~version:3;
      (* Reordered/duplicated invalidations for versions the cache has
         already reached (or passed) are no-ops. *)
      Alcotest.(check bool) "same version is a no-op" false
        (Cache.invalidate c "x" ~version:3);
      Alcotest.(check bool) "older version is a no-op" false
        (Cache.invalidate c "x" ~version:2);
      Alcotest.(check int) "entry intact" 3 (Cache.version_of c "x");
      Alcotest.(check bool) "newer version evicts" true
        (Cache.invalidate c "x" ~version:4);
      Alcotest.(check int) "now a miss" (-1) (Cache.version_of c "x");
      Alcotest.(check bool) "miss is a no-op" false
        (Cache.invalidate c "x" ~version:9))

let test_capacity_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Cache.create: capacity must be positive") (fun () ->
      ignore (Cache.create ~capacity:0 ()))

let test_wipe () =
  run_sim (fun () ->
      let c = Cache.create () in
      Cache.update c "x" Dval.Unit ~version:1;
      Cache.update c "y" Dval.Unit ~version:1;
      Alcotest.(check int) "populated" 2 (Cache.size c);
      Cache.wipe c;
      Alcotest.(check int) "wiped" 0 (Cache.size c);
      Alcotest.(check int) "back to miss marker" (-1) (Cache.version_of c "x"))

let () =
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "miss marker" `Quick test_miss_marker;
          Alcotest.test_case "update and get" `Quick test_update_and_get;
          Alcotest.test_case "stale update ignored" `Quick
            test_stale_update_ignored;
          Alcotest.test_case "get latency" `Quick test_get_latency;
          Alcotest.test_case "wipe" `Quick test_wipe;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "update never evicts in place" `Quick
            test_lru_update_existing_never_evicts;
          Alcotest.test_case "stale update leaves lru stamp" `Quick
            test_stale_update_does_not_touch_lru;
          Alcotest.test_case "invalidate version guard" `Quick test_invalidate;
          Alcotest.test_case "capacity validated" `Quick test_capacity_validation;
        ] );
    ]
