(** Deployment locations and the inter-region round-trip latency matrix.

    The five application deployment locations are those of the paper's
    evaluation (§5.2): Ashburn VA, San Francisco CA, Dublin IE, Frankfurt
    DE, Tokyo JP. Ohio and Oregon additionally host replicas for the
    geo-replicated storage baseline of Figure 1. RTTs to VA are chosen so
    that a storage ping (network RTT + storage service time) reproduces
    Table 2 exactly; the remaining pairs use public inter-region figures. *)

type t = string

val va : t (** Ashburn, Virginia — the near-storage location. *)

val ca : t (** San Francisco, California. *)

val ie : t (** Dublin, Ireland. *)

val de : t (** Frankfurt, Germany. *)

val jp : t (** Tokyo, Japan. *)

val oh : t (** Columbus, Ohio — geo-replication baseline only. *)

val oregon : t (** Portland, Oregon — geo-replication baseline only. *)

val user_locations : t list
(** The five locations where applications and clients are deployed
    ([va; ca; ie; de; jp]). *)

val near_storage : t
(** Where the primary copy of the data lives ([va]). *)

val rtt : t -> t -> float
(** Network round-trip time in milliseconds between two locations.
    Symmetric; same-location RTT is 1.0 ms. Raises [Invalid_argument] on
    an unknown location. *)

val pp : Format.formatter -> t -> unit
