type t = string

let va = "VA"
let ca = "CA"
let ie = "IE"
let de = "DE"
let jp = "JP"
let oh = "OH"
let oregon = "OR"

let user_locations = [ va; ca; ie; de; jp ]

let near_storage = va

(* Upper triangle of the symmetric RTT matrix (ms). The ↔VA entries are
   Table 2's values minus the 6 ms DynamoDB service time modelled by the
   storage layer, so that a storage ping reproduces Table 2. *)
let pairs =
  [
    ((va, ca), 68.0);
    ((va, ie), 64.0);
    ((va, de), 87.0);
    ((va, jp), 140.0);
    ((va, oh), 12.0);
    ((va, oregon), 65.0);
    ((ca, ie), 135.0);
    ((ca, de), 150.0);
    ((ca, jp), 105.0);
    ((ca, oh), 52.0);
    ((ca, oregon), 22.0);
    ((ie, de), 25.0);
    ((ie, jp), 210.0);
    ((ie, oh), 75.0);
    ((ie, oregon), 130.0);
    ((de, jp), 230.0);
    ((de, oh), 95.0);
    ((de, oregon), 150.0);
    ((jp, oh), 130.0);
    ((jp, oregon), 97.0);
    ((oh, oregon), 50.0);
  ]

let known l =
  List.mem l [ va; ca; ie; de; jp; oh; oregon ]

let rtt a b =
  if not (known a && known b) then
    invalid_arg (Printf.sprintf "Location.rtt: unknown location %s/%s" a b);
  if String.equal a b then 1.0
  else
    match List.assoc_opt (a, b) pairs with
    | Some v -> v
    | None -> (
        match List.assoc_opt (b, a) pairs with
        | Some v -> v
        | None -> invalid_arg "Location.rtt: missing pair")

let pp fmt t = Format.pp_print_string fmt t
