lib/net/location.mli: Format
