lib/net/transport.ml: Engine Ivar Location Rng Sim
