lib/net/transport.mli: Location Sim
