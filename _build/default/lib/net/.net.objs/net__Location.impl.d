lib/net/location.ml: Format List Printf String
