open Sim

type fault = Deliver | Drop | Delay of float

type t = {
  rtt : Location.t -> Location.t -> float;
  jitter_sigma : float;
  rng : Rng.t;
  mutable fault_hook : src:Location.t -> dst:Location.t -> label:string -> fault;
  mutable sent : int;
  mutable dropped : int;
}

type ('req, 'resp) service = {
  svc_loc : Location.t;
  svc_name : string;
  handler : 'req -> 'resp;
}

let no_fault ~src:_ ~dst:_ ~label:_ = Deliver

let create ?(rtt = Location.rtt) ?(jitter_sigma = 0.05) ~rng () =
  { rtt; jitter_sigma; rng; fault_hook = no_fault; sent = 0; dropped = 0 }

let one_way t src dst =
  let base = t.rtt src dst /. 2.0 in
  if t.jitter_sigma <= 0.0 then base
  else
    (* mu = -sigma^2/2 keeps the multiplier's mean at 1, so medians track
       the matrix while the tail furnishes a p99. *)
    let s = t.jitter_sigma in
    base *. Rng.lognormal t.rng ~mu:(-.s *. s /. 2.0) ~sigma:s

let set_fault t hook = t.fault_hook <- hook

let clear_fault t = t.fault_hook <- no_fault

let serve _t ~loc ~name handler = { svc_loc = loc; svc_name = name; handler }

let service_location svc = svc.svc_loc

(* Deliver [k] at [dst] after sampled latency, subject to the fault hook. *)
let transmit t ~src ~dst ~label k =
  t.sent <- t.sent + 1;
  match t.fault_hook ~src ~dst ~label with
  | Drop -> t.dropped <- t.dropped + 1
  | Deliver ->
      Engine.schedule ~at:(Engine.now () +. one_way t src dst) k
  | Delay extra ->
      Engine.schedule ~at:(Engine.now () +. one_way t src dst +. extra) k

let dispatch t ~from svc req ~on_reply =
  transmit t ~src:from ~dst:svc.svc_loc ~label:svc.svc_name (fun () ->
      Engine.spawn ~name:svc.svc_name (fun () ->
          let resp = svc.handler req in
          transmit t ~src:svc.svc_loc ~dst:from
            ~label:(svc.svc_name ^ ":reply")
            (fun () -> on_reply resp)))

let call t ~from svc req =
  let iv = Ivar.create () in
  dispatch t ~from svc req ~on_reply:(fun resp -> Ivar.try_fill iv resp |> ignore);
  Ivar.read iv

let call_timeout t ~from ~timeout svc req =
  let iv = Ivar.create () in
  dispatch t ~from svc req ~on_reply:(fun resp ->
      Ivar.try_fill iv (Some resp) |> ignore);
  Engine.schedule ~at:(Engine.now () +. timeout) (fun () ->
      Ivar.try_fill iv None |> ignore);
  Ivar.read iv

let post t ~from svc req =
  dispatch t ~from svc req ~on_reply:(fun _ -> ())

let messages_sent t = t.sent

let messages_dropped t = t.dropped
