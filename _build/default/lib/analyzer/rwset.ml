type t = { reads : string list; writes : string list }

let make ~reads ~writes =
  {
    reads = List.sort_uniq String.compare reads;
    writes = List.sort_uniq String.compare writes;
  }

let empty = { reads = []; writes = [] }

let all_keys t =
  List.sort_uniq String.compare (t.reads @ t.writes)

let lock_modes t =
  List.map
    (fun k -> (k, if List.mem k t.writes then `W else `R))
    (all_keys t)

let has_writes t = t.writes <> []

let mem_read t k = List.mem k t.reads

let mem_write t k = List.mem k t.writes

let cardinal t = List.length t.reads + List.length t.writes

let equal a b =
  List.equal String.equal a.reads b.reads
  && List.equal String.equal a.writes b.writes

let pp fmt t =
  let pp_keys = Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string in
  Format.fprintf fmt "@[reads: [%a]@ writes: [%a]@]" pp_keys t.reads pp_keys
    t.writes
