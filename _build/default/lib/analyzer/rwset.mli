(** Read/write sets — what the LVI request carries.

    [reads] is every key the execution reads — including keys it also
    writes, because every read must be validated against the primary's
    version (§3.2) regardless of lock mode. [writes] is every key
    written. For locking, write mode dominates: a key in both sets takes
    a single write lock (§3.6). Keys are kept sorted for the
    lexicographic lock acquisition order. *)

type t = { reads : string list; writes : string list }

val make : reads:string list -> writes:string list -> t
(** Deduplicates and sorts both sets; they may overlap. *)

val empty : t

val all_keys : t -> string list
(** Sorted, deduplicated union of reads and writes. *)

val lock_modes : t -> (string * [ `R | `W ]) list
(** One entry per key of [all_keys]; [`W] when the key is written. *)

val has_writes : t -> bool

val mem_read : t -> string -> bool

val mem_write : t -> string -> bool

val cardinal : t -> int
(** [List.length reads + List.length writes]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
