lib/analyzer/rwset.ml: Format List String
