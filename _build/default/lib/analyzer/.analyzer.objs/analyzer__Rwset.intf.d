lib/analyzer/rwset.mli: Format
