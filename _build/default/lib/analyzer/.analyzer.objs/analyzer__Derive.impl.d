lib/analyzer/derive.ml: Ast Eval Fdsl Format Int List Option Rwset Set String
