lib/analyzer/derive.mli: Dval Fdsl Format Rwset
