lib/experiments/runner.ml: Array Bundle Engine List Metrics Net Radical Result Rng Sim String Workload
