lib/experiments/figures.ml: Analyzer Apps Array Bundle Cost Dval Engine Fdsl Hashtbl List Metrics Net Option Printf Radical Rng Runner Sim Store Workload
