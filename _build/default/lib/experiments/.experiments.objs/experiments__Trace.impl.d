lib/experiments/trace.ml: Bundle Dval Engine Fdsl Format In_channel Ivar List Net Out_channel Printf Radical Result Rng Runner Sim String
