lib/experiments/runner.mli: Bundle Metrics Net Radical
