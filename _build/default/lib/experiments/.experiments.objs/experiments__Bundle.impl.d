lib/experiments/bundle.ml: Apps Dval Fdsl List Printf Sim
