lib/experiments/trace.mli: Bundle Dval Net Runner
