lib/experiments/figures.mli:
