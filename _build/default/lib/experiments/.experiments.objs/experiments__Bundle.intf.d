lib/experiments/bundle.mli: Dval Fdsl Sim
