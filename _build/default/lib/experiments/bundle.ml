type app = {
  name : string;
  funcs : Fdsl.Ast.func list;
  schema : Fdsl.Typecheck.schema;
  seed : Sim.Rng.t -> (string * Dval.t) list;
  new_gen : unit -> Sim.Rng.t -> string * Dval.t list;
}

let social =
  {
    name = "social";
    funcs = Apps.Social.functions;
    schema = Apps.Social.schema;
    seed = (fun rng -> Apps.Social.seed rng);
    new_gen =
      (fun () ->
        let g = Apps.Social.gen () in
        fun rng -> Apps.Social.next g rng);
  }

let hotel =
  {
    name = "hotel";
    funcs = Apps.Hotel.functions;
    schema = Apps.Hotel.schema;
    seed = (fun rng -> Apps.Hotel.seed rng);
    new_gen =
      (fun () ->
        let g = Apps.Hotel.gen () in
        fun rng -> Apps.Hotel.next g rng);
  }

let forum =
  {
    name = "forum";
    funcs = Apps.Forum.functions;
    schema = Apps.Forum.schema;
    seed = (fun rng -> Apps.Forum.seed ~n_posts:2000 rng);
    new_gen =
      (fun () ->
        let g = Apps.Forum.gen ~n_posts:2000 () in
        fun rng -> Apps.Forum.next g rng);
  }

let evaluated = [ social; hotel; forum ]

let simple =
  let open Fdsl.Ast in
  let n_keys = 200 in
  {
    name = "simple";
    schema = [ ("k:", Fdsl.Types.TStr) ];
    funcs =
      [
        {
          fn_name = "simple";
          params = [ "k" ];
          body = Compute (100.0, Read (Concat [ Str "k:"; Input "k" ]));
        };
      ];
    seed =
      (fun _ ->
        List.init n_keys (fun i ->
            (Printf.sprintf "k:%d" i, Dval.Str (Printf.sprintf "value-%d" i))));
    new_gen =
      (fun () ->
        fun rng ->
         ("simple", [ Dval.Str (string_of_int (Sim.Rng.int rng n_keys)) ]));
  }
