(** Application bundles consumed by the experiment runner: functions,
    seed data, and a workload generator with Table 1's request mix. *)

type app = {
  name : string;
  funcs : Fdsl.Ast.func list;
  schema : Fdsl.Typecheck.schema; (** For registration-time typechecking. *)
  seed : Sim.Rng.t -> (string * Dval.t) list;
  new_gen : unit -> Sim.Rng.t -> string * Dval.t list;
}

val social : app

val hotel : app

val forum : app

val evaluated : app list
(** The three applications of Figures 4–6. *)

val simple : app
(** Figure 1's base-case application: ~100 ms of computation and a
    single storage read, keys selected uniformly. *)
