(** Request traces: generate, persist, and replay.

    The paper's workloads are synthesized from published parameters
    (§5.3) because production traces are proprietary; this module makes
    the synthetic equivalent a first-class artifact. A trace fixes the
    arrival time, origin location, handler and arguments of every
    request, so an experiment can be replayed bit-for-bit against any
    deployment — or shared as a plain text file. *)

type event = {
  at : float; (** Arrival time, virtual ms from trace start. *)
  from : Net.Location.t;
  fn : string;
  args : Dval.t list;
}

type t = event list

val generate :
  ?seed:int ->
  ?rate:float ->
  ?duration:float ->
  ?locations:Net.Location.t list ->
  Bundle.app ->
  t
(** Poisson arrivals (default 100 req/s for 10 s of virtual time) with
    requests drawn from the app's Table 1 mix and origins round-robin
    over the locations. *)

val save : t -> string -> unit
(** One event per line: [at <TAB> loc <TAB> fn <TAB> args], arguments in
    the DSL's literal syntax. *)

val load : string -> (t, string) result

val replay : ?seed:int -> Runner.system -> Bundle.app -> t -> Runner.result
(** Open-loop replay: each event fires at its recorded time regardless
    of earlier requests' completion. The app supplies functions and seed
    data; the trace supplies the load. *)
