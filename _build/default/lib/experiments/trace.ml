open Sim
module Location = Net.Location

type event = {
  at : float;
  from : Net.Location.t;
  fn : string;
  args : Dval.t list;
}

type t = event list

let generate ?(seed = 42) ?(rate = 100.0) ?(duration = 10_000.0)
    ?(locations = Location.user_locations) (app : Bundle.app) =
  let rng = Rng.create seed in
  let gen = app.new_gen () in
  let n_locs = List.length locations in
  let rec arrivals now i acc =
    let now = now +. Rng.exponential rng ~mean:(1000.0 /. rate) in
    if now >= duration then List.rev acc
    else
      let fn, args = gen rng in
      let from = List.nth locations (i mod n_locs) in
      arrivals now (i + 1) ({ at = now; from; fn; args } :: acc)
  in
  arrivals 0.0 0 []

(* --- Persistence ------------------------------------------------------ *)

let rec expr_of_dval (d : Dval.t) : Fdsl.Ast.expr =
  match d with
  | Unit -> Fdsl.Ast.Unit
  | Bool b -> Fdsl.Ast.Bool b
  | Int i -> Fdsl.Ast.Int i
  | Str s -> Fdsl.Ast.Str s
  | List xs -> Fdsl.Ast.List_lit (List.map expr_of_dval xs)
  | Record [] ->
      (* The literal syntax cannot express an empty record. *)
      invalid_arg "Trace.save: empty record argument"
  | Record fs ->
      Fdsl.Ast.Record_lit (List.map (fun (k, v) -> (k, expr_of_dval v)) fs)

let save trace path =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun e ->
          Printf.fprintf oc "%.3f\t%s\t%s\t%s\n" e.at e.from e.fn
            (Fdsl.Parse.to_source
               (Fdsl.Ast.List_lit (List.map expr_of_dval e.args))))
        trace)

let parse_args source =
  match Fdsl.Parse.expr source with
  | Error e -> Error (Format.asprintf "%a" Fdsl.Parse.pp_error e)
  | Ok expr -> (
      match Fdsl.Eval.eval_expr (Fdsl.Eval.host ()) [] expr with
      | Dval.List args -> Ok args
      | other -> Error ("expected an argument list, got " ^ Dval.to_string other)
      | exception Fdsl.Eval.Error m -> Error m)

let load path =
  try
    let lines =
      In_channel.with_open_text path In_channel.input_lines
    in
    let events =
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else
            match String.split_on_char '\t' line with
            | [ at; from; fn; args_src ] -> (
                match (float_of_string_opt at, parse_args args_src) with
                | Some at, Ok args -> Some (Ok { at; from; fn; args })
                | None, _ -> Some (Error ("bad timestamp in: " ^ line))
                | _, Error e -> Some (Error e))
            | _ -> Some (Error ("malformed line: " ^ line)))
        lines
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | Ok e :: rest -> collect (e :: acc) rest
      | Error m :: _ -> Error m
    in
    collect [] events
  with Sys_error m -> Error m

(* --- Replay ------------------------------------------------------------ *)

let replay ?(seed = 42) system (app : Bundle.app) trace =
  let engine = Engine.create ~seed () in
  let samples = ref [] in
  let errors = ref 0 in
  let validation_rate = ref None in
  let spec_rate = ref None in
  Engine.run engine (fun () ->
      let rng = Engine.rng () in
      let net =
        Net.Transport.create ~jitter_sigma:0.05 ~rng:(Rng.split rng) ()
      in
      let data = app.seed (Rng.split rng) in
      let invoke, finish =
        match system with
        | Runner.Radical | Runner.Radical_with _ ->
            let config =
              match system with
              | Runner.Radical_with c -> c
              | _ -> Radical.Framework.default_config
            in
            let fw =
              Radical.Framework.create ~config ~schema:app.schema ~net
                ~funcs:app.funcs ~data ()
            in
            ( (fun ~from fn args ->
                let o = Radical.Framework.invoke fw ~from fn args in
                (o.latency, Result.is_error o.value)),
              fun () ->
                let st = Radical.Server.stats (Radical.Framework.server fw) in
                let checked = st.validated + st.mismatched in
                if checked > 0 then
                  validation_rate :=
                    Some (float_of_int st.validated /. float_of_int checked);
                Radical.Framework.stop fw )
        | Runner.Central | Runner.Local | Runner.Geo _ | Runner.Naive_edge
        | Runner.Validate_per_read ->
            let b =
              match system with
              | Runner.Central ->
                  Radical.Baselines.centralized ~net ~funcs:app.funcs ~data ()
              | Runner.Local ->
                  Radical.Baselines.local ~locations:Location.user_locations
                    ~funcs:app.funcs ~data ()
              | Runner.Geo replicas ->
                  Radical.Baselines.geo_replicated ~replicas
                    ~locations:Location.user_locations ~funcs:app.funcs ~data ()
              | Runner.Naive_edge ->
                  Radical.Baselines.naive_edge ~funcs:app.funcs ~data ()
              | Runner.Validate_per_read ->
                  Radical.Baselines.validate_per_read ~funcs:app.funcs ~data ()
              | Runner.Radical | Runner.Radical_with _ -> assert false
            in
            ( (fun ~from fn args ->
                let o = Radical.Baselines.invoke b ~from fn args in
                (o.latency, Result.is_error o.value)),
              fun () -> () )
      in
      let outstanding = ref 0 in
      let all_done = Ivar.create () in
      List.iter
        (fun e ->
          incr outstanding;
          Engine.schedule ~at:e.at (fun () ->
              Engine.spawn ~name:"replay" (fun () ->
                  let latency, is_error = invoke ~from:e.from e.fn e.args in
                  if is_error then incr errors;
                  samples :=
                    { Runner.s_loc = e.from; s_fn = e.fn; s_latency = latency }
                    :: !samples;
                  decr outstanding;
                  if !outstanding = 0 then Ivar.try_fill all_done () |> ignore)))
        trace;
      if !outstanding > 0 then Ivar.read all_done;
      finish ());
  {
    Runner.samples = List.rev !samples;
    validation_rate = !validation_rate;
    spec_rate = !spec_rate;
    errors = !errors;
  }
