(** Types for the gradual typechecker.

    The DSL is dynamically typed at runtime (storage holds arbitrary
    {!Dval.t}); the typechecker gives registration-time diagnostics in
    the style of gradual typing: [TAny] is consistent with everything,
    while precise types catch real shape errors (string concatenation of
    an int, field access on a non-record, arithmetic on storage values
    whose schema says string, ...). *)

type t =
  | TAny
  | TUnit
  | TBool
  | TInt
  | TStr
  | TList of t
  | TRecord of (string * t) list

val pp : Format.formatter -> t -> unit

val consistent : t -> t -> bool
(** Gradual consistency: [TAny] matches anything; lists elementwise;
    records on their common fields (width subtyping both ways). *)

val join : t -> t -> t
(** Least informative common type of two branches: equal types stay,
    lists/records join structurally, anything else becomes [TAny]. *)

val of_dval : Dval.t -> t
(** The precise type of a concrete value (used to type seed data). *)
