(** Compiler from the DSL to the deterministic VM.

    The moral equivalent of `rustc --target wasm32-unknown-unknown` in
    the paper's pipeline. Every expression compiles to code leaving one
    reference on the operand stack (ints are boxed at expression
    boundaries, unboxed inside arithmetic). [And]/[Or] compile to
    short-circuit branches so compiled code agrees with {!Eval} even
    when operands have effects.

    [Time_now] and [Random_int] compile to the forbidden wasi imports,
    so a function using them produces a module that
    {!Wasm.Validate.check} rejects — which is how Radical's registration
    step enforces determinism. *)

exception Unsupported of string
(** Raised on [Declare], which only occurs in analyzer-derived
    functions; those are evaluated, never compiled. *)

val compile : Ast.func -> Wasm.Wmodule.t
(** The module exports one function named after the source function;
    its imports list is exactly the set of host calls the code uses. *)
