exception Unsupported of string

open Wasm.Instr

type ctx = { mutable n_locals : int }

let fresh ctx =
  let slot = ctx.n_locals in
  ctx.n_locals <- ctx.n_locals + 1;
  slot

let to_i64 = Call_host "dval.to_i64"

let of_i64 = Call_host "dval.of_i64"

let of_bool = Call_host "dval.of_bool"

let truthy = Call_host "dval.truthy"

let arith_binop : Ast.binop -> Wasm.Instr.binop option = function
  | Add -> Some Add
  | Sub -> Some Sub
  | Mul -> Some Mul
  | Div -> Some Div_s
  | Mod -> Some Rem_s
  | Lt -> Some Lt_s
  | Gt -> Some Gt_s
  | Le -> Some Le_s
  | Ge -> Some Ge_s
  | Eq | Ne | And | Or -> None

let is_comparison : Ast.binop -> bool = function
  | Lt | Gt | Le | Ge -> true
  | Add | Sub | Mul | Div | Mod | Eq | Ne | And | Or -> false

(* Every [emit] produces code that pushes exactly one reference. *)
let rec emit ctx env (e : Ast.expr) : t list =
  match e with
  | Unit -> [ Ref_const Dval.Unit ]
  | Bool b -> [ Ref_const (Dval.Bool b) ]
  | Int i -> [ Ref_const (Dval.Int i) ]
  | Str s -> [ Ref_const (Dval.Str s) ]
  | Input x | Var x -> (
      match List.assoc_opt x env with
      | Some slot -> [ Local_get slot ]
      | None -> raise (Unsupported ("unbound variable " ^ x)))
  | Let (x, v, b) ->
      let slot = fresh ctx in
      emit ctx env v @ [ Local_set slot ] @ emit ctx ((x, slot) :: env) b
  | Seq [] -> [ Ref_const Dval.Unit ]
  | Seq es ->
      let rec go = function
        | [ last ] -> emit ctx env last
        | e :: rest -> emit ctx env e @ [ Drop ] @ go rest
        | [] -> assert false
      in
      go es
  | If (c, t, e) ->
      emit ctx env c @ [ truthy; If (emit ctx env t, emit ctx env e) ]
  | Binop (Eq, a, b) ->
      emit ctx env a @ emit ctx env b @ [ Call_host "dval.eq"; of_bool ]
  | Binop (Ne, a, b) ->
      emit ctx env a @ emit ctx env b @ [ Call_host "dval.eq"; I64_eqz; of_bool ]
  | Binop (And, a, b) ->
      emit ctx env a
      @ [ truthy; If (emit ctx env b @ [ truthy ], [ I64_const 0L ]); of_bool ]
  | Binop (Or, a, b) ->
      emit ctx env a
      @ [ truthy; If ([ I64_const 1L ], emit ctx env b @ [ truthy ]); of_bool ]
  | Binop (op, a, b) -> (
      match arith_binop op with
      | Some w_op ->
          emit ctx env a @ [ to_i64 ] @ emit ctx env b
          @ [ to_i64; I64_binop w_op; (if is_comparison op then of_bool else of_i64) ]
      | None -> assert false)
  | Not e -> emit ctx env e @ [ truthy; I64_eqz; of_bool ]
  | Str_of_int e -> emit ctx env e @ [ to_i64; Call_host "str.of_i64" ]
  | Concat [] -> [ Ref_const (Dval.Str "") ]
  | Concat (first :: rest) ->
      emit ctx env first
      @ List.concat_map
          (fun e -> emit ctx env e @ [ Call_host "str.concat" ])
          rest
  | List_lit es ->
      [ Call_host "list.empty" ]
      @ List.concat_map
          (fun e -> emit ctx env e @ [ Call_host "list.append" ])
          es
  | Append (l, x) -> emit ctx env l @ emit ctx env x @ [ Call_host "list.append" ]
  | Prepend (l, x) ->
      emit ctx env l @ emit ctx env x @ [ Call_host "list.prepend" ]
  | Concat_list (a, b) ->
      emit ctx env a @ emit ctx env b @ [ Call_host "list.concat" ]
  | Take (l, n) ->
      emit ctx env l @ emit ctx env n @ [ to_i64; Call_host "list.take" ]
  | Length l -> emit ctx env l @ [ Call_host "list.len"; of_i64 ]
  | Nth (l, i) -> emit ctx env l @ emit ctx env i @ [ to_i64; Call_host "list.get" ]
  | Record_lit fs ->
      [ Call_host "record.new" ]
      @ List.concat_map
          (fun (k, v) ->
            (Ref_const (Dval.Str k) :: emit ctx env v)
            @ [ Call_host "record.set" ])
          fs
  | Field (e, name) ->
      emit ctx env e @ [ Ref_const (Dval.Str name); Call_host "record.get" ]
  | Set_field (e, name, v) ->
      emit ctx env e
      @ (Ref_const (Dval.Str name) :: emit ctx env v)
      @ [ Call_host "record.set" ]
  | Read k -> emit ctx env k @ [ Call_host "storage.read" ]
  | Write (k, v) ->
      emit ctx env k @ emit ctx env v @ [ Call_host "storage.write" ]
  | Foreach (x, l, body) ->
      let lst = fresh ctx in
      let idx = fresh ctx in
      let len = fresh ctx in
      let acc = fresh ctx in
      let x_slot = fresh ctx in
      emit ctx env l
      @ [
          Local_set lst;
          Call_host "list.empty";
          Local_set acc;
          I64_const 0L;
          Local_set idx;
          Local_get lst;
          Call_host "list.len";
          Local_set len;
          Block
            [
              Loop
                ([
                   Local_get idx;
                   Local_get len;
                   I64_binop Ge_s;
                   Br_if 1;
                   Local_get lst;
                   Local_get idx;
                   Call_host "list.get";
                   Local_set x_slot;
                   Local_get acc;
                 ]
                @ emit ctx ((x, x_slot) :: env) body
                @ [
                    Call_host "list.append";
                    Local_set acc;
                    Local_get idx;
                    I64_const 1L;
                    I64_binop Add;
                    Local_set idx;
                    Br 0;
                  ]);
            ];
          Local_get acc;
        ]
  | Compute (ms, e) ->
      [ I64_const (Int64.of_float (ms *. 1000.0)); Call_host "cpu.burn"; Drop ]
      @ emit ctx env e
  | Opaque e -> emit ctx env e
  | Time_now -> [ Call_host "wasi.clock_time_get"; of_i64 ]
  | Random_int n ->
      [ I64_const (Int64.of_int n); Call_host "wasi.random_get"; of_i64 ]
  | Declare _ ->
      raise (Unsupported "Declare occurs only in derived f^rw functions")
  | External (svc, payload) ->
      (Ref_const (Dval.Str svc) :: emit ctx env payload)
      @ [ Call_host "external.call" ]

let collect_imports body =
  let acc = ref [] in
  let add name = if not (List.mem name !acc) then acc := name :: !acc in
  let rec go = function
    | Call_host name -> add name
    | Block b | Loop b -> List.iter go b
    | If (t, e) ->
        List.iter go t;
        List.iter go e
    | I64_const _ | I64_binop _ | I64_eqz | Ref_const _ | Local_get _
    | Local_set _ | Local_tee _ | Drop | Br _ | Br_if _ | Return | Call _ | Nop
    | Unreachable ->
        ()
  in
  List.iter go body;
  List.sort String.compare !acc

let compile (f : Ast.func) =
  let ctx = { n_locals = List.length f.params } in
  let env = List.mapi (fun i x -> (x, i)) f.params in
  let body = emit ctx env f.body in
  Wasm.Wmodule.create
    ~funcs:
      [
        {
          Wasm.Wmodule.fn_name = f.fn_name;
          n_params = List.length f.params;
          n_locals = ctx.n_locals - List.length f.params;
          body;
        };
      ]
    ~imports:(collect_imports body)
