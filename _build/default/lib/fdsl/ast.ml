type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Gt
  | Le
  | Ge
  | And
  | Or

type decl = Decl_read | Decl_write

type expr =
  | Unit
  | Bool of bool
  | Int of int64
  | Str of string
  | Input of string
  | Var of string
  | Let of string * expr * expr
  | Seq of expr list
  | If of expr * expr * expr
  | Binop of binop * expr * expr
  | Not of expr
  | Str_of_int of expr
  | Concat of expr list
  | List_lit of expr list
  | Append of expr * expr
  | Prepend of expr * expr
  | Concat_list of expr * expr
  | Take of expr * expr
  | Length of expr
  | Nth of expr * expr
  | Record_lit of (string * expr) list
  | Field of expr * string
  | Set_field of expr * string * expr
  | Read of expr
  | Write of expr * expr
  | Foreach of string * expr * expr
  | Compute of float * expr
  | Opaque of expr
  | Time_now
  | Random_int of int
  | Declare of decl * expr
  | External of string * expr

type func = { fn_name : string; params : string list; body : expr }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.fprintf fmt "%Ld" i
  | Str s -> Format.fprintf fmt "%S" s
  | Input x -> Format.fprintf fmt "input:%s" x
  | Var x -> Format.pp_print_string fmt x
  | Let (x, v, b) -> Format.fprintf fmt "@[<2>let %s =@ %a in@ %a@]" x pp v pp b
  | Seq es ->
      Format.fprintf fmt "@[<2>{%a}@]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
        es
  | If (c, t, e) ->
      Format.fprintf fmt "@[<2>if %a@ then %a@ else %a@]" pp c pp t pp e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp a (binop_name op) pp b
  | Not e -> Format.fprintf fmt "!(%a)" pp e
  | Str_of_int e -> Format.fprintf fmt "str(%a)" pp e
  | Concat es ->
      Format.fprintf fmt "concat(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
        es
  | List_lit es ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
        es
  | Append (l, x) -> Format.fprintf fmt "append(%a, %a)" pp l pp x
  | Prepend (l, x) -> Format.fprintf fmt "prepend(%a, %a)" pp l pp x
  | Concat_list (a, b) -> Format.fprintf fmt "(%a @@ %a)" pp a pp b
  | Take (l, n) -> Format.fprintf fmt "take(%a, %a)" pp l pp n
  | Length l -> Format.fprintf fmt "len(%a)" pp l
  | Nth (l, i) -> Format.fprintf fmt "%a[%a]" pp l pp i
  | Record_lit fs ->
      let pp_field f (k, v) = Format.fprintf f "%s=%a" k pp v in
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
           pp_field)
        fs
  | Field (e, name) -> Format.fprintf fmt "%a.%s" pp e name
  | Set_field (e, name, v) -> Format.fprintf fmt "%a.%s<-%a" pp e name pp v
  | Read k -> Format.fprintf fmt "read(%a)" pp k
  | Write (k, v) -> Format.fprintf fmt "write(%a, %a)" pp k pp v
  | Foreach (x, l, b) ->
      Format.fprintf fmt "@[<2>foreach %s in %a:@ %a@]" x pp l pp b
  | Compute (ms, e) -> Format.fprintf fmt "compute(%.1fms, %a)" ms pp e
  | Opaque e -> Format.fprintf fmt "opaque(%a)" pp e
  | Time_now -> Format.pp_print_string fmt "time_now()"
  | Random_int n -> Format.fprintf fmt "random_int(%d)" n
  | Declare (Decl_read, k) -> Format.fprintf fmt "declare_read(%a)" pp k
  | Declare (Decl_write, k) -> Format.fprintf fmt "declare_write(%a)" pp k
  | External (svc, payload) -> Format.fprintf fmt "external(%s, %a)" svc pp payload

let pp_func fmt f =
  Format.fprintf fmt "@[<2>fn %s(%a) =@ %a@]" f.fn_name
    (Format.pp_print_list
       ~pp_sep:(fun fm () -> Format.fprintf fm ",@ ")
       Format.pp_print_string)
    f.params pp f.body

let rec contains_effects = function
  | Read _ | Write _ | Declare _ | Compute _ | External _ -> true
  | Unit | Bool _ | Int _ | Str _ | Input _ | Var _ | Time_now | Random_int _ ->
      false
  | Let (_, v, b) -> contains_effects v || contains_effects b
  | Seq es | Concat es | List_lit es -> List.exists contains_effects es
  | If (a, b, c) ->
      contains_effects a || contains_effects b || contains_effects c
  | Binop (_, a, b)
  | Append (a, b)
  | Prepend (a, b)
  | Concat_list (a, b)
  | Take (a, b)
  | Nth (a, b)
  | Foreach (_, a, b) ->
      contains_effects a || contains_effects b
  | Not e | Str_of_int e | Length e | Field (e, _) | Opaque e ->
      contains_effects e
  | Set_field (a, _, b) -> contains_effects a || contains_effects b
  | Record_lit fs -> List.exists (fun (_, e) -> contains_effects e) fs
