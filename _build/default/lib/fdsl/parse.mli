(** Concrete syntax for handlers — write functions as text instead of
    building {!Ast.expr} values.

    {v
    fn upvote(post) {
      compute 16.0 {
        let p = read("post:" ++ post);
        write("post:" ++ post, setf(p, score, p.score + 1));
        p.score + 1
      }
    }
    v}

    Grammar sketch (precedence low → high):
    - a block [{ e1; e2; ... }] is a sequence whose value is the last
      expression; [let x = e;] binds for the rest of the block
    - [||], [&&], comparisons ([== != < > <= >=]), [++] (string
      concatenation), [+ -], [* / %], unary [!]
    - postfix: [.field] access, [\[index\]] list indexing
    - builtins: [read(k)], [write(k, v)], [take(l, n)], [len(l)],
      [append(l, x)], [prepend(l, x)], [extend(l1, l2)], [str(i)],
      [setf(r, field, v)], [external(name, payload)], [opaque(e)],
      [time_now()], [random_int(n)]
    - control: [if c { ... } else { ... }], [foreach x in l { ... }],
      [compute MS { ... }]
    - literals: integers, ["strings"], [true], [false], [()],
      [\[e1, e2\]], records [{ field: e, ... }]

    Function and parameter names are identifiers (letters, digits and
    underscores, not starting with a digit). [#] comments run to end of
    line. Errors carry line and column. *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

val program : string -> (Ast.func list, error) result
(** Parse a whole source file of [fn] definitions. *)

val func : string -> (Ast.func, error) result
(** Parse exactly one [fn] definition. *)

val expr : string -> (Ast.expr, error) result
(** Parse a standalone expression (for tests and tooling). *)

val to_source : Ast.expr -> string
(** Print back to parseable concrete syntax, conservatively
    parenthesized: [expr (to_source e) = Ok e] for every expressible
    [e]. [Input] prints like [Var] (the two are semantically
    identical); [Declare] and empty record literals have no surface
    syntax and raise [Invalid_argument]. *)

val func_to_source : Ast.func -> string
