type t =
  | TAny
  | TUnit
  | TBool
  | TInt
  | TStr
  | TList of t
  | TRecord of (string * t) list

let rec pp fmt = function
  | TAny -> Format.pp_print_string fmt "any"
  | TUnit -> Format.pp_print_string fmt "unit"
  | TBool -> Format.pp_print_string fmt "bool"
  | TInt -> Format.pp_print_string fmt "int"
  | TStr -> Format.pp_print_string fmt "str"
  | TList t -> Format.fprintf fmt "list(%a)" pp t
  | TRecord fs ->
      let pp_field f (k, v) = Format.fprintf f "%s: %a" k pp v in
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
           pp_field)
        fs

let rec consistent a b =
  match (a, b) with
  | TAny, _ | _, TAny -> true
  | TUnit, TUnit | TBool, TBool | TInt, TInt | TStr, TStr -> true
  | TList x, TList y -> consistent x y
  | TRecord xs, TRecord ys ->
      List.for_all
        (fun (k, tx) ->
          match List.assoc_opt k ys with
          | Some ty -> consistent tx ty
          | None -> true)
        xs
  | (TUnit | TBool | TInt | TStr | TList _ | TRecord _), _ -> false

let rec join a b =
  match (a, b) with
  | x, y when x = y -> x
  | TAny, _ | _, TAny -> TAny
  | TList x, TList y -> TList (join x y)
  | TRecord xs, TRecord ys ->
      TRecord
        (List.filter_map
           (fun (k, tx) ->
             match List.assoc_opt k ys with
             | Some ty -> Some (k, join tx ty)
             | None -> None)
           xs)
  (* Absent storage keys read as Unit, so unit joins benignly. *)
  | TUnit, t | t, TUnit -> t
  | _ -> TAny

let rec of_dval = function
  | Dval.Unit -> TUnit
  | Dval.Bool _ -> TBool
  | Dval.Int _ -> TInt
  | Dval.Str _ -> TStr
  | Dval.List [] -> TList TAny
  | Dval.List (x :: xs) ->
      TList (List.fold_left (fun acc v -> join acc (of_dval v)) (of_dval x) xs)
  | Dval.Record fs -> TRecord (List.map (fun (k, v) -> (k, of_dval v)) fs)
