(** Gradual typechecking of handlers against a storage schema.

    A schema maps key prefixes to the type stored under them — the moral
    equivalent of declaring your DynamoDB tables. Keys whose static
    prefix resolves to exactly one schema entry get its type; everything
    else is [TAny] and checks pass gradually. Reported errors are real:
    a handler that concatenates an int, reads a field off a string, or
    writes a value inconsistent with the key's declared type is rejected
    at registration time instead of trapping in production. *)

type schema = (string * Types.t) list
(** [(prefix, type)] pairs; the longest prefix compatible with a key's
    statically known prefix wins. *)

type error = { fn_name : string; message : string }

val pp_error : Format.formatter -> error -> unit

val check :
  ?schema:schema ->
  ?param_types:(string * Types.t) list ->
  Ast.func ->
  (Types.t, error) result
(** Infer the function's result type. Unlisted parameters are [TAny].
    An empty schema still catches shape errors between literals and
    operations. *)

val check_all :
  ?schema:schema -> Ast.func list -> (unit, error list) result
(** Check a whole application; collects every failing function. *)
