(** Reference evaluator for the DSL.

    Defines the language's semantics; the compiled VM code must agree
    with it (property-tested). It is also the engine behind derived
    [f^rw] functions: the analyzer's residual programs are ordinary DSL
    expressions evaluated against a host whose [read] hits the near-user
    cache and whose [declare] records accesses. *)

exception Error of string
(** Dynamic type errors, unbound variables, division by zero, etc. *)

type host = {
  read : string -> Dval.t;
  write : string -> Dval.t -> unit;
  compute : float -> unit;
  declare : Ast.decl -> string -> unit;
  time_now : unit -> int64;
  random_int : int -> int64;
  external_call : string -> Dval.t -> Dval.t;
}

val host :
  ?read:(string -> Dval.t) ->
  ?write:(string -> Dval.t -> unit) ->
  ?compute:(float -> unit) ->
  ?declare:(Ast.decl -> string -> unit) ->
  ?time_now:(unit -> int64) ->
  ?random_int:(int -> int64) ->
  ?external_call:(string -> Dval.t -> Dval.t) ->
  unit ->
  host
(** Unspecified components default to: reads return [Dval.Unit], writes
    and declares are dropped, compute is a no-op, the two
    nondeterministic sources raise [Error], and external calls raise
    [Error] unless a service binding is supplied. *)

val truthy : Dval.t -> bool
(** [false], [0], [()], [""] and [[]] are falsy; records are truthy. *)

val eval : host -> Ast.func -> Dval.t list -> Dval.t
(** Run a function on positional arguments. Raises [Error] on arity
    mismatch or any dynamic fault. *)

val eval_expr : host -> (string * Dval.t) list -> Ast.expr -> Dval.t
(** Evaluate an expression under an environment binding inputs and
    variables (inputs and vars share the namespace here). *)
