open Types

type schema = (string * Types.t) list

type error = { fn_name : string; message : string }

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.fn_name e.message

exception Fail of string

let fail fmt = Format.kasprintf (fun s -> raise (Fail s)) fmt

let expect what ty expected =
  if not (consistent ty expected) then
    fail "%s: expected %a, found %a" what Types.pp expected Types.pp ty

(* The statically known prefix of a key expression: a string literal is
   complete; a concatenation starting with one is a prefix; anything
   else is unknown. *)
let static_prefix (e : Ast.expr) =
  match e with
  | Ast.Str s -> Some s
  | Ast.Concat (Ast.Str s :: _) -> Some s
  | _ -> None

let schema_type schema key_expr =
  match static_prefix key_expr with
  | None -> TAny
  | Some prefix -> (
      let matches =
        List.filter
          (fun (p, _) ->
            String.length p <= String.length prefix
            && String.sub prefix 0 (String.length p) = p
            || String.length prefix < String.length p
               && String.sub p 0 (String.length prefix) = prefix)
          schema
      in
      match matches with
      | [] -> TAny
      | (_, t) :: rest ->
          if List.for_all (fun (_, t') -> t' = t) rest then t else TAny)

let rec infer schema env (e : Ast.expr) : Types.t =
  let infer_ = infer schema env in
  match e with
  | Unit -> TUnit
  | Bool _ -> TBool
  | Int _ -> TInt
  | Str _ -> TStr
  | Input x | Var x -> (
      match List.assoc_opt x env with
      | Some t -> t
      | None -> fail "unbound variable %s" x)
  | Let (x, v, b) ->
      let tv = infer_ v in
      infer schema ((x, tv) :: env) b
  | Seq es -> List.fold_left (fun _ e -> infer_ e) TUnit es
  | If (c, t, e) ->
      (* Any type is a valid condition (truthiness). *)
      let _ = infer_ c in
      join (infer_ t) (infer_ e)
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) ->
      expect "left operand of arithmetic" (infer_ a) TInt;
      expect "right operand of arithmetic" (infer_ b) TInt;
      TInt
  | Binop ((Lt | Gt | Le | Ge), a, b) ->
      expect "left operand of comparison" (infer_ a) TInt;
      expect "right operand of comparison" (infer_ b) TInt;
      TBool
  | Binop ((Eq | Ne | And | Or), a, b) ->
      let _ = infer_ a and _ = infer_ b in
      TBool
  | Not e ->
      let _ = infer_ e in
      TBool
  | Str_of_int e ->
      expect "str_of_int argument" (infer_ e) TInt;
      TStr
  | Concat es ->
      List.iter (fun e -> expect "concat part" (infer_ e) TStr) es;
      TStr
  | List_lit es ->
      TList (List.fold_left (fun acc e -> join acc (infer_ e)) TAny es)
  | Append (l, x) | Prepend (l, x) ->
      let tl = infer_ l in
      expect "list operand" tl (TList TAny);
      let elem = match tl with TList t -> t | _ -> TAny in
      TList (join elem (infer_ x))
  | Concat_list (a, b) ->
      let ta = infer_ a and tb = infer_ b in
      expect "left list" ta (TList TAny);
      expect "right list" tb (TList TAny);
      join ta tb
  | Take (l, n) ->
      let tl = infer_ l in
      expect "take list" tl (TList TAny);
      expect "take count" (infer_ n) TInt;
      tl
  | Length l ->
      expect "length argument" (infer_ l) (TList TAny);
      TInt
  | Nth (l, i) ->
      let tl = infer_ l in
      expect "nth list" tl (TList TAny);
      expect "nth index" (infer_ i) TInt;
      (match tl with TList t -> t | _ -> TAny)
  | Record_lit fs -> TRecord (List.map (fun (k, e) -> (k, infer_ e)) fs)
  | Field (e, name) -> (
      match infer_ e with
      | TRecord fs -> (
          match List.assoc_opt name fs with
          | Some t -> t
          | None -> fail "record has no field %S" name)
      | TAny -> TAny
      | t -> fail "field access .%s on non-record %a" name Types.pp t)
  | Set_field (e, name, v) -> (
      let tv = infer_ v in
      match infer_ e with
      | TRecord fs ->
          TRecord
            (if List.mem_assoc name fs then
               List.map (fun (k, t) -> if k = name then (k, tv) else (k, t)) fs
             else fs @ [ (name, tv) ])
      | TAny -> TAny
      | t -> fail "field update .%s on non-record %a" name Types.pp t)
  | Read k ->
      expect "storage key" (infer_ k) TStr;
      schema_type schema k
  | Write (k, v) ->
      expect "storage key" (infer_ k) TStr;
      let tv = infer_ v in
      let declared = schema_type schema k in
      if not (consistent tv declared) then
        fail "write of %a to a key declared %a" Types.pp tv Types.pp declared;
      TUnit
  | Foreach (x, l, body) ->
      let tl = infer_ l in
      expect "foreach list" tl (TList TAny);
      let elem = match tl with TList t -> t | _ -> TAny in
      TList (infer schema ((x, elem) :: env) body)
  | Compute (_, e) -> infer_ e
  | Opaque e -> infer_ e
  | Time_now -> TInt
  | Random_int _ -> TInt
  | Declare (_, k) ->
      expect "declared key" (infer_ k) TStr;
      TUnit
  | External (_, payload) ->
      let _ = infer_ payload in
      TAny

let check ?(schema = []) ?(param_types = []) (f : Ast.func) =
  let env =
    List.map
      (fun p ->
        (p, Option.value ~default:TAny (List.assoc_opt p param_types)))
      f.params
  in
  match infer schema env f.body with
  | t -> Ok t
  | exception Fail message -> Error { fn_name = f.fn_name; message }

let check_all ?schema funcs =
  let errors =
    List.filter_map
      (fun f -> match check ?schema f with Ok _ -> None | Error e -> Some e)
      funcs
  in
  if errors = [] then Ok () else Error errors
