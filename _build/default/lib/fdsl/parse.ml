type error = { line : int; col : int; message : string }

let pp_error fmt e =
  Format.fprintf fmt "line %d, column %d: %s" e.line e.col e.message

type token =
  | INT of int64
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW_FN
  | KW_LET
  | KW_IF
  | KW_ELSE
  | KW_FOREACH
  | KW_IN
  | KW_COMPUTE
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ASSIGN
  | PLUSPLUS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQEQ
  | NEQ
  | LEQ
  | GEQ
  | LT
  | GT
  | ANDAND
  | OROR
  | BANG
  | EOF

let token_name = function
  | INT _ -> "integer"
  | FLOAT _ -> "float"
  | STRING _ -> "string"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_FN -> "'fn'"
  | KW_LET -> "'let'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_FOREACH -> "'foreach'"
  | KW_IN -> "'in'"
  | KW_COMPUTE -> "'compute'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOT -> "'.'"
  | ASSIGN -> "'='"
  | PLUSPLUS -> "'++'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | LEQ -> "'<='"
  | GEQ -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"

exception Err of error

let err line col fmt =
  Format.kasprintf (fun message -> raise (Err { line; col; message })) fmt

(* --- Lexer ------------------------------------------------------------ *)

type ptok = { tok : token; t_line : int; t_col : int }

let keywords =
  [
    ("fn", KW_FN); ("let", KW_LET); ("if", KW_IF); ("else", KW_ELSE);
    ("foreach", KW_FOREACH); ("in", KW_IN); ("compute", KW_COMPUTE);
    ("true", KW_TRUE); ("false", KW_FALSE);
  ]
  [@@ocamlformat "disable"]

let lex source =
  let n = String.length source in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 and pos = ref 0 in
  let emit tok t_line t_col = toks := { tok; t_line; t_col } :: !toks in
  let advance () =
    (if source.[!pos] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr pos
  in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !pos < n do
    let c = source.[!pos] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !pos < n && source.[!pos] <> '\n' do
        advance ()
      done
    else if c >= '0' && c <= '9' then begin
      let start = !pos in
      while !pos < n && source.[!pos] >= '0' && source.[!pos] <= '9' do
        advance ()
      done;
      if !pos < n && source.[!pos] = '.' && !pos + 1 < n
         && source.[!pos + 1] >= '0' && source.[!pos + 1] <= '9'
      then begin
        advance ();
        while !pos < n && source.[!pos] >= '0' && source.[!pos] <= '9' do
          advance ()
        done;
        emit (FLOAT (float_of_string (String.sub source start (!pos - start)))) l0 c0
      end
      else
        emit (INT (Int64.of_string (String.sub source start (!pos - start)))) l0 c0
    end
    else if is_ident_char c && not (c >= '0' && c <= '9') then begin
      let start = !pos in
      while !pos < n && is_ident_char source.[!pos] do
        advance ()
      done;
      let word = String.sub source start (!pos - start) in
      emit
        (match List.assoc_opt word keywords with
        | Some kw -> kw
        | None -> IDENT word)
        l0 c0
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        let ch = source.[!pos] in
        if ch = '"' then begin
          advance ();
          closed := true
        end
        else if ch = '\\' && !pos + 1 < n then begin
          advance ();
          (match source.[!pos] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | other -> Buffer.add_char buf other);
          advance ()
        end
        else begin
          Buffer.add_char buf ch;
          advance ()
        end
      done;
      if not !closed then err l0 c0 "unterminated string literal";
      emit (STRING (Buffer.contents buf)) l0 c0
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub source !pos 2) else None
      in
      let emit2 tok =
        advance ();
        advance ();
        emit tok l0 c0
      in
      match two with
      | Some "++" -> emit2 PLUSPLUS
      | Some "==" -> emit2 EQEQ
      | Some "!=" -> emit2 NEQ
      | Some "<=" -> emit2 LEQ
      | Some ">=" -> emit2 GEQ
      | Some "&&" -> emit2 ANDAND
      | Some "||" -> emit2 OROR
      | _ -> (
          advance ();
          let one tok = emit tok l0 c0 in
          match c with
          | '(' -> one LPAREN
          | ')' -> one RPAREN
          | '{' -> one LBRACE
          | '}' -> one RBRACE
          | '[' -> one LBRACKET
          | ']' -> one RBRACKET
          | ',' -> one COMMA
          | ';' -> one SEMI
          | ':' -> one COLON
          | '.' -> one DOT
          | '=' -> one ASSIGN
          | '+' -> one PLUS
          | '-' -> one MINUS
          | '*' -> one STAR
          | '/' -> one SLASH
          | '%' -> one PERCENT
          | '<' -> one LT
          | '>' -> one GT
          | '!' -> one BANG
          | other -> err l0 c0 "unexpected character %C" other)
    end
  done;
  emit EOF !line !col;
  Array.of_list (List.rev !toks)

(* --- Parser ----------------------------------------------------------- *)

type state = { toks : ptok array; mutable i : int }

let peek st = st.toks.(st.i).tok

let peek2 st =
  if st.i + 1 < Array.length st.toks then st.toks.(st.i + 1).tok else EOF

let here st = (st.toks.(st.i).t_line, st.toks.(st.i).t_col)

let advance st = st.i <- st.i + 1

let expect st tok =
  if peek st = tok then advance st
  else
    let l, c = here st in
    err l c "expected %s, found %s" (token_name tok) (token_name (peek st))

let ident st =
  match peek st with
  | IDENT x ->
      advance st;
      x
  | other ->
      let l, c = here st in
      err l c "expected an identifier, found %s" (token_name other)

let number st =
  match peek st with
  | FLOAT f ->
      advance st;
      f
  | INT i ->
      advance st;
      Int64.to_float i
  | other ->
      let l, c = here st in
      err l c "expected a number, found %s" (token_name other)

(* Builtin call arities; [setf]'s field and [external]'s service name are
   handled specially in [primary]. *)
let rec expr st : Ast.expr = or_expr st

and or_expr st =
  let left = and_expr st in
  if peek st = OROR then begin
    advance st;
    Ast.Binop (Or, left, or_expr st)
  end
  else left

and and_expr st =
  let left = cmp_expr st in
  if peek st = ANDAND then begin
    advance st;
    Ast.Binop (And, left, and_expr st)
  end
  else left

and cmp_expr st =
  let left = concat_expr st in
  let op =
    match peek st with
    | EQEQ -> Some Ast.Eq
    | NEQ -> Some Ast.Ne
    | LT -> Some Ast.Lt
    | GT -> Some Ast.Gt
    | LEQ -> Some Ast.Le
    | GEQ -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
      advance st;
      Ast.Binop (op, left, concat_expr st)

and concat_expr st =
  let first = add_expr st in
  if peek st = PLUSPLUS then begin
    let parts = ref [ first ] in
    while peek st = PLUSPLUS do
      advance st;
      parts := add_expr st :: !parts
    done;
    Ast.Concat (List.rev !parts)
  end
  else first

and add_expr st =
  let left = ref (mul_expr st) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek st with
    | PLUS ->
        advance st;
        left := Ast.Binop (Add, !left, mul_expr st)
    | MINUS ->
        advance st;
        left := Ast.Binop (Sub, !left, mul_expr st)
    | _ -> continue_loop := false
  done;
  !left

and mul_expr st =
  let left = ref (unary_expr st) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek st with
    | STAR ->
        advance st;
        left := Ast.Binop (Mul, !left, unary_expr st)
    | SLASH ->
        advance st;
        left := Ast.Binop (Div, !left, unary_expr st)
    | PERCENT ->
        advance st;
        left := Ast.Binop (Mod, !left, unary_expr st)
    | _ -> continue_loop := false
  done;
  !left

and unary_expr st =
  if peek st = BANG then begin
    advance st;
    Ast.Not (unary_expr st)
  end
  else postfix_expr st

and postfix_expr st =
  let e = ref (primary st) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek st with
    | DOT ->
        advance st;
        e := Ast.Field (!e, ident st)
    | LBRACKET ->
        advance st;
        let idx = expr st in
        expect st RBRACKET;
        e := Ast.Nth (!e, idx)
    | _ -> continue_loop := false
  done;
  !e

and call_args st =
  expect st LPAREN;
  if peek st = RPAREN then begin
    advance st;
    []
  end
  else begin
    let args = ref [ expr st ] in
    while peek st = COMMA do
      advance st;
      args := expr st :: !args
    done;
    expect st RPAREN;
    List.rev !args
  end

and builtin st name =
  let l, c = here st in
  let args n =
    let got = call_args st in
    if List.length got <> n then
      err l c "%s expects %d argument(s), got %d" name n (List.length got);
    got
  in
  match name with
  | "read" -> ( match args 1 with [ k ] -> Ast.Read k | _ -> assert false)
  | "write" -> (
      match args 2 with [ k; v ] -> Ast.Write (k, v) | _ -> assert false)
  | "take" -> (
      match args 2 with [ l; n ] -> Ast.Take (l, n) | _ -> assert false)
  | "len" -> ( match args 1 with [ l ] -> Ast.Length l | _ -> assert false)
  | "append" -> (
      match args 2 with [ l; x ] -> Ast.Append (l, x) | _ -> assert false)
  | "prepend" -> (
      match args 2 with [ l; x ] -> Ast.Prepend (l, x) | _ -> assert false)
  | "extend" -> (
      match args 2 with [ a; b ] -> Ast.Concat_list (a, b) | _ -> assert false)
  | "str" -> ( match args 1 with [ e ] -> Ast.Str_of_int e | _ -> assert false)
  | "opaque" -> ( match args 1 with [ e ] -> Ast.Opaque e | _ -> assert false)
  | "time_now" ->
      let _ = args 0 in
      Ast.Time_now
  | "random_int" -> (
      match args 1 with
      | [ Ast.Int n ] -> Ast.Random_int (Int64.to_int n)
      | _ -> err l c "random_int expects an integer literal")
  | "setf" ->
      expect st LPAREN;
      let r = expr st in
      expect st COMMA;
      let field = ident st in
      expect st COMMA;
      let v = expr st in
      expect st RPAREN;
      Ast.Set_field (r, field, v)
  | "external" -> (
      expect st LPAREN;
      match peek st with
      | STRING svc ->
          advance st;
          expect st COMMA;
          let payload = expr st in
          expect st RPAREN;
          Ast.External (svc, payload)
      | _ -> err l c "external expects a string service name")
  | _ -> err l c "unknown function %S" name

and primary st : Ast.expr =
  match peek st with
  | MINUS -> (
      advance st;
      match peek st with
      | INT i ->
          advance st;
          Ast.Int (Int64.neg i)
      | other ->
          let l, c = here st in
          err l c "expected a number after '-', found %s" (token_name other))
  | INT i ->
      advance st;
      Ast.Int i
  | STRING s ->
      advance st;
      Ast.Str s
  | KW_TRUE ->
      advance st;
      Ast.Bool true
  | KW_FALSE ->
      advance st;
      Ast.Bool false
  | KW_IF ->
      advance st;
      let c = expr st in
      let t = block st in
      let e =
        if peek st = KW_ELSE then begin
          advance st;
          block st
        end
        else Ast.Unit
      in
      Ast.If (c, t, e)
  | KW_FOREACH ->
      advance st;
      let x = ident st in
      expect st KW_IN;
      let l = expr st in
      let body = block st in
      Ast.Foreach (x, l, body)
  | KW_COMPUTE ->
      advance st;
      let ms = number st in
      let body = block st in
      Ast.Compute (ms, body)
  | IDENT name -> (
      advance st;
      if peek st = LPAREN then builtin st name else Ast.Var name)
  | LPAREN ->
      advance st;
      if peek st = RPAREN then begin
        advance st;
        Ast.Unit
      end
      else begin
        let e = expr st in
        expect st RPAREN;
        e
      end
  | LBRACKET ->
      advance st;
      if peek st = RBRACKET then begin
        advance st;
        Ast.List_lit []
      end
      else begin
        let items = ref [ expr st ] in
        while peek st = COMMA do
          advance st;
          items := expr st :: !items
        done;
        expect st RBRACKET;
        Ast.List_lit (List.rev !items)
      end
  | LBRACE -> (
      (* Record literal if it starts with [ident :], else a block. *)
      match (peek2 st, st.toks.(min (st.i + 2) (Array.length st.toks - 1)).tok) with
      | IDENT _, COLON ->
          advance st;
          let field () =
            let k = ident st in
            expect st COLON;
            (k, expr st)
          in
          let fields = ref [ field () ] in
          while peek st = COMMA do
            advance st;
            fields := field () :: !fields
          done;
          expect st RBRACE;
          Ast.Record_lit (List.rev !fields)
      | _ -> block st)
  | other ->
      let l, c = here st in
      err l c "expected an expression, found %s" (token_name other)

and block st : Ast.expr =
  expect st LBRACE;
  let rec stmts () =
    match peek st with
    | RBRACE -> Ast.Unit
    | KW_LET ->
        advance st;
        let x = ident st in
        expect st ASSIGN;
        let v = expr st in
        expect st SEMI;
        Ast.Let (x, v, stmts ())
    | _ -> (
        let e = expr st in
        match peek st with
        | SEMI ->
            advance st;
            if peek st = RBRACE then e
            else begin
              match stmts () with
              | Ast.Seq rest -> Ast.Seq (e :: rest)
              | rest -> Ast.Seq [ e; rest ]
            end
        | _ -> e)
  in
  let body = stmts () in
  expect st RBRACE;
  body

let parse_func st : Ast.func =
  expect st KW_FN;
  let fn_name = ident st in
  expect st LPAREN;
  let params =
    if peek st = RPAREN then []
    else begin
      let ps = ref [ ident st ] in
      while peek st = COMMA do
        advance st;
        ps := ident st :: !ps
      done;
      List.rev !ps
    end
  in
  expect st RPAREN;
  let body = block st in
  { Ast.fn_name; params; body }

let run source f =
  match f { toks = lex source; i = 0 } with
  | v -> Ok v
  | exception Err e -> Error e

let program source =
  run source (fun st ->
      let fns = ref [] in
      while peek st <> EOF do
        fns := parse_func st :: !fns
      done;
      List.rev !fns)

let func source =
  run source (fun st ->
      let f = parse_func st in
      expect st EOF;
      f)

let expr source =
  run source (fun st ->
      let e = expr st in
      expect st EOF;
      e)

(* --- Printing back to concrete syntax --------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let binop_symbol : Ast.binop -> string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  [@@ocamlformat "disable"]

(* Conservatively parenthesized, so precedence never needs thought; [Let]
   and [Seq] print as blocks. [Declare] has no surface syntax (it only
   occurs in analyzer-derived functions); [Input] prints like [Var] (the
   parser cannot distinguish them -- the two are semantically identical). *)
let rec to_source (e : Ast.expr) =
  match e with
  | Unit -> "()"
  | Bool true -> "true"
  | Bool false -> "false"
  | Int i -> Int64.to_string i
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Input x | Var x -> x
  | Let _ | Seq _ -> block_source e
  | If (c, t, e) ->
      Printf.sprintf "if %s %s else %s" (atom c) (block_source t)
        (block_source e)
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (atom a) (binop_symbol op) (atom b)
  | Not e -> Printf.sprintf "!%s" (atom e)
  | Str_of_int e -> Printf.sprintf "str(%s)" (to_source e)
  | Concat parts ->
      Printf.sprintf "(%s)" (String.concat " ++ " (List.map atom parts))
  | List_lit es ->
      Printf.sprintf "[%s]" (String.concat ", " (List.map to_source es))
  | Append (l, x) -> Printf.sprintf "append(%s, %s)" (to_source l) (to_source x)
  | Prepend (l, x) ->
      Printf.sprintf "prepend(%s, %s)" (to_source l) (to_source x)
  | Concat_list (a, b) ->
      Printf.sprintf "extend(%s, %s)" (to_source a) (to_source b)
  | Take (l, n) -> Printf.sprintf "take(%s, %s)" (to_source l) (to_source n)
  | Length l -> Printf.sprintf "len(%s)" (to_source l)
  | Nth (l, i) -> Printf.sprintf "%s[%s]" (atom l) (to_source i)
  | Record_lit [] -> invalid_arg "Parse.to_source: empty record literal"
  | Record_lit fs ->
      Printf.sprintf "{%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s: %s" k (to_source v)) fs))
  | Field (e, name) -> Printf.sprintf "%s.%s" (atom e) name
  | Set_field (e, name, v) ->
      Printf.sprintf "setf(%s, %s, %s)" (to_source e) name (to_source v)
  | Read k -> Printf.sprintf "read(%s)" (to_source k)
  | Write (k, v) -> Printf.sprintf "write(%s, %s)" (to_source k) (to_source v)
  | Foreach (x, l, b) ->
      Printf.sprintf "foreach %s in %s %s" x (atom l) (block_source b)
  | Compute (ms, e) -> Printf.sprintf "compute %f %s" ms (block_source e)
  | Opaque e -> Printf.sprintf "opaque(%s)" (to_source e)
  | Time_now -> "time_now()"
  | Random_int n -> Printf.sprintf "random_int(%d)" n
  | External (svc, payload) ->
      Printf.sprintf "external(\"%s\", %s)" (escape svc) (to_source payload)
  | Declare _ -> invalid_arg "Parse.to_source: Declare has no surface syntax"

and atom e =
  match e with
  | Ast.Unit | Ast.Bool _ | Ast.Str _ | Ast.Input _ | Ast.Var _
  | Ast.Record_lit (_ :: _) | Ast.List_lit _ ->
      to_source e
  | Ast.Int i when Int64.compare i 0L >= 0 -> to_source e
  | _ -> Printf.sprintf "(%s)" (to_source e)

and block_source e =
  let rec stmts (e : Ast.expr) =
    match e with
    | Let (x, v, b) -> Printf.sprintf "let %s = %s; %s" x (to_source v) (stmts b)
    | Seq [] -> stmts Ast.Unit
    | Seq es ->
        String.concat "; " (List.map to_source es)
    | other -> to_source other
  in
  Printf.sprintf "{ %s }" (stmts e)

let func_to_source (f : Ast.func) =
  Printf.sprintf "fn %s(%s) %s" f.fn_name
    (String.concat ", " f.params)
    (block_source f.body)
