exception Error of string

type host = {
  read : string -> Dval.t;
  write : string -> Dval.t -> unit;
  compute : float -> unit;
  declare : Ast.decl -> string -> unit;
  time_now : unit -> int64;
  random_int : int -> int64;
  external_call : string -> Dval.t -> Dval.t;
}

let host ?(read = fun _ -> Dval.Unit) ?(write = fun _ _ -> ())
    ?(compute = fun _ -> ()) ?(declare = fun _ _ -> ())
    ?(time_now = fun () -> raise (Error "time_now: nondeterministic source"))
    ?(random_int = fun _ -> raise (Error "random_int: nondeterministic source"))
    ?(external_call =
      fun svc _ -> raise (Error ("no external service bound: " ^ svc)))
    () =
  { read; write; compute; declare; time_now; random_int; external_call }

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let truthy = function
  | Dval.Bool b -> b
  | Dval.Int i -> i <> 0L
  | Dval.Unit -> false
  | Dval.Str s -> s <> ""
  | Dval.List l -> l <> []
  | Dval.Record _ -> true

let as_int = function
  | Dval.Int i -> i
  | v -> fail "expected an int, found %s" (Dval.to_string v)

let as_str = function
  | Dval.Str s -> s
  | v -> fail "expected a string, found %s" (Dval.to_string v)

let as_list = function
  | Dval.List l -> l
  | v -> fail "expected a list, found %s" (Dval.to_string v)

let arith op a b =
  let open Int64 in
  match (op : Ast.binop) with
  | Add -> Dval.Int (add a b)
  | Sub -> Dval.Int (sub a b)
  | Mul -> Dval.Int (mul a b)
  | Div -> if b = 0L then fail "division by zero" else Dval.Int (div a b)
  | Mod -> if b = 0L then fail "modulo by zero" else Dval.Int (rem a b)
  | Lt -> Dval.Bool (compare a b < 0)
  | Gt -> Dval.Bool (compare a b > 0)
  | Le -> Dval.Bool (compare a b <= 0)
  | Ge -> Dval.Bool (compare a b >= 0)
  | Eq | Ne | And | Or -> assert false

let rec eval_expr h env (e : Ast.expr) =
  match e with
  | Unit -> Dval.Unit
  | Bool b -> Dval.Bool b
  | Int i -> Dval.Int i
  | Str s -> Dval.Str s
  | Input x | Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> fail "unbound variable %s" x)
  | Let (x, v, b) ->
      let v = eval_expr h env v in
      eval_expr h ((x, v) :: env) b
  | Seq es ->
      List.fold_left (fun _ e -> eval_expr h env e) Dval.Unit es
  | If (c, t, e) ->
      if truthy (eval_expr h env c) then eval_expr h env t
      else eval_expr h env e
  | Binop (Eq, a, b) ->
      Dval.Bool (Dval.equal (eval_expr h env a) (eval_expr h env b))
  | Binop (Ne, a, b) ->
      Dval.Bool (not (Dval.equal (eval_expr h env a) (eval_expr h env b)))
  | Binop (And, a, b) ->
      Dval.Bool (truthy (eval_expr h env a) && truthy (eval_expr h env b))
  | Binop (Or, a, b) ->
      Dval.Bool (truthy (eval_expr h env a) || truthy (eval_expr h env b))
  | Binop (op, a, b) ->
      let a = as_int (eval_expr h env a) in
      let b = as_int (eval_expr h env b) in
      arith op a b
  | Not e -> Dval.Bool (not (truthy (eval_expr h env e)))
  | Str_of_int e -> Dval.Str (Int64.to_string (as_int (eval_expr h env e)))
  | Concat es ->
      Dval.Str (String.concat "" (List.map (fun e -> as_str (eval_expr h env e)) es))
  | List_lit es -> Dval.List (List.map (eval_expr h env) es)
  | Append (l, x) ->
      let l = as_list (eval_expr h env l) in
      let x = eval_expr h env x in
      Dval.List (l @ [ x ])
  | Prepend (l, x) ->
      let l = as_list (eval_expr h env l) in
      let x = eval_expr h env x in
      Dval.List (x :: l)
  | Concat_list (a, b) ->
      let a = as_list (eval_expr h env a) in
      let b = as_list (eval_expr h env b) in
      Dval.List (a @ b)
  | Take (l, n) ->
      let l = as_list (eval_expr h env l) in
      let n = Int64.to_int (as_int (eval_expr h env n)) in
      Dval.List (List.filteri (fun i _ -> i < n) l)
  | Length l -> Dval.Int (Int64.of_int (List.length (as_list (eval_expr h env l))))
  | Nth (l, i) ->
      let l = as_list (eval_expr h env l) in
      let i = Int64.to_int (as_int (eval_expr h env i)) in
      if i < 0 || i >= List.length l then fail "index %d out of bounds" i
      else List.nth l i
  | Record_lit fs ->
      Dval.Record (List.map (fun (k, e) -> (k, eval_expr h env e)) fs)
  | Field (e, name) -> (
      match Dval.field_opt (eval_expr h env e) name with
      | Some v -> v
      | None -> fail "no field %s" name)
  | Set_field (e, name, v) -> (
      let r = eval_expr h env e in
      let v = eval_expr h env v in
      try Dval.set_field r name v with Invalid_argument m -> fail "%s" m)
  | Read k -> h.read (as_str (eval_expr h env k))
  | Write (k, v) ->
      let k = as_str (eval_expr h env k) in
      let v = eval_expr h env v in
      h.write k v;
      Dval.Unit
  | Foreach (x, l, body) ->
      let l = as_list (eval_expr h env l) in
      Dval.List (List.map (fun v -> eval_expr h ((x, v) :: env) body) l)
  | Compute (ms, e) ->
      h.compute ms;
      eval_expr h env e
  | Opaque e -> eval_expr h env e
  | Time_now -> Dval.Int (h.time_now ())
  | Random_int n -> Dval.Int (h.random_int n)
  | Declare (d, k) ->
      h.declare d (as_str (eval_expr h env k));
      Dval.Unit
  | External (svc, payload) -> h.external_call svc (eval_expr h env payload)

let eval h (f : Ast.func) args =
  if List.length args <> List.length f.params then
    fail "%s expects %d arguments, got %d" f.fn_name (List.length f.params)
      (List.length args);
  eval_expr h (List.combine f.params args) f.body
