lib/fdsl/compile.mli: Ast Wasm
