lib/fdsl/compile.ml: Ast Dval Int64 List String Wasm
