lib/fdsl/types.ml: Dval Format List
