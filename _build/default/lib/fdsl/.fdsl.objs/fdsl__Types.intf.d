lib/fdsl/types.mli: Dval Format
