lib/fdsl/typecheck.ml: Ast Format List Option String Types
