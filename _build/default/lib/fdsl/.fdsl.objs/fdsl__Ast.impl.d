lib/fdsl/ast.ml: Format List
