lib/fdsl/parse.ml: Array Ast Buffer Format Int64 List Printf String
