lib/fdsl/parse.mli: Ast Format
