lib/fdsl/eval.ml: Ast Dval Format Int64 List String
