lib/fdsl/eval.mli: Ast Dval
