lib/fdsl/typecheck.mli: Ast Format Types
