lib/fdsl/ast.mli: Format
