(** Write-once synchronization variables for fibers.

    An ivar starts empty; [fill] transitions it to full exactly once and
    wakes every fiber blocked in [read]. Reads after the fill return
    immediately. The canonical building block for RPC replies. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if already full. *)

val try_fill : 'a t -> 'a -> bool
(** Like [fill] but returns [false] instead of raising when full. *)

val read : 'a t -> 'a
(** Block the calling fiber until the ivar is full, then return its value. *)

val peek : 'a t -> 'a option

val is_full : 'a t -> bool
