(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Used for the Raft log and metric sample buffers. Indices are
    0-based; bounds errors raise [Invalid_argument]. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val truncate : 'a t -> int -> unit
(** [truncate t n] drops elements so that [length t = n]. No-op if
    already shorter. *)

val drop : 'a t -> int -> unit
(** [drop t n] removes the first [n] elements (clamped). *)

val last : 'a t -> 'a option

val to_list : 'a t -> 'a list

val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val of_list : 'a list -> 'a t
