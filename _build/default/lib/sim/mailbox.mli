(** Unbounded FIFO channels between fibers.

    [send] never blocks; [recv] blocks the calling fiber until a message is
    available. Messages are delivered in send order and each message is
    received by exactly one fiber (waiters are served FIFO). *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a

val recv_opt : 'a t -> 'a option
(** Non-blocking receive. *)

val recv_timeout : 'a t -> float -> 'a option
(** [recv_timeout t d] blocks for at most virtual duration [d]; returns
    [None] on timeout. *)

val length : 'a t -> int
(** Number of queued, undelivered messages. *)
