type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let check t i name =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (size %d)" name i t.size)

let push t x =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let cap' = if cap = 0 then 8 else cap * 2 in
    let data' = Array.make cap' x in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let truncate t n = if n < t.size then t.size <- max 0 n

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let to_list t = List.init t.size (fun i -> t.data.(i))

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let drop t n =
  let n = max 0 (min n t.size) in
  if n > 0 then begin
    Array.blit t.data n t.data 0 (t.size - n);
    t.size <- t.size - n
  end
