type 'a waiter = { deliver : 'a -> unit; mutable live : bool }

type 'a t = { messages : 'a Queue.t; waiters : 'a waiter Queue.t }

let create () = { messages = Queue.create (); waiters = Queue.create () }

let rec next_live_waiter t =
  match Queue.take_opt t.waiters with
  | None -> None
  | Some w -> if w.live then Some w else next_live_waiter t

let send t v =
  match next_live_waiter t with
  | Some w ->
      w.live <- false;
      w.deliver v
  | None -> Queue.push v t.messages

let recv_opt t = Queue.take_opt t.messages

let recv t =
  match Queue.take_opt t.messages with
  | Some v -> v
  | None ->
      Engine.suspend (fun resume ->
          Queue.push { deliver = resume; live = true } t.waiters)

let recv_timeout t d =
  match Queue.take_opt t.messages with
  | Some v -> Some v
  | None ->
      Engine.suspend (fun resume ->
          let w = { deliver = (fun v -> resume (Some v)); live = true } in
          Queue.push w t.waiters;
          Engine.schedule ~at:(Engine.now () +. d) (fun () ->
              if w.live then begin
                w.live <- false;
                resume None
              end))

let length t = Queue.length t.messages
