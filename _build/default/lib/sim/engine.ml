open Effect
open Effect.Deep

type event = { time : float; seq : int; run : unit -> unit }

type t = {
  mutable now : float;
  mutable seq : int;
  events : event Pqueue.t;
  root_rng : Rng.t;
  mutable fibers : int;
  mutable processed : int;
  mutable failure : exn option;
}

exception Not_running
exception Fiber_error of string * exn

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 42) () =
  {
    now = 0.0;
    seq = 0;
    events = Pqueue.create ~cmp:compare_event;
    root_rng = Rng.create seed;
    fibers = 0;
    processed = 0;
    failure = None;
  }

(* The engine currently executing; set for the duration of [run]. The
   simulator is strictly single-domain, so a plain ref is safe. *)
let current : t option ref = ref None

let get () = match !current with Some t -> t | None -> raise Not_running

let push t ~at run =
  let time = Float.max at t.now in
  Pqueue.push t.events { time; seq = t.seq; run };
  t.seq <- t.seq + 1

let schedule ~at run = push (get ()) ~at run

let now () = (get ()).now

let rng () = (get ()).root_rng

let events_processed t = t.processed

let live_fibers t = t.fibers

let sleep d = perform (Sleep d)

let yield () = perform (Sleep 0.0)

let suspend register = perform (Suspend register)

let run_fiber t name f =
  t.fibers <- t.fibers + 1;
  match_with f ()
    {
      retc = (fun () -> t.fibers <- t.fibers - 1);
      exnc =
        (fun e ->
          t.fibers <- t.fibers - 1;
          if t.failure = None then t.failure <- Some (Fiber_error (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, _) continuation) ->
                  push t ~at:(t.now +. Float.max 0.0 d) (fun () ->
                      continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let resumed = ref false in
                  let resume v =
                    if !resumed then
                      invalid_arg "Engine.suspend: resumed twice"
                    else begin
                      resumed := true;
                      push t ~at:t.now (fun () -> continue k v)
                    end
                  in
                  register resume)
          | _ -> None);
    }

let spawn ?(name = "fiber") f =
  let t = get () in
  push t ~at:t.now (fun () -> run_fiber t name f)

let run ?until t main =
  (match !current with
  | Some _ -> invalid_arg "Engine.run: an engine is already running"
  | None -> ());
  current := Some t;
  let finish () = current := None in
  (try
     push t ~at:t.now (fun () -> run_fiber t "main" main);
     let continue_loop = ref true in
     while !continue_loop && t.failure = None do
       match Pqueue.peek t.events with
       | None -> continue_loop := false
       | Some ev -> (
           match until with
           | Some limit when ev.time > limit -> continue_loop := false
           | _ ->
               ignore (Pqueue.pop t.events);
               t.now <- ev.time;
               t.processed <- t.processed + 1;
               ev.run ())
     done
   with e ->
     finish ();
     raise e);
  finish ();
  match t.failure with
  | Some e ->
      t.failure <- None;
      raise e
  | None -> ()
