lib/sim/vec.mli:
