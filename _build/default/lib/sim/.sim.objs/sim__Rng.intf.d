lib/sim/rng.mli:
