lib/sim/engine.ml: Effect Float Int Pqueue Rng
