lib/sim/pqueue.mli:
