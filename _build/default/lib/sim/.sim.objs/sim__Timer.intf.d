lib/sim/timer.mli:
