lib/sim/ivar.mli:
