lib/sim/timer.ml: Engine
