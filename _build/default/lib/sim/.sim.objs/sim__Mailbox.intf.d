lib/sim/mailbox.mli:
