(** Deterministic discrete-event simulation engine.

    The engine multiplexes lightweight cooperative fibers over a virtual
    clock using OCaml effect handlers. A fiber runs until it blocks —
    [sleep]ing, or [suspend]ing on an external wakeup (ivars, mailboxes,
    RPC replies) — at which point the engine pops the next pending event
    in (time, sequence) order. Same-time events run in FIFO spawn/wakeup
    order, so runs are fully deterministic given the seed.

    All operations other than [create] and [run] must be called from
    within a running engine (inside a fiber, or from a callback invoked by
    the event loop); they raise [Not_running] otherwise. *)

type t

exception Not_running

exception Fiber_error of string * exn
(** Raised out of [run] when a fiber raised; carries the fiber name. *)

val create : ?seed:int -> unit -> t

val run : ?until:float -> t -> (unit -> unit) -> unit
(** [run t main] spawns [main] as the first fiber and processes events to
    quiescence (or until the virtual clock would pass [until]). Re-raises
    the first fiber failure as [Fiber_error]. Engines are single-shot per
    call but may be [run] repeatedly; virtual time persists across calls. *)

val now : unit -> float
(** Current virtual time (milliseconds by convention). *)

val sleep : float -> unit
(** Block the calling fiber for a virtual duration (clamped at 0). *)

val yield : unit -> unit
(** Reschedule the calling fiber behind already-pending same-time events. *)

val spawn : ?name:string -> (unit -> unit) -> unit
(** Start a new fiber at the current time. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] blocks the calling fiber and calls [register resume].
    Invoking [resume v] (at most once) schedules the fiber to continue with
    [v] at the then-current virtual time. *)

val schedule : at:float -> (unit -> unit) -> unit
(** Run a callback (not a fiber: it must not block) at an absolute time. *)

val rng : unit -> Rng.t
(** The engine's root generator. Subsystems should [Rng.split] it. *)

val events_processed : t -> int

val live_fibers : t -> int
(** Fibers spawned but not yet finished (includes blocked fibers). *)
