(* SplitMix64 (Steele, Lea, Flood 2014): a tiny, high-quality, splittable
   generator. State is a single 64-bit counter advanced by the golden-gamma
   constant; outputs are a finalizing hash of the state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Reject the sliver of the 62-bit range that would bias the modulus. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod n in
    if r - v + (n - 1) < 0 then loop () else v
  in
  loop ()

let float t x =
  (* 53 uniform bits into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t lo hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = float t 1.0 in
  (* 1 - u is in (0, 1], keeping log finite. *)
  -.mean *. log (1.0 -. u)

let lognormal t ~mu ~sigma =
  (* Box–Muller transform. *)
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
