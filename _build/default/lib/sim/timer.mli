(** Cancellable one-shot timers.

    The callback runs as a fresh fiber (it may block) when the virtual
    clock reaches the deadline, unless the timer was cancelled first. Used
    for write-intent expiry and RPC timeouts. *)

type t

val after : float -> (unit -> unit) -> t
(** [after d f] arms a timer that fires in virtual duration [d]. *)

val cancel : t -> unit
(** Idempotent; a no-op after the timer fired. *)

val fired : t -> bool

val cancelled : t -> bool
