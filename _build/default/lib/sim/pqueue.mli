(** Imperative binary min-heap priority queue.

    Ordering is given by the comparison function supplied at creation.
    Elements that compare equal are popped in unspecified relative order;
    callers that need FIFO tie-breaking should embed a sequence number in
    the element and in the comparison. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> 'a option

val length : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in unspecified order. *)
