type state = Armed | Fired | Cancelled

type t = { mutable state : state }

let after d f =
  let t = { state = Armed } in
  Engine.schedule ~at:(Engine.now () +. d) (fun () ->
      if t.state = Armed then begin
        t.state <- Fired;
        Engine.spawn ~name:"timer" f
      end);
  t

let cancel t = if t.state = Armed then t.state <- Cancelled

let fired t = t.state = Fired

let cancelled t = t.state = Cancelled
