(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows from one of these
    generators so that a run is fully reproducible from its seed. [split]
    derives an independent child stream, letting subsystems (network jitter,
    workload sampling, fault injection) evolve without perturbing each
    other's sequences. *)

type t

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. *)

val split : t -> t
(** Derive an independent generator; advances [t] by one step. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normally distributed sample; used for latency tails. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
