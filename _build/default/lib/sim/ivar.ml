type 'a state = Empty of ('a -> unit) list | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
      t.state <- Full v;
      (* Wake in FIFO order: waiters were consed, so reverse. *)
      List.iter (fun resume -> resume v) (List.rev waiters);
      true

let fill t v = if not (try_fill t v) then invalid_arg "Ivar.fill: already full"

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
      Engine.suspend (fun resume ->
          match t.state with
          | Full v -> resume v
          | Empty waiters -> t.state <- Empty (resume :: waiters))

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let is_full t = match t.state with Full _ -> true | Empty _ -> false
