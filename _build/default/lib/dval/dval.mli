(** Structured data values shared by the storage system, the caches, the
    function DSL and the deterministic VM's host heap.

    This is the universal currency of the reproduction: application
    handlers compute over [t], storage maps keys to versioned [t], and the
    VM manipulates [t] through opaque handles (in the spirit of
    WebAssembly externrefs). *)

type t =
  | Unit
  | Bool of bool
  | Int of int64
  | Str of string
  | List of t list
  | Record of (string * t) list

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val size_bytes : t -> int
(** Rough serialized size, used by the cost model. *)

val field : t -> string -> t
(** Record field access. Raises [Invalid_argument] on missing field or
    non-record. *)

val field_opt : t -> string -> t option

val set_field : t -> string -> t -> t
(** Functional record update; adds the field if absent. *)

(* Convenience constructors and accessors; the [to_*] functions raise
   [Invalid_argument] on a shape mismatch. *)

val int : int -> t

val to_int : t -> int64

val to_int_exn : t -> int

val to_str : t -> string

val to_bool : t -> bool

val to_list : t -> t list
