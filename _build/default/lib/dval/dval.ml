type t =
  | Unit
  | Bool of bool
  | Int of int64
  | Str of string
  | List of t list
  | Record of (string * t) list

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int64.equal x y
  | Str x, Str y -> String.equal x y
  | List xs, List ys -> List.equal equal xs ys
  | Record xs, Record ys ->
      List.equal
        (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
        xs ys
  | (Unit | Bool _ | Int _ | Str _ | List _ | Record _), _ -> false

let compare = Stdlib.compare

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.fprintf fmt "%Ld" i
  | Str s -> Format.fprintf fmt "%S" s
  | List xs ->
      Format.fprintf fmt "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
        xs
  | Record fs ->
      let pp_field f (k, v) = Format.fprintf f "%s=%a" k pp v in
      Format.fprintf fmt "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
           pp_field)
        fs

let to_string v = Format.asprintf "%a" pp v

let rec size_bytes = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Str s -> String.length s
  | List xs -> List.fold_left (fun acc v -> acc + size_bytes v + 2) 2 xs
  | Record fs ->
      List.fold_left
        (fun acc (k, v) -> acc + String.length k + size_bytes v + 4)
        2 fs

let field_opt v name =
  match v with Record fs -> List.assoc_opt name fs | _ -> None

let field v name =
  match field_opt v name with
  | Some x -> x
  | None ->
      invalid_arg
        (Printf.sprintf "Dval.field: no field %S in %s" name (to_string v))

let set_field v name x =
  match v with
  | Record fs ->
      if List.mem_assoc name fs then
        Record (List.map (fun (k, w) -> if k = name then (k, x) else (k, w)) fs)
      else Record (fs @ [ (name, x) ])
  | _ -> invalid_arg "Dval.set_field: not a record"

let int i = Int (Int64.of_int i)

let to_int = function
  | Int i -> i
  | v -> invalid_arg ("Dval.to_int: " ^ to_string v)

let to_int_exn v = Int64.to_int (to_int v)

let to_str = function
  | Str s -> s
  | v -> invalid_arg ("Dval.to_str: " ^ to_string v)

let to_bool = function
  | Bool b -> b
  | v -> invalid_arg ("Dval.to_bool: " ^ to_string v)

let to_list = function
  | List xs -> xs
  | v -> invalid_arg ("Dval.to_list: " ^ to_string v)
