let no_external svc _ =
  raise (Invalid_argument ("no external service bound: " ^ svc))

let run ?(external_call = no_external) (entry : Registry.entry) ~read ~write
    args : Proto.exec_result =
  let observed = ref [] in
  let written = ref [] in
  let host =
    {
      Wasm.Host.external_call;
      read =
        (fun k ->
          match List.assoc_opt k !written with
          | Some v -> v
          | None ->
              let v = Option.value ~default:Dval.Unit (read k) in
              if not (List.mem_assoc k !observed) then
                observed := (k, v) :: !observed;
              v);
      write =
        (fun k v ->
          write k v;
          written := (k, v) :: List.remove_assoc k !written);
      compute = Sim.Engine.sleep;
    }
  in
  let value =
    Wasm.Interp.run entry.modul ~host ~entry:entry.func.fn_name args
  in
  { value; observed = List.rev !observed; written = List.rev !written }

let on_kv ?external_call entry ~kv args =
  run ?external_call entry
    ~read:(fun k ->
      match Store.Kv.get kv k with
      | Some { value; _ } -> Some value
      | None -> None)
    ~write:(fun k v -> ignore (Store.Kv.put kv k v))
    args
