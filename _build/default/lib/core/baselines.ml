open Sim
module Transport = Net.Transport
module Location = Net.Location
module Kv = Store.Kv

type outcome = { value : (Dval.t, string) result; latency : float }

type kind =
  | Centralized of {
      net : Transport.t;
      svc : (string * Dval.t list, Proto.exec_result) Transport.service;
    }
  | Local of (Location.t * Kv.t) list
  | Geo of { replicas : Location.t list; kv : Kv.t }
  | Naive_edge of Kv.t (* app near user, every storage op crosses to VA *)
  | Validate_per_read of Kv.t
    (* the §1 "late reads" strawman: execute near user against a local
       replica, but block on a validation round trip to VA at every read *)

type t = {
  kind : kind;
  reg : Registry.t;
  invoke_overhead : float;
  primary_kv : Kv.t;
}

let make_registry funcs =
  let reg = Registry.create () in
  List.iter
    (fun f ->
      match Registry.register reg f with
      | Ok _ -> ()
      | Error e -> invalid_arg ("Baselines: " ^ e))
    funcs;
  reg

let find reg fn =
  match Registry.find reg fn with
  | Some e -> e
  | None -> invalid_arg ("Baselines.invoke: unknown function " ^ fn)

let centralized ?(invoke_overhead = 12.0) ~net ~funcs ~data () =
  let reg = make_registry funcs in
  let kv = Kv.create () in
  Kv.load kv data;
  let svc =
    Transport.serve net ~loc:Location.near_storage ~name:"baseline-app"
      (fun (fn, args) ->
        Engine.sleep invoke_overhead;
        Execute.on_kv (find reg fn) ~kv args)
  in
  { kind = Centralized { net; svc }; reg; invoke_overhead; primary_kv = kv }

let local ?(invoke_overhead = 12.0) ~locations ~funcs ~data () =
  let reg = make_registry funcs in
  let sites =
    List.map
      (fun loc ->
        let kv = Kv.create () in
        Kv.load kv data;
        (loc, kv))
      locations
  in
  let primary_kv =
    match List.assoc_opt Location.near_storage sites with
    | Some kv -> kv
    | None -> snd (List.hd sites)
  in
  { kind = Local sites; reg; invoke_overhead; primary_kv }

let geo_replicated ?(invoke_overhead = 12.0) ~replicas ~locations:_ ~funcs
    ~data () =
  let reg = make_registry funcs in
  let kv = Kv.create () in
  Kv.load kv data;
  { kind = Geo { replicas; kv }; reg; invoke_overhead; primary_kv = kv }

let naive_edge ?(invoke_overhead = 12.0) ~funcs ~data () =
  let reg = make_registry funcs in
  let kv = Kv.create () in
  Kv.load kv data;
  { kind = Naive_edge kv; reg; invoke_overhead; primary_kv = kv }

let validate_per_read ?(invoke_overhead = 12.0) ~funcs ~data () =
  let reg = make_registry funcs in
  let kv = Kv.create () in
  Kv.load kv data;
  { kind = Validate_per_read kv; reg; invoke_overhead; primary_kv = kv }

(* Strongly consistent geo-replicated storage: each operation reaches
   the nearest replica and then coordinates across the replica set. The
   PRAM bound (§2) makes the coordination term at least the largest
   inter-replica distance; we charge exactly that. *)
let geo_op_delay ~replicas ~from =
  let nearest =
    List.fold_left
      (fun acc r -> Float.min acc (Location.rtt from r))
      Float.infinity replicas
  in
  let coordination =
    List.fold_left
      (fun acc a ->
        List.fold_left (fun acc b -> Float.max acc (Location.rtt a b)) acc replicas)
      0.0 replicas
  in
  nearest +. coordination

let invoke t ~from fn args =
  let start = Engine.now () in
  let result =
    match t.kind with
    | Centralized { net; svc } -> Transport.call net ~from svc (fn, args)
    | Local sites ->
        let kv =
          match List.assoc_opt from sites with
          | Some kv -> kv
          | None -> invalid_arg ("Baselines.invoke: no local site at " ^ from)
        in
        Engine.sleep t.invoke_overhead;
        Execute.on_kv (find t.reg fn) ~kv args
    | Geo { replicas; kv } ->
        Engine.sleep t.invoke_overhead;
        let delay = geo_op_delay ~replicas ~from in
        Execute.run (find t.reg fn)
          ~read:(fun k ->
            Engine.sleep delay;
            match Kv.get kv k with
            | Some { value; _ } -> Some value
            | None -> None)
          ~write:(fun k v ->
            Engine.sleep delay;
            ignore (Kv.put kv k v))
          args
    | Naive_edge kv ->
        (* §2: the application moved near the user but the data stayed in
           VA — every storage operation pays the full user↔VA RTT. *)
        Engine.sleep t.invoke_overhead;
        let delay = Location.rtt from Location.near_storage in
        Execute.run (find t.reg fn)
          ~read:(fun k ->
            Engine.sleep delay;
            match Kv.get kv k with
            | Some { value; _ } -> Some value
            | None -> None)
          ~write:(fun k v ->
            Engine.sleep delay;
            ignore (Kv.put kv k v))
          args
    | Validate_per_read kv ->
        (* The late-reads strawman (§1): execution proceeds against a
           fast local copy, but each read must be validated against the
           primary as it happens — a blocking round trip that nothing
           overlaps. Writes also cross to VA. *)
        Engine.sleep t.invoke_overhead;
        let rtt = Location.rtt from Location.near_storage in
        Execute.run (find t.reg fn)
          ~read:(fun k ->
            Engine.sleep 0.5 (* local cache read *);
            Engine.sleep rtt (* per-read validation *);
            match Kv.peek kv k with
            | Some { value; _ } -> Some value
            | None -> None)
          ~write:(fun k v ->
            Engine.sleep rtt;
            ignore (Kv.put kv k v))
          args
  in
  { value = result.value; latency = Engine.now () -. start }

let primary t = t.primary_kv
