(* The LVI server's consensus-replicated lock store (the etcd role in
   Â§5.6): a Raft cluster whose state machine is a string KV holding one
   record per held lock. Instantiated once here so the cluster type can
   appear in interfaces (tests crash/restart nodes through it). *)

include Raft.Consensus.Make (Raft.Kvsm)
