(** Shared function-execution harness over a storage host.

    Runs a registered function's compiled module while recording the
    reads it observed and the writes it made — the raw material for both
    the protocol's responses and linearizability checking. Reads see the
    execution's own earlier writes. *)

val run :
  ?external_call:(string -> Dval.t -> Dval.t) ->
  Registry.entry ->
  read:(string -> Dval.t option) ->
  write:(string -> Dval.t -> unit) ->
  Dval.t list ->
  Proto.exec_result
(** [read] returning [None] is observed as [Dval.Unit]. [compute] burns
    virtual time via the engine. The default [external_call] rejects
    every service (functions that use none are unaffected). *)

val on_kv :
  ?external_call:(string -> Dval.t -> Dval.t) ->
  Registry.entry -> kv:Store.Kv.t -> Dval.t list -> Proto.exec_result
(** Execute directly against a versioned store, paying its access
    latency per operation and applying writes immediately. *)
