type entry = {
  func : Fdsl.Ast.func;
  modul : Wasm.Wmodule.t;
  derived : Analyzer.Derive.t option;
}

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 32

let register t (f : Fdsl.Ast.func) =
  if Hashtbl.mem t f.fn_name then
    Error (Printf.sprintf "%s: already registered" f.fn_name)
  else
    match Fdsl.Compile.compile f with
    | exception Fdsl.Compile.Unsupported reason ->
        Error (Printf.sprintf "%s: %s" f.fn_name reason)
    | modul -> (
        match Wasm.Validate.check_all modul with
        | Error e ->
            Error
              (Format.asprintf "%s: determinism validation failed: %a"
                 f.fn_name Wasm.Validate.pp_error e)
        | Ok () ->
            let derived =
              match Analyzer.Derive.derive f with
              | Ok d -> Some d
              | Error _ -> None
            in
            let entry = { func = f; modul; derived } in
            Hashtbl.replace t f.fn_name entry;
            Ok entry)

let register_manual t (f : Fdsl.Ast.func) ~rw_func =
  if Hashtbl.mem t f.fn_name then
    Error (Printf.sprintf "%s: already registered" f.fn_name)
  else
    match Fdsl.Compile.compile f with
    | exception Fdsl.Compile.Unsupported reason ->
        Error (Printf.sprintf "%s: %s" f.fn_name reason)
    | modul -> (
        match Wasm.Validate.check_all modul with
        | Error e ->
            Error
              (Format.asprintf "%s: determinism validation failed: %a"
                 f.fn_name Wasm.Validate.pp_error e)
        | Ok () -> (
            match Analyzer.Derive.manual ~source:f ~rw_func with
            | exception Invalid_argument m -> Error m
            | derived ->
                let entry = { func = f; modul; derived = Some derived } in
                Hashtbl.replace t f.fn_name entry;
                Ok entry))

let find t name = Hashtbl.find_opt t name

let names t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let analyzable_count t =
  Hashtbl.fold (fun _ e acc -> if e.derived <> None then acc + 1 else acc) t 0
