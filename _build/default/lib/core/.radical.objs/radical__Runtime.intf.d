lib/core/runtime.mli: Cache Dval Extsvc Lincheck Net Registry Server
