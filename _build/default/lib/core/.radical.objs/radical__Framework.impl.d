lib/core/framework.ml: Cache Extsvc Fdsl Format Lincheck List Net Registry Runtime Server Store
