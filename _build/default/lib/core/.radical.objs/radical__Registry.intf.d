lib/core/registry.mli: Analyzer Fdsl Wasm
