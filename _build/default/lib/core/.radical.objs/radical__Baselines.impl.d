lib/core/baselines.ml: Dval Engine Execute Float List Net Proto Registry Sim Store
