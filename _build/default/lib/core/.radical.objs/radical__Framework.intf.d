lib/core/framework.mli: Dval Extsvc Fdsl Lincheck Net Registry Runtime Server Store
