lib/core/raft_locks.ml: Raft
