lib/core/extsvc.mli: Dval
