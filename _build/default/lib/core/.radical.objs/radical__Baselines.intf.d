lib/core/baselines.mli: Dval Fdsl Net Store
