lib/core/runtime.ml: Analyzer Cache Dval Engine Extsvc Fdsl Ivar Lincheck List Logs Net Option Printf Proto Registry Server Sim Wasm
