lib/core/server.ml: Analyzer Dval Engine Execute Extsvc Fdsl Float Hashtbl List Logs Net Option Printf Proto Raft Raft_locks Registry Rng Sim Store String Timer
