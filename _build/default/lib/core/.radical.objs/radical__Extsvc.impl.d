lib/core/extsvc.ml: Dval Hashtbl Printf Sim
