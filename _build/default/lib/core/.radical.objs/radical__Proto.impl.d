lib/core/proto.ml: Dval Format List Net
