lib/core/execute.mli: Dval Proto Registry Store
