lib/core/proto.mli: Dval Format Net
