lib/core/registry.ml: Analyzer Fdsl Format Hashtbl List Printf String Wasm
