lib/core/execute.ml: Dval List Option Proto Registry Sim Store Wasm
