lib/core/server.mli: Extsvc Net Proto Raft_locks Registry Store
