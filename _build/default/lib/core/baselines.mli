(** The paper's comparison deployments.

    - {b Centralized} (the "primary-datacenter baseline", §5.3): the
      application runs only in VA next to the primary data; remote users
      pay their RTT to VA on every request, but storage accesses are
      fast.
    - {b Local} (the "inconsistent lower bound" — the red lines in
      Figures 1, 4, 5): an application instance per location against a
      local, *inconsistent* copy of the data. Best possible latency; no
      consistency.
    - {b Geo-replicated} (Figure 1): application instances everywhere
      against a strongly consistent geo-replicated store. Per the PRAM
      bound (§2), every storage operation pays the RTT to the nearest
      replica plus coordination across the replica set (modelled as the
      maximum inter-replica RTT), which is why this never beats the
      centralized baseline. *)

type outcome = { value : (Dval.t, string) result; latency : float }

type t

val centralized :
  ?invoke_overhead:float ->
  net:Net.Transport.t ->
  funcs:Fdsl.Ast.func list ->
  data:(string * Dval.t) list ->
  unit ->
  t

val local :
  ?invoke_overhead:float ->
  locations:Net.Location.t list ->
  funcs:Fdsl.Ast.func list ->
  data:(string * Dval.t) list ->
  unit ->
  t

val geo_replicated :
  ?invoke_overhead:float ->
  replicas:Net.Location.t list ->
  locations:Net.Location.t list ->
  funcs:Fdsl.Ast.func list ->
  data:(string * Dval.t) list ->
  unit ->
  t

val naive_edge :
  ?invoke_overhead:float ->
  funcs:Fdsl.Ast.func list ->
  data:(string * Dval.t) list ->
  unit ->
  t
(** §2's cautionary deployment: application instances near users with
    the datastore left centralized in VA — each storage operation pays
    the full user↔VA round trip. Used by the ablation bench. *)

val validate_per_read :
  ?invoke_overhead:float ->
  funcs:Fdsl.Ast.func list ->
  data:(string * Dval.t) list ->
  unit ->
  t
(** §1's "late reads" strawman: the application runs near the user
    against a local replica, but every read blocks on a validation
    round trip to the primary as it occurs — nothing overlaps. Shows
    why Radical validates the predicted set in one request instead. *)

val invoke : t -> from:Net.Location.t -> string -> Dval.t list -> outcome

val primary : t -> Store.Kv.t
(** The (single or per-VA) authoritative store; for [local], the VA
    replica. *)
