(** External services beyond storage (§3.5).

    A single Radical request can execute its function twice (speculation
    plus backup, or speculation plus deterministic re-execution), so any
    external service it calls must provide at-most-once semantics. Like
    Stripe's IdempotencyKey, every call carries a key — Radical derives
    it from the execution id and a per-execution call counter, so
    re-executions replay the same keys — and the service returns the
    recorded response instead of re-running its handler.

    Handlers must be deterministic functions of their payload for
    deterministic re-execution to remain sound; the registry records the
    first response and serves it for every duplicate. *)

type t

val create : unit -> t

val register : t -> name:string -> ?latency:float -> (Dval.t -> Dval.t) -> unit
(** Register a service handler (default latency 5.0 ms per call,
    charged also on deduplicated replays — the network round trip to the
    provider). Re-registering replaces the handler. *)

val call : t -> service:string -> key:string -> Dval.t -> (Dval.t, string) result
(** Invoke with an idempotency key. The handler runs at most once per
    key; duplicates get the recorded response. [Error] for an unknown
    service. *)

val handler_runs : t -> string -> int
(** Times the named service's handler actually executed. *)

val requests : t -> string -> int
(** Total call attempts, including deduplicated replays. *)

val dispatcher : t -> exec_id:string -> string -> Dval.t -> Dval.t
(** A per-execution dispatcher for wiring into a VM host: idempotency
    keys are [exec_id ^ ":" ^ call-sequence-number], so a deterministic
    re-execution regenerates exactly the same keys and the provider
    deduplicates. Raises [Invalid_argument] for an unknown service
    (surfacing as a VM trap). *)
