type service = {
  handler : Dval.t -> Dval.t;
  latency : float;
  responses : (string, Dval.t) Hashtbl.t; (* idempotency key -> response *)
  mutable runs : int;
  mutable calls : int;
}

type t = (string, service) Hashtbl.t

let create () = Hashtbl.create 8

let register t ~name ?(latency = 5.0) handler =
  Hashtbl.replace t name
    { handler; latency; responses = Hashtbl.create 64; runs = 0; calls = 0 }

let call t ~service ~key payload =
  match Hashtbl.find_opt t service with
  | None -> Error (Printf.sprintf "unknown external service %S" service)
  | Some s -> (
      s.calls <- s.calls + 1;
      Sim.Engine.sleep s.latency;
      match Hashtbl.find_opt s.responses key with
      | Some response -> Ok response (* at-most-once: replay the record *)
      | None ->
          let response = s.handler payload in
          Hashtbl.replace s.responses key response;
          s.runs <- s.runs + 1;
          Ok response)

let handler_runs t name =
  match Hashtbl.find_opt t name with Some s -> s.runs | None -> 0

let requests t name =
  match Hashtbl.find_opt t name with Some s -> s.calls | None -> 0

let dispatcher t ~exec_id =
  let n = ref 0 in
  fun service payload ->
    incr n;
    let key = Printf.sprintf "%s:%d" exec_id !n in
    match call t ~service ~key payload with
    | Ok v -> v
    | Error e -> raise (Invalid_argument e)
