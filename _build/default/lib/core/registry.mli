(** Function registration (§3.2 "function registration", §4).

    Registering a function runs the full toolchain: compile the DSL
    source to the deterministic VM, validate the module (rejecting
    nondeterministic imports — the paper's WasmTime configuration), and
    run the static analyzer to derive [f^rw]. Analysis failure is not
    fatal — the function is registered without a derived [f^rw] and
    every invocation falls back to near-storage execution (§3.3
    "Failure case"); a determinism violation is fatal. *)

type entry = {
  func : Fdsl.Ast.func;
  modul : Wasm.Wmodule.t; (** Compiled, validated module. *)
  derived : Analyzer.Derive.t option; (** [None]: unanalyzable. *)
}

type t

val create : unit -> t

val register : t -> Fdsl.Ast.func -> (entry, string) result

val register_manual :
  t -> Fdsl.Ast.func -> rw_func:Fdsl.Ast.func -> (entry, string) result
(** Register with a developer-provided [f^rw] instead of running the
    analyzer (§7) — for functions the symbolic execution cannot handle.
    The function itself still goes through compilation and determinism
    validation. *)

val find : t -> string -> entry option

val names : t -> string list
(** Registered function names, sorted. *)

val analyzable_count : t -> int
