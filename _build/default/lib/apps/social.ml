open Fdsl.Ast
open Appdsl

let user u = key "user:" u

let followers u = key "followers:" u

let follows u = key "follows:" u

let posts u = key "posts:" u

let timeline u = key "timeline:" u

(* Table 1: 213 ms median execution = 207 ms pbkdf2 + 1 cache read. *)
let login_fn =
  fn "social-login" [ "u"; "pw" ]
    (Let
       ( "acct",
         Read (user (Input "u")),
         Compute (207.0, Field (Var "acct", "pwhash") ==: Input "pw") ))

(* Table 1: 106 ms median execution = 46 ms compute + ~10 cache reads
   (followers, own posts, one timeline per follower; speculative writes
   are buffered and free). Dependent-read optimization: the follower
   list read feeds the timeline keys. *)
let post_fn =
  fn "social-post" [ "u"; "text" ]
    (Let
       ( "post",
         fields [ ("author", Input "u"); ("text", Input "text") ],
         Let
           ( "fs",
             Read (followers (Input "u")),
             Compute
               ( 46.0,
                 Seq
                   [
                     bump_list ~key:(posts (Input "u")) ~keep:50 (Var "post");
                     Foreach
                       ( "f",
                         If (Var "fs", Var "fs", List_lit []),
                         bump_list ~key:(timeline (Var "f")) ~keep:50
                           (Var "post") );
                     Var "post";
                   ] ) ) ))

(* Table 1: 16 ms = 4 ms compute + 2 cache reads. *)
let follow_fn =
  fn "social-follow" [ "u"; "target" ]
    (Compute
       ( 4.0,
         Seq
           [
             bump_list ~key:(follows (Input "u")) ~keep:200 (Input "target");
             bump_list ~key:(followers (Input "target")) ~keep:200 (Input "u");
             Bool true;
           ] ))

(* Table 1: 120 ms = 114 ms compute + 1 cache read; 80% of requests. *)
let timeline_fn =
  fn "social-timeline" [ "u" ]
    (Compute
       ( 114.0,
         Let
           ( "tl",
             Read (timeline (Input "u")),
             Take (If (Var "tl", Var "tl", List_lit []), int 20) ) ))

(* Table 1: 124 ms = 112 ms compute + 2 cache reads. *)
let profile_fn =
  fn "social-profile" [ "u" ]
    (Compute
       ( 112.0,
         fields
           [
             ("account", Read (user (Input "u")));
             ("recent", Take (Read (posts (Input "u")), int 10));
           ] ))

let functions = [ login_fn; post_fn; follow_fn; timeline_fn; profile_fn ]

let uid i = Printf.sprintf "u%d" i

let seed ?(n_users = 1000) ?(followers_per_user = 8) rng =
  let post_of u n =
    Dval.Record
      [ ("author", Dval.Str u); ("text", Dval.Str (Printf.sprintf "%s-post-%d" u n)) ]
  in
  List.concat
    (List.init n_users (fun i ->
         let u = uid i in
         let outgoing =
           List.init followers_per_user (fun _ ->
               uid (Sim.Rng.int rng n_users))
         in
         [
           ( "user:" ^ u,
             Dval.Record
               [ ("name", Dval.Str u); ("pwhash", Dval.Str ("hash-" ^ u)) ] );
           ("follows:" ^ u, Dval.List (List.map (fun f -> Dval.Str f) outgoing));
           ("posts:" ^ u, Dval.List (List.init 5 (post_of u)));
           ("timeline:" ^ u, Dval.List (List.init 10 (post_of ("seed-" ^ u))));
         ]))
  (* Follower lists are the transpose of the follows edges; build them
     from the same RNG stream by regenerating deterministically. *)
  |> fun base ->
  let followers_tbl = Hashtbl.create n_users in
  List.iter
    (fun (k, v) ->
      match (String.length k > 8 && String.sub k 0 8 = "follows:", v) with
      | true, Dval.List fs ->
          let u = String.sub k 8 (String.length k - 8) in
          List.iter
            (fun f ->
              let f = Dval.to_str f in
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt followers_tbl f)
              in
              Hashtbl.replace followers_tbl f (Dval.Str u :: prev))
            fs
      | _ -> ())
    base;
  base
  @ List.init n_users (fun i ->
        let u = uid i in
        ( "followers:" ^ u,
          Dval.List (Option.value ~default:[] (Hashtbl.find_opt followers_tbl u))
        ))

type gen = { users : Workload.Zipf.t; mix : string Workload.Mix.t; mutable seq : int }

let table1_mix =
  [
    ("social-timeline", 80.0);
    ("social-login", 9.5);
    ("social-profile", 9.5);
    ("social-post", 0.5);
    ("social-follow", 0.5);
  ]

let gen ?(n_users = 1000) ?(zipf_theta = 0.99) () =
  {
    users = Workload.Zipf.create ~n:n_users ~theta:zipf_theta;
    mix = Workload.Mix.create table1_mix;
    seq = 0;
  }

let next g rng =
  let u = uid (Workload.Zipf.sample g.users rng) in
  g.seq <- g.seq + 1;
  match Workload.Mix.sample g.mix rng with
  | "social-timeline" -> ("social-timeline", [ Dval.Str u ])
  | "social-login" -> ("social-login", [ Dval.Str u; Dval.Str ("hash-" ^ u) ])
  | "social-profile" -> ("social-profile", [ Dval.Str u ])
  | "social-post" ->
      ("social-post", [ Dval.Str u; Dval.Str (Printf.sprintf "p%d" g.seq) ])
  | "social-follow" ->
      let target = uid (Workload.Zipf.sample g.users rng) in
      ("social-follow", [ Dval.Str u; Dval.Str target ])
  | other -> invalid_arg other

let schema : Fdsl.Typecheck.schema =
  let open Fdsl.Types in
  let post = TRecord [ ("author", TStr); ("text", TStr) ] in
  [
    ("user:", TRecord [ ("name", TStr); ("pwhash", TStr) ]);
    ("followers:", TList TStr);
    ("follows:", TList TStr);
    ("posts:", TList post);
    ("timeline:", TList post);
  ]
