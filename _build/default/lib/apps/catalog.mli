(** Function catalog: the ground truth of Table 1, plus the full
    27-function inventory across the five ported applications (§3.4,
    §5.1). The benchmark harness checks its measurements against these
    figures and reprints the table. *)

type info = {
  fn_name : string;
  app : string;
  description : string;
  writes : bool;
  dependent : bool;
      (** Asterisk in Table 1: needed the dependent-read optimization. *)
  exec_ms : float; (** Median execution time reported in Table 1. *)
  workload_pct : float; (** Share of the app's request mix. *)
}

val table1 : info list
(** The 16 functions of the three evaluated applications, in Table 1
    order. *)

val evaluated_apps : (string * Fdsl.Ast.func list) list
(** [("social", ...); ("hotel", ...); ("forum", ...)]. *)

val all_functions : Fdsl.Ast.func list
(** All 27 handlers across the five applications. *)

val find : string -> info option
