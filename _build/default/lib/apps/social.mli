(** The social-media benchmark (Diaspora-style, §5.1).

    Five handlers matching Table 1: login (pbkdf2 check, 213 ms), post
    (fan-out to follower timelines, 106 ms, needs the dependent-read
    optimization), follow (16 ms), timeline (120 ms, 80% of the
    workload), profile (124 ms). Users are selected with zipf 0.99 —
    Tapir's workload parameters (§5.3).

    Data model: [user:{u}] account record, [follows:{u}] /
    [followers:{u}] edge lists, [posts:{u}] newest-first posts,
    [timeline:{u}] materialized timeline (push model). *)

val functions : Fdsl.Ast.func list

val seed : ?n_users:int -> ?followers_per_user:int -> Sim.Rng.t -> (string * Dval.t) list

type gen

val gen : ?n_users:int -> ?zipf_theta:float -> unit -> gen

val next : gen -> Sim.Rng.t -> string * Dval.t list
(** Sample one request: (function name, arguments), with the Table 1
    mix (timeline 80%, login 9.5%, profile 9.5%, post 0.5%,
    follow 0.5%). *)

val schema : Fdsl.Typecheck.schema
(** Storage schema for registration-time typechecking. *)
