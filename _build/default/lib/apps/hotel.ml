open Fdsl.Ast
open Appdsl

let geo c = key "geo:" c

let avail h d = key2 "avail:" h d

let reviews h = key "reviews:" h

let rec_key c = key "rec:" c

let attractions c = key "attractions:" c

let huser u = key "huser:" u

(* Table 1: 161 ms median execution = 95 ms compute + 11 cache reads
   (geo index + one availability per hotel). Dependent reads: the geo
   index determines which availability keys are checked. *)
let search_fn =
  fn "hotel-search" [ "cell"; "date" ]
    (Let
       ( "hs",
         Read (geo (Input "cell")),
         Compute
           ( 95.0,
             Foreach
               ( "h",
                 If (Var "hs", Var "hs", List_lit []),
                 fields
                   [
                     ("hotel", Var "h");
                     ("rooms", Read (avail (Var "h") (Input "date")));
                   ] ) ) ))

(* Table 1: 207 ms = 201 ms compute + 1 cache read (precomputed per-cell recommendations). *)
let recommend_fn =
  fn "hotel-recommend" [ "cell" ]
    (Compute (201.0, Read (rec_key (Input "cell"))))

(* Table 1: 272 ms = 266 ms compute + 1 cache read. Branch-free
   accesses: the booking record is written with a status either way, so
   the read/write set is static. *)
let book_fn =
  fn "hotel-book" [ "u"; "h"; "date" ]
    (Let
       ( "rooms",
         Read (avail (Input "h") (Input "date")),
         Compute
           ( 266.0,
             Let
               ( "ok",
                 Var "rooms" >: int 0,
                 Seq
                   [
                     Write
                       ( avail (Input "h") (Input "date"),
                         If (Var "ok", Var "rooms" -: int 1, Var "rooms") );
                     Write
                       ( Concat
                           [
                             Str "booking:";
                             Input "u";
                             Str ":";
                             Input "h";
                             Str ":";
                             Input "date";
                           ],
                         fields
                           [
                             ("status",
                              If (Var "ok", Str "confirmed", Str "rejected"));
                             ("user", Input "u");
                           ] );
                     If (Var "ok", Str "confirmed", Str "sold-out");
                   ] ) ) ))

(* Table 1: 13 ms = 7 ms compute + 1 cache read. *)
let review_fn =
  fn "hotel-review" [ "u"; "h"; "text" ]
    (Compute
       ( 7.0,
         Seq
           [
             bump_list ~key:(reviews (Input "h")) ~keep:30
               (fields [ ("by", Input "u"); ("text", Input "text") ]);
             Bool true;
           ] ))

(* Table 1: 213 ms = 207 ms pbkdf2 + 1 cache read. *)
let login_fn =
  fn "hotel-login" [ "u"; "pw" ]
    (Let
       ( "acct",
         Read (huser (Input "u")),
         Compute (207.0, Field (Var "acct", "pwhash") ==: Input "pw") ))

(* Table 1: 111 ms = 105 ms compute + 1 cache read. *)
let attractions_fn =
  fn "hotel-attractions" [ "cell" ]
    (Compute (105.0, Read (attractions (Input "cell"))))

let functions =
  [ search_fn; recommend_fn; book_fn; review_fn; login_fn; attractions_fn ]

let hid c i = Printf.sprintf "h%d-%d" c i

let uid i = Printf.sprintf "g%d" i

let cell c = Printf.sprintf "c%d" c

let date d = Printf.sprintf "d%d" d

let seed ?(n_users = 500) ?(n_cells = 10) ?(hotels_per_cell = 10) ?(n_dates = 10)
    rng =
  let hotels =
    List.concat
      (List.init n_cells (fun c ->
           List.init hotels_per_cell (fun i ->
               let h = hid c i in
               [
                 ( "hotel:" ^ h,
                   Dval.Record
                     [ ("name", Dval.Str h); ("cell", Dval.Str (cell c)) ] );
               ]
               @ List.init n_dates (fun d ->
                     ( Printf.sprintf "avail:%s:%s" h (date d),
                       Dval.int (5 + Sim.Rng.int rng 10) ))
               @ [
                   ( "reviews:" ^ h,
                     Dval.List
                       [
                         Dval.Record
                           [ ("by", Dval.Str "seed"); ("text", Dval.Str "nice") ];
                       ] );
                 ])))
  in
  let cells =
    List.concat
      (List.init n_cells (fun c ->
           let ids = List.init hotels_per_cell (fun i -> Dval.Str (hid c i)) in
           [
             ("geo:" ^ cell c, Dval.List ids);
             ("rec:" ^ cell c, Dval.List (List.filteri (fun i _ -> i < 3) ids));
             ( "attractions:" ^ cell c,
               Dval.List
                 (List.init 5 (fun i ->
                      Dval.Str (Printf.sprintf "%s-sight-%d" (cell c) i))) );
           ]))
  in
  let users =
    List.init n_users (fun i ->
        let u = uid i in
        ( "huser:" ^ u,
          Dval.Record [ ("name", Dval.Str u); ("pwhash", Dval.Str ("hash-" ^ u)) ]
        ))
  in
  List.concat hotels @ cells @ users

type gen = {
  n_users : int;
  n_cells : int;
  hotels_per_cell : int;
  n_dates : int;
  mix : string Workload.Mix.t;
}

let table1_mix =
  [
    ("hotel-search", 60.0);
    ("hotel-recommend", 30.0);
    ("hotel-attractions", 8.5);
    ("hotel-book", 0.5);
    ("hotel-review", 0.5);
    ("hotel-login", 0.5);
  ]

let gen ?(n_users = 500) ?(n_cells = 10) ?(hotels_per_cell = 10) ?(n_dates = 10)
    () =
  { n_users; n_cells; hotels_per_cell; n_dates; mix = Workload.Mix.create table1_mix }

let next g rng =
  let u = uid (Sim.Rng.int rng g.n_users) in
  let c = cell (Sim.Rng.int rng g.n_cells) in
  let h = hid (Sim.Rng.int rng g.n_cells) (Sim.Rng.int rng g.hotels_per_cell) in
  let d = date (Sim.Rng.int rng g.n_dates) in
  match Workload.Mix.sample g.mix rng with
  | "hotel-search" -> ("hotel-search", [ Dval.Str c; Dval.Str d ])
  | "hotel-recommend" -> ("hotel-recommend", [ Dval.Str c ])
  | "hotel-attractions" -> ("hotel-attractions", [ Dval.Str c ])
  | "hotel-book" -> ("hotel-book", [ Dval.Str u; Dval.Str h; Dval.Str d ])
  | "hotel-review" ->
      ("hotel-review", [ Dval.Str u; Dval.Str h; Dval.Str "lovely" ])
  | "hotel-login" -> ("hotel-login", [ Dval.Str u; Dval.Str ("hash-" ^ u) ])
  | other -> invalid_arg other

let schema : Fdsl.Typecheck.schema =
  let open Fdsl.Types in
  [
    ("hotel:", TRecord [ ("name", TStr); ("cell", TStr) ]);
    ("geo:", TList TStr);
    ("avail:", TInt);
    ("reviews:", TList (TRecord [ ("by", TStr); ("text", TStr) ]));
    ("rec:", TList TStr);
    ("attractions:", TList TStr);
    ("huser:", TRecord [ ("name", TStr); ("pwhash", TStr) ]);
    ("booking:", TRecord [ ("status", TStr); ("user", TStr) ]);
  ]
