(** The image-board application (Danbooru-style, §5.1).

    One of the five ported applications (27 functions total); not part
    of the detailed Table 1 evaluation, but registered and exercised by
    tests and examples. Six handlers: search by tag (dependent reads
    through the tag index), upload, view, comment, favorite, login.

    Data model: [img:{i}] record, [tag:{t}] image ids per tag,
    [icomments:{i}], [ifavs:{i}] favorite count, [ufavs:{u}] a user's
    favorites, [iuser:{u}]. *)

val functions : Fdsl.Ast.func list

val seed : ?n_users:int -> ?n_images:int -> ?n_tags:int -> Sim.Rng.t -> (string * Dval.t) list

type gen

val gen : ?n_users:int -> ?n_images:int -> ?n_tags:int -> unit -> gen

val next : gen -> Sim.Rng.t -> string * Dval.t list

val schema : Fdsl.Typecheck.schema
(** Storage schema for registration-time typechecking. *)
