(** The hotel-reservation benchmark (DeathStarBench, §5.1).

    Six handlers matching Table 1: search (161 ms, dependent-read
    optimization: the geo index feeds the availability keys), recommend
    (207 ms), book (272 ms, writes), review (13 ms, writes), login
    (213 ms), attractions (111 ms). Hotels and users are selected
    uniformly at random (DSB's mixed workload, §5.3).

    Data model: [hotel:{h}] record, [geo:{cell}] hotel ids per
    geographic cell, [avail:{h}:{d}] rooms free for a date,
    [reviews:{h}], [rec:{cell}] precomputed recommendations,
    [attractions:{cell}], [huser:{u}] accounts, [booking:{u}:{h}:{d}]
    confirmations. *)

val functions : Fdsl.Ast.func list

val seed :
  ?n_users:int -> ?n_cells:int -> ?hotels_per_cell:int -> ?n_dates:int ->
  Sim.Rng.t -> (string * Dval.t) list

type gen

val gen :
  ?n_users:int -> ?n_cells:int -> ?hotels_per_cell:int -> ?n_dates:int ->
  unit -> gen

val next : gen -> Sim.Rng.t -> string * Dval.t list
(** Table 1 mix: search 60%, recommend 30%, attractions 8.5%, book 0.5%,
    review 0.5%, login 0.5%. *)

val schema : Fdsl.Typecheck.schema
(** Storage schema for registration-time typechecking. *)
