(** Shared DSL shorthand for writing application handlers. *)

open Fdsl.Ast

val key : string -> expr -> expr
(** [key "user:" e] concatenates the prefix with a string expression. *)

val key2 : string -> expr -> expr -> expr
(** [key2 "avail:" h d] builds ["avail:<h>:<d>"]. *)

val str : string -> expr

val int : int -> expr

val ( +: ) : expr -> expr -> expr
(** Integer addition. *)

val ( -: ) : expr -> expr -> expr

val ( >: ) : expr -> expr -> expr

val ( ==: ) : expr -> expr -> expr

val fields : (string * expr) list -> expr

val fn : string -> string list -> expr -> func

val rmw : key:expr -> (expr -> expr) -> expr
(** [rmw ~key f] reads the key, applies [f] to the value, writes it
    back, and evaluates to the new value. *)

val bump_list : key:expr -> keep:int -> expr -> expr
(** Prepend an element to the list stored at [key], truncated to the
    newest [keep] entries (the timeline/home-page maintenance pattern).
    Treats an absent key as the empty list. *)
