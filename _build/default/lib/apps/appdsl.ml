open Fdsl.Ast

let key prefix e = Concat [ Str prefix; e ]

let key2 prefix a b = Concat [ Str prefix; a; Str ":"; b ]

let str s = Str s

let int i = Int (Int64.of_int i)

let ( +: ) a b = Binop (Add, a, b)

let ( -: ) a b = Binop (Sub, a, b)

let ( >: ) a b = Binop (Gt, a, b)

let ( ==: ) a b = Binop (Eq, a, b)

let fields fs = Record_lit fs

let fn fn_name params body = { fn_name; params; body }

let rmw ~key f =
  Let
    ( "__cur",
      Read key,
      Let ("__new", f (Var "__cur"), Seq [ Write (key, Var "__new"); Var "__new" ])
    )

let bump_list ~key:k ~keep elem =
  Let
    ( "__list",
      Read k,
      Write
        ( k,
          Take (Prepend (If (Var "__list", Var "__list", List_lit []), elem), int keep)
        ) )
