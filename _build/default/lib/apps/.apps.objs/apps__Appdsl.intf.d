lib/apps/appdsl.mli: Fdsl
