lib/apps/projectmgmt.mli: Dval Fdsl Sim
