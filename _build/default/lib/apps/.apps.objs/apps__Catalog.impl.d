lib/apps/catalog.ml: Forum Hotel Imageboard List Projectmgmt Social String
