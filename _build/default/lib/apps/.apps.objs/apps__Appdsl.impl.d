lib/apps/appdsl.ml: Fdsl Int64
