lib/apps/forum.mli: Dval Fdsl Sim
