lib/apps/catalog.mli: Fdsl
