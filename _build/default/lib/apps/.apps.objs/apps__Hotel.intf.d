lib/apps/hotel.mli: Dval Fdsl Sim
