lib/apps/social.ml: Appdsl Dval Fdsl Hashtbl List Option Printf Sim String Workload
