lib/apps/imageboard.ml: Appdsl Dval Fdsl List Printf Sim Workload
