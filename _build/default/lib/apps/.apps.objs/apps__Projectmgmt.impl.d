lib/apps/projectmgmt.ml: Appdsl Dval Fdsl List Printf Sim Workload
