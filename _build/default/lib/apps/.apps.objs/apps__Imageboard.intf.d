lib/apps/imageboard.mli: Dval Fdsl Sim
