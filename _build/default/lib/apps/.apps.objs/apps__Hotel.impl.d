lib/apps/hotel.ml: Appdsl Dval Fdsl List Printf Sim Workload
