lib/apps/forum.ml: Appdsl Dval Fdsl List Printf Sim Workload
