lib/apps/social.mli: Dval Fdsl Sim
