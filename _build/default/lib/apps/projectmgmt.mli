(** The project/team-management application (§5.1's fourth category).

    One of the five ported applications; not part of the detailed
    Table 1 evaluation. Five handlers: board view, task creation, task
    completion, task view (dependent: the task record names its
    assignee), login.

    Data model: [proj:{p}] record, [board:{p}] summary counters,
    [ptasks:{p}] task ids, [task:{t}] record, [puser:{u}]. *)

val functions : Fdsl.Ast.func list

val seed : ?n_users:int -> ?n_projects:int -> ?tasks_per_project:int -> Sim.Rng.t -> (string * Dval.t) list

type gen

val gen : ?n_users:int -> ?n_projects:int -> ?tasks_per_project:int -> unit -> gen

val next : gen -> Sim.Rng.t -> string * Dval.t list

val schema : Fdsl.Typecheck.schema
(** Storage schema for registration-time typechecking. *)
