open Fdsl.Ast
open Appdsl

let board p = key "board:" p

let ptasks p = key "ptasks:" p

let task t = key "task:" t

let puser u = key "puser:" u

let board_fn =
  fn "pm-board" [ "p" ]
    (Compute
       ( 85.0,
         fields
           [
             ("summary", Read (board (Input "p")));
             ("tasks", Take (Read (ptasks (Input "p")), int 25));
           ] ))

let create_fn =
  fn "pm-create" [ "u"; "p"; "t"; "title" ]
    (Compute
       ( 22.0,
         Seq
           [
             Write
               ( task (Input "t"),
                 fields
                   [
                     ("title", Input "title");
                     ("assignee", Input "u");
                     ("status", Str "open");
                   ] );
             bump_list ~key:(ptasks (Input "p")) ~keep:100 (Input "t");
             rmw ~key:(board (Input "p")) (fun b ->
                 Set_field (b, "open", Field (b, "open") +: int 1));
             Input "t";
           ] ))

let complete_fn =
  fn "pm-complete" [ "u"; "t" ]
    (Compute
       ( 17.0,
         rmw ~key:(task (Input "t")) (fun tk ->
             Set_field (tk, "status", Str "done")) ))

(* Dependent: the assignee's account key comes out of the task record. *)
let view_task_fn =
  fn "pm-view-task" [ "t" ]
    (Let
       ( "tk",
         Read (task (Input "t")),
         Compute
           ( 60.0,
             fields
               [
                 ("task", Var "tk");
                 ("assignee", Read (puser (Field (Var "tk", "assignee"))));
               ] ) ))

let login_fn =
  fn "pm-login" [ "u"; "pw" ]
    (Let
       ( "acct",
         Read (puser (Input "u")),
         Compute (213.0, Field (Var "acct", "pwhash") ==: Input "pw") ))

let functions = [ board_fn; create_fn; complete_fn; view_task_fn; login_fn ]

let pid p = Printf.sprintf "pr%d" p

let tid p t = Printf.sprintf "pr%d-t%d" p t

let uid u = Printf.sprintf "m%d" u

let seed ?(n_users = 200) ?(n_projects = 50) ?(tasks_per_project = 10) rng =
  let projects =
    List.concat
      (List.init n_projects (fun p ->
           [
             ( "board:" ^ pid p,
               Dval.Record
                 [ ("open", Dval.int tasks_per_project); ("name", Dval.Str (pid p)) ]
             );
             ( "ptasks:" ^ pid p,
               Dval.List
                 (List.init tasks_per_project (fun t -> Dval.Str (tid p t))) );
           ]
           @ List.init tasks_per_project (fun t ->
                 ( "task:" ^ tid p t,
                   Dval.Record
                     [
                       ("title", Dval.Str (tid p t));
                       ("assignee", Dval.Str (uid (Sim.Rng.int rng n_users)));
                       ("status", Dval.Str "open");
                     ] ))))
  in
  let users =
    List.init n_users (fun u ->
        ( "puser:" ^ uid u,
          Dval.Record
            [ ("name", Dval.Str (uid u)); ("pwhash", Dval.Str ("hash-" ^ uid u)) ]
        ))
  in
  projects @ users

type gen = {
  n_users : int;
  n_projects : int;
  tasks_per_project : int;
  mix : string Workload.Mix.t;
  mutable next_task : int;
}

let mix_weights =
  [
    ("pm-board", 55.0);
    ("pm-view-task", 30.0);
    ("pm-complete", 8.0);
    ("pm-create", 4.0);
    ("pm-login", 3.0);
  ]

let gen ?(n_users = 200) ?(n_projects = 50) ?(tasks_per_project = 10) () =
  {
    n_users;
    n_projects;
    tasks_per_project;
    mix = Workload.Mix.create mix_weights;
    next_task = 100000;
  }

let next g rng =
  let u = uid (Sim.Rng.int rng g.n_users) in
  let p = Sim.Rng.int rng g.n_projects in
  let t = tid p (Sim.Rng.int rng g.tasks_per_project) in
  match Workload.Mix.sample g.mix rng with
  | "pm-board" -> ("pm-board", [ Dval.Str (pid p) ])
  | "pm-view-task" -> ("pm-view-task", [ Dval.Str t ])
  | "pm-complete" -> ("pm-complete", [ Dval.Str u; Dval.Str t ])
  | "pm-create" ->
      g.next_task <- g.next_task + 1;
      ( "pm-create",
        [
          Dval.Str u;
          Dval.Str (pid p);
          Dval.Str (Printf.sprintf "pr%d-t%d" p g.next_task);
          Dval.Str "new task";
        ] )
  | "pm-login" -> ("pm-login", [ Dval.Str u; Dval.Str ("hash-" ^ u) ])
  | other -> invalid_arg other

let schema : Fdsl.Typecheck.schema =
  let open Fdsl.Types in
  [
    ("board:", TRecord [ ("open", TInt); ("name", TStr) ]);
    ("ptasks:", TList TStr);
    ( "task:",
      TRecord [ ("title", TStr); ("assignee", TStr); ("status", TStr) ] );
    ("puser:", TRecord [ ("name", TStr); ("pwhash", TStr) ]);
  ]
