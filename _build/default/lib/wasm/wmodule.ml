type func = {
  fn_name : string;
  n_params : int;
  n_locals : int;
  body : Instr.t list;
}

type t = { funcs : func array; imports : string list }

let create ~funcs ~imports = { funcs = Array.of_list funcs; imports }

let find t name =
  let found = ref None in
  Array.iteri
    (fun i f -> if !found = None && String.equal f.fn_name name then found := Some i)
    t.funcs;
  !found

let func t i =
  if i < 0 || i >= Array.length t.funcs then
    invalid_arg (Printf.sprintf "Wmodule.func: index %d out of range" i);
  t.funcs.(i)
