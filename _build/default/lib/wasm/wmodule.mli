(** Module format of the deterministic VM.

    A module is a set of functions plus the list of host imports it
    declares. Functions follow a one-result convention: the value on top
    of the operand stack when the body ends (or [Return] executes) is the
    function's result. *)

type func = {
  fn_name : string;
  n_params : int; (** Locals [0 .. n_params-1] hold the arguments. *)
  n_locals : int; (** Additional zero-initialized locals. *)
  body : Instr.t list;
}

type t = { funcs : func array; imports : string list }

val create : funcs:func list -> imports:string list -> t

val find : t -> string -> int option
(** Function index by name. *)

val func : t -> int -> func
(** Raises [Invalid_argument] for an out-of-range index. *)
