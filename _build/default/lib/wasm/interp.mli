(** Interpreter for the deterministic VM.

    Executes a validated module against a {!Host.t}. Execution is bounded
    by fuel (one unit per instruction) so analyzer-style invocations can
    time out; traps — type confusion, stack underflow, division by zero,
    [Unreachable], forbidden imports, fuel exhaustion — are reported as
    [Error]. Given equal host read results, execution is bit-for-bit
    deterministic, which is what makes the LVI protocol's deterministic
    re-execution (§3.4) sound. *)

type outcome = (Dval.t, string) result

val run :
  Wmodule.t ->
  host:Host.t ->
  ?fuel:int ->
  entry:string ->
  Dval.t list ->
  outcome
(** [run m ~host ~entry args] invokes the named function with [args]
    bound to its parameters. Default fuel is 10_000_000. Errors if the
    entry point is missing or its arity mismatches. *)

val instructions_executed : unit -> int
(** Instructions retired by the most recent [run] (for tests and the
    microbenchmarks). *)
