type t = {
  read : string -> Dval.t;
  write : string -> Dval.t -> unit;
  compute : float -> unit;
  external_call : string -> Dval.t -> Dval.t;
}

let pure () =
  {
    read = (fun _ -> Dval.Unit);
    write = (fun _ _ -> ());
    compute = (fun _ -> ());
    external_call = (fun _ _ -> Dval.Unit);
  }

let recording ?(store = []) () =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) store;
  let writes = ref [] in
  let host =
    {
      read =
        (fun k -> match Hashtbl.find_opt tbl k with Some v -> v | None -> Dval.Unit);
      write =
        (fun k v ->
          Hashtbl.replace tbl k v;
          writes := (k, v) :: !writes);
      compute = (fun _ -> ());
      external_call = (fun _ _ -> Dval.Unit);
    }
  in
  (host, fun () -> List.rev !writes)

let storage_imports =
  [ "storage.read"; "storage.write"; "cpu.burn"; "external.call" ]

let pure_imports =
  [
    "dval.to_i64";
    "dval.of_i64";
    "dval.of_bool";
    "dval.truthy";
    "dval.eq";
    "str.concat";
    "str.of_i64";
    "str.eq";
    "list.empty";
    "list.append";
    "list.prepend";
    "list.len";
    "list.get";
    "list.take";
    "list.concat";
    "record.new";
    "record.set";
    "record.get";
    "unit";
  ]

let forbidden_imports = [ "wasi.clock_time_get"; "wasi.random_get" ]
