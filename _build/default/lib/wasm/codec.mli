(** Binary encoding of modules — the "blob" a registered function ships
    to the cloud and the runtime loads from disk (§5.5 component 2).

    A compact custom format in the spirit of the WebAssembly binary
    format: a magic header, LEB128-style variable-length integers,
    length-prefixed strings, one opcode byte per instruction with nested
    bodies length-counted. Decoding validates structure and fails on
    trailing garbage, bad opcodes, or truncation. *)

val encode : Wmodule.t -> string

val decode : string -> (Wmodule.t, string) result

val blob_size : Wmodule.t -> int
(** [String.length (encode m)]. *)
