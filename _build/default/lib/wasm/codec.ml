let magic = "RWSM\x01"

(* --- Encoding -------------------------------------------------------- *)

let put_uleb buf n =
  if n < 0 then invalid_arg "Codec.put_uleb: negative";
  let rec go n =
    let byte = n land 0x7f in
    let rest = n lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go n

let put_i64 buf i =
  for shift = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical i (shift * 8)) 0xFFL)))
  done

let put_str buf s =
  put_uleb buf (String.length s);
  Buffer.add_string buf s

let rec put_dval buf (d : Dval.t) =
  match d with
  | Unit -> Buffer.add_char buf '\x00'
  | Bool false -> Buffer.add_char buf '\x01'
  | Bool true -> Buffer.add_char buf '\x02'
  | Int i ->
      Buffer.add_char buf '\x03';
      put_i64 buf i
  | Str s ->
      Buffer.add_char buf '\x04';
      put_str buf s
  | List xs ->
      Buffer.add_char buf '\x05';
      put_uleb buf (List.length xs);
      List.iter (put_dval buf) xs
  | Record fs ->
      Buffer.add_char buf '\x06';
      put_uleb buf (List.length fs);
      List.iter
        (fun (k, v) ->
          put_str buf k;
          put_dval buf v)
        fs

let binop_code (op : Instr.binop) =
  match op with
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div_s -> 3 | Rem_s -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Eq -> 8 | Ne -> 9
  | Lt_s -> 10 | Gt_s -> 11 | Le_s -> 12 | Ge_s -> 13
  [@@ocamlformat "disable"]

let binop_of_code = function
  | 0 -> Instr.Add | 1 -> Instr.Sub | 2 -> Instr.Mul | 3 -> Instr.Div_s
  | 4 -> Instr.Rem_s | 5 -> Instr.And | 6 -> Instr.Or | 7 -> Instr.Xor
  | 8 -> Instr.Eq | 9 -> Instr.Ne | 10 -> Instr.Lt_s | 11 -> Instr.Gt_s
  | 12 -> Instr.Le_s | 13 -> Instr.Ge_s
  | c -> failwith (Printf.sprintf "bad binop code %d" c)
  [@@ocamlformat "disable"]

let rec put_instr buf (i : Instr.t) =
  match i with
  | I64_const v ->
      Buffer.add_char buf '\x01';
      put_i64 buf v
  | I64_binop op ->
      Buffer.add_char buf '\x02';
      Buffer.add_char buf (Char.chr (binop_code op))
  | I64_eqz -> Buffer.add_char buf '\x03'
  | Ref_const d ->
      Buffer.add_char buf '\x04';
      put_dval buf d
  | Local_get n ->
      Buffer.add_char buf '\x05';
      put_uleb buf n
  | Local_set n ->
      Buffer.add_char buf '\x06';
      put_uleb buf n
  | Local_tee n ->
      Buffer.add_char buf '\x07';
      put_uleb buf n
  | Drop -> Buffer.add_char buf '\x08'
  | Block body ->
      Buffer.add_char buf '\x09';
      put_body buf body
  | Loop body ->
      Buffer.add_char buf '\x0a';
      put_body buf body
  | If (t, e) ->
      Buffer.add_char buf '\x0b';
      put_body buf t;
      put_body buf e
  | Br n ->
      Buffer.add_char buf '\x0c';
      put_uleb buf n
  | Br_if n ->
      Buffer.add_char buf '\x0d';
      put_uleb buf n
  | Return -> Buffer.add_char buf '\x0e'
  | Call n ->
      Buffer.add_char buf '\x0f';
      put_uleb buf n
  | Call_host name ->
      Buffer.add_char buf '\x10';
      put_str buf name
  | Nop -> Buffer.add_char buf '\x11'
  | Unreachable -> Buffer.add_char buf '\x12'

and put_body buf instrs =
  put_uleb buf (List.length instrs);
  List.iter (put_instr buf) instrs

let encode (m : Wmodule.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  put_uleb buf (List.length m.imports);
  List.iter (put_str buf) m.imports;
  put_uleb buf (Array.length m.funcs);
  Array.iter
    (fun (f : Wmodule.func) ->
      put_str buf f.fn_name;
      put_uleb buf f.n_params;
      put_uleb buf f.n_locals;
      put_body buf f.body)
    m.funcs;
  Buffer.contents buf

let blob_size m = String.length (encode m)

(* --- Decoding -------------------------------------------------------- *)

exception Bad of string

type reader = { data : string; mutable pos : int }

let byte r =
  if r.pos >= String.length r.data then raise (Bad "truncated");
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_uleb r =
  let rec go shift acc =
    if shift > 56 then raise (Bad "uleb overflow");
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let get_i64 r =
  let v = ref 0L in
  for shift = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte r)) (shift * 8))
  done;
  !v

let get_str r =
  let n = get_uleb r in
  if r.pos + n > String.length r.data then raise (Bad "truncated string");
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let rec get_dval r : Dval.t =
  match byte r with
  | 0x00 -> Unit
  | 0x01 -> Bool false
  | 0x02 -> Bool true
  | 0x03 -> Int (get_i64 r)
  | 0x04 -> Str (get_str r)
  | 0x05 ->
      let n = get_uleb r in
      List (List.init n (fun _ -> get_dval r))
  | 0x06 ->
      let n = get_uleb r in
      Record
        (List.init n (fun _ ->
             let k = get_str r in
             let v = get_dval r in
             (k, v)))
  | t -> raise (Bad (Printf.sprintf "bad value tag 0x%02x" t))

let rec get_instr r : Instr.t =
  match byte r with
  | 0x01 -> I64_const (get_i64 r)
  | 0x02 -> I64_binop (binop_of_code (byte r))
  | 0x03 -> I64_eqz
  | 0x04 -> Ref_const (get_dval r)
  | 0x05 -> Local_get (get_uleb r)
  | 0x06 -> Local_set (get_uleb r)
  | 0x07 -> Local_tee (get_uleb r)
  | 0x08 -> Drop
  | 0x09 -> Block (get_body r)
  | 0x0a -> Loop (get_body r)
  | 0x0b ->
      let t = get_body r in
      let e = get_body r in
      If (t, e)
  | 0x0c -> Br (get_uleb r)
  | 0x0d -> Br_if (get_uleb r)
  | 0x0e -> Return
  | 0x0f -> Call (get_uleb r)
  | 0x10 -> Call_host (get_str r)
  | 0x11 -> Nop
  | 0x12 -> Unreachable
  | c -> raise (Bad (Printf.sprintf "bad opcode 0x%02x" c))

and get_body r =
  let n = get_uleb r in
  List.init n (fun _ -> get_instr r)

let decode data =
  try
    let r = { data; pos = 0 } in
    if
      String.length data < String.length magic
      || String.sub data 0 (String.length magic) <> magic
    then raise (Bad "bad magic");
    r.pos <- String.length magic;
    let n_imports = get_uleb r in
    let imports = List.init n_imports (fun _ -> get_str r) in
    let n_funcs = get_uleb r in
    let funcs =
      List.init n_funcs (fun _ ->
          let fn_name = get_str r in
          let n_params = get_uleb r in
          let n_locals = get_uleb r in
          let body = get_body r in
          { Wmodule.fn_name; n_params; n_locals; body })
    in
    if r.pos <> String.length data then raise (Bad "trailing bytes");
    Ok (Wmodule.create ~funcs ~imports)
  with
  | Bad reason -> Error reason
  | Failure reason -> Error reason
