type outcome = (Dval.t, string) result

type value = I64 of int64 | Ref of int

exception Trap of string

(* Branch to a block [depth] levels up; Ret carries a function's result. *)
exception Branch of int

exception Ret of value option

type state = {
  modul : Wmodule.t;
  host : Host.t;
  heap : Dval.t Sim.Vec.t;
  mutable fuel : int;
  mutable retired : int;
}

let last_retired = ref 0

let instructions_executed () = !last_retired

let alloc st v =
  Sim.Vec.push st.heap v;
  Ref (Sim.Vec.length st.heap - 1)

let deref st = function
  | Ref h -> Sim.Vec.get st.heap h
  | I64 _ -> raise (Trap "expected a reference, found an i64")

let as_i64 = function
  | I64 i -> i
  | Ref _ -> raise (Trap "expected an i64, found a reference")

let as_str st v =
  match deref st v with
  | Dval.Str s -> s
  | d -> raise (Trap ("expected a string, found " ^ Dval.to_string d))

let as_list st v =
  match deref st v with
  | Dval.List l -> l
  | d -> raise (Trap ("expected a list, found " ^ Dval.to_string d))

let bool_i64 b = I64 (if b then 1L else 0L)

let apply_binop op a b =
  let open Int64 in
  match (op : Instr.binop) with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div_s -> if b = 0L then raise (Trap "division by zero") else div a b
  | Rem_s -> if b = 0L then raise (Trap "remainder by zero") else rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Eq -> if equal a b then 1L else 0L
  | Ne -> if equal a b then 0L else 1L
  | Lt_s -> if compare a b < 0 then 1L else 0L
  | Gt_s -> if compare a b > 0 then 1L else 0L
  | Le_s -> if compare a b <= 0 then 1L else 0L
  | Ge_s -> if compare a b >= 0 then 1L else 0L

(* Pure builtins plus the three injected imports. Stack effects are
   documented next to each name in {!Host.pure_imports}. *)
let host_call st name pop push =
  match name with
  | "dval.to_i64" -> (
      match deref st (pop ()) with
      | Dval.Int i -> push (I64 i)
      | Dval.Bool b -> push (bool_i64 b)
      | d -> raise (Trap ("dval.to_i64 on " ^ Dval.to_string d)))
  | "dval.of_i64" -> push (alloc st (Dval.Int (as_i64 (pop ()))))
  | "dval.of_bool" ->
      push (alloc st (Dval.Bool (not (Int64.equal (as_i64 (pop ())) 0L))))
  | "dval.truthy" -> (
      match deref st (pop ()) with
      | Dval.Bool b -> push (bool_i64 b)
      | Dval.Int i -> push (bool_i64 (i <> 0L))
      | Dval.Unit -> push (bool_i64 false)
      | Dval.Str s -> push (bool_i64 (s <> ""))
      | Dval.List l -> push (bool_i64 (l <> []))
      | Dval.Record _ -> push (bool_i64 true))
  | "dval.eq" ->
      let b = deref st (pop ()) in
      let a = deref st (pop ()) in
      push (bool_i64 (Dval.equal a b))
  | "str.concat" ->
      let b = as_str st (pop ()) in
      let a = as_str st (pop ()) in
      push (alloc st (Dval.Str (a ^ b)))
  | "str.of_i64" -> push (alloc st (Dval.Str (Int64.to_string (as_i64 (pop ())))))
  | "str.eq" ->
      let b = as_str st (pop ()) in
      let a = as_str st (pop ()) in
      push (bool_i64 (String.equal a b))
  | "list.empty" -> push (alloc st (Dval.List []))
  | "list.append" ->
      let x = deref st (pop ()) in
      let l = as_list st (pop ()) in
      push (alloc st (Dval.List (l @ [ x ])))
  | "list.prepend" ->
      let x = deref st (pop ()) in
      let l = as_list st (pop ()) in
      push (alloc st (Dval.List (x :: l)))
  | "list.len" -> push (I64 (Int64.of_int (List.length (as_list st (pop ())))))
  | "list.get" ->
      let i = Int64.to_int (as_i64 (pop ())) in
      let l = as_list st (pop ()) in
      if i < 0 || i >= List.length l then
        raise (Trap (Printf.sprintf "list.get index %d out of bounds" i))
      else push (alloc st (List.nth l i))
  | "list.take" ->
      let n = Int64.to_int (as_i64 (pop ())) in
      let l = as_list st (pop ()) in
      push (alloc st (Dval.List (List.filteri (fun i _ -> i < n) l)))
  | "list.concat" ->
      let b = as_list st (pop ()) in
      let a = as_list st (pop ()) in
      push (alloc st (Dval.List (a @ b)))
  | "record.new" -> push (alloc st (Dval.Record []))
  | "record.set" ->
      let v = deref st (pop ()) in
      let name = as_str st (pop ()) in
      let r = deref st (pop ()) in
      push (alloc st (Dval.set_field r name v))
  | "record.get" ->
      let name = as_str st (pop ()) in
      let r = deref st (pop ()) in
      push (alloc st (Dval.field r name))
  | "unit" -> push (alloc st Dval.Unit)
  | "storage.read" -> push (alloc st (st.host.read (as_str st (pop ()))))
  | "storage.write" ->
      let v = deref st (pop ()) in
      let key = as_str st (pop ()) in
      st.host.write key v;
      push (alloc st Dval.Unit)
  | "external.call" ->
      let payload = deref st (pop ()) in
      let svc = as_str st (pop ()) in
      push (alloc st (st.host.external_call svc payload))
  | "cpu.burn" ->
      let micros = as_i64 (pop ()) in
      st.host.compute (Int64.to_float micros /. 1000.0);
      push (alloc st Dval.Unit)
  | name when List.mem name Host.forbidden_imports ->
      raise (Trap ("nondeterministic import invoked at runtime: " ^ name))
  | name -> raise (Trap ("unknown host function: " ^ name))

let rec call st idx (args : value list) : value option =
  let f = Wmodule.func st.modul idx in
  if List.length args <> f.n_params then
    raise
      (Trap
         (Printf.sprintf "%s expects %d arguments, got %d" f.fn_name f.n_params
            (List.length args)));
  let locals = Array.make (f.n_params + f.n_locals) (I64 0L) in
  List.iteri (fun i v -> locals.(i) <- v) args;
  let stack = ref [] in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> raise (Trap "operand stack underflow")
  in
  let rec exec (instr : Instr.t) =
    st.fuel <- st.fuel - 1;
    st.retired <- st.retired + 1;
    if st.fuel <= 0 then raise (Trap "fuel exhausted");
    match instr with
    | I64_const i -> push (I64 i)
    | I64_binop op ->
        let b = as_i64 (pop ()) in
        let a = as_i64 (pop ()) in
        push (I64 (apply_binop op a b))
    | I64_eqz -> push (bool_i64 (Int64.equal (as_i64 (pop ())) 0L))
    | Ref_const d -> push (alloc st d)
    | Local_get i -> push locals.(i)
    | Local_set i -> locals.(i) <- pop ()
    | Local_tee i -> (
        match !stack with
        | v :: _ -> locals.(i) <- v
        | [] -> raise (Trap "operand stack underflow"))
    | Drop -> ignore (pop ())
    | Block body -> (
        try List.iter exec body with
        | Branch 0 -> () (* fallthrough past the block *)
        | Branch n -> raise (Branch (n - 1)))
    | Loop body ->
        let rec again () =
          match List.iter exec body with
          | () -> ()
          | exception Branch 0 -> again ()
          | exception Branch n -> raise (Branch (n - 1))
        in
        again ()
    | If (then_, else_) -> (
        let cond = as_i64 (pop ()) in
        let body = if Int64.equal cond 0L then else_ else then_ in
        try List.iter exec body with
        | Branch 0 -> ()
        | Branch n -> raise (Branch (n - 1)))
    | Br n -> raise (Branch n)
    | Br_if n -> if not (Int64.equal (as_i64 (pop ())) 0L) then exec (Br n)
    | Return -> raise (Ret (match !stack with v :: _ -> Some v | [] -> None))
    | Call callee ->
        let f' = Wmodule.func st.modul callee in
        let args =
          List.rev (List.init f'.n_params (fun _ -> pop ()))
        in
        (match call st callee args with
        | Some v -> push v
        | None -> raise (Trap (f'.fn_name ^ " returned no value")))
    | Call_host name -> host_call st name pop push
    | Nop -> ()
    | Unreachable -> raise (Trap "unreachable executed")
  in
  match List.iter exec f.body with
  | () -> ( match !stack with v :: _ -> Some v | [] -> None)
  | exception Ret v -> v
  | exception Branch _ -> raise (Trap "branch depth escaped function body")

let run modul ~host ?(fuel = 10_000_000) ~entry args =
  match Wmodule.find modul entry with
  | None -> Error (Printf.sprintf "no function named %S" entry)
  | Some idx -> (
      let st = { modul; host; heap = Sim.Vec.create (); fuel; retired = 0 } in
      let finish result =
        last_retired := st.retired;
        result
      in
      try
        let args = List.map (fun d -> alloc st d) args in
        match call st idx args with
        | Some (I64 i) -> finish (Ok (Dval.Int i))
        | Some (Ref h) -> finish (Ok (Sim.Vec.get st.heap h))
        | None -> finish (Error "function returned no value")
      with
      | Trap reason -> finish (Error ("trap: " ^ reason))
      | Invalid_argument reason -> finish (Error ("trap: " ^ reason)))
