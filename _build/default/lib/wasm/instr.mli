(** Instruction set of the deterministic stack VM.

    A compact WebAssembly-like machine: i64 numerics, locals, structured
    control flow with relative branch depths, intra-module calls, and
    host calls for storage access and structured-value manipulation
    (handles play the role of externrefs). [Ref_const] materializes a
    constant structured value into the host heap — the moral equivalent
    of a data segment plus a pointer. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div_s (** Traps on division by zero. *)
  | Rem_s (** Traps on division by zero. *)
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Lt_s
  | Gt_s
  | Le_s
  | Ge_s

type t =
  | I64_const of int64
  | I64_binop of binop (** Pops two i64s, pushes the result (bools as 0/1). *)
  | I64_eqz
  | Ref_const of Dval.t (** Allocate a constant in the heap, push its handle. *)
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Drop
  | Block of t list (** [Br 0] inside jumps past the block's end. *)
  | Loop of t list (** [Br 0] inside jumps back to the loop's start. *)
  | If of t list * t list (** Pops an i64 condition; acts as a block. *)
  | Br of int
  | Br_if of int
  | Return
  | Call of int (** Call a module function by index. *)
  | Call_host of string (** Invoke an imported host function by name. *)
  | Nop
  | Unreachable (** Always traps. *)

val pp : Format.formatter -> t -> unit
