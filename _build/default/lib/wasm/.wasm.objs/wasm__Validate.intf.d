lib/wasm/validate.mli: Format Wmodule
