lib/wasm/host.ml: Dval Hashtbl List
