lib/wasm/instr.ml: Dval Format
