lib/wasm/codec.ml: Array Buffer Char Dval Instr Int64 List Printf String Wmodule
