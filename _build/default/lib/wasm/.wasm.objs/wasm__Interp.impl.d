lib/wasm/interp.ml: Array Dval Host Instr Int64 List Printf Sim String Wmodule
