lib/wasm/wmodule.ml: Array Instr Printf String
