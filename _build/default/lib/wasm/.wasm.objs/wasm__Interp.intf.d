lib/wasm/interp.mli: Dval Host Wmodule
