lib/wasm/host.mli: Dval
