lib/wasm/codec.mli: Wmodule
