lib/wasm/validate.ml: Array Format Host Instr List Printf Wmodule
