lib/wasm/instr.mli: Dval Format
