(** Weighted request mixes (the Workload%% column of Table 1). *)

type 'a t

val create : ('a * float) list -> 'a t
(** Weights need not sum to one; they are normalized. Requires a
    non-empty list with positive total weight. *)

val sample : 'a t -> Sim.Rng.t -> 'a
