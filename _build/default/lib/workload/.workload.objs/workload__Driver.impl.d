lib/workload/driver.ml: Engine Ivar Printf Rng Sim
