lib/workload/driver.mli: Sim
