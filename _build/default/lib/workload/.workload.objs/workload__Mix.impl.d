lib/workload/mix.ml: Array List Sim
