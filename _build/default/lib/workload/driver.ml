open Sim

let spawn_and_wait n body =
  let left = ref n in
  let all_done = Ivar.create () in
  for client = 0 to n - 1 do
    Engine.spawn ~name:(Printf.sprintf "client-%d" client) (fun () ->
        body client;
        decr left;
        if !left = 0 then Ivar.fill all_done ())
  done;
  if n > 0 then Ivar.read all_done

let run_clients ~n ~iterations ?(think_time = 0.0) step =
  spawn_and_wait n (fun client ->
      for iter = 0 to iterations - 1 do
        step ~client ~iter;
        if think_time > 0.0 then Engine.sleep think_time
      done)

let run_for ~n ~duration ?(think_time = 0.0) step =
  let deadline = Engine.now () +. duration in
  spawn_and_wait n (fun client ->
      let iter = ref 0 in
      while Engine.now () < deadline do
        step ~client ~iter:!iter;
        incr iter;
        if think_time > 0.0 then Engine.sleep think_time
      done)

let run_open ~rate ~duration ~rng step =
  if rate <= 0.0 then invalid_arg "Driver.run_open: rate must be positive";
  let deadline = Engine.now () +. duration in
  let in_flight = ref 0 in
  let all_done = Ivar.create () in
  let finished_arrivals = ref false in
  let seq = ref 0 in
  let rec arrivals () =
    if Engine.now () < deadline then begin
      Engine.sleep (Rng.exponential rng ~mean:(1000.0 /. rate));
      if Engine.now () < deadline then begin
        let n = !seq in
        incr seq;
        incr in_flight;
        Engine.spawn ~name:"open-request" (fun () ->
            step ~arrival:n;
            decr in_flight;
            if !finished_arrivals && !in_flight = 0 then
              Ivar.try_fill all_done () |> ignore)
      end;
      arrivals ()
    end
  in
  arrivals ();
  finished_arrivals := true;
  if !in_flight > 0 then Ivar.read all_done;
  !seq
