(** Zipfian sampling over ranks [0, n).

    The paper's social-media and forum workloads select users and posts
    with a zipf parameter of 0.99 (Tapir's and lobste.rs-derived
    parameters, §5.3); the hotel workload is uniform. Sampling inverts a
    precomputed CDF by binary search. *)

type t

val create : n:int -> theta:float -> t
(** [theta = 0.0] degenerates to uniform. Requires [n > 0]. *)

val sample : t -> Sim.Rng.t -> int
(** A rank in [0, n); rank 0 is the hottest. *)

val n : t -> int
