(** Closed-loop client driver (§5.2: 50 logical client processes).

    Spawns [n] client fibers that each perform [iterations] requests
    back to back (optionally separated by think time) and blocks until
    every client finished. *)

val run_clients :
  n:int ->
  iterations:int ->
  ?think_time:float ->
  (client:int -> iter:int -> unit) ->
  unit

val run_for :
  n:int ->
  duration:float ->
  ?think_time:float ->
  (client:int -> iter:int -> unit) ->
  unit
(** Time-bounded variant: clients issue requests until the virtual clock
    passes [duration] from the call. *)

val run_open :
  rate:float ->
  duration:float ->
  rng:Sim.Rng.t ->
  (arrival:int -> unit) ->
  int
(** Open-loop load: Poisson arrivals at [rate] requests per (virtual)
    second for [duration] ms; each arrival runs in its own fiber.
    Returns the number of arrivals after all of them complete. *)
