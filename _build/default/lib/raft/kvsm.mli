(** A small key-value state machine to replicate with {!Consensus.Make}.

    Used directly by the Raft tests, and by the replicated LVI server to
    persist lock records through consensus (the etcd role in §5.6). *)

type t

type cmd = Set of string * string | Get of string | Del of string

type output = Done | Value of string option

val create : unit -> t

val apply : t -> cmd -> output

val peek : t -> string -> string option
(** Direct read bypassing the log — test assertions only. *)

val size : t -> int

type snapshot = (string * string) list

val snapshot : t -> snapshot

val restore : snapshot -> t
