type t = (string, string) Hashtbl.t

type cmd = Set of string * string | Get of string | Del of string

type output = Done | Value of string option

let create () = Hashtbl.create 64

let apply t = function
  | Set (k, v) ->
      Hashtbl.replace t k v;
      Done
  | Get k -> Value (Hashtbl.find_opt t k)
  | Del k ->
      Hashtbl.remove t k;
      Done

let peek t k = Hashtbl.find_opt t k

let size t = Hashtbl.length t

type snapshot = (string * string) list

let snapshot t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []

let restore snap =
  let t = create () in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) snap;
  t
