lib/raft/consensus.mli: Net
