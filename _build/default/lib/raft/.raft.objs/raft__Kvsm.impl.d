lib/raft/kvsm.ml: Hashtbl List
