lib/raft/consensus.ml: Array Engine Float Hashtbl Int Ivar List Net Option Printf Rng Sim Vec
