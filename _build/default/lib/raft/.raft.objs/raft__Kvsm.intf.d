lib/raft/kvsm.mli:
