(** The §5.7 infrastructure-cost model.

    Reproduces the paper's arithmetic exactly: a DynamoDB instance
    provisioned for 50k reads/s and 500 writes/s costs $1077.36/month;
    Radical adds per-location ScyllaDB caches ($34 × 5 = $170/month) and
    the LVI server ($166/month); validation failures re-run ~5%% of
    invocations near storage at Lambda prices. *)

type params = {
  dynamodb_monthly : float;
  cache_instance_monthly : float; (** One m6g.large ScyllaDB node. *)
  n_cache_locations : int;
  lvi_server_monthly : float;
  lambda_cost_per_invocation : float;
      (** 100 ms @ 2 GB, derived from the paper's $2.87 per million. *)
  validation_failure_rate : float;
}

val defaults : params
(** The paper's numbers: $1077.36, $34 × 5, $166, $2.87/M, 5%. *)

type breakdown = {
  invocations_per_month : float;
  baseline_total : float;
  radical_total : float;
  overhead_ratio : float; (** radical / baseline. *)
}

val infrastructure_baseline : params -> float
(** Monthly cost of the primary-datacenter deployment, excluding
    function invocations ($1077.36). *)

val infrastructure_radical : params -> float
(** $1077.36 + $170 + $166 = $1413.36, a 31%% increase. *)

val at_scale : params -> invocations_per_month:float -> breakdown
(** Total monthly cost including function executions and Radical's
    ~5%% re-executions, at a given invocation volume. *)
