type params = {
  dynamodb_monthly : float;
  cache_instance_monthly : float;
  n_cache_locations : int;
  lvi_server_monthly : float;
  lambda_cost_per_invocation : float;
  validation_failure_rate : float;
}

let defaults =
  {
    dynamodb_monthly = 1077.36;
    cache_instance_monthly = 34.0;
    n_cache_locations = 5;
    lvi_server_monthly = 166.0;
    lambda_cost_per_invocation = 2.87 /. 1_000_000.0;
    validation_failure_rate = 0.05;
  }

type breakdown = {
  invocations_per_month : float;
  baseline_total : float;
  radical_total : float;
  overhead_ratio : float;
}

let infrastructure_baseline p = p.dynamodb_monthly

let infrastructure_radical p =
  p.dynamodb_monthly
  +. (p.cache_instance_monthly *. float_of_int p.n_cache_locations)
  +. p.lvi_server_monthly

let at_scale p ~invocations_per_month =
  let lambda = invocations_per_month *. p.lambda_cost_per_invocation in
  let reexec = lambda *. p.validation_failure_rate in
  let baseline_total = infrastructure_baseline p +. lambda in
  let radical_total = infrastructure_radical p +. lambda +. reexec in
  {
    invocations_per_month;
    baseline_total;
    radical_total;
    overhead_ratio = radical_total /. baseline_total;
  }
