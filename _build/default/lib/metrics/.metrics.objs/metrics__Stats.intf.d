lib/metrics/stats.mli:
