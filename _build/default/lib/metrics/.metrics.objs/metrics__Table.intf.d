lib/metrics/table.mli:
