lib/metrics/table.ml: Float List Printf Stdlib String
