(** Plain-text table and bar-chart rendering for the benchmark harness.

    Every figure in the paper becomes an ASCII table plus a bar chart;
    the harness prints them so runs are diffable. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned table with a rule under the header. *)

val print : header:string list -> rows:string list list -> unit

val bars : ?width:int -> (string * float) list -> string
(** Horizontal bar chart scaled to the maximum value, one row per
    (label, value); values are printed after the bar. *)

val print_bars : ?width:int -> (string * float) list -> unit

val ms : float -> string
(** Format a latency in milliseconds with one decimal. *)

val pct : float -> string
(** Format a ratio as a percentage with one decimal. *)

val print_histogram : ?width:int -> (float * float * int) list -> unit
(** Render {!Stats.histogram} buckets as rows of bars with counts and
    percentages. *)
