let render ~header ~rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let pad r = r @ List.init (n_cols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths =
    List.init n_cols (fun c ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r c))) 0 all)
  in
  let line r =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell)
         r)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line (List.hd all) :: rule :: List.map line (List.tl all))

let print ~header ~rows = print_endline (render ~header ~rows)

let bars ?(width = 48) data =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 data in
  let lmax =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 data
  in
  String.concat "\n"
    (List.map
       (fun (label, v) ->
         let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
         Printf.sprintf "%-*s | %-*s %8.1f" lmax label width
           (String.make (max 0 n) '#')
           v)
       data)

let print_bars ?width data = print_endline (bars ?width data)

let ms v = Printf.sprintf "%.1f" v

let pct v = Printf.sprintf "%.1f%%" (v *. 100.0)

let print_histogram ?(width = 40) buckets =
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 buckets in
  let peak = List.fold_left (fun acc (_, _, n) -> Stdlib.max acc n) 1 buckets in
  List.iter
    (fun (lo, hi, n) ->
      let bar = n * width / peak in
      Printf.printf "%8.1f-%-8.1f | %-*s %5d (%4.1f%%)\n" lo hi width
        (String.make bar '#') n
        (100.0 *. float_of_int n /. float_of_int (Stdlib.max 1 total)))
    buckets
