type versioned = { value : Dval.t; version : int }

type t = {
  items : (string, versioned) Hashtbl.t;
  latency : float;
  mutable reads : int;
  mutable writes : int;
}

let create ?(access_latency = 6.0) () =
  { items = Hashtbl.create 1024; latency = access_latency; reads = 0; writes = 0 }

let access_latency t = t.latency

let pay t = Sim.Engine.sleep t.latency

let peek t key = Hashtbl.find_opt t.items key

let get t key =
  pay t;
  t.reads <- t.reads + 1;
  peek t key

let get_many t keys =
  pay t;
  t.reads <- t.reads + List.length keys;
  List.map (fun k -> (k, peek t k)) keys

let bump t key value =
  let version =
    match Hashtbl.find_opt t.items key with
    | Some { version; _ } -> version + 1
    | None -> 1
  in
  Hashtbl.replace t.items key { value; version };
  version

let put t key value =
  pay t;
  t.writes <- t.writes + 1;
  bump t key value

let put_many t kvs =
  pay t;
  t.writes <- t.writes + List.length kvs;
  List.map (fun (k, v) -> (k, bump t k v)) kvs

let put_if_version t key value ~expected =
  pay t;
  t.writes <- t.writes + 1;
  let current =
    match Hashtbl.find_opt t.items key with
    | Some { version; _ } -> version
    | None -> 0
  in
  if current = expected then begin
    ignore (bump t key value);
    true
  end
  else false

let version_peek t key =
  match Hashtbl.find_opt t.items key with
  | Some { version; _ } -> version
  | None -> 0

let version_of t key =
  pay t;
  t.reads <- t.reads + 1;
  version_peek t key

let versions_of t keys =
  pay t;
  t.reads <- t.reads + List.length keys;
  List.map (fun k -> (k, version_peek t k)) keys

let load t kvs = List.iter (fun (k, v) -> ignore (bump t k v)) kvs

let size t = Hashtbl.length t.items

let reads t = t.reads

let writes t = t.writes
