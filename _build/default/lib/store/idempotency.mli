(** Idempotency-key table used by the replicated LVI server (§5.6).

    One key per function execution guarantees a function runs at most
    twice per user request: once near-user and at most once near-storage.
    The paper measures 3 ms to write and update a key in DynamoDB; that
    is this table's default access latency. *)

type t

val create : ?access_latency:float -> unit -> t

val register : t -> exec_id:string -> bool
(** Record that a near-storage execution is claiming [exec_id]. Returns
    [true] on first registration, [false] if already claimed (the caller
    must not execute). *)

val seen : t -> exec_id:string -> bool
(** Latency-free inspection. *)

val count : t -> int
