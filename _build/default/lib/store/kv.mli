(** Versioned, linearizable key-value store — the primary copy of the
    data (DynamoDB in the paper's deployment).

    Every item carries a version number stored with the data (§3.1);
    Radical's storage library bumps it on each update. Operations advance
    virtual time by the store's access latency; batch operations pay it
    once (BatchGet/BatchWrite). Versions start at 0 for "never written";
    the first write produces version 1. *)

type t

type versioned = { value : Dval.t; version : int }

val create : ?access_latency:float -> unit -> t
(** Default access latency is 6.0 ms, chosen so that an in-region
    storage ping (1 ms network RTT + access) reproduces Table 2's 7 ms. *)

val access_latency : t -> float

val get : t -> string -> versioned option
(** Blocking read; [None] if the key was never written. *)

val get_many : t -> string list -> (string * versioned option) list
(** Batch read: one access latency for the whole batch. *)

val put : t -> string -> Dval.t -> int
(** Blocking write; returns the new version. *)

val put_many : t -> (string * Dval.t) list -> (string * int) list
(** Batch write: one access latency; returns new versions. *)

val put_if_version : t -> string -> Dval.t -> expected:int -> bool
(** Conditional write: succeeds only if the current version equals
    [expected]. *)

val version_of : t -> string -> int
(** Blocking version read; 0 if absent. *)

val versions_of : t -> string list -> (string * int) list
(** Batch version read: one access latency. *)

(* Latency-free accessors for test assertions and data seeding. *)

val peek : t -> string -> versioned option

val load : t -> (string * Dval.t) list -> unit
(** Seed data without advancing time; versions are set to 1 (or bumped if
    present). *)

val size : t -> int

val reads : t -> int
(** Cumulative count of read operations (batch counts once per key). *)

val writes : t -> int
