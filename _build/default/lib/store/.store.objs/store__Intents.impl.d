lib/store/intents.ml: Hashtbl Sim
