lib/store/locks.mli:
