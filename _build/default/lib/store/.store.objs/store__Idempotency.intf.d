lib/store/idempotency.mli:
