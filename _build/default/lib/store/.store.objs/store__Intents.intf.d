lib/store/intents.mli:
