lib/store/kv.mli: Dval
