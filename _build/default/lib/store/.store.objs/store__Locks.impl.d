lib/store/locks.ml: Hashtbl List Option Printf Queue Sim String
