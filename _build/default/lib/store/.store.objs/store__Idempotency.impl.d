lib/store/idempotency.ml: Hashtbl Sim
