lib/store/kv.ml: Dval Hashtbl List Sim
