type t = { table : (string, unit) Hashtbl.t; latency : float }

let create ?(access_latency = 3.0) () =
  { table = Hashtbl.create 64; latency = access_latency }

let register t ~exec_id =
  Sim.Engine.sleep t.latency;
  if Hashtbl.mem t.table exec_id then false
  else begin
    Hashtbl.replace t.table exec_id ();
    true
  end

let seen t ~exec_id = Hashtbl.mem t.table exec_id

let count t = Hashtbl.length t.table
