(* Failure drill: exercises Radical's fault-tolerance story end to end —
   lost write followups trigger deterministic re-execution, late
   followups are discarded (at-most-once), and wiped caches rebuild
   themselves through normal protocol traffic.

     dune exec examples/failure_drill.exe *)

open Sim
module Location = Net.Location
module Transport = Net.Transport
module Framework = Radical.Framework

let banner s = Printf.printf "\n--- %s ---\n" s

let () =
  let engine = Engine.create ~seed:21 () in
  Engine.run engine (fun () ->
      let net = Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) () in
      let config =
        {
          Framework.default_config with
          server = { Radical.Server.default_config with intent_timeout = 800.0 };
        }
      in
      let data = Apps.Forum.seed ~n_users:50 ~n_posts:50 (Rng.split (Engine.rng ())) in
      let fw =
        Framework.create ~config ~net ~funcs:Apps.Forum.functions ~data ()
      in
      let version_of k =
        match Store.Kv.peek (Framework.primary fw) k with
        | Some { version; _ } -> version
        | None -> 0
      in

      banner "1. Losing a write followup";
      Printf.printf "fpost:p3 score version before: %d\n" (version_of "fpost:p3");
      (* Drop the next followup from DE. *)
      let armed = ref true in
      Transport.set_fault net (fun ~src ~dst:_ ~label ->
          if !armed && label = "followup" && src = Location.de then begin
            armed := false;
            print_endline "   (network eats the followup)";
            Transport.Drop
          end
          else Transport.Deliver);
      let o =
        Framework.invoke fw ~from:Location.de "forum-interact"
          [ Dval.Str "f1"; Dval.Str "p3" ]
      in
      Printf.printf "upvote acknowledged to the client in %.1f ms\n" o.latency;
      print_endline "waiting for the write-intent timer to fire...";
      Engine.sleep 2000.0;
      let st = Radical.Server.stats (Framework.server fw) in
      Printf.printf
        "deterministic re-execution ran %d time(s); version now %d (applied exactly once)\n"
        st.reexecutions (version_of "fpost:p3");
      assert (st.reexecutions = 1 && version_of "fpost:p3" = 2);

      banner "2. A followup that arrives after re-execution";
      (* DE's cache was repaired by its own write, so this upvote takes
         the speculative path again — and its followup crawls. *)
      Transport.set_fault net (fun ~src ~dst:_ ~label ->
          if label = "followup" && src = Location.de then Transport.Delay 3000.0
          else Transport.Deliver);
      let _ =
        Framework.invoke fw ~from:Location.de "forum-interact"
          [ Dval.Str "f2"; Dval.Str "p3" ]
      in
      Engine.sleep 5000.0;
      Transport.clear_fault net;
      let st = Radical.Server.stats (Framework.server fw) in
      Printf.printf
        "late followup discarded (%d discarded); version %d — no double apply\n"
        st.followups_discarded (version_of "fpost:p3");
      assert (st.followups_discarded = 1);
      assert (version_of "fpost:p3" = 3);

      banner "3. Losing an entire near-user cache";
      let rt = Framework.runtime fw Location.jp in
      let o1 = Framework.invoke fw ~from:Location.jp "forum-view" [ Dval.Str "f1"; Dval.Str "p9" ] in
      Printf.printf "warm read from JP: %.1f ms (%s)\n" o1.latency
        (match o1.path with Radical.Runtime.Speculative -> "speculative" | _ -> "backup");
      Cache.wipe (Radical.Runtime.cache rt);
      print_endline "JP cache wiped!";
      let o2 = Framework.invoke fw ~from:Location.jp "forum-view" [ Dval.Str "f1"; Dval.Str "p9" ] in
      Printf.printf "first read after wipe: %.1f ms (%s — repairs the cache)\n"
        o2.latency
        (match o2.path with Radical.Runtime.Backup -> "backup" | _ -> "speculative");
      let o3 = Framework.invoke fw ~from:Location.jp "forum-view" [ Dval.Str "f1"; Dval.Str "p9" ] in
      Printf.printf "second read: %.1f ms (%s — bootstrap complete)\n" o3.latency
        (match o3.path with Radical.Runtime.Speculative -> "speculative" | _ -> "backup");

      banner "4. Raft-backed replicated LVI server surviving a leader crash";
      Framework.stop fw;
      let config =
        {
          Framework.default_config with
          locations = [ Location.ca ];
          server =
            {
              Radical.Server.default_config with
              mode = Radical.Server.Replicated { az_rtt = 1.5 };
            };
        }
      in
      let fw2 =
        Framework.create ~config ~net ~funcs:Apps.Forum.functions ~data ()
      in
      Engine.sleep 1000.0;
      let o =
        Framework.invoke fw2 ~from:Location.ca "forum-interact"
          [ Dval.Str "f3"; Dval.Str "p5" ]
      in
      Printf.printf "upvote through raft-persisted locks: %.1f ms\n" o.latency;
      Engine.sleep 2000.0;
      Printf.printf "lock state is consensus-replicated across 3 AZs.\n";
      Framework.stop fw2;
      print_endline "\nAll drills passed.")
