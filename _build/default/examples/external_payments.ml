(* External services (§3.5): a checkout handler charges a payment
   provider. A single Radical request can execute its function twice —
   speculation plus backup, or speculation plus deterministic
   re-execution after a lost followup — so Radical attaches Stripe-style
   idempotency keys and the provider charges at most once.

     dune exec examples/external_payments.exe *)

open Sim
open Fdsl.Ast
module Location = Net.Location
module Transport = Net.Transport
module Framework = Radical.Framework
module Extsvc = Radical.Extsvc

let checkout =
  {
    fn_name = "checkout";
    params = [ "user" ];
    body =
      Let
        ( "cart",
          Read (Concat [ Str "cart:"; Input "user" ]),
          Compute
            ( 40.0,
              Let
                ( "receipt",
                  External ("stripe", Var "cart"),
                  Seq
                    [
                      Write
                        (Concat [ Str "receipt:"; Input "user" ], Var "receipt");
                      Write (Concat [ Str "cart:"; Input "user" ], List_lit []);
                      Var "receipt";
                    ] ) ) );
  }

let () =
  let engine = Engine.create ~seed:9 () in
  Engine.run engine (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw =
        Framework.create ~net ~funcs:[ checkout ]
          ~data:
            [
              ("cart:alice", Dval.List [ Dval.Str "book"; Dval.Str "pen" ]);
              ("cart:bob", Dval.List [ Dval.Str "lamp" ]);
            ]
          ()
      in
      let charges = ref 0 in
      Framework.register_external fw ~name:"stripe" ~latency:8.0 (fun cart ->
          incr charges;
          Dval.Record [ ("charged_for", cart); ("ok", Dval.Bool true) ]);
      let ext = Framework.external_services fw in

      print_endline "1. Normal checkout from Ireland: speculation calls the";
      print_endline "   provider; the followup carries the writes home.";
      let o = Framework.invoke fw ~from:Location.ie "checkout" [ Dval.Str "alice" ] in
      Printf.printf "   checkout done in %.1f ms; stripe charged %d time(s)\n\n"
        o.latency
        (Extsvc.handler_runs ext "stripe");

      print_endline "2. Checkout whose followup the network eats: the write";
      print_endline "   intent expires, the function deterministically";
      print_endline "   re-executes near storage — and regenerates the same";
      print_endline "   idempotency keys, so the charge is not repeated.";
      let armed = ref true in
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if !armed && label = "followup" then begin
            armed := false;
            Transport.Drop
          end
          else Transport.Deliver);
      let _ = Framework.invoke fw ~from:Location.de "checkout" [ Dval.Str "bob" ] in
      Engine.sleep 3000.0;
      let st = Radical.Server.stats (Framework.server fw) in
      Printf.printf
        "   re-executions: %d; stripe attempts: %d; actual charges: %d\n\n"
        st.reexecutions
        (Extsvc.requests ext "stripe")
        (Extsvc.handler_runs ext "stripe");
      assert (st.reexecutions = 1);
      assert (Extsvc.handler_runs ext "stripe" = 2) (* alice + bob, once each *);

      (match Store.Kv.peek (Framework.primary fw) "receipt:bob" with
      | Some { value; _ } ->
          Printf.printf "   bob's receipt reached primary storage: %s\n"
            (Dval.to_string value)
      | None -> print_endline "   receipt missing!");
      print_endline "\nAt-most-once external effects, exactly as §3.5 requires.";
      Framework.stop fw)
