(* The social-media application from the paper's evaluation, deployed on
   Radical and driven by the Table 1 workload. Demonstrates cross-region
   consistency (a post made in California is immediately readable from
   Tokyo) and prints the per-function latency profile.

     dune exec examples/social_media.exe *)

open Sim
module Location = Net.Location
module Framework = Radical.Framework

let () =
  let engine = Engine.create ~seed:3 () in
  Engine.run engine (fun () ->
      let rng = Engine.rng () in
      let net = Net.Transport.create ~jitter_sigma:0.05 ~rng:(Rng.split rng) () in
      print_endline "Seeding 1000 users with posts, timelines and follow edges...";
      let data = Apps.Social.seed (Rng.split rng) in
      let fw = Framework.create ~net ~funcs:Apps.Social.functions ~data () in
      Framework.record_history fw;

      (* --- Strong consistency across regions ----------------------- *)
      print_endline "\nu7 posts from California:";
      let o =
        Framework.invoke fw ~from:Location.ca "social-post"
          [ Dval.Str "u7"; Dval.Str "hello from SF" ]
      in
      Printf.printf "  post acknowledged in %.1f ms\n" o.latency;
      (* Find one of u7's followers and read their timeline from Tokyo:
         the write must be visible (linearizability), even though Tokyo's
         cache has not heard about it. *)
      let follower =
        match Store.Kv.peek (Framework.primary fw) "followers:u7" with
        | Some { value = Dval.List (Dval.Str f :: _); _ } -> f
        | _ -> "u0"
      in
      Engine.sleep 50.0;
      let tl =
        Framework.invoke fw ~from:Location.jp "social-timeline" [ Dval.Str follower ]
      in
      let saw_post =
        match tl.value with
        | Ok (Dval.List posts) ->
            List.exists
              (fun p ->
                match Dval.field_opt p "text" with
                | Some (Dval.Str "hello from SF") -> true
                | _ -> false)
              posts
        | _ -> false
      in
      Printf.printf
        "  %s's timeline read from Tokyo %.1f ms — sees the new post: %b\n"
        follower tl.latency saw_post;

      (* --- Table 1 workload ----------------------------------------- *)
      print_endline "\nRunning the Table 1 mix (50 clients, 5 regions)...";
      let gen = Apps.Social.gen () in
      let samples = Hashtbl.create 8 in
      let rngs = Array.init 50 (fun _ -> Rng.split rng) in
      Workload.Driver.run_clients ~n:50 ~iterations:20 ~think_time:300.0
        (fun ~client ~iter:_ ->
          let from = List.nth Location.user_locations (client mod 5) in
          let fn, args = Apps.Social.next gen rngs.(client) in
          let o = Framework.invoke fw ~from fn args in
          let s =
            match Hashtbl.find_opt samples fn with
            | Some s -> s
            | None ->
                let s = Metrics.Stats.create () in
                Hashtbl.add samples fn s;
                s
          in
          Metrics.Stats.add s o.latency);
      print_newline ();
      Metrics.Table.print
        ~header:[ "function"; "requests"; "median (ms)"; "p99 (ms)" ]
        ~rows:
          (List.map
             (fun (fn, s) ->
               [
                 fn;
                 string_of_int (Metrics.Stats.count s);
                 Metrics.Table.ms (Metrics.Stats.median s);
                 Metrics.Table.ms (Metrics.Stats.p99 s);
               ])
             (List.sort compare
                (Hashtbl.fold (fun k v acc -> (k, v) :: acc) samples [])));
      let st = Radical.Server.stats (Framework.server fw) in
      Printf.printf "\nValidation success rate: %.1f%%\n"
        (100.0
        *. float_of_int st.validated
        /. float_of_int (max 1 (st.validated + st.mismatched)));
      Engine.sleep 5000.0;
      (* Check linearizability of the write-bearing prefix of the
         recorded history (the full 1000-op history is covered by the
         property tests; the checker is exponential in the worst case). *)
      let history = Framework.history fw in
      let prefix = List.filteri (fun i _ -> i < 200) history in
      Printf.printf "History prefix linearizable: %b (%d of %d operations)\n"
        (Lincheck.check ~init:data prefix)
        (List.length prefix) (List.length history);
      Framework.stop fw)
