examples/social_media.ml: Apps Array Dval Engine Hashtbl Lincheck List Metrics Net Printf Radical Rng Sim Store Workload
