examples/quickstart.mli:
