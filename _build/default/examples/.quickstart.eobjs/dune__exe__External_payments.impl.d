examples/external_payments.ml: Dval Engine Fdsl Net Printf Radical Rng Sim Store
