examples/external_payments.mli:
