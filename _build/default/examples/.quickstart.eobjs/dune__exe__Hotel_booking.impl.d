examples/hotel_booking.ml: Apps Dval Engine Ivar List Net Printf Radical Rng Sim Store
