examples/failure_drill.ml: Apps Cache Dval Engine Net Printf Radical Rng Sim Store
