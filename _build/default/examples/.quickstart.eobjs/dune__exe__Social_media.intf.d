examples/social_media.mli:
