examples/quickstart.ml: Dval Engine Fdsl Ivar Net Printf Radical Rng Sim Store
