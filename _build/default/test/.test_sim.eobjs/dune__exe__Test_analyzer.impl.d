test/test_analyzer.ml: Alcotest Analyzer Ast Dval Eval Fdsl Format Hashtbl List Option Printf QCheck QCheck_alcotest
