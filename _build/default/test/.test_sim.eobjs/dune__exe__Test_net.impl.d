test/test_net.ml: Alcotest Engine Float Fun Ivar List Net Printf Rng Sim
