test/test_apps.ml: Alcotest Analyzer Apps Array Cost Dval Fdsl Format Hashtbl List Metrics Option Printf QCheck QCheck_alcotest Radical Sim String Workload
