test/test_raft.ml: Alcotest Engine Gen List Net Printf QCheck QCheck_alcotest Raft Rng Sim String
