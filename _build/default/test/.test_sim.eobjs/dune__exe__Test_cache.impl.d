test/test_cache.ml: Alcotest Cache Dval Engine Sim
