test/test_fdsl.mli:
