test/test_store.ml: Alcotest Dval Engine Gen List Printf QCheck QCheck_alcotest Rng Sim Store String
