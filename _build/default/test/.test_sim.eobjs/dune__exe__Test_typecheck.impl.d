test/test_typecheck.ml: Alcotest Apps Ast Dval Fdsl Format List Sim Typecheck Types
