test/test_radical.ml: Alcotest Cache Dval Engine Fdsl Gen Ivar Lincheck List Net Printf QCheck QCheck_alcotest Radical Rng Sim Store String
