test/test_fdsl.ml: Alcotest Ast Compile Dval Eval Fdsl Float Format Hashtbl Int64 List Option Printf QCheck QCheck_alcotest String Wasm
