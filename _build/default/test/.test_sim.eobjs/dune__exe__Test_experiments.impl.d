test/test_experiments.ml: Alcotest Dval Experiments Fdsl Filename Float Fun In_channel List Metrics Net Option Out_channel Printf QCheck QCheck_alcotest Radical Sim Sys
