test/test_parse.ml: Alcotest Ast Dval Eval Fdsl Format Hashtbl Int64 List Option Parse Printf QCheck QCheck_alcotest Radical String
