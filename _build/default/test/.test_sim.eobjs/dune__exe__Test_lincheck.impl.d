test/test_lincheck.ml: Alcotest Dval Hashtbl Lincheck List Option Printf QCheck QCheck_alcotest
