test/test_sim.ml: Alcotest Array Engine Float Fun Int Ivar List Mailbox Pqueue QCheck QCheck_alcotest Rng Sim Timer
