test/test_radical.mli:
