test/test_features.ml: Alcotest Analyzer Apps Array Cache Dval Engine Fdsl Format List Net Option Printf Radical Result Rng Sim Store String Wasm Workload
