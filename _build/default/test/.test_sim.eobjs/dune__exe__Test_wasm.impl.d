test/test_wasm.ml: Alcotest Apps Bytes Char Codec Dval Fdsl Format Gen Host Instr Int64 Interp List Option Printf QCheck QCheck_alcotest String Validate Wasm Wmodule
