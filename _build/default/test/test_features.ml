(* Tests for the extension features: external services with at-most-once
   semantics (§3.5), developer-provided f^rw (§7), persistent caches
   (§3.2 extension), multi-app deployments, and LVI-server failover. *)

open Sim
open Fdsl.Ast
module Transport = Net.Transport
module Location = Net.Location
module Framework = Radical.Framework
module Runtime = Radical.Runtime
module Server = Radical.Server
module Extsvc = Radical.Extsvc
module Kv = Store.Kv

let run_sim ?(seed = 5) f =
  let e = Engine.create ~seed () in
  Engine.run e f

let check_dval msg expected got =
  Alcotest.(check string) msg (Dval.to_string expected) (Dval.to_string got)

let ok_value (o : Runtime.outcome) =
  match o.value with
  | Ok v -> v
  | Error e -> Alcotest.fail ("execution failed: " ^ e)

(* A checkout handler: reads the cart, charges a payment provider,
   records the receipt. The payment must happen at most once per request
   no matter how many times the function executes. *)
let checkout_fn =
  {
    fn_name = "checkout";
    params = [ "user" ];
    body =
      Let
        ( "cart",
          Read (Concat [ Str "cart:"; Input "user" ]),
          Compute
            ( 30.0,
              Let
                ( "receipt",
                  External ("payments", Var "cart"),
                  Seq
                    [
                      Write (Concat [ Str "receipt:"; Input "user" ], Var "receipt");
                      Var "receipt";
                    ] ) ) );
  }

let data = [ ("cart:alice", Dval.Str "cart-contents"); ("x", Dval.int 0) ]

let with_checkout ?seed f =
  run_sim ?seed (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw = Framework.create ~net ~funcs:[ checkout_fn ] ~data () in
      Framework.register_external fw ~name:"payments" (fun payload ->
          Dval.Record [ ("paid", payload); ("status", Dval.Str "ok") ]);
      f net fw;
      Framework.stop fw)

(* ------------------------------------------------------------------ *)
(* External services                                                    *)

let test_external_call_speculative_path () =
  with_checkout (fun _ fw ->
      let o = Framework.invoke fw ~from:Location.ca "checkout" [ Dval.Str "alice" ] in
      check_dval "receipt returned"
        (Dval.Record
           [ ("paid", Dval.Str "cart-contents"); ("status", Dval.Str "ok") ])
        (ok_value o);
      Engine.sleep 2000.0;
      let ext = Framework.external_services fw in
      Alcotest.(check int) "provider charged once" 1
        (Extsvc.handler_runs ext "payments");
      (match Kv.peek (Framework.primary fw) "receipt:alice" with
      | Some _ -> ()
      | None -> Alcotest.fail "receipt not persisted"))

let test_external_at_most_once_under_reexecution () =
  with_checkout (fun net fw ->
      (* Drop the followup: the function runs twice (speculation, then
         deterministic re-execution) — the provider must still charge
         exactly once because both executions derive the same
         idempotency keys. *)
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if label = "followup" then Transport.Drop else Transport.Deliver);
      let _ = Framework.invoke fw ~from:Location.ca "checkout" [ Dval.Str "alice" ] in
      Engine.sleep 3000.0;
      let st = Server.stats (Framework.server fw) in
      Alcotest.(check int) "re-execution happened" 1 st.reexecutions;
      let ext = Framework.external_services fw in
      Alcotest.(check int) "two call attempts" 2 (Extsvc.requests ext "payments");
      Alcotest.(check int) "but charged once" 1
        (Extsvc.handler_runs ext "payments"))

let test_external_at_most_once_on_validation_failure () =
  with_checkout (fun _ fw ->
      (* Make CA's cache stale so checkout speculates AND runs as backup:
         both executions call the provider; dedupe keeps it at one. *)
      let rt = Framework.runtime fw Location.ca in
      Cache.update (Runtime.cache rt) "cart:alice" (Dval.Str "stale") ~version:99;
      let o = Framework.invoke fw ~from:Location.ca "checkout" [ Dval.Str "alice" ] in
      Alcotest.(check bool) "took the backup path" true
        (o.path = Runtime.Backup);
      Engine.sleep 2000.0;
      let ext = Framework.external_services fw in
      Alcotest.(check bool) "both executions attempted" true
        (Extsvc.requests ext "payments" >= 2);
      Alcotest.(check int) "charged once" 1 (Extsvc.handler_runs ext "payments"))

let test_external_unknown_service_errors () =
  run_sim (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw = Framework.create ~net ~funcs:[ checkout_fn ] ~data () in
      (* No provider registered. *)
      let o = Framework.invoke fw ~from:Location.ca "checkout" [ Dval.Str "alice" ] in
      (match o.value with
      | Error e ->
          Alcotest.(check bool) "mentions the service" true
            (String.length e > 0)
      | Ok v -> Alcotest.fail ("expected error, got " ^ Dval.to_string v));
      Framework.stop fw)

let test_external_result_cannot_feed_keys () =
  (* A storage key computed from a provider response is unpredictable:
     the analyzer must refuse to derive f^rw. *)
  let bad =
    {
      fn_name = "bad-routing";
      params = [];
      body = Read (External ("router", Str "which-shard?"));
    }
  in
  match Analyzer.Derive.derive bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unanalyzable"

let test_external_compiles_and_validates () =
  let m = Fdsl.Compile.compile checkout_fn in
  (match Wasm.Validate.check m with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wasm.Validate.pp_error e));
  Alcotest.(check bool) "external.call imported" true
    (List.mem "external.call" m.imports)

(* ------------------------------------------------------------------ *)
(* Manual f^rw (§7)                                                     *)

(* The key computation hides behind an analysis barrier, but the
   developer knows it: reads "profile:<u>", writes "seen:<u>". *)
let opaque_profile =
  {
    fn_name = "opaque-profile";
    params = [ "u" ];
    body =
      Compute
        ( 60.0,
          Seq
            [
              Write (Opaque (Concat [ Str "seen:"; Input "u" ]), Bool true);
              Read (Opaque (Concat [ Str "profile:"; Input "u" ]));
            ] );
  }

let manual_rw =
  {
    fn_name = "opaque-profile^rw";
    params = [ "u" ];
    body =
      Seq
        [
          Declare (Decl_write, Concat [ Str "seen:"; Input "u" ]);
          Declare (Decl_read, Concat [ Str "profile:"; Input "u" ]);
        ];
  }

let test_manual_rw_registration () =
  run_sim (fun () ->
      (* Automatic analysis fails... *)
      (match Analyzer.Derive.derive opaque_profile with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected unanalyzable");
      (* ...but manual registration restores the speculative path. *)
      let reg = Radical.Registry.create () in
      (match Radical.Registry.register_manual reg opaque_profile ~rw_func:manual_rw with
      | Ok entry ->
          Alcotest.(check bool) "has derived" true (entry.derived <> None)
      | Error e -> Alcotest.fail e);
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let kv = Kv.create () in
      Kv.load kv [ ("profile:bob", Dval.Str "bob's profile") ];
      let srv = Server.create ~net ~registry:reg ~kv Server.default_config in
      let cache = Cache.create () in
      Cache.update cache "profile:bob" (Dval.Str "bob's profile") ~version:1;
      Cache.update cache "seen:bob" Dval.Unit ~version:0;
      let rt =
        Runtime.create ~net ~registry:reg ~cache ~server:srv
          (Runtime.config Location.de)
      in
      let o = Runtime.invoke rt "opaque-profile" [ Dval.Str "bob" ] in
      Alcotest.(check bool) "speculative via manual f^rw" true
        (o.path = Runtime.Speculative);
      check_dval "value" (Dval.Str "bob's profile") (ok_value o))

let test_manual_rw_param_mismatch () =
  let wrong = { manual_rw with params = [ "u"; "extra" ] } in
  let reg = Radical.Registry.create () in
  match Radical.Registry.register_manual reg opaque_profile ~rw_func:wrong with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parameter mismatch rejection"

(* ------------------------------------------------------------------ *)
(* Persistent caches                                                    *)

let test_cache_snapshot_restore () =
  run_sim (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let get_fn =
        { fn_name = "get"; params = [ "k" ]; body = Compute (50.0, Read (Input "k")) }
      in
      let fw = Framework.create ~net ~funcs:[ get_fn ] ~data () in
      let rt = Framework.runtime fw Location.jp in
      let o1 = Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ] in
      Alcotest.(check bool) "warm" true (o1.path = Runtime.Speculative);
      (* "Restart": persist, lose the cache, restore — no bootstrap
         penalty, unlike a plain wipe. *)
      let saved = Cache.snapshot (Runtime.cache rt) in
      Cache.wipe (Runtime.cache rt);
      Cache.restore (Runtime.cache rt) saved;
      let o2 = Framework.invoke fw ~from:Location.jp "get" [ Dval.Str "x" ] in
      Alcotest.(check bool) "restored cache still validates" true
        (o2.path = Runtime.Speculative);
      Framework.stop fw)

(* ------------------------------------------------------------------ *)
(* Multi-app deployment                                                 *)

let test_all_five_apps_in_one_deployment () =
  run_sim (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let rng = Rng.split (Engine.rng ()) in
      let data =
        Apps.Social.seed ~n_users:30 rng
        @ Apps.Hotel.seed ~n_users:20 rng
        @ Apps.Forum.seed ~n_users:20 ~n_posts:20 rng
        @ Apps.Imageboard.seed ~n_users:20 ~n_images:20 rng
        @ Apps.Projectmgmt.seed ~n_users:20 ~n_projects:5 rng
      in
      let fw =
        Framework.create ~net ~funcs:Apps.Catalog.all_functions ~data ()
      in
      let cases =
        [
          ("social-timeline", [ Dval.Str "u3" ]);
          ("hotel-recommend", [ Dval.Str "c1" ]);
          ("forum-homepage", [ Dval.Str "f1" ]);
          ("ib-view", [ Dval.Str "i3" ]);
          ("pm-board", [ Dval.Str "pr2" ]);
        ]
      in
      List.iteri
        (fun i (fn, args) ->
          let from = List.nth Location.user_locations (i mod 5) in
          let o = Framework.invoke fw ~from fn args in
          match o.value with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (fn ^ ": " ^ e))
        cases;
      Framework.stop fw)

(* ------------------------------------------------------------------ *)
(* Replicated-server failover                                           *)

let test_lvi_survives_raft_leader_crash () =
  let config =
    {
      Framework.default_config with
      locations = [ Location.ca ];
      server =
        { Server.default_config with mode = Server.Replicated { az_rtt = 1.5 } };
    }
  in
  run_sim (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let put_fn =
        {
          fn_name = "put";
          params = [ "k"; "v" ];
          body = Compute (10.0, Write (Input "k", Input "v"));
        }
      in
      let fw = Framework.create ~config ~net ~funcs:[ put_fn ] ~data () in
      Engine.sleep 1000.0;
      let o1 =
        Framework.invoke fw ~from:Location.ca "put" [ Dval.Str "x"; Dval.int 1 ]
      in
      Alcotest.(check bool) "write before crash ok" true
        (o1.path = Runtime.Speculative);
      (* Kill the lock cluster's leader mid-flight. *)
      let cluster =
        Option.get (Server.raft_cluster (Framework.server fw))
      in
      (match Radical.Raft_locks.leader cluster with
      | Some l -> Radical.Raft_locks.crash cluster l
      | None -> Alcotest.fail "no raft leader");
      Engine.sleep 100.0;
      (* The next LVI request's lock persistence rides out the election. *)
      let o2 =
        Framework.invoke fw ~from:Location.ca "put" [ Dval.Str "x"; Dval.int 2 ]
      in
      Alcotest.(check bool) "write during failover still succeeds" true
        (o2.value = Ok Dval.Unit || Result.is_ok o2.value);
      Engine.sleep 2000.0;
      (match Kv.peek (Framework.primary fw) "x" with
      | Some { value; _ } -> check_dval "final value" (Dval.int 2) value
      | None -> Alcotest.fail "x missing");
      Framework.stop fw)

(* ------------------------------------------------------------------ *)
(* LVI-server restart recovery                                          *)

let test_server_restart_resolves_orphaned_intents () =
  run_sim (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let put_fn =
        {
          fn_name = "put";
          params = [ "k"; "v" ];
          body = Compute (10.0, Write (Input "k", Input "v"));
        }
      in
      let fw = Framework.create ~net ~funcs:[ put_fn ] ~data () in
      (* A validated write whose followup crawls: at the moment of the
         crash an intent is pending with locks held. *)
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if label = "followup" then Transport.Delay 5000.0
          else Transport.Deliver);
      let o =
        Framework.invoke fw ~from:Location.ca "put"
          [ Dval.Str "x"; Dval.Str "crashed" ]
      in
      Alcotest.(check bool) "client was answered" true
        (o.path = Runtime.Speculative);
      let srv = Framework.server fw in
      Alcotest.(check int) "intent pending" 1 (Server.pending_intents srv);
      Alcotest.(check bool) "locks held" true (Server.locks_held srv > 0);
      (* Crash-restart before the intent timer fires: volatile timers are
         gone; recovery resolves the orphan from durable state. *)
      Server.restart_recover srv;
      Engine.sleep 100.0;
      let st = Server.stats srv in
      Alcotest.(check int) "recovery re-executed" 1 st.reexecutions;
      Alcotest.(check int) "no pending intents" 0 (Server.pending_intents srv);
      Alcotest.(check int) "locks released" 0 (Server.locks_held srv);
      (match Kv.peek (Framework.primary fw) "x" with
      | Some { value; version } ->
          check_dval "write recovered" (Dval.Str "crashed") value;
          Alcotest.(check int) "applied exactly once" 2 version
      | None -> Alcotest.fail "x missing");
      (* The crawling followup eventually arrives — and is discarded. *)
      Engine.sleep 8000.0;
      let st = Server.stats srv in
      Alcotest.(check int) "late followup discarded" 1 st.followups_discarded;
      (match Kv.peek (Framework.primary fw) "x" with
      | Some { version; _ } -> Alcotest.(check int) "no double apply" 2 version
      | None -> Alcotest.fail "x missing");
      Framework.stop fw)

let test_server_restart_with_no_intents_is_noop () =
  run_sim (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let fw = Framework.create ~net ~funcs:[ checkout_fn ] ~data () in
      Framework.register_external fw ~name:"payments" (fun p -> p);
      let srv = Framework.server fw in
      Server.restart_recover srv;
      let o = Framework.invoke fw ~from:Location.ie "checkout" [ Dval.Str "alice" ] in
      Alcotest.(check bool) "server serves after empty recovery" true
        (Result.is_ok o.value);
      Framework.stop fw)

(* ------------------------------------------------------------------ *)
(* Adaptive intent timers (§3.4)                                      *)

let test_adaptive_timer_recovers_faster_than_ceiling () =
  run_sim (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.0 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let put_fn =
        {
          fn_name = "put";
          params = [ "k"; "v" ];
          body = Compute (10.0, Write (Input "k", Input "v"));
        }
      in
      let config =
        {
          Framework.default_config with
          server =
            { Server.default_config with intent_timeout = 5000.0 };
        }
      in
      let fw = Framework.create ~config ~net ~funcs:[ put_fn ] ~data:[] () in
      (* Warm up the delay estimate with two healthy writes. *)
      let _ = Framework.invoke fw ~from:Location.ca "put" [ Dval.Str "a"; Dval.int 1 ] in
      Engine.sleep 500.0;
      let _ = Framework.invoke fw ~from:Location.ca "put" [ Dval.Str "a"; Dval.int 2 ] in
      Engine.sleep 500.0;
      (* Now lose a followup: the adaptive timer (~4x the observed ~70 ms
         followup delay) should replay long before the 5 s ceiling. *)
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if label = "followup" then Transport.Drop else Transport.Deliver);
      let t0 = Engine.now () in
      let _ = Framework.invoke fw ~from:Location.ca "put" [ Dval.Str "a"; Dval.int 3 ] in
      let rec wait_for_reexec () =
        if (Server.stats (Framework.server fw)).reexecutions > 0 then
          Engine.now () -. t0
        else if Engine.now () -. t0 > 6000.0 then
          Alcotest.fail "re-execution never happened"
        else begin
          Engine.sleep 25.0;
          wait_for_reexec ()
        end
      in
      let elapsed = wait_for_reexec () in
      Alcotest.(check bool)
        (Printf.sprintf "replayed after %.0f ms, far below the 5000 ms ceiling"
           elapsed)
        true (elapsed < 1500.0);
      (* Let the replay finish applying its writes. *)
      Engine.sleep 200.0;
      (match Kv.peek (Framework.primary fw) "a" with
      | Some { value; _ } -> check_dval "write recovered" (Dval.int 3) value
      | None -> Alcotest.fail "a missing");
      Framework.stop fw)

(* ------------------------------------------------------------------ *)
(* Soak: a long mixed run leaves no residue                             *)

let test_soak_no_residue () =
  (* 5,000 social requests with jitter and occasional followup loss:
     at quiescence no locks are held, no intents are pending, the server
     accounted for every request, and primary versions are monotone. *)
  run_sim ~seed:99 (fun () ->
      let net =
        Transport.create ~jitter_sigma:0.05 ~rng:(Rng.split (Engine.rng ())) ()
      in
      let rng = Rng.split (Engine.rng ()) in
      Transport.set_fault net (fun ~src:_ ~dst:_ ~label ->
          if label = "followup" && Rng.int rng 20 = 0 then Transport.Drop
          else Transport.Deliver);
      let data = Apps.Social.seed (Rng.split (Engine.rng ())) in
      let fw = Framework.create ~net ~funcs:Apps.Social.functions ~data () in
      let gen = Apps.Social.gen () in
      let rngs = Array.init 50 (fun _ -> Rng.split (Engine.rng ())) in
      let errors = ref 0 in
      Workload.Driver.run_clients ~n:50 ~iterations:100 ~think_time:50.0
        (fun ~client ~iter:_ ->
          let from = List.nth Location.user_locations (client mod 5) in
          let fn, args = Apps.Social.next gen rngs.(client) in
          let o = Framework.invoke fw ~from fn args in
          if Result.is_error o.value then incr errors);
      (* Let stragglers (followups, intent timers) resolve. *)
      Engine.sleep 10_000.0;
      let srv = Framework.server fw in
      let st = Server.stats srv in
      Alcotest.(check int) "no errors" 0 !errors;
      Alcotest.(check int) "no locks held" 0 (Server.locks_held srv);
      Alcotest.(check int) "no pending intents" 0 (Server.pending_intents srv);
      Alcotest.(check int) "every request accounted" 5000
        (st.validated + st.mismatched + st.direct_executions);
      Alcotest.(check bool) "some followups were lost and replayed" true
        (st.reexecutions > 0);
      Framework.stop fw)

let () =
  Alcotest.run "features"
    [
      ( "external-services",
        [
          Alcotest.test_case "speculative path charges once" `Quick
            test_external_call_speculative_path;
          Alcotest.test_case "at-most-once under re-execution" `Quick
            test_external_at_most_once_under_reexecution;
          Alcotest.test_case "at-most-once on validation failure" `Quick
            test_external_at_most_once_on_validation_failure;
          Alcotest.test_case "unknown service errors" `Quick
            test_external_unknown_service_errors;
          Alcotest.test_case "result cannot feed keys" `Quick
            test_external_result_cannot_feed_keys;
          Alcotest.test_case "compiles and validates" `Quick
            test_external_compiles_and_validates;
        ] );
      ( "manual-frw",
        [
          Alcotest.test_case "registration restores speculation" `Quick
            test_manual_rw_registration;
          Alcotest.test_case "param mismatch rejected" `Quick
            test_manual_rw_param_mismatch;
        ] );
      ( "persistent-cache",
        [ Alcotest.test_case "snapshot/restore" `Quick test_cache_snapshot_restore ] );
      ( "deployment",
        [
          Alcotest.test_case "all five apps together" `Quick
            test_all_five_apps_in_one_deployment;
        ] );
      ( "failover",
        [
          Alcotest.test_case "LVI survives raft leader crash" `Quick
            test_lvi_survives_raft_leader_crash;
          Alcotest.test_case "server restart resolves orphaned intents" `Quick
            test_server_restart_resolves_orphaned_intents;
          Alcotest.test_case "empty recovery is a no-op" `Quick
            test_server_restart_with_no_intents_is_noop;
        ] );
      ( "adaptive-timer",
        [
          Alcotest.test_case "recovers faster than the ceiling" `Quick
            test_adaptive_timer_recovers_faster_than_ceiling;
        ] );
      ( "soak",
        [ Alcotest.test_case "no residue after 5k requests" `Slow test_soak_no_residue ] );
    ]
