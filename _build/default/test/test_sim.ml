(* Tests for the discrete-event engine and its synchronization primitives. *)

open Sim

let run_sim ?seed ?until f =
  let e = Engine.create ?seed () in
  Engine.run ?until e f

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_order () =
  let q = Pqueue.create ~cmp:Int.compare in
  List.iter (Pqueue.push q) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_pqueue_peek () =
  let q = Pqueue.create ~cmp:Int.compare in
  Alcotest.(check (option int)) "empty peek" None (Pqueue.peek q);
  Pqueue.push q 3;
  Pqueue.push q 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Pqueue.peek q);
  Alcotest.(check int) "length" 2 (Pqueue.length q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let q = Pqueue.create ~cmp:Int.compare in
      List.iter (Pqueue.push q) xs;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  (* Child stream differs from parent continuation. *)
  Alcotest.(check bool) "streams differ" true (Rng.bits64 child <> Rng.bits64 a)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let v = Rng.int r n in
      v >= 0 && v < n)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float within bounds" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let v = Rng.float r 10.0 in
      v >= 0.0 && v < 10.0)

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_rng_exponential_positive () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.exponential r ~mean:5.0 >= 0.0)
  done

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_sleep_advances_clock () =
  let final = ref 0.0 in
  run_sim (fun () ->
      check_float "starts at zero" 0.0 (Engine.now ());
      Engine.sleep 10.0;
      check_float "after sleep" 10.0 (Engine.now ());
      Engine.sleep 2.5;
      final := Engine.now ());
  check_float "accumulates" 12.5 !final

let test_negative_sleep_clamped () =
  run_sim (fun () ->
      Engine.sleep (-5.0);
      check_float "clamped" 0.0 (Engine.now ()))

let test_same_time_fifo () =
  let order = ref [] in
  run_sim (fun () ->
      for i = 1 to 5 do
        Engine.spawn (fun () -> order := i :: !order)
      done);
  Alcotest.(check (list int)) "spawn order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_sleep_interleaving () =
  let order = ref [] in
  run_sim (fun () ->
      Engine.spawn (fun () ->
          Engine.sleep 3.0;
          order := "c" :: !order);
      Engine.spawn (fun () ->
          Engine.sleep 1.0;
          order := "a" :: !order);
      Engine.spawn (fun () ->
          Engine.sleep 2.0;
          order := "b" :: !order));
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_yield_defers () =
  let order = ref [] in
  run_sim (fun () ->
      Engine.spawn (fun () ->
          order := "a1" :: !order;
          Engine.yield ();
          order := "a2" :: !order);
      Engine.spawn (fun () -> order := "b" :: !order));
  Alcotest.(check (list string)) "yield order" [ "a1"; "b"; "a2" ]
    (List.rev !order)

let test_fiber_error_propagates () =
  Alcotest.check_raises "fiber error"
    (Engine.Fiber_error ("boom", Failure "x"))
    (fun () ->
      run_sim (fun () -> Engine.spawn ~name:"boom" (fun () -> failwith "x")))

let test_until_caps_time () =
  let e = Engine.create () in
  let reached = ref false in
  Engine.run ~until:5.0 e (fun () ->
      Engine.sleep 10.0;
      reached := true);
  Alcotest.(check bool) "event beyond cap not run" false !reached;
  Alcotest.(check int) "fiber still live" 1 (Engine.live_fibers e)

let test_run_outside_raises () =
  Alcotest.check_raises "not running" Engine.Not_running (fun () ->
      ignore (Engine.now ()))

let test_blocked_fiber_quiescence () =
  let e = Engine.create () in
  Engine.run e (fun () ->
      Engine.spawn (fun () -> ignore (Ivar.read (Ivar.create ()))));
  Alcotest.(check int) "one blocked fiber" 1 (Engine.live_fibers e)

let test_schedule_callback () =
  let fired = ref [] in
  run_sim (fun () ->
      Engine.schedule ~at:7.0 (fun () -> fired := Engine.now () :: !fired);
      Engine.schedule ~at:3.0 (fun () -> fired := Engine.now () :: !fired));
  Alcotest.(check (list (float 1e-9))) "callbacks in time order" [ 3.0; 7.0 ]
    (List.rev !fired)

let test_engine_runs_twice () =
  (* Virtual time persists across run calls on the same engine. *)
  let e = Engine.create () in
  Engine.run e (fun () -> Engine.sleep 5.0);
  let final = ref 0.0 in
  Engine.run e (fun () ->
      Engine.sleep 3.0;
      final := Engine.now ());
  check_float "time persisted" 8.0 !final

let test_rng_exponential_mean () =
  let r = Rng.create 9 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:50.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 50" true (mean > 47.0 && mean < 53.0)

let test_rng_lognormal_median () =
  let r = Rng.create 10 in
  let samples = List.init 9999 (fun _ -> Rng.lognormal r ~mu:0.0 ~sigma:0.25) in
  let sorted = List.sort Float.compare samples in
  let median = List.nth sorted 5000 in
  (* median of lognormal(mu, sigma) is exp(mu) = 1. *)
  Alcotest.(check bool) "median near 1" true (median > 0.95 && median < 1.05)

(* A trace-based determinism property: same seed gives the same sequence of
   (time, id) observations even with randomized sleeps. *)
let trace seed =
  let acc = ref [] in
  run_sim ~seed (fun () ->
      let r = Engine.rng () in
      for i = 1 to 20 do
        Engine.spawn (fun () ->
            Engine.sleep (Rng.float r 100.0);
            acc := (Engine.now (), i) :: !acc)
      done);
  List.rev !acc

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are reproducible from seed" ~count:25
    QCheck.small_int (fun seed -> trace seed = trace seed)

(* ------------------------------------------------------------------ *)
(* Ivar                                                                *)

let test_ivar_fill_then_read () =
  run_sim (fun () ->
      let iv = Ivar.create () in
      Ivar.fill iv 42;
      Alcotest.(check int) "read full" 42 (Ivar.read iv);
      Alcotest.(check bool) "is_full" true (Ivar.is_full iv))

let test_ivar_read_blocks_until_fill () =
  let got = ref 0 in
  run_sim (fun () ->
      let iv = Ivar.create () in
      Engine.spawn (fun () -> got := Ivar.read iv);
      Engine.spawn (fun () ->
          Engine.sleep 5.0;
          Ivar.fill iv 9);
      Engine.sleep 10.0;
      Alcotest.(check int) "woken with value" 9 !got)

let test_ivar_multiple_readers () =
  let got = ref [] in
  run_sim (fun () ->
      let iv = Ivar.create () in
      for i = 1 to 3 do
        Engine.spawn (fun () ->
            let v = Ivar.read iv in
            got := (i, v) :: !got)
      done;
      Engine.sleep 1.0;
      Ivar.fill iv 7;
      Engine.sleep 1.0;
      Alcotest.(check (list (pair int int))) "all woken FIFO"
        [ (1, 7); (2, 7); (3, 7) ]
        (List.rev !got))

let test_ivar_double_fill () =
  run_sim (fun () ->
      let iv = Ivar.create () in
      Ivar.fill iv 1;
      Alcotest.(check bool) "try_fill fails" false (Ivar.try_fill iv 2);
      Alcotest.check_raises "fill raises"
        (Invalid_argument "Ivar.fill: already full") (fun () ->
          Ivar.fill iv 3);
      Alcotest.(check (option int)) "value unchanged" (Some 1) (Ivar.peek iv))

(* ------------------------------------------------------------------ *)
(* Mailbox                                                             *)

let test_mailbox_fifo () =
  run_sim (fun () ->
      let mb = Mailbox.create () in
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3;
      Alcotest.(check int) "queued" 3 (Mailbox.length mb);
      let a = Mailbox.recv mb in
      let b = Mailbox.recv mb in
      let c = Mailbox.recv mb in
      Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] [ a; b; c ])

let test_mailbox_blocking_recv () =
  let got = ref 0 in
  run_sim (fun () ->
      let mb = Mailbox.create () in
      Engine.spawn (fun () -> got := Mailbox.recv mb);
      Engine.sleep 4.0;
      Mailbox.send mb 11;
      Engine.sleep 1.0;
      Alcotest.(check int) "delivered" 11 !got)

let test_mailbox_waiters_fifo () =
  let got = ref [] in
  run_sim (fun () ->
      let mb = Mailbox.create () in
      for i = 1 to 3 do
        Engine.spawn (fun () ->
            let v = Mailbox.recv mb in
            got := (i, v) :: !got)
      done;
      Engine.sleep 1.0;
      List.iter (Mailbox.send mb) [ 10; 20; 30 ];
      Engine.sleep 1.0;
      Alcotest.(check (list (pair int int))) "waiters FIFO"
        [ (1, 10); (2, 20); (3, 30) ]
        (List.rev !got))

let test_mailbox_timeout_expires () =
  run_sim (fun () ->
      let mb : int Mailbox.t = Mailbox.create () in
      let t0 = Engine.now () in
      let r = Mailbox.recv_timeout mb 5.0 in
      Alcotest.(check (option int)) "timed out" None r;
      check_float "waited the timeout" 5.0 (Engine.now () -. t0))

let test_mailbox_timeout_delivery () =
  run_sim (fun () ->
      let mb = Mailbox.create () in
      Engine.spawn (fun () ->
          Engine.sleep 2.0;
          Mailbox.send mb 5);
      let r = Mailbox.recv_timeout mb 10.0 in
      Alcotest.(check (option int)) "delivered before timeout" (Some 5) r;
      check_float "at delivery time" 2.0 (Engine.now ());
      (* The timed-out waiter must not consume a later message. *)
      Engine.sleep 20.0;
      Mailbox.send mb 6;
      Alcotest.(check (option int)) "queued normally" (Some 6)
        (Mailbox.recv_opt mb))

let test_mailbox_recv_opt () =
  run_sim (fun () ->
      let mb = Mailbox.create () in
      Alcotest.(check (option int)) "empty" None (Mailbox.recv_opt mb);
      Mailbox.send mb 1;
      Alcotest.(check (option int)) "ready" (Some 1) (Mailbox.recv_opt mb))

(* ------------------------------------------------------------------ *)
(* Timer                                                               *)

let test_timer_fires () =
  let at = ref (-1.0) in
  run_sim (fun () ->
      let t = Timer.after 8.0 (fun () -> at := Engine.now ()) in
      Engine.sleep 20.0;
      Alcotest.(check bool) "fired" true (Timer.fired t));
  check_float "fired on time" 8.0 !at

let test_timer_cancel () =
  let fired = ref false in
  run_sim (fun () ->
      let t = Timer.after 8.0 (fun () -> fired := true) in
      Engine.sleep 2.0;
      Timer.cancel t;
      Engine.sleep 20.0;
      Alcotest.(check bool) "cancelled flag" true (Timer.cancelled t));
  Alcotest.(check bool) "did not fire" false !fired

let test_timer_cancel_after_fire () =
  run_sim (fun () ->
      let t = Timer.after 1.0 (fun () -> ()) in
      Engine.sleep 5.0;
      Timer.cancel t;
      Alcotest.(check bool) "still fired" true (Timer.fired t);
      Alcotest.(check bool) "not cancelled" false (Timer.cancelled t))

let test_timer_callback_can_block () =
  let steps = ref [] in
  run_sim (fun () ->
      let _ =
        Timer.after 1.0 (fun () ->
            steps := `Start :: !steps;
            Engine.sleep 3.0;
            steps := `End :: !steps)
      in
      Engine.sleep 10.0);
  Alcotest.(check int) "both steps ran" 2 (List.length !steps)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim"
    [
      ( "pqueue",
        [
          Alcotest.test_case "pops sorted" `Quick test_pqueue_order;
          Alcotest.test_case "peek/clear" `Quick test_pqueue_peek;
        ]
        @ qsuite [ prop_pqueue_sorts ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "exponential positive" `Quick
            test_rng_exponential_positive;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "lognormal median" `Quick test_rng_lognormal_median;
        ]
        @ qsuite [ prop_rng_int_bounds; prop_rng_float_bounds ] );
      ( "engine",
        [
          Alcotest.test_case "sleep advances clock" `Quick
            test_sleep_advances_clock;
          Alcotest.test_case "negative sleep clamped" `Quick
            test_negative_sleep_clamped;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "sleep interleaving" `Quick test_sleep_interleaving;
          Alcotest.test_case "yield defers" `Quick test_yield_defers;
          Alcotest.test_case "fiber error propagates" `Quick
            test_fiber_error_propagates;
          Alcotest.test_case "until caps time" `Quick test_until_caps_time;
          Alcotest.test_case "ops outside run raise" `Quick
            test_run_outside_raises;
          Alcotest.test_case "blocked fiber quiescence" `Quick
            test_blocked_fiber_quiescence;
          Alcotest.test_case "schedule callbacks" `Quick test_schedule_callback;
          Alcotest.test_case "engine runs twice" `Quick test_engine_runs_twice;
        ]
        @ qsuite [ prop_engine_deterministic ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks until fill" `Quick
            test_ivar_read_blocks_until_fill;
          Alcotest.test_case "multiple readers" `Quick test_ivar_multiple_readers;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocking recv" `Quick test_mailbox_blocking_recv;
          Alcotest.test_case "waiters FIFO" `Quick test_mailbox_waiters_fifo;
          Alcotest.test_case "timeout expires" `Quick test_mailbox_timeout_expires;
          Alcotest.test_case "timeout delivery" `Quick
            test_mailbox_timeout_delivery;
          Alcotest.test_case "recv_opt" `Quick test_mailbox_recv_opt;
        ] );
      ( "timer",
        [
          Alcotest.test_case "fires" `Quick test_timer_fires;
          Alcotest.test_case "cancel" `Quick test_timer_cancel;
          Alcotest.test_case "cancel after fire" `Quick
            test_timer_cancel_after_fire;
          Alcotest.test_case "callback can block" `Quick
            test_timer_callback_can_block;
        ] );
    ]
