(* Shape regression tests for the evaluation: small-scale versions of the
   paper's experiments asserting the qualitative claims — who wins, the
   orderings, and the crossovers — so a protocol regression that skews
   the results fails CI, not just the benchmark report. *)

module Runner = Experiments.Runner
module Bundle = Experiments.Bundle
module Location = Net.Location

let small sys app = Runner.run ~requests_per_client:10 sys app

(* --- Figure 4 shape: Radical between ideal and baseline -------------- *)

let test_radical_beats_baseline_on_social () =
  let baseline = small Runner.Central Bundle.social in
  let radical = small Runner.Radical Bundle.social in
  let ideal = small Runner.Local Bundle.social in
  let bm = Runner.median_of baseline in
  let rm = Runner.median_of radical in
  let im = Runner.median_of ideal in
  Alcotest.(check bool)
    (Printf.sprintf "ideal (%.0f) <= radical (%.0f) < baseline (%.0f)" im rm bm)
    true
    (im <= rm +. 1.0 && rm < bm);
  (* The paper's band: a solid fraction of the maximum improvement. *)
  let of_max = (bm -. rm) /. (bm -. im) in
  Alcotest.(check bool)
    (Printf.sprintf "of-max improvement %.2f in [0.6, 1.02]" of_max)
    true
    (of_max > 0.6 && of_max < 1.02);
  match radical.validation_rate with
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "validation %.2f >= 0.85" v)
        true (v >= 0.85)
  | None -> Alcotest.fail "no validation rate"

(* --- Figure 5 shape: Radical is flat across locations ---------------- *)

let test_radical_flat_across_locations () =
  let radical = small Runner.Radical Bundle.social in
  let baseline = small Runner.Central Bundle.social in
  let med r loc =
    match List.assoc_opt loc (Runner.by_loc r) with
    | Some s -> Metrics.Stats.median s
    | None -> Alcotest.fail ("no samples at " ^ loc)
  in
  (* Radical's spread over the near locations stays small... *)
  let meds = List.map (med radical) [ Location.va; Location.ca; Location.ie; Location.de ] in
  let spread = List.fold_left Float.max neg_infinity meds -. List.fold_left Float.min infinity meds in
  Alcotest.(check bool)
    (Printf.sprintf "radical spread %.1f ms <= 25" spread)
    true (spread <= 25.0);
  (* ...while the baseline grows with distance. *)
  Alcotest.(check bool) "baseline JP >> baseline VA" true
    (med baseline Location.jp > med baseline Location.va +. 80.0);
  (* And remote users gain the most (§5.4). *)
  Alcotest.(check bool) "JP gains more than VA" true
    (med baseline Location.jp -. med radical Location.jp
    > med baseline Location.va -. med radical Location.va)

(* --- Figure 1 shape: geo-replication doesn't help -------------------- *)

let test_geo_replication_loses_to_centralized () =
  let central = small Runner.Central Bundle.simple in
  let geo =
    small (Runner.Geo [ Location.va; Location.oh; Location.oregon ]) Bundle.simple
  in
  let med r loc =
    match List.assoc_opt loc (Runner.by_loc r) with
    | Some s -> Metrics.Stats.median s
    | None -> Alcotest.fail ("no samples at " ^ loc)
  in
  (* PRAM bound: consistent geo-replicated storage is slower than the
     centralized deployment in (at least) most locations. *)
  let worse =
    List.filter
      (fun loc -> med geo loc > med central loc)
      Location.user_locations
  in
  Alcotest.(check bool)
    (Printf.sprintf "geo worse in %d/5 locations" (List.length worse))
    true
    (List.length worse >= 4)

(* --- §5.5 shape: benefit grows with exec time, then plateaus --------- *)

let sweep_app t : Bundle.app =
  let open Fdsl.Ast in
  {
    name = "sweep";
    funcs =
      [ { fn_name = "work"; params = [ "k" ]; body = Compute (t, Read (Input "k")) } ];
    schema = [];
    seed = (fun _ -> [ ("hot", Dval.Str "v") ]);
    new_gen = (fun () -> fun _ -> ("work", [ Dval.Str "hot" ]));
  }

let benefit t =
  let run sys =
    Runner.run ~locations:[ Location.ca ] ~clients_per_loc:4
      ~requests_per_client:10 ~jitter:0.0 sys (sweep_app t)
  in
  Runner.median_of (run Runner.Central) -. Runner.median_of (run Runner.Radical)

let test_sensitivity_shape () =
  let b20 = benefit 20.0 in
  let b100 = benefit 100.0 in
  let b400 = benefit 400.0 in
  Alcotest.(check bool)
    (Printf.sprintf "positive benefit at 20 ms (%.1f)" b20)
    true (b20 > 5.0);
  Alcotest.(check bool)
    (Printf.sprintf "benefit grows: %.1f < %.1f" b20 b100)
    true (b20 < b100);
  (* The plateau is the hidden RTT: lat(CA<->VA storage) - lat(VA). *)
  Alcotest.(check (float 5.0)) "plateau = hidden RTT" b100 b400;
  Alcotest.(check bool)
    (Printf.sprintf "plateau %.1f near 67" b400)
    true (b400 > 55.0 && b400 < 80.0)

(* --- Whole-system reproducibility ------------------------------------- *)

let test_runs_reproducible_from_seed () =
  (* Two identical full deployments (network jitter, workload sampling,
     protocol races and all) must agree sample for sample. *)
  let r1 = Runner.run ~seed:77 ~requests_per_client:8 Runner.Radical Bundle.forum in
  let r2 = Runner.run ~seed:77 ~requests_per_client:8 Runner.Radical Bundle.forum in
  Alcotest.(check int) "same sample count" (List.length r1.samples)
    (List.length r2.samples);
  List.iter2
    (fun (a : Runner.sample) (b : Runner.sample) ->
      Alcotest.(check bool) "identical sample" true
        (a.s_loc = b.s_loc && a.s_fn = b.s_fn
        && Float.abs (a.s_latency -. b.s_latency) < 1e-9))
    r1.samples r2.samples;
  Alcotest.(check bool) "same validation rate" true
    (r1.validation_rate = r2.validation_rate);
  (* And a different seed gives a different schedule. *)
  let r3 = Runner.run ~seed:78 ~requests_per_client:8 Runner.Radical Bundle.forum in
  Alcotest.(check bool) "different seed differs" true
    (List.map (fun (s : Runner.sample) -> s.s_latency) r3.samples
    <> List.map (fun (s : Runner.sample) -> s.s_latency) r1.samples)

(* --- Overlap is the win (ablation shape) ------------------------------ *)

let test_overlap_is_the_win () =
  let with_overlap = small Runner.Radical Bundle.social in
  let without =
    small
      (Runner.Radical_with
         { Radical.Framework.default_config with overlap = false })
      Bundle.social
  in
  Alcotest.(check bool) "overlap strictly faster" true
    (Runner.median_of with_overlap +. 20.0 < Runner.median_of without)

(* --- Traces ----------------------------------------------------------- *)

module Trace = Experiments.Trace

let test_trace_generate_deterministic () =
  let t1 = Trace.generate ~seed:5 ~rate:50.0 ~duration:4000.0 Bundle.social in
  let t2 = Trace.generate ~seed:5 ~rate:50.0 ~duration:4000.0 Bundle.social in
  Alcotest.(check bool) "same trace from same seed" true (t1 = t2);
  let n = List.length t1 in
  Alcotest.(check bool)
    (Printf.sprintf "arrival count %d plausible for 50/s x 4s" n)
    true
    (n > 120 && n < 280);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) "times within duration" true
        (e.at >= 0.0 && e.at < 4000.0))
    t1

let test_trace_save_load_roundtrip () =
  let trace = Trace.generate ~seed:9 ~rate:40.0 ~duration:2000.0 Bundle.hotel in
  let path = Filename.temp_file "radical-trace" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      match Trace.load path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          Alcotest.(check int) "same length" (List.length trace)
            (List.length loaded);
          List.iter2
            (fun (a : Trace.event) (b : Trace.event) ->
              Alcotest.(check bool) "event preserved" true
                (Float.abs (a.at -. b.at) < 0.001
                && a.from = b.from && a.fn = b.fn && a.args = b.args))
            trace loaded;
          (* Saving the loaded trace reproduces the file byte for byte. *)
          let path2 = Filename.temp_file "radical-trace" ".tsv" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path2)
            (fun () ->
              Trace.save loaded path2;
              let read p = In_channel.with_open_text p In_channel.input_all in
              Alcotest.(check string) "fixpoint" (read path) (read path2)))

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "radical-trace" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "not\ta\tvalid\n");
      match Trace.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected load failure")

let test_trace_replay () =
  let trace = Trace.generate ~seed:3 ~rate:30.0 ~duration:3000.0 Bundle.social in
  let r = Trace.replay Runner.Radical Bundle.social trace in
  Alcotest.(check int) "every event replayed" (List.length trace)
    (List.length r.samples);
  Alcotest.(check int) "no errors" 0 r.errors;
  (* Replays are deterministic. *)
  let r2 = Trace.replay Runner.Radical Bundle.social trace in
  Alcotest.(check (float 1e-9)) "deterministic medians"
    (Runner.median_of r) (Runner.median_of r2);
  (* The same trace drives a baseline for an apples-to-apples compare. *)
  let b = Trace.replay Runner.Central Bundle.social trace in
  Alcotest.(check bool) "radical beats baseline on the same trace" true
    (Runner.median_of r < Runner.median_of b)

(* --- Semantic equivalence of the speculative path ---------------------- *)

(* Whatever the protocol machinery does — f^rw prediction, cache reads,
   buffered writes, validation — a single request against a quiescent,
   coherent deployment must return exactly what a plain execution of the
   same handler on the same data returns. *)
let prop_speculation_preserves_semantics =
  QCheck.Test.make ~name:"speculative result = plain execution result"
    ~count:40
    QCheck.(pair (int_range 0 2) small_int)
    (fun (which, seed) ->
      let app = List.nth [ Bundle.social; Bundle.hotel; Bundle.forum ] which in
      let seed = seed + 1 in
      let request_of rng = app.new_gen () rng in
      let run_radical () =
        let engine = Sim.Engine.create ~seed () in
        let out = ref None in
        Sim.Engine.run engine (fun () ->
            let rng = Sim.Engine.rng () in
            let net =
              Net.Transport.create ~jitter_sigma:0.0 ~rng:(Sim.Rng.split rng) ()
            in
            let data = app.seed (Sim.Rng.split rng) in
            let fw = Radical.Framework.create ~net ~funcs:app.funcs ~data () in
            let fn, args = request_of (Sim.Rng.split rng) in
            let o = Radical.Framework.invoke fw ~from:Location.ca fn args in
            out := Some (o.value, o.path);
            Radical.Framework.stop fw);
        Option.get !out
      in
      let run_plain () =
        let engine = Sim.Engine.create ~seed () in
        let out = ref None in
        Sim.Engine.run engine (fun () ->
            let rng = Sim.Engine.rng () in
            let _net =
              Net.Transport.create ~jitter_sigma:0.0 ~rng:(Sim.Rng.split rng) ()
            in
            let data = app.seed (Sim.Rng.split rng) in
            let b =
              Radical.Baselines.local ~locations:[ Location.ca ]
                ~funcs:app.funcs ~data ()
            in
            let fn, args = request_of (Sim.Rng.split rng) in
            let o = Radical.Baselines.invoke b ~from:Location.ca fn args in
            out := Some o.value);
        Option.get !out
      in
      let radical_value, path = run_radical () in
      let plain_value = run_plain () in
      (* A quiescent warm deployment must serve speculatively... *)
      path = Radical.Runtime.Speculative
      (* ...and agree with the plain execution bit for bit. *)
      && radical_value = plain_value)

let () =
  Alcotest.run "experiments"
    [
      ( "traces",
        [
          Alcotest.test_case "generate deterministic" `Quick
            test_trace_generate_deterministic;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_trace_save_load_roundtrip;
          Alcotest.test_case "load rejects garbage" `Quick
            test_trace_load_rejects_garbage;
          Alcotest.test_case "replay" `Slow test_trace_replay;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_speculation_preserves_semantics ] );
      ( "shapes",
        [
          Alcotest.test_case "radical between ideal and baseline" `Slow
            test_radical_beats_baseline_on_social;
          Alcotest.test_case "radical flat across locations" `Slow
            test_radical_flat_across_locations;
          Alcotest.test_case "geo-replication loses" `Slow
            test_geo_replication_loses_to_centralized;
          Alcotest.test_case "sensitivity grows then plateaus" `Slow
            test_sensitivity_shape;
          Alcotest.test_case "runs reproducible from seed" `Slow
            test_runs_reproducible_from_seed;
          Alcotest.test_case "overlap is the win" `Slow test_overlap_is_the_win;
        ] );
    ]
