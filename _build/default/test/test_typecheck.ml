(* Tests for the gradual typechecker: every application handler checks
   against its storage schema, and real shape errors are rejected. *)

open Fdsl
open Ast
module T = Types
module Tc = Typecheck

let infer_ok ?schema ?param_types f =
  match Tc.check ?schema ?param_types f with
  | Ok t -> t
  | Error e -> Alcotest.fail (Format.asprintf "%a" Tc.pp_error e)

let expect_error ?schema ?param_types f =
  match Tc.check ?schema ?param_types f with
  | Error _ -> ()
  | Ok t ->
      Alcotest.fail
        (Format.asprintf "expected a type error, inferred %a" T.pp t)

let fn body = { fn_name = "t"; params = [ "x" ]; body }

let check_ty msg expected got =
  Alcotest.(check string) msg
    (Format.asprintf "%a" T.pp expected)
    (Format.asprintf "%a" T.pp got)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let test_consistency () =
  Alcotest.(check bool) "any with anything" true (T.consistent T.TAny T.TInt);
  Alcotest.(check bool) "int/str clash" false (T.consistent T.TInt T.TStr);
  Alcotest.(check bool) "lists elementwise" false
    (T.consistent (T.TList T.TInt) (T.TList T.TStr));
  Alcotest.(check bool) "records on common fields" true
    (T.consistent
       (T.TRecord [ ("a", T.TInt) ])
       (T.TRecord [ ("a", T.TInt); ("b", T.TStr) ]));
  Alcotest.(check bool) "records clash on shared field" false
    (T.consistent (T.TRecord [ ("a", T.TInt) ]) (T.TRecord [ ("a", T.TStr) ]))

let test_join () =
  check_ty "equal types" T.TInt (T.join T.TInt T.TInt);
  check_ty "unit is benign" (T.TList T.TStr)
    (T.join T.TUnit (T.TList T.TStr));
  check_ty "mismatch goes any" T.TAny (T.join T.TInt T.TStr);
  check_ty "records intersect" (T.TRecord [ ("a", T.TInt) ])
    (T.join
       (T.TRecord [ ("a", T.TInt); ("b", T.TStr) ])
       (T.TRecord [ ("a", T.TInt) ]))

let test_of_dval () =
  check_ty "record"
    (T.TRecord [ ("n", T.TInt) ])
    (T.of_dval (Dval.Record [ ("n", Dval.int 3) ]));
  check_ty "hetero list" (T.TList T.TAny)
    (T.of_dval (Dval.List [ Dval.int 1; Dval.Str "x" ]))

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)

let test_basic_inference () =
  check_ty "arith" T.TInt (infer_ok (fn (Binop (Add, Int 1L, Int 2L))));
  check_ty "concat" T.TStr (infer_ok (fn (Concat [ Str "a"; Str "b" ])));
  check_ty "comparison" T.TBool (infer_ok (fn (Binop (Lt, Int 1L, Int 2L))));
  check_ty "foreach maps" (T.TList T.TInt)
    (infer_ok (fn (Foreach ("i", List_lit [ Int 1L ], Binop (Mul, Var "i", Int 2L)))))

let test_param_types () =
  check_ty "annotated param"
    T.TInt
    (infer_ok ~param_types:[ ("x", T.TInt) ] (fn (Binop (Add, Input "x", Int 1L))));
  expect_error ~param_types:[ ("x", T.TStr) ]
    (fn (Binop (Add, Input "x", Int 1L)))

let test_shape_errors () =
  expect_error (fn (Concat [ Str "n="; Int 3L ]));
  expect_error (fn (Binop (Add, Str "1", Int 2L)));
  expect_error (fn (Field (Str "oops", "name")));
  expect_error (fn (Foreach ("i", Int 3L, Var "i")));
  expect_error (fn (Field (Record_lit [ ("a", Int 1L) ], "missing")));
  expect_error (fn (Str_of_int (Str "x")));
  expect_error (fn (Take (Int 1L, Int 2L)))

let test_gradual_any_passes () =
  (* Unannotated inputs are any: plausible uses typecheck. *)
  check_ty "any flows" T.TInt
    (infer_ok (fn (Binop (Add, Input "x", Int 1L))));
  check_ty "any field" T.TAny (infer_ok (fn (Field (Input "x", "whatever"))))

let test_schema_reads_and_writes () =
  let schema = [ ("count:", T.TInt); ("name:", T.TStr) ] in
  check_ty "read type from schema" T.TInt
    (infer_ok ~schema (fn (Binop (Add, Read (Concat [ Str "count:"; Input "x" ]), Int 1L))));
  (* Writing a string where the schema declares int is an error. *)
  expect_error ~schema (fn (Write (Concat [ Str "count:"; Input "x" ], Str "nope")));
  (* Reading a string-typed key into arithmetic is an error. *)
  expect_error ~schema
    (fn (Binop (Add, Read (Concat [ Str "name:"; Input "x" ]), Int 1L)));
  (* Unknown prefixes stay gradual. *)
  check_ty "unknown key is any" T.TAny
    (infer_ok ~schema (fn (Read (Concat [ Str "other:"; Input "x" ]))))

let test_dynamic_key_is_any () =
  let schema = [ ("count:", T.TInt) ] in
  check_ty "fully dynamic key" T.TAny
    (infer_ok ~schema (fn (Read (Input "x"))))

(* ------------------------------------------------------------------ *)
(* The real applications                                               *)

let app_schemas =
  [
    ("social", Apps.Social.functions, Apps.Social.schema);
    ("hotel", Apps.Hotel.functions, Apps.Hotel.schema);
    ("forum", Apps.Forum.functions, Apps.Forum.schema);
    ("imageboard", Apps.Imageboard.functions, Apps.Imageboard.schema);
    ("projectmgmt", Apps.Projectmgmt.functions, Apps.Projectmgmt.schema);
  ]

let test_all_apps_typecheck () =
  List.iter
    (fun (name, funcs, schema) ->
      match Tc.check_all ~schema funcs with
      | Ok () -> ()
      | Error errors ->
          Alcotest.fail
            (Format.asprintf "%s: %a" name
               (Format.pp_print_list Tc.pp_error)
               errors))
    app_schemas

let test_schema_catches_wrong_write () =
  (* A buggy variant of forum-interact that writes a bare int over the
     post record: rejected by the forum schema. *)
  let buggy =
    {
      fn_name = "buggy-interact";
      params = [ "p" ];
      body = Write (Concat [ Str "fpost:"; Input "p" ], Int 1L);
    }
  in
  expect_error ~schema:Apps.Forum.schema buggy

let test_seed_data_matches_schema () =
  (* Every seeded key's value type must be consistent with its schema
     entry — the schema really describes the data. *)
  let rng = Sim.Rng.create 4 in
  List.iter
    (fun (name, seed, schema) ->
      List.iter
        (fun (key, value) ->
          let declared =
            Tc.check ~schema
              { fn_name = "probe"; params = []; body = Read (Str key) }
          in
          match declared with
          | Ok t ->
              if not (T.consistent (T.of_dval value) t) then
                Alcotest.fail
                  (Format.asprintf "%s: %s holds %a but schema says %a" name
                     key T.pp (T.of_dval value) T.pp t)
          | Error _ -> ())
        (seed rng))
    [
      ("social", (fun r -> Apps.Social.seed ~n_users:20 r), Apps.Social.schema);
      ("hotel", (fun r -> Apps.Hotel.seed r), Apps.Hotel.schema);
      ("forum", (fun r -> Apps.Forum.seed ~n_posts:30 r), Apps.Forum.schema);
      ("imageboard", (fun r -> Apps.Imageboard.seed r), Apps.Imageboard.schema);
      ("projectmgmt", (fun r -> Apps.Projectmgmt.seed r), Apps.Projectmgmt.schema);
    ]

let () =
  Alcotest.run "typecheck"
    [
      ( "types",
        [
          Alcotest.test_case "consistency" `Quick test_consistency;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "of_dval" `Quick test_of_dval;
        ] );
      ( "inference",
        [
          Alcotest.test_case "basics" `Quick test_basic_inference;
          Alcotest.test_case "param types" `Quick test_param_types;
          Alcotest.test_case "shape errors" `Quick test_shape_errors;
          Alcotest.test_case "gradual any" `Quick test_gradual_any_passes;
          Alcotest.test_case "schema reads/writes" `Quick
            test_schema_reads_and_writes;
          Alcotest.test_case "dynamic key" `Quick test_dynamic_key_is_any;
        ] );
      ( "applications",
        [
          Alcotest.test_case "all 27 handlers typecheck" `Quick
            test_all_apps_typecheck;
          Alcotest.test_case "schema catches wrong write" `Quick
            test_schema_catches_wrong_write;
          Alcotest.test_case "seed data matches schema" `Quick
            test_seed_data_matches_schema;
        ] );
    ]
