(* Tests for the DSL's concrete syntax: parsing, precedence, error
   positions, and the print/parse roundtrip. *)

open Fdsl
module P = Parse

let parse_expr src =
  match P.expr src with
  | Ok e -> e
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" src P.pp_error e)

let check_parses msg src expected =
  Alcotest.(check string) msg
    (Format.asprintf "%a" Ast.pp expected)
    (Format.asprintf "%a" Ast.pp (parse_expr src))

let expect_error src =
  match P.expr src with
  | Error _ -> ()
  | Ok e ->
      Alcotest.fail
        (Format.asprintf "%s: expected a parse error, got %a" src Ast.pp e)

open Ast

let test_literals () =
  check_parses "int" "42" (Int 42L);
  check_parses "negative" "-7" (Int (-7L));
  check_parses "string" {|"hi there"|} (Str "hi there");
  check_parses "escapes" {|"a\"b\nc"|} (Str "a\"b\nc");
  check_parses "bool" "true" (Bool true);
  check_parses "unit" "()" Unit;
  check_parses "list" "[1, 2]" (List_lit [ Int 1L; Int 2L ]);
  check_parses "empty list" "[]" (List_lit []);
  check_parses "record" "{a: 1, b: \"x\"}"
    (Record_lit [ ("a", Int 1L); ("b", Str "x") ])

let test_precedence () =
  check_parses "mul binds tighter" "1 + 2 * 3"
    (Binop (Add, Int 1L, Binop (Mul, Int 2L, Int 3L)));
  check_parses "parens override" "(1 + 2) * 3"
    (Binop (Mul, Binop (Add, Int 1L, Int 2L), Int 3L));
  check_parses "comparison above arith" "1 + 2 < 4"
    (Binop (Lt, Binop (Add, Int 1L, Int 2L), Int 4L));
  check_parses "and above comparison" "1 < 2 && 3 < 4"
    (Binop (And, Binop (Lt, Int 1L, Int 2L), Binop (Lt, Int 3L, Int 4L)));
  check_parses "concat chains" {|"a" ++ "b" ++ "c"|}
    (Concat [ Str "a"; Str "b"; Str "c" ]);
  check_parses "not" "!true" (Not (Bool true))

let test_postfix () =
  check_parses "field" "x.name" (Field (Var "x", "name"));
  check_parses "field chain" "x.a.b" (Field (Field (Var "x", "a"), "b"));
  check_parses "index" "xs[0]" (Nth (Var "xs", Int 0L));
  check_parses "field then index" "x.items[1]"
    (Nth (Field (Var "x", "items"), Int 1L))

let test_builtins () =
  check_parses "read" {|read("k:" ++ u)|} (Read (Concat [ Str "k:"; Var "u" ]));
  check_parses "write" {|write("k", 1)|} (Write (Str "k", Int 1L));
  check_parses "setf" "setf(r, score, 1)"
    (Set_field (Var "r", "score", Int 1L));
  check_parses "external" {|external("stripe", cart)|}
    (External ("stripe", Var "cart"));
  check_parses "str/len/take" "take(xs, len(xs))"
    (Take (Var "xs", Length (Var "xs")));
  check_parses "time_now" "time_now()" Time_now;
  check_parses "random_int" "random_int(5)" (Random_int 5)

let test_blocks_and_control () =
  check_parses "seq" "{ 1; 2; 3 }" (Seq [ Int 1L; Int 2L; Int 3L ]);
  check_parses "let" "{ let x = 1; x + 1 }"
    (Let ("x", Int 1L, Binop (Add, Var "x", Int 1L)));
  check_parses "if else" "if x { 1 } else { 2 }"
    (If (Var "x", Int 1L, Int 2L));
  check_parses "if without else" "if x { 1 }" (If (Var "x", Int 1L, Unit));
  check_parses "foreach" "foreach i in xs { i * 2 }"
    (Foreach ("i", Var "xs", Binop (Mul, Var "i", Int 2L)));
  check_parses "compute" "compute 16.0 { 1 }" (Compute (16.0, Int 1L));
  check_parses "compute int ms" "compute 16 { 1 }" (Compute (16.0, Int 1L));
  check_parses "empty block" "{ }" Unit

let test_comments_and_layout () =
  check_parses "comments skipped" "1 + # trailing\n 2"
    (Binop (Add, Int 1L, Int 2L))

let test_full_function () =
  let src =
    {|
      # Upvote a post, strongly consistent.
      fn upvote(post) {
        compute 16.0 {
          let p = read("post:" ++ post);
          write("post:" ++ post, setf(p, score, p.score + 1));
          p.score + 1
        }
      }
    |}
  in
  match P.func src with
  | Error e -> Alcotest.fail (Format.asprintf "%a" P.pp_error e)
  | Ok f ->
      Alcotest.(check string) "name" "upvote" f.fn_name;
      Alcotest.(check (list string)) "params" [ "post" ] f.params;
      (* The parsed handler goes through the whole toolchain. *)
      let reg = Radical.Registry.create () in
      (match Radical.Registry.register reg f with
      | Ok entry ->
          Alcotest.(check bool) "analyzable" true (entry.derived <> None)
      | Error e -> Alcotest.fail e);
      (* And evaluates correctly. *)
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace tbl "post:42" (Dval.Record [ ("score", Dval.int 9) ]);
      let host =
        Eval.host
          ~read:(fun k -> Option.value ~default:Dval.Unit (Hashtbl.find_opt tbl k))
          ~write:(fun k v -> Hashtbl.replace tbl k v)
          ()
      in
      Alcotest.(check string) "result" "10"
        (Dval.to_string (Eval.eval host f [ Dval.Str "42" ]))

let test_program_parses_many () =
  let src = "fn a() { 1 } fn b(x) { x }" in
  match P.program src with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first" "a" a.fn_name;
      Alcotest.(check string) "second" "b" b.fn_name
  | Ok fns -> Alcotest.fail (Printf.sprintf "expected 2, got %d" (List.length fns))
  | Error e -> Alcotest.fail (Format.asprintf "%a" P.pp_error e)

let test_errors_have_positions () =
  (match P.expr "1 +\n  *" with
  | Error { line; col; _ } ->
      Alcotest.(check int) "line" 2 line;
      Alcotest.(check bool) "column sane" true (col >= 1)
  | Ok _ -> Alcotest.fail "expected error");
  expect_error {|"unterminated|};
  expect_error "read(1, 2)" (* wrong arity *);
  expect_error "frobnicate(1)" (* unknown builtin *);
  expect_error "{ let x = 1 x }" (* missing semicolon *);
  expect_error "random_int(x)" (* non-literal *);
  expect_error "1 @ 2" (* bad character *)

(* The parser flattens nested sequences ({a; {b; c}} and {a; b; c} are
   the same program), so the roundtrip is up to Seq associativity. *)
let rec normalize (e : Ast.expr) : Ast.expr =
  match e with
  | Seq es ->
      let es =
        List.concat_map
          (fun e ->
            match normalize e with Seq inner -> inner | other -> [ other ])
          es
      in
      (match es with [ single ] -> single | es -> Seq es)
  | Let (x, v, b) -> Let (x, normalize v, normalize b)
  | If (a, b, c) -> If (normalize a, normalize b, normalize c)
  | Binop (op, a, b) -> Binop (op, normalize a, normalize b)
  | Not e -> Not (normalize e)
  | Concat es -> Concat (List.map normalize es)
  | List_lit es -> List_lit (List.map normalize es)
  | Append (a, b) -> Append (normalize a, normalize b)
  | Prepend (a, b) -> Prepend (normalize a, normalize b)
  | Concat_list (a, b) -> Concat_list (normalize a, normalize b)
  | Take (a, b) -> Take (normalize a, normalize b)
  | Length e -> Length (normalize e)
  | Nth (a, b) -> Nth (normalize a, normalize b)
  | Record_lit fs -> Record_lit (List.map (fun (k, v) -> (k, normalize v)) fs)
  | Field (e, n) -> Field (normalize e, n)
  | Set_field (a, n, b) -> Set_field (normalize a, n, normalize b)
  | Read k -> Read (normalize k)
  | Write (k, v) -> Write (normalize k, normalize v)
  | Foreach (x, l, b) -> Foreach (x, normalize l, normalize b)
  | Compute (ms, e) -> Compute (ms, normalize e)
  | Opaque e -> Opaque (normalize e)
  | Str_of_int e -> Str_of_int (normalize e)
  | Declare (d, k) -> Declare (d, normalize k)
  | External (svc, p) -> External (svc, normalize p)
  | Unit | Bool _ | Int _ | Str _ | Input _ | Var _ | Time_now | Random_int _
    ->
      e

let test_to_source_roundtrip_samples () =
  List.iter
    (fun e ->
      let src = P.to_source e in
      match P.expr src with
      | Ok e' ->
          Alcotest.(check string) src
            (Format.asprintf "%a" Ast.pp (normalize e))
            (Format.asprintf "%a" Ast.pp (normalize e'))
      | Error err ->
          Alcotest.fail (Format.asprintf "%s: %a" src P.pp_error err))
    [
      Int (-3L);
      Str "a\"b\\c";
      Let ("x", Read (Str "k"), Seq [ Write (Str "k", Var "x"); Var "x" ]);
      If (Binop (Lt, Int 1L, Int 2L), Compute (5.0, Unit), List_lit []);
      Foreach ("i", List_lit [ Int 1L ], Set_field (Record_lit [ ("a", Int 0L) ], "a", Var "i"));
      External ("svc", Record_lit [ ("x", Bool true) ]);
      Nth (Concat [ Str "a"; Str "b" ], Int 0L);
    ]

(* Roundtrip property over the random typed programs from the compile
   equivalence suite's generator shape: print, reparse, compare. *)
let gen_roundtrip_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Int (Int64.of_int i)) (int_range (-50) 50);
                map (fun c -> Str (String.make 1 c)) (char_range 'a' 'e');
                map (fun b -> Bool b) bool;
                return (Var "p");
              ]
          else
            frequency
              [
                ( 2,
                  map3
                    (fun op a b -> Binop (op, a, b))
                    (oneofl [ Add; Sub; Mul; Eq; Lt; And; Or ])
                    (self (n / 2)) (self (n / 2)) );
                (1, map2 (fun a b -> Concat [ a; b ]) (self (n / 2)) (self (n / 2)));
                (1, map3 (fun c a b -> If (c, a, b)) (self (n / 3)) (self (n / 3)) (self (n / 3)));
                (1, map2 (fun v b -> Let ("v", v, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun k -> Read k) (self (n / 2)));
                (1, map2 (fun k v -> Write (k, v)) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun a b -> Seq [ a; b ]) (self (n / 2)) (self (n / 2)));
                (1, map (fun e -> Not e) (self (n / 2)));
                (1, map2 (fun l x -> Append (l, x)) (self (n / 2)) (self (n / 2)));
                (1, map (fun e -> Field (e, "f")) (self (n / 2)));
              ])
        (min n 16))

let prop_roundtrip =
  QCheck.Test.make ~name:"to_source/parse roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Ast.pp) gen_roundtrip_expr)
    (fun e ->
      match P.expr (P.to_source e) with
      | Ok e' -> normalize e' = normalize e
      | Error _ -> false)

let () =
  Alcotest.run "parse"
    [
      ( "syntax",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "postfix" `Quick test_postfix;
          Alcotest.test_case "builtins" `Quick test_builtins;
          Alcotest.test_case "blocks and control" `Quick test_blocks_and_control;
          Alcotest.test_case "comments" `Quick test_comments_and_layout;
          Alcotest.test_case "full function through toolchain" `Quick
            test_full_function;
          Alcotest.test_case "program of several fns" `Quick
            test_program_parses_many;
          Alcotest.test_case "errors carry positions" `Quick
            test_errors_have_positions;
          Alcotest.test_case "to_source samples" `Quick
            test_to_source_roundtrip_samples;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_roundtrip ] );
    ]
