(* Tests for the static analyzer: classification, residual f^rw
   behaviour, and exactness of the predicted read/write set against the
   accesses the real execution performs. *)

open Fdsl
open Ast
module Derive = Analyzer.Derive
module Rwset = Analyzer.Rwset

let derive_ok f =
  match Derive.derive f with
  | Ok d -> d
  | Error e -> Alcotest.fail (Format.asprintf "%a" Derive.pp_error e)

let classification d = d.Derive.classification

let store_read store k =
  Option.value ~default:Dval.Unit (List.assoc_opt k store)

let rwset =
  Alcotest.testable Rwset.pp Rwset.equal

(* ------------------------------------------------------------------ *)
(* Rwset                                                               *)

let test_rwset_normalization () =
  let s = Rwset.make ~reads:[ "b"; "a"; "b"; "c" ] ~writes:[ "c"; "c" ] in
  Alcotest.(check (list string)) "reads sorted, deduped (written keys kept)"
    [ "a"; "b"; "c" ] s.Rwset.reads;
  Alcotest.(check (list string)) "writes" [ "c" ] s.Rwset.writes;
  Alcotest.(check (list string)) "all keys" [ "a"; "b"; "c" ] (Rwset.all_keys s);
  Alcotest.(check bool) "has writes" true (Rwset.has_writes s);
  Alcotest.(check int) "cardinal" 4 (Rwset.cardinal s);
  (* Write locks dominate for read+written keys. *)
  Alcotest.(check (list (pair string bool)))
    "lock modes"
    [ ("a", false); ("b", false); ("c", true) ]
    (List.map (fun (k, m) -> (k, m = `W)) (Rwset.lock_modes s))

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let profile_fn =
  {
    fn_name = "profile";
    params = [ "user" ];
    body =
      Compute
        ( 100.0,
          Record_lit
            [
              ("user", Read (Concat [ Str "user:"; Input "user" ]));
              ("posts", Read (Concat [ Str "posts:"; Input "user" ]));
            ] );
  }

let test_static_classification () =
  let d = derive_ok profile_fn in
  (match classification d with
  | Derive.Static -> ()
  | c -> Alcotest.fail (Format.asprintf "expected static, got %a" Derive.pp_classification c))

let timeline_fn =
  (* Key of the inner reads depends on the follows list: dependent. *)
  {
    fn_name = "timeline";
    params = [ "user" ];
    body =
      Let
        ( "ids",
          Read (Concat [ Str "follows:"; Input "user" ]),
          Foreach
            ( "id",
              Var "ids",
              Compute (5.0, Read (Concat [ Str "posts:"; Var "id" ])) ) );
  }

let test_dependent_classification () =
  let d = derive_ok timeline_fn in
  match classification d with
  | Derive.Dependent 1 -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "expected dependent(1), got %a" Derive.pp_classification c)

let test_expensive_classification () =
  let f =
    {
      fn_name = "mine";
      params = [ "seed" ];
      body = Read (Concat [ Str "k:"; Str_of_int (Compute (200.0, Input "seed")) ]);
    }
  in
  let d = derive_ok f in
  match classification d with
  | Derive.Expensive -> ()
  | c ->
      Alcotest.fail
        (Format.asprintf "expected expensive, got %a" Derive.pp_classification c)

let test_opaque_key_unanalyzable () =
  let f =
    {
      fn_name = "shady";
      params = [];
      body = Read (Opaque (Str "k"));
    }
  in
  match Derive.derive f with
  | Error e -> Alcotest.(check string) "names the function" "shady" e.fn_name
  | Ok _ -> Alcotest.fail "expected unanalyzable"

let test_opaque_branch_unanalyzable () =
  let f =
    {
      fn_name = "shady-branch";
      params = [];
      body = If (Opaque (Bool true), Read (Str "a"), Read (Str "b"));
    }
  in
  match Derive.derive f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unanalyzable"

let test_opaque_result_is_fine () =
  (* Opaqueness only in the result value doesn't block key prediction. *)
  let f =
    {
      fn_name = "opaque-result";
      params = [];
      body = Seq [ Write (Str "k", Unit); Opaque (Str "mystery") ];
    }
  in
  let d = derive_ok f in
  match classification d with
  | Derive.Static -> ()
  | _ -> Alcotest.fail "expected static"

let test_nondeterministic_key_unanalyzable () =
  let f =
    { fn_name = "rand-key"; params = []; body = Read (Str_of_int (Random_int 5)) }
  in
  match Derive.derive f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unanalyzable"

(* ------------------------------------------------------------------ *)
(* Prediction                                                          *)

let predict ?(cache = []) ?compute d args =
  Derive.predict d ~read:(store_read cache) ?compute args

let actual_accesses f store args =
  let reads = ref [] and writes = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) store;
  let host =
    Eval.host
      ~read:(fun k ->
        reads := k :: !reads;
        Option.value ~default:Dval.Unit (Hashtbl.find_opt tbl k))
      ~write:(fun k v ->
        writes := k :: !writes;
        Hashtbl.replace tbl k v)
      ()
  in
  let _ = Eval.eval host f args in
  Rwset.make ~reads:!reads ~writes:!writes

let test_static_prediction_exact () =
  let d = derive_ok profile_fn in
  let args = [ Dval.Str "u9" ] in
  Alcotest.check rwset "prediction matches execution"
    (actual_accesses profile_fn [] args)
    (predict d args)

let test_static_prediction_no_cache_fetch () =
  let d = derive_ok profile_fn in
  let fetches = ref 0 in
  let _ =
    Derive.predict d
      ~read:(fun _ ->
        incr fetches;
        Dval.Unit)
      [ Dval.Str "u9" ]
  in
  Alcotest.(check int) "static f^rw reads nothing" 0 !fetches

let test_static_prediction_strips_compute () =
  let d = derive_ok profile_fn in
  let charged = ref 0.0 in
  let _ = predict d ~compute:(fun ms -> charged := !charged +. ms) [ Dval.Str "u" ] in
  Alcotest.(check (float 1e-9)) "no compute in static f^rw" 0.0 !charged

let follows_cache =
  [
    ("follows:u1", Dval.List [ Dval.Str "a"; Dval.Str "b"; Dval.Str "c" ]);
    ("posts:a", Dval.Str "pa");
    ("posts:b", Dval.Str "pb");
    ("posts:c", Dval.Str "pc");
  ]

let test_dependent_prediction_exact () =
  let d = derive_ok timeline_fn in
  let args = [ Dval.Str "u1" ] in
  Alcotest.check rwset "prediction from coherent cache is exact"
    (actual_accesses timeline_fn follows_cache args)
    (predict ~cache:follows_cache d args)

let test_dependent_prediction_uses_cache () =
  let d = derive_ok timeline_fn in
  (* A stale cache (shorter follows list) predicts a smaller read set —
     which validation would catch via the follows key's version. *)
  let stale = [ ("follows:u1", Dval.List [ Dval.Str "a" ]) ] in
  let s = predict ~cache:stale d [ Dval.Str "u1" ] in
  Alcotest.(check (list string)) "keys from stale cache"
    [ "follows:u1"; "posts:a" ] s.Rwset.reads

let test_dependent_fetches_only_influencing () =
  (* The per-post reads feed no key, so f^rw must declare them without
     touching the cache — only the follows list is fetched. *)
  let d = derive_ok timeline_fn in
  let fetches = ref 0 in
  let s =
    Derive.predict d
      ~read:(fun k ->
        incr fetches;
        store_read follows_cache k)
      [ Dval.Str "u1" ]
  in
  Alcotest.(check int) "single cache fetch" 1 !fetches;
  Alcotest.(check int) "all four reads predicted" 4
    (List.length s.Rwset.reads)

let test_dependent_prediction_strips_inner_compute () =
  let d = derive_ok timeline_fn in
  let charged = ref 0.0 in
  let _ =
    predict ~cache:follows_cache d
      ~compute:(fun ms -> charged := !charged +. ms)
      [ Dval.Str "u1" ]
  in
  Alcotest.(check (float 1e-9)) "per-post compute stripped" 0.0 !charged

let test_expensive_prediction_charges_compute () =
  let f =
    {
      fn_name = "mine";
      params = [ "seed" ];
      body = Read (Concat [ Str "k:"; Str_of_int (Compute (200.0, Input "seed")) ]);
    }
  in
  let d = derive_ok f in
  let charged = ref 0.0 in
  let s = predict d ~compute:(fun ms -> charged := !charged +. ms) [ Dval.Int 3L ] in
  Alcotest.(check (float 1e-9)) "compute kept" 200.0 !charged;
  Alcotest.(check (list string)) "key correct" [ "k:3" ] s.Rwset.reads

let test_branchy_prediction_follows_control () =
  let f =
    {
      fn_name = "branchy";
      params = [ "n" ];
      body =
        If
          ( Binop (Gt, Input "n", Int 10L),
            Write (Str "big", Compute (50.0, Input "n")),
            Write (Str "small", Input "n") );
    }
  in
  let d = derive_ok f in
  let s_hi = predict d [ Dval.Int 50L ] in
  let s_lo = predict d [ Dval.Int 5L ] in
  Alcotest.(check (list string)) "big branch" [ "big" ] s_hi.Rwset.writes;
  Alcotest.(check (list string)) "small branch" [ "small" ] s_lo.Rwset.writes

let test_write_value_reads_are_logged () =
  (* write(k, read(k2)): k2's value is never key-relevant, yet the real
     execution reads it, so f^rw must still declare it. *)
  let f =
    {
      fn_name = "copy";
      params = [];
      body = Write (Str "dst", Read (Str "src"));
    }
  in
  let d = derive_ok f in
  let fetches = ref 0 in
  let s =
    Derive.predict d
      ~read:(fun _ ->
        incr fetches;
        Dval.Unit)
      []
  in
  Alcotest.(check (list string)) "src logged" [ "src" ] s.Rwset.reads;
  Alcotest.(check (list string)) "dst logged" [ "dst" ] s.Rwset.writes;
  Alcotest.(check int) "but not fetched" 0 !fetches

let test_fanout_writes_predicted () =
  (* The social-media "post" shape: read followers, write each timeline. *)
  let f =
    {
      fn_name = "post";
      params = [ "user"; "text" ];
      body =
        Let
          ( "fs",
            Read (Concat [ Str "followers:"; Input "user" ]),
            Seq
              [
                Write (Concat [ Str "posts:"; Input "user" ], Input "text");
                Foreach
                  ( "fid",
                    Var "fs",
                    Write (Concat [ Str "timeline:"; Var "fid" ], Input "text")
                  );
              ] );
    }
  in
  let d = derive_ok f in
  (match classification d with
  | Derive.Dependent 1 -> ()
  | c -> Alcotest.fail (Format.asprintf "got %a" Derive.pp_classification c));
  let cache = [ ("followers:u", Dval.List [ Dval.Str "f1"; Dval.Str "f2" ]) ] in
  let s = predict ~cache d [ Dval.Str "u"; Dval.Str "hi" ] in
  Alcotest.(check (list string)) "write fan-out"
    [ "posts:u"; "timeline:f1"; "timeline:f2" ]
    s.Rwset.writes;
  Alcotest.(check (list string)) "followers read" [ "followers:u" ] s.Rwset.reads

(* The soundness property: on a coherent cache, prediction equals the
   accesses of the real execution, for randomized inputs over a fixed
   corpus of analyzable functions. *)
let corpus = [ profile_fn; timeline_fn ]

let prop_prediction_sound =
  QCheck.Test.make ~name:"predicted rwset = actual accesses (coherent cache)"
    ~count:200
    QCheck.(pair (int_range 0 1) (int_range 0 9))
    (fun (which, user_n) ->
      let f = List.nth corpus which in
      let user = Printf.sprintf "u%d" user_n in
      let store =
        ("follows:" ^ user, Dval.List [ Dval.Str "x"; Dval.Str "y" ])
        :: ("posts:x", Dval.Str "px")
        :: ("posts:y", Dval.Str "py")
        :: [ ("user:" ^ user, Dval.Str user); ("posts:" ^ user, Dval.Str "") ]
      in
      let d = derive_ok f in
      let args = [ Dval.Str user ] in
      Rwset.equal
        (actual_accesses f store args)
        (Derive.predict d ~read:(store_read store) args))

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "analyzer"
    [
      ("rwset", [ Alcotest.test_case "normalization" `Quick test_rwset_normalization ]);
      ( "classification",
        [
          Alcotest.test_case "static" `Quick test_static_classification;
          Alcotest.test_case "dependent" `Quick test_dependent_classification;
          Alcotest.test_case "expensive" `Quick test_expensive_classification;
          Alcotest.test_case "opaque key unanalyzable" `Quick
            test_opaque_key_unanalyzable;
          Alcotest.test_case "opaque branch unanalyzable" `Quick
            test_opaque_branch_unanalyzable;
          Alcotest.test_case "opaque result ok" `Quick test_opaque_result_is_fine;
          Alcotest.test_case "nondeterministic key unanalyzable" `Quick
            test_nondeterministic_key_unanalyzable;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "static exact" `Quick test_static_prediction_exact;
          Alcotest.test_case "static: no cache fetch" `Quick
            test_static_prediction_no_cache_fetch;
          Alcotest.test_case "static: compute stripped" `Quick
            test_static_prediction_strips_compute;
          Alcotest.test_case "dependent exact" `Quick
            test_dependent_prediction_exact;
          Alcotest.test_case "dependent uses cache" `Quick
            test_dependent_prediction_uses_cache;
          Alcotest.test_case "dependent fetches only influencing" `Quick
            test_dependent_fetches_only_influencing;
          Alcotest.test_case "dependent: inner compute stripped" `Quick
            test_dependent_prediction_strips_inner_compute;
          Alcotest.test_case "expensive charges compute" `Quick
            test_expensive_prediction_charges_compute;
          Alcotest.test_case "branches follow control" `Quick
            test_branchy_prediction_follows_control;
          Alcotest.test_case "write-value reads logged" `Quick
            test_write_value_reads_are_logged;
          Alcotest.test_case "fan-out writes predicted" `Quick
            test_fanout_writes_predicted;
        ]
        @ qsuite [ prop_prediction_sound ] );
    ]
