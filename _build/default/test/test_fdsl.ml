(* Tests for the function DSL: evaluator semantics, and equivalence
   between the evaluator and code compiled to the deterministic VM. *)

open Fdsl
open Ast

let plain = Eval.host ()

let ev ?(host = plain) ?(params = []) ?(args = []) body =
  Eval.eval host { fn_name = "t"; params; body } args

let check_dval msg expected got =
  Alcotest.(check string) msg (Dval.to_string expected) (Dval.to_string got)

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)

let test_literals_and_let () =
  check_dval "int" (Dval.Int 5L) (ev (Int 5L));
  check_dval "let" (Dval.Int 8L)
    (ev (Let ("x", Int 3L, Binop (Add, Var "x", Int 5L))));
  check_dval "shadowing" (Dval.Int 2L)
    (ev (Let ("x", Int 1L, Let ("x", Int 2L, Var "x"))))

let test_inputs () =
  check_dval "inputs bind" (Dval.Str "hi-7")
    (ev ~params:[ "s"; "n" ]
       ~args:[ Dval.Str "hi-"; Dval.Int 7L ]
       (Concat [ Input "s"; Str_of_int (Input "n") ]))

let test_arity_error () =
  Alcotest.check_raises "arity" (Eval.Error "t expects 1 arguments, got 0")
    (fun () -> ignore (ev ~params:[ "x" ] (Var "x")))

let test_truthiness () =
  let t v = Eval.truthy v in
  Alcotest.(check bool) "0 falsy" false (t (Dval.Int 0L));
  Alcotest.(check bool) "1 truthy" true (t (Dval.Int 1L));
  Alcotest.(check bool) "empty str falsy" false (t (Dval.Str ""));
  Alcotest.(check bool) "empty list falsy" false (t (Dval.List []));
  Alcotest.(check bool) "record truthy" true (t (Dval.Record []))

let test_if () =
  check_dval "then" (Dval.Str "y") (ev (If (Int 3L, Str "y", Str "n")));
  check_dval "else" (Dval.Str "n") (ev (If (Str "", Str "y", Str "n")))

let test_arith_and_compare () =
  check_dval "mod" (Dval.Int 2L) (ev (Binop (Mod, Int 17L, Int 5L)));
  check_dval "lt" (Dval.Bool true) (ev (Binop (Lt, Int 1L, Int 2L)));
  check_dval "eq str" (Dval.Bool true) (ev (Binop (Eq, Str "a", Str "a")));
  check_dval "ne mixed" (Dval.Bool true) (ev (Binop (Ne, Str "1", Int 1L)));
  Alcotest.check_raises "div zero" (Eval.Error "division by zero") (fun () ->
      ignore (ev (Binop (Div, Int 1L, Int 0L))))

let test_short_circuit () =
  (* The right operand must not evaluate when the left decides. *)
  let writes = ref [] in
  let host = Eval.host ~write:(fun k _ -> writes := k :: !writes) () in
  ignore
    (ev ~host
       (Binop (And, Bool false, Seq [ Write (Str "boom", Unit); Bool true ])));
  Alcotest.(check (list string)) "and skipped rhs" [] !writes;
  ignore
    (ev ~host
       (Binop (Or, Bool true, Seq [ Write (Str "boom", Unit); Bool true ])));
  Alcotest.(check (list string)) "or skipped rhs" [] !writes

let test_lists () =
  check_dval "append" (Dval.List [ Dval.Int 1L; Dval.Int 2L ])
    (ev (Append (List_lit [ Int 1L ], Int 2L)));
  check_dval "prepend"
    (Dval.List [ Dval.Int 0L; Dval.Int 1L ])
    (ev (Prepend (List_lit [ Int 1L ], Int 0L)));
  check_dval "take" (Dval.List [ Dval.Int 1L ])
    (ev (Take (List_lit [ Int 1L; Int 2L ], Int 1L)));
  check_dval "length" (Dval.Int 3L)
    (ev (Length (List_lit [ Unit; Unit; Unit ])));
  check_dval "nth" (Dval.Int 20L)
    (ev (Nth (List_lit [ Int 10L; Int 20L ], Int 1L)));
  Alcotest.check_raises "nth out of bounds" (Eval.Error "index 5 out of bounds")
    (fun () -> ignore (ev (Nth (List_lit [ Int 1L ], Int 5L))))

let test_records () =
  check_dval "field" (Dval.Str "bob")
    (ev (Field (Record_lit [ ("name", Str "bob") ], "name")));
  check_dval "set_field" (Dval.Int 2L)
    (ev
       (Field
          ( Set_field (Record_lit [ ("v", Int 1L) ], "v", Int 2L),
            "v" )));
  Alcotest.check_raises "missing field" (Eval.Error "no field zzz") (fun () ->
      ignore (ev (Field (Record_lit [], "zzz"))))

let test_foreach_maps () =
  check_dval "doubled"
    (Dval.List [ Dval.Int 2L; Dval.Int 4L; Dval.Int 6L ])
    (ev
       (Foreach
          ( "x",
            List_lit [ Int 1L; Int 2L; Int 3L ],
            Binop (Mul, Var "x", Int 2L) )))

let test_storage_host () =
  let tbl = Hashtbl.create 4 in
  Hashtbl.replace tbl "greeting" (Dval.Str "hello");
  let host =
    Eval.host
      ~read:(fun k ->
        Option.value ~default:Dval.Unit (Hashtbl.find_opt tbl k))
      ~write:(fun k v -> Hashtbl.replace tbl k v)
      ()
  in
  check_dval "read" (Dval.Str "hello") (ev ~host (Read (Str "greeting")));
  ignore (ev ~host (Write (Str "out", Concat [ Read (Str "greeting"); Str "!" ])));
  check_dval "write visible" (Dval.Str "hello!") (ev ~host (Read (Str "out")))

let test_compute_charges () =
  let total = ref 0.0 in
  let host = Eval.host ~compute:(fun ms -> total := !total +. ms) () in
  ignore (ev ~host (Compute (100.0, Compute (20.0, Int 1L))));
  Alcotest.(check (float 1e-9)) "compute sum" 120.0 !total

let test_declare_hook () =
  let seen = ref [] in
  let host = Eval.host ~declare:(fun d k -> seen := (d = Decl_write, k) :: !seen) () in
  ignore (ev ~host (Seq [ Declare (Decl_read, Str "a"); Declare (Decl_write, Str "b") ]));
  Alcotest.(check (list (pair bool string))) "declares"
    [ (false, "a"); (true, "b") ]
    (List.rev !seen)

let test_nondeterministic_defaults_raise () =
  Alcotest.check_raises "time" (Eval.Error "time_now: nondeterministic source")
    (fun () -> ignore (ev Time_now))

(* ------------------------------------------------------------------ *)
(* Compile/eval agreement                                              *)

let initial_store =
  [
    ("k0", Dval.Str "alpha");
    ("k1", Dval.Str "beta");
    ("k2", Dval.Str "gamma");
    ("k3", Dval.Str "delta");
  ]

(* Run a function both ways against identical stores; compare results,
   write traces, and compute totals. *)
let both (f : Ast.func) args =
  let ev_tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace ev_tbl k v) initial_store;
  let ev_writes = ref [] in
  let ev_compute = ref 0.0 in
  let ev_host =
    Eval.host
      ~read:(fun k -> Option.value ~default:Dval.Unit (Hashtbl.find_opt ev_tbl k))
      ~write:(fun k v ->
        Hashtbl.replace ev_tbl k v;
        ev_writes := (k, v) :: !ev_writes)
      ~compute:(fun ms -> ev_compute := !ev_compute +. ms)
      ()
  in
  let ev_result =
    match Eval.eval ev_host f args with
    | v -> Ok v
    | exception Eval.Error e -> Error e
  in
  let m = Compile.compile f in
  let wasm_compute = ref 0.0 in
  let wasm_host, wasm_writes = Wasm.Host.recording ~store:initial_store () in
  let wasm_host = { wasm_host with compute = (fun ms -> wasm_compute := !wasm_compute +. ms) } in
  let wasm_result = Wasm.Interp.run m ~host:wasm_host ~entry:f.fn_name args in
  ( (ev_result, List.rev !ev_writes, !ev_compute),
    (wasm_result, wasm_writes (), !wasm_compute) )

let check_agree name f args =
  let (er, ew, ec), (wr, ww, wc) = both f args in
  (match (er, wr) with
  | Ok a, Ok b ->
      Alcotest.(check string) (name ^ ": result") (Dval.to_string a)
        (Dval.to_string b)
  | Error _, Error _ -> ()
  | Ok v, Error e ->
      Alcotest.fail
        (Printf.sprintf "%s: eval gave %s, VM trapped: %s" name
           (Dval.to_string v) e)
  | Error e, Ok v ->
      Alcotest.fail
        (Printf.sprintf "%s: eval errored (%s), VM gave %s" name e
           (Dval.to_string v)));
  Alcotest.(check (list (pair string string)))
    (name ^ ": writes")
    (List.map (fun (k, v) -> (k, Dval.to_string v)) ew)
    (List.map (fun (k, v) -> (k, Dval.to_string v)) ww);
  Alcotest.(check (float 1e-9)) (name ^ ": compute") ec wc

let sample_timeline =
  (* read a list of ids, read each one's record, concat names. *)
  {
    fn_name = "timeline";
    params = [ "user" ];
    body =
      Let
        ( "ids",
          Read (Concat [ Str "follows:"; Input "user" ]),
          Foreach
            ( "id",
              Var "ids",
              Compute (2.0, Read (Concat [ Str "posts:"; Var "id" ])) ) );
  }

let test_compiled_timeline () =
  let store =
    [
      ("follows:u1", Dval.List [ Dval.Str "a"; Dval.Str "b" ]);
      ("posts:a", Dval.Str "pa");
      ("posts:b", Dval.Str "pb");
    ]
  in
  let m = Compile.compile sample_timeline in
  (match Wasm.Validate.check m with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wasm.Validate.pp_error e));
  let host, _ = Wasm.Host.recording ~store () in
  match Wasm.Interp.run m ~host ~entry:"timeline" [ Dval.Str "u1" ] with
  | Ok v ->
      check_dval "timeline result" (Dval.List [ Dval.Str "pa"; Dval.Str "pb" ]) v
  | Error e -> Alcotest.fail e

let test_compile_agreement_samples () =
  check_agree "write-read"
    {
      fn_name = "wr";
      params = [ "k" ];
      body =
        Seq
          [
            Write (Input "k", Concat [ Read (Str "k0"); Str "!" ]);
            Read (Input "k");
          ];
    }
    [ Dval.Str "dest" ];
  check_agree "branchy"
    {
      fn_name = "br";
      params = [ "n" ];
      body =
        If
          ( Binop (Gt, Input "n", Int 10L),
            Write (Str "big", Input "n"),
            Write (Str "small", Input "n") );
    }
    [ Dval.Int 20L ];
  check_agree "compute"
    { fn_name = "c"; params = []; body = Compute (50.0, Int 1L) }
    [];
  check_agree "records"
    {
      fn_name = "rec";
      params = [];
      body =
        Field
          ( Set_field (Record_lit [ ("a", Int 1L); ("b", Str "x") ], "a", Int 9L),
            "a" );
    }
    []

let test_compile_nondeterministic_rejected () =
  let f = { fn_name = "nd"; params = []; body = Binop (Add, Time_now, Int 1L) } in
  let m = Compile.compile f in
  match Wasm.Validate.check m with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation failure"

let test_compile_declare_unsupported () =
  let f = { fn_name = "d"; params = []; body = Declare (Decl_read, Str "k") } in
  match Compile.compile f with
  | exception Compile.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

(* Random typed programs: generator keeps programs well-typed so both
   implementations must agree on everything observable. *)
type ty = I | S | B

let gen_program =
  let open QCheck.Gen in
  let str_const = map (fun c -> Str (String.make 1 c)) (char_range 'a' 'e') in
  let keys = [ "k0"; "k1"; "k2"; "k3" ] in
  let rec gen ty env n =
    if n <= 0 then leaf ty env
    else
      let sub = gen in
      let recurse =
        match ty with
        | I ->
            [
              ( 3,
                map3
                  (fun op a b -> Binop (op, a, b))
                  (oneofl [ Add; Sub; Mul ])
                  (sub I env (n / 2)) (sub I env (n / 2)) );
              ( 1,
                map3 (fun c a b -> If (c, a, b)) (sub B env (n / 2))
                  (sub I env (n / 2)) (sub I env (n / 2)) );
              ( 1,
                sub I (("v", I) :: env) (n / 2)
                >>= fun body ->
                map (fun v -> Let ("v", v, body)) (sub I env (n / 2)) );
            ]
        | S ->
            [
              ( 3,
                map2 (fun a b -> Concat [ a; b ]) (sub S env (n / 2))
                  (sub S env (n / 2)) );
              (2, map (fun e -> Str_of_int e) (sub I env (n / 2)));
              ( 1,
                map3 (fun c a b -> If (c, a, b)) (sub B env (n / 2))
                  (sub S env (n / 2)) (sub S env (n / 2)) );
              ( 1,
                map2
                  (fun k body -> Seq [ Write (Str k, body); Read (Str k) ])
                  (oneofl [ "w0"; "w1" ])
                  (sub S env (n / 2)) );
            ]
        | B ->
            [
              ( 2,
                map2 (fun a b -> Binop (Eq, a, b)) (sub I env (n / 2))
                  (sub I env (n / 2)) );
              ( 2,
                map2 (fun a b -> Binop (Lt, a, b)) (sub I env (n / 2))
                  (sub I env (n / 2)) );
              ( 1,
                map2 (fun a b -> Binop (And, a, b)) (sub B env (n / 2))
                  (sub B env (n / 2)) );
              ( 1,
                map2 (fun a b -> Binop (Or, a, b)) (sub B env (n / 2))
                  (sub B env (n / 2)) );
              (1, map (fun e -> Not e) (sub B env (n / 2)));
            ]
      in
      frequency ((2, leaf ty env) :: recurse)
  and leaf ty env =
    let vars = List.filter (fun (_, t) -> t = ty) env in
    let var_gens = List.map (fun (x, _) -> (1, QCheck.Gen.return (Var x))) vars in
    let consts =
      match ty with
      | I -> [ (2, map (fun i -> Int (Int64.of_int i)) (int_range (-20) 20)) ]
      | S -> [ (2, str_const); (1, map (fun k -> Read (Str k)) (oneofl keys)) ]
      | B -> [ (2, map (fun b -> Bool b) bool) ]
    in
    frequency (consts @ var_gens)
  in
  sized (fun n ->
      let n = min n 30 in
      let open QCheck.Gen in
      oneofl [ I; S; B ] >>= fun ty ->
      gen ty [ ("p", I) ] n >>= fun body ->
      return { fn_name = "prog"; params = [ "p" ]; body })

let prop_compile_agrees_with_eval =
  QCheck.Test.make ~name:"compiled code agrees with the evaluator" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Ast.pp_func) gen_program)
    (fun f ->
      let (er, ew, ec), (wr, ww, wc) = both f [ Dval.Int 7L ] in
      let results_agree =
        match (er, wr) with
        | Ok a, Ok b -> Dval.equal a b
        | Error _, Error _ -> true
        | Ok _, Error _ | Error _, Ok _ -> false
      in
      results_agree
      && List.length ew = List.length ww
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && Dval.equal v1 v2)
           ew ww
      && Float.abs (ec -. wc) < 1e-9)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fdsl"
    [
      ( "eval",
        [
          Alcotest.test_case "literals and let" `Quick test_literals_and_let;
          Alcotest.test_case "inputs" `Quick test_inputs;
          Alcotest.test_case "arity error" `Quick test_arity_error;
          Alcotest.test_case "truthiness" `Quick test_truthiness;
          Alcotest.test_case "if" `Quick test_if;
          Alcotest.test_case "arith and compare" `Quick test_arith_and_compare;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "lists" `Quick test_lists;
          Alcotest.test_case "records" `Quick test_records;
          Alcotest.test_case "foreach maps" `Quick test_foreach_maps;
          Alcotest.test_case "storage host" `Quick test_storage_host;
          Alcotest.test_case "compute charges" `Quick test_compute_charges;
          Alcotest.test_case "declare hook" `Quick test_declare_hook;
          Alcotest.test_case "nondeterministic defaults raise" `Quick
            test_nondeterministic_defaults_raise;
        ] );
      ( "compile",
        [
          Alcotest.test_case "timeline through VM" `Quick test_compiled_timeline;
          Alcotest.test_case "agreement samples" `Quick
            test_compile_agreement_samples;
          Alcotest.test_case "nondeterministic rejected" `Quick
            test_compile_nondeterministic_rejected;
          Alcotest.test_case "declare unsupported" `Quick
            test_compile_declare_unsupported;
        ]
        @ qsuite [ prop_compile_agrees_with_eval ] );
    ]
