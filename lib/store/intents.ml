type status = Pending | Completed

type t = { table : (string, status) Hashtbl.t; latency : float }

let create ?(access_latency = 6.0) () =
  { table = Hashtbl.create 64; latency = access_latency }

let pay t = Sim.Engine.sleep t.latency

let peek t ~exec_id = Hashtbl.find_opt t.table exec_id

(* Conditional put-if-absent, like the DynamoDB conditional write the
   paper uses. A duplicate delivery of the same LVI request must find
   the first delivery's intent rather than crash the server, so this
   dedupes instead of raising. *)
let put t ~exec_id =
  pay t;
  if Hashtbl.mem t.table exec_id then false
  else begin
    Hashtbl.replace t.table exec_id Pending;
    true
  end

let status t ~exec_id =
  pay t;
  peek t ~exec_id

let try_complete t ~exec_id =
  pay t;
  match Hashtbl.find_opt t.table exec_id with
  | Some Pending ->
      Hashtbl.replace t.table exec_id Completed;
      true
  | Some Completed | None -> false

let remove t ~exec_id =
  pay t;
  Hashtbl.remove t.table exec_id

let pending_count t =
  Hashtbl.fold (fun _ s acc -> if s = Pending then acc + 1 else acc) t.table 0
