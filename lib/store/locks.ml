type mode = Read | Write

type waiter = { w_mode : mode; w_owner : string; w_resume : unit -> unit }

type kstate = {
  mutable readers : string list;
  mutable writer : string option;
  queue : waiter Queue.t;
}

type t = {
  keys : (string, kstate) Hashtbl.t;
  held : (string, (string * mode) list) Hashtbl.t; (* owner -> locks *)
  mutable granted : int;
  mutable contended : int;
}

let create () =
  { keys = Hashtbl.create 256; held = Hashtbl.create 64; granted = 0; contended = 0 }

let kstate t key =
  match Hashtbl.find_opt t.keys key with
  | Some ks -> ks
  | None ->
      let ks = { readers = []; writer = None; queue = Queue.create () } in
      Hashtbl.add t.keys key ks;
      ks

let free_now ks mode =
  match mode with
  | Read -> ks.writer = None && Queue.is_empty ks.queue
  | Write -> ks.writer = None && ks.readers = [] && Queue.is_empty ks.queue

(* Holder lists are built newest-first ([::], O(1) per grant) and
   reversed at the few read-out points; appending with [@] would make a
   hot key's read storm quadratic in its reader count. *)
let grant t ks owner mode =
  (match mode with
  | Read -> ks.readers <- owner :: ks.readers
  | Write -> ks.writer <- Some owner);
  t.granted <- t.granted + 1

let record_held t owner key mode =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.held owner) in
  Hashtbl.replace t.held owner ((key, mode) :: prev)

let acquire_one t ~owner key mode =
  let ks = kstate t key in
  if free_now ks mode then grant t ks owner mode
  else begin
    t.contended <- t.contended + 1;
    Sim.Engine.suspend (fun resume ->
        Queue.push { w_mode = mode; w_owner = owner; w_resume = (fun () -> resume ()) }
          ks.queue)
  end;
  record_held t owner key mode

(* Wake waiters at the front of the queue that are compatible with the
   holders left after a release. Grants happen here (synchronously) so a
   newly arriving request cannot overtake a waiter that was just woken. *)
let drain t ks =
  let rec loop () =
    match Queue.peek_opt ks.queue with
    | None -> ()
    | Some w -> (
        match w.w_mode with
        | Read when ks.writer = None ->
            ignore (Queue.pop ks.queue);
            grant t ks w.w_owner Read;
            w.w_resume ();
            loop ()
        | Write when ks.writer = None && ks.readers = [] ->
            ignore (Queue.pop ks.queue);
            grant t ks w.w_owner Write;
            w.w_resume ()
        | Read | Write -> ())
  in
  loop ()

(* Remove exactly one occurrence: one release undoes one grant. The
   public [acquire] rejects duplicate keys and re-entrant owners, so
   holder lists are duplicate-free today and this matches [List.filter];
   but filtering would silently drop *every* entry for an owner if
   re-entrant read acquisition ever appeared, turning a double-acquire
   into a premature full release. Pin the one-for-one semantics now. *)
let remove_first_reader readers owner =
  let rec go = function
    | [] -> []
    | o :: rest -> if String.equal o owner then rest else o :: go rest
  in
  go readers

let release_one t ~owner key mode =
  match Hashtbl.find_opt t.keys key with
  | None -> ()
  | Some ks ->
      (match mode with
      | Read -> ks.readers <- remove_first_reader ks.readers owner
      | Write -> if ks.writer = Some owner then ks.writer <- None);
      drain t ks

let acquire t ~owner locks =
  if Hashtbl.mem t.held owner then
    invalid_arg (Printf.sprintf "Locks.acquire: %s already holds locks" owner);
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) locks
  in
  let rec check_dups = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Locks.acquire: duplicate key " ^ a)
        else check_dups rest
    | [ _ ] | [] -> ()
  in
  check_dups sorted;
  Hashtbl.replace t.held owner [];
  List.iter (fun (key, mode) -> acquire_one t ~owner key mode) sorted

let try_acquire t ~owner locks =
  if Hashtbl.mem t.held owner then
    invalid_arg (Printf.sprintf "Locks.try_acquire: %s already holds locks" owner);
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) locks in
  let rec check_dups = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Locks.try_acquire: duplicate key " ^ a)
        else check_dups rest
    | [ _ ] | [] -> ()
  in
  check_dups sorted;
  if List.for_all (fun (key, mode) -> free_now (kstate t key) mode) sorted
  then begin
    Hashtbl.replace t.held owner [];
    List.iter
      (fun (key, mode) ->
        grant t (kstate t key) owner mode;
        record_held t owner key mode)
      sorted;
    true
  end
  else false

let release t ~owner =
  match Hashtbl.find_opt t.held owner with
  | None -> ()
  | Some locks ->
      Hashtbl.remove t.held owner;
      List.iter
        (fun (key, mode) -> release_one t ~owner key mode)
        (List.rev locks)

(* Write mode dominates for a key that is both read and written: it
   takes a single write lock (the read is still validated by the
   caller). Order is the callers' wire order — writes first, then the
   reads not already covered — which feeds the replicated lock log, so
   it must stay stable. *)
let lock_list ~reads ~writes =
  List.map (fun k -> (k, Write)) writes
  @ List.filter_map
      (fun k -> if List.mem k writes then None else Some (k, Read))
      reads

let merged_keys ~reads ~writes = List.map fst (lock_list ~reads ~writes)

let write_locked t key =
  match Hashtbl.find_opt t.keys key with
  | None -> false
  | Some ks -> ks.writer <> None

let holders t key =
  match Hashtbl.find_opt t.keys key with
  | None -> None
  | Some ks -> (
      match (ks.writer, ks.readers) with
      | Some o, _ -> Some (Write, [ o ])
      | None, [] -> None
      | None, readers -> Some (Read, List.rev readers))

let held_by t ~owner =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.held owner))

let waiting t key =
  match Hashtbl.find_opt t.keys key with
  | None -> 0
  | Some ks -> Queue.length ks.queue

let acquisitions t = t.granted

let contended_acquisitions t = t.contended
