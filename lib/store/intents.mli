(** Write-intent table (§3.4), stored in primary storage.

    An intent maps an execution id to a status bit. It is created during
    the handling of an LVI request whose write set is non-empty; either
    the write followup or the deterministic re-execution transitions it
    to completed — whichever happens first wins, and the loser's writes
    are discarded. Operations pay the storage access latency. *)

type t

type status = Pending | Completed

val create : ?access_latency:float -> unit -> t
(** Intents live in DynamoDB in the paper, so the default latency matches
    [Kv.create]'s 6.0 ms. *)

val put : t -> exec_id:string -> bool
(** Create a pending intent if none exists — a conditional put-if-absent.
    Returns [true] iff this call created it; [false] means the id is
    already present (in either status), which is how a duplicated LVI
    delivery is detected instead of double-executing. *)

val status : t -> exec_id:string -> status option

val try_complete : t -> exec_id:string -> bool
(** Atomically transition Pending → Completed. Returns [true] iff this
    call performed the transition — the winner applies the writes; a
    loser (late followup, or re-execution racing a followup) must discard
    its writes. [false] also for unknown ids. *)

val remove : t -> exec_id:string -> unit
(** Remove a completed intent (end of protocol). *)

val pending_count : t -> int

(* Latency-free inspection for tests. *)
val peek : t -> exec_id:string -> status option
