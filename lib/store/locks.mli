(** Read/write lock table for the LVI server.

    Each key has an independent read/write lock with a FIFO wait queue
    (no overtaking, so writers are not starved). [acquire] takes every
    lock an execution needs in ascending key order — the paper's
    lexicographic sort (§3.6) — which precludes deadlock between
    concurrent LVI requests. Acquisition itself adds no virtual latency:
    the singleton server keeps the table in memory; the replicated
    variant built on Raft charges consensus latency separately. *)

type t

type mode = Read | Write

val create : unit -> t

val acquire : t -> owner:string -> (string * mode) list -> unit
(** Block until every listed lock is held by [owner]. Keys must be
    distinct; raises [Invalid_argument] on duplicates or if [owner]
    already holds locks. *)

val try_acquire : t -> owner:string -> (string * mode) list -> bool
(** All-or-nothing, non-blocking variant of {!acquire}: grants every
    listed lock iff each is immediately free (no holder conflict and an
    empty wait queue — queue-jumping would starve FIFO waiters). On
    [false] nothing is granted and no queue entry is left behind, so the
    caller never holds a partial set and never creates a wait-for edge —
    the property the cross-shard parallel prepare round relies on for
    deadlock freedom. Same duplicate-key / re-entrant-owner guards as
    {!acquire}. *)

val release : t -> owner:string -> unit
(** Release every lock held by [owner]; wakes eligible waiters FIFO.
    No-op for an unknown owner. *)

val lock_list : reads:string list -> writes:string list -> (string * mode) list
(** The lock list for an execution that reads [reads] and writes
    [writes]: one [Write] entry per written key, then one [Read] entry
    per read key not also written — write mode dominates an overlapping
    key, so no key appears twice. Order (writes first, in the given
    order) is part of the contract: callers feed it to the replicated
    lock log. *)

val merged_keys : reads:string list -> writes:string list -> string list
(** [List.map fst (lock_list ~reads ~writes)]: the distinct keys such an
    execution locks, writes first. Both lock-release sites must use this
    rather than concatenating the raw sets — a key read {e and} written
    would otherwise be released (and logged) twice. *)

val write_locked : t -> string -> bool
(** Is some owner currently {e holding} the key's write lock? Queued
    waiters do not count: the read-only LVI fast path probes this to
    detect an in-flight write that may already be client-acked but not
    yet applied — reading the current value would then violate
    linearizability, so the probe forces such requests onto the full
    locked path. *)

val holders : t -> string -> (mode * string list) option
(** Current holders of a key's lock: [(Write, [o])] or [(Read, owners)];
    [None] if free. *)

val held_by : t -> owner:string -> (string * mode) list
(** Locks currently held by an owner, in acquisition order. *)

val waiting : t -> string -> int
(** Number of queued waiters on a key. *)

val acquisitions : t -> int
(** Total locks granted so far. *)

val contended_acquisitions : t -> int
(** Locks that had to wait before being granted. *)
