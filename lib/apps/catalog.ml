type info = {
  fn_name : string;
  app : string;
  description : string;
  writes : bool;
  dependent : bool;
  exec_ms : float;
  workload_pct : float;
}

let mk app fn_name description writes dependent exec_ms workload_pct =
  { fn_name; app; description; writes; dependent; exec_ms; workload_pct }

let table1 =
  [
    mk "social" "social-login" "Performs pbkdf2-based password check" false false 213.0 9.5;
    mk "social" "social-post" "Make a post and add to followers' timelines" true true 106.0 0.5;
    mk "social" "social-follow" "Follow another user" true false 16.0 0.5;
    mk "social" "social-timeline" "View the posts from followed users" false false 120.0 80.0;
    mk "social" "social-profile" "View a user's profile and their posts" false false 124.0 9.5;
    mk "hotel" "hotel-search" "Find all hotels near a user's location" false true 161.0 60.0;
    mk "hotel" "hotel-recommend" "Get recommendations based on prior reviews" false false 207.0 30.0;
    mk "hotel" "hotel-book" "Book a room in a hotel" true false 272.0 0.5;
    mk "hotel" "hotel-review" "Make a review for a hotel" true false 13.0 0.5;
    mk "hotel" "hotel-login" "Performs pbkdf2-based password check" false false 213.0 0.5;
    mk "hotel" "hotel-attractions" "View all nearby attractions to a hotel" false false 111.0 8.5;
    mk "forum" "forum-homepage" "View most recent/popular posts" false false 209.0 80.0;
    mk "forum" "forum-post" "Make a comment or post" true false 18.0 1.0;
    mk "forum" "forum-interact" "Upvote or favorite comments/posts" true false 16.0 9.0;
    mk "forum" "forum-view" "View a post and all comments" false false 123.0 8.0;
    mk "forum" "forum-login" "Performs pbkdf2-based password check" false false 212.0 2.0;
  ]

let evaluated_apps =
  [
    ("social", Social.functions);
    ("hotel", Hotel.functions);
    ("forum", Forum.functions);
  ]

let all_functions =
  Social.functions @ Hotel.functions @ Forum.functions @ Imageboard.functions
  @ Projectmgmt.functions

let all_apps =
  [
    ("social", Social.functions);
    ("hotel", Hotel.functions);
    ("forum", Forum.functions);
    ("imageboard", Imageboard.functions);
    ("projectmgmt", Projectmgmt.functions);
  ]

let find name = List.find_opt (fun i -> String.equal i.fn_name name) table1

(* Developer-supplied residuals (§7) for catalog functions the analyzer
   rejects, with sample input vectors for the registration-time
   differential check. *)
let manual_overrides =
  [
    ( Imageboard.flag_fn,
      Imageboard.flag_rw,
      [
        [ Dval.Str "b0"; Dval.Str "i0" ];
        [ Dval.Str "b1"; Dval.Str "i7" ];
        [ Dval.Str "b2"; Dval.Str "i0" ];
      ] );
  ]

let manual_rw_of name =
  List.find_map
    (fun (src, rw, _) ->
      if String.equal src.Fdsl.Ast.fn_name name then Some rw else None)
    manual_overrides

let check_manuals ?(read = fun _ -> Dval.Unit) () =
  List.map
    (fun (src, rw, samples) ->
      let result =
        match Analyzer.Derive.manual ~source:src ~rw_func:rw with
        | exception Invalid_argument m -> Error m
        | d -> Analyzer.Derive.check_manual d ~read ~samples
      in
      (src.Fdsl.Ast.fn_name, result))
    manual_overrides
