open Fdsl.Ast
open Appdsl

let img i = key "img:" i

let tag t = key "tag:" t

let icomments i = key "icomments:" i

let ifavs i = key "ifavs:" i

let ufavs u = key "ufavs:" u

let iuser u = key "iuser:" u

(* Dependent: the tag index determines which image records load. *)
let search_fn =
  fn "ib-search" [ "t" ]
    (Let
       ( "ids",
         Read (tag (Input "t")),
         Compute
           ( 130.0,
             Foreach
               ( "i",
                 Take (If (Var "ids", Var "ids", List_lit []), int 10),
                 Read (img (Var "i")) ) ) ))

let upload_fn =
  fn "ib-upload" [ "u"; "i"; "tags" ]
    (Compute
       ( 45.0,
         Seq
           [
             Write
               ( img (Input "i"),
                 fields [ ("by", Input "u"); ("id", Input "i") ] );
             Write (icomments (Input "i"), List_lit []);
             Foreach
               ( "t",
                 Input "tags",
                 bump_list ~key:(tag (Var "t")) ~keep:50 (Input "i") );
             Input "i";
           ] ))

let view_fn =
  fn "ib-view" [ "i" ]
    (Compute
       ( 95.0,
         fields
           [
             ("image", Read (img (Input "i")));
             ("comments", Take (Read (icomments (Input "i")), int 20));
           ] ))

let comment_fn =
  fn "ib-comment" [ "u"; "i"; "text" ]
    (Compute
       ( 15.0,
         Seq
           [
             bump_list ~key:(icomments (Input "i")) ~keep:50
               (fields [ ("by", Input "u"); ("text", Input "text") ]);
             Bool true;
           ] ))

let favorite_fn =
  fn "ib-favorite" [ "u"; "i" ]
    (Compute
       ( 14.0,
         Seq
           [
             rmw ~key:(ifavs (Input "i")) (fun c ->
                 If (c, c, int 0) +: int 1);
             bump_list ~key:(ufavs (Input "u")) ~keep:100 (Input "i");
             Bool true;
           ] ))

let login_fn =
  fn "ib-login" [ "u"; "pw" ]
    (Let
       ( "acct",
         Read (iuser (Input "u")),
         Compute (213.0, Field (Var "acct", "pwhash") ==: Input "pw") ))

let iflags i = key "iflags:" i

(* Moderation: bump an image's flag count if an opaque policy model says
   the report is credible. The [Opaque] barrier models a native
   classifier the symbolic analysis cannot see through — and it sits in
   control position, so automatic derivation fails. Both arms touch the
   same key the same way, which is what makes the hand-written residual
   below exact. *)
let flag_fn =
  fn "ib-flag" [ "u"; "i" ]
    (Compute
       ( 9.0,
         If
           ( Opaque (Input "u"),
             rmw ~key:(iflags (Input "i")) (fun c -> If (c, c, int 0) +: int 1),
             rmw ~key:(iflags (Input "i")) (fun c -> If (c, c, int 0)) ) ))

(* The developer-supplied f^rw (§7): whatever the opaque policy decides,
   the function reads and writes exactly [iflags:{i}]. Checked against
   the source by [Derive.check_manual] in the test suite. *)
let flag_rw =
  fn "ib-flag" [ "u"; "i" ]
    (Seq
       [
         Declare (Decl_read, iflags (Input "i"));
         Declare (Decl_write, iflags (Input "i"));
       ])

let functions =
  [ search_fn; upload_fn; view_fn; comment_fn; favorite_fn; login_fn; flag_fn ]

let iid i = Printf.sprintf "i%d" i

let tid t = Printf.sprintf "t%d" t

let uid u = Printf.sprintf "b%d" u

let seed ?(n_users = 300) ?(n_images = 400) ?(n_tags = 40) rng =
  let images =
    List.concat
      (List.init n_images (fun i ->
           [
             ( "img:" ^ iid i,
               Dval.Record
                 [ ("by", Dval.Str (uid (Sim.Rng.int rng n_users)));
                   ("id", Dval.Str (iid i)) ] );
             ("icomments:" ^ iid i, Dval.List []);
             ("ifavs:" ^ iid i, Dval.int (Sim.Rng.int rng 50));
             ("iflags:" ^ iid i, Dval.int 0);
           ]))
  in
  let tags =
    List.init n_tags (fun t ->
        let members =
          List.init 12 (fun _ -> Dval.Str (iid (Sim.Rng.int rng n_images)))
        in
        ("tag:" ^ tid t, Dval.List members))
  in
  let users =
    List.concat
      (List.init n_users (fun u ->
           [
             ( "iuser:" ^ uid u,
               Dval.Record
                 [ ("name", Dval.Str (uid u));
                   ("pwhash", Dval.Str ("hash-" ^ uid u)) ] );
             ("ufavs:" ^ uid u, Dval.List []);
           ]))
  in
  images @ tags @ users

type gen = {
  n_users : int;
  n_images : int;
  n_tags : int;
  mix : string Workload.Mix.t;
  mutable next_img : int;
}

let mix_weights =
  [
    ("ib-search", 45.0);
    ("ib-view", 35.0);
    ("ib-favorite", 10.0);
    ("ib-comment", 5.0);
    ("ib-login", 4.0);
    ("ib-upload", 1.0);
  ]

let gen ?(n_users = 300) ?(n_images = 400) ?(n_tags = 40) () =
  {
    n_users;
    n_images;
    n_tags;
    mix = Workload.Mix.create mix_weights;
    next_img = n_images;
  }

let next g rng =
  let u = uid (Sim.Rng.int rng g.n_users) in
  let i = iid (Sim.Rng.int rng g.n_images) in
  let t = tid (Sim.Rng.int rng g.n_tags) in
  match Workload.Mix.sample g.mix rng with
  | "ib-search" -> ("ib-search", [ Dval.Str t ])
  | "ib-view" -> ("ib-view", [ Dval.Str i ])
  | "ib-favorite" -> ("ib-favorite", [ Dval.Str u; Dval.Str i ])
  | "ib-comment" -> ("ib-comment", [ Dval.Str u; Dval.Str i; Dval.Str "nice" ])
  | "ib-login" -> ("ib-login", [ Dval.Str u; Dval.Str ("hash-" ^ u) ])
  | "ib-upload" ->
      g.next_img <- g.next_img + 1;
      ( "ib-upload",
        [
          Dval.Str u;
          Dval.Str (iid g.next_img);
          Dval.List [ Dval.Str t ];
        ] )
  | other -> invalid_arg other

let schema : Fdsl.Typecheck.schema =
  let open Fdsl.Types in
  [
    ("img:", TRecord [ ("by", TStr); ("id", TStr) ]);
    ("tag:", TList TStr);
    ("icomments:", TList TAny);
    ("ifavs:", TInt);
    ("iflags:", TInt);
    ("ufavs:", TList TStr);
    ("iuser:", TRecord [ ("name", TStr); ("pwhash", TStr) ]);
  ]
