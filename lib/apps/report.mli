(** Deterministic, whole-catalog analysis report.

    Renders, for every application in {!Catalog.all_apps}:

    - a per-function classification table — raw [Derive] result next to
      the {!Analyzer.Optimize} result, with a [^] marker on functions
      the residual optimizer upgraded, plus each function's read/write
      key shapes from {!Analyzer.Absint.summarize};
    - the application's pairwise conflict report
      ({!Analyzer.Conflict.pp_report}): Table-1-style matrix,
      read-modify-write functions, and lock-order hazards;

    followed by the differential check of every manual [f^rw] override
    ({!Catalog.check_manuals}).

    The output is byte-deterministic (no timestamps, no hash-order
    iteration), so it is checked against a golden file in the test
    suite and printed by [radical_cli analyze]. *)

val render : unit -> string

val render_certify : unit -> string * bool
(** Whole-catalog bytecode effect certification
    ({!Analyzer.Certify.check} against the compiled module of every
    catalog function): per-function table of classification,
    bytecode-derived read/write shapes and verdict, plus a
    [catalog: N/N certified] summary line. The boolean is [true] iff
    every function certified. Byte-deterministic, golden-tested, and
    printed by [radical_cli certify]. *)
