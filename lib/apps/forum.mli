(** The forum benchmark (Lobsters, §5.1).

    Five handlers matching Table 1: homepage (209 ms, 80% of requests —
    one hot key, like lobste.rs' front page), post (18 ms, writes the
    post and the front page), interact (16 ms, read-modify-write of a
    post's score), view (123 ms), login (212 ms). Posts are selected
    with zipf 0.99 (§5.3). A sixth handler, {!digest_fn}, exercises the
    residual optimizer and is not part of the Table 1 mix.

    Data model: [fhome] front-page digest (single hot key),
    [fpost:{p}] post record with score, [fcomments:{p}], [fuser:{u}],
    [fhome_layout] site-wide rendering config. *)

val functions : Fdsl.Ast.func list

val digest_fn : Fdsl.Ast.func
(** Reads the [fhome_layout] config key and branches on it, but both
    arms access the same keys. Naive derivation classifies it
    Dependent 1 (control-relevant read); {!Analyzer.Optimize} collapses
    the access-equivalent branch and upgrades it to Static — the
    regression test pins that upgrade. *)

val seed : ?n_users:int -> ?n_posts:int -> Sim.Rng.t -> (string * Dval.t) list

type gen

val gen : ?n_users:int -> ?n_posts:int -> ?zipf_theta:float -> unit -> gen

val next : gen -> Sim.Rng.t -> string * Dval.t list
(** Table 1 mix: homepage 80%, interact 9%, view 8%, login 2%,
    post 1%. *)

val schema : Fdsl.Typecheck.schema
(** Storage schema for registration-time typechecking. *)
