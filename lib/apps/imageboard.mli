(** The image-board application (Danbooru-style, §5.1).

    One of the five ported applications; not part of the detailed
    Table 1 evaluation, but registered and exercised by tests and
    examples. Seven handlers: search by tag (dependent reads through
    the tag index), upload, view, comment, favorite, login, and flag —
    whose control flow goes through an [Opaque] policy model, making it
    the catalog's example of the manual-[f^rw] escape hatch (§7).

    Data model: [img:{i}] record, [tag:{t}] image ids per tag,
    [icomments:{i}], [ifavs:{i}] favorite count, [iflags:{i}] moderation
    flag count, [ufavs:{u}] a user's favorites, [iuser:{u}]. *)

val functions : Fdsl.Ast.func list

val flag_fn : Fdsl.Ast.func
(** Branches on an opaque moderation policy; automatic derivation
    fails. *)

val flag_rw : Fdsl.Ast.func
(** The developer-written residual for {!flag_fn}: read + write of
    [iflags:{i}] regardless of the policy's verdict. Its exactness is
    checked differentially by [Analyzer.Derive.check_manual]. *)

val seed : ?n_users:int -> ?n_images:int -> ?n_tags:int -> Sim.Rng.t -> (string * Dval.t) list

type gen

val gen : ?n_users:int -> ?n_images:int -> ?n_tags:int -> unit -> gen

val next : gen -> Sim.Rng.t -> string * Dval.t list

val schema : Fdsl.Typecheck.schema
(** Storage schema for registration-time typechecking. *)
