(** Function catalog: the ground truth of Table 1, plus the full
    27-function inventory across the five ported applications (§3.4,
    §5.1). The benchmark harness checks its measurements against these
    figures and reprints the table. *)

type info = {
  fn_name : string;
  app : string;
  description : string;
  writes : bool;
  dependent : bool;
      (** Asterisk in Table 1: needed the dependent-read optimization. *)
  exec_ms : float; (** Median execution time reported in Table 1. *)
  workload_pct : float; (** Share of the app's request mix. *)
}

val table1 : info list
(** The 16 functions of the three evaluated applications, in Table 1
    order. *)

val evaluated_apps : (string * Fdsl.Ast.func list) list
(** [("social", ...); ("hotel", ...); ("forum", ...)]. *)

val all_functions : Fdsl.Ast.func list
(** All 29 handlers across the five applications. *)

val all_apps : (string * Fdsl.Ast.func list) list
(** All five applications with their handlers, in catalog order. *)

val find : string -> info option

val manual_overrides :
  (Fdsl.Ast.func * Fdsl.Ast.func * Dval.t list list) list
(** Catalog functions whose [f^rw] is developer-written (§7) because
    automatic derivation fails — currently [ib-flag], whose control flow
    goes through an opaque moderation policy. Each entry carries sample
    input vectors for {!check_manuals}. *)

val manual_rw_of : string -> Fdsl.Ast.func option
(** The manual residual for a function name, if it has one. *)

val check_manuals :
  ?read:(string -> Dval.t) -> unit -> (string * (unit, string) result) list
(** Run {!Analyzer.Derive.check_manual} on every manual override: the
    source executes on each sample against [read] (default: empty
    store), and its actual access set is compared with the residual's
    prediction. Intended for registration-time CI; the test suite calls
    it against representative seed data. *)
