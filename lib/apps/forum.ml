open Fdsl.Ast
open Appdsl

let fpost p = key "fpost:" p

let fcomments p = key "fcomments:" p

let fuser u = key "fuser:" u

let home = Str "fhome"

(* Table 1: 209 ms = 203 ms compute + 1 cache read; 80% of the workload hits this hot key. *)
let homepage_fn =
  fn "forum-homepage" [ "u" ]
    (Compute (203.0, Take (Read home, int 25)))

(* Table 1: 18 ms = 12 ms compute + 1 cache read (the front page). *)
let post_fn =
  fn "forum-post" [ "u"; "pid"; "title"; "text" ]
    (Compute
       ( 12.0,
         Seq
           [
             Write
               ( fpost (Input "pid"),
                 fields
                   [
                     ("title", Input "title");
                     ("body", Input "text");
                     ("by", Input "u");
                     ("score", int 1);
                   ] );
             Write (fcomments (Input "pid"), List_lit []);
             bump_list ~key:home ~keep:30
               (fields [ ("pid", Input "pid"); ("title", Input "title") ]);
             Input "pid";
           ] ))

(* Table 1: 16 ms = 10 ms compute + 1 cache read (rmw of the score). *)
let interact_fn =
  fn "forum-interact" [ "u"; "p" ]
    (Compute
       ( 10.0,
         rmw ~key:(fpost (Input "p")) (fun post ->
             Set_field (post, "score", Field (post, "score") +: int 1)) ))

(* Table 1: 123 ms = 111 ms compute + 2 cache reads. *)
let view_fn =
  fn "forum-view" [ "u"; "p" ]
    (Compute
       ( 111.0,
         fields
           [
             ("post", Read (fpost (Input "p")));
             ("comments", Take (Read (fcomments (Input "p")), int 20));
           ] ))

(* Table 1: 212 ms = 206 ms pbkdf2 + 1 cache read. *)
let login_fn =
  fn "forum-login" [ "u"; "pw" ]
    (Let
       ( "acct",
         Read (fuser (Input "u")),
         Compute (206.0, Field (Var "acct", "pwhash") ==: Input "pw") ))

(* A personalized digest whose rendering mode comes from a site-wide
   config key. The branch decides presentation only: both arms read the
   front page and the user record. The syntax-directed analyzer keeps
   the control-relevant config read in f^rw (Dependent 1); the residual
   optimizer proves the arms access-equivalent, collapses the branch and
   demotes the read (Static) — the per-invocation cache fetch is gone. *)
let digest_fn =
  fn "forum-digest" [ "u" ]
    (Compute
       ( 25.0,
         Let
           ( "cfg",
             Read (Str "fhome_layout"),
             If
               ( Var "cfg" ==: str "classic",
                 fields
                   [
                     ("layout", str "classic");
                     ("items", Take (Read home, int 10));
                     ("me", Read (fuser (Input "u")));
                   ],
                 fields
                   [
                     ("layout", str "cards");
                     ("items", Take (Read home, int 5));
                     ("me", Read (fuser (Input "u")));
                   ] ) ) ))

let functions =
  [ homepage_fn; post_fn; interact_fn; view_fn; login_fn; digest_fn ]

let pid i = Printf.sprintf "p%d" i

let uid i = Printf.sprintf "f%d" i

let seed ?(n_users = 500) ?(n_posts = 500) rng =
  let posts =
    List.concat
      (List.init n_posts (fun i ->
           let p = pid i in
           [
             ( "fpost:" ^ p,
               Dval.Record
                 [
                   ("title", Dval.Str ("title-" ^ p));
                   ("body", Dval.Str ("body-" ^ p));
                   ("by", Dval.Str (uid (Sim.Rng.int rng n_users)));
                   ("score", Dval.int (Sim.Rng.int rng 100));
                 ] );
             ( "fcomments:" ^ p,
               Dval.List
                 (List.init
                    (Sim.Rng.int rng 5)
                    (fun c -> Dval.Str (Printf.sprintf "%s-c%d" p c))) );
           ]))
  in
  let front =
    ( "fhome",
      Dval.List
        (List.init 30 (fun i ->
             Dval.Record
               [ ("pid", Dval.Str (pid i)); ("title", Dval.Str ("title-" ^ pid i)) ]))
    )
  in
  let users =
    List.init n_users (fun i ->
        let u = uid i in
        ( "fuser:" ^ u,
          Dval.Record [ ("name", Dval.Str u); ("pwhash", Dval.Str ("hash-" ^ u)) ]
        ))
  in
  (* Appended last: adding the constant config entry must not perturb
     the RNG stream the post/user seeds consume. *)
  (front :: posts) @ users @ [ ("fhome_layout", Dval.Str "classic") ]

type gen = {
  n_users : int;
  posts : Workload.Zipf.t;
  mix : string Workload.Mix.t;
  mutable next_pid : int;
}

let table1_mix =
  [
    ("forum-homepage", 80.0);
    ("forum-interact", 9.0);
    ("forum-view", 8.0);
    ("forum-login", 2.0);
    ("forum-post", 1.0);
  ]

let gen ?(n_users = 500) ?(n_posts = 500) ?(zipf_theta = 0.99) () =
  {
    n_users;
    posts = Workload.Zipf.create ~n:n_posts ~theta:zipf_theta;
    mix = Workload.Mix.create table1_mix;
    next_pid = n_posts;
  }

let next g rng =
  let u = uid (Sim.Rng.int rng g.n_users) in
  let p = pid (Workload.Zipf.sample g.posts rng) in
  match Workload.Mix.sample g.mix rng with
  | "forum-homepage" -> ("forum-homepage", [ Dval.Str u ])
  | "forum-interact" -> ("forum-interact", [ Dval.Str u; Dval.Str p ])
  | "forum-view" -> ("forum-view", [ Dval.Str u; Dval.Str p ])
  | "forum-login" -> ("forum-login", [ Dval.Str u; Dval.Str ("hash-" ^ u) ])
  | "forum-post" ->
      g.next_pid <- g.next_pid + 1;
      let fresh = pid g.next_pid in
      ( "forum-post",
        [
          Dval.Str u;
          Dval.Str fresh;
          Dval.Str ("title-" ^ fresh);
          Dval.Str "hot take";
        ] )
  | other -> invalid_arg other

let schema : Fdsl.Typecheck.schema =
  let open Fdsl.Types in
  [
    ("fhome", TList (TRecord [ ("pid", TStr); ("title", TStr) ]));
    ( "fpost:",
      TRecord
        [ ("title", TStr); ("body", TStr); ("by", TStr); ("score", TInt) ] );
    ("fcomments:", TList TAny);
    ("fuser:", TRecord [ ("name", TStr); ("pwhash", TStr) ]);
    ("fhome_layout", TStr);
  ]
