module Derive = Analyzer.Derive
module Optimize = Analyzer.Optimize
module Absint = Analyzer.Absint
module Conflict = Analyzer.Conflict

(* Minimal left-aligned table renderer; kept local so the apps library
   does not grow a metrics dependency just for padding. *)
let render_table ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  (* pad every column except the last, so lines carry no trailing blanks *)
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = ncols - 1 then cell
           else cell ^ String.make (w - String.length cell) ' ')
         row)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let classification_to_string = function
  | Derive.Static -> "static"
  | Derive.Dependent n -> Printf.sprintf "dependent(%d)" n
  | Derive.Expensive -> "expensive"
  | Derive.Manual -> "manual"

let shapes_to_string = function
  | [] -> "-"
  | shapes -> String.concat " " (List.map Absint.shape_to_string shapes)

(* raw classification, optimized classification, upgrade marker *)
let classify (f : Fdsl.Ast.func) =
  match Catalog.manual_rw_of f.Fdsl.Ast.fn_name with
  | Some rw ->
      let d = Derive.manual ~source:f ~rw_func:rw in
      ("unanalyzable", classification_to_string d.classification, "")
  | None -> (
      match Derive.derive f with
      | Error e -> ("unanalyzable: " ^ e.Derive.reason, "-", "")
      | Ok d ->
          let d' = Optimize.optimize d in
          let marker =
            if Optimize.upgraded ~before:d ~after:d' then " ^" else ""
          in
          ( classification_to_string d.classification,
            classification_to_string d'.classification,
            marker ))

let app_section buf (app, funcs) =
  Buffer.add_string buf
    (Printf.sprintf "== %s (%d functions) ==\n\n" app (List.length funcs));
  let rows =
    List.map
      (fun (f : Fdsl.Ast.func) ->
        let raw, opt, marker = classify f in
        let sm = Absint.summarize f in
        [
          f.Fdsl.Ast.fn_name;
          raw;
          opt ^ marker;
          shapes_to_string sm.Absint.sm_reads;
          shapes_to_string sm.Absint.sm_writes;
        ])
      funcs
  in
  Buffer.add_string buf
    (render_table
       ~header:[ "function"; "raw"; "optimized"; "reads"; "writes" ]
       rows);
  Buffer.add_string buf "\n\n";
  let report = Conflict.build (List.map Absint.summarize funcs) in
  Buffer.add_string buf (Format.asprintf "%a" Conflict.pp_report report);
  Buffer.add_string buf "\n"

let manual_section buf =
  Buffer.add_string buf "== manual f^rw overrides ==\n\n";
  match Catalog.manual_overrides with
  | [] -> Buffer.add_string buf "(none)\n"
  | overrides ->
      List.iter2
        (fun (_, _, samples) (name, result) ->
          let status =
            match result with
            | Ok () -> Printf.sprintf "ok (%d samples)" (List.length samples)
            | Error m -> "FAIL: " ^ m
          in
          Buffer.add_string buf (Printf.sprintf "%s: %s\n" name status))
        overrides
        (Catalog.check_manuals ())

let render () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "radical analyze: key-shape and conflict report\n\n";
  List.iter (app_section buf) Catalog.all_apps;
  manual_section buf;
  Buffer.contents buf

(* --- Bytecode effect certification ---------------------------------- *)

let certify_fn (f : Fdsl.Ast.func) =
  match Fdsl.Compile.compile f with
  | exception Fdsl.Compile.Unsupported reason -> Error reason
  | modul ->
      let derived =
        match Catalog.manual_rw_of f.Fdsl.Ast.fn_name with
        | Some rw -> Some (Derive.manual ~source:f ~rw_func:rw)
        | None -> (
            match Derive.derive f with Ok d -> Some d | Error _ -> None)
      in
      Ok (Analyzer.Certify.check ~source:f ~modul ?derived ())

let render_certify () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "radical certify: bytecode effect certification report\n\n";
  let total = ref 0 and passed = ref 0 in
  let section (app, funcs) =
    Buffer.add_string buf
      (Printf.sprintf "== %s (%d functions) ==\n\n" app (List.length funcs));
    let rows =
      List.map
        (fun (f : Fdsl.Ast.func) ->
          incr total;
          match certify_fn f with
          | Error reason ->
              [ f.Fdsl.Ast.fn_name; "-"; "-"; "-"; "uncompilable: " ^ reason ]
          | Ok r ->
              let cls =
                match r.Analyzer.Certify.c_classification with
                | Some c -> classification_to_string c
                | None -> "-"
              in
              let reads, writes =
                match r.Analyzer.Certify.c_effect with
                | Some eff ->
                    ( shapes_to_string (Wasm.Effect.reads eff),
                      shapes_to_string (Wasm.Effect.writes eff) )
                | None -> ("-", "-")
              in
              let verdict =
                if Analyzer.Certify.certified r then begin
                  incr passed;
                  "certified"
                end
                else
                  Format.asprintf "REJECTED: %a" Analyzer.Certify.pp_failure r
              in
              [ f.Fdsl.Ast.fn_name; cls; reads; writes; verdict ])
        funcs
    in
    Buffer.add_string buf
      (render_table
         ~header:
           [ "function"; "f^rw"; "bytecode reads"; "bytecode writes"; "verdict" ]
         rows);
    Buffer.add_string buf "\n\n"
  in
  List.iter section Catalog.all_apps;
  Buffer.add_string buf
    (Printf.sprintf "catalog: %d/%d certified\n" !passed !total);
  (Buffer.contents buf, !passed = !total)
