(** Bytecode-level effect analysis: the key-shape abstract interpreter
    run directly over the compiled {!Instr.t} stream.

    {!Analyzer.Absint} derives a function's key shapes from its Fdsl
    source — which leaves the Fdsl→Wasm compiler (and every
    hand-registered module) inside the trusted base. This module runs
    the {e same} literal+hole domain ({!Keyshape}) over the bytecode the
    VM will actually execute: an abstract operand stack and abstract
    locals are threaded through the instruction stream, i64 arithmetic
    and the string/list/record builtins are folded over shape fragments,
    control-flow joins happen at [If] merges and [Br] targets, and loop
    back-edges are iterated to a fixpoint with widening. Every
    [storage.read]/[storage.write] host call is classified into a read
    or write {e access} carrying the abstract shape of its key, the
    instruction path of the call site, and whether it sits inside a
    loop.

    The analysis is total (it never raises) and sound by construction of
    the domain: unknown values degrade to origin-tagged wildcard holes,
    so a reported shape always covers every key the instruction can
    concretely compute. Certification ({!Analyzer.Certify}) then checks
    these shapes against the registered f^rw. *)

type kind = Read | Write

type access = {
  a_kind : kind;
  a_shape : Keyshape.shape;  (** abstract shape of the key operand *)
  a_path : int list;
      (** instruction path of the [Call_host] site (see
          {!Instr.pp_path}); for accesses inside an inlined intra-module
          call, the path of the call site in the entry function *)
  a_loop : bool;
      (** the site is inside a [Loop] body (or a recursive call): one
          invocation may touch several concrete keys of this shape *)
}

type summary = {
  ef_fn : string;
  ef_params : string list;
  ef_accesses : access list;  (** in discovery order, with duplicates *)
  ef_externals : (int list * string) list;
      (** [external.call] sites: instruction path and service name (["?"]
          when the service operand is not a known string) *)
  ef_opaque : bool;
      (** an unknown or unmodeled host function was encountered; its
          effects were over-approximated as wildcard read+write *)
}

val analyze :
  ?params:string list -> Wmodule.t -> entry:string -> (summary, string) result
(** Abstractly execute [entry] with every parameter bound to an
    [Input_only] hole (labeled by [params] when given, [arg<i>]
    otherwise). Intra-module calls are inlined (a recursive cycle
    degrades to wildcard read+write at the call site). [Error] only when
    [entry] does not exist. *)

val reads : summary -> Keyshape.shape list
(** Deduplicated, sorted read shapes. *)

val writes : summary -> Keyshape.shape list

val multi : summary -> Keyshape.shape list
(** Shapes of accesses with [a_loop] set (cf. [Absint.sm_multi]). *)

val pp_access : Format.formatter -> access -> unit

val pp_summary : Format.formatter -> summary -> unit
