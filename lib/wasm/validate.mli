(** Static validation of modules, including the determinism check.

    Radical requires registered functions not to import sources of
    nondeterminism (§4): the validator rejects any module whose import
    list or code mentions an import outside the deterministic whitelist
    (storage, compute and the pure builtins). It also checks structural
    well-formedness: call indices, local indices, branch depths, and that
    every [Call_host] was declared in the module's import list. *)

type error = { in_func : string; path : int list; reason : string }
(** [path] locates the offending instruction by block-nesting indices
    (see {!Instr.pp_path}); it is empty for errors that concern the
    import list or the function body as a whole. *)

val pp_error : Format.formatter -> error -> unit
(** ["fn: at 0.2.1: reason"], or ["fn: reason"] when the path is
    empty. *)

val check : Wmodule.t -> (unit, error) result

val check_stack : Wmodule.t -> (unit, error) result
(** Static stack-discipline validation, in the style of real
    WebAssembly validation: an abstract stack height is threaded through
    the body with one control frame per [Block]/[Loop]/[If]; underflow
    past a frame's base, branches to out-of-range depths, arity-wrong
    branch targets, and bodies that do not end with exactly the
    function's one result are all rejected before execution. Code after
    an unconditional transfer ([Br], [Return], [Unreachable]) is
    stack-polymorphic, as in the spec.

    Block discipline (matching everything {!Fdsl.Compile} emits): blocks
    and loops yield no values; an [If] consumes its i64 condition and
    both arms yield exactly one value; [Br]/[Br_if] carry the target
    frame's yield count (0 for blocks, 0 for loop headers, 1 for ifs). *)

val check_all : Wmodule.t -> (unit, error) result
(** [check] followed by [check_stack] — what function registration
    runs. *)

val deterministic : Wmodule.t -> bool
(** True iff no declared or used import is outside the whitelist. Implied
    by [check] succeeding. *)
