type error = { in_func : string; path : int list; reason : string }

let pp_error fmt e =
  match e.path with
  | [] -> Format.fprintf fmt "%s: %s" e.in_func e.reason
  | p -> Format.fprintf fmt "%s: at %a: %s" e.in_func Instr.pp_path p e.reason

exception Bad of int list * string

let bad path fmt = Printf.ksprintf (fun s -> raise (Bad (path, s))) fmt

let whitelist = Host.storage_imports @ Host.pure_imports

let check_func (m : Wmodule.t) (f : Wmodule.func) =
  let n_locals = f.n_params + f.n_locals in
  let check_local path i =
    if i < 0 || i >= n_locals then
      bad path "local index %d out of range (%d locals)" i n_locals
  in
  let rec go depth path (instr : Instr.t) =
    match instr with
    | Local_get i | Local_set i | Local_tee i -> check_local path i
    | Br n | Br_if n ->
        if n < 0 || n >= depth then
          bad path "branch depth %d exceeds nesting %d" n depth
    | Call i ->
        if i < 0 || i >= Array.length m.funcs then
          bad path "call to unknown function index %d" i
    | Call_host name ->
        if not (List.mem name m.imports) then
          bad path "host call %S not declared as import" name;
        if not (List.mem name whitelist) then
          bad path "nondeterministic or unknown import %S" name
    | Block body | Loop body ->
        List.iteri (fun j x -> go (depth + 1) (path @ [ j ]) x) body
    | If (t, e) ->
        List.iteri (fun j x -> go (depth + 1) (path @ [ 0; j ]) x) t;
        List.iteri (fun j x -> go (depth + 1) (path @ [ 1; j ]) x) e
    | I64_const _ | I64_binop _ | I64_eqz | Ref_const _ | Drop | Return | Nop
    | Unreachable ->
        ()
  in
  List.iteri (fun i x -> go 0 [ i ] x) f.body

let check (m : Wmodule.t) =
  let bad_import =
    List.find_opt (fun name -> not (List.mem name whitelist)) m.imports
  in
  match bad_import with
  | Some name ->
      Error
        {
          in_func = "(imports)";
          path = [];
          reason = Printf.sprintf "nondeterministic or unknown import %S" name;
        }
  | None -> (
      let failure = ref None in
      Array.iter
        (fun (f : Wmodule.func) ->
          if !failure = None then
            try check_func m f
            with Bad (path, reason) ->
              failure := Some { in_func = f.fn_name; path; reason })
        m.funcs;
      match !failure with None -> Ok () | Some e -> Error e)

(* --- Stack-discipline validation ----------------------------------- *)

(* (pops, pushes) of each host function; table shared with the effect
   interpreter via {!Host.arity}. *)
let host_arity path name =
  match Host.arity name with
  | Some a -> a
  | None -> bad path "unknown host function %S" name

(* Control frames carry (entry height, values a branch to them needs).
   The outermost frame is the function itself (yield 1). A sequence
   either finishes at a concrete height or ends unreachable (after Br /
   Return / Unreachable), in which case the enclosing frame's exit
   height check is skipped — the spec's stack-polymorphic dead code. *)
let check_func_stack (m : Wmodule.t) (f : Wmodule.func) =
  let frame_of path frames n =
    match List.nth_opt frames n with
    | Some fr -> fr
    | None -> bad path "branch depth %d has no frame" n
  in
  let rec seq frames path idx height unreachable instrs =
    match instrs with
    | [] -> if unreachable then None else Some height
    | i :: rest ->
        let height', unreachable' =
          step frames (path @ [ idx ]) height unreachable i
        in
        seq frames path (idx + 1) height' unreachable' rest
  and step frames here height unreachable (i : Instr.t) =
    let base = fst (List.hd frames) in
    let shift ~pops ~pushes =
      if unreachable then (height, true)
      else if height - pops < base then
        raise
          (Bad
             ( here,
               Format.asprintf "stack underflow at %a (height %d, needs %d)"
                 Instr.pp i (height - base) pops ))
      else (height - pops + pushes, false)
    in
    match i with
    | I64_const _ | Ref_const _ | Local_get _ -> shift ~pops:0 ~pushes:1
    | I64_binop _ -> shift ~pops:2 ~pushes:1
    | I64_eqz -> shift ~pops:1 ~pushes:1
    | Local_set _ | Drop -> shift ~pops:1 ~pushes:0
    | Local_tee _ -> shift ~pops:1 ~pushes:1
    | Nop -> shift ~pops:0 ~pushes:0
    | Call idx ->
        let callee = Wmodule.func m idx in
        shift ~pops:callee.n_params ~pushes:1
    | Call_host name ->
        let pops, pushes = host_arity here name in
        shift ~pops ~pushes
    | Unreachable -> (height, true)
    | Return ->
        if (not unreachable) && height - base < 1 then
          bad here "return with no result value on the stack";
        (height, true)
    | Br n ->
        let _, yields = frame_of here frames n in
        if (not unreachable) && height - base < yields then
          bad here "br %d needs %d value(s)" n yields;
        (height, true)
    | Br_if n ->
        let height', unreachable' = shift ~pops:1 ~pushes:0 in
        let _, yields = frame_of here frames n in
        if (not unreachable') && height' - base < yields then
          bad here "br_if %d needs %d value(s)" n yields;
        (height', unreachable')
    | Block body ->
        check_block frames here height unreachable body ~yields:0
          ~label:"block"
    | Loop body ->
        (* A br to a loop re-enters its header, which takes no values. *)
        check_block frames here height unreachable body ~yields:0 ~label:"loop"
    | If (then_, else_) ->
        let height', unreachable' = shift ~pops:1 ~pushes:0 in
        let inner = (height', 1) :: frames in
        let arm which name body =
          match seq inner (here @ [ which ]) 0 height' false body with
          | Some h ->
              if h <> height' + 1 then
                bad here "%s arm must yield exactly one value" name
          | None -> ()
        in
        if not unreachable' then begin
          arm 0 "then" then_;
          arm 1 "else" else_
        end;
        (height' + 1, unreachable')
  and check_block frames here height unreachable body ~yields ~label =
    if unreachable then (height, true)
    else begin
      let inner = (height, yields) :: frames in
      (match seq inner here 0 height false body with
      | Some h ->
          if h <> height + yields then bad here "%s must be stack-neutral" label
      | None -> ());
      (height + yields, unreachable)
    end
  in
  match seq [ (0, 1) ] [] 0 0 false f.body with
  | Some h ->
      if h <> 1 then
        bad [] "body ends with %d values; expected exactly 1" h
  | None -> ()

let check_stack (m : Wmodule.t) =
  let failure = ref None in
  Array.iter
    (fun (f : Wmodule.func) ->
      if !failure = None then
        try check_func_stack m f
        with Bad (path, reason) ->
          failure := Some { in_func = f.fn_name; path; reason })
    m.funcs;
  match !failure with None -> Ok () | Some e -> Error e

let check_all m =
  match check m with Error _ as e -> e | Ok () -> check_stack m

let deterministic (m : Wmodule.t) =
  List.for_all (fun name -> List.mem name whitelist) m.imports
