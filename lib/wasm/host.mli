(** Host environment a module is instantiated against.

    The three impure imports are injected by the embedder: the near-user
    runtime wires [read]/[write] to its cache-backed storage library and
    [compute] to the virtual clock; the LVI server wires them straight to
    primary storage for backup execution and deterministic re-execution.
    Everything else a module may import is a pure builtin implemented by
    the interpreter. *)

type t = {
  read : string -> Dval.t;
      (** Storage read by key. Absent keys should be returned as
          [Dval.Unit] by the embedder. *)
  write : string -> Dval.t -> unit;  (** Storage write. *)
  compute : float -> unit;
      (** Burn the given CPU time in milliseconds (virtual). *)
  external_call : string -> Dval.t -> Dval.t;
      (** Call an external service (§3.5). The embedder supplies the
          idempotency-keyed dispatcher; by contract the provider
          executes at most once per request. *)
}

val pure : unit -> t
(** A host with no storage and a no-op clock: reads return [Dval.Unit],
    writes are dropped. For testing pure computations. *)

val recording : ?store:(string * Dval.t) list -> unit -> t * (unit -> (string * Dval.t) list)
(** A host over an in-memory association store; the second component
    returns the writes performed so far, oldest first. *)

val storage_imports : string list
(** Names of the impure storage/compute imports. *)

val pure_imports : string list
(** Names of the deterministic pure builtins. *)

val forbidden_imports : string list
(** Nondeterministic imports that the validator must reject and the
    interpreter refuses to execute ("wasi.clock_time_get",
    "wasi.random_get"). *)

val arity : string -> (int * int) option
(** [(pops, pushes)] of a host function, or [None] if unknown. The
    single source of truth for the stack validator and the bytecode
    effect interpreter. *)
