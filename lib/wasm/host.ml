type t = {
  read : string -> Dval.t;
  write : string -> Dval.t -> unit;
  compute : float -> unit;
  external_call : string -> Dval.t -> Dval.t;
}

let pure () =
  {
    read = (fun _ -> Dval.Unit);
    write = (fun _ _ -> ());
    compute = (fun _ -> ());
    external_call = (fun _ _ -> Dval.Unit);
  }

let recording ?(store = []) () =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) store;
  let writes = ref [] in
  let host =
    {
      read =
        (fun k -> match Hashtbl.find_opt tbl k with Some v -> v | None -> Dval.Unit);
      write =
        (fun k v ->
          Hashtbl.replace tbl k v;
          writes := (k, v) :: !writes);
      compute = (fun _ -> ());
      external_call = (fun _ _ -> Dval.Unit);
    }
  in
  (host, fun () -> List.rev !writes)

let storage_imports =
  [ "storage.read"; "storage.write"; "cpu.burn"; "external.call" ]

let pure_imports =
  [
    "dval.to_i64";
    "dval.of_i64";
    "dval.of_bool";
    "dval.truthy";
    "dval.eq";
    "str.concat";
    "str.of_i64";
    "str.eq";
    "list.empty";
    "list.append";
    "list.prepend";
    "list.len";
    "list.get";
    "list.take";
    "list.concat";
    "record.new";
    "record.set";
    "record.get";
    "unit";
  ]

let forbidden_imports = [ "wasi.clock_time_get"; "wasi.random_get" ]

(* (pops, pushes) of each host function — the single source of truth
   shared by the stack validator and the bytecode effect interpreter. *)
let arity = function
  | "dval.to_i64" | "dval.of_i64" | "dval.of_bool" | "dval.truthy"
  | "str.of_i64" | "list.len" | "storage.read" | "cpu.burn"
  | "wasi.random_get" ->
      Some (1, 1)
  | "dval.eq" | "str.concat" | "str.eq" | "list.append" | "list.prepend"
  | "list.get" | "list.take" | "list.concat" | "record.get"
  | "storage.write" | "external.call" ->
      Some (2, 1)
  | "record.set" -> Some (3, 1)
  | "list.empty" | "record.new" | "unit" | "wasi.clock_time_get" -> Some (0, 1)
  | _ -> None
