(** Instruction set of the deterministic stack VM.

    A compact WebAssembly-like machine: i64 numerics, locals, structured
    control flow with relative branch depths, intra-module calls, and
    host calls for storage access and structured-value manipulation
    (handles play the role of externrefs). [Ref_const] materializes a
    constant structured value into the host heap — the moral equivalent
    of a data segment plus a pointer. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div_s (** Traps on division by zero. *)
  | Rem_s (** Traps on division by zero. *)
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Lt_s
  | Gt_s
  | Le_s
  | Ge_s

type t =
  | I64_const of int64
  | I64_binop of binop (** Pops two i64s, pushes the result (bools as 0/1). *)
  | I64_eqz
  | Ref_const of Dval.t (** Allocate a constant in the heap, push its handle. *)
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Drop
  | Block of t list (** [Br 0] inside jumps past the block's end. *)
  | Loop of t list (** [Br 0] inside jumps back to the loop's start. *)
  | If of t list * t list (** Pops an i64 condition; acts as a block. *)
  | Br of int
  | Br_if of int
  | Return
  | Call of int (** Call a module function by index. *)
  | Call_host of string (** Invoke an imported host function by name. *)
  | Nop
  | Unreachable (** Always traps. *)

val binop_name : binop -> string
(** The mnemonic suffix, e.g. ["add"], ["lt_s"]. *)

val pp : Format.formatter -> t -> unit

(** {2 Instruction paths}

    A path addresses one instruction by block-nesting indices from the
    function body down: a top-level instruction is [[i]]; a child of a
    [Block]/[Loop] at path [p] is [p @ [j]]; an instruction inside an
    [If] arm is [p @ [arm; j]] with arm [0] = then, [1] = else. The
    empty path denotes the function body as a whole. Validation errors
    and effect-certification diagnostics use these to point at the
    offending instruction. *)

val pp_path : Format.formatter -> int list -> unit
(** Dotted indices, e.g. ["0.2.1"]; [(entry)] for the empty path. *)

val path_to_string : int list -> string

val at_path : t list -> int list -> t option
(** Resolve a path against a function body. [None] for the empty path or
    a path that walks off the tree. *)
