open Keyshape

type kind = Read | Write

type access = {
  a_kind : kind;
  a_shape : shape;
  a_path : int list;
  a_loop : bool;
}

type summary = {
  ef_fn : string;
  ef_params : string list;
  ef_accesses : access list;
  ef_externals : (int list * string) list;
  ef_opaque : bool;
}

(* --- Abstract values ------------------------------------------------ *)

(* Mirrors [Absint.aval], split by the VM's value representation: a
   stack slot is either a raw i64 or a heap reference, and folding must
   follow the concrete semantics of {!Interp} instruction by
   instruction so that compiled constants re-fold to the same shapes
   the source-level interpreter computes. *)
type aval =
  | AI64 of int64  (* known i64 *)
  | AConst of Dval.t  (* known heap constant *)
  | AStr of shape  (* a string with known concatenation structure *)
  | ATop of origin * string  (* anything else: origin + display label *)

let origin_of = function
  | AI64 _ | AConst _ -> Const_only
  | AStr s -> origin_of_shape s
  | ATop (o, _) -> o

let shape_of = function
  | AConst (Dval.Str s) -> [ Lit s ]
  | AI64 _ | AConst _ ->
      (* A non-string key faults at runtime; any shape is sound. *)
      [ Hole { src = Const_only; label = "const" } ]
  | AStr s -> s
  | ATop (o, label) -> [ Hole { src = o; label } ]

let truthy = function
  | Dval.Bool b -> b
  | Dval.Int i -> i <> 0L
  | Dval.Unit -> false
  | Dval.Str s -> s <> ""
  | Dval.List l -> l <> []
  | Dval.Record _ -> true

(* Equality up to cosmetic labels — the fixpoint's stability test. *)
let aval_stable a b =
  match (a, b) with
  | AI64 x, AI64 y -> Int64.equal x y
  | AConst x, AConst y -> Dval.equal x y
  | AStr s, AStr t -> same_shape s t
  | ATop (o, _), ATop (p, _) -> o = p
  | _ -> false

let join_aval ~cond a b =
  if aval_stable a b then a
  else
    match (a, b) with
    | (AConst (Dval.Str _) | AStr _), (AConst (Dval.Str _) | AStr _) ->
        let s = join (shape_of a) (shape_of b) in
        (* The branch choice itself determines the value. *)
        let s =
          List.map
            (function
              | Hole h -> Hole { h with src = origin_join h.src cond }
              | f -> f)
            s
        in
        AStr s
    | _ ->
        ATop (origin_join cond (origin_join (origin_of a) (origin_of b)), "phi")

(* --- Numeric folding ------------------------------------------------ *)

let apply_binop op a b =
  let open Int64 in
  let bool_i64 c = if c then 1L else 0L in
  match (op : Instr.binop) with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div_s -> div a b
  | Rem_s -> rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Eq -> bool_i64 (equal a b)
  | Ne -> bool_i64 (not (equal a b))
  | Lt_s -> bool_i64 (compare a b < 0)
  | Gt_s -> bool_i64 (compare a b > 0)
  | Le_s -> bool_i64 (compare a b <= 0)
  | Ge_s -> bool_i64 (compare a b >= 0)

let fold_binop op a b =
  match (a, b) with
  | AI64 x, AI64 y -> (
      match (op : Instr.binop) with
      | (Div_s | Rem_s) when Int64.equal y 0L ->
          (* Concretely a trap; [Absint] degrades the same way. *)
          ATop (Const_only, Instr.binop_name op)
      | _ -> AI64 (apply_binop op x y))
  | _ ->
      ATop (origin_join (origin_of a) (origin_of b), Instr.binop_name op)

(* --- Analysis state ------------------------------------------------- *)

type ctx = {
  modul : Wmodule.t;
  mutable record : bool;  (* off during loop fixpoint iterations *)
  mutable loop_depth : int;
  mutable accesses : access list;  (* newest first *)
  mutable externals : (int list * string) list;
  mutable opaque : bool;
  mutable active : int list;  (* call stack of func indices *)
  mutable path_override : int list option;
      (* inside an inlined call: attribute accesses to the call site *)
}

let record ctx ?(loop = false) a_kind raw path =
  if ctx.record then
    let a_path =
      match ctx.path_override with Some p -> p | None -> path
    in
    ctx.accesses <-
      {
        a_kind;
        a_shape = normalize raw;
        a_path;
        a_loop = loop || ctx.loop_depth > 0;
      }
      :: ctx.accesses

(* Control frames, innermost first. A [Br n] joins the current locals
   (and the top [yields] stack values) into frame [n]; blocks and loops
   merge those joins back in when they close. *)
type frame = {
  yields : int;
  mutable br_locals : aval array option;
  mutable br_vals : aval list option;
}

let fresh_frame yields = { yields; br_locals = None; br_vals = None }

let merge_locals ~cond a b = Array.map2 (join_aval ~cond) a b

let merge_vals ~cond a b = List.map2 (join_aval ~cond) a b

let rec popn n stack =
  if n <= 0 then ([], stack)
  else
    match stack with
    | v :: rest ->
        let vs, st = popn (n - 1) rest in
        (v :: vs, st)
    | [] ->
        let vs, st = popn (n - 1) [] in
        (ATop (Opaque_dep, "underflow") :: vs, st)

let pop stack =
  match popn 1 stack with [ v ], st -> (v, st) | _ -> assert false

let get_local locals n =
  if n >= 0 && n < Array.length locals then locals.(n)
  else ATop (Opaque_dep, "local")

let set_local locals n v =
  if n >= 0 && n < Array.length locals then locals.(n) <- v

let branch ctx frames locals stack n =
  ignore ctx;
  match List.nth_opt frames n with
  | None -> () (* validation rejects this; nothing to merge into *)
  | Some fr ->
      let vals, _ = popn fr.yields stack in
      fr.br_locals <-
        Some
          (match fr.br_locals with
          | None -> Array.copy locals
          | Some l -> merge_locals ~cond:Const_only l locals);
      fr.br_vals <-
        Some
          (match fr.br_vals with
          | None -> vals
          | Some v -> merge_vals ~cond:Const_only v vals)

(* How many fixpoint rounds before an unstable local slot is widened to
   an origin-tagged ⊤, and the hard iteration cap (origins climb a
   4-level lattice, so widening converges well before the cap). *)
let widen_after = 3

let max_iter = 10

(* --- The interpreter ------------------------------------------------ *)

(* [exec_seq] returns the relative operand stack at the end of the
   sequence, or [None] if the sequence ends unreachable (after a
   [Br]/[Return]/[Unreachable]); dead code after a terminator is
   skipped, as in [Absint]'s known-condition pruning. [locals] is
   mutated in place; control constructs run their bodies on copies and
   merge the reachable exits back. [ret] collects [Return] values of
   the enclosing function activation. *)
let rec exec_seq ctx ret frames locals path idx stack = function
  | [] -> Some stack
  | i :: rest -> (
      match step ctx ret frames locals (path @ [ idx ]) stack i with
      | None -> None
      | Some stack' -> exec_seq ctx ret frames locals path (idx + 1) stack' rest)

and step ctx ret frames locals here stack (i : Instr.t) : aval list option =
  match i with
  | I64_const n -> Some (AI64 n :: stack)
  | Ref_const d -> Some (AConst d :: stack)
  | I64_binop op ->
      let b, st = pop stack in
      let a, st = pop st in
      Some (fold_binop op a b :: st)
  | I64_eqz ->
      let v, st = pop stack in
      let r =
        match v with
        | AI64 n -> AI64 (if Int64.equal n 0L then 1L else 0L)
        | _ -> ATop (origin_of v, "eqz")
      in
      Some (r :: st)
  | Local_get n -> Some (get_local locals n :: stack)
  | Local_set n ->
      let v, st = pop stack in
      set_local locals n v;
      Some st
  | Local_tee n ->
      (match stack with v :: _ -> set_local locals n v | [] -> ());
      Some stack
  | Drop ->
      let _, st = pop stack in
      Some st
  | Nop -> Some stack
  | Unreachable -> None
  | Return ->
      (match stack with
      | v :: _ -> ret := v :: !ret
      | [] -> ret := ATop (Opaque_dep, "return") :: !ret);
      None
  | Br n ->
      branch ctx frames locals stack n;
      None
  | Br_if n -> (
      let c, st = pop stack in
      match c with
      | AI64 0L -> Some st
      | AI64 _ ->
          branch ctx frames locals st n;
          None
      | _ ->
          branch ctx frames locals st n;
          Some st)
  | Block body -> (
      let fr = fresh_frame 0 in
      let inner = Array.copy locals in
      let fall = exec_seq ctx ret (fr :: frames) inner here 0 [] body in
      match (fall, fr.br_locals) with
      | None, None -> None
      | Some _, None ->
          Array.blit inner 0 locals 0 (Array.length locals);
          Some stack
      | None, Some bl ->
          Array.blit bl 0 locals 0 (Array.length locals);
          Some stack
      | Some _, Some bl ->
          let merged = merge_locals ~cond:Const_only inner bl in
          Array.blit merged 0 locals 0 (Array.length locals);
          Some stack)
  | Loop body -> (
      (* Iterate the back-edge to a fixpoint on the locals at the loop
         header, with recording suppressed and throwaway outer frames
         (the stabilized header over-approximates every iteration's
         entry state, so one final recording pass from it covers all
         behaviors), then run that final pass with the real frames. *)
      let widen_slot n old next =
        if aval_stable old next then old
        else if n >= widen_after then
          ATop (origin_join (origin_of old) (origin_of next), "widen")
        else join_aval ~cond:Const_only old next
      in
      let rec iterate header n =
        if n >= max_iter then
          Array.map (fun v -> ATop (origin_of v, "widen")) header
        else begin
          let fr = fresh_frame 0 in
          let throwaway = List.map (fun f -> fresh_frame f.yields) frames in
          let l = Array.copy header in
          let was = ctx.record in
          ctx.record <- false;
          let junk = ref [] in
          let _ = exec_seq ctx junk (fr :: throwaway) l here 0 [] body in
          ctx.record <- was;
          match fr.br_locals with
          | None -> header (* no back-edge taken: straight-line body *)
          | Some back ->
              let merged =
                Array.mapi (fun i old -> widen_slot n old back.(i)) header
              in
              let stable =
                Array.for_all (fun x -> x)
                  (Array.mapi (fun i v -> aval_stable v header.(i)) merged)
              in
              if stable then header else iterate merged (n + 1)
        end
      in
      let header = iterate (Array.copy locals) 0 in
      let fr = fresh_frame 0 in
      let l = Array.copy header in
      ctx.loop_depth <- ctx.loop_depth + 1;
      let fall = exec_seq ctx ret (fr :: frames) l here 0 [] body in
      ctx.loop_depth <- ctx.loop_depth - 1;
      match fall with
      | Some _ ->
          Array.blit l 0 locals 0 (Array.length locals);
          Some stack
      | None -> None)
  | If (then_, else_) -> (
      let c, st = pop stack in
      (* One arm runs per execution; an arm yields exactly one value.
         Reachable exits of an arm: its fallthrough, plus any [Br] to
         the arm's own frame. *)
      let run_arm which body =
        let fr = fresh_frame 1 in
        let l = Array.copy locals in
        let fall =
          exec_seq ctx ret (fr :: frames) l (here @ [ which ]) 0 [] body
        in
        let states =
          match fall with
          | Some (v :: _) -> [ (v, l) ]
          | Some [] -> [ (ATop (Opaque_dep, "if"), l) ]
          | None -> []
        in
        match fr.br_locals with
        | Some bl ->
            let v =
              match fr.br_vals with
              | Some (v :: _) -> v
              | _ -> ATop (Opaque_dep, "br")
            in
            (v, bl) :: states
        | None -> states
      in
      let merge ~cond states =
        match states with
        | [] -> None
        | (v0, l0) :: rest ->
            let v, l =
              List.fold_left
                (fun (v, l) (v', l') ->
                  (join_aval ~cond v v', merge_locals ~cond l l'))
                (v0, l0) rest
            in
            Array.blit l 0 locals 0 (Array.length locals);
            Some (v :: st)
      in
      match c with
      | AI64 0L -> merge ~cond:Const_only (run_arm 1 else_)
      | AI64 _ -> merge ~cond:Const_only (run_arm 0 then_)
      | _ ->
          let cond = origin_of c in
          merge ~cond (run_arm 0 then_ @ run_arm 1 else_))
  | Call fidx ->
      if fidx < 0 || fidx >= Array.length ctx.modul.funcs then begin
        ctx.opaque <- true;
        record ctx Read top here;
        record ctx Write top here;
        Some (ATop (Opaque_dep, "call") :: stack)
      end
      else begin
        let f = ctx.modul.funcs.(fidx) in
        let args_top_first, st = popn f.n_params stack in
        let args = List.rev args_top_first in
        if List.mem fidx ctx.active then begin
          (* Recursive cycle: over-approximate the whole call as a
             wildcard read+write that may repeat. *)
          record ctx ~loop:true Read top here;
          record ctx ~loop:true Write top here;
          Some (ATop (Opaque_dep, "recursion") :: st)
        end
        else begin
          let saved = ctx.path_override in
          ctx.path_override <-
            Some (match saved with Some p -> p | None -> here);
          let v = run_call ctx fidx args in
          ctx.path_override <- saved;
          Some (v :: st)
        end
      end
  | Call_host name -> Some (host ctx here stack name)

(* Transfer functions of the host builtins, mirroring {!Interp}'s
   concrete semantics (fold when every operand is known) and
   {!Absint}'s abstraction everywhere else. List/record accessors that
   [Absint] never folds ([list.get], [list.take], [list.prepend],
   [list.concat], [list.len]) are kept unfolded here too, so shapes
   derived from the two levels coincide for static functions. *)
and host ctx here stack name =
  let open Dval in
  match name with
  | "dval.to_i64" ->
      let a, st = pop stack in
      let r =
        match a with
        | AConst (Int i) -> AI64 i
        | AConst (Bool b) -> AI64 (if b then 1L else 0L)
        | ATop _ as v -> v
        | _ -> ATop (origin_of a, "to_i64")
      in
      r :: st
  | "dval.of_i64" ->
      let a, st = pop stack in
      let r =
        match a with
        | AI64 i -> AConst (Int i)
        | ATop _ as v -> v
        | _ -> ATop (origin_of a, "of_i64")
      in
      r :: st
  | "dval.of_bool" ->
      let a, st = pop stack in
      let r =
        match a with
        | AI64 i -> AConst (Bool (not (Int64.equal i 0L)))
        | ATop _ as v -> v
        | _ -> ATop (origin_of a, "of_bool")
      in
      r :: st
  | "dval.truthy" ->
      let a, st = pop stack in
      let r =
        match a with
        | AConst v -> AI64 (if truthy v then 1L else 0L)
        | _ -> ATop (origin_of a, "truthy")
      in
      r :: st
  | "dval.eq" ->
      let b, st = pop stack in
      let a, st = pop st in
      let r =
        match (a, b) with
        | AConst x, AConst y -> AI64 (if Dval.equal x y then 1L else 0L)
        | _ -> ATop (origin_join (origin_of a) (origin_of b), "eq")
      in
      r :: st
  | "str.eq" ->
      let b, st = pop stack in
      let a, st = pop st in
      let r =
        match (a, b) with
        | AConst (Str x), AConst (Str y) ->
            AI64 (if String.equal x y then 1L else 0L)
        | _ -> ATop (origin_join (origin_of a) (origin_of b), "eq")
      in
      r :: st
  | "str.concat" ->
      let b, st = pop stack in
      let a, st = pop st in
      let r =
        match (a, b) with
        | AConst (Str x), AConst (Str y) -> AConst (Str (x ^ y))
        | _ -> AStr (normalize (shape_of a @ shape_of b))
      in
      r :: st
  | "str.of_i64" ->
      let a, st = pop stack in
      let r =
        match a with
        | AI64 i -> AConst (Str (Int64.to_string i))
        | ATop _ as v -> v
        | _ -> ATop (origin_of a, "str(..)")
      in
      r :: st
  | "list.empty" -> AConst (List []) :: stack
  | "list.append" ->
      let x, st = pop stack in
      let l, st = pop st in
      let r =
        match (l, x) with
        | AConst (List ll), AConst v -> AConst (List (ll @ [ v ]))
        | _ -> ATop (origin_join (origin_of l) (origin_of x), "list")
      in
      r :: st
  | "list.prepend" | "list.concat" | "list.take" ->
      let b, st = pop stack in
      let a, st = pop st in
      ATop (origin_join (origin_of a) (origin_of b), "list") :: st
  | "list.get" ->
      let b, st = pop stack in
      let a, st = pop st in
      ATop (origin_join (origin_of a) (origin_of b), "nth") :: st
  | "list.len" ->
      let a, st = pop stack in
      ATop (origin_of a, "len") :: st
  | "record.new" -> AConst (Record []) :: stack
  | "record.set" ->
      let v, st = pop stack in
      let n, st = pop st in
      let r, st = pop st in
      let res =
        match (r, n, v) with
        | AConst (Record _ as rec_), AConst (Str name), AConst d ->
            AConst (Dval.set_field rec_ name d)
        | _ ->
            ATop
              ( origin_join (origin_of r)
                  (origin_join (origin_of n) (origin_of v)),
                "record" )
      in
      res :: st
  | "record.get" ->
      let n, st = pop stack in
      let r, st = pop st in
      let res =
        match (r, n) with
        | AConst (Record fs), AConst (Str name) -> (
            match List.assoc_opt name fs with
            | Some d -> AConst d
            | None -> ATop (Const_only, name))
        | _ ->
            let label =
              match n with AConst (Str name) -> "." ^ name | _ -> ".?"
            in
            ATop (origin_join (origin_of r) (origin_of n), label)
      in
      res :: st
  | "unit" -> AConst Unit :: stack
  | "storage.read" ->
      let k, st = pop stack in
      record ctx Read (shape_of k) here;
      ATop (Store_dep, "read") :: st
  | "storage.write" ->
      let _v, st = pop stack in
      let k, st = pop st in
      record ctx Write (shape_of k) here;
      AConst Unit :: st
  | "external.call" ->
      let _payload, st = pop stack in
      let svc, st = pop st in
      let label = match svc with AConst (Str s) -> s | _ -> "?" in
      if ctx.record then ctx.externals <- (here, label) :: ctx.externals;
      ATop (Opaque_dep, label) :: st
  | "cpu.burn" ->
      let _micros, st = pop stack in
      AConst Unit :: st
  | "wasi.clock_time_get" -> ATop (Opaque_dep, "time") :: stack
  | "wasi.random_get" ->
      let _n, st = pop stack in
      ATop (Opaque_dep, "rand") :: st
  | name ->
      (* Unknown import: over-approximate as wildcard read+write. *)
      ctx.opaque <- true;
      record ctx Read top here;
      record ctx Write top here;
      let pops, _ =
        match Host.arity name with Some a -> a | None -> (0, 1)
      in
      let _, st = popn pops stack in
      ATop (Opaque_dep, name) :: st

and run_call ctx fidx (args : aval list) : aval =
  let f = ctx.modul.funcs.(fidx) in
  let locals = Array.make (max 1 (f.n_params + f.n_locals)) (AI64 0L) in
  List.iteri
    (fun i v -> if i < Array.length locals then locals.(i) <- v)
    args;
  let ret = ref [] in
  ctx.active <- fidx :: ctx.active;
  let fall = exec_seq ctx ret [] locals [] 0 [] f.body in
  ctx.active <- List.tl ctx.active;
  let results =
    (match fall with Some (v :: _) -> [ v ] | Some [] | None -> []) @ !ret
  in
  match results with
  | [] -> ATop (Opaque_dep, "noresult")
  | v :: rest -> List.fold_left (join_aval ~cond:Const_only) v rest

(* --- Entry points --------------------------------------------------- *)

let analyze ?(params = []) (modul : Wmodule.t) ~entry =
  match Wmodule.find modul entry with
  | None -> Error (Printf.sprintf "no function named %S" entry)
  | Some idx ->
      let ctx =
        {
          modul;
          record = true;
          loop_depth = 0;
          accesses = [];
          externals = [];
          opaque = false;
          active = [];
          path_override = None;
        }
      in
      let f = modul.funcs.(idx) in
      let name_of i =
        match List.nth_opt params i with
        | Some p -> p
        | None -> Printf.sprintf "arg%d" i
      in
      let args =
        List.init f.n_params (fun i -> ATop (Input_only, name_of i))
      in
      let _ = run_call ctx idx args in
      Ok
        {
          ef_fn = entry;
          ef_params = List.init f.n_params name_of;
          ef_accesses = List.rev ctx.accesses;
          ef_externals = List.rev ctx.externals;
          ef_opaque = ctx.opaque;
        }

let shapes_of_kind k sm =
  List.sort_uniq compare_shape
    (List.filter_map
       (fun a -> if a.a_kind = k then Some a.a_shape else None)
       sm.ef_accesses)

let reads sm = shapes_of_kind Read sm

let writes sm = shapes_of_kind Write sm

let multi sm =
  List.sort_uniq compare_shape
    (List.filter_map
       (fun a -> if a.a_loop then Some a.a_shape else None)
       sm.ef_accesses)

let pp_access fmt a =
  Format.fprintf fmt "%s %a at %a%s"
    (match a.a_kind with Read -> "read" | Write -> "write")
    pp_shape a.a_shape Instr.pp_path a.a_path
    (if a.a_loop then " (in loop)" else "")

let pp_summary fmt sm =
  let pp_shapes fmt shapes =
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
      pp_shape fmt shapes
  in
  Format.fprintf fmt "@[<v2>%s(%s) [bytecode]:@ reads:  [@[%a@]]@ writes: [@[%a@]]%s%s@]"
    sm.ef_fn
    (String.concat ", " sm.ef_params)
    pp_shapes (reads sm) pp_shapes (writes sm)
    (if sm.ef_externals <> [] then " +external" else "")
    (if sm.ef_opaque then " +opaque" else "")
