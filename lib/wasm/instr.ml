type binop =
  | Add
  | Sub
  | Mul
  | Div_s
  | Rem_s
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Lt_s
  | Gt_s
  | Le_s
  | Ge_s

type t =
  | I64_const of int64
  | I64_binop of binop
  | I64_eqz
  | Ref_const of Dval.t
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Drop
  | Block of t list
  | Loop of t list
  | If of t list * t list
  | Br of int
  | Br_if of int
  | Return
  | Call of int
  | Call_host of string
  | Nop
  | Unreachable

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div_s -> "div_s"
  | Rem_s -> "rem_s"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt_s -> "lt_s"
  | Gt_s -> "gt_s"
  | Le_s -> "le_s"
  | Ge_s -> "ge_s"

let rec pp fmt = function
  | I64_const i -> Format.fprintf fmt "i64.const %Ld" i
  | I64_binop op -> Format.fprintf fmt "i64.%s" (binop_name op)
  | I64_eqz -> Format.pp_print_string fmt "i64.eqz"
  | Ref_const v -> Format.fprintf fmt "ref.const %a" Dval.pp v
  | Local_get i -> Format.fprintf fmt "local.get %d" i
  | Local_set i -> Format.fprintf fmt "local.set %d" i
  | Local_tee i -> Format.fprintf fmt "local.tee %d" i
  | Drop -> Format.pp_print_string fmt "drop"
  | Block body -> Format.fprintf fmt "(block %a)" pp_seq body
  | Loop body -> Format.fprintf fmt "(loop %a)" pp_seq body
  | If (t, f) -> Format.fprintf fmt "(if (then %a) (else %a))" pp_seq t pp_seq f
  | Br n -> Format.fprintf fmt "br %d" n
  | Br_if n -> Format.fprintf fmt "br_if %d" n
  | Return -> Format.pp_print_string fmt "return"
  | Call i -> Format.fprintf fmt "call %d" i
  | Call_host name -> Format.fprintf fmt "call_host %s" name
  | Nop -> Format.pp_print_string fmt "nop"
  | Unreachable -> Format.pp_print_string fmt "unreachable"

and pp_seq fmt instrs =
  Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "@ ") pp fmt instrs

(* Instruction paths: block-nesting indices from the function body down.
   A top-level instruction is [i]; a child of a Block/Loop at path p is
   p@[j]; an instruction in an If arm is p@[arm; j] with arm 0 = then,
   1 = else. *)

let pp_path fmt = function
  | [] -> Format.pp_print_string fmt "(entry)"
  | p ->
      Format.pp_print_string fmt
        (String.concat "." (List.map string_of_int p))

let path_to_string p = Format.asprintf "%a" pp_path p

let rec at_path (body : t list) (path : int list) : t option =
  match path with
  | [] -> None
  | [ i ] -> List.nth_opt body i
  | i :: rest -> (
      match List.nth_opt body i with
      | Some (Block b) | Some (Loop b) -> at_path b rest
      | Some (If (t, e)) -> (
          match rest with
          | 0 :: rest' -> at_path t rest'
          | 1 :: rest' -> at_path e rest'
          | _ -> None)
      | _ -> None)
