(** Latency sample collection and summary statistics.

    The paper reports medians (bars) and p99s (whiskers) over 10,000
    requests; this module computes exact percentiles over the full
    sample. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val percentile : t -> float -> float
(** [percentile t 0.5] is the median. Linearly interpolates between
    adjacent order statistics (the R/NumPy type-7 estimator), so
    [percentile t 0.0] and [percentile t 1.0] are the exact min and max
    and intermediate ranks are unbiased. Raises [Invalid_argument] on an
    empty collector or a rank outside [0, 1]. *)

val median : t -> float

val p99 : t -> float

val mean : t -> float

val min : t -> float

val max : t -> float

val merge : t -> t -> t
(** A new collector holding both sample sets. *)

val of_list : float list -> t

val histogram : t -> buckets:int -> (float * float * int) list
(** Equal-width buckets over [\[min, max\]]: (lo, hi, count) per bucket.
    Raises on an empty collector. *)
