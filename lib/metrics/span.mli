(** One node of a request-scoped trace tree.

    A span covers one phase of a request on the virtual clock: it opens
    at [start], closes at [finish], and nests under a parent (the
    request's root span covers the whole invocation). Spans are built by
    {!Tracer}; this module is the passive tree structure plus printers.
    Timestamps are virtual milliseconds from {!Sim.Engine.now}. *)

type t = private {
  id : int;
  parent : int option; (** Parent span id, [None] for a request root. *)
  label : string; (** Phase name, or the function name for a root. *)
  start : float;
  mutable finish : float; (** [nan] while the span is still open. *)
  mutable children_rev : t list;
  mutable notes : (string * string) list;
}

val make : id:int -> ?parent:t -> label:string -> start:float -> unit -> t
(** Create a span and link it into [parent]'s children. *)

val close : t -> now:float -> unit
(** Idempotent: only the first close sets [finish]. *)

val closed : t -> bool

val duration : t -> float
(** [finish - start]; [nan] while open. *)

val children : t -> t list
(** Direct children ordered by start time. *)

val annotate : t -> string -> string -> unit
(** Attach a key/value note (e.g. [path=Speculative]). *)

val note : t -> string -> string option

val iter : (t -> unit) -> t -> unit
(** Pre-order traversal of the subtree. *)

val pp : Format.formatter -> t -> unit
(** Indented tree with per-span durations, start offsets and notes. *)
