type t = { samples : float Sim.Vec.t; mutable sorted : bool }

let create () = { samples = Sim.Vec.create (); sorted = true }

let add t x =
  Sim.Vec.push t.samples x;
  t.sorted <- false

let count t = Sim.Vec.length t.samples

let ensure_sorted t =
  if not t.sorted then begin
    let a = Array.of_list (Sim.Vec.to_list t.samples) in
    Array.sort Float.compare a;
    Sim.Vec.truncate t.samples 0;
    Array.iter (Sim.Vec.push t.samples) a;
    t.sorted <- true
  end

(* Linear interpolation between order statistics (type-7 estimator, the
   R/NumPy default). Truncating the fractional rank would bias every
   reported percentile low — e.g. p99 over 50 samples landing on index
   48 ≈ p97.9. *)
let percentile t p =
  if count t = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: rank out of range";
  ensure_sorted t;
  let n = count t in
  let rank = p *. float_of_int (n - 1) in
  let lo = Stdlib.min (n - 1) (int_of_float (Float.floor rank)) in
  let hi = Stdlib.min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  let a = Sim.Vec.get t.samples lo and b = Sim.Vec.get t.samples hi in
  a +. (frac *. (b -. a))

let median t = percentile t 0.5

let p99 t = percentile t 0.99

let mean t =
  if count t = 0 then invalid_arg "Stats.mean: empty";
  Sim.Vec.fold_left ( +. ) 0.0 t.samples /. float_of_int (count t)

let min t = percentile t 0.0

let max t = percentile t 1.0

let merge a b =
  let t = create () in
  Sim.Vec.iter (add t) a.samples;
  Sim.Vec.iter (add t) b.samples;
  t

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let histogram t ~buckets =
  if count t = 0 then invalid_arg "Stats.histogram: empty";
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  let lo = min t and hi = max t in
  let width = (hi -. lo) /. float_of_int buckets in
  let width = if width <= 0.0 then 1.0 else width in
  let counts = Array.make buckets 0 in
  Sim.Vec.iter
    (fun x ->
      let b =
        Stdlib.min (buckets - 1) (int_of_float ((x -. lo) /. width))
      in
      counts.(b) <- counts.(b) + 1)
    t.samples;
  List.init buckets (fun b ->
      (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
