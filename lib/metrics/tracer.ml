open Sim

type span = Span.t option

type state = {
  mutable next_id : int;
  mutable completed : Span.t list; (* finalized request roots, newest first *)
  mutable n_completed : int;
  by_exec : (string, Span.t) Hashtbl.t;
  phases : (string * string * string, Stats.t) Hashtbl.t;
      (* (fn, phase, path) -> duration samples *)
  wire : (string, Stats.t) Hashtbl.t; (* message label -> one-way delay *)
  faults : (string * string, int) Hashtbl.t; (* (label, outcome) -> count *)
  raft : Stats.t; (* lock-record submit -> commit latency *)
  batches : (string, Stats.t) Hashtbl.t; (* batch label -> batch size *)
  queues : (string, Stats.t) Hashtbl.t; (* queue label -> queueing delay *)
  shards : (int, int * int) Hashtbl.t;
      (* shard id -> (requests handled, of which cross-shard) *)
}

type t = Off | On of state

let noop = Off

let create () =
  On
    {
      next_id = 0;
      completed = [];
      n_completed = 0;
      by_exec = Hashtbl.create 64;
      phases = Hashtbl.create 64;
      wire = Hashtbl.create 16;
      faults = Hashtbl.create 16;
      raft = Stats.create ();
      batches = Hashtbl.create 16;
      queues = Hashtbl.create 16;
      shards = Hashtbl.create 8;
    }

let enabled = function Off -> false | On _ -> true

let none : span = None

let fresh_id st =
  st.next_id <- st.next_id + 1;
  st.next_id

let root t label : span =
  match t with
  | Off -> None
  | On st ->
      Some (Span.make ~id:(fresh_id st) ~label ~start:(Engine.now ()) ())

let child t ~parent label : span =
  match (t, parent) with
  | Off, _ | _, None -> None
  | On st, Some p ->
      Some (Span.make ~id:(fresh_id st) ~parent:p ~label ~start:(Engine.now ()) ())

let stop (sp : span) =
  match sp with None -> () | Some s -> Span.close s ~now:(Engine.now ())

let annotate (sp : span) key value =
  match sp with None -> () | Some s -> Span.annotate s key value

let with_phase t ~parent label f =
  match parent with
  | None -> f ()
  | Some _ ->
      let sp = child t ~parent label in
      Fun.protect ~finally:(fun () -> stop sp) f

(* --- Cross-component span lookup ----------------------------------- *)

let register_exec t ~exec_id (sp : span) =
  match (t, sp) with
  | Off, _ | _, None -> ()
  | On st, Some s -> Hashtbl.replace st.by_exec exec_id s

let exec_span t ~exec_id : span =
  match t with Off -> None | On st -> Hashtbl.find_opt st.by_exec exec_id

let release_exec t ~exec_id =
  match t with Off -> () | On st -> Hashtbl.remove st.by_exec exec_id

(* --- Aggregation ----------------------------------------------------- *)

let phase_add st ~fn ~phase ~path d =
  let key = (fn, phase, path) in
  let s =
    match Hashtbl.find_opt st.phases key with
    | Some s -> s
    | None ->
        let s = Stats.create () in
        Hashtbl.add st.phases key s;
        s
  in
  Stats.add s d

let finalize t ~fn ~path (sp : span) =
  match (t, sp) with
  | Off, _ | _, None -> ()
  | On st, Some s ->
      Span.close s ~now:(Engine.now ());
      Span.annotate s "path" path;
      phase_add st ~fn ~phase:"total" ~path (Span.duration s);
      Span.iter
        (fun child ->
          if child != s && Span.closed child then
            phase_add st ~fn ~phase:child.Span.label ~path
              (Span.duration child))
        s;
      st.completed <- s :: st.completed;
      st.n_completed <- st.n_completed + 1

let record_wire t ~label d =
  match t with
  | Off -> ()
  | On st ->
      let s =
        match Hashtbl.find_opt st.wire label with
        | Some s -> s
        | None ->
            let s = Stats.create () in
            Hashtbl.add st.wire label s;
            s
      in
      Stats.add s d

let record_fault t ~label ~outcome =
  match t with
  | Off -> ()
  | On st ->
      let key = (label, outcome) in
      let n = Option.value ~default:0 (Hashtbl.find_opt st.faults key) in
      Hashtbl.replace st.faults key (n + 1)

let record_raft t d = match t with Off -> () | On st -> Stats.add st.raft d

let tbl_add tbl label v =
  let s =
    match Hashtbl.find_opt tbl label with
    | Some s -> s
    | None ->
        let s = Stats.create () in
        Hashtbl.add tbl label s;
        s
  in
  Stats.add s v

let record_batch t ~label size =
  match t with
  | Off -> ()
  | On st -> tbl_add st.batches label (float_of_int size)

let record_queue t ~label d =
  match t with Off -> () | On st -> tbl_add st.queues label d

let record_shard t ~shard ~parts =
  match t with
  | Off -> ()
  | On st ->
      let reqs, cross =
        Option.value ~default:(0, 0) (Hashtbl.find_opt st.shards shard)
      in
      Hashtbl.replace st.shards shard
        (reqs + 1, if parts > 1 then cross + 1 else cross)

(* --- Readout --------------------------------------------------------- *)

let trace_count t = match t with Off -> 0 | On st -> st.n_completed

let sorted_bindings tbl cmp =
  List.sort (fun (a, _) (b, _) -> cmp a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let phase_stats t =
  match t with
  | Off -> []
  | On st -> sorted_bindings st.phases compare

let wire_stats t =
  match t with
  | Off -> []
  | On st -> sorted_bindings st.wire String.compare

let fault_counts t =
  match t with
  | Off -> []
  | On st -> sorted_bindings st.faults compare

let raft_stats t =
  match t with
  | Off -> None
  | On st -> if Stats.count st.raft = 0 then None else Some st.raft

let batch_stats t =
  match t with
  | Off -> []
  | On st -> sorted_bindings st.batches String.compare

let queue_stats t =
  match t with
  | Off -> []
  | On st -> sorted_bindings st.queues String.compare

let shard_stats t =
  match t with
  | Off -> []
  | On st -> sorted_bindings st.shards Int.compare

let slowest ?(k = 10) t =
  match t with
  | Off -> []
  | On st ->
      let sorted =
        List.sort
          (fun a b -> Float.compare (Span.duration b) (Span.duration a))
          st.completed
      in
      List.filteri (fun i _ -> i < k) sorted

(* --- JSON emission --------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let stats_json s =
  Printf.sprintf
    "{\"count\":%d,\"mean\":%.3f,\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,\"max\":%.3f}"
    (Stats.count s) (Stats.mean s)
    (Stats.percentile s 0.5)
    (Stats.percentile s 0.9)
    (Stats.p99 s) (Stats.max s)

let paths = [ "Speculative"; "Backup"; "Fallback" ]

let phases_json t =
  match t with
  | Off -> "{}"
  | On st ->
      let buf = Buffer.create 1024 in
      let bindings = sorted_bindings st.phases compare in
      (* Aggregate (fn, phase, path) across fn for the per-path view. *)
      let per_path path =
        let by_phase = Hashtbl.create 16 in
        List.iter
          (fun ((_, phase, p), s) ->
            if String.equal p path then
              let merged =
                match Hashtbl.find_opt by_phase phase with
                | Some prev -> Stats.merge prev s
                | None -> s
              in
              Hashtbl.replace by_phase phase merged)
          bindings;
        sorted_bindings by_phase String.compare
      in
      Buffer.add_string buf "{\n";
      Buffer.add_string buf
        (Printf.sprintf "  \"traces\": %d,\n" st.n_completed);
      Buffer.add_string buf "  \"paths\": {\n";
      let first_path = ref true in
      List.iter
        (fun path ->
          match per_path path with
          | [] -> ()
          | phases ->
              if not !first_path then Buffer.add_string buf ",\n";
              first_path := false;
              let requests =
                match List.assoc_opt "total" phases with
                | Some s -> Stats.count s
                | None -> 0
              in
              Buffer.add_string buf
                (Printf.sprintf "    \"%s\": {\"requests\": %d, \"phases\": {"
                   (json_escape path) requests);
              Buffer.add_string buf
                (String.concat ", "
                   (List.map
                      (fun (phase, s) ->
                        Printf.sprintf "\"%s\": %s" (json_escape phase)
                          (stats_json s))
                      phases));
              Buffer.add_string buf "}}")
        paths;
      Buffer.add_string buf "\n  },\n";
      Buffer.add_string buf "  \"breakdown\": [\n";
      Buffer.add_string buf
        (String.concat ",\n"
           (List.map
              (fun ((fn, phase, path), s) ->
                Printf.sprintf
                  "    {\"fn\": \"%s\", \"phase\": \"%s\", \"path\": \"%s\", \
                   \"stats\": %s}"
                  (json_escape fn) (json_escape phase) (json_escape path)
                  (stats_json s))
              bindings));
      Buffer.add_string buf "\n  ],\n";
      Buffer.add_string buf "  \"wire_ms\": {";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (label, s) ->
                Printf.sprintf "\"%s\": %s" (json_escape label) (stats_json s))
              (sorted_bindings st.wire String.compare)));
      Buffer.add_string buf "},\n";
      Buffer.add_string buf "  \"faults\": [";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun ((label, outcome), n) ->
                Printf.sprintf
                  "{\"label\": \"%s\", \"outcome\": \"%s\", \"count\": %d}"
                  (json_escape label) (json_escape outcome) n)
              (sorted_bindings st.faults compare)));
      Buffer.add_string buf "],\n";
      let labeled_section name tbl =
        Buffer.add_string buf (Printf.sprintf "  \"%s\": {" name);
        Buffer.add_string buf
          (String.concat ", "
             (List.map
                (fun (label, s) ->
                  Printf.sprintf "\"%s\": %s" (json_escape label)
                    (stats_json s))
                (sorted_bindings tbl String.compare)));
        Buffer.add_string buf "},\n"
      in
      labeled_section "batch_sizes" st.batches;
      labeled_section "queue_delay_ms" st.queues;
      Buffer.add_string buf "  \"shards\": [";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (shard, (reqs, cross)) ->
                Printf.sprintf
                  "{\"shard\": %d, \"requests\": %d, \"cross_shard\": %d}"
                  shard reqs cross)
              (sorted_bindings st.shards Int.compare)));
      Buffer.add_string buf "],\n";
      Buffer.add_string buf
        (Printf.sprintf "  \"raft_submit_ms\": %s\n"
           (if Stats.count st.raft = 0 then "null" else stats_json st.raft));
      Buffer.add_string buf "}";
      Buffer.contents buf
