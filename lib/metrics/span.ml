type t = {
  id : int;
  parent : int option;
  label : string;
  start : float;
  mutable finish : float; (* nan while still open *)
  mutable children_rev : t list;
  mutable notes : (string * string) list; (* newest first *)
}

let make ~id ?parent ~label ~start () =
  let t =
    {
      id;
      parent = (match parent with Some p -> Some p.id | None -> None);
      label;
      start;
      finish = Float.nan;
      children_rev = [];
      notes = [];
    }
  in
  (match parent with
  | Some p -> p.children_rev <- t :: p.children_rev
  | None -> ());
  t

let close t ~now = if Float.is_nan t.finish then t.finish <- now

let closed t = not (Float.is_nan t.finish)

let duration t = t.finish -. t.start

let children t =
  List.sort
    (fun a b -> Float.compare a.start b.start)
    (List.rev t.children_rev)

let annotate t key value = t.notes <- (key, value) :: t.notes

let note t key = List.assoc_opt key t.notes

(* Pre-order traversal, children in start order. *)
let rec iter f t =
  f t;
  List.iter (iter f) (children t)

let pp fmt t =
  let rec go depth t =
    Format.fprintf fmt "%s%-20s" (String.make (2 * depth) ' ') t.label;
    if closed t then Format.fprintf fmt " %8.1f ms" (duration t)
    else Format.fprintf fmt "     (open)";
    Format.fprintf fmt "  [@%.1f]" t.start;
    (match t.notes with
    | [] -> ()
    | notes ->
        Format.fprintf fmt "  %s"
          (String.concat " "
             (List.rev_map (fun (k, v) -> Printf.sprintf "%s=%s" k v) notes)));
    List.iter
      (fun c ->
        Format.pp_print_newline fmt ();
        go (depth + 1) c)
      (children t)
  in
  go 0 t

