(** Request-scoped tracing with per-phase latency aggregation.

    A tracer collects one {!Span} tree per request (rooted at the
    invocation, with one child span per protocol phase) and, on
    {!finalize}, folds every closed span into labeled histograms keyed
    by [(function, phase, path)] — so the end-to-end latency of each
    request path (Speculative / Backup / Fallback) can be attributed to
    lock wait vs. validation vs. wire time vs. re-execution.

    The disabled tracer ({!noop}) is free: every operation returns
    immediately without touching the virtual clock or allocating, so
    instrumented code paths cost nothing when tracing is off. Span
    handles are [Span.t option] — [None] under {!noop} — and child
    operations on a [None] parent are no-ops, which keeps call sites
    branch-free.

    Besides spans, a tracer aggregates transport-level wire times and
    fault outcomes per message label, and Raft submit-to-commit
    latencies for persisted lock records. *)

type t

type span = Span.t option

val noop : t
(** The disabled tracer: all operations are no-ops. *)

val create : unit -> t
(** An enabled tracer. Must only be exercised inside a running engine
    (span timestamps come from {!Sim.Engine.now}); the aggregate
    [record_*] calls are engine-free. *)

val enabled : t -> bool

val none : span

(** {1 Spans} *)

val root : t -> string -> span
(** Open a request root span ([None] when disabled). *)

val child : t -> parent:span -> string -> span
(** Open a phase span under [parent]; [None] if the parent is [None]. *)

val stop : span -> unit
(** Close a span at the current virtual time. Idempotent. *)

val annotate : span -> string -> string -> unit

val with_phase : t -> parent:span -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a phase span (closed even on exceptions). Calls
    the thunk directly when the parent is [None]. *)

(** {1 Cross-component lookup}

    The near-user runtime registers each request's root span under its
    execution id; the LVI server (same simulated deployment, different
    component) retrieves it to attach server-side phases to the same
    tree. *)

val register_exec : t -> exec_id:string -> span -> unit

val exec_span : t -> exec_id:string -> span

val release_exec : t -> exec_id:string -> unit

val finalize : t -> fn:string -> path:string -> span -> unit
(** Close the root, record every closed span of its tree into the
    [(fn, phase, path)] histograms (the root itself under phase
    ["total"]), and retain the tree for {!slowest}. Spans still open
    (e.g. an abandoned speculation) are kept in the tree but not
    aggregated. *)

(** {1 Transport / consensus aggregates} *)

val record_wire : t -> label:string -> float -> unit
(** One-way delay of a delivered message, keyed by service label. *)

val record_fault : t -> label:string -> outcome:string -> unit
(** Count a fault-hook outcome (["drop"], ["delay"], ["late_reply"]). *)

val record_raft : t -> float -> unit
(** Submit-to-commit latency of one replicated lock record. *)

val record_batch : t -> label:string -> int -> unit
(** Size of one flushed batch, keyed by batching site (["raft_entry"],
    ["lock_persist"], ["followup"], …). *)

val record_queue : t -> label:string -> float -> unit
(** Queueing delay paid by a batched element before its batch flushed
    (or by a request waiting in the admission queue), keyed by site. *)

val record_shard : t -> shard:int -> parts:int -> unit
(** Count one LVI request handled by [shard]; [parts] is the number of
    shards its key set touches (> 1 marks it cross-shard and feeds the
    per-shard cross-shard-rate readout). *)

(** {1 Readout} *)

val trace_count : t -> int

val phase_stats : t -> ((string * string * string) * Stats.t) list
(** Histograms keyed by [(fn, phase, path)], sorted. *)

val wire_stats : t -> (string * Stats.t) list

val fault_counts : t -> ((string * string) * int) list

val raft_stats : t -> Stats.t option

val batch_stats : t -> (string * Stats.t) list
(** Batch-size histograms per batching site, sorted by label. *)

val queue_stats : t -> (string * Stats.t) list
(** Queue-delay histograms per batching/admission site, sorted. *)

val shard_stats : t -> (int * (int * int)) list
(** Per-shard load, sorted by shard id: [(shard, (requests,
    cross_shard_requests))]. Empty when disabled or unsharded. *)

val slowest : ?k:int -> t -> Span.t list
(** The [k] slowest finalized request trees, slowest first. *)

val phases_json : t -> string
(** The per-phase breakdown as a JSON document: per-path phase
    histograms (aggregated over functions), the full
    [(fn, phase, path)] breakdown, wire-time histograms per label,
    fault counts, batch-size and queue-delay histograms per batching
    site, and Raft submit latency. ["{}"] when disabled. *)
