(** Static analysis deriving [f^rw] from a function (§3.3).

    Mirrors the paper's Eunomia-based analyzer: a symbolic pass
    propagates, for every subexpression, which storage reads and which
    expensive computations its value depends on. Every storage *key*
    expression and every *control* expression (if-conditions, foreach
    lists — they decide which accesses happen) contributes to a
    relevance set, which classifies the function:

    - {b Static}: keys derive from inputs and constants only. [f^rw]
      runs without touching storage.
    - {b Dependent}: some key or branch depends on earlier reads; those
      reads are kept in [f^rw] and executed against the near-user cache
      (§3.3 "Dependent accesses"). Stale cache values are safe: the
      mispredicted keys fail validation.
    - {b Expensive}: a key depends on a [Compute]; [f^rw] must perform
      that work, costing roughly as much as [f] itself (§3.3 "Failure
      case").
    - {b Unanalyzable}: a key or branch depends on an [Opaque] barrier
      or a nondeterministic source — [derive] returns an error and the
      framework always runs the function near storage.

    The derived function is a *residual program*: storage writes become
    [Declare] records, reads that nothing key-relevant consumes become
    [Declare]s too, dead computation is sliced away, and [Compute] costs
    are stripped unless key-relevant. Running it under {!predict} on the
    same inputs follows the same control path as [f] and returns the
    exact keys [f] will access. *)

type classification =
  | Static
  | Dependent of int (** Number of reads that must run inside [f^rw]. *)
  | Expensive
  | Manual (** Developer-provided [f^rw] (§3.3, §7). *)

type t = {
  source : Fdsl.Ast.func;
  rw_func : Fdsl.Ast.func; (** The residual [f^rw]; same parameters. *)
  classification : classification;
}

type error = { fn_name : string; reason : string }

val pp_error : Format.formatter -> error -> unit

val pp_classification : Format.formatter -> classification -> unit

val derive : Fdsl.Ast.func -> (t, error) result

val manual : source:Fdsl.Ast.func -> rw_func:Fdsl.Ast.func -> t
(** Pair a function with a hand-written [f^rw] — the paper's escape
    hatch when automatic analysis fails (§7). The residual program must
    use [Declare] for accesses it does not fetch and plain [Read]s for
    cache-fetched dependent reads; its exactness is the developer's
    responsibility (a wrong set surfaces as validation failures or
    uncovered locks, not corruption, since validation still checks every
    declared read). Raises [Invalid_argument] on a parameter mismatch. *)

type relevance = {
  rel_reads : int list;
      (** Ids (left-to-right traversal order) of the Reads whose values
          feed a storage key or a control decision. *)
  rel_compute : bool;  (** Some key/control expression needs a [Compute]. *)
  rel_opaque : bool;  (** Some key/control expression is opaque. *)
}

val relevance : Fdsl.Ast.func -> relevance
(** The dependency analysis behind {!derive}, exposed so the residual
    optimizer ({!Optimize}) can re-run it on a simplified residual and
    demote reads that stopped influencing keys or control flow. *)

val check_manual :
  t -> read:(string -> Dval.t) -> samples:Dval.t list list -> (unit, string) result
(** One-shot differential check of a developer-supplied [f^rw] (§7):
    run the *source* function on each sample input vector against
    [read] (own writes are buffered and shadow storage, mirroring
    speculation), collect the keys it actually touches, and compare
    with what {!predict} returns on the same inputs. [Error] carries
    the first diverging sample and both access sets. Meant to run at
    registration time in tests/CI — it samples, it does not prove. *)

val predict :
  t ->
  read:(string -> Dval.t) ->
  ?compute:(float -> unit) ->
  Dval.t list ->
  Rwset.t
(** Run [f^rw] on the invocation's inputs. [read] is the near-user cache
    (must return [Dval.Unit] on miss); it is consulted only for
    dependent reads. [compute] is charged for key-relevant computation
    (Expensive functions). Raises [Fdsl.Eval.Error] if the residual
    program faults — callers treat that as a validation-path failure. *)
