type verdict = Disjoint | Read_share | May_conflict

type pair = {
  p_a : string;
  p_b : string;
  p_verdict : verdict;
  p_witness : (Absint.shape * Absint.shape) option;
}

type report = {
  r_summaries : Absint.summary list;
  r_pairs : pair list;
  r_rmw : (string * Absint.shape list) list;
  r_order_hazards : (string * string * Absint.shape * Absint.shape) list;
}

let first_overlap xs ys =
  List.find_map
    (fun x ->
      List.find_map
        (fun y -> if Absint.overlap x y then Some (x, y) else None)
        ys)
    xs

let verdict_of (a : Absint.summary) (b : Absint.summary) =
  (* Write/write, write/read and read/write overlaps all conflict: a
     write invalidates the other function's validation or races its
     write locks. *)
  match first_overlap a.sm_writes (b.sm_writes @ b.sm_reads) with
  | Some w -> (May_conflict, Some w)
  | None -> (
      match first_overlap b.sm_writes a.sm_reads with
      | Some (bw, ar) -> (May_conflict, Some (bw, ar))
      | None -> (
          match first_overlap a.sm_reads b.sm_reads with
          | Some w -> (Read_share, Some w)
          | None -> (Disjoint, None)))

let rmw_shapes (sm : Absint.summary) =
  List.filter (fun w -> Absint.reads_shape sm w) sm.sm_writes

(* All shapes a function may lock (reads and writes merged). *)
let lock_shapes (sm : Absint.summary) =
  List.sort_uniq Absint.compare_shape (sm.sm_reads @ sm.sm_writes)

let order_hazards_of (a : Absint.summary) (b : Absint.summary) =
  (* A deadlock needs hold-and-wait on two lock records with opposite
     acquisition orders. Two flavours are flagged — both made safe by
     the globally sorted acquisition in Store.Locks (§3.6); the report
     records that the discipline is what makes them safe.

     1. Distinct shapes s <> s' both functions may lock, with a write
        involved, whose concrete key order is not statically fixed
        (neither literal prefix decides the comparison).
     2. One non-exact shape both functions may lock, with a write
        involved, that at least one of them locks under a Foreach: one
        invocation then holds several concrete keys of the shape, and
        two invocations iterating in different orders would deadlock. *)
  let locks_of sm = lock_shapes sm in
  let writes sm s = Absint.writes_shape sm s in
  let may_lock sm s = List.exists (fun x -> Absint.overlap x s) (locks_of sm) in
  let multi sm s = List.exists (fun x -> Absint.overlap x s) sm.Absint.sm_multi in
  let candidates =
    List.filter
      (fun s -> may_lock a s && may_lock b s)
      (List.sort_uniq Absint.compare_shape (locks_of a @ locks_of b))
  in
  let rec pairs = function
    | [] -> []
    | s :: rest ->
        List.filter_map
          (fun s' ->
            let write_involved =
              writes a s || writes b s || writes a s' || writes b s'
            in
            if
              write_involved
              && (not (Absint.overlap s s'))
              && Absint.ordered_before s s' = None
            then Some (a.sm_fn, b.sm_fn, s, s')
            else None)
          rest
        @ pairs rest
  in
  let self_hazards =
    List.filter_map
      (fun s ->
        if
          Absint.exact s = None
          && (writes a s || writes b s)
          && (multi a s || multi b s)
        then Some (a.sm_fn, b.sm_fn, s, s)
        else None)
      candidates
  in
  pairs candidates @ self_hazards

let build summaries =
  let rec upper = function
    | [] -> []
    | a :: rest ->
        List.map
          (fun b ->
            let v, w = verdict_of a b in
            {
              p_a = a.Absint.sm_fn;
              p_b = b.Absint.sm_fn;
              p_verdict = v;
              p_witness = w;
            })
          rest
        @ upper rest
  in
  let rec hazards = function
    | [] -> []
    | a :: rest ->
        (* Include the self pair: two concurrent invocations of the same
           function can deadlock with each other too. *)
        order_hazards_of a a
        @ List.concat_map (order_hazards_of a) rest
        @ hazards rest
  in
  (* Shapes that differ only in hole origin (say, a store-dependent
     <i> vs. an input-derived <i>) render identically and describe the
     same lock-record hazard; keep one. *)
  let dedup_hazards hs =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (a, b, s1, s2) ->
        let k =
          (a, b, Absint.shape_to_string s1, Absint.shape_to_string s2)
        in
        if Hashtbl.mem seen k then false
        else (
          Hashtbl.add seen k ();
          true))
      hs
  in
  {
    r_summaries = summaries;
    r_pairs = upper summaries;
    r_rmw =
      List.filter_map
        (fun sm ->
          match rmw_shapes sm with
          | [] -> None
          | ws -> Some (sm.Absint.sm_fn, ws))
        summaries;
    r_order_hazards = dedup_hazards (hazards summaries);
  }

let find_pair r a b =
  if String.equal a b then
    match List.find_opt (fun sm -> sm.Absint.sm_fn = a) r.r_summaries with
    | None -> None
    | Some sm ->
        Some
          (if rmw_shapes sm <> [] then May_conflict
           else if sm.sm_reads <> [] then Read_share
           else Disjoint)
  else
    List.find_map
      (fun p ->
        if (p.p_a = a && p.p_b = b) || (p.p_a = b && p.p_b = a) then
          Some p.p_verdict
        else None)
      r.r_pairs

let degree r fn =
  List.fold_left
    (fun acc p ->
      if (p.p_a = fn || p.p_b = fn) && p.p_verdict = May_conflict then acc + 1
      else acc)
    0 r.r_pairs

let cell_char = function
  | Disjoint -> '.'
  | Read_share -> 'r'
  | May_conflict -> 'C'

let pp_matrix fmt r =
  let fns = List.map (fun sm -> sm.Absint.sm_fn) r.r_summaries in
  let n = List.length fns in
  let width =
    List.fold_left (fun acc f -> max acc (String.length f)) 0 fns
  in
  let rmw_fns = List.map fst r.r_rmw in
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "%*s  %s@," (width + 3) ""
    (String.concat " "
       (List.mapi (fun i _ -> Printf.sprintf "%2d" (i + 1)) fns));
  List.iteri
    (fun i a ->
      let cells =
        List.mapi
          (fun j b ->
            if i = j then
              if List.mem a rmw_fns then " W" else " -"
            else
              match find_pair r a b with
              | Some v -> Printf.sprintf " %c" (cell_char v)
              | None -> " ?")
          fns
      in
      Format.fprintf fmt "%2d %-*s %s@," (i + 1) width a
        (String.concat " " cells))
    fns;
  ignore n;
  Format.fprintf fmt "@]"

let pp_report fmt r =
  (* Everything lives in one vertical box so the @, cuts always break
     lines (outside a box they can render as spaces). *)
  Format.fprintf fmt "@[<v>";
  pp_matrix fmt r;
  Format.fprintf fmt "@,legend: . disjoint | r read-share | C may-conflict | \
                      diagonal W = read-modify-write@,";
  (match r.r_rmw with
  | [] -> ()
  | rmw ->
      Format.fprintf fmt "write-after-read (rmw) shapes:@,";
      List.iter
        (fun (fn, ws) ->
          Format.fprintf fmt "  %-18s %s@," fn
            (String.concat ", " (List.map Absint.shape_to_string ws)))
        rmw);
  (match r.r_order_hazards with
  | [] ->
      Format.fprintf fmt
        "lock-order hazards: none (all multi-key lock sets have \
         statically ordered keys)@,"
  | hs ->
      Format.fprintf fmt
        "lock-order hazards (safe only under sorted acquisition, \
         \xc2\xa73.6):@,";
      List.iter
        (fun (a, b, s1, s2) ->
          Format.fprintf fmt "  %s vs %s: %s <> %s@," a b
            (Absint.shape_to_string s1) (Absint.shape_to_string s2))
        hs);
  Format.fprintf fmt "@]"
