(** Residual-program optimizer.

    [Derive.residualize] is deliberately syntax-directed: it keeps every
    read whose value feeds a key or a branch {e syntactically}, even
    when the dependence evaporates semantically (both arms of a branch
    access the same keys, a folded constant decides a condition, a
    computation collapses to a literal). This pass shrinks the residual
    with semantics-preserving rewrites and then re-runs the dependency
    analysis on the smaller program, which can {e upgrade} the
    function's classification:

    - Dependent → Static: a control-relevant read whose branches turn
      out access-equivalent is demoted to a [Declare], so [predict] no
      longer pays a cache fetch for it;
    - Expensive → Dependent/Static: a key-relevant [Compute] whose
      argument folds to a constant is dropped along with its cost.

    Every rewrite preserves the access trace of the residual on all
    inputs (same keys read/written/declared, conditional accesses stay
    conditional), so the optimized residual predicts exactly the same
    [Rwset.t] as the raw one — the differential property test pins
    this. Classifications never get worse: if the re-analysis does not
    improve on the original, the original is kept. *)

val simplify :
  ?strip_compute:bool -> ?value_needed:bool -> Fdsl.Ast.expr -> Fdsl.Ast.expr
(** Constant folding and propagation, branch pruning under constant
    conditions, access-equivalent branch collapsing, dead pure-code
    elimination. [strip_compute] (default [false]) additionally drops
    [Compute] wrappers whose argument folded to a literal — only sound
    for residuals, where the cost model is advisory; never use it on a
    source function. [value_needed] (default [true]) states whether the
    expression's own value is observed; residual bodies pass [false]
    (predict discards the result). *)

val specialize : Fdsl.Ast.func -> (string * Dval.t) list -> Fdsl.Ast.func
(** Partial evaluation under known inputs: substitute the given
    (parameter, value) bindings into the body and simplify, pruning
    branches the bindings decide. The parameter list is kept (callers
    pass the full argument vector; bound parameters are simply no
    longer consulted). Intended for ahead-of-time specialization of a
    handler to a deployment-constant input. *)

val optimize : Derive.t -> Derive.t
(** Optimize the residual and reclassify. Manual derivations are
    returned unchanged (the developer owns the residual). *)

val upgraded : before:Derive.t -> after:Derive.t -> bool
(** Did [optimize] improve the classification (fewer dependent reads,
    or a strictly cheaper class)? *)
