open Absint

type scope = Vs_source | Vs_rw

type problem =
  | Uncovered of scope
  | Weak_origin of { scope : scope; declared : origin; actual : origin }
  | Static_violation of origin
  | Opaque_key
  | Undeclared_external of string
  | Unanalyzable of string

type issue = { i_access : Wasm.Effect.access option; i_problem : problem }

type report = {
  c_fn : string;
  c_classification : Derive.classification option;
  c_effect : Wasm.Effect.summary option;
  c_issues : issue list;
}

let certified r = r.c_issues = []

(* Declared shapes covering one bytecode access: the subsuming subset
   and the strongest origin it admits. *)
let coverage declared shape =
  let covering = List.filter (fun d -> subsumes d shape) declared in
  match covering with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun acc d -> origin_join acc (origin_of_shape d))
           Const_only covering)

let check_access ~scope ~declared (a : Wasm.Effect.access) =
  let actual = origin_of_shape a.a_shape in
  match coverage declared a.a_shape with
  | None -> [ { i_access = Some a; i_problem = Uncovered scope } ]
  | Some best ->
      if origin_rank best < origin_rank actual then
        [
          {
            i_access = Some a;
            i_problem = Weak_origin { scope; declared = best; actual };
          };
        ]
      else []

let check ~(source : Fdsl.Ast.func) ~modul ?derived () =
  let classification =
    Option.map (fun (d : Derive.t) -> d.Derive.classification) derived
  in
  match
    Wasm.Effect.analyze ~params:source.params modul ~entry:source.fn_name
  with
  | Error reason ->
      {
        c_fn = source.fn_name;
        c_classification = classification;
        c_effect = None;
        c_issues = [ { i_access = None; i_problem = Unanalyzable reason } ];
      }
  | Ok eff ->
      let src = summarize source in
      let rw =
        Option.map (fun (d : Derive.t) -> summarize d.Derive.rw_func) derived
      in
      let issues = ref [] in
      let add is = issues := !issues @ is in
      List.iter
        (fun (a : Wasm.Effect.access) ->
          let declared_of (sm : summary) =
            match a.a_kind with
            | Wasm.Effect.Read -> sm.sm_reads
            | Wasm.Effect.Write -> sm.sm_writes
          in
          add (check_access ~scope:Vs_source ~declared:(declared_of src) a);
          (match rw with
          | Some sm -> add (check_access ~scope:Vs_rw ~declared:(declared_of sm) a)
          | None -> ());
          let actual = origin_of_shape a.a_shape in
          (match classification with
          | Some Derive.Static when origin_rank actual > origin_rank Input_only
            ->
              add [ { i_access = Some a; i_problem = Static_violation actual } ]
          | _ -> ());
          match classification with
          | Some (Derive.Static | Derive.Dependent _ | Derive.Expensive)
            when actual = Opaque_dep ->
              add [ { i_access = Some a; i_problem = Opaque_key } ]
          | _ -> ())
        eff.Wasm.Effect.ef_accesses;
      if not src.sm_external then
        List.iter
          (fun (_path, svc) ->
            add [ { i_access = None; i_problem = Undeclared_external svc } ])
          eff.Wasm.Effect.ef_externals;
      {
        c_fn = source.fn_name;
        c_classification = classification;
        c_effect = Some eff;
        c_issues = !issues;
      }

let scope_name = function Vs_source -> "source summary" | Vs_rw -> "f^rw"

let pp_issue fmt { i_access; i_problem } =
  let where fmt () =
    match i_access with
    | Some a -> Format.fprintf fmt "%a" Wasm.Effect.pp_access a
    | None -> Format.pp_print_string fmt "(module)"
  in
  match i_problem with
  | Uncovered scope ->
      Format.fprintf fmt "%a: not covered by any declared %s shape" where ()
        (scope_name scope)
  | Weak_origin { scope; declared; actual } ->
      Format.fprintf fmt
        "%a: key is %s-determined at runtime but the covering %s shape only \
         admits %s-determined keys"
        where () (origin_name actual) (scope_name scope)
        (origin_name declared)
  | Static_violation o ->
      Format.fprintf fmt
        "%a: classified Static but the key is %s-determined" where ()
        (origin_name o)
  | Opaque_key ->
      Format.fprintf fmt
        "%a: an opaque hole reaches this key under an analyzer-derived \
         classification"
        where ()
  | Undeclared_external svc ->
      Format.fprintf fmt
        "(module): external.call to %S with no external flag in the source \
         summary"
        svc
  | Unanalyzable reason ->
      Format.fprintf fmt "(module): bytecode analysis failed: %s" reason

let pp_failure fmt r =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f "; ")
    pp_issue fmt r.c_issues

let pp_report fmt r =
  let verdict = if certified r then "CERTIFIED" else "REJECTED" in
  Format.fprintf fmt "@[<v2>%s: %s@ " r.c_fn verdict;
  (match r.c_effect with
  | Some eff -> Format.fprintf fmt "%a" Wasm.Effect.pp_summary eff
  | None -> Format.fprintf fmt "(no bytecode summary)");
  if r.c_issues <> [] then begin
    Format.fprintf fmt "@ @[<v2>issues:@ %a@]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f "@ ")
         pp_issue)
      r.c_issues
  end;
  Format.fprintf fmt "@]"
