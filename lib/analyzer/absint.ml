open Fdsl

(* The shape domain itself lives in {!Keyshape} so the bytecode-level
   interpreter ({!Wasm.Effect}) can run the same abstraction without a
   dependency cycle; this module re-exports it wholesale and layers the
   Fdsl-level interpretation on top. *)
include Keyshape

type summary = {
  sm_fn : string;
  sm_params : string list;
  sm_reads : shape list;
  sm_writes : shape list;
  sm_multi : shape list;
  sm_top : bool;
  sm_external : bool;
}

(* --- Abstract values ------------------------------------------------ *)

type aval =
  | Known of Dval.t  (* exact constant *)
  | Str_shape of shape  (* a string with known concatenation structure *)
  | Abs of origin * string  (* anything else: origin + display label *)

let origin_of = function
  | Known _ -> Const_only
  | Str_shape s -> origin_of_shape s
  | Abs (o, _) -> o

let shape_of = function
  | Known (Dval.Str s) -> [ Lit s ]
  | Known _ ->
      (* A non-string key faults at runtime; any shape is sound. *)
      [ Hole { src = Const_only; label = "const" } ]
  | Str_shape s -> s
  | Abs (o, label) -> [ Hole { src = o; label } ]

let truthy = function
  | Dval.Bool b -> b
  | Dval.Int i -> i <> 0L
  | Dval.Unit -> false
  | Dval.Str s -> s <> ""
  | Dval.List l -> l <> []
  | Dval.Record _ -> true

let join_aval ~cond a b =
  match (a, b) with
  | Known x, Known y when Dval.equal x y -> Known x
  | (Known (Dval.Str _) | Str_shape _), (Known (Dval.Str _) | Str_shape _) ->
      let s = join (shape_of a) (shape_of b) in
      (* The branch choice itself determines the value. *)
      let s =
        List.map
          (function
            | Hole h -> Hole { h with src = origin_join h.src cond }
            | f -> f)
          s
      in
      Str_shape s
  | _ ->
      Abs (origin_join cond (origin_join (origin_of a) (origin_of b)), "phi")

let summarize (f : Ast.func) =
  let reads = ref [] and writes = ref [] and multi = ref [] in
  let ext = ref false in
  let depth = ref 0 in
  let record acc s =
    let s = normalize s in
    acc := s :: !acc;
    if !depth > 0 then multi := s :: !multi
  in
  let add_read s = record reads s in
  let add_write s = record writes s in
  let rec go env (e : Ast.expr) : aval =
    match e with
    | Unit -> Known Dval.Unit
    | Bool b -> Known (Dval.Bool b)
    | Int i -> Known (Dval.Int i)
    | Str s -> Known (Dval.Str s)
    | Input x -> Abs (Input_only, x)
    | Var x -> (
        match List.assoc_opt x env with
        | Some v -> v
        | None -> Abs (Opaque_dep, x))
    | Let (x, v, b) ->
        let vv = go env v in
        go ((x, vv) :: env) b
    | Seq es -> List.fold_left (fun _ e -> go env e) (Known Dval.Unit) es
    | If (c, t, e) -> (
        let vc = go env c in
        (* Evaluate both arms: accesses of either may happen. When the
           condition is a known constant only the taken arm's accesses
           are real, so skip the other. *)
        match vc with
        | Known cv -> if truthy cv then go env t else go env e
        | _ ->
            let vt = go env t in
            let ve = go env e in
            join_aval ~cond:(origin_of vc) vt ve)
    | Binop (op, a, b) -> (
        let va = go env a in
        let vb = go env b in
        match (va, vb, op) with
        | Known x, Known y, Eq -> Known (Dval.Bool (Dval.equal x y))
        | Known x, Known y, Ne -> Known (Dval.Bool (not (Dval.equal x y)))
        | Known x, Known y, And -> Known (Dval.Bool (truthy x && truthy y))
        | Known x, Known y, Or -> Known (Dval.Bool (truthy x || truthy y))
        | Known (Dval.Int x), Known (Dval.Int y), op -> (
            let open Int64 in
            match op with
            | Add -> Known (Dval.Int (add x y))
            | Sub -> Known (Dval.Int (sub x y))
            | Mul -> Known (Dval.Int (mul x y))
            | Div when y <> 0L -> Known (Dval.Int (div x y))
            | Mod when y <> 0L -> Known (Dval.Int (rem x y))
            | Lt -> Known (Dval.Bool (compare x y < 0))
            | Gt -> Known (Dval.Bool (compare x y > 0))
            | Le -> Known (Dval.Bool (compare x y <= 0))
            | Ge -> Known (Dval.Bool (compare x y >= 0))
            | _ -> Abs (Const_only, Ast.binop_name op))
        | _ ->
            Abs (origin_join (origin_of va) (origin_of vb), Ast.binop_name op))
    | Not e ->
        let v = go env e in
        (match v with
        | Known x -> Known (Dval.Bool (not (truthy x)))
        | _ -> Abs (origin_of v, "not"))
    | Str_of_int e -> (
        let v = go env e in
        match v with
        | Known (Dval.Int i) -> Known (Dval.Str (Int64.to_string i))
        | _ -> Abs (origin_of v, "str(..)"))
    | Concat es ->
        let vs = List.map (go env) es in
        let all_known =
          List.filter_map
            (function Known (Dval.Str s) -> Some s | _ -> None)
            vs
        in
        if List.length all_known = List.length vs then
          Known (Dval.Str (String.concat "" all_known))
        else Str_shape (normalize (List.concat_map shape_of vs))
    | List_lit es ->
        let vs = List.map (go env) es in
        let known =
          List.filter_map (function Known v -> Some v | _ -> None) vs
        in
        if List.length known = List.length vs then Known (Dval.List known)
        else
          Abs
            ( List.fold_left
                (fun acc v -> origin_join acc (origin_of v))
                Const_only vs,
              "list" )
    | Append (a, b) | Prepend (a, b) | Concat_list (a, b) | Take (a, b) ->
        let va = go env a in
        let vb = go env b in
        Abs (origin_join (origin_of va) (origin_of vb), "list")
    | Length e -> Abs (origin_of (go env e), "len")
    | Nth (a, b) ->
        let va = go env a in
        let vb = go env b in
        Abs (origin_join (origin_of va) (origin_of vb), "nth")
    | Record_lit fs ->
        let vs = List.map (fun (k, e) -> (k, go env e)) fs in
        if List.for_all (fun (_, v) -> match v with Known _ -> true | _ -> false) vs
        then
          Known
            (Dval.Record
               (List.map
                  (fun (k, v) ->
                    match v with Known d -> (k, d) | _ -> assert false)
                  vs))
        else
          Abs
            ( List.fold_left
                (fun acc (_, v) -> origin_join acc (origin_of v))
                Const_only vs,
              "record" )
    | Field (e, n) -> (
        let v = go env e in
        match v with
        | Known (Dval.Record fs) -> (
            match List.assoc_opt n fs with
            | Some d -> Known d
            | None -> Abs (Const_only, n))
        | _ -> Abs (origin_of v, "." ^ n))
    | Set_field (a, n, b) ->
        let va = go env a in
        let vb = go env b in
        Abs (origin_join (origin_of va) (origin_of vb), "." ^ n ^ "<-")
    | Read k ->
        let vk = go env k in
        add_read (shape_of vk);
        Abs (Store_dep, "read")
    | Write (k, v) ->
        let vk = go env k in
        add_write (shape_of vk);
        let _ = go env v in
        Known Dval.Unit
    | Declare (Decl_read, k) ->
        let vk = go env k in
        add_read (shape_of vk);
        Known Dval.Unit
    | Declare (Decl_write, k) ->
        let vk = go env k in
        add_write (shape_of vk);
        Known Dval.Unit
    | Foreach (x, l, body) ->
        let vl = go env l in
        (* The element varies per iteration even over a constant list. *)
        let elem =
          Abs (origin_join (origin_of vl) Const_only, x)
        in
        incr depth;
        let _ = go ((x, elem) :: env) body in
        decr depth;
        Abs (origin_of vl, "map")
    | Compute (_, e) -> go env e
    | Opaque e ->
        let _ = go env e in
        Abs (Opaque_dep, "opaque")
    | Time_now -> Abs (Opaque_dep, "time")
    | Random_int _ -> Abs (Opaque_dep, "rand")
    | External (svc, payload) ->
        ext := true;
        let _ = go env payload in
        Abs (Opaque_dep, svc)
  in
  let env = List.map (fun p -> (p, Abs (Input_only, p))) f.params in
  let _ = go env f.body in
  let dedup l = List.sort_uniq compare_shape l in
  let sm_reads = dedup !reads and sm_writes = dedup !writes in
  {
    sm_fn = f.fn_name;
    sm_params = f.params;
    sm_reads;
    sm_writes;
    sm_multi = dedup !multi;
    sm_top = List.exists is_top (sm_reads @ sm_writes);
    sm_external = !ext;
  }

let reads_shape sm s = List.exists (fun r -> overlap r s) sm.sm_reads

let writes_shape sm s = List.exists (fun w -> overlap w s) sm.sm_writes

let pp_summary fmt sm =
  let pp_shapes fmt shapes =
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
      pp_shape fmt shapes
  in
  Format.fprintf fmt "@[<v2>%s(%s):@ reads:  [@[%a@]]@ writes: [@[%a@]]@]"
    sm.sm_fn
    (String.concat ", " sm.sm_params)
    pp_shapes sm.sm_reads pp_shapes sm.sm_writes
