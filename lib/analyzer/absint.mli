(** Key-shape abstract interpretation (whole-program conflict analysis,
    first stage).

    [Derive] predicts the {e concrete} read/write set of one invocation,
    given its inputs. This module answers the complementary static
    question: over {e all} possible invocations, which keys {e can} a
    function touch? Each Read/Write/Declare key is abstracted to a
    {!shape} — a concatenation pattern of string literals and holes,
    e.g. ["post:" ^ ⟨u⟩ ^ ":likes"] — where a hole stands for any string
    (any element of Sigma-star) and is tagged with the strongest
    {!origin} that determines it.
    A key the interpretation cannot structure at all becomes the pure
    wildcard [⟨?⟩] (a sound ⊤ that overlaps everything).

    The domain is deliberately coarse: shapes are anchored glob
    patterns, so emptiness of an intersection is decidable by literal
    prefix/suffix/infix compatibility, and joins are computed by
    anti-unification (common literal prefix and suffix kept, the
    differing middle generalized to one hole). Everything here
    over-approximates — [overlap] never returns [false] for two shapes
    that share a concrete key. *)

(** The domain itself lives in {!Keyshape} (shared with the
    bytecode-level interpreter {!Wasm.Effect}); this module re-exports
    it so existing [Absint.Lit] / [Absint.overlap] users are
    unaffected. *)

type origin = Keyshape.origin =
  | Const_only  (** fixed by the program text (e.g. a literal list's
                    elements: varies per iteration over a known set) *)
  | Input_only  (** determined by invocation inputs *)
  | Store_dep  (** depends on values read from storage *)
  | Opaque_dep  (** depends on an opaque/nondeterministic source *)

type frag = Keyshape.frag =
  | Lit of string
  | Hole of { src : origin; label : string }

type shape = frag list
(** Normalized: no empty literals, no adjacent literals, no adjacent
    holes. The empty list is the empty string. *)

val origin_rank : origin -> int
val origin_join : origin -> origin -> origin
val origin_name : origin -> string
val pp_origin : Format.formatter -> origin -> unit

val normalize : shape -> shape

val top : shape
(** The pure wildcard [⟨?⟩]: matches any key. *)

val is_top : shape -> bool
(** No literal fragment at all — the shape constrains nothing. *)

val exact : shape -> string option
(** [Some s] iff the shape contains no hole (it denotes exactly [s]). *)

val origin_of_shape : shape -> origin
(** Join of the shape's hole origins ([Const_only] if hole-free). *)

val matches : shape -> string -> bool
(** Glob-match a concrete key against the pattern (holes match any string). *)

val overlap : shape -> shape -> bool
(** May the two patterns share a concrete key? Sound over-approximation:
    [false] is a proof of disjointness; [true] may be spurious. *)

val subsumes : shape -> shape -> bool
(** [subsumes general specific]: language inclusion — see
    {!Keyshape.subsumes}. *)

val join : shape -> shape -> shape
(** Anti-unification: the least pattern (in this restricted domain)
    covering both. Used at control-flow joins. *)

val ordered_before : shape -> shape -> bool option
(** [Some true] if every concretization of the first shape sorts
    strictly before every concretization of the second (lexicographic
    key order — the lock-acquisition order of §3.6); [Some false] for
    the converse; [None] when the order depends on hole contents. *)

val compare_shape : shape -> shape -> int
(** Total order for sorting/dedup (structural, not semantic). *)

val same_shape : shape -> shape -> bool
(** Structural equality up to hole labels (see {!Keyshape.same_shape}). *)

val pp_shape : Format.formatter -> shape -> unit

val shape_to_string : shape -> string
(** E.g. ["post:" ^ ⟨u⟩ ^ ":likes"]; [ε] for the empty shape. *)

type summary = {
  sm_fn : string;
  sm_params : string list;
  sm_reads : shape list;  (** deduped, sorted *)
  sm_writes : shape list;  (** deduped, sorted *)
  sm_multi : shape list;
      (** shapes accessed inside a [Foreach] body: one invocation may
          lock several concrete keys of the shape (deadlock-relevant) *)
  sm_top : bool;  (** some access key is the pure wildcard *)
  sm_external : bool;  (** the body may invoke an external service *)
}

val summarize : Fdsl.Ast.func -> summary
(** Abstractly interpret the {e source} body, collecting the shape of
    every Read/Write/Declare key. Total: unanalyzable keys degrade to
    {!top} rather than failing, so a summary exists even for functions
    [Derive] rejects (manual f^rw, opaque control). *)

val reads_shape : summary -> shape -> bool
(** Does any read shape of the summary overlap the given shape? *)

val writes_shape : summary -> shape -> bool

val pp_summary : Format.formatter -> summary -> unit
