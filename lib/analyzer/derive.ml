open Fdsl

module Ints = Set.Make (Int)

type classification = Static | Dependent of int | Expensive | Manual

type t = {
  source : Ast.func;
  rw_func : Ast.func;
  classification : classification;
}

type error = { fn_name : string; reason : string }

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.fn_name e.reason

let pp_classification fmt = function
  | Static -> Format.pp_print_string fmt "static"
  | Dependent n -> Format.fprintf fmt "dependent(%d)" n
  | Expensive -> Format.pp_print_string fmt "expensive"
  | Manual -> Format.pp_print_string fmt "manual"

let manual ~source ~rw_func =
  if source.Ast.params <> rw_func.Ast.params then
    invalid_arg "Derive.manual: f^rw must take the same parameters as f";
  { source; rw_func; classification = Manual }

(* --- Phase 1: dependency (taint) analysis --------------------------- *)

type taint = { reads : Ints.t; compute : bool; opaque : bool }

let bot = { reads = Ints.empty; compute = false; opaque = false }

let join a b =
  {
    reads = Ints.union a.reads b.reads;
    compute = a.compute || b.compute;
    opaque = a.opaque || b.opaque;
  }

(* A branch or loop decides which accesses happen only if its body can
   access storage at all; value-level conditionals (picking between two
   pure results) do not make their scrutinee key-relevant. [Compute] is
   deliberately not an access: residualization strips non-key-relevant
   compute, so trip counts and branch choices that only affect CPU time
   cannot change the predicted set. *)
let rec contains_accesses (e : Ast.expr) =
  match e with
  | Ast.Read _ | Ast.Write _ | Ast.Declare _ -> true
  | Ast.External (_, e) -> contains_accesses e
  | Ast.Unit | Ast.Bool _ | Ast.Int _ | Ast.Str _ | Ast.Input _ | Ast.Var _
  | Ast.Time_now | Ast.Random_int _ ->
      false
  | Ast.Let (_, v, b) -> contains_accesses v || contains_accesses b
  | Ast.Seq es | Ast.Concat es | Ast.List_lit es ->
      List.exists contains_accesses es
  | Ast.If (a, b, c) ->
      contains_accesses a || contains_accesses b || contains_accesses c
  | Ast.Binop (_, a, b)
  | Ast.Append (a, b)
  | Ast.Prepend (a, b)
  | Ast.Concat_list (a, b)
  | Ast.Take (a, b)
  | Ast.Nth (a, b)
  | Ast.Foreach (_, a, b) ->
      contains_accesses a || contains_accesses b
  | Ast.Not e | Ast.Str_of_int e | Ast.Length e | Ast.Field (e, _)
  | Ast.Opaque e
  | Ast.Compute (_, e) ->
      contains_accesses e
  | Ast.Set_field (a, _, b) -> contains_accesses a || contains_accesses b
  | Ast.Record_lit fs -> List.exists (fun (_, e) -> contains_accesses e) fs

(* Walks the body assigning ids to [Read] nodes in traversal order and
   accumulating the join of every key- and control-relevant taint. *)
let analyze (f : Ast.func) =
  let counter = ref 0 in
  let relevant = ref bot in
  let mark t = relevant := join !relevant t in
  let rec go env (e : Ast.expr) : taint =
    match e with
    | Unit | Bool _ | Int _ | Str _ | Input _ -> bot
    | Time_now | Random_int _ -> { bot with opaque = true }
    | Var x -> Option.value ~default:bot (List.assoc_opt x env)
    | Let (x, v, b) ->
        let tv = go env v in
        go ((x, tv) :: env) b
    | Seq es -> List.fold_left (fun _ e -> go env e) bot es
    | If (c, th, el) ->
        (* Children are visited left to right everywhere in this pass;
           [residualize] mirrors the order so Read ids line up. *)
        let tc = go env c in
        if contains_accesses th || contains_accesses el then mark tc;
        let tt = go env th in
        let te = go env el in
        join tc (join tt te)
    | Binop (_, a, b)
    | Append (a, b)
    | Prepend (a, b)
    | Concat_list (a, b)
    | Take (a, b)
    | Nth (a, b)
    | Set_field (a, _, b) ->
        let ta = go env a in
        let tb = go env b in
        join ta tb
    | Not e | Str_of_int e | Length e | Field (e, _) -> go env e
    | Concat es | List_lit es ->
        List.fold_left (fun acc e -> join acc (go env e)) bot es
    | Record_lit fs ->
        List.fold_left (fun acc (_, e) -> join acc (go env e)) bot fs
    | Read k ->
        let tk = go env k in
        mark tk;
        let id = !counter in
        incr counter;
        { tk with reads = Ints.add id tk.reads }
    | Write (k, v) ->
        let tk = go env k in
        mark tk;
        let _ = go env v in
        bot
    | Foreach (x, l, body) ->
        (* The list drives the trip count: control-relevant whenever the
           body touches storage. *)
        let tl = go env l in
        if contains_accesses body then mark tl;
        join tl (go ((x, tl) :: env) body)
    | Compute (_, e) -> { (go env e) with compute = true }
    | Opaque e -> { (go env e) with opaque = true }
    | Declare (_, k) ->
        let tk = go env k in
        mark tk;
        bot
    | External (_, payload) ->
        (* The provider's response cannot be predicted at f^rw time: a
           key or branch depending on it makes the function
           unanalyzable. *)
        { (go env payload) with opaque = true }
  in
  let env = List.map (fun p -> (p, bot)) f.params in
  let _ = go env f.body in
  !relevant

(* --- Phase 2: residual program construction ------------------------- *)

let rec occurs x (e : Ast.expr) =
  match e with
  | Var y | Input y -> String.equal x y
  | Unit | Bool _ | Int _ | Str _ | Time_now | Random_int _ -> false
  | Let (y, v, b) -> occurs x v || ((not (String.equal x y)) && occurs x b)
  | Foreach (y, l, b) ->
      occurs x l || ((not (String.equal x y)) && occurs x b)
  | Seq es | Concat es | List_lit es -> List.exists (occurs x) es
  | If (a, b, c) -> occurs x a || occurs x b || occurs x c
  | Binop (_, a, b)
  | Append (a, b)
  | Prepend (a, b)
  | Concat_list (a, b)
  | Take (a, b)
  | Nth (a, b)
  | Write (a, b)
  | Set_field (a, _, b) ->
      occurs x a || occurs x b
  | Not e | Str_of_int e | Length e | Field (e, _) | Read e | Opaque e
  | Compute (_, e)
  | Declare (_, e)
  | External (_, e) ->
      occurs x e
  | Record_lit fs -> List.exists (fun (_, e) -> occurs x e) fs

(* Number of Read nodes in a subtree — the ids a traversal consumes.
   Effect-free pruning never skips a Read, so every traversal of [e]
   consumes exactly this many ids. *)
let rec count_reads (e : Ast.expr) =
  match e with
  | Ast.Read k -> 1 + count_reads k
  | Ast.Unit | Ast.Bool _ | Ast.Int _ | Ast.Str _ | Ast.Input _ | Ast.Var _
  | Ast.Time_now | Ast.Random_int _ ->
      0
  | Ast.Let (_, v, b) -> count_reads v + count_reads b
  | Ast.Seq es | Ast.Concat es | Ast.List_lit es ->
      List.fold_left (fun acc e -> acc + count_reads e) 0 es
  | Ast.If (a, b, c) -> count_reads a + count_reads b + count_reads c
  | Ast.Binop (_, a, b)
  | Ast.Append (a, b)
  | Ast.Prepend (a, b)
  | Ast.Concat_list (a, b)
  | Ast.Take (a, b)
  | Ast.Nth (a, b)
  | Ast.Foreach (_, a, b)
  | Ast.Write (a, b)
  | Ast.Set_field (a, _, b) ->
      count_reads a + count_reads b
  | Ast.Not e | Ast.Str_of_int e | Ast.Length e | Ast.Field (e, _)
  | Ast.Opaque e
  | Ast.Compute (_, e)
  | Ast.Declare (_, e)
  | Ast.External (_, e) ->
      count_reads e
  | Ast.Record_lit fs ->
      List.fold_left (fun acc (_, e) -> acc + count_reads e) 0 fs

(* [rw needed e] keeps exactly the parts of [e] needed to reproduce the
   access trace: key expressions, control flow, and — when [needed] —
   the value itself. Reads stay as reads when their value is relevant
   (they will run against the cache inside f^rw); all other accesses
   degrade to [Declare] records; non-key-relevant [Compute] costs are
   stripped.

   INVARIANT: this pass must visit Read nodes in exactly the order
   [analyze] does, because the influencing set is keyed by visit index.
   Both passes therefore visit children strictly left to right, and a
   Read consumes its id after its key subtree. OCaml evaluates
   constructor arguments right to left, so every multi-child case binds
   its recursive calls with explicit lets. Subtrees skipped by the
   effect-freeness prune contain no Reads, so skipping is id-safe. *)
let residualize influencing (f : Ast.func) =
  let counter = ref 0 in
  let rec rw needed (e : Ast.expr) : Ast.expr =
    if (not needed) && not (Ast.contains_effects e) then Ast.Unit
    else
      match e with
      | Unit | Bool _ | Int _ | Str _ | Input _ | Var _ | Time_now
      | Random_int _ ->
          e
      | Read k ->
          let k' = rw true k in
          let id = !counter in
          incr counter;
          if Ints.mem id influencing || needed then Ast.Read k'
          else Ast.Declare (Decl_read, k')
      | Write (k, v) ->
          let k' = rw true k in
          let v' = rw false v in
          Ast.Seq [ v'; Ast.Declare (Decl_write, k') ]
      | Declare (d, k) ->
          let k' = rw true k in
          Ast.Declare (d, k')
      | External (_, payload) ->
          (* f^rw must never invoke external services; keep only the
             storage accesses buried in the payload. A needed External
             implies an opaque key taint, which derive rejects first. *)
          rw false payload
      | Compute (ms, e) ->
          if needed then
            let e' = rw true e in
            Ast.Compute (ms, e')
          else rw false e
      | Opaque e ->
          let e' = rw needed e in
          Ast.Opaque e'
      | If (c, t, el) ->
          let c' = rw true c in
          let t' = rw needed t in
          let el' = rw needed el in
          Ast.If (c', t', el')
      | Foreach (x, l, b) ->
          let l' = rw true l in
          let b' = rw needed b in
          Ast.Foreach (x, l', b')
      | Seq es ->
          let rec slice = function
            | [] -> []
            | [ last ] -> [ rw needed last ]
            | e :: rest ->
                let e' = rw false e in
                e' :: slice rest
          in
          Ast.Seq (slice es)
      | Let (x, v, b) ->
          (* Whether [v]'s value is needed depends on whether [x] occurs
             in the *residual* body — e.g. a read-modify-write's read
             only feeds the dropped write value, so it must degrade to a
             Declare. Ids are assigned by syntactic Read count, so we can
             residualize [b] first under a shifted counter and then come
             back for [v] without breaking the id alignment. *)
          let v_reads = count_reads v in
          let saved = !counter in
          counter := saved + v_reads;
          let b' = rw needed b in
          let after_b = !counter in
          counter := saved;
          let v' = rw (occurs x b') v in
          assert (!counter = saved + v_reads);
          counter := after_b;
          if occurs x b' then Ast.Let (x, v', b') else Ast.Seq [ v'; b' ]
      | Binop (op, a, b) ->
          let a' = rw needed a in
          let b' = rw needed b in
          if needed then Ast.Binop (op, a', b') else Ast.Seq [ a'; b' ]
      | Not e ->
          let e' = rw needed e in
          if needed then Ast.Not e' else e'
      | Str_of_int e ->
          let e' = rw needed e in
          if needed then Ast.Str_of_int e' else e'
      | Length e ->
          let e' = rw needed e in
          if needed then Ast.Length e' else e'
      | Field (e, n) ->
          let e' = rw needed e in
          if needed then Ast.Field (e', n) else e'
      | Concat es ->
          let es' = List.map (rw needed) es in
          if needed then Ast.Concat es' else Ast.Seq es'
      | List_lit es ->
          let es' = List.map (rw needed) es in
          if needed then Ast.List_lit es' else Ast.Seq es'
      | Record_lit fs ->
          let fs' = List.map (fun (k, e) -> (k, rw needed e)) fs in
          if needed then Ast.Record_lit fs'
          else Ast.Seq (List.map snd fs')
      | Append (a, b) ->
          let a' = rw needed a in
          let b' = rw needed b in
          if needed then Ast.Append (a', b') else Ast.Seq [ a'; b' ]
      | Prepend (a, b) ->
          let a' = rw needed a in
          let b' = rw needed b in
          if needed then Ast.Prepend (a', b') else Ast.Seq [ a'; b' ]
      | Concat_list (a, b) ->
          let a' = rw needed a in
          let b' = rw needed b in
          if needed then Ast.Concat_list (a', b') else Ast.Seq [ a'; b' ]
      | Take (a, b) ->
          let a' = rw needed a in
          let b' = rw needed b in
          if needed then Ast.Take (a', b') else Ast.Seq [ a'; b' ]
      | Nth (a, b) ->
          let a' = rw needed a in
          let b' = rw needed b in
          if needed then Ast.Nth (a', b') else Ast.Seq [ a'; b' ]
      | Set_field (a, n, b) ->
          let a' = rw needed a in
          let b' = rw needed b in
          if needed then Ast.Set_field (a', n, b') else Ast.Seq [ a'; b' ]
  in
  { f with body = rw false f.body; fn_name = f.fn_name ^ "^rw" }

let derive (f : Ast.func) =
  let relevant = analyze f in
  if relevant.opaque then
    Error
      {
        fn_name = f.fn_name;
        reason =
          "a storage key or branch depends on an opaque or nondeterministic \
           computation; the read/write set cannot be predicted";
      }
  else
    let classification =
      if relevant.compute then Expensive
      else if Ints.is_empty relevant.reads then Static
      else Dependent (Ints.cardinal relevant.reads)
    in
    Ok
      {
        source = f;
        rw_func = residualize relevant.reads f;
        classification;
      }

type relevance = { rel_reads : int list; rel_compute : bool; rel_opaque : bool }

let relevance (f : Ast.func) =
  let r = analyze f in
  {
    rel_reads = Ints.elements r.reads;
    rel_compute = r.compute;
    rel_opaque = r.opaque;
  }

let predict t ~read ?(compute = fun _ -> ()) args =
  let reads = ref [] in
  let writes = ref [] in
  let log_read k = reads := k :: !reads in
  let host =
    Eval.host
      ~read:(fun k ->
        log_read k;
        read k)
      ~write:(fun k _ ->
        (* Residual programs contain no writes; fail loudly if one leaks. *)
        raise (Eval.Error ("unexpected write in f^rw: " ^ k)))
      ~compute
      ~declare:(fun d k ->
        match d with
        | Ast.Decl_read -> log_read k
        | Ast.Decl_write -> writes := k :: !writes)
      ()
  in
  let _ = Eval.eval host t.rw_func args in
  Rwset.make ~reads:!reads ~writes:!writes

(* One-shot differential check of a (typically hand-written) f^rw
   against its source: on each sample input, the keys the source
   actually touches must be exactly the keys the residual predicts.
   The source runs against [read] with a write buffer, mirroring the
   speculative execution: reads served from the function's own writes
   are not storage reads. Nondeterministic sources are pinned to
   constants and external services stubbed out, so the check covers the
   control paths those pinned values select — a registration-time smoke
   test, not a proof. *)
let check_manual t ~read ~samples =
  let actual_accesses args =
    let reads = ref [] and writes = ref [] in
    let buffer = ref [] in
    let host =
      Eval.host
        ~read:(fun k ->
          match List.assoc_opt k !buffer with
          | Some v -> v
          | None ->
              if not (List.mem k !reads) then reads := k :: !reads;
              read k)
        ~write:(fun k v ->
          writes := k :: !writes;
          buffer := (k, v) :: List.remove_assoc k !buffer)
        ~declare:(fun _ _ -> ())
        ~time_now:(fun () -> 0L)
        ~random_int:(fun _ -> 0L)
        ~external_call:(fun _ _ -> Dval.Unit)
        ()
    in
    let _ = Eval.eval host t.source args in
    Rwset.make ~reads:!reads ~writes:!writes
  in
  let check_one i args =
    match actual_accesses args with
    | exception Eval.Error m ->
        Error
          (Printf.sprintf "%s: sample %d: source execution faulted: %s"
             t.source.Ast.fn_name i m)
    | actual -> (
        match predict t ~read args with
        | exception Eval.Error m ->
            Error
              (Printf.sprintf "%s: sample %d: f^rw faulted: %s"
                 t.source.Ast.fn_name i m)
        | predicted ->
            if Rwset.equal actual predicted then Ok ()
            else
              Error
                (Format.asprintf
                   "%s: sample %d: f^rw predicts %a but the source accesses \
                    %a"
                   t.source.Ast.fn_name i Rwset.pp predicted Rwset.pp actual))
  in
  let rec go i = function
    | [] -> Ok ()
    | args :: rest -> (
        match check_one i args with Ok () -> go (i + 1) rest | e -> e)
  in
  go 0 samples
