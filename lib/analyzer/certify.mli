(** Translation validation of f^rw against the compiled bytecode
    (§3.3/§4 hardening).

    The runtime's safety argument needs the registered f^rw to {e
    over-approximate} what a function actually does. Deriving both
    sides from the same Fdsl AST leaves the Fdsl→Wasm compiler — and
    every hand-supplied manual f^rw — inside the trusted base. This
    module closes that gap: {!Wasm.Effect} re-derives the read/write
    key shapes from the {e compiled} instruction stream, and [check]
    proves, shape by shape, that they fall inside what registration
    declared. After a successful check the TCB for effect soundness is
    the VM and this checker; the compiler and the registrant are
    untrusted.

    Checks performed per bytecode access:
    - {b coverage}: the access shape is subsumed
      ({!Keyshape.subsumes}) by some declared shape of the same kind —
      both against the source summary and against the summary of the
      registered [rw_func];
    - {b origin adequacy}: among the declared shapes that cover it, at
      least one carries an origin no weaker than the access's actual
      origin (catches a dependent read demoted to input-determined);
    - {b classification agreement}: a [Static] classification admits
      only [Const_only]/[Input_only] key origins, and any
      analyzer-derived classification admits no [Opaque_dep] key (the
      taint pass: an opaque hole reaching a key is only legal under a
      [Manual] f^rw that declares it);
    - {b externals}: every [external.call] site must be matched by the
      source summary's external flag.

    Certification proves the safety direction (no undeclared effect);
    {e exactness} of f^rw remains checked at runtime by validation, as
    in the paper. *)

type scope = Vs_source | Vs_rw

type problem =
  | Uncovered of scope
      (** no declared shape of the access's kind subsumes it *)
  | Weak_origin of {
      scope : scope;
      declared : Absint.origin;
      actual : Absint.origin;
    }
      (** every covering declared shape has a weaker origin than the
          bytecode exhibits *)
  | Static_violation of Absint.origin
      (** classified [Static], but a key origin exceeds [Input_only] *)
  | Opaque_key
      (** analyzer-derived classification, yet an [Opaque_dep] hole
          reaches a key *)
  | Undeclared_external of string
      (** an [external.call] site with no external flag in the source
          summary *)
  | Unanalyzable of string  (** the bytecode analysis itself failed *)

type issue = { i_access : Wasm.Effect.access option; i_problem : problem }
(** [i_access = None] only for [Undeclared_external]/[Unanalyzable];
    otherwise the offending access, whose [a_path] is the
    instruction-path diagnostic. *)

type report = {
  c_fn : string;
  c_classification : Derive.classification option;
      (** raw (pre-optimizer) classification the checks ran against *)
  c_effect : Wasm.Effect.summary option;
  c_issues : issue list;
}

val check :
  source:Fdsl.Ast.func ->
  modul:Wasm.Wmodule.t ->
  ?derived:Derive.t ->
  unit ->
  report
(** [derived] is the {e raw} derivation (or the manual pairing); omit
    it for functions registered without an f^rw — they are then checked
    against the source summary only. *)

val certified : report -> bool

val pp_issue : Format.formatter -> issue -> unit

val pp_report : Format.formatter -> report -> unit
(** Multi-line: verdict, bytecode shapes, then issues (if any). *)

val pp_failure : Format.formatter -> report -> unit
(** One line per issue — what registration embeds in its error. *)
