(** Whole-program pairwise conflict analysis over key shapes.

    Consumes the per-function {!Absint.summary} of every registered
    function and decides, for each unordered pair, whether their
    footprints are provably disjoint, overlap only on reads, or may
    conflict (some write shape of one overlaps some shape of the other).
    Because {!Absint.overlap} over-approximates, [Disjoint] is a proof;
    [May_conflict] may be spurious.

    The report also flags:
    - {e read-modify-write} functions (a write shape overlapping one of
      the same function's read shapes — the pattern that makes the LVI
      write-lock dominance and intent machinery load-bearing), and
    - {e order-ambiguous lock pairs}: two shapes that a pair of
      functions may both lock (with at least one write) whose concrete
      lexicographic order is not statically fixed. These are exactly
      the pairs that would deadlock if lock acquisition were not
      globally sorted (§3.6); the report documents that the sorted
      discipline is required, it does not indicate a bug. *)

type verdict = Disjoint | Read_share | May_conflict

type pair = {
  p_a : string;
  p_b : string;
  p_verdict : verdict;
  p_witness : (Absint.shape * Absint.shape) option;
      (** For [May_conflict], a (write, other) shape pair that overlaps;
          for [Read_share], an overlapping read pair. *)
}

type report = {
  r_summaries : Absint.summary list;  (** in input order *)
  r_pairs : pair list;  (** strict upper triangle, input order *)
  r_rmw : (string * Absint.shape list) list;
      (** function -> write shapes that overlap its own reads *)
  r_order_hazards : (string * string * Absint.shape * Absint.shape) list;
      (** (fn_a, fn_b, shape1, shape2): both functions may lock both
          shapes, at least one lock is a write, and shape1/shape2 have
          no statically fixed key order. *)
}

val verdict_of : Absint.summary -> Absint.summary -> verdict * (Absint.shape * Absint.shape) option

val build : Absint.summary list -> report

val find_pair : report -> string -> string -> verdict option
(** Order-insensitive lookup; [Some May_conflict] for a self-pair with
    an rmw shape, [Some Read_share]/[Some Disjoint] accordingly. *)

val degree : report -> string -> int
(** Number of {e other} functions this one may conflict with. *)

val pp_matrix : Format.formatter -> report -> unit
(** Table-1-style grid: one row per function, cells ['.'] (disjoint),
    ['r'] (read-read sharing) or ['C'] (may-conflict); the diagonal
    shows ['W'] when the function is a read-modify-write on some shape,
    ['-'] otherwise. *)

val pp_report : Format.formatter -> report -> unit
(** Matrix plus the rmw and order-hazard sections. *)
