open Fdsl.Ast

(* Every rewrite below must preserve the access trace of the program on
   all inputs: same Read/Write/Declare keys, in a compatible order, with
   conditional accesses staying conditional. Value-level simplification
   is free; effect-level restructuring is limited to dropping provably
   pure code and merging branches whose access multisets are
   syntactically identical. *)

(* ------------------------------------------------------------------ *)
(* Literals                                                           *)
(* ------------------------------------------------------------------ *)

let lit_dval = function
  | Unit -> Some Dval.Unit
  | Bool b -> Some (Dval.Bool b)
  | Int i -> Some (Dval.Int i)
  | Str s -> Some (Dval.Str s)
  | _ -> None

let is_lit e = lit_dval e <> None

let rec lit_of_dval = function
  | Dval.Unit -> Unit
  | Dval.Bool b -> Bool b
  | Dval.Int i -> Int i
  | Dval.Str s -> Str s
  | Dval.List vs -> List_lit (List.map lit_of_dval vs)
  | Dval.Record fs -> Record_lit (List.map (fun (k, v) -> (k, lit_of_dval v)) fs)

let truthy = function
  | Dval.Unit -> false
  | Dval.Bool b -> b
  | Dval.Int i -> not (Int64.equal i 0L)
  | Dval.Str s -> s <> ""
  | Dval.List l -> l <> []
  | Dval.Record _ -> true

(* ------------------------------------------------------------------ *)
(* Variables                                                          *)
(* ------------------------------------------------------------------ *)

(* Let-bound variables and parameters share one environment in Eval, so
   both Var and Input count as occurrences and both are shadowed by Let
   and Foreach binders. *)
let rec occurs x = function
  | Var y | Input y -> String.equal x y
  | Unit | Bool _ | Int _ | Str _ | Time_now | Random_int _ -> false
  | Let (y, v, b) -> occurs x v || ((not (String.equal x y)) && occurs x b)
  | Foreach (y, l, b) ->
      occurs x l || ((not (String.equal x y)) && occurs x b)
  | Seq es | Concat es | List_lit es -> List.exists (occurs x) es
  | If (a, b, c) -> occurs x a || occurs x b || occurs x c
  | Binop (_, a, b)
  | Append (a, b)
  | Prepend (a, b)
  | Concat_list (a, b)
  | Take (a, b)
  | Nth (a, b)
  | Write (a, b)
  | Set_field (a, _, b) ->
      occurs x a || occurs x b
  | Not e
  | Str_of_int e
  | Length e
  | Field (e, _)
  | Read e
  | Compute (_, e)
  | Opaque e
  | Declare (_, e)
  | External (_, e) ->
      occurs x e
  | Record_lit fs -> List.exists (fun (_, e) -> occurs x e) fs

(* Substitute a closed value for a variable. [v] has no free variables,
   so no capture is possible; only shadowing must be respected. *)
let rec subst x v = function
  | (Var y | Input y) when String.equal x y -> v
  | (Unit | Bool _ | Int _ | Str _ | Var _ | Input _ | Time_now | Random_int _)
    as e ->
      e
  | Let (y, w, b) ->
      Let (y, subst x v w, if String.equal x y then b else subst x v b)
  | Foreach (y, l, b) ->
      Foreach (y, subst x v l, if String.equal x y then b else subst x v b)
  | Seq es -> Seq (List.map (subst x v) es)
  | Concat es -> Concat (List.map (subst x v) es)
  | List_lit es -> List_lit (List.map (subst x v) es)
  | If (a, b, c) -> If (subst x v a, subst x v b, subst x v c)
  | Binop (op, a, b) -> Binop (op, subst x v a, subst x v b)
  | Append (a, b) -> Append (subst x v a, subst x v b)
  | Prepend (a, b) -> Prepend (subst x v a, subst x v b)
  | Concat_list (a, b) -> Concat_list (subst x v a, subst x v b)
  | Take (a, b) -> Take (subst x v a, subst x v b)
  | Nth (a, b) -> Nth (subst x v a, subst x v b)
  | Write (a, b) -> Write (subst x v a, subst x v b)
  | Set_field (a, n, b) -> Set_field (subst x v a, n, subst x v b)
  | Not e -> Not (subst x v e)
  | Str_of_int e -> Str_of_int (subst x v e)
  | Length e -> Length (subst x v e)
  | Field (e, n) -> Field (subst x v e, n)
  | Read e -> Read (subst x v e)
  | Compute (ms, e) -> Compute (ms, subst x v e)
  | Opaque e -> Opaque (subst x v e)
  | Declare (d, e) -> Declare (d, subst x v e)
  | External (s, e) -> External (s, subst x v e)
  | Record_lit fs -> Record_lit (List.map (fun (n, e) -> (n, subst x v e)) fs)

(* ------------------------------------------------------------------ *)
(* Constant folding                                                   *)
(* ------------------------------------------------------------------ *)

let fold_binop op a b =
  match (op, lit_dval a, lit_dval b) with
  (* And/Or short-circuit in Eval, so a constant-falsy (-truthy) left
     operand decides the result without evaluating the right one —
     folding away [b] drops no accesses the source would perform. A
     constant left that does NOT short-circuit only folds when [b] is
     itself a literal. *)
  | And, Some va, _ when not (truthy va) -> Some (Bool false)
  | And, Some _, Some vb -> Some (Bool (truthy vb))
  | Or, Some va, _ when truthy va -> Some (Bool true)
  | Or, Some _, Some vb -> Some (Bool (truthy vb))
  | _, Some va, Some vb -> (
      match (op, va, vb) with
      | Eq, _, _ -> Some (Bool (Dval.equal va vb))
      | Ne, _, _ -> Some (Bool (not (Dval.equal va vb)))
      | Add, Dval.Int x, Dval.Int y -> Some (Int (Int64.add x y))
      | Sub, Dval.Int x, Dval.Int y -> Some (Int (Int64.sub x y))
      | Mul, Dval.Int x, Dval.Int y -> Some (Int (Int64.mul x y))
      | Div, Dval.Int x, Dval.Int y when not (Int64.equal y 0L) ->
          Some (Int (Int64.div x y))
      | Mod, Dval.Int x, Dval.Int y when not (Int64.equal y 0L) ->
          Some (Int (Int64.rem x y))
      | Lt, Dval.Int x, Dval.Int y -> Some (Bool (Int64.compare x y < 0))
      | Gt, Dval.Int x, Dval.Int y -> Some (Bool (Int64.compare x y > 0))
      | Le, Dval.Int x, Dval.Int y -> Some (Bool (Int64.compare x y <= 0))
      | Ge, Dval.Int x, Dval.Int y -> Some (Bool (Int64.compare x y >= 0))
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Branch collapsing                                                  *)
(* ------------------------------------------------------------------ *)

(* An arm qualifies for collapsing when its only effects are Declares
   with effect-free keys: its access multiset is then a static set of
   (kind, key-expr) pairs, independent of evaluation order. *)
let rec collect_declares e acc =
  match e with
  | Declare (d, k) ->
      if contains_effects k then None else Some ((d, k) :: acc)
  | Seq es ->
      List.fold_left
        (fun acc e ->
          match acc with None -> None | Some acc -> collect_declares e acc)
        (Some acc) es
  | e -> if contains_effects e then None else Some acc

let arms_access_equal t e =
  match (collect_declares t [], collect_declares e []) with
  | Some dt, Some de ->
      List.sort Stdlib.compare dt = List.sort Stdlib.compare de
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The simplifier                                                     *)
(* ------------------------------------------------------------------ *)

(* [needed] = is this expression's value observed? When it is not, value
   wrappers unwrap to their (effectful) children and pure code drops —
   mirroring what [Derive.residualize] does, so residuals and sources
   are treated uniformly. Termination: every recursive call is on a
   strict subterm, on an already-simplified term at a strictly lower
   [needed] level, or on a substitution result with one fewer free
   variable. *)
let rec simp ~strip ~needed e =
  match e with
  | Unit | Bool _ | Int _ | Str _ | Input _ | Var _ | Time_now | Random_int _
    ->
      e
  | Read k -> Read (simp ~strip ~needed:true k)
  | Write (k, v) ->
      Write (simp ~strip ~needed:true k, simp ~strip ~needed:true v)
  | Declare (d, k) -> Declare (d, simp ~strip ~needed:true k)
  | External (svc, p) -> External (svc, simp ~strip ~needed:true p)
  | Opaque e1 ->
      (* An analysis barrier by design: never fold through it. *)
      Opaque (simp ~strip ~needed e1)
  | Compute (ms, e1) ->
      let e1' = simp ~strip ~needed:true e1 in
      if strip && is_lit e1' then e1' else Compute (ms, e1')
  | Seq es -> simp_seq ~strip ~needed es
  | Let (x, v, b) -> (
      let b' = simp ~strip ~needed b in
      if not (occurs x b') then simp_seq ~strip ~needed [ v; b' ]
      else
        let v' = simp ~strip ~needed:true v in
        match lit_dval v' with
        | Some _ -> simp ~strip ~needed (subst x v' b')
        | None -> Let (x, v', b'))
  | If (c, t, e1) -> (
      let c' = simp ~strip ~needed:true c in
      match lit_dval c' with
      | Some v ->
          (* Eval takes the same branch on every input; the untaken arm
             and its accesses never happen. *)
          simp ~strip ~needed (if truthy v then t else e1)
      | None ->
          let t' = simp ~strip ~needed t in
          let e' = simp ~strip ~needed e1 in
          if t' = e' then simp_seq ~strip ~needed [ c'; t' ]
          else if (not needed) && arms_access_equal t' e' then
            simp_seq ~strip ~needed [ c'; t' ]
          else If (c', t', e'))
  | Binop (op, a, b) -> (
      let a' = simp ~strip ~needed:true a in
      let b' = simp ~strip ~needed:true b in
      match fold_binop op a' b' with
      | Some e' -> e'
      | None ->
          (* And/Or evaluate their right operand conditionally; keep the
             node even when the value is dropped so conditional accesses
             stay conditional. Strict operators sequence. *)
          if needed || op = And || op = Or then Binop (op, a', b')
          else simp_seq ~strip ~needed [ a'; b' ])
  | Not e1 ->
      if needed then
        let e1' = simp ~strip ~needed:true e1 in
        match lit_dval e1' with
        | Some v -> Bool (not (truthy v))
        | None -> Not e1'
      else simp ~strip ~needed e1
  | Str_of_int e1 ->
      if needed then
        let e1' = simp ~strip ~needed:true e1 in
        match e1' with Int i -> Str (Int64.to_string i) | _ -> Str_of_int e1'
      else simp ~strip ~needed e1
  | Length e1 ->
      if needed then Length (simp ~strip ~needed:true e1)
      else simp ~strip ~needed e1
  | Field (e1, n) -> (
      if not needed then simp ~strip ~needed e1
      else
        match simp ~strip ~needed:true e1 with
        | Record_lit fs
          when List.mem_assoc n fs
               && List.for_all (fun (_, e) -> not (contains_effects e)) fs ->
            List.assoc n fs
        | e1' -> Field (e1', n))
  | Set_field (e1, n, v) ->
      if needed then
        Set_field (simp ~strip ~needed:true e1, n, simp ~strip ~needed:true v)
      else simp_seq ~strip ~needed [ e1; v ]
  | Concat es ->
      if needed then
        let es' = List.map (simp ~strip ~needed:true) es in
        let all_str =
          List.for_all (function Str _ -> true | _ -> false) es'
        in
        if all_str then
          Str
            (String.concat ""
               (List.map (function Str s -> s | _ -> assert false) es'))
        else Concat es'
      else simp_seq ~strip ~needed es
  | List_lit es ->
      if needed then List_lit (List.map (simp ~strip ~needed:true) es)
      else simp_seq ~strip ~needed es
  | Record_lit fs ->
      if needed then
        Record_lit (List.map (fun (n, e) -> (n, simp ~strip ~needed:true e)) fs)
      else simp_seq ~strip ~needed (List.map snd fs)
  | Append (a, b) -> simp_pair ~strip ~needed (fun a b -> Append (a, b)) a b
  | Prepend (a, b) -> simp_pair ~strip ~needed (fun a b -> Prepend (a, b)) a b
  | Concat_list (a, b) ->
      simp_pair ~strip ~needed (fun a b -> Concat_list (a, b)) a b
  | Take (a, b) -> simp_pair ~strip ~needed (fun a b -> Take (a, b)) a b
  | Nth (a, b) -> simp_pair ~strip ~needed (fun a b -> Nth (a, b)) a b
  | Foreach (x, l, b) ->
      Foreach (x, simp ~strip ~needed:true l, simp ~strip ~needed b)

and simp_pair ~strip ~needed mk a b =
  if needed then
    mk (simp ~strip ~needed:true a) (simp ~strip ~needed:true b)
  else simp_seq ~strip ~needed [ a; b ]

and simp_seq ~strip ~needed es =
  (* Simplify elements (only the last value can be observed), flatten
     nested Seqs, drop pure non-final elements, and drop a pure final
     element when the value is unobserved. *)
  let rec flatten = function
    | [] -> []
    | [ last ] -> (
        match simp ~strip ~needed last with Seq es -> es | e -> [ e ])
    | e :: rest -> (
        (match simp ~strip ~needed:false e with Seq es -> es | e -> [ e ])
        @ flatten rest)
  in
  let es' = flatten es in
  let rec prune = function
    | [] -> []
    | [ last ] ->
        if (not needed) && not (contains_effects last) then [] else [ last ]
    | e :: rest ->
        let rest' = prune rest in
        if contains_effects e then e :: rest'
        else if rest' = [] && needed then [ e ] (* keep the value *)
        else rest'
  in
  match prune es' with [] -> Unit | [ e ] -> e | es'' -> Seq es''

let simplify ?(strip_compute = false) ?(value_needed = true) e =
  simp ~strip:strip_compute ~needed:value_needed e

(* ------------------------------------------------------------------ *)
(* Read demotion                                                      *)
(* ------------------------------------------------------------------ *)

(* Demote [Read k] to [Declare (Decl_read, k)] when the read's value
   neither feeds a key/control decision (not in [influencing]) nor is
   structurally consumed ([needed] — a Declare evaluates to Unit, which
   would fault a value consumer). Traversal order and id assignment
   mirror [Derive.relevance]: ids are assigned left-to-right, each Read
   numbered after its key subtree. Demotion preserves structure and
   variable occurrences, so no id shifting is required. *)
let demote influencing body =
  let counter = ref 0 in
  let rec go needed e =
    match e with
    | Unit | Bool _ | Int _ | Str _ | Input _ | Var _ | Time_now
    | Random_int _ ->
        e
    | Read k ->
        let k' = go true k in
        let id = !counter in
        incr counter;
        if List.mem id influencing || needed then Read k'
        else Declare (Decl_read, k')
    | Write (k, v) ->
        let k' = go true k in
        Write (k', go false v)
    | Declare (d, k) -> Declare (d, go true k)
    | External (svc, p) -> External (svc, go true p)
    | Opaque e1 -> Opaque (go needed e1)
    | Compute (ms, e1) -> Compute (ms, go true e1)
    | Seq es ->
        let n = List.length es in
        Seq (List.mapi (fun i e -> go (if i = n - 1 then needed else false) e) es)
    | Let (x, v, b) ->
        let v' = go (occurs x b) v in
        Let (x, v', go needed b)
    | If (c, t, e1) ->
        let c' = go true c in
        let t' = go needed t in
        If (c', t', go needed e1)
    | Foreach (x, l, b) ->
        let l' = go true l in
        Foreach (x, l', go needed b)
    (* Value operators consume their children's values. *)
    | Binop (op, a, b) ->
        let a' = go true a in
        Binop (op, a', go true b)
    | Not e1 -> Not (go true e1)
    | Str_of_int e1 -> Str_of_int (go true e1)
    | Length e1 -> Length (go true e1)
    | Field (e1, n) -> Field (go true e1, n)
    | Set_field (a, n, b) ->
        let a' = go true a in
        Set_field (a', n, go true b)
    | Concat es -> Concat (List.map (go true) es)
    | List_lit es -> List_lit (List.map (go true) es)
    | Record_lit fs -> Record_lit (List.map (fun (n, e) -> (n, go true e)) fs)
    | Append (a, b) ->
        let a' = go true a in
        Append (a', go true b)
    | Prepend (a, b) ->
        let a' = go true a in
        Prepend (a', go true b)
    | Concat_list (a, b) ->
        let a' = go true a in
        Concat_list (a', go true b)
    | Take (a, b) ->
        let a' = go true a in
        Take (a', go true b)
    | Nth (a, b) ->
        let a' = go true a in
        Nth (a', go true b)
  in
  go false body

(* ------------------------------------------------------------------ *)
(* Reclassification                                                   *)
(* ------------------------------------------------------------------ *)

let rec count_read_nodes = function
  | Read k -> 1 + count_read_nodes k
  | Unit | Bool _ | Int _ | Str _ | Input _ | Var _ | Time_now | Random_int _
    ->
      0
  | Let (_, a, b)
  | Binop (_, a, b)
  | Append (a, b)
  | Prepend (a, b)
  | Concat_list (a, b)
  | Take (a, b)
  | Nth (a, b)
  | Write (a, b)
  | Set_field (a, _, b)
  | Foreach (_, a, b) ->
      count_read_nodes a + count_read_nodes b
  | Seq es | Concat es | List_lit es ->
      List.fold_left (fun acc e -> acc + count_read_nodes e) 0 es
  | If (a, b, c) -> count_read_nodes a + count_read_nodes b + count_read_nodes c
  | Not e | Str_of_int e | Length e | Field (e, _) | Compute (_, e) | Opaque e
  | Declare (_, e)
  | External (_, e) ->
      count_read_nodes e
  | Record_lit fs ->
      List.fold_left (fun acc (_, e) -> acc + count_read_nodes e) 0 fs

let rec has_compute = function
  | Compute _ -> true
  | Unit | Bool _ | Int _ | Str _ | Input _ | Var _ | Time_now | Random_int _
    ->
      false
  | Let (_, a, b)
  | Binop (_, a, b)
  | Append (a, b)
  | Prepend (a, b)
  | Concat_list (a, b)
  | Take (a, b)
  | Nth (a, b)
  | Write (a, b)
  | Set_field (a, _, b)
  | Foreach (_, a, b) ->
      has_compute a || has_compute b
  | Seq es | Concat es | List_lit es -> List.exists has_compute es
  | If (a, b, c) -> has_compute a || has_compute b || has_compute c
  | Not e | Str_of_int e | Length e | Field (e, _) | Read e | Opaque e
  | Declare (_, e)
  | External (_, e) ->
      has_compute e
  | Record_lit fs -> List.exists (fun (_, e) -> has_compute e) fs

let classify body : Derive.classification =
  if has_compute body then Expensive
  else
    match count_read_nodes body with 0 -> Static | n -> Dependent n

let rank : Derive.classification -> int = function
  | Static -> 0
  | Dependent _ -> 1
  | Expensive -> 2
  | Manual -> 3

let better (a : Derive.classification) (b : Derive.classification) =
  (* Is [a] strictly cheaper than [b]? *)
  match (a, b) with
  | Dependent n, Dependent m -> n < m
  | _ -> rank a < rank b

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let optimize (d : Derive.t) =
  match d.classification with
  | Manual -> d
  | _ ->
      let body = simp ~strip:true ~needed:false d.rw_func.body in
      let rel = Derive.relevance { d.rw_func with body } in
      let body = demote rel.rel_reads body in
      let body = simp ~strip:true ~needed:false body in
      let classification = classify body in
      if better d.classification classification then d
      else
        { d with rw_func = { d.rw_func with body }; classification }

let upgraded ~(before : Derive.t) ~(after : Derive.t) =
  better after.classification before.classification

let specialize (f : func) bindings =
  let body =
    List.fold_left
      (fun body (x, v) -> subst x (lit_of_dval v) body)
      f.body bindings
  in
  { f with body = simplify body }
