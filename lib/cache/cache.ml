type entry = { value : Dval.t; version : int }

type t = {
  items : (string, entry) Hashtbl.t;
  stamps : (string, int) Hashtbl.t; (* LRU recency, keyed like items *)
  latency : float;
  capacity : int option;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(access_latency = 0.5) ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Cache.create: capacity must be positive"
  | _ -> ());
  {
    items = Hashtbl.create 1024;
    stamps = Hashtbl.create 1024;
    latency = access_latency;
    capacity;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t key =
  t.clock <- t.clock + 1;
  Hashtbl.replace t.stamps key t.clock

let find t key =
  match Hashtbl.find_opt t.items key with
  | Some e ->
      touch t key;
      Some e
  | None -> None

let record t = function
  | Some _ as r ->
      t.hits <- t.hits + 1;
      r
  | None ->
      t.misses <- t.misses + 1;
      None

let get t key =
  Sim.Engine.sleep t.latency;
  record t (find t key)

let get_many t keys =
  Sim.Engine.sleep t.latency;
  List.map (fun k -> (k, record t (find t k))) keys

let version_of t key =
  match Hashtbl.find_opt t.items key with
  | Some { version; _ } -> version
  | None -> -1

let peek t key = Hashtbl.find_opt t.items key

(* Evict the least recently used entry. O(n); fine at cache sizes the
   simulation uses, and only runs when a capacity is configured. *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun k stamp ->
      match !victim with
      | Some (_, best) when best <= stamp -> ()
      | _ -> victim := Some (k, stamp))
    t.stamps;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.items k;
      Hashtbl.remove t.stamps k;
      t.evictions <- t.evictions + 1
  | None -> ()

let update t key value ~version =
  match Hashtbl.find_opt t.items key with
  | Some existing when existing.version >= version ->
      (* Rejected (stale or duplicate) deliveries must not touch the
         LRU stamp: promoting a stale duplicate to MRU would get
         genuinely fresh keys evicted first under capacity. *)
      ()
  | Some _ | None ->
      (match t.capacity with
      | Some cap
        when (not (Hashtbl.mem t.items key)) && Hashtbl.length t.items >= cap
        ->
          evict_one t
      | _ -> ());
      Hashtbl.replace t.items key { value; version };
      touch t key

(* Version-guarded eviction for invalidation-mode propagation: only an
   entry strictly older than the invalidating write is dropped, so a
   reordered stale invalidation cannot evict data that is already as
   fresh as (or fresher than) the write it announces. *)
let invalidate t key ~version =
  match Hashtbl.find_opt t.items key with
  | Some existing when existing.version < version ->
      Hashtbl.remove t.items key;
      Hashtbl.remove t.stamps key;
      true
  | Some _ | None -> false

let wipe t =
  Hashtbl.reset t.items;
  Hashtbl.reset t.stamps

let size t = Hashtbl.length t.items

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let snapshot t =
  Hashtbl.fold (fun k { value; version } acc -> (k, value, version) :: acc) t.items []

let restore t entries =
  List.iter (fun (k, value, version) -> update t k value ~version) entries

module Leases = Leases
