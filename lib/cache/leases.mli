(** Near-user read-lease cache — the site half of the lease protocol.

    Keyed like {!Cache}: one grant per key, carrying the expiry instant,
    the primary version the lease certifies, and the instant the lease
    authority issued it. A statically read-only invocation whose whole
    read set is {!covered} may be served from the local cache with no
    LVI round trip — see [Runtime.invoke]'s [lease_local] fast path.

    Everything is latency-free bookkeeping on the global virtual clock
    ([now] is always passed in), mirroring {!Cache.peek}. *)

type t

val create : unit -> t

val install : t -> key:string -> version:int -> issued:float -> until:float -> bool
(** Install a grant that arrived piggybacked on an LVI reply or a
    cache-update record. Refused (returning [false]) when a later
    revocation already fenced the key ([issued] at or before the fence —
    the grant was in flight while a writer settled the key) or when a
    grant with a later expiry is already held. *)

val valid : t -> now:float -> key:string -> version:int -> bool
(** An unexpired grant is held for [key] and it certifies exactly
    [version] — the version the local cache must still hold for a local
    read to be current. *)

val covered : t -> now:float -> (string * int) list -> bool
(** Every (key, cached-version) pair of a read set is {!valid}; [false]
    for the empty read set (nothing to certify, nothing to serve). *)

val drop : t -> now:float -> string list -> unit
(** Revocation (or local surrender) of the given keys: forget their
    grants and fence each key at [now], so grants issued before this
    instant but still in flight are refused on arrival. Idempotent —
    duplicated revocations only re-fence. *)

val live : t -> now:float -> int
(** Unexpired grants currently held. *)

val installed : t -> int
(** Cumulative grants accepted by {!install}. *)

val refused : t -> int
(** Cumulative grants refused (fenced or superseded). *)

val revoked : t -> int
(** Cumulative held grants dropped by {!drop}. *)
