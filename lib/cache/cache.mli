(** Near-user, eventually consistent versioned cache (§3.1, §3.2).

    Holds (value, version) pairs fed by LVI responses and by the local
    runtime after its own successful commits. Needs neither durability
    nor consistency: a miss is reported to the LVI request as version
    [-1], which forces validation to fail and the response to carry the
    fresh value — so a wiped cache repopulates itself through normal
    protocol traffic ("gradual bootstrap"). *)

type entry = { value : Dval.t; version : int }

type t

val create : ?access_latency:float -> ?capacity:int -> unit -> t
(** Default access latency 0.5 ms — an in-memory store colocated with
    the runtime (the paper uses DynamoDB here only to isolate protocol
    effects; §5.7 notes ScyllaDB/`in-memory` caches are the intended
    deployment). [capacity] bounds the entry count with LRU eviction;
    evicted keys simply become misses and are repaired by the next LVI
    response, like any other cold entry. Unbounded by default. *)

val get : t -> string -> entry option
(** Blocking read; [None] on miss. *)

val get_many : t -> string list -> (string * entry option) list
(** Batch read: one access latency. *)

val version_of : t -> string -> int
(** Latency-free version probe; [-1] on miss, matching the protocol's
    miss marker. *)

val peek : t -> string -> entry option
(** Latency-free read that touches no hit/miss counter or LRU stamp.
    Used to capture the (value, version) snapshot that a speculation
    executes against — see [Runtime.invoke]. *)

val update : t -> string -> Dval.t -> version:int -> unit
(** Install a (value, version) pair if newer than what is cached.
    Latency-free: updates ride on protocol responses. A rejected
    (stale or duplicate) install leaves the LRU stamp untouched, so
    replayed deliveries cannot promote cold entries over fresh ones. *)

val invalidate : t -> string -> version:int -> bool
(** [invalidate t key ~version] evicts [key] if the cached entry is
    strictly older than [version] (the version of a write committed at
    the primary), returning whether an entry was dropped. A hit on an
    entry at or past [version], or a miss, is a no-op — reordered or
    duplicated invalidations are harmless. Used by the invalidate-only
    propagation mode. *)

val wipe : t -> unit
(** Drop everything (failure injection / bootstrap experiments). *)

val size : t -> int

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val snapshot : t -> (string * Dval.t * int) list
(** Dump (key, value, version) triples — the persistent-cache extension
    of §3.2 that avoids re-bootstrapping after a restart. *)

val restore : t -> (string * Dval.t * int) list -> unit
(** Load a snapshot; per-key, newer versions win. *)

module Leases : module type of Leases
(** The near-user read-lease cache — companion bookkeeping to the value
    cache, keyed the same way. See {!Leases}. *)
