type grant = { issued : float; until : float; version : int }

type t = {
  held : (string, grant) Hashtbl.t;
  (* key -> instant of the last acknowledged revocation. A grant issued
     at or before the fence is refused on arrival: it was in flight when
     the writer settled the key, and honouring it would revive a lease
     the server already considers dead. *)
  fences : (string, float) Hashtbl.t;
  mutable installed : int;
  mutable refused : int;
  mutable revoked : int;
}

let create () =
  {
    held = Hashtbl.create 256;
    fences = Hashtbl.create 64;
    installed = 0;
    refused = 0;
    revoked = 0;
  }

let install t ~key ~version ~issued ~until =
  let fenced =
    match Hashtbl.find_opt t.fences key with
    | Some fence -> issued <= fence
    | None -> false
  in
  let newer =
    match Hashtbl.find_opt t.held key with
    | Some g -> until > g.until
    | None -> true
  in
  if fenced || not newer then begin
    t.refused <- t.refused + 1;
    false
  end
  else begin
    Hashtbl.replace t.held key { issued; until; version };
    t.installed <- t.installed + 1;
    true
  end

let valid t ~now ~key ~version =
  match Hashtbl.find_opt t.held key with
  | Some g -> g.until > now && g.version = version
  | None -> false

let covered t ~now reads =
  reads <> []
  && List.for_all (fun (key, version) -> valid t ~now ~key ~version) reads

let drop t ~now keys =
  List.iter
    (fun key ->
      if Hashtbl.mem t.held key then begin
        Hashtbl.remove t.held key;
        t.revoked <- t.revoked + 1
      end;
      (* Fence even keys not currently held: the revocation may have
         overtaken the grant it kills. Fences only move forward. *)
      match Hashtbl.find_opt t.fences key with
      | Some fence when fence >= now -> ()
      | _ -> Hashtbl.replace t.fences key now)
    keys

let live t ~now =
  Hashtbl.fold (fun _ g acc -> if g.until > now then acc + 1 else acc) t.held 0

let installed t = t.installed

let refused t = t.refused

let revoked t = t.revoked
