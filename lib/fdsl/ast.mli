(** The function DSL that application handlers are written in.

    This plays the role of the Rust source in the paper's toolchain:
    handlers are expressed as [func] values, compiled to the
    deterministic VM for execution ({!Compile}), and symbolically
    analyzed to derive [f^rw] ({!Analyzer.Derive}). The language is
    deliberately serverless-shaped — stateless, with explicit [Read] and
    [Write] storage operations, which is exactly what makes the
    read/write-set analysis tractable (§3.3).

    [Compute] is how a handler declares CPU work: it burns the given
    virtual milliseconds. [Opaque] is an analysis barrier modelling code
    the symbolic executor cannot see through; [Time_now] and
    [Random_int] model nondeterministic imports — the VM validator
    rejects functions using them (§4). [Declare] never appears in source
    programs; the analyzer emits it inside derived [f^rw] functions to
    record an access without fetching it. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div (** Evaluation fails on zero divisor. *)
  | Mod
  | Eq (** Structural equality on any values. *)
  | Ne
  | Lt (** Numeric comparisons require ints. *)
  | Gt
  | Le
  | Ge
  | And (** Truthiness conjunction; not short-circuiting. *)
  | Or

type decl = Decl_read | Decl_write

type expr =
  | Unit
  | Bool of bool
  | Int of int64
  | Str of string
  | Input of string (** A named parameter of the function. *)
  | Var of string (** A [Let]- or [Foreach]-bound variable. *)
  | Let of string * expr * expr
  | Seq of expr list (** Value of the last expression; [Unit] if empty. *)
  | If of expr * expr * expr (** Condition uses truthiness. *)
  | Binop of binop * expr * expr
  | Not of expr
  | Str_of_int of expr
  | Concat of expr list (** String concatenation; all parts must be strings. *)
  | List_lit of expr list
  | Append of expr * expr (** [Append list elem] adds at the end. *)
  | Prepend of expr * expr
  | Concat_list of expr * expr
  | Take of expr * expr (** [Take list n] keeps the first n elements. *)
  | Length of expr
  | Nth of expr * expr (** Fails out of bounds. *)
  | Record_lit of (string * expr) list
  | Field of expr * string
  | Set_field of expr * string * expr
  | Read of expr (** Storage read; the key expression must be a string. *)
  | Write of expr * expr (** Storage write; evaluates to [Unit]. *)
  | Foreach of string * expr * expr
      (** [Foreach (x, list, body)] maps [body] over [list], yielding the
          list of results. *)
  | Compute of float * expr (** Burn CPU milliseconds, then evaluate. *)
  | Opaque of expr (** Analysis barrier; transparent at runtime. *)
  | Time_now (** Nondeterministic: wall clock. *)
  | Random_int of int (** Nondeterministic: uniform in [0, n). *)
  | Declare of decl * expr
      (** Analyzer-emitted: evaluate the key, record the access, return
          [Unit] without touching storage. *)
  | External of string * expr
      (** Call an external service (§3.5) with a payload. Radical
          attaches an idempotency key so the provider executes at most
          once per request even when the function runs twice. Results
          must not feed storage keys (the analyzer rejects that). *)

type func = { fn_name : string; params : string list; body : expr }

val binop_name : binop -> string

val pp : Format.formatter -> expr -> unit

val pp_func : Format.formatter -> func -> unit

val contains_effects : expr -> bool
(** True if the subtree contains [Read], [Write], [Declare] or
    [Compute]. *)
