type op = {
  op_id : string;
  start : float;
  finish : float;
  reads : (string * Dval.t) list;
  writes : (string * Dval.t) list;
}

let pp_op fmt o =
  let pp_kv fmt (k, v) = Format.fprintf fmt "%s=%a" k Dval.pp v in
  let pp_kvs = Format.pp_print_list ~pp_sep:Format.pp_print_space pp_kv in
  Format.fprintf fmt "@[%s [%.2f,%.2f] reads(%a) writes(%a)@]" o.op_id o.start
    o.finish pp_kvs o.reads pp_kvs o.writes

module Smap = Map.Make (String)

let read_state state k =
  match Smap.find_opt k state with Some v -> v | None -> Dval.Unit

let applicable state op =
  List.for_all (fun (k, v) -> Dval.equal (read_state state k) v) op.reads

let apply state op =
  List.fold_left (fun st (k, v) -> Smap.add k v st) state op.writes

type verdict = Linearizable of string list | Not_linearizable | Inconclusive

exception Out_of_budget

(* Depth-first search over linearization prefixes. A pending op is a
   candidate when no other pending op finished before it started. *)
let decide ?(init = []) ?(budget = max_int) ops =
  let init_state =
    List.fold_left (fun st (k, v) -> Smap.add k v st) Smap.empty init
  in
  let ops = Array.of_list ops in
  let n = Array.length ops in
  let taken = Array.make n false in
  let nodes = ref 0 in
  let rec search state acc remaining =
    incr nodes;
    if !nodes > budget then raise Out_of_budget;
    if remaining = 0 then Some (List.rev acc)
    else begin
      let minimal i =
        (not taken.(i))
        &&
        let ok = ref true in
        for j = 0 to n - 1 do
          if (not taken.(j)) && j <> i && ops.(j).finish < ops.(i).start then
            ok := false
        done;
        !ok
      in
      let rec try_from i =
        if i >= n then None
        else if taken.(i) || not (minimal i) then try_from (i + 1)
        else if not (applicable state ops.(i)) then try_from (i + 1)
        else begin
          taken.(i) <- true;
          match
            search (apply state ops.(i)) (ops.(i).op_id :: acc) (remaining - 1)
          with
          | Some _ as r -> r
          | None ->
              taken.(i) <- false;
              try_from (i + 1)
        end
      in
      try_from 0
    end
  in
  match search init_state [] n with
  | Some order -> Linearizable order
  | None -> Not_linearizable
  | exception Out_of_budget -> Inconclusive

let witness ?init ops =
  match decide ?init ops with
  | Linearizable order -> Some order
  | Not_linearizable -> None
  | Inconclusive -> assert false (* unreachable: unbounded budget *)

let check ?init ops = witness ?init ops <> None
