(** Linearizability checking for transactional key-value histories.

    Radical claims Linearizability of whole function executions (§3.6):
    each handler atomically reads and writes a set of keys. The tests
    record one {!op} per client-visible execution — the values its reads
    observed and the writes it exposed — with real-time invocation and
    response instants, then ask [check] whether some legal total order
    explains the history.

    The checker is a Wing–Herlihy style exhaustive search: repeatedly
    pick an operation that no other *pending* operation really-precedes
    (finish < start), apply it if every read matches the simulated store
    state, and backtrack on failure. Exponential in the worst case, ample
    for test-sized histories (hundreds of operations with bounded
    concurrency). *)

type op = {
  op_id : string;
  start : float; (** Invocation instant. *)
  finish : float; (** Response instant; must be [>= start]. *)
  reads : (string * Dval.t) list; (** Key and the value observed. *)
  writes : (string * Dval.t) list;
}

type verdict = Linearizable of string list | Not_linearizable | Inconclusive

val decide :
  ?init:(string * Dval.t) list -> ?budget:int -> op list -> verdict
(** Budgeted check: the search gives up with [Inconclusive] after
    visiting [budget] nodes (default unbounded). Long histories of
    highly contended concurrent operations can otherwise take the
    exponential worst case — the chaos campaign treats [Inconclusive]
    as a pass, never as a violation. [Linearizable] carries the op ids
    in a valid linearization order. *)

val check : ?init:(string * Dval.t) list -> op list -> bool
(** [check history] is true iff the history is linearizable starting
    from [init] (absent keys read as [Dval.Unit]). *)

val witness : ?init:(string * Dval.t) list -> op list -> string list option
(** Like [check] but returns the op ids in a valid linearization
    order. *)

val pp_op : Format.formatter -> op -> unit
