(** Simulated wide-area message transport.

    A [t] carries messages between locations with latency sampled from the
    RTT matrix plus multiplicative jitter, giving medians that match the
    configured matrix and a realistic p99 tail. Services are typed request
    handlers; every incoming request runs in its own fiber so a slow
    handler does not serialize the service.

    Fault injection hooks decide per message whether it is delivered,
    dropped, or delayed — used by the tests and by the chaos nemesis to
    exercise lost followups, late messages and partitions in the LVI
    protocol. Hooks compose: the legacy [set_fault] slot coexists with any
    number of [add_fault] hooks, so a nemesis campaign and a test-local
    hook can be active at once. *)

type t

type fault = Deliver | Drop | Delay of float | Duplicate
(** [Duplicate] models at-least-once delivery: the message arrives
    twice, each copy with an independently sampled latency (so the
    duplicate may overtake the original). Receivers must dedupe — the
    LVI server keys on execution ids, and cache-update installs are
    version-guarded. *)

val create :
  ?rtt:(Location.t -> Location.t -> float) ->
  ?jitter_sigma:float ->
  ?tracer:Metrics.Tracer.t ->
  ?fault_rng:Sim.Rng.t ->
  rng:Sim.Rng.t ->
  unit ->
  t
(** [create ~rng ()] uses [Location.rtt] and a log-normal jitter with the
    given sigma (default 0.05; 0.0 disables jitter). With a [tracer]
    (default {!Metrics.Tracer.noop}), every delivered message records its
    one-way delay under the service label, and every fault-hook outcome
    is counted.

    [fault_rng] seeds the stream returned by {!fault_rng} (default: a
    fixed-seed generator). Jitter draws only from [rng]; fault decisions
    should only draw from the fault stream — this separation guarantees
    that enabling probabilistic faults does not shift the delivery jitter
    sampled for unaffected messages. *)

val set_tracer : t -> Metrics.Tracer.t -> unit

val fault_rng : t -> Sim.Rng.t
(** The transport's dedicated fault-decision stream. Probabilistic fault
    hooks must sample from this (or a private generator), never from the
    jitter stream. *)

val one_way : t -> Location.t -> Location.t -> float
(** Sample a one-way delay (RTT/2 × jitter). *)

val set_fault :
  t -> (src:Location.t -> dst:Location.t -> label:string -> fault) -> unit
(** Install the single-slot fault hook consulted once per message
    (requests, responses and one-way posts independently). [label] is the
    target service's name for requests and ["<name>:reply"] for
    responses, letting tests drop, say, only followup messages.
    Re-invoking replaces only this slot; hooks installed with
    {!add_fault} are unaffected. *)

val clear_fault : t -> unit
(** Remove the {!set_fault} slot hook (leaves {!add_fault} hooks alone). *)

val add_fault :
  t -> (src:Location.t -> dst:Location.t -> label:string -> fault) -> int
(** Install an additional fault hook and return a handle for
    {!remove_fault}. Hooks are consulted in installation order after the
    {!set_fault} slot; the first non-[Deliver] verdict decides. *)

val remove_fault : t -> int -> unit
(** Uninstall a hook by handle. Idempotent. *)

val active_faults : t -> int
(** Number of installed hooks (slot + stack). *)

val partition : t -> Location.t list -> int
(** [partition t group] installs a hook dropping every message that
    crosses the boundary between [group] and its complement — a network
    partition. Heal it with {!remove_fault}. *)

type ('req, 'resp) service

val serve :
  t -> loc:Location.t -> name:string -> ('req -> 'resp) -> ('req, 'resp) service
(** Register a handler at a location. The handler may block. *)

val service_location : ('req, 'resp) service -> Location.t

val call : t -> from:Location.t -> ('req, 'resp) service -> 'req -> 'resp
(** Round-trip RPC. If the request or response is dropped the caller
    blocks forever — use [call_timeout] when faults are active. *)

val call_timeout :
  t -> from:Location.t -> timeout:float -> ('req, 'resp) service -> 'req ->
  'resp option
(** Like [call] but returns [None] if no response arrived in [timeout].
    The timeout runs through {!Sim.Timer} and is cancelled as soon as
    the reply arrives; a reply that arrives after the timeout already
    fired is counted in {!late_replies} (and as a ["late_reply"] fault
    when tracing) rather than silently dropped. *)

val post : t -> from:Location.t -> ('req, 'resp) service -> 'req -> unit
(** One-way, fire-and-forget message; the response is discarded. Returns
    immediately. *)

val messages_sent : t -> int

val messages_dropped : t -> int

val messages_duplicated : t -> int
(** Messages a fault hook duplicated (each delivered twice). *)

val calls_timed_out : t -> int
(** [call_timeout] invocations that returned [None]. *)

val late_replies : t -> int
(** Replies that arrived after their call had already timed out. *)
