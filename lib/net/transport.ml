open Sim

type fault = Deliver | Drop | Delay of float | Duplicate

type hook_fn = src:Location.t -> dst:Location.t -> label:string -> fault

type handle = int

type t = {
  rtt : Location.t -> Location.t -> float;
  jitter_sigma : float;
  rng : Rng.t;
  fault_rng : Rng.t;
  (* Legacy single-slot hook ([set_fault]/[clear_fault]) plus a stack of
     independently installed hooks ([add_fault]/[remove_fault]). The slot
     keeps the historical replace-on-set semantics for tests while letting
     a nemesis driver coexist with test-local hooks. *)
  mutable base_hook : hook_fn option;
  mutable hooks : (handle * hook_fn) list; (* oldest first *)
  mutable next_handle : int;
  mutable tracer : Metrics.Tracer.t;
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable timed_out : int;
  mutable late : int;
}

type ('req, 'resp) service = {
  svc_loc : Location.t;
  svc_name : string;
  handler : 'req -> 'resp;
}

let create ?(rtt = Location.rtt) ?(jitter_sigma = 0.05)
    ?(tracer = Metrics.Tracer.noop) ?fault_rng ~rng () =
  {
    rtt;
    jitter_sigma;
    rng;
    (* Fault decisions draw from their own stream so that installing a
       probabilistic hook never shifts the jitter multipliers sampled for
       unaffected messages. The default is a fixed-seed generator rather
       than [Rng.split rng] so that creating a transport does not perturb
       the jitter stream of pre-existing seeded runs either. *)
    fault_rng =
      (match fault_rng with Some r -> r | None -> Rng.create 0x6661756c74);
    base_hook = None;
    hooks = [];
    next_handle = 0;
    tracer;
    sent = 0;
    dropped = 0;
    duplicated = 0;
    timed_out = 0;
    late = 0;
  }

let set_tracer t tracer = t.tracer <- tracer

let fault_rng t = t.fault_rng

let one_way t src dst =
  let base = t.rtt src dst /. 2.0 in
  if t.jitter_sigma <= 0.0 then base
  else
    (* mu = -sigma^2/2 keeps the multiplier's mean at 1, so medians track
       the matrix while the tail furnishes a p99. *)
    let s = t.jitter_sigma in
    base *. Rng.lognormal t.rng ~mu:(-.s *. s /. 2.0) ~sigma:s

let set_fault t hook = t.base_hook <- Some hook

let clear_fault t = t.base_hook <- None

let add_fault t hook =
  let h = t.next_handle in
  t.next_handle <- t.next_handle + 1;
  t.hooks <- t.hooks @ [ (h, hook) ];
  h

let remove_fault t handle = t.hooks <- List.remove_assoc handle t.hooks

let active_faults t =
  List.length t.hooks + match t.base_hook with Some _ -> 1 | None -> 0

let partition t group =
  let inside loc = List.mem loc group in
  add_fault t (fun ~src ~dst ~label:_ ->
      if inside src <> inside dst then Drop else Deliver)

(* The legacy slot is consulted first, then added hooks in installation
   order; the first non-[Deliver] verdict decides the message's fate. *)
let fault_verdict t ~src ~dst ~label =
  let rec first = function
    | [] -> Deliver
    | hook :: rest -> (
        match hook ~src ~dst ~label with
        | Deliver -> first rest
        | verdict -> verdict)
  in
  first
    ((match t.base_hook with Some h -> [ h ] | None -> [])
    @ List.map snd t.hooks)

let serve _t ~loc ~name handler = { svc_loc = loc; svc_name = name; handler }

let service_location svc = svc.svc_loc

(* Deliver [k] at [dst] after sampled latency, subject to the fault hooks. *)
let transmit t ~src ~dst ~label k =
  t.sent <- t.sent + 1;
  match fault_verdict t ~src ~dst ~label with
  | Drop ->
      t.dropped <- t.dropped + 1;
      Metrics.Tracer.record_fault t.tracer ~label ~outcome:"drop"
  | Deliver ->
      let d = one_way t src dst in
      Metrics.Tracer.record_wire t.tracer ~label d;
      Engine.schedule ~at:(Engine.now () +. d) k
  | Delay extra ->
      let d = one_way t src dst +. extra in
      Metrics.Tracer.record_fault t.tracer ~label ~outcome:"delay";
      Metrics.Tracer.record_wire t.tracer ~label d;
      Engine.schedule ~at:(Engine.now () +. d) k
  | Duplicate ->
      (* At-least-once delivery: the message arrives twice, each copy
         with its own sampled latency, so the duplicate may also be
         reordered ahead of the original. [k] runs once per copy —
         receivers must dedupe. *)
      t.duplicated <- t.duplicated + 1;
      Metrics.Tracer.record_fault t.tracer ~label ~outcome:"duplicate";
      let d1 = one_way t src dst in
      let d2 = one_way t src dst in
      Metrics.Tracer.record_wire t.tracer ~label d1;
      Metrics.Tracer.record_wire t.tracer ~label d2;
      Engine.schedule ~at:(Engine.now () +. d1) k;
      Engine.schedule ~at:(Engine.now () +. d2) k

let dispatch t ~from svc req ~on_reply =
  transmit t ~src:from ~dst:svc.svc_loc ~label:svc.svc_name (fun () ->
      Engine.spawn ~name:svc.svc_name (fun () ->
          let resp = svc.handler req in
          transmit t ~src:svc.svc_loc ~dst:from
            ~label:(svc.svc_name ^ ":reply")
            (fun () -> on_reply resp)))

let call t ~from svc req =
  let iv = Ivar.create () in
  dispatch t ~from svc req ~on_reply:(fun resp -> Ivar.try_fill iv resp |> ignore);
  Ivar.read iv

let call_timeout t ~from ~timeout svc req =
  let iv = Ivar.create () in
  (* The timer is cancelled the moment the reply wins the race, so a
     completed call leaves no live timeout behind; a reply that loses the
     race is counted as late instead of silently vanishing. *)
  let timer = ref None in
  dispatch t ~from svc req ~on_reply:(fun resp ->
      if Ivar.try_fill iv (Some resp) then Option.iter Timer.cancel !timer
      else begin
        t.late <- t.late + 1;
        Metrics.Tracer.record_fault t.tracer ~label:svc.svc_name
          ~outcome:"late_reply"
      end);
  timer :=
    Some
      (Timer.after timeout (fun () ->
           if Ivar.try_fill iv None then t.timed_out <- t.timed_out + 1));
  Ivar.read iv

let post t ~from svc req =
  dispatch t ~from svc req ~on_reply:(fun _ -> ())

let messages_sent t = t.sent

let messages_dropped t = t.dropped

let messages_duplicated t = t.duplicated

let calls_timed_out t = t.timed_out

let late_replies t = t.late
