(** Shard directory: a queryable, reconfigurable map from primary keys
    to LVI shard ids.

    The primary key space is partitioned across [shards] independent
    LVI servers, each owning the locks, intents, idempotency records
    and (optionally) the Raft lock cluster for its keys. The directory
    answers two questions:

    - {!shard_of_key}: which shard owns this concrete key — total, used
      at request time for the actual read/write set.
    - {!shard_of_shape}: which shard owns {e every} key a static
      {!Analyzer.Absint.shape} can produce, if that is decidable —
      the static routing oracle behind the single-shard fast path.

    Reconfiguration swaps the placement strategy in place and bumps a
    generation counter so routers can drop memoized classifications. *)

type strategy =
  | Hash of { shards : int }
      (** [shard_of_key k = fnv64 k mod shards]. Spreads uniformly but
          is opaque to shapes: only fully-literal (exact) shapes
          resolve statically. *)
  | Prefix of { shards : int; rules : (string * int) list; default : int }
      (** Longest-matching-prefix rules, e.g.
          [[("bal:", 0); ("wall:", 1)]]; keys matching no rule go to
          [default]. Shapes resolve statically whenever their leading
          literal pins the longest match — the placement a deployment
          chooses when the analyzer should prove disjointness. *)

type t

val create : strategy -> t
(** Raises [Invalid_argument] if [shards < 1], a rule target or
    [default] is out of range, or a prefix rule is duplicated. *)

val hash : shards:int -> t

val prefix : ?default:int -> shards:int -> (string * int) list -> t
(** [default] defaults to shard 0. *)

val strategy : t -> strategy

val shards : t -> int

val generation : t -> int
(** Starts at 0; incremented by every {!reconfigure}. *)

val reconfigure : t -> strategy -> unit
(** Replace the placement strategy (same validation as {!create}) and
    bump {!generation}. Callers are responsible for quiescing in-flight
    requests first; the simulator's chaos campaigns reconfigure only at
    topology-construction time. *)

val shard_of_key : t -> string -> int
(** Total: every key has exactly one owner under the current strategy. *)

val shard_of_shape : t -> Analyzer.Absint.shape -> int option
(** [Some s] iff every concrete key the shape can evaluate to is owned
    by shard [s] — a sound static proof, never a guess:

    - one shard: always [Some 0];
    - exact (hole-free) shapes resolve through {!shard_of_key};
    - [Hash]: shapes with holes return [None] (hashing is opaque);
    - [Prefix]: the shape's leading literal [l] fixes the candidate
      rules. The longest rule prefixing [l] (or [default]) is the
      baseline; if every strictly-longer rule extending [l] agrees with
      the baseline's shard, the match is pinned regardless of what the
      holes produce. Otherwise [None].

    [None] means "not statically decidable", and the router must treat
    the access as potentially cross-shard. *)

val pp : Format.formatter -> t -> unit
