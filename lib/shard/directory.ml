type strategy =
  | Hash of { shards : int }
  | Prefix of { shards : int; rules : (string * int) list; default : int }

type t = { mutable strat : strategy; mutable gen : int }

let validate = function
  | Hash { shards } ->
      if shards < 1 then invalid_arg "Directory: shards must be >= 1"
  | Prefix { shards; rules; default } ->
      if shards < 1 then invalid_arg "Directory: shards must be >= 1";
      if default < 0 || default >= shards then
        invalid_arg "Directory: default shard out of range";
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (p, s) ->
          if s < 0 || s >= shards then
            invalid_arg (Printf.sprintf "Directory: rule %S -> %d out of range" p s);
          if Hashtbl.mem seen p then
            invalid_arg (Printf.sprintf "Directory: duplicate rule prefix %S" p);
          Hashtbl.add seen p ())
        rules

let create strat =
  validate strat;
  { strat; gen = 0 }

let hash ~shards = create (Hash { shards })
let prefix ?(default = 0) ~shards rules = create (Prefix { shards; rules; default })
let strategy t = t.strat
let shards t = match t.strat with Hash { shards } | Prefix { shards; _ } -> shards
let generation t = t.gen

let reconfigure t strat =
  validate strat;
  t.strat <- strat;
  t.gen <- t.gen + 1

(* FNV-1a, 64-bit: deterministic across runs and OCaml versions (unlike
   [Hashtbl.hash], whose output is implementation-defined). Masked to
   OCaml's native positive int range — [Int64.max_int] would leave bit
   62 set on a 63-bit int and wrap negative. *)
let fnv64 s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 1099511628211L)
    s;
  Int64.to_int (Int64.logand !h (Int64.of_int max_int))

let is_prefix ~prefix:p s =
  String.length p <= String.length s && String.sub s 0 (String.length p) = p

let shard_of_key t key =
  match t.strat with
  | Hash { shards } -> fnv64 key mod shards
  | Prefix { rules; default; _ } ->
      let best = ref None in
      List.iter
        (fun (p, s) ->
          if is_prefix ~prefix:p key then
            match !best with
            | Some (bp, _) when String.length bp >= String.length p -> ()
            | _ -> best := Some (p, s))
        rules;
      (match !best with Some (_, s) -> s | None -> default)

(* Longest literal run at the front of the shape: every concrete key the
   shape produces starts with this string. *)
let leading_literal shape =
  let buf = Buffer.create 16 in
  let rec go = function
    | Analyzer.Absint.Lit s :: rest ->
        Buffer.add_string buf s;
        go rest
    | _ -> ()
  in
  go shape;
  Buffer.contents buf

let shard_of_shape t shape =
  if shards t = 1 then Some 0
  else
    match Analyzer.Absint.exact shape with
    | Some key -> Some (shard_of_key t key)
    | None -> (
        match t.strat with
        | Hash _ -> None
        | Prefix { rules; default; _ } ->
            (* Keys range over lead ^ Σ*. The longest rule prefixing
               [lead] is the baseline owner (or [default]); any strictly
               longer rule that extends [lead] could become the longest
               match for some hole contents, so all of them must agree
               with the baseline for the placement to be pinned. *)
            let lead = leading_literal shape in
            let base = shard_of_key t lead in
            let agree = ref true in
            List.iter
              (fun (p, s) ->
                if
                  String.length p > String.length lead
                  && is_prefix ~prefix:lead p && s <> base
                then agree := false)
              rules;
            ignore default;
            if !agree then Some base else None)

let pp fmt t =
  match t.strat with
  | Hash { shards } -> Format.fprintf fmt "hash(%d)" shards
  | Prefix { shards; rules; default } ->
      Format.fprintf fmt "prefix(%d; %s; default=%d)" shards
        (String.concat ", "
           (List.map (fun (p, s) -> Printf.sprintf "%S->%d" p s) rules))
        default
