(** Shape-routed request placement on top of a {!Directory}.

    The router classifies each registered function once, from its
    {!Analyzer.Absint.summary}: if every read/write/multi-lock shape
    statically resolves to the same shard, the function is
    {e statically single-shard} and the whole LVI request is routed to
    that shard — the unchanged one-round-trip protocol, including the
    read-only fast path. Anything else (wildcard accesses, shapes the
    directory cannot pin, or shapes spanning shards) is {e cross-shard}
    and goes through the coordinator's prepare/commit round.

    Classifications are memoized per function and invalidated when the
    directory's generation changes. *)

type placement =
  | Single of int
      (** Every key this function can touch lives on one shard. *)
  | Cross
      (** Not statically pinned to one shard. The concrete key set of a
          given request may still land on a single shard — the server
          checks at prepare time — but the router cannot promise it. *)

type t

val create : Directory.t -> t

val directory : t -> Directory.t

val classify : t -> Analyzer.Absint.summary -> placement

val shards_of_keys : t -> string list -> int list
(** Distinct owning shards of a concrete key set, sorted ascending.
    [[]] iff the key set is empty. *)

val target_of_keys : t -> string list -> int
(** The shard a request with this concrete key set is sent to: the only
    owner when the set is single-shard, otherwise the {!anchor}
    (coordinator) of the owners. Empty key sets go to shard 0. *)

val anchor : int list -> int
(** Coordinator choice for a cross-shard owner set: the minimum shard
    id. Anchoring at the minimum makes the coordinator's local prepare
    the first step of the ascending fallback lock order (deadlock
    freedom) and gives deterministic re-execution a unique home. *)

type stats = { classified : int; single : int; cross : int }

val stats : t -> stats
(** Counts over distinct memoized classifications (not lookups). *)

val pp_placement : Format.formatter -> placement -> unit
