type placement = Single of int | Cross

type t = {
  dir : Directory.t;
  memo : (string, placement) Hashtbl.t;
  mutable memo_gen : int;
}

let create dir = { dir; memo = Hashtbl.create 32; memo_gen = Directory.generation dir }
let directory t = t.dir

let refresh t =
  let gen = Directory.generation t.dir in
  if gen <> t.memo_gen then begin
    Hashtbl.reset t.memo;
    t.memo_gen <- gen
  end

let classify_now t (sm : Analyzer.Absint.summary) =
  if Directory.shards t.dir = 1 then Single 0
  else if sm.sm_top then Cross
  else
    let shapes = sm.sm_reads @ sm.sm_writes @ sm.sm_multi in
    match shapes with
    | [] -> Single 0 (* touches no keys: any shard serves it *)
    | first :: rest -> (
        match Directory.shard_of_shape t.dir first with
        | None -> Cross
        | Some s ->
            if
              List.for_all
                (fun sh -> Directory.shard_of_shape t.dir sh = Some s)
                rest
            then Single s
            else Cross)

let classify t sm =
  refresh t;
  match Hashtbl.find_opt t.memo sm.Analyzer.Absint.sm_fn with
  | Some p -> p
  | None ->
      let p = classify_now t sm in
      Hashtbl.add t.memo sm.sm_fn p;
      p

let shards_of_keys t keys =
  List.sort_uniq compare (List.map (Directory.shard_of_key t.dir) keys)

let anchor = function
  | [] -> 0
  | s :: rest -> List.fold_left min s rest

let target_of_keys t keys =
  match shards_of_keys t keys with [] -> 0 | [ s ] -> s | ss -> anchor ss

type stats = { classified : int; single : int; cross : int }

let stats t =
  let single = ref 0 and cross = ref 0 in
  Hashtbl.iter
    (fun _ -> function Single _ -> incr single | Cross -> incr cross)
    t.memo;
  { classified = Hashtbl.length t.memo; single = !single; cross = !cross }

let pp_placement fmt = function
  | Single s -> Format.fprintf fmt "single-shard(%d)" s
  | Cross -> Format.fprintf fmt "cross-shard"
