type origin = Const_only | Input_only | Store_dep | Opaque_dep

type frag = Lit of string | Hole of { src : origin; label : string }

type shape = frag list

let origin_rank = function
  | Const_only -> 0
  | Input_only -> 1
  | Store_dep -> 2
  | Opaque_dep -> 3

let origin_join a b = if origin_rank a >= origin_rank b then a else b

let origin_name = function
  | Const_only -> "const"
  | Input_only -> "input"
  | Store_dep -> "store"
  | Opaque_dep -> "opaque"

let pp_origin fmt o = Format.pp_print_string fmt (origin_name o)

(* No empty literals, merge adjacent literals, collapse adjacent holes
   (Σ*·Σ* = Σ*; the merged hole keeps the stronger origin and the first
   label — labels are cosmetic). *)
let normalize frags =
  let rec go = function
    | [] -> []
    | Lit "" :: rest -> go rest
    | Lit a :: Lit b :: rest -> go (Lit (a ^ b) :: rest)
    | Hole a :: Hole b :: rest ->
        go (Hole { src = origin_join a.src b.src; label = a.label } :: rest)
    | f :: rest -> f :: go rest
  in
  (* A single pass can re-expose adjacency (Lit a; Lit ""; Lit b), so
     iterate to a fixpoint; shapes are tiny. *)
  let rec fix s =
    let s' = go s in
    if s' = s then s else fix s'
  in
  fix frags

let top = [ Hole { src = Opaque_dep; label = "?" } ]

let is_top s = not (List.exists (function Lit _ -> true | Hole _ -> false) s)

let exact s =
  if List.exists (function Hole _ -> true | Lit _ -> false) s then None
  else Some (String.concat "" (List.map (function Lit l -> l | Hole _ -> "") s))

let origin_of_shape s =
  List.fold_left
    (fun acc -> function Lit _ -> acc | Hole h -> origin_join acc h.src)
    Const_only s

(* Longest literal run anchored at the front / back of the pattern. *)
let lit_prefix s = match s with Lit l :: _ -> l | _ -> ""

let lit_suffix s =
  match List.rev s with Lit l :: _ -> l | _ -> ""

let common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  String.sub a 0 (go 0)

let common_suffix a b =
  let la = String.length a and lb = String.length b in
  let n = min la lb in
  let rec go i =
    if i < n && a.[la - 1 - i] = b.[lb - 1 - i] then go (i + 1) else i
  in
  let k = go 0 in
  String.sub a (la - k) k

let is_prefix p s =
  String.length p <= String.length s && String.sub s 0 (String.length p) = p

let is_suffix q s =
  let lq = String.length q and ls = String.length s in
  lq <= ls && String.sub s (ls - lq) lq = q

(* Glob match: holes are Σ*. Shapes are short, so the backtracking
   matcher is fine. *)
let matches shape key =
  let n = String.length key in
  let rec go i = function
    | [] -> i = n
    | Lit l :: rest ->
        let ll = String.length l in
        i + ll <= n && String.sub key i ll = l && go (i + ll) rest
    | Hole _ :: rest ->
        let rec try_at j = j <= n && (go j rest || try_at (j + 1)) in
        try_at i
  in
  go 0 (normalize shape)

(* Strip a known literal prefix [p] (must be a prefix of the shape's
   leading literal) from the front of a normalized shape. *)
let strip_prefix p s =
  if p = "" then s
  else
    match s with
    | Lit l :: rest when is_prefix p l ->
        normalize (Lit (String.sub l (String.length p) (String.length l - String.length p)) :: rest)
    | _ -> s

let strip_suffix q s =
  if q = "" then s
  else
    match List.rev s with
    | Lit l :: rest when is_suffix q l ->
        normalize
          (List.rev
             (Lit (String.sub l 0 (String.length l - String.length q)) :: rest))
    | _ -> s

let overlap a b =
  let a = normalize a and b = normalize b in
  match (exact a, exact b) with
  | Some ka, Some kb -> String.equal ka kb
  | Some k, None -> matches b k
  | None, Some k -> matches a k
  | None, None ->
      (* Both contain holes. They can share a key only if their anchored
         literal prefixes are compatible (one a prefix of the other) and
         likewise their suffixes; middle literals are ignored, which is
         sound (over-approximates). *)
      let pa = lit_prefix a and pb = lit_prefix b in
      let qa = lit_suffix a and qb = lit_suffix b in
      (is_prefix pa pb || is_prefix pb pa)
      && (is_suffix qa qb || is_suffix qb qa)

(* Pattern inclusion by atom alignment. Explode each shape into
   characters and hole markers; [general] covers [specific] iff there is
   an alignment where literal characters pair with equal characters, a
   hole of [specific] is absorbed by a hole of [general] (a hole
   generates arbitrarily long strings, so nothing narrower can cover
   it), and holes of [general] absorb any run of atoms. The exhibited
   alignment instantiates [general]'s holes for every concretization of
   [specific], so [true] is a proof of language inclusion. *)
type atom = Ch of char | Any

let atoms s =
  List.concat_map
    (function
      | Lit l -> List.init (String.length l) (fun i -> Ch l.[i])
      | Hole _ -> [ Any ])
    (normalize s)

let subsumes general specific =
  let rec go g s =
    match (g, s) with
    | [], [] -> true
    | Any :: g', _ -> go g' s || (match s with [] -> false | _ :: s' -> go g s')
    | Ch c :: g', Ch c' :: s' -> Char.equal c c' && go g' s'
    | Ch _ :: _, (Any :: _ | []) -> false
    | [], _ :: _ -> false
  in
  go (atoms general) (atoms specific)

(* Anti-unification: keep the common anchored literal prefix, strip it,
   then keep the common anchored literal suffix of what remains, and
   generalize the differing middles to a single hole. Stripping the
   prefix before computing the suffix prevents double-counting overlap
   (join "aa" "aaa" must not become "aa"·⟨⟩·"aa"). *)
let join a b =
  let a = normalize a and b = normalize b in
  if a = b then a
  else
    let p = common_prefix (lit_prefix a) (lit_prefix b) in
    let a' = strip_prefix p a and b' = strip_prefix p b in
    let q = common_suffix (lit_suffix a') (lit_suffix b') in
    let a'' = strip_suffix q a' and b'' = strip_suffix q b' in
    let src =
      origin_join
        (origin_join (origin_of_shape a'') (origin_of_shape b''))
        (* Even a hole-free middle varies between the two branches. *)
        Const_only
    in
    let middle =
      if a'' = [] && b'' = [] then [] else [ Hole { src; label = "…" } ]
    in
    normalize ((Lit p :: middle) @ [ Lit q ])

let ordered_before a b =
  (* If the two literal prefixes differ within their common length, the
     first differing character orders every concretization. *)
  let pa = lit_prefix a and pb = lit_prefix b in
  let n = min (String.length pa) (String.length pb) in
  let rec go i =
    if i >= n then None
    else if pa.[i] < pb.[i] then Some true
    else if pa.[i] > pb.[i] then Some false
    else go (i + 1)
  in
  match (exact a, exact b) with
  | Some ka, Some kb ->
      let c = String.compare ka kb in
      if c < 0 then Some true else if c > 0 then Some false else None
  | _ -> go 0

let compare_shape (a : shape) (b : shape) = Stdlib.compare a b

let same_shape a b =
  let strip =
    List.map (function
      | Lit l -> Lit l
      | Hole h -> Hole { h with label = "" })
  in
  strip (normalize a) = strip (normalize b)

let pp_frag fmt = function
  | Lit l -> Format.fprintf fmt "%S" l
  | Hole { label; _ } -> Format.fprintf fmt "<%s>" label

let pp_shape fmt = function
  | [] -> Format.pp_print_string fmt "\"\""
  | s ->
      Format.pp_print_list
        ~pp_sep:(fun f () -> Format.pp_print_string f " ^ ")
        pp_frag fmt s

let shape_to_string s = Format.asprintf "%a" pp_shape s
