(** The literal+hole key-shape domain.

    A storage key is abstracted to a {!shape} — a concatenation pattern
    of string literals and holes, e.g. ["post:" ^ ⟨u⟩ ^ ":likes"] —
    where a hole stands for any string (any element of Sigma-star) and
    is tagged with the strongest {!origin} that determines it. A key the
    interpretation cannot structure at all becomes the pure wildcard
    [⟨?⟩] (a sound ⊤ that overlaps everything).

    The domain is deliberately coarse: shapes are anchored glob
    patterns, so emptiness of an intersection is decidable by literal
    prefix/suffix/infix compatibility, joins are computed by
    anti-unification (common literal prefix and suffix kept, the
    differing middle generalized to one hole), and pattern inclusion
    ({!subsumes}) is decidable by atom alignment. Everything here
    over-approximates — {!overlap} never returns [false] for two shapes
    that share a concrete key.

    This module sits below both the Fdsl-level abstract interpreter
    ({!Analyzer.Absint}, which re-exports these types) and the
    bytecode-level one ({!Wasm.Effect}), so the two analyses speak the
    same domain and their results can be compared fragment by
    fragment. *)

type origin =
  | Const_only  (** fixed by the program text (e.g. a literal list's
                    elements: varies per iteration over a known set) *)
  | Input_only  (** determined by invocation inputs *)
  | Store_dep  (** depends on values read from storage *)
  | Opaque_dep  (** depends on an opaque/nondeterministic source *)

type frag = Lit of string | Hole of { src : origin; label : string }

type shape = frag list
(** Normalized: no empty literals, no adjacent literals, no adjacent
    holes. The empty list is the empty string. *)

val origin_rank : origin -> int
(** [Const_only] 0 … [Opaque_dep] 3; the join order. *)

val origin_join : origin -> origin -> origin

val origin_name : origin -> string
(** ["const"], ["input"], ["store"], ["opaque"]. *)

val pp_origin : Format.formatter -> origin -> unit

val normalize : shape -> shape
(** Drop empty literals, merge adjacent literals, collapse adjacent
    holes (Σ*·Σ* = Σ*; the merged hole keeps the stronger origin). *)

val top : shape
(** The pure wildcard [⟨?⟩]: matches any key. *)

val is_top : shape -> bool
(** No literal fragment at all — the shape constrains nothing. *)

val exact : shape -> string option
(** [Some s] iff the shape contains no hole (it denotes exactly [s]). *)

val origin_of_shape : shape -> origin
(** Join of the shape's hole origins ([Const_only] if hole-free). *)

val matches : shape -> string -> bool
(** Glob-match a concrete key against the pattern (holes match any string). *)

val overlap : shape -> shape -> bool
(** May the two patterns share a concrete key? Sound over-approximation:
    [false] is a proof of disjointness; [true] may be spurious. *)

val subsumes : shape -> shape -> bool
(** [subsumes general specific]: does the key language of [specific]
    fall entirely inside the key language of [general]? Decided exactly
    (for this domain) by atom alignment: literal characters must match
    literal characters, a hole of [specific] must be absorbed by a hole
    of [general], and holes of [general] absorb anything. [true] is a
    proof of inclusion; origins are ignored — compare them separately
    with {!origin_of_shape} when demotion matters. *)

val join : shape -> shape -> shape
(** Anti-unification: the least pattern (in this restricted domain)
    covering both. Used at control-flow joins. *)

val ordered_before : shape -> shape -> bool option
(** [Some true] if every concretization of the first shape sorts
    strictly before every concretization of the second (lexicographic
    key order — the lock-acquisition order of §3.6); [Some false] for
    the converse; [None] when the order depends on hole contents. *)

val compare_shape : shape -> shape -> int
(** Total order for sorting/dedup (structural, not semantic). *)

val same_shape : shape -> shape -> bool
(** Structural equality up to hole labels (labels are cosmetic: the two
    interpreters name holes after different syntactic carriers). Hole
    origins {e are} compared. *)

val pp_shape : Format.formatter -> shape -> unit

val shape_to_string : shape -> string
(** E.g. ["post:" ^ ⟨u⟩ ^ ":likes"]; [ε] for the empty shape. *)
