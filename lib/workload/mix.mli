(** Weighted request mixes (the Workload%% column of Table 1). *)

type 'a t

val create : ('a * float) list -> 'a t
(** Weights need not sum to one; they are normalized. Requires a
    non-empty list with positive total weight. *)

val sample : 'a t -> Sim.Rng.t -> 'a

val read_heavy :
  ?read_share:float -> reads:'a list -> writes:'a list -> unit -> 'a t
(** The read-dominated preset of the lease experiment: [read_share]
    (default 0.95) of the probability mass spread uniformly over the
    [reads] items, the remainder over the [writes] items. Requires both
    lists non-empty and [read_share] strictly inside (0, 1). *)
