type 'a t = { items : 'a array; cdf : float array }

let create weighted =
  if weighted = [] then invalid_arg "Mix.create: empty";
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then invalid_arg "Mix.create: non-positive total weight";
  let items = Array.of_list (List.map fst weighted) in
  let cdf = Array.make (Array.length items) 0.0 in
  let acc = ref 0.0 in
  List.iteri
    (fun i (_, w) ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weighted;
  cdf.(Array.length cdf - 1) <- 1.0;
  { items; cdf }

let sample t rng =
  let u = Sim.Rng.float rng 1.0 in
  let rec find i = if t.cdf.(i) >= u then t.items.(i) else find (i + 1) in
  find 0

let read_heavy ?(read_share = 0.95) ~reads ~writes () =
  if reads = [] then invalid_arg "Mix.read_heavy: no read items";
  if writes = [] then invalid_arg "Mix.read_heavy: no write items";
  if read_share <= 0.0 || read_share >= 1.0 then
    invalid_arg "Mix.read_heavy: read_share must be in (0, 1)";
  let spread share items =
    let w = share /. float_of_int (List.length items) in
    List.map (fun x -> (x, w)) items
  in
  create (spread read_share reads @ spread (1.0 -. read_share) writes)
