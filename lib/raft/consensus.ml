open Sim
module Transport = Net.Transport

module type State_machine = sig
  type t

  type cmd

  type output

  val apply : t -> cmd -> output

  type snapshot

  val snapshot : t -> snapshot

  val restore : snapshot -> t
end

module Make (Sm : State_machine) = struct
  type node_id = int

  (* One log entry carries a *batch* of commands: the group-commit
     proposer folds every command queued while an append was in flight
     into a single entry, so the whole batch pays one replication round.
     Unbatched submissions are just singleton batches. *)
  type entry = { e_term : int; e_cmds : Sm.cmd list }

  type role = Follower | Candidate | Leader

  type msg =
    | Request_vote of {
        rv_term : int;
        candidate : node_id;
        last_log_index : int;
        last_log_term : int;
      }
    | Append_entries of {
        ae_term : int;
        leader : node_id;
        prev_index : int;
        prev_term : int;
        entries : entry list;
        leader_commit : int;
      }
    | Install_snapshot of {
        is_term : int;
        is_leader : node_id;
        snap_index : int;
        snap_term : int;
        snap_data : Sm.snapshot;
      }

  type reply =
    | Vote of { v_term : int; granted : bool }
    | Append of { a_term : int; success : bool; match_idx : int }
    | Down

  type client_reply =
    | Applied of Sm.output list
    | Redirect of node_id option
    | Unavailable

  (* One client submission inside a (possibly coalesced) entry: its
     [w_count] consecutive commands resolve [w_iv] with their outputs. *)
  type waiter = { w_count : int; w_iv : Sm.output list option Ivar.t }

  (* A submission waiting for the proposer to fold it into an entry. *)
  type proposal = {
    p_cmds : Sm.cmd list;
    p_enqueued : float;
    p_iv : Sm.output list option Ivar.t;
  }

  type node = {
    id : node_id;
    loc : Net.Location.t;
    rng : Rng.t;
    mutable alive : bool;
    mutable epoch : int; (* bumped on crash/restart to retire stale fibers *)
    (* Persistent state (survives restart). *)
    mutable current_term : int;
    mutable voted_for : node_id option;
    log : entry Vec.t; (* entries (snap_index+1) .. *)
    mutable snap : (int * int * Sm.snapshot) option;
        (* compacted prefix: (last index, its term, SM snapshot) *)
    (* Volatile state. *)
    mutable role : role;
    mutable commit_index : int;
    mutable last_applied : int;
    mutable known_leader : node_id option;
    mutable last_heartbeat : float;
    mutable next_index : int array;
    mutable match_index : int array;
    compaction_threshold : int option;
    mutable sm : Sm.t;
    mutable applied_cmds : Sm.cmd list; (* newest first *)
    pending : (int, int * waiter list) Hashtbl.t;
        (* log index -> (term when proposed, client wakeups in batch order) *)
    mutable prop_queue : proposal list; (* newest first; group commit only *)
    mutable proposer_running : bool;
    (* The durable-append device (one per node): log writes serialize
       through it when [append_latency] > 0. *)
    mutable app_lock : bool;
    app_waiters : (unit -> unit) Queue.t;
  }

  type cluster = {
    net : Transport.t;
    nodes : node array;
    node_svcs : (msg, reply) Transport.service array;
    client_svcs : (Sm.cmd list, client_reply) Transport.service array;
    sm_factory : unit -> Sm.t;
    election_lo : float;
    election_hi : float;
    heartbeat : float;
    rpc_timeout : float;
    group_commit : bool;
    append_latency : float;
    on_batch : size:int -> queue_delay:float -> unit;
    leader_history : (int, node_id list) Hashtbl.t;
  }

  let size c = Array.length c.nodes

  let majority c = (size c / 2) + 1

  let log_base n = match n.snap with Some (i, _, _) -> i | None -> 0

  let last_index n = log_base n + Vec.length n.log

  let entry_at n idx = Vec.get n.log (idx - log_base n - 1)

  let term_at n idx =
    if idx <= 0 then 0
    else
      match n.snap with
      | Some (i, t, _) when idx = i -> t
      | Some (i, _, _) when idx < i ->
          invalid_arg "Consensus.term_at: index below the snapshot"
      | Some _ | None -> (entry_at n idx).e_term

  let fail_pending n =
    Hashtbl.iter
      (fun _ (_, ws) ->
        List.iter (fun w -> ignore (Ivar.try_fill w.w_iv None)) ws)
      n.pending;
    Hashtbl.reset n.pending;
    (* Queued-but-unproposed submissions fail with the in-flight ones:
       their clients retry through [submit] against the next leader. *)
    List.iter (fun p -> ignore (Ivar.try_fill p.p_iv None)) n.prop_queue;
    n.prop_queue <- []

  let become_follower n term =
    if term > n.current_term then begin
      n.current_term <- term;
      n.voted_for <- None
    end;
    if n.role = Leader then fail_pending n;
    n.role <- Follower

  (* Compact the applied prefix of the log into a state-machine
     snapshot once it exceeds the configured threshold. *)
  let maybe_compact n =
    match n.compaction_threshold with
    | Some threshold when n.last_applied - log_base n >= threshold ->
        let snap_term = term_at n n.last_applied in
        let data = Sm.snapshot n.sm in
        Vec.drop n.log (n.last_applied - log_base n);
        n.snap <- Some (n.last_applied, snap_term, data)
    | Some _ | None -> ()

  (* Split [outs] into a [w.w_count]-sized slice per waiter, in order. *)
  let resolve_waiters waiters outs ok =
    ignore
      (List.fold_left
         (fun rest w ->
           let rec take k acc rest =
             if k = 0 then (List.rev acc, rest)
             else
               match rest with
               | [] -> (List.rev acc, [])
               | o :: tl -> take (k - 1) (o :: acc) tl
           in
           let mine, rest = take w.w_count [] rest in
           ignore (Ivar.try_fill w.w_iv (if ok then Some mine else None));
           rest)
         outs waiters)

  let apply_committed n =
    while n.last_applied < n.commit_index do
      n.last_applied <- n.last_applied + 1;
      let e = entry_at n n.last_applied in
      (* The whole batch applies back-to-back with nothing interleaved:
         commands of one entry are atomic with respect to other entries. *)
      let outs =
        List.map
          (fun cmd ->
            let out = Sm.apply n.sm cmd in
            n.applied_cmds <- cmd :: n.applied_cmds;
            out)
          e.e_cmds
      in
      (match Hashtbl.find_opt n.pending n.last_applied with
      | Some (term, waiters) ->
          Hashtbl.remove n.pending n.last_applied;
          resolve_waiters waiters outs (term = e.e_term)
      | None -> ())
    done;
    maybe_compact n

  let advance_commit c n =
    let quorum = majority c in
    let rec scan i =
      if i > n.commit_index then
        (* Count self plus replicated followers; the leader's own slot in
           match_index stays 0 so the fold only counts peers. *)
        if
          term_at n i = n.current_term
          && 1
             + Array.fold_left
                 (fun acc m -> if m >= i then acc + 1 else acc)
                 0 n.match_index
             >= quorum
        then n.commit_index <- i
        else scan (i - 1)
    in
    scan (last_index n);
    apply_committed n

  (* --- Replication (leader side) ---------------------------------- *)

  let rec replicate_to c n peer =
    if n.alive && n.role = Leader && peer <> n.id then begin
      let term0 = n.current_term in
      let ni = n.next_index.(peer) in
      let prev = ni - 1 in
      let msg =
        (* A follower that lags behind the compacted prefix gets the
           snapshot instead of (discarded) entries. *)
        if prev < log_base n then
          match n.snap with
          | Some (snap_index, snap_term, snap_data) ->
              Install_snapshot
                { is_term = term0; is_leader = n.id; snap_index; snap_term;
                  snap_data }
          | None -> assert false
        else
          Append_entries
            {
              ae_term = term0;
              leader = n.id;
              prev_index = prev;
              prev_term = term_at n prev;
              entries =
                List.init
                  (max 0 (last_index n - prev))
                  (fun k -> entry_at n (prev + 1 + k));
              leader_commit = n.commit_index;
            }
      in
      match
        Transport.call_timeout c.net ~from:n.loc ~timeout:c.rpc_timeout
          c.node_svcs.(peer) msg
      with
      | Some (Append { a_term; success; match_idx })
        when n.alive && n.role = Leader && n.current_term = term0 ->
          if a_term > n.current_term then become_follower n a_term
          else if success then begin
            n.match_index.(peer) <- max n.match_index.(peer) match_idx;
            n.next_index.(peer) <- n.match_index.(peer) + 1;
            advance_commit c n
          end
          else begin
            n.next_index.(peer) <- max 1 (ni - 1);
            (* Retry immediately with the earlier prefix. *)
            replicate_to c n peer
          end
      | Some (Vote _ | Append _ | Down) | None -> ()
    end

  let replicate_all c n =
    Array.iter
      (fun peer ->
        if peer.id <> n.id then
          Engine.spawn ~name:"raft-replicate" (fun () ->
              replicate_to c n peer.id))
      c.nodes

  let rec heartbeat_loop c n epoch term =
    if n.alive && n.epoch = epoch && n.role = Leader && n.current_term = term
    then begin
      replicate_all c n;
      Engine.sleep c.heartbeat;
      heartbeat_loop c n epoch term
    end

  let become_leader c n =
    n.role <- Leader;
    n.known_leader <- Some n.id;
    let prev = Option.value ~default:[] (Hashtbl.find_opt c.leader_history n.current_term) in
    Hashtbl.replace c.leader_history n.current_term (n.id :: prev);
    n.next_index <- Array.make (size c) (last_index n + 1);
    n.match_index <- Array.make (size c) 0;
    let epoch = n.epoch and term = n.current_term in
    Engine.spawn ~name:"raft-heartbeat" (fun () -> heartbeat_loop c n epoch term);
    advance_commit c n

  (* --- Elections --------------------------------------------------- *)

  let start_election c n =
    n.role <- Candidate;
    n.current_term <- n.current_term + 1;
    n.voted_for <- Some n.id;
    n.known_leader <- None;
    n.last_heartbeat <- Engine.now ();
    let term0 = n.current_term in
    let votes = ref 1 in
    let won = ref false in
    let msg =
      Request_vote
        {
          rv_term = term0;
          candidate = n.id;
          last_log_index = last_index n;
          last_log_term = term_at n (last_index n);
        }
    in
    Array.iter
      (fun peer ->
        if peer.id <> n.id then
          Engine.spawn ~name:"raft-vote" (fun () ->
              match
                Transport.call_timeout c.net ~from:n.loc ~timeout:c.rpc_timeout
                  c.node_svcs.(peer.id) msg
              with
              | Some (Vote { v_term; granted })
                when n.alive && n.role = Candidate && n.current_term = term0 ->
                  if v_term > n.current_term then become_follower n v_term
                  else if granted then begin
                    incr votes;
                    if (not !won) && !votes >= majority c then begin
                      won := true;
                      become_leader c n
                    end
                  end
              | Some (Vote _ | Append _ | Down) | None -> ()))
      c.nodes;
    if (not !won) && !votes >= majority c then begin
      (* Single-node cluster wins immediately. *)
      won := true;
      become_leader c n
    end

  let rec election_ticker c n epoch =
    if n.alive && n.epoch = epoch then begin
      let timeout = Rng.uniform n.rng c.election_lo c.election_hi in
      Engine.sleep timeout;
      if
        n.alive && n.epoch = epoch && n.role <> Leader
        && Engine.now () -. n.last_heartbeat >= timeout
      then start_election c n;
      election_ticker c n epoch
    end

  (* --- Message handlers (follower side) ---------------------------- *)

  let handle_request_vote n ~rv_term ~candidate ~last_log_index ~last_log_term =
    if rv_term > n.current_term then become_follower n rv_term;
    if rv_term < n.current_term then
      Vote { v_term = n.current_term; granted = false }
    else begin
      let my_last = last_index n in
      let my_last_term = term_at n my_last in
      let up_to_date =
        last_log_term > my_last_term
        || (last_log_term = my_last_term && last_log_index >= my_last)
      in
      let granted =
        up_to_date
        && match n.voted_for with None -> true | Some v -> v = candidate
      in
      if granted then begin
        n.voted_for <- Some candidate;
        n.last_heartbeat <- Engine.now ()
      end;
      Vote { v_term = n.current_term; granted }
    end

  let handle_append_entries n ~ae_term ~leader ~prev_index ~prev_term ~entries
      ~leader_commit =
    if ae_term < n.current_term then
      Append { a_term = n.current_term; success = false; match_idx = 0 }
    else begin
      become_follower n ae_term;
      n.known_leader <- Some leader;
      n.last_heartbeat <- Engine.now ();
      if
        prev_index < log_base n
        || prev_index > last_index n
        || term_at n prev_index <> prev_term
      then Append { a_term = n.current_term; success = false; match_idx = 0 }
      else begin
        List.iteri
          (fun k e ->
            let idx = prev_index + 1 + k in
            if idx <= last_index n && term_at n idx <> e.e_term then
              Vec.truncate n.log (idx - log_base n - 1);
            if idx > last_index n then Vec.push n.log e)
          entries;
        let last_new = prev_index + List.length entries in
        if leader_commit > n.commit_index then
          n.commit_index <- min leader_commit last_new;
        apply_committed n;
        Append { a_term = n.current_term; success = true; match_idx = last_new }
      end
    end

  let handle_install_snapshot n ~is_term ~is_leader ~snap_index ~snap_term
      ~snap_data =
    if is_term < n.current_term then
      Append { a_term = n.current_term; success = false; match_idx = 0 }
    else begin
      become_follower n is_term;
      n.known_leader <- Some is_leader;
      n.last_heartbeat <- Engine.now ();
      if snap_index > n.commit_index then begin
        (* Discard the whole log: the snapshot supersedes it; the leader
           replicates anything newer on the next round. *)
        Vec.truncate n.log 0;
        n.snap <- Some (snap_index, snap_term, snap_data);
        n.sm <- Sm.restore snap_data;
        n.commit_index <- snap_index;
        n.last_applied <- snap_index
      end;
      Append { a_term = n.current_term; success = true; match_idx = snap_index }
    end

  let handle_msg n msg =
    if not n.alive then Down
    else
      match msg with
      | Request_vote { rv_term; candidate; last_log_index; last_log_term } ->
          handle_request_vote n ~rv_term ~candidate ~last_log_index
            ~last_log_term
      | Append_entries
          { ae_term; leader; prev_index; prev_term; entries; leader_commit } ->
          handle_append_entries n ~ae_term ~leader ~prev_index ~prev_term
            ~entries ~leader_commit
      | Install_snapshot { is_term; is_leader; snap_index; snap_term; snap_data }
        ->
          handle_install_snapshot n ~is_term ~is_leader ~snap_index ~snap_term
            ~snap_data

  (* The modeled durable log append (fsync): one device per node, so
     concurrent appends serialize; the lock hands over directly to the
     next waiter so arrivals cannot overtake queued appends. *)
  let append_acquire n =
    if n.app_lock then
      Engine.suspend (fun resume ->
          Queue.push (fun () -> resume ()) n.app_waiters)
    else n.app_lock <- true

  let append_release n =
    match Queue.take_opt n.app_waiters with
    | Some resume -> resume () (* lock ownership transfers *)
    | None -> n.app_lock <- false

  let propose_entry_now c n props =
    let cmds = List.concat_map (fun p -> p.p_cmds) props in
    Vec.push n.log { e_term = n.current_term; e_cmds = cmds };
    let idx = last_index n in
    let waiters =
      List.map (fun p -> { w_count = List.length p.p_cmds; w_iv = p.p_iv }) props
    in
    Hashtbl.replace n.pending idx (n.current_term, waiters);
    let now = Engine.now () in
    let oldest =
      List.fold_left (fun acc p -> Float.min acc p.p_enqueued) now props
    in
    c.on_batch ~size:(List.length cmds) ~queue_delay:(now -. oldest);
    if c.append_latency > 0.0 then append_release n;
    replicate_all c n;
    advance_commit c n

  (* Append one entry holding every command of [props] (arrival order)
     and start replicating it. Returns after kicking off replication;
     completion is signalled through each proposal's ivar. With a
     nonzero [append_latency] the entry first pays one serialized
     durable-append — per ENTRY, not per command, which is exactly the
     cost group commit amortizes. The device releases before the network
     leg, so appends pipeline with replication. *)
  let propose_entry c n props =
    if c.append_latency > 0.0 then begin
      append_acquire n;
      Engine.sleep c.append_latency;
      if not (n.alive && n.role = Leader) then begin
        (* Lost leadership (or crashed) while the append was in flight:
           fail the batch so its clients retry via [submit]'s redirect
           loop, and pass the device on. *)
        List.iter (fun p -> ignore (Ivar.try_fill p.p_iv None)) props;
        append_release n
      end
      else propose_entry_now c n props
    end
    else propose_entry_now c n props

  (* Group-commit proposer: one fiber per leader drains the whole queue
     into a single entry, waits for that entry to resolve (commit+apply,
     or leadership loss), then repeats. Commands arriving while an entry
     is in flight pile up and form the next batch — classic group commit
     with no artificial delay window. *)
  let rec proposer_loop c n =
    match List.rev n.prop_queue with
    | [] -> n.proposer_running <- false
    | props when n.alive && n.role = Leader ->
        n.prop_queue <- [];
        propose_entry c n props;
        (match props with
        | p :: _ -> ignore (Ivar.read p.p_iv)
        | [] -> ());
        proposer_loop c n
    | props ->
        (* Lost leadership with submissions still queued: fail them so
           their clients retry against the new leader. *)
        List.iter (fun p -> ignore (Ivar.try_fill p.p_iv None)) props;
        n.prop_queue <- [];
        n.proposer_running <- false

  let handle_client c n cmds =
    if not n.alive then Unavailable
    else if n.role <> Leader then Redirect n.known_leader
    else if cmds = [] then Applied []
    else begin
      let iv = Ivar.create () in
      let p = { p_cmds = cmds; p_enqueued = Engine.now (); p_iv = iv } in
      if c.group_commit then begin
        n.prop_queue <- p :: n.prop_queue;
        if not n.proposer_running then begin
          n.proposer_running <- true;
          Engine.spawn ~name:"raft-proposer" (fun () -> proposer_loop c n)
        end
      end
      else propose_entry c n [ p ];
      match Ivar.read iv with
      | Some outs -> Applied outs
      | None -> Redirect n.known_leader
    end

  (* --- Public API --------------------------------------------------- *)

  let create ~net ~locs ~sm ?(election_timeout = (150.0, 300.0))
      ?(heartbeat_interval = 40.0) ?(rpc_timeout = 50.0)
      ?compaction_threshold ?(group_commit = false) ?(append_latency = 0.0)
      ?(on_batch = fun ~size:_ ~queue_delay:_ -> ()) () =
    let n_nodes = List.length locs in
    if n_nodes = 0 then invalid_arg "Consensus.create: empty cluster";
    let root = Engine.rng () in
    let nodes =
      Array.of_list
        (List.mapi
           (fun id loc ->
             {
               id;
               loc;
               rng = Rng.split root;
               alive = true;
               epoch = 0;
               current_term = 0;
               voted_for = None;
               log = Vec.create ();
               snap = None;
               compaction_threshold;
               role = Follower;
               commit_index = 0;
               last_applied = 0;
               known_leader = None;
               last_heartbeat = Engine.now ();
               next_index = Array.make n_nodes 1;
               match_index = Array.make n_nodes 0;
               sm = sm ();
               applied_cmds = [];
               pending = Hashtbl.create 16;
               prop_queue = [];
               proposer_running = false;
               app_lock = false;
               app_waiters = Queue.create ();
             })
           locs)
    in
    let lo, hi = election_timeout in
    let c_ref = ref None in
    let node_svcs =
      Array.map
        (fun n ->
          Transport.serve net ~loc:n.loc
            ~name:(Printf.sprintf "raft-%d" n.id)
            (fun msg -> handle_msg n msg))
        nodes
    in
    let client_svcs =
      Array.map
        (fun n ->
          Transport.serve net ~loc:n.loc
            ~name:(Printf.sprintf "raft-client-%d" n.id)
            (fun cmd ->
              match !c_ref with
              | Some c -> handle_client c n cmd
              | None -> Unavailable))
        nodes
    in
    let c =
      {
        net;
        nodes;
        node_svcs;
        client_svcs;
        sm_factory = sm;
        election_lo = lo;
        election_hi = hi;
        heartbeat = heartbeat_interval;
        rpc_timeout;
        group_commit;
        append_latency;
        on_batch;
        leader_history = Hashtbl.create 16;
      }
    in
    c_ref := Some c;
    Array.iter
      (fun n -> Engine.spawn ~name:"raft-ticker" (fun () -> election_ticker c n 0))
      nodes;
    c

  let leader c =
    let found = ref None in
    Array.iter
      (fun n -> if n.alive && n.role = Leader && !found = None then found := Some n.id)
      c.nodes;
    !found

  let submit_batch ?(timeout = 1000.0) c cmds =
    if cmds = [] then Some []
    else begin
      let deadline = Engine.now () +. timeout in
      let from = c.nodes.(0).loc in
      let rec go hint rr =
        if Engine.now () >= deadline then None
        else begin
          let target =
            match hint with
            | Some id when c.nodes.(id).alive -> id
            | _ -> (
                match leader c with
                | Some id -> id
                | None -> rr mod size c)
          in
          let remaining = deadline -. Engine.now () in
          match
            Transport.call_timeout c.net ~from
              ~timeout:(Float.min remaining (4.0 *. c.rpc_timeout))
              c.client_svcs.(target) cmds
          with
          | Some (Applied outs) -> Some outs
          | Some (Redirect h) ->
              Engine.sleep (c.heartbeat /. 2.0);
              go h (rr + 1)
          | Some Unavailable | None ->
              Engine.sleep c.heartbeat;
              go None (rr + 1)
        end
      in
      go (leader c) 0
    end

  let submit ?timeout c cmd =
    match submit_batch ?timeout c [ cmd ] with
    | Some [ out ] -> Some out
    | Some _ | None -> None

  let crash c id =
    let n = c.nodes.(id) in
    if n.alive then begin
      n.alive <- false;
      n.epoch <- n.epoch + 1;
      fail_pending n;
      n.role <- Follower;
      n.known_leader <- None
    end

  let restart c id =
    let n = c.nodes.(id) in
    if not n.alive then begin
      n.alive <- true;
      n.epoch <- n.epoch + 1;
      n.role <- Follower;
      (* The snapshot is part of persistent state: recovery restores the
         state machine from it and replays only the log suffix. *)
      (match n.snap with
      | Some (idx, _, data) ->
          n.commit_index <- idx;
          n.last_applied <- idx;
          n.sm <- Sm.restore data
      | None ->
          n.commit_index <- 0;
          n.last_applied <- 0;
          n.sm <- c.sm_factory ());
      n.applied_cmds <- [];
      n.known_leader <- None;
      n.last_heartbeat <- Engine.now ();
      let epoch = n.epoch in
      Engine.spawn ~name:"raft-ticker" (fun () -> election_ticker c n epoch)
    end

  let stop c =
    Array.iter
      (fun n ->
        if n.alive then begin
          n.alive <- false;
          n.epoch <- n.epoch + 1;
          fail_pending n;
          n.role <- Follower
        end)
      c.nodes

  let is_alive c id = c.nodes.(id).alive

  let current_term c id = c.nodes.(id).current_term

  let log_length c id = last_index c.nodes.(id)

  let snapshot_index c id = log_base c.nodes.(id)

  let stored_entries c id = Vec.length c.nodes.(id).log

  let commit_index c id = c.nodes.(id).commit_index

  let applied c id = List.rev c.nodes.(id).applied_cmds

  let leaders_at_term c term =
    List.sort_uniq Int.compare
      (Option.value ~default:[] (Hashtbl.find_opt c.leader_history term))
end
