(** Raft consensus (Ongaro & Ousterhout, ATC '14) over the simulated
    network.

    This is the substrate behind the replicated LVI server of §5.6: the
    paper stores locks in a three-node etcd cluster spread across
    availability zones, so every lock acquisition travels through Raft.
    The implementation covers leader election with randomized timeouts,
    log replication with the AppendEntries consistency check and conflict
    truncation, commit-rule application (current-term entries only),
    crash/restart with persistent term/vote/log and in-memory state
    machines rebuilt by replay. Snapshots and membership changes are out
    of scope — the lock service never needs them in the evaluation.

    The replicated state machine is supplied as a functor argument. *)

module type State_machine = sig
  type t

  type cmd

  type output

  val apply : t -> cmd -> output
  (** Must be deterministic; called exactly once per committed entry per
      (live) replica, in log order. *)

  type snapshot

  val snapshot : t -> snapshot
  (** Serialize the current state for log compaction. *)

  val restore : snapshot -> t
end

module Make (Sm : State_machine) : sig
  type cluster

  type node_id = int

  val create :
    net:Net.Transport.t ->
    locs:Net.Location.t list ->
    sm:(unit -> Sm.t) ->
    ?election_timeout:float * float ->
    ?heartbeat_interval:float ->
    ?rpc_timeout:float ->
    ?compaction_threshold:int ->
    ?group_commit:bool ->
    ?append_latency:float ->
    ?on_batch:(size:int -> queue_delay:float -> unit) ->
    unit ->
    cluster
  (** One node per element of [locs] (normally three availability zones).
      [sm] builds a fresh state machine per node (and per restart —
      recovery replays the log). Defaults: election timeout uniform in
      [150, 300) ms, heartbeats every 40 ms, RPC timeout 50 ms. Must be
      called inside a running engine; nodes start as followers and elect
      a leader on their own. With [compaction_threshold] set, a node
      whose applied-but-uncompacted log reaches that many entries folds
      the prefix into a state-machine snapshot; followers that lag
      behind a compacted prefix catch up via snapshot installation.

      With [group_commit] the leader coalesces proposals: while an
      append is in flight, newly submitted commands queue up and are
      folded into the {e next} single log entry, so a burst of
      concurrent submissions pays one replication round instead of one
      per submission. Off by default — each submission then gets its own
      entry and replication round, exactly the unbatched behaviour.
      [on_batch] fires once per proposed entry on the leader with the
      entry's command count and the queueing delay of its oldest
      submission (0 for unqueued proposals) — hook it to a histogram.

      [append_latency] (virtual ms, default 0 = free) models the
      durable log append: each proposed {e entry} pays it once, on a
      per-node device that serializes concurrent appends (the fsync
      queue). It is the resource group commit amortizes — [k] coalesced
      commands pay one append where unbatched submission pays [k] —
      and what makes the batching benchmark's load sweep meaningful;
      leave it 0 for protocol tests, where timing should come from the
      network alone. *)

  val size : cluster -> int

  val submit : ?timeout:float -> cluster -> Sm.cmd -> Sm.output option
  (** Replicate and apply one command; blocks until the leader applied it
      and returns its output. Retries internally across leader changes
      until [timeout] (default 1000 ms) virtual time has passed; [None]
      on timeout (e.g. no quorum alive). At-least-once on retry: a
      command re-submitted after a lost reply may apply twice — callers
      needing exactly-once must make commands idempotent, as the LVI
      server's lock records are. Snapshots and log compaction are
      supported; membership change is not. *)

  val submit_batch :
    ?timeout:float -> cluster -> Sm.cmd list -> Sm.output list option
  (** Like {!submit} for a whole command list: the batch lands in one log
      entry (one replication round), applies back-to-back with nothing
      interleaved between its commands, and returns the outputs in
      submission order. [Some []] for the empty batch without touching
      the cluster. Same retry/at-least-once semantics as {!submit} — a
      retried batch re-applies wholesale, so batches must be idempotent
      as a unit. *)

  val leader : cluster -> node_id option
  (** The live node that currently believes itself leader, if any. *)

  val crash : cluster -> node_id -> unit
  (** Stop a node: it ignores messages and loses volatile state. *)

  val restart : cluster -> node_id -> unit
  (** Revive a crashed node with its persistent state (term, vote, log);
      the state machine is rebuilt by replaying committed entries. *)

  val stop : cluster -> unit
  (** Crash every node. The cluster's perpetual fibers (election tickers,
      heartbeats) terminate on their next wakeup, letting the simulation
      reach quiescence — call this when an experiment is done, since
      [Engine.run] without [~until] only returns once no event remains. *)

  val is_alive : cluster -> node_id -> bool

  val current_term : cluster -> node_id -> int

  val log_length : cluster -> node_id -> int
  (** Logical log length (snapshot prefix included). *)

  val snapshot_index : cluster -> node_id -> int
  (** Last log index folded into the node's snapshot; 0 if none. *)

  val stored_entries : cluster -> node_id -> int
  (** Entries physically retained after compaction. *)

  val commit_index : cluster -> node_id -> int

  val applied : cluster -> node_id -> Sm.cmd list
  (** Commands applied by this node's state machine, oldest first. *)

  val leaders_at_term : cluster -> int -> node_id list
  (** Every node that ever won the given term — safety tests assert the
      list never has two elements. *)
end
