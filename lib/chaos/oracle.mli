(** Invariant oracle: judges a deployment after a chaos run.

    Every check runs outside the engine on a finished (quiescent)
    deployment, inspecting state through latency-free accessors — the
    oracle never perturbs the run it is judging. *)

type violation = { inv : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type effect_spec = {
  e_service : string;  (** External-service name. *)
  e_issued : int;
      (** Client-visible invocations that may have called the service. *)
  e_completed : int;
      (** Invocations known to have called it and returned success. *)
}

val linearizable :
  ?init:(string * Dval.t) list -> Radical.Framework.t -> violation list
(** The recorded history ({!Radical.Framework.record_history} must have
    been on) admits a legal total order. *)

val drained : Radical.Framework.t -> violation list
(** No pending write intents and no held locks survive quiescence, at
    any shard of the deployment. *)

val cross_atomic : Radical.Framework.t -> violation list
(** Cross-shard atomicity ({!Radical.Server.cross_states}): every
    coordinated execution reached the same terminal decision at every
    shard that prepared a slice for it — no [`Prepared] survivor at
    quiescence, and never a [`Committed]/[`Aborted] mix. Trivially
    empty on unsharded deployments. *)

val caches_coherent : Radical.Framework.t -> violation list
(** No near-user cache entry is newer than primary storage, and entries
    at the primary's version hold the primary's value — the state a
    repaired cache must converge back to. *)

val effects_exactly_once :
  Radical.Framework.t -> effect_spec list -> violation list
(** For each spec: completed ≤ handler executions ≤ issued — a duplicate
    handler run means an idempotency-key breach; fewer runs than
    completed invocations means an effect was claimed but never made. *)

val check :
  ?init:(string * Dval.t) list ->
  ?effects:effect_spec list ->
  Radical.Framework.t ->
  violation list
(** All of the above, concatenated (empty list = all invariants hold). *)
