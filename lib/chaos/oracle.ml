module Framework = Radical.Framework
module Server = Radical.Server

type violation = { inv : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.inv v.detail

type effect_spec = { e_service : string; e_issued : int; e_completed : int }

let v inv fmt = Format.kasprintf (fun detail -> { inv; detail }) fmt

(* Generous but bounded: ~2 s in the worst case. An exhausted search is
   inconclusive, not a violation — only a proven absence of a legal
   order counts. *)
let lincheck_budget = 1_000_000

let linearizable ?(init = []) fw =
  let history = Framework.history fw in
  match Lincheck.decide ~init ~budget:lincheck_budget history with
  | Lincheck.Linearizable _ | Lincheck.Inconclusive -> []
  | Lincheck.Not_linearizable ->
      [
        v "linearizable" "%d-op history admits no legal total order"
          (List.length history);
      ]

let drained fw =
  let servers = Framework.servers fw in
  let where i = if List.length servers > 1 then Printf.sprintf " (shard %d)" i else "" in
  List.concat
    (List.mapi
       (fun i server ->
         let pending = Server.pending_intents server in
         let held = Server.locks_held server in
         (if pending = 0 then []
          else
            [
              v "drained" "%d write intent(s) still pending at quiescence%s"
                pending (where i);
            ])
         @
         if held = 0 then []
         else
           [
             v "drained" "%d lock owner(s) still holding at quiescence%s" held
               (where i);
           ])
       servers)

(* Cross-shard atomic commit: at quiescence every coordinated execution
   must have reached the same terminal decision at every shard that
   prepared a slice for it. A surviving [`Prepared] is a wedged
   participant (its locks outlived every decision retry); a mix of
   [`Committed] and [`Aborted] is a torn atomic commit — one shard
   published the transaction's writes while another rolled them back. *)
let cross_atomic fw =
  let states = Hashtbl.create 64 in
  List.iteri
    (fun shard server ->
      List.iter
        (fun (exec_id, st) ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt states exec_id)
          in
          Hashtbl.replace states exec_id ((shard, st) :: prev))
        (Server.cross_states server))
    (Framework.servers fw);
  Hashtbl.fold
    (fun exec_id sts acc ->
      let at want = List.filter_map
          (fun (s, st) -> if st = want then Some (string_of_int s) else None)
          sts
      in
      let prepared = at `Prepared
      and committed = at `Committed
      and aborted = at `Aborted in
      (if prepared = [] then []
       else
         [
           v "cross-atomic" "%s still prepared at shard(s) %s at quiescence"
             exec_id
             (String.concat "," prepared);
         ])
      @ (if committed <> [] && aborted <> [] then
           [
             v "cross-atomic"
               "%s committed at shard(s) %s but aborted at shard(s) %s"
               exec_id
               (String.concat "," committed)
               (String.concat "," aborted);
           ]
         else [])
      @ acc)
    states []

let caches_coherent fw =
  let primary = Framework.primary fw in
  List.concat_map
    (fun loc ->
      let cache = Radical.Runtime.cache (Framework.runtime fw loc) in
      List.filter_map
        (fun (key, value, version) ->
          match Store.Kv.peek primary key with
          | None ->
              Some
                (v "cache-coherent" "%s: %S v%d cached but absent from primary"
                   loc key version)
          | Some { Store.Kv.value = pv; version = pver } ->
              if version > pver then
                Some
                  (v "cache-coherent"
                     "%s: %S cached at v%d ahead of primary v%d" loc key
                     version pver)
              else if version = pver && not (Dval.equal value pv) then
                Some
                  (v "cache-coherent"
                     "%s: %S v%d cached as %s but primary has %s" loc key
                     version (Dval.to_string value) (Dval.to_string pv))
              else None)
        (Cache.snapshot cache))
    (Framework.locations fw)

let effects_exactly_once fw specs =
  let ext = Framework.external_services fw in
  List.concat_map
    (fun { e_service; e_issued; e_completed } ->
      let runs = Radical.Extsvc.handler_runs ext e_service in
      (if runs > e_issued then
         [
           v "effects-exactly-once"
             "%s handler ran %d times for only %d issued invocation(s)"
             e_service runs e_issued;
         ]
       else [])
      @
      if runs < e_completed then
        [
          v "effects-exactly-once"
            "%s handler ran %d times but %d invocation(s) completed"
            e_service runs e_completed;
        ]
      else [])
    specs

let check ?init ?(effects = []) fw =
  drained fw @ cross_atomic fw @ caches_coherent fw
  @ effects_exactly_once fw effects
  @ linearizable ?init fw
