open Sim
open Fdsl.Ast
module Transport = Net.Transport
module Location = Net.Location
module Framework = Radical.Framework
module Server = Radical.Server

type app = {
  ca_name : string;
  ca_funcs : Fdsl.Ast.func list;
  ca_seed : Rng.t -> (string * Dval.t) list;
  ca_gen : unit -> Rng.t -> string * Dval.t list;
}

type config = {
  locations : Location.t list;
  clients_per_loc : int;
  requests_per_client : int;
  think_time : float;
  horizon : float;
  drain : float;
  jitter : float;
  replicated : bool;
  batching : bool;
  propagation : bool;
  leases : bool;
  shards : int;
  intent_timeout : float;
  tuning : Server.tuning;
  mutation : Server.protocol_mutation option;
  charge_every : int;
}

let default_config =
  {
    locations = Location.user_locations;
    clients_per_loc = 2;
    requests_per_client = 3;
    think_time = 400.0;
    horizon = 5000.0;
    drain = 4000.0;
    jitter = 0.05;
    replicated = false;
    batching = false;
    propagation = false;
    leases = false;
    shards = 1;
    intent_timeout = 800.0;
    tuning = Server.default_tuning;
    mutation = None;
    charge_every = 6;
  }

type outcome = {
  violations : Oracle.violation list;
  fingerprint : string;
  requests : int;
  client_errors : int;
  faults_applied : int;
  faults_skipped : int;
}

(* The synthetic payment: one external call whose receipt lands under a
   per-invocation key. Each sweep invocation passes a unique "user", so
   every charge is an independent idempotency scope and the
   exactly-once oracle can count handler runs against issued requests. *)
let charge_fn =
  {
    fn_name = "chaos_charge";
    params = [ "user" ];
    body =
      Let
        ( "r",
          External ("chaos-pay", Input "user"),
          Seq
            [
              Write (Concat [ Str "charge:"; Input "user" ], Var "r"); Var "r";
            ] );
  }

let charge_service = "chaos-pay"

let fingerprint_of_history ops =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (op : Lincheck.op) ->
      Buffer.add_string buf
        (Printf.sprintf "%s|%.4f|%.4f|" op.op_id op.start op.finish);
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (k ^ "=" ^ Dval.to_string v ^ ";"))
        op.reads;
      Buffer.add_char buf '|';
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (k ^ "=" ^ Dval.to_string v ^ ";"))
        op.writes;
      Buffer.add_char buf '\n')
    ops;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run_one ?(config = default_config) ~seed app (plan : Plan.t) =
  let engine = Engine.create ~seed () in
  let violations = ref [] in
  let fingerprint = ref "" in
  let requests = ref 0 in
  let client_errors = ref 0 in
  let faults = ref Nemesis.{ applied = 0; skipped = 0 } in
  let issued = ref 0 in
  let completed = ref 0 in
  let finished = ref false in
  (* A protocol bug can deadlock the workload (stuck clients are not
     runnable, so the engine would quiesce with the main fiber still
     suspended and the oracle never consulted — or, replicated, tick
     Raft timers forever). Cap virtual time far beyond any legitimate
     run and treat a main fiber that never finished as a violation in
     its own right. *)
  let stuck_cap =
    100_000.0 +. Float.max config.horizon (Plan.horizon_of plan)
  in
  (try
     Engine.run ~until:stuck_cap engine (fun () ->
         let rng = Engine.rng () in
         let net =
           Transport.create ~jitter_sigma:config.jitter ~rng:(Rng.split rng)
             ~fault_rng:(Rng.split rng) ()
         in
         let data = app.ca_seed (Rng.split rng) in
         let mode =
           if config.replicated then Server.Replicated { az_rtt = 1.5 }
           else Server.Singleton
         in
         let batching =
           if config.batching then Server.full_batching
           else Server.no_batching
         in
         let propagation =
           if config.propagation then Server.default_propagation
           else Server.no_propagation
         in
         let leases =
           if config.leases then Server.default_leases else Server.no_leases
         in
         let fw_config =
           {
             Framework.default_config with
             locations = config.locations;
             server =
               {
                 Server.default_config with
                 mode;
                 intent_timeout = config.intent_timeout;
                 batching;
                 propagation;
                 leases;
                 tuning = config.tuning;
               };
             sharding =
               (if config.shards > 1 then
                  Some (Shard.Directory.Hash { shards = config.shards })
                else None);
             fu_window = (if config.batching then 2.0 else 0.0);
             fu_piggyback = config.batching;
           }
         in
         let funcs =
           if config.charge_every > 0 then app.ca_funcs @ [ charge_fn ]
           else app.ca_funcs
         in
         let fw =
           Framework.create ~config:fw_config ~net ~funcs ~data ()
         in
         if config.charge_every > 0 then
           Framework.register_external fw ~name:charge_service (fun v ->
               Dval.Record [ ("paid", v) ]);
         List.iter
           (fun s -> Server.inject_mutation s config.mutation)
           (Framework.servers fw);
         Framework.record_history fw;
         let nemesis = Nemesis.launch { net; fw } plan in
         let gen = app.ca_gen () in
         let n_locs = List.length config.locations in
         let n_clients = n_locs * config.clients_per_loc in
         let client_rngs = Array.init n_clients (fun _ -> Rng.split rng) in
         Workload.Driver.run_clients ~n:n_clients
           ~iterations:config.requests_per_client
           ~think_time:config.think_time (fun ~client ~iter ->
             let from = List.nth config.locations (client mod n_locs) in
             let crng = client_rngs.(client) in
             let seq = !requests in
             incr requests;
             let fn, args =
               if
                 config.charge_every > 0
                 && seq mod config.charge_every = config.charge_every - 1
               then
                 ( charge_fn.fn_name,
                   [ Dval.Str (Printf.sprintf "u%d-%d" client iter) ] )
               else gen crng
             in
             if String.equal fn charge_fn.fn_name then incr issued;
             let o = Framework.invoke fw ~from fn args in
             match o.value with
             | Ok _ ->
                 if String.equal fn charge_fn.fn_name then incr completed
             | Error _ -> incr client_errors);
         (* Outlive every fault window plus a drain for intent timers,
            re-executions and straggler followups to settle. *)
         let target =
           Float.max (Engine.now ())
             (Float.max config.horizon (Plan.horizon_of plan))
           +. config.drain
         in
         Engine.sleep (Float.max 0.0 (target -. Engine.now ()));
         faults := Nemesis.stats nemesis;
         let effects =
           if config.charge_every > 0 then
             [
               {
                 Oracle.e_service = charge_service;
                 e_issued = !issued;
                 e_completed = !completed;
               };
             ]
           else []
         in
         if Sys.getenv_opt "CHAOS_DEBUG" <> None then
           Printf.eprintf "DEBUG: workload done, now=%.1f, history=%d ops\n%!"
             (Engine.now ()) (List.length (Framework.history fw));
         violations := Oracle.check ~init:data ~effects fw;
         if Sys.getenv_opt "CHAOS_DEBUG" <> None then
           Printf.eprintf "DEBUG: oracle done\n%!";
         fingerprint := fingerprint_of_history (Framework.history fw);
         Framework.stop fw;
         finished := true);
     if not !finished then
       violations :=
         [
           {
             Oracle.inv = "stuck";
             detail =
               Printf.sprintf
                 "run never completed (%d/%d requests issued): workload \
                  deadlocked or teardown blocked"
                 !requests
                 (List.length config.locations * config.clients_per_loc
                * config.requests_per_client);
           };
         ]
   with exn ->
     violations :=
       { Oracle.inv = "no-crash"; detail = Printexc.to_string exn }
       :: !violations);
  {
    violations = !violations;
    fingerprint = !fingerprint;
    requests = !requests;
    client_errors = !client_errors;
    faults_applied = !faults.applied;
    faults_skipped = !faults.skipped;
  }

(* Greedy ddmin: keep removing single events while the plan still
   fails. Plans are short (a handful of events), so the quadratic worst
   case is a few dozen runs. *)
let shrink ?config ~seed app plan =
  let fails p = (run_one ?config ~seed app p).violations <> [] in
  if not (fails plan) then plan
  else
    let rec minimize plan =
      let n = List.length plan in
      let rec try_drop i =
        if i >= n then None
        else
          let candidate = List.filteri (fun j _ -> j <> i) plan in
          if fails candidate then Some candidate else try_drop (i + 1)
      in
      match try_drop 0 with Some smaller -> minimize smaller | None -> plan
    in
    minimize plan

type case = {
  c_seed : int;
  c_template : string;
  c_plan : Plan.t;
  c_outcome : outcome;
}

type summary = {
  runs : int;
  total_requests : int;
  total_client_errors : int;
  total_faults_applied : int;
  total_faults_skipped : int;
  failures : case list;
  replay_checks : int;
  replay_mismatches : case list;
}

let sweep ?(config = default_config) ?(templates = Plan.default_templates)
    ?(replay_every = 25) ?(progress = fun ~done_:_ ~total:_ -> ())
    ~seeds app =
  let templates =
    List.filter
      (fun (t : Plan.template) -> config.replicated || not t.t_replicated_only)
      templates
  in
  let total = seeds * List.length templates in
  let runs = ref 0 in
  let total_requests = ref 0 in
  let total_client_errors = ref 0 in
  let applied = ref 0 in
  let skipped = ref 0 in
  let failures = ref [] in
  let replay_checks = ref 0 in
  let replay_mismatches = ref [] in
  for seed = 1 to seeds do
    List.iteri
      (fun i (t : Plan.template) ->
        let plan_rng = Rng.create ((seed * 8191) lxor ((i + 1) * 524287)) in
        let plan =
          t.t_gen ~rng:plan_rng ~horizon:config.horizon
            ~locations:config.locations
        in
        let o = run_one ~config ~seed app plan in
        incr runs;
        total_requests := !total_requests + o.requests;
        total_client_errors := !total_client_errors + o.client_errors;
        applied := !applied + o.faults_applied;
        skipped := !skipped + o.faults_skipped;
        let case =
          { c_seed = seed; c_template = t.t_name; c_plan = plan; c_outcome = o }
        in
        if o.violations <> [] then failures := case :: !failures;
        if !runs mod replay_every = 0 then begin
          incr replay_checks;
          let o' = run_one ~config ~seed app plan in
          if not (String.equal o.fingerprint o'.fingerprint) then
            replay_mismatches := case :: !replay_mismatches
        end;
        progress ~done_:!runs ~total)
      templates
  done;
  {
    runs = !runs;
    total_requests = !total_requests;
    total_client_errors = !total_client_errors;
    total_faults_applied = !applied;
    total_faults_skipped = !skipped;
    failures = List.rev !failures;
    replay_checks = !replay_checks;
    replay_mismatches = List.rev !replay_mismatches;
  }

let pp_case ppf c =
  Format.fprintf ppf "@[<v 2>seed %d, template %s:@,%a@,violations:@,%a@]"
    c.c_seed c.c_template Plan.pp c.c_plan
    (Format.pp_print_list Oracle.pp_violation)
    c.c_outcome.violations

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d runs, %d requests (%d client errors under faults)@,\
     %d faults applied, %d skipped@,\
     %d replay checks, %d mismatches@,\
     %d run(s) with violations@]" s.runs s.total_requests
    s.total_client_errors s.total_faults_applied s.total_faults_skipped
    s.replay_checks
    (List.length s.replay_mismatches)
    (List.length s.failures);
  if s.failures <> [] then
    Format.fprintf ppf "@,@[<v>%a@]"
      (Format.pp_print_list pp_case)
      s.failures;
  if s.replay_mismatches <> [] then
    Format.fprintf ppf "@,@[<v 2>replay mismatches:@,%a@]"
      (Format.pp_print_list pp_case)
      s.replay_mismatches
