open Sim
module Transport = Net.Transport
module Framework = Radical.Framework
module Server = Radical.Server
module RaftLocks = Radical.Raft_locks

type env = { net : Transport.t; fw : Framework.t }

type stats = { applied : int; skipped : int }

type t = { mutable s_applied : int; mutable s_skipped : int }

let matches (f : Plan.msg_filter) ~src ~dst ~label =
  (match f.f_label with None -> true | Some l -> String.equal l label)
  && (match f.f_src with None -> true | Some s -> String.equal s src)
  && match f.f_dst with None -> true | Some d -> String.equal d dst

(* A probabilistic verdict drawn from the event's private stream: fault
   decisions never touch the transport's jitter RNG. *)
let decide rng prob = prob >= 1.0 || Rng.float rng 1.0 < prob

let windowed_hook env rng ~duration verdict_of =
  let h =
    Transport.add_fault env.net (fun ~src ~dst ~label ->
        verdict_of rng ~src ~dst ~label)
  in
  Engine.sleep duration;
  Transport.remove_fault env.net h

(* Shard [i mod n] of the deployment — the sole server when unsharded,
   so shard actions degrade gracefully against a seed topology. *)
let shard_server env i =
  let srvs = Framework.servers env.fw in
  List.nth srvs (i mod List.length srvs)

let apply_action t env rng (action : Plan.action) =
  let applied () = t.s_applied <- t.s_applied + 1 in
  let skipped () = t.s_skipped <- t.s_skipped + 1 in
  let crash_node cluster victim downtime =
    let node =
      match victim with
      | `Node i -> i mod RaftLocks.size cluster
      | `Leader -> (
          match RaftLocks.leader cluster with Some n -> n | None -> 0)
    in
    if RaftLocks.is_alive cluster node then begin
      applied ();
      RaftLocks.crash cluster node;
      Engine.sleep downtime;
      RaftLocks.restart cluster node
    end
    else skipped ()
  in
  match action with
  | Drop_messages { filter; prob; duration } ->
      applied ();
      windowed_hook env rng ~duration (fun rng ~src ~dst ~label ->
          if matches filter ~src ~dst ~label && decide rng prob then
            Transport.Drop
          else Transport.Deliver)
  | Duplicate_messages { filter; prob; duration } ->
      applied ();
      windowed_hook env rng ~duration (fun rng ~src ~dst ~label ->
          if matches filter ~src ~dst ~label && decide rng prob then
            Transport.Duplicate
          else Transport.Deliver)
  | Delay_messages { filter; extra; prob; duration } ->
      applied ();
      windowed_hook env rng ~duration (fun rng ~src ~dst ~label ->
          if matches filter ~src ~dst ~label && decide rng prob then
            Transport.Delay extra
          else Transport.Deliver)
  | Partition { group; duration } ->
      applied ();
      let until = Engine.now () +. duration in
      let inside l = List.mem l group in
      (* Fire-and-forget followups crossing the cut are lost outright
         (the intent timer recovers them); request/response traffic is
         held back until the heal, like TCP retransmission — the
         protocol has no client-side retry, so an outright drop would
         strand the calling fiber forever. *)
      windowed_hook env rng ~duration (fun _rng ~src ~dst ~label ->
          if inside src = inside dst then Transport.Deliver
          else if String.equal label "followup" then Transport.Drop
          else Transport.Delay (Float.max 0.0 (until -. Engine.now ())))
  | Crash_raft_node { victim; downtime } -> (
      match Server.raft_cluster (Framework.server env.fw) with
      | None -> skipped ()
      | Some cluster -> crash_node cluster victim downtime)
  | Restart_server ->
      applied ();
      Server.restart_recover (Framework.server env.fw)
  | Restart_shard i ->
      applied ();
      Server.restart_recover (shard_server env i)
  | Crash_shard_leader { shard; downtime } -> (
      match Server.raft_cluster (shard_server env shard) with
      | None -> skipped ()
      | Some cluster -> crash_node cluster `Leader downtime)
  | Wipe_cache loc ->
      if List.mem loc (Framework.locations env.fw) then begin
        applied ();
        Cache.wipe (Radical.Runtime.cache (Framework.runtime env.fw loc))
      end
      else skipped ()
  | Pause_site { loc; duration } ->
      applied ();
      let until = Engine.now () +. duration in
      (* Every message touching the frozen site is held back until the
         pause ends — the remaining hold time shrinks as the window
         progresses, like a real process freeze. *)
      windowed_hook env rng ~duration (fun _rng ~src ~dst ~label:_ ->
          if String.equal src loc || String.equal dst loc then
            Transport.Delay (Float.max 0.0 (until -. Engine.now ()))
          else Transport.Deliver)

let launch env (plan : Plan.t) =
  let t = { s_applied = 0; s_skipped = 0 } in
  let t0 = Engine.now () in
  List.iter
    (fun (e : Plan.event) ->
      Engine.spawn ~name:"nemesis" (fun () ->
          Engine.sleep (Float.max 0.0 (t0 +. e.at -. Engine.now ()));
          apply_action t env (Rng.create (e.ev_seed + 1)) e.action))
    plan;
  t

let stats t = { applied = t.s_applied; skipped = t.s_skipped }
