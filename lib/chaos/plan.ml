open Sim

type msg_filter = {
  f_label : string option;
  f_src : Net.Location.t option;
  f_dst : Net.Location.t option;
}

let any_message = { f_label = None; f_src = None; f_dst = None }

let followups ?src () = { f_label = Some "followup"; f_src = src; f_dst = None }

let cache_updates ?dst () =
  { f_label = Some "cache_update"; f_src = None; f_dst = dst }

let shard_prepares () =
  { f_label = Some "shard_prepare"; f_src = None; f_dst = None }

let shard_decides () =
  { f_label = Some "shard_decide"; f_src = None; f_dst = None }

let lease_revokes ?dst () =
  { f_label = Some "lease_revoke"; f_src = None; f_dst = dst }

type action =
  | Drop_messages of { filter : msg_filter; prob : float; duration : float }
  | Duplicate_messages of {
      filter : msg_filter;
      prob : float;
      duration : float;
    }
  | Delay_messages of {
      filter : msg_filter;
      extra : float;
      prob : float;
      duration : float;
    }
  | Partition of { group : Net.Location.t list; duration : float }
  | Crash_raft_node of { victim : [ `Leader | `Node of int ]; downtime : float }
  | Restart_server
  | Restart_shard of int
  | Crash_shard_leader of { shard : int; downtime : float }
  | Wipe_cache of Net.Location.t
  | Pause_site of { loc : Net.Location.t; duration : float }

type event = { at : float; ev_seed : int; action : action }

type t = event list

let event ?(seed = 0) ~at action = { at; ev_seed = seed; action }

let duration_of = function
  | Drop_messages { duration; _ }
  | Duplicate_messages { duration; _ }
  | Delay_messages { duration; _ }
  | Partition { duration; _ }
  | Pause_site { duration; _ } ->
      duration
  | Crash_raft_node { downtime; _ } | Crash_shard_leader { downtime; _ } ->
      downtime
  | Restart_server | Restart_shard _ | Wipe_cache _ -> 0.0

let horizon_of plan =
  List.fold_left
    (fun acc e -> Float.max acc (e.at +. duration_of e.action))
    0.0 plan

let pp_filter ppf f =
  let part name = function None -> "" | Some v -> Printf.sprintf " %s=%s" name v in
  Format.fprintf ppf "%s%s%s"
    (match f.f_label with None -> "any" | Some l -> l)
    (part "src" f.f_src) (part "dst" f.f_dst)

let pp_action ppf = function
  | Drop_messages { filter; prob; duration } ->
      Format.fprintf ppf "drop %a p=%.2f for %.0f ms" pp_filter filter prob
        duration
  | Duplicate_messages { filter; prob; duration } ->
      Format.fprintf ppf "duplicate %a p=%.2f for %.0f ms" pp_filter filter
        prob duration
  | Delay_messages { filter; extra; prob; duration } ->
      Format.fprintf ppf "delay %a +%.0f ms p=%.2f for %.0f ms" pp_filter
        filter extra prob duration
  | Partition { group; duration } ->
      Format.fprintf ppf "partition {%s} for %.0f ms" (String.concat "," group)
        duration
  | Crash_raft_node { victim; downtime } ->
      Format.fprintf ppf "crash raft %s for %.0f ms"
        (match victim with `Leader -> "leader" | `Node i -> "node " ^ string_of_int i)
        downtime
  | Restart_server -> Format.fprintf ppf "restart LVI server"
  | Restart_shard i -> Format.fprintf ppf "restart shard %d's LVI server" i
  | Crash_shard_leader { shard; downtime } ->
      Format.fprintf ppf "crash shard %d's raft leader for %.0f ms" shard
        downtime
  | Wipe_cache loc -> Format.fprintf ppf "wipe cache at %s" loc
  | Pause_site { loc; duration } ->
      Format.fprintf ppf "pause site %s for %.0f ms" loc duration

let pp_event ppf e =
  Format.fprintf ppf "[%8.1f ms] %a" e.at pp_action e.action

let pp ppf plan =
  match plan with
  | [] -> Format.fprintf ppf "(empty plan)"
  | events ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event)
        events

let to_string plan = Format.asprintf "%a" pp plan

(* --- Templates ------------------------------------------------------- *)

type template = {
  t_name : string;
  t_replicated_only : bool;
  t_gen :
    rng:Sim.Rng.t -> horizon:float -> locations:Net.Location.t list -> t;
}

(* Every generated event carries its own seed so shrinking (removing
   events) never changes the per-message decisions of the survivors. *)
let fresh_seed rng = Rng.int rng 0x3FFFFFFF

let pick rng l = List.nth l (Rng.int rng (List.length l))

(* An instant early enough that [span] more ms still fit under the
   horizon. *)
let start_at rng ~horizon span =
  Rng.uniform rng 100.0 (Float.max 200.0 (horizon -. span))

let sort_by_time events =
  List.stable_sort (fun a b -> Float.compare a.at b.at) events

let followup_storm =
  {
    t_name = "followup-storm";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations ->
        let n = 1 + Rng.int rng 3 in
        sort_by_time
          (List.init n (fun _ ->
               let duration = Rng.uniform rng 400.0 1500.0 in
               let src =
                 if Rng.bool rng then Some (pick rng locations) else None
               in
               {
                 at = start_at rng ~horizon duration;
                 ev_seed = fresh_seed rng;
                 action =
                   Drop_messages
                     {
                       filter = followups ?src ();
                       prob = Rng.uniform rng 0.5 1.0;
                       duration;
                     };
               })));
  }

let message_chaos =
  {
    t_name = "message-chaos";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations:_ ->
        let drops =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              let duration = Rng.uniform rng 300.0 1200.0 in
              {
                at = start_at rng ~horizon duration;
                ev_seed = fresh_seed rng;
                action =
                  (* Only followups drop: they are fire-and-forget and
                     recovered by intent timers. Request/response
                     traffic has no client retry, so templates never
                     drop it outright — they delay it instead. *)
                  Drop_messages
                    {
                      filter = followups ();
                      prob = Rng.uniform rng 0.1 0.4;
                      duration;
                    };
              })
        in
        let delays =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              let duration = Rng.uniform rng 400.0 1500.0 in
              {
                at = start_at rng ~horizon duration;
                ev_seed = fresh_seed rng;
                action =
                  Delay_messages
                    {
                      filter = any_message;
                      extra = Rng.uniform rng 50.0 500.0;
                      prob = Rng.uniform rng 0.1 0.4;
                      duration;
                    };
              })
        in
        sort_by_time (drops @ delays));
  }

let cache_loss =
  {
    t_name = "cache-loss";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations ->
        let wipes =
          List.init
            (1 + Rng.int rng 3)
            (fun _ ->
              {
                at = start_at rng ~horizon 0.0;
                ev_seed = fresh_seed rng;
                action = Wipe_cache (pick rng locations);
              })
        in
        let pauses =
          if Rng.bool rng then
            let duration = Rng.uniform rng 200.0 900.0 in
            [
              {
                at = start_at rng ~horizon duration;
                ev_seed = fresh_seed rng;
                action = Pause_site { loc = pick rng locations; duration };
              };
            ]
          else []
        in
        sort_by_time (wipes @ pauses));
  }

let server_restart =
  {
    t_name = "server-restart";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations ->
        (* Slow the followups down so a restart catches intents mid
           flight — the non-quiescent recovery path. *)
        let duration = Rng.uniform rng 1200.0 2500.0 in
        let at = start_at rng ~horizon (duration +. 500.0) in
        let delay =
          {
            at;
            ev_seed = fresh_seed rng;
            action =
              Delay_messages
                {
                  filter = followups ();
                  extra = Rng.uniform rng 800.0 2000.0;
                  prob = 1.0;
                  duration;
                };
          }
        in
        let restarts =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              {
                at = Rng.uniform rng (at +. 100.0) (at +. duration);
                ev_seed = fresh_seed rng;
                action = Restart_server;
              })
        in
        let wipe =
          if Rng.bool rng then
            [
              {
                at = start_at rng ~horizon 0.0;
                ev_seed = fresh_seed rng;
                action = Wipe_cache (pick rng locations);
              };
            ]
          else []
        in
        sort_by_time ((delay :: restarts) @ wipe));
  }

let partition_heal =
  {
    t_name = "partition-heal";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations ->
        let n = 1 + Rng.int rng 2 in
        sort_by_time
          (List.init n (fun _ ->
               let duration = Rng.uniform rng 300.0 1200.0 in
               (* Cut 1-2 user sites off; never an empty or full group. *)
               let shuffled = Array.of_list locations in
               Rng.shuffle rng shuffled;
               let k =
                 1 + Rng.int rng (max 1 (Array.length shuffled - 1) |> min 2)
               in
               let group = Array.to_list (Array.sub shuffled 0 k) in
               {
                 at = start_at rng ~horizon duration;
                 ev_seed = fresh_seed rng;
                 action = Partition { group; duration };
               })));
  }

let raft_churn =
  {
    t_name = "raft-churn";
    t_replicated_only = true;
    t_gen =
      (fun ~rng ~horizon ~locations:_ ->
        let n = 1 + Rng.int rng 2 in
        sort_by_time
          (List.init n (fun _ ->
               let downtime = Rng.uniform rng 300.0 1200.0 in
               let victim =
                 if Rng.int rng 3 < 2 then `Leader else `Node (Rng.int rng 3)
               in
               {
                 at = start_at rng ~horizon downtime;
                 ev_seed = fresh_seed rng;
                 action = Crash_raft_node { victim; downtime };
               })));
  }

let everything =
  {
    t_name = "everything";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations ->
        sort_by_time
          (followup_storm.t_gen ~rng ~horizon ~locations
          @ cache_loss.t_gen ~rng ~horizon ~locations
          @ message_chaos.t_gen ~rng ~horizon ~locations));
  }

let propagation_chaos =
  {
    t_name = "propagation-chaos";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations ->
        (* The cache-update channel is fire-and-forget and its installs
           are version-guarded, so unlike request traffic it may be
           dropped, duplicated and delayed outright — the coherence
           oracle must hold regardless. A low-probability duplication
           of *all* traffic rides along to exercise the server's reply
           cache on LVI and direct-exec deliveries. *)
        let prop_faults kind =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              let duration = Rng.uniform rng 300.0 1200.0 in
              let dst =
                if Rng.bool rng then Some (pick rng locations) else None
              in
              let filter = cache_updates ?dst () in
              {
                at = start_at rng ~horizon duration;
                ev_seed = fresh_seed rng;
                action =
                  (match kind with
                  | `Drop ->
                      Drop_messages
                        { filter; prob = Rng.uniform rng 0.2 0.8; duration }
                  | `Dup ->
                      Duplicate_messages
                        { filter; prob = Rng.uniform rng 0.2 0.8; duration }
                  | `Delay ->
                      Delay_messages
                        {
                          filter;
                          extra = Rng.uniform rng 50.0 400.0;
                          prob = Rng.uniform rng 0.2 0.8;
                          duration;
                        });
              })
        in
        let dup_any =
          let duration = Rng.uniform rng 300.0 1000.0 in
          [
            {
              at = start_at rng ~horizon duration;
              ev_seed = fresh_seed rng;
              action =
                Duplicate_messages
                  {
                    filter = any_message;
                    prob = Rng.uniform rng 0.1 0.3;
                    duration;
                  };
            };
          ]
        in
        sort_by_time
          (prop_faults `Drop @ prop_faults `Dup @ prop_faults `Delay
         @ dup_any));
  }

let shard_chaos =
  {
    t_name = "shard-chaos";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations:_ ->
        (* Stresses the cross-shard commit protocol. Prepares are
           delayed, never dropped: pushing one past the 50 ms
           non-blocking timeout makes the coordinator treat the shard as
           busy and fall back to the sequential blocking round, while
           the late prepare races the round's abort — the supersession
           arithmetic must hold. Decisions are retried until
           acknowledged, so those CAN be dropped outright; a window of
           lost decisions only postpones a participant's release past
           the window, never past the drain. Shard restarts hit a
           participant holding prepared slices (concluded later by
           decision retries) or a coordinator with a pending cross
           intent (re-executed on recovery); leader crashes stall one
           shard's lock persistence mid-prepare. Against an unsharded
           deployment the messages do not exist and the nemesis
           degrades the actions to shard 0 / a skip. *)
        let prepare_delays =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              let duration = Rng.uniform rng 300.0 1200.0 in
              {
                at = start_at rng ~horizon duration;
                ev_seed = fresh_seed rng;
                action =
                  Delay_messages
                    {
                      filter = shard_prepares ();
                      extra = Rng.uniform rng 30.0 400.0;
                      prob = Rng.uniform rng 0.3 1.0;
                      duration;
                    };
              })
        in
        let decide_drops =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              let duration = Rng.uniform rng 300.0 1200.0 in
              {
                at = start_at rng ~horizon duration;
                ev_seed = fresh_seed rng;
                action =
                  Drop_messages
                    {
                      filter = shard_decides ();
                      prob = Rng.uniform rng 0.3 0.9;
                      duration;
                    };
              })
        in
        let restarts =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              {
                at = start_at rng ~horizon 0.0;
                ev_seed = fresh_seed rng;
                action = Restart_shard (Rng.int rng 4);
              })
        in
        let leader_crash =
          if Rng.bool rng then
            let downtime = Rng.uniform rng 300.0 1000.0 in
            [
              {
                at = start_at rng ~horizon downtime;
                ev_seed = fresh_seed rng;
                action =
                  Crash_shard_leader { shard = Rng.int rng 4; downtime };
              };
            ]
          else []
        in
        sort_by_time
          (prepare_delays @ decide_drops @ restarts @ leader_crash));
  }

let lease_chaos =
  {
    t_name = "lease-chaos";
    t_replicated_only = false;
    t_gen =
      (fun ~rng ~horizon ~locations ->
        (* Stresses the read-lease settle protocol. Revocations may be
           dropped or delayed outright: the writer's revocation RPC
           times out and it falls back to waiting out the lease expiry
           plus ε, so a lost revocation only ever slows the write down
           — it must never let a stale lease-local read through.
           Duplicated revocations exercise the site-side fence (the
           second delivery finds the grants already dropped). Cache
           wipes race the version fence: a wiped site re-reads through
           the protocol and may be re-granted mid-settle — the
           [until_leq]-guarded forget must keep the fresh grant alive
           on the server. Delayed cache updates make propagation-borne
           grants arrive long after issue, when the key may have moved
           on; the version re-check at flush time and the issue-time
           fence at the site are the argument. A low-probability
           duplication of all traffic rides along as usual. *)
        let revoke_faults kind =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              let duration = Rng.uniform rng 300.0 1200.0 in
              let dst =
                if Rng.bool rng then Some (pick rng locations) else None
              in
              let filter = lease_revokes ?dst () in
              {
                at = start_at rng ~horizon duration;
                ev_seed = fresh_seed rng;
                action =
                  (match kind with
                  | `Drop ->
                      Drop_messages
                        { filter; prob = Rng.uniform rng 0.3 0.9; duration }
                  | `Dup ->
                      Duplicate_messages
                        { filter; prob = Rng.uniform rng 0.2 0.8; duration }
                  | `Delay ->
                      Delay_messages
                        {
                          filter;
                          extra = Rng.uniform rng 50.0 600.0;
                          prob = Rng.uniform rng 0.3 0.9;
                          duration;
                        });
              })
        in
        let wipes =
          List.init
            (1 + Rng.int rng 2)
            (fun _ ->
              {
                at = start_at rng ~horizon 0.0;
                ev_seed = fresh_seed rng;
                action = Wipe_cache (pick rng locations);
              })
        in
        let update_delays =
          if Rng.bool rng then
            let duration = Rng.uniform rng 300.0 1200.0 in
            [
              {
                at = start_at rng ~horizon duration;
                ev_seed = fresh_seed rng;
                action =
                  Delay_messages
                    {
                      filter = cache_updates ();
                      extra = Rng.uniform rng 100.0 500.0;
                      prob = Rng.uniform rng 0.3 0.9;
                      duration;
                    };
              };
            ]
          else []
        in
        let dup_any =
          let duration = Rng.uniform rng 300.0 1000.0 in
          [
            {
              at = start_at rng ~horizon duration;
              ev_seed = fresh_seed rng;
              action =
                Duplicate_messages
                  {
                    filter = any_message;
                    prob = Rng.uniform rng 0.1 0.3;
                    duration;
                  };
            };
          ]
        in
        sort_by_time
          (revoke_faults `Drop @ revoke_faults `Dup @ revoke_faults `Delay
         @ wipes @ update_delays @ dup_any));
  }

(* New templates append at the end: a template's campaign RNG seed is
   derived from its list index, so insertion in the middle would shift
   every later template's plans under existing seeds. *)
let default_templates =
  [
    followup_storm;
    message_chaos;
    cache_loss;
    server_restart;
    partition_heal;
    raft_churn;
    everything;
    propagation_chaos;
    shard_chaos;
    lease_chaos;
  ]

let find_template name =
  List.find_opt (fun t -> t.t_name = name) default_templates
