(** The campaign runner: seed-driven chaos sweeps with shrinking.

    A single {!run_one} is fully deterministic in (seed, plan): it
    builds a fresh engine and deployment, launches the nemesis with the
    plan, drives a multi-site workload, waits out the fault horizon plus
    a drain window, and judges the quiescent state with the invariant
    {!Oracle}. {!sweep} fans that out over seeds × plan templates and
    {!shrink} reduces a failing plan to a 1-minimal event list that
    still reproduces a violation. *)

type app = {
  ca_name : string;
  ca_funcs : Fdsl.Ast.func list;
  ca_seed : Sim.Rng.t -> (string * Dval.t) list;
  ca_gen : unit -> Sim.Rng.t -> string * Dval.t list;
      (** Fresh workload generator (same contract as the experiment
          bundles): called once per run, then per request. *)
}

type config = {
  locations : Net.Location.t list;
  clients_per_loc : int;
  requests_per_client : int;
  think_time : float;
  horizon : float;
      (** Window (virtual ms) within which template events start and
          finish. *)
  drain : float;
      (** Extra quiet time after the horizon and the last request, long
          enough for intent timers to fire and re-executions to settle. *)
  jitter : float;
  replicated : bool;  (** Raft-replicated LVI server (§5.6). *)
  batching : bool;
      (** Every batching knob on: Raft group commit, per-request lock
          flush + 2 ms persist window, conflict-aware admission, and
          followup coalescing/piggybacking on the near-user side. The
          fault campaign must find zero violations with or without. *)
  propagation : bool;
      (** Asynchronous cache-update propagation on
          ({!Radical.Server.default_propagation}): committed writes fan
          out to every subscribed site. Combined with the
          propagation-chaos template (lost/duplicated/reordered
          cache_update messages), the campaign must still find zero
          violations — the version guard is the whole argument. *)
  leases : bool;
      (** Read leases on ({!Radical.Server.default_leases}): validated
          read replies and propagation flushes grant per-key leases to
          near-user sites, which then serve statically read-only
          functions locally with zero round trips; writers settle the
          grants (revoke-and-ack, or wait out expiry + ε) before
          validating. Combined with the lease-chaos template (lost /
          delayed / duplicated [lease_revoke] messages, cache wipes,
          late cache updates), the campaign must still find zero
          violations — a lost revocation may only ever slow a writer
          down to the expiry wait, never let a stale local read
          through. *)
  shards : int;
      (** [> 1] deploys the LVI service hash-sharded over that many
          servers ({!Radical.Framework.config.sharding}); the
          applications' multi-key functions then exercise cross-shard
          atomic commit, which the shard-chaos template attacks
          (delayed prepares, dropped decisions, shard restarts, leader
          crashes) and the {!Oracle.cross_atomic} invariant judges.
          Default 1: the seed single-server deployment. *)
  intent_timeout : float;
  tuning : Radical.Server.tuning;
      (** Cross-shard commit timing knobs, passed through to every
          server in the deployment (default
          {!Radical.Server.default_tuning}). The shard-chaos template's
          delayed prepares and dropped decisions interact directly with
          these timeouts, so sweeping them widens the schedule space the
          campaign explores. *)
  mutation : Radical.Server.protocol_mutation option;
      (** Deliberate protocol bug, injected into the server — the
          oracle-has-teeth demonstration. *)
  charge_every : int;
      (** Every Nth request calls a synthetic external-payment function
          with a fresh idempotency scope, feeding the exactly-once
          oracle; 0 disables. *)
}

val default_config : config
(** 5 user sites × 2 clients × 3 requests, 5 s horizon + 4 s drain,
    singleton server with an 800 ms intent-timeout ceiling, a charge
    every 6th request, no mutation. *)

type outcome = {
  violations : Oracle.violation list;
  fingerprint : string;
      (** Digest of the recorded history — equal across replays of the
          same (seed, plan) iff the run is deterministic. *)
  requests : int;
  client_errors : int;
      (** Requests whose client-visible result was an error (allowed
          under faults; they still participate in the history). *)
  faults_applied : int;
  faults_skipped : int;
}

val run_one : ?config:config -> seed:int -> app -> Plan.t -> outcome
(** One deterministic chaos run. A crash anywhere in the run (engine
    fiber error) is reported as a ["no-crash"] violation rather than an
    exception; a run that never completes — a deadlocked workload or a
    teardown that cannot quiesce — is cut off at a virtual-time cap and
    reported as a ["stuck"] violation. *)

val shrink : ?config:config -> seed:int -> app -> Plan.t -> Plan.t
(** Greedy delta-debugging: repeatedly drop events while the plan still
    produces at least one violation under [seed]; the result is
    1-minimal (removing any single remaining event makes the run pass).
    Per-event seeds make survivors' probabilistic decisions independent
    of removed events. Returns the plan unchanged if it never fails. *)

type case = {
  c_seed : int;
  c_template : string;
  c_plan : Plan.t;
  c_outcome : outcome;
}

type summary = {
  runs : int;
  total_requests : int;
  total_client_errors : int;
  total_faults_applied : int;
  total_faults_skipped : int;
  failures : case list;  (** Runs with at least one violation. *)
  replay_checks : int;
  replay_mismatches : case list;
      (** Runs whose replay produced a different history digest. *)
}

val sweep :
  ?config:config ->
  ?templates:Plan.template list ->
  ?replay_every:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  seeds:int ->
  app ->
  summary
(** Run seeds 1..[seeds] against every template (skipping
    replicated-only templates on a singleton config). Every
    [replay_every]th run (default 25) is re-executed and its history
    digest compared. [progress] is called after each run. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable report: totals, then each failing case's seed,
    template, plan and violations. *)
