(** The nemesis: applies a fault plan to a live deployment.

    [launch] must be called inside the engine, normally at the start of
    a run; it spawns one fiber per event, each sleeping on the virtual
    clock until its instant and then applying (and later undoing) its
    fault through the transport's composable hooks, the server's
    restart/crash entry points, and the per-site caches. Message faults
    draw per-message randomness from an RNG seeded by the event itself,
    never from the transport's jitter stream. *)

type env = { net : Net.Transport.t; fw : Radical.Framework.t }

type stats = {
  applied : int;  (** Events whose fault took effect. *)
  skipped : int;
      (** Events that did not apply to this deployment (e.g. a Raft
          crash against a singleton server, a wipe at an absent site). *)
}

type t

val launch : env -> Plan.t -> t

val stats : t -> stats
