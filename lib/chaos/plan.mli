(** Declarative fault plans.

    A plan is a list of scheduled events on the virtual clock; the
    nemesis ({!Nemesis}) applies them to a live deployment. Events that
    make probabilistic per-message decisions (e.g. "drop 60% of
    followups for 800 ms") carry their own RNG seed, fixed at plan
    generation time — so removing one event during shrinking never
    perturbs another event's decisions, and fault decisions never touch
    the transport's jitter stream.

    Plans are generated from {!template}s (seed-driven campaign sweeps)
    or written literally (tests, drills). *)

type msg_filter = {
  f_label : string option;  (** [None] matches any service label. *)
  f_src : Net.Location.t option;
  f_dst : Net.Location.t option;
}

val any_message : msg_filter

val followups : ?src:Net.Location.t -> unit -> msg_filter
(** Matches write-followup messages (optionally from one site only). *)

val cache_updates : ?dst:Net.Location.t -> unit -> msg_filter
(** Matches cache-update propagation messages (optionally to one site
    only). *)

val shard_prepares : unit -> msg_filter
(** Matches cross-shard prepare requests between LVI shards. *)

val shard_decides : unit -> msg_filter
(** Matches cross-shard decision broadcasts between LVI shards. *)

val lease_revokes : ?dst:Net.Location.t -> unit -> msg_filter
(** Matches lease-revocation messages from the LVI server's write path
    to near-user sites (optionally to one site only). Safe to drop
    outright: the writer's RPC times out and falls back to waiting out
    the lease expiry plus ε. *)

type action =
  | Drop_messages of { filter : msg_filter; prob : float; duration : float }
      (** Drop each matching message with probability [prob] for
          [duration] ms. *)
  | Duplicate_messages of {
      filter : msg_filter;
      prob : float;
      duration : float;
    }
      (** Deliver each matching message twice (independently sampled
          latencies, so the copy may overtake the original) with
          probability [prob] for [duration] ms — at-least-once
          delivery. Receivers dedupe: the LVI server through its reply
          cache, cache-update installs through the version guard. *)
  | Delay_messages of {
      filter : msg_filter;
      extra : float;
      prob : float;
      duration : float;
    }  (** Add [extra] ms to each matching message with probability
          [prob] for [duration] ms. *)
  | Partition of { group : Net.Location.t list; duration : float }
      (** Cut [group] off from the rest of the world, heal after
          [duration] ms. Fire-and-forget followups crossing the cut are
          lost; request/response traffic is held until the heal (the
          transport models TCP retransmission — the protocol has no
          client-side retry, so an outright drop would strand the
          caller). *)
  | Crash_raft_node of { victim : [ `Leader | `Node of int ]; downtime : float }
      (** Crash one node of the replicated LVI server's lock cluster and
          restart it after [downtime] ms. No-op on a singleton server. *)
  | Restart_server
      (** Restart the LVI server: volatile intent timers are lost,
          recovery re-executes orphaned intents ({!Radical.Server.restart_recover}). *)
  | Restart_shard of int
      (** Restart shard [i mod shards]'s LVI server in a sharded
          deployment (shard 0 — the sole server — when unsharded). A
          restarted participant keeps its durable prepared slices; the
          coordinator's retried decisions conclude them. *)
  | Crash_shard_leader of { shard : int; downtime : float }
      (** Crash the Raft leader of shard [shard mod shards]'s lock
          cluster and restart it after [downtime] ms. No-op on
          singleton servers. *)
  | Wipe_cache of Net.Location.t
      (** Drop one site's near-user cache (it self-repairs through
          protocol traffic). *)
  | Pause_site of { loc : Net.Location.t; duration : float }
      (** Freeze one site (a runtime GC pause / VM migration): every
          message to or from [loc] is held until the pause ends. *)

type event = { at : float; ev_seed : int; action : action }

type t = event list

val event : ?seed:int -> at:float -> action -> event
(** Literal event constructor (default seed 0 — fine for deterministic
    actions and [prob >= 1.0] message faults). *)

val horizon_of : t -> float
(** Virtual instant by which every event has been applied and undone
    (max over [at] + duration/downtime). *)

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {2 Templates} *)

type template = {
  t_name : string;
  t_replicated_only : bool;
      (** Only meaningful against a Raft-replicated LVI server. *)
  t_gen :
    rng:Sim.Rng.t ->
    horizon:float ->
    locations:Net.Location.t list ->
    t;
      (** Generate a plan whose events all start and finish within
          [horizon] ms. *)
}

val default_templates : template list
(** The campaign's default sweep: followup storms, general message
    chaos, cache wipes + site pauses, mid-flight server restarts,
    partitions, (replicated only) Raft node churn, lost/duplicated/
    delayed cache-update propagation, cross-shard commit chaos
    (delayed prepares, dropped decisions, shard restarts and per-shard
    leader crashes), and read-lease chaos (lost/duplicated/delayed
    revocations, cache wipes, late cache updates). New templates append
    at the end — a template's campaign seed derives from its list
    index. *)

val find_template : string -> template option
