(** Chaos campaign bundle: the experiment-suite entry point for
    [lib/chaos] ([bench/main.exe chaos]).

    Sweeps the default fault-plan templates over the social and forum
    applications, each in singleton and Raft-replicated deployments,
    expecting zero invariant violations; then demonstrates that the
    oracle has teeth by injecting a deliberate protocol mutation
    (skipped intent re-execution), catching it, and shrinking the
    failing plan to a minimal reproduction. *)

type report = { r_label : string; r_summary : Chaos.Campaign.summary }

val of_bundle : Bundle.app -> Chaos.Campaign.app

val campaign :
  ?seeds:int -> ?progress:bool -> ?batching:bool -> ?propagation:bool ->
  ?leases:bool -> ?shards:int -> unit -> report list
(** [seeds] per (app × mode) cell, default 50 — 200 seeded sweeps in
    total over the 4-cell grid. [batching] turns every batching knob on
    in every cell (group commit, lock-record flush, admission, followup
    coalescing); [propagation] turns asynchronous cache-update
    propagation on, which the propagation-chaos template then stresses
    with lost/duplicated/delayed cache_update messages; [leases] turns
    read leases on, which the lease-chaos template then stresses with
    lost/duplicated/delayed lease_revoke messages, cache wipes and late
    cache updates; [shards > 1]
    hash-shards the LVI service that many ways, putting every cell's
    multi-key functions on the cross-shard commit path under the
    shard-chaos template and the cross-atomicity oracle — the oracle
    expects zero violations in every combination. *)

val demo_mutation : ?seed:int -> unit -> Chaos.Plan.t * Chaos.Plan.t
(** Inject [Skip_reexecution], run a deliberately noisy plan, and
    return [(original, shrunk)] — the shrunk plan still reproduces a
    violation and is 1-minimal. *)

val run :
  ?seeds:int -> ?batching:bool -> ?propagation:bool -> ?leases:bool ->
  ?shards:int -> unit -> int
(** Print campaign reports and the mutation demonstration; returns the
    number of genuine violations (0 expected — mutation-demo failures
    are intentional and not counted). *)
