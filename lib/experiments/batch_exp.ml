open Sim
module Location = Net.Location
module Transport = Net.Transport
module Stats = Metrics.Stats
module Table = Metrics.Table
module Tracer = Metrics.Tracer
module Framework = Radical.Framework
module Server = Radical.Server

type measurement = string * float

let heading title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

(* --- synthetic mixed workload ----------------------------------------

   Three key families so conflict-aware admission has something to
   tell apart: payments touch "bal:*" (read-modify-write on two
   accounts), wall posts touch "wall:*" (read-modify-write on one
   wall), wall reads are write-free and ride the ro_fast path. Account
   choice is lightly skewed (theta 0.2) so lock contention exists but
   never dominates the Raft append device we are sweeping. *)

let n_accounts = 500
let n_walls = 50

let key prefix input = Fdsl.Ast.(Concat [ Str prefix; Input input ])

let pay_fn =
  let open Fdsl.Ast in
  {
    fn_name = "pay";
    params = [ "src"; "dst" ];
    body =
      Compute
        ( 1.0,
          Let
            ( "s",
              Read (key "bal:" "src"),
              Let
                ( "d",
                  Read (key "bal:" "dst"),
                  Seq
                    [
                      Write (key "bal:" "src", Binop (Sub, Var "s", Int 1L));
                      Write (key "bal:" "dst", Binop (Add, Var "d", Int 1L));
                      Var "d";
                    ] ) ) );
  }

let post_fn =
  let open Fdsl.Ast in
  {
    fn_name = "post";
    params = [ "w"; "txt" ];
    body =
      Compute
        ( 1.0,
          Let
            ( "cur",
              Read (key "wall:" "w"),
              Seq
                [
                  Write (key "wall:" "w", Concat [ Var "cur"; Str "|"; Input "txt" ]);
                  Var "cur";
                ] ) );
  }

let read_wall_fn =
  let open Fdsl.Ast in
  {
    fn_name = "read_wall";
    params = [ "w" ];
    body = Compute (0.5, Read (key "wall:" "w"));
  }

let funcs = [ pay_fn; post_fn; read_wall_fn ]

let seed_data =
  List.init n_accounts (fun i -> (Printf.sprintf "bal:a%d" i, Dval.int 100))
  @ List.init n_walls (fun i -> (Printf.sprintf "wall:w%d" i, Dval.Str ""))

(* --- variants --------------------------------------------------------- *)

type variant = {
  v_name : string;
  v_batching : Server.batching;
  v_fu_window : float;
  v_fu_piggyback : bool;
}

(* Modeled durable-append cost per Raft log entry (virtual ms). Without
   it the simulated fsync is free and every unbatched proposal commits
   in one network round — there would be no resource for group commit
   to amortize and the sweep would show nothing. 1 ms caps the
   unbatched device at ~1000 entries/s, which the sweep's top offered
   rate deliberately exceeds. *)
let append_cost = 1.0

let replicated_variants =
  [
    {
      v_name = "unbatched";
      v_batching = { Server.no_batching with append_cost };
      v_fu_window = 0.0;
      v_fu_piggyback = false;
    };
    {
      v_name = "group-commit";
      v_batching = { Server.no_batching with group_commit = true; append_cost };
      v_fu_window = 0.0;
      v_fu_piggyback = false;
    };
    {
      v_name = "gc+lock-flush";
      v_batching =
        {
          Server.no_batching with
          group_commit = true;
          request_flush = true;
          persist_window = 2.0;
          append_cost;
        };
      v_fu_window = 0.0;
      v_fu_piggyback = false;
    };
    {
      v_name = "all-on";
      v_batching = { Server.full_batching with append_cost };
      v_fu_window = 2.0;
      v_fu_piggyback = true;
    };
  ]

let singleton_variants =
  [
    {
      v_name = "unbatched";
      v_batching = Server.no_batching;
      v_fu_window = 0.0;
      v_fu_piggyback = false;
    };
    {
      v_name = "all-on";
      v_batching = Server.full_batching;
      v_fu_window = 2.0;
      v_fu_piggyback = true;
    };
  ]

(* --- one sweep cell --------------------------------------------------- *)

type cell = {
  c_variant : string;
  c_offered : float; (* requests per virtual second *)
  c_achieved : float; (* completions / time-to-last-completion *)
  c_median : float;
  c_p99 : float;
  c_requests : int;
  c_errors : int;
  c_batch_mean : float; (* raft_entry commands per entry; nan singleton *)
  c_queue_p99 : float; (* raft_entry proposal queueing delay; nan singleton *)
}

let run_cell ?(seed = 42) ~mode ~variant ~rate ~duration () =
  let engine = Engine.create ~seed () in
  let out = ref None in
  Engine.run engine (fun () ->
      let rng = Engine.rng () in
      let net =
        Transport.create ~jitter_sigma:0.05 ~rng:(Rng.split rng) ()
      in
      let tracer = Tracer.create () in
      let config =
        {
          Framework.default_config with
          server =
            { Server.default_config with mode; batching = variant.v_batching };
          fu_window = variant.v_fu_window;
          fu_piggyback = variant.v_fu_piggyback;
        }
      in
      let fw = Framework.create ~config ~tracer ~net ~funcs ~data:seed_data () in
      (match mode with
      | Server.Replicated _ -> Engine.sleep 800.0 (* raft warm-up *)
      | Server.Singleton -> ());
      let sites = Framework.locations fw in
      let n_sites = List.length sites in
      let zipf = Workload.Zipf.create ~n:n_accounts ~theta:0.2 in
      let mix =
        Workload.Mix.create [ (`Pay, 0.45); (`Post, 0.20); (`Read, 0.35) ]
      in
      let wrng = Rng.split rng in
      let lat = Stats.create () in
      let errors = ref 0 in
      let t0 = Engine.now () in
      let t_last = ref t0 in
      let n =
        Workload.Driver.run_open ~rate ~duration ~rng:(Rng.split rng)
          (fun ~arrival ->
            let from = List.nth sites (arrival mod n_sites) in
            let fn, args =
              match Workload.Mix.sample mix wrng with
              | `Pay ->
                  let src = Workload.Zipf.sample zipf wrng in
                  let dst =
                    (src + 1 + Rng.int wrng (n_accounts - 1)) mod n_accounts
                  in
                  ( "pay",
                    [
                      Dval.Str (Printf.sprintf "a%d" src);
                      Dval.Str (Printf.sprintf "a%d" dst);
                    ] )
              | `Post ->
                  ( "post",
                    [
                      Dval.Str (Printf.sprintf "w%d" (Rng.int wrng n_walls));
                      Dval.Str "x";
                    ] )
              | `Read ->
                  ( "read_wall",
                    [ Dval.Str (Printf.sprintf "w%d" (Rng.int wrng n_walls)) ]
                  )
            in
            let o = Framework.invoke fw ~from fn args in
            if Result.is_error o.Radical.Runtime.value then incr errors;
            Stats.add lat o.latency;
            t_last := Float.max !t_last (Engine.now ()))
      in
      Framework.stop fw;
      let elapsed_s = Float.max 1e-9 ((!t_last -. t0) /. 1000.0) in
      let hist label =
        (List.assoc_opt label (Tracer.batch_stats tracer),
         List.assoc_opt label (Tracer.queue_stats tracer))
      in
      let batch_mean, queue_p99 =
        match mode with
        | Server.Singleton -> (nan, nan)
        | Server.Replicated _ -> (
            match hist "raft_entry" with
            | Some b, Some q -> (Stats.mean b, Stats.p99 q)
            | Some b, None -> (Stats.mean b, nan)
            | _ -> (nan, nan))
      in
      out :=
        Some
          {
            c_variant = variant.v_name;
            c_offered = rate;
            c_achieved = float_of_int n /. elapsed_s;
            c_median = Stats.median lat;
            c_p99 = Stats.p99 lat;
            c_requests = n;
            c_errors = !errors;
            c_batch_mean = batch_mean;
            c_queue_p99 = queue_p99;
          });
  match !out with Some c -> c | None -> assert false

(* --- the sweep -------------------------------------------------------- *)

let rate_label r = Printf.sprintf "%.0f/s" r

(* Highest offered rate before the latency knee: a cell is sustainable
   while its median stays within 2x the variant's own lowest-rate
   median (the classic saturation criterion — queueing delay, not the
   raw latency floor, is what blows up past the knee). 0 when even the
   lowest rate has collapsed. *)
let peak_sustainable cells =
  match cells with
  | [] -> 0.0
  | first :: _ ->
      let base = first.c_median in
      List.fold_left
        (fun acc c ->
          if c.c_median <= 2.0 *. base then Float.max acc c.c_offered else acc)
        0.0 cells

let print_cells mode_name cells =
  Table.print
    ~header:
      [
        "variant"; "offered"; "achieved"; "median"; "p99"; "req"; "err";
        "cmds/entry"; "append q p99";
      ]
    ~rows:
      (List.map
         (fun c ->
           [
             c.c_variant;
             rate_label c.c_offered;
             Printf.sprintf "%.0f/s" c.c_achieved;
             Table.ms c.c_median;
             Table.ms c.c_p99;
             string_of_int c.c_requests;
             string_of_int c.c_errors;
             (if Float.is_nan c.c_batch_mean then "-"
              else Printf.sprintf "%.1f" c.c_batch_mean);
             (if Float.is_nan c.c_queue_p99 then "-"
              else Table.ms c.c_queue_p99);
           ])
         cells);
  ignore mode_name

let measurements_of prefix cells =
  List.concat_map
    (fun c ->
      let p =
        Printf.sprintf "batch.%s.%s.r%.0f" prefix c.c_variant c.c_offered
      in
      [
        (p ^ ".median_ms", c.c_median);
        (p ^ ".p99_ms", c.c_p99);
        (p ^ ".achieved_rps", c.c_achieved);
      ])
    cells

let run ?(scale = 1.0) ?(seed = 42) () =
  heading
    (Printf.sprintf
       "Batching load sweep — group commit / lock-record flush /\n\
        conflict-aware admission / followup coalescing, open-loop Poisson\n\
        load, modeled %.1f ms durable append per Raft log entry"
       append_cost);
  let duration = 250.0 *. scale in
  let repl_rates = [ 100.0; 200.0; 400.0; 800.0; 1600.0 ] in
  let single_rates = [ 200.0; 800.0 ] in
  Printf.printf
    "open-loop window %.0f ms per cell; achieved = completions /\n\
     time-to-last-completion, so a variant that falls behind the\n\
     offered rate shows it directly.\n"
    duration;

  Printf.printf "\n-- singleton server (batching should cost nothing) --\n";
  let single_cells =
    List.concat_map
      (fun v ->
        List.map
          (fun rate ->
            run_cell ~seed ~mode:Server.Singleton ~variant:v ~rate ~duration ())
          single_rates)
      singleton_variants
  in
  print_cells "singleton" single_cells;

  Printf.printf "\n-- replicated server (az_rtt 1.5 ms, append %.1f ms) --\n"
    append_cost;
  let repl_cells =
    List.concat_map
      (fun v ->
        List.map
          (fun rate ->
            run_cell ~seed
              ~mode:(Server.Replicated { az_rtt = 1.5 })
              ~variant:v ~rate ~duration ())
          repl_rates)
      replicated_variants
  in
  print_cells "replicated" repl_cells;

  let cells_of name =
    List.filter (fun c -> c.c_variant = name) repl_cells
  in
  let unbatched = cells_of "unbatched" in
  let gc = cells_of "group-commit" in
  let top_rate = List.fold_left (fun a r -> Float.max a r) 0.0 repl_rates in
  let at_top cells =
    List.find (fun c -> c.c_offered = top_rate) cells
  in
  let u_top = at_top unbatched and g_top = at_top gc in
  let u_peak = peak_sustainable unbatched
  and g_peak = peak_sustainable gc in
  Printf.printf
    "\npeak sustainable throughput (highest offered rate with median\n\
     within 2x the variant's lowest-rate median):\n";
  List.iter
    (fun v ->
      Printf.printf "  %-14s %.0f req/s\n" v.v_name
        (peak_sustainable (cells_of v.v_name)))
    replicated_variants;
  let median_ok = g_top.c_median < u_top.c_median in
  let peak_ok = g_peak > u_peak in
  Printf.printf
    "\nacceptance (replicated, group commit vs unbatched):\n\
    \  median @ %s: %s vs %s  -> %s\n\
    \  peak sustainable: %.0f vs %.0f req/s  -> %s\n"
    (rate_label top_rate) (Table.ms g_top.c_median) (Table.ms u_top.c_median)
    (if median_ok then "OK (lower with group commit)" else "FAIL")
    g_peak u_peak
    (if peak_ok then "OK (higher with group commit)" else "FAIL");
  measurements_of "singleton" single_cells
  @ measurements_of "repl" repl_cells
  @ [
      ("batch.repl.unbatched.peak_rps", u_peak);
      ("batch.repl.group-commit.peak_rps", g_peak);
      ("batch.accept.median", if median_ok then 1.0 else 0.0);
      ("batch.accept.peak", if peak_ok then 1.0 else 0.0);
    ]
